//! Property analysis on converged wavefunctions: dipole moment, Mulliken
//! charges, MP2 correlation — the "full functionality" side of the GAMESS
//! code the paper's hybrid versions preserve.
//!
//! ```sh
//! cargo run --release --example properties
//! ```

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::hf::{dipole_moment, mp2_energy, mulliken_charges, run_scf, ScfConfig};

fn main() {
    for (name, mol) in [("water", small::water()), ("methane", small::methane())] {
        let basis = BasisSet::build(&mol, BasisName::B631g);
        let scf = run_scf(&mol, &basis, &ScfConfig::default());
        assert!(scf.converged);
        let dip = dipole_moment(&mol, &basis, &scf.density);
        let charges = mulliken_charges(&mol, &basis, &scf.density);
        let mp2 =
            mp2_energy(&basis, &scf.orbitals, &scf.orbital_energies, mol.n_occupied(), scf.energy);
        println!("{name} / 6-31G");
        println!("  E(RHF)  = {:>14.8} Eh", scf.energy);
        println!(
            "  E(MP2)  = {:>14.8} Eh  (corr {:+.6})",
            mp2.total_energy, mp2.correlation_energy
        );
        println!("  dipole  = {:>10.4} D", dip.magnitude_debye());
        print!("  Mulliken charges:");
        for (a, q) in mol.atoms().iter().zip(&charges) {
            print!("  {}{:+.3}", a.element.symbol(), q);
        }
        println!("\n");
    }
}
