//! Predict multi-node KNL scaling for a user-sized carbon system with the
//! calibrated cluster simulator — the machinery behind Figures 6/7.
//!
//! ```sh
//! cargo run --release --example cluster_scaling            # C12 ring
//! cargo run --release --example cluster_scaling -- 24      # C24 ring
//! ```

use phi_scf::chem::basis::BasisName;
use phi_scf::chem::geom::small;
use phi_scf::knlsim::des::{simulate, SimAlgorithm, SimConfig};
use phi_scf::knlsim::scenarios::Ctx;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(12);
    let mol = small::c_ring(n, 1.40);
    let ctx = Ctx::from_molecule(
        &format!("C{n} ring / 6-31G(d)"),
        &mol,
        BasisName::B631gd,
        1e-10,
        0.0,
        true, // wall-clock calibrated ERI costs
    );
    println!(
        "{}: {} shells, {} surviving ij tasks, {:.2e} surviving quartets\n",
        ctx.label,
        ctx.workload.n_shells,
        ctx.workload.ij_tasks.len(),
        ctx.workload.surviving_quartets as f64
    );
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "nodes", "MPI-only s", "private Fock s", "shared Fock s"
    );
    for nodes in [1usize, 2, 4, 8, 16, 32] {
        let mut row = format!("{nodes:>6}");
        for alg in [SimAlgorithm::MpiOnly, SimAlgorithm::PrivateFock, SimAlgorithm::SharedFock] {
            let cfg = if alg == SimAlgorithm::MpiOnly {
                SimConfig::mpi_only(nodes)
            } else {
                SimConfig::hybrid(alg, nodes)
            };
            let r = simulate(&ctx.workload, &ctx.cost, &cfg);
            row += &format!(" {:>14.3}", r.total_seconds);
        }
        println!("{row}");
    }
    println!("\n(model seconds for a full 16-iteration SCF on simulated KNL nodes)");
}
