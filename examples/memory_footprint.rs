//! Memory-footprint analysis (the paper's Table 2 machinery) for all five
//! graphene datasets plus a live measured comparison on a real build.
//!
//! ```sh
//! cargo run --release --example memory_footprint
//! ```

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::graphene::PaperSystem;
use phi_scf::chem::geom::small;
use phi_scf::hf::memory_model::Table2Row;
use phi_scf::hf::{DensitySet, FockAlgorithm, FockContext};
use phi_scf::integrals::{Screening, ShellPairs};
use phi_scf::linalg::Mat;

fn main() {
    println!("Modelled per-node footprints, eqs. (3a)-(3c), paper configurations:");
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>14} {:>10}",
        "system", "N_bf", "MPI-only GB", "private GB", "shared GB", "MPI/ShF"
    );
    for sys in PaperSystem::ALL {
        let row = Table2Row::compute(sys);
        println!(
            "{:>8} {:>8} {:>14.2} {:>14.2} {:>14.2} {:>9.0}x",
            sys.label(),
            sys.n_basis_functions(),
            row.gb_mpi,
            row.gb_private,
            row.gb_shared,
            row.shared_ratio()
        );
    }

    println!("\nLive measurement (tracked allocations) on methane/6-31G at 8-way parallelism:");
    let mol = small::methane();
    let basis = BasisSet::build(&mol, BasisName::B631g);
    let pairs = ShellPairs::build(&basis);
    let screening = Screening::from_pairs(&basis, &pairs);
    println!("  shell-pair dataset: {} bytes (shared per rank)", pairs.bytes());
    let n = basis.n_basis();
    let d = Mat::identity(n);
    let ctx = FockContext::new(&basis, &pairs, &screening, 1e-10);
    let dens = DensitySet::Restricted(&d);
    let mpi = FockAlgorithm::MpiOnly { n_ranks: 8 }.builder().build(&ctx, &dens);
    let prf = FockAlgorithm::PrivateFock { n_ranks: 1, n_threads: 8 }.builder().build(&ctx, &dens);
    let shf = FockAlgorithm::SharedFock { n_ranks: 1, n_threads: 8 }.builder().build(&ctx, &dens);
    let dst = FockAlgorithm::Distributed { n_ranks: 8 }.builder().build(&ctx, &dens);
    for (name, s) in [
        ("MPI-only 8 ranks", &mpi.stats),
        ("private Fock 1x8", &prf.stats),
        ("shared Fock 1x8", &shf.stats),
        ("distributed 8", &dst.stats),
    ] {
        println!(
            "  {:18} peak {:>10} bytes  ({:.1}x below MPI-only)",
            name,
            s.memory_total_peak,
            mpi.stats.memory_total_peak as f64 / s.memory_total_peak as f64
        );
    }
}
