//! Quickstart: run restricted Hartree-Fock on water with each of the
//! paper's Fock-build algorithms and confirm they agree.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::hf::{run_scf, FockAlgorithm, ScfConfig};

fn main() {
    let mol = small::water();
    let basis = BasisSet::build(&mol, BasisName::B631g);
    println!(
        "water / {}: {} shells, {} basis functions, {} electrons\n",
        basis.name.label(),
        basis.n_shells(),
        basis.n_basis(),
        mol.n_electrons()
    );

    let algorithms = [
        FockAlgorithm::Serial,
        FockAlgorithm::MpiOnly { n_ranks: 4 },
        FockAlgorithm::PrivateFock { n_ranks: 2, n_threads: 2 },
        FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
        FockAlgorithm::Distributed { n_ranks: 4 },
    ];
    for algorithm in algorithms {
        let config = ScfConfig { algorithm, ..Default::default() };
        let result = run_scf(&mol, &basis, &config);
        println!(
            "{:13}  E = {:.8} Eh   ({} iterations, converged: {}, fock time {:.3}s, peak mem {} B)",
            algorithm.label(),
            result.energy,
            result.iterations,
            result.converged,
            result.time_to_form_fock(),
            result.peak_memory(),
        );
    }
    println!("\nAll five must agree to ~1e-8 Eh — the parallel algorithms are exact.");
}
