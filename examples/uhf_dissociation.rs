//! RHF vs broken-symmetry UHF along the H2 dissociation curve — the
//! open-shell generalization the paper's conclusion points at ("UHF, GVB,
//! DFT, CPHF all have this structure"), built on the same quartet
//! digestion as the parallel Fock algorithms.
//!
//! ```sh
//! cargo run --release --example uhf_dissociation
//! ```

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::hf::{run_scf, run_uhf, FockAlgorithm, ScfConfig, UhfConfig};

fn main() {
    println!("{:>8} {:>14} {:>14} {:>10}", "R/bohr", "RHF (Eh)", "UHF (Eh)", "<S^2>");
    for r10 in [10u32, 14, 20, 30, 40, 50, 70, 100] {
        let r = r10 as f64 / 10.0;
        let mol = small::hydrogen_molecule(r);
        let basis = BasisSet::build(&mol, BasisName::Sto3g);
        let rhf = run_scf(&mol, &basis, &ScfConfig::default());
        // UHF rides the same engine as RHF: any Fock algorithm works.
        let uhf_config = UhfConfig {
            break_symmetry: true,
            algorithm: FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
            ..Default::default()
        };
        let uhf = run_uhf(&mol, &basis, 1, 1, &uhf_config);
        println!(
            "{:>8.1} {:>14.8} {:>14.8} {:>10.4}{}",
            r,
            rhf.energy,
            uhf.energy,
            uhf.s_squared,
            if uhf.energy < rhf.energy - 1e-6 { "   <- symmetry broken" } else { "" }
        );
    }
    println!("\nRHF rises toward the spurious ionic limit; UHF breaks spin symmetry");
    println!("beyond the Coulson-Fischer point and dissociates to two H atoms");
    println!("(2 x -0.46658 Eh in STO-3G) at the price of spin contamination.");
}
