//! The paper's workload, end to end: build a (small) graphene flake with
//! the 6-31G(d) basis, run a real shared-Fock SCF on it, and print the
//! screening statistics that drive the large-scale experiments.
//!
//! ```sh
//! cargo run --release --example graphene_hf          # C6 flake, real SCF
//! cargo run --release --example graphene_hf -- paper # 0.5 nm stats only
//! ```

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::graphene::{graphene_flake, PaperSystem};
use phi_scf::hf::{run_scf, FockAlgorithm, ScfConfig};
use phi_scf::integrals::screening::WorkloadStats;
use phi_scf::integrals::Screening;

fn main() {
    let paper_mode = std::env::args().any(|a| a == "paper");
    if paper_mode {
        // Screening statistics for the smallest paper dataset (0.5 nm):
        // this is the exact workload the simulator distributes.
        let sys = PaperSystem::Nm05;
        let mol = sys.molecule();
        let basis = BasisSet::build(&mol, BasisName::B631gd);
        println!(
            "{}: {} atoms, {} shells, {} basis functions",
            sys.label(),
            mol.n_atoms(),
            basis.n_shells(),
            basis.n_basis()
        );
        let screening = Screening::compute(&basis);
        for tau in [1e-8, 1e-10, 1e-12] {
            let stats = WorkloadStats::compute(&basis, &screening, tau);
            println!(
                "tau = {tau:>7.0e}: {:>9} surviving ij tasks, {:>14} surviving quartets, {:.1}% screened out",
                stats.tasks.len(),
                stats.surviving_quartets(),
                stats.screened_fraction() * 100.0
            );
        }
        return;
    }

    // A real SCF on a C6 monolayer flake (one graphene hexagon). Small
    // graphene fragments have near-degenerate frontier orbitals, so the run
    // uses a level shift and damping (the same aids GAMESS would need here).
    let mol = graphene_flake(6);
    let basis = BasisSet::build(&mol, BasisName::Sto3g);
    println!(
        "C6 graphene flake / STO-3G: {} shells, {} basis functions",
        basis.n_shells(),
        basis.n_basis()
    );
    let config = ScfConfig {
        algorithm: FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
        max_iterations: 40,
        convergence: 1e-6,
        level_shift: Some(0.3),
        damping: Some(0.2),
        ..Default::default()
    };
    let result = run_scf(&mol, &basis, &config);
    println!(
        "E = {:.6} Eh after {} iterations (converged: {})",
        result.energy, result.iterations, result.converged
    );
    let s = &result.fock_stats[0];
    println!(
        "per Fock build: {} quartets computed, {} screened ({:.1}%), {} DLB tasks",
        s.quartets_computed,
        s.quartets_screened,
        s.screened_fraction() * 100.0,
        s.dlb_tasks
    );
}
