//! Structural invariants of the `phi-trace` instrumentation, checked
//! against every parallel Fock builder at two world sizes:
//!
//! - every stream is well-formed (monotone timestamps, LIFO span nesting,
//!   no unclosed spans) after the per-thread segments are re-merged;
//! - child spans fit inside their parent (sum of children <= parent);
//! - counter totals reconcile *exactly* with the [`FockBuildStats`]
//!   fields the builders report (`quartets_computed`, `quartets_screened`,
//!   `flushes`, `dlb_calls`, `tasks_reclaimed`) — the counters are
//!   accumulated in the same plain locals, so any drift is a bug.
//!
//! Every test wraps its builds in a [`TraceSession`]; sessions serialize
//! on a process-wide lock, so concurrently running tests in this binary
//! cannot leak events into each other's reports.
#![cfg(feature = "trace")]

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::hf::{DensitySet, FockAlgorithm, FockBuildStats, FockData};
use phi_scf::linalg::Mat;
use phi_scf::trace::{Event, Stream, TraceReport, TraceSession};

/// All four parallel builders at two world sizes each.
fn algorithms() -> Vec<FockAlgorithm> {
    vec![
        FockAlgorithm::MpiOnly { n_ranks: 2 },
        FockAlgorithm::MpiOnly { n_ranks: 4 },
        FockAlgorithm::PrivateFock { n_ranks: 1, n_threads: 3 },
        FockAlgorithm::PrivateFock { n_ranks: 2, n_threads: 2 },
        FockAlgorithm::SharedFock { n_ranks: 1, n_threads: 4 },
        FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
        FockAlgorithm::Distributed { n_ranks: 2 },
        FockAlgorithm::Distributed { n_ranks: 4 },
    ]
}

fn density(n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        0.2 + ((i * 5 + j * 11) % 7) as f64 * 0.1
    })
}

/// One traced build of water/STO-3G under `alg`.
fn traced_build(alg: FockAlgorithm) -> (TraceReport, FockBuildStats) {
    let b = BasisSet::build(&small::water(), BasisName::Sto3g);
    let data = FockData::build(&b);
    let ctx = data.context(&b, 1e-12);
    let d = density(b.n_basis());
    let session = TraceSession::begin();
    let gb = alg.builder().build(&ctx, &DensitySet::Restricted(&d));
    (session.finish(), gb.stats)
}

#[test]
fn every_builder_trace_is_well_formed() {
    let mut algs = algorithms();
    algs.push(FockAlgorithm::Serial);
    for alg in algs {
        let (report, _) = traced_build(alg);
        assert!(!report.is_empty(), "{}: empty trace", alg.label());
        report
            .check_well_formed()
            .unwrap_or_else(|e| panic!("{}: malformed trace: {e}", alg.label()));
    }
}

#[test]
fn merged_streams_have_monotone_timelines_and_unique_identities() {
    for alg in algorithms() {
        let (report, _) = traced_build(alg);
        let mut seen = std::collections::BTreeSet::new();
        for s in &report.streams {
            assert!(
                seen.insert((s.rank, s.thread)),
                "{}: duplicate stream ({}, {}) after merge",
                alg.label(),
                s.rank,
                s.thread
            );
            // Segments recorded by different OS threads playing the same
            // (rank, thread) role must concatenate into one monotone
            // timeline.
            let mut prev = 0u64;
            for ev in &s.events {
                assert!(
                    ev.t() >= prev,
                    "{}: stream ({}, {}) goes back in time",
                    alg.label(),
                    s.rank,
                    s.thread
                );
                prev = ev.t();
            }
        }
    }
}

/// Walk one stream keeping (start, accumulated child time) per open span;
/// on close, the children must fit inside the parent. Returns the number
/// of nested (depth >= 1) spans seen.
fn check_children_fit(label: &str, s: &Stream) -> usize {
    let mut stack: Vec<(u64, u64)> = Vec::new();
    let mut nested = 0usize;
    for ev in &s.events {
        match *ev {
            Event::Begin { t, .. } => stack.push((t, 0)),
            Event::End { name, t } => {
                let (t0, child) = stack.pop().unwrap_or_else(|| {
                    panic!("{label}: stream ({}, {}) closes unopened span", s.rank, s.thread)
                });
                let dur = t - t0;
                assert!(
                    child <= dur,
                    "{label}: children of '{name}' on ({}, {}) total {child} ns \
                     but the parent lasted only {dur} ns",
                    s.rank,
                    s.thread
                );
                if let Some(parent) = stack.last_mut() {
                    nested += 1;
                    parent.1 += dur;
                }
            }
            _ => {}
        }
    }
    nested
}

#[test]
fn child_spans_fit_inside_their_parents() {
    for alg in algorithms() {
        let (report, _) = traced_build(alg);
        let nested: usize = report.streams.iter().map(|s| check_children_fit(alg.label(), s)).sum();
        // Every parallel builder nests at least dlb.wait / mpi.gsum
        // inside its per-rank fock.build span.
        assert!(nested > 0, "{}: no nested spans at all", alg.label());
    }
}

#[test]
fn fock_build_spans_appear_once_per_rank() {
    for (alg, ranks) in [
        (FockAlgorithm::MpiOnly { n_ranks: 3 }, 3),
        (FockAlgorithm::PrivateFock { n_ranks: 2, n_threads: 2 }, 2),
        (FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 }, 2),
        (FockAlgorithm::Distributed { n_ranks: 3 }, 3),
    ] {
        let (report, _) = traced_build(alg);
        assert_eq!(
            report.span_count("fock.build"),
            ranks,
            "{}: one fock.build span per rank",
            alg.label()
        );
        assert_eq!(report.span_total_by_rank("fock.build").len(), ranks);
    }
}

#[test]
fn counter_totals_reconcile_exactly_with_build_stats() {
    let mut algs = algorithms();
    algs.push(FockAlgorithm::Serial);
    for alg in algs {
        let (report, stats) = traced_build(alg);
        let label = alg.label();
        assert_eq!(
            report.counter_total("quartets_computed"),
            stats.quartets_computed,
            "{label}: quartets_computed drifted"
        );
        assert_eq!(
            report.counter_total("quartets_screened"),
            stats.quartets_screened,
            "{label}: quartets_screened drifted"
        );
        assert_eq!(report.counter_total("flushes"), stats.flushes, "{label}: flushes drifted");
        assert_eq!(
            report.counter_total("dlb.calls") as usize,
            stats.dlb_calls,
            "{label}: dlb.calls drifted"
        );
        assert_eq!(
            report.counter_total("tasks.reclaimed") as usize,
            stats.tasks_reclaimed,
            "{label}: tasks.reclaimed drifted (fault-free build)"
        );
    }
}
