//! Regression tests for the persistent shell-pair dataset: sharing one
//! `ShellPairs` across the screening build and every Fock algorithm must
//! not change a single screening decision, and must leave the Fock numbers
//! untouched up to floating-point summation order.

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::hf::fock::{distributed, mpi_only, private_fock, serial, shared_fock};
use phi_scf::integrals::{Screening, ShellPairs};
use phi_scf::linalg::Mat;

fn density(n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        0.2 + ((i * 5 + j * 3) % 7) as f64 * 0.09
    })
}

#[test]
fn pair_based_screening_is_bitwise_identical_to_legacy_compute() {
    // `Screening::compute` (per-call pair rebuild) and the pair-cached
    // Schwarz build route the same diagonal quartets through the same
    // engine, so with pruning disabled the stored f32 bounds must agree
    // bit for bit — and with them, every survivor decision.
    for (mol, basis) in [
        (small::water(), BasisName::B631gd),
        (small::h_chain(8, 3.0), BasisName::Sto3g),
        (small::c_ring(6, 1.39), BasisName::B631g),
    ] {
        let b = BasisSet::build(&mol, basis);
        let legacy = Screening::compute(&b);
        let pairs = ShellPairs::build_with(&b, 0.0);
        let cached = Screening::from_pairs(&b, &pairs);
        let ns = b.n_shells();
        for i in 0..ns {
            for j in 0..=i {
                assert_eq!(
                    legacy.q(i, j).to_bits(),
                    cached.q(i, j).to_bits(),
                    "{basis:?}: Q({i},{j}) differs: {} vs {}",
                    legacy.q(i, j),
                    cached.q(i, j)
                );
            }
        }
        assert_eq!(legacy.q_max().to_bits(), cached.q_max().to_bits());
        // Survivor decisions follow from the bounds; spot-check anyway over
        // every canonical quartet at two thresholds.
        for tau in [1e-6, 1e-10] {
            for i in 0..ns {
                for j in 0..=i {
                    for k in 0..=i {
                        for l in 0..=k {
                            assert_eq!(
                                legacy.survives(i, j, k, l, tau),
                                cached.survives(i, j, k, l, tau)
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn default_pruning_does_not_change_survivor_counts_on_compact_systems() {
    // The default primitive-pair cutoff (1e-16) only drops pairs whose
    // prefactor bound is far below every screening threshold; on a compact
    // molecule the surviving-quartet census must be unchanged.
    let b = BasisSet::build(&small::water(), BasisName::B631gd);
    let legacy = Screening::compute(&b);
    let pairs = ShellPairs::build(&b);
    let cached = Screening::from_pairs(&b, &pairs);
    let tau = 1e-10;
    let ns = b.n_shells();
    let (mut l_count, mut c_count) = (0u64, 0u64);
    for i in 0..ns {
        for j in 0..=i {
            for k in 0..=i {
                for l in 0..=k {
                    l_count += legacy.survives(i, j, k, l, tau) as u64;
                    c_count += cached.survives(i, j, k, l, tau) as u64;
                }
            }
        }
    }
    assert_eq!(l_count, c_count);
    assert!(l_count > 0);
}

#[test]
fn all_parallel_builders_share_pairs_and_match_serial() {
    // One dataset, five algorithms: survivor counts must be exactly the
    // serial count, and the assembled G must agree up to floating-point
    // summation order (the parallel reductions add the same contributions
    // in a different order — observed differences are O(1e-15)).
    let b = BasisSet::build(&small::water(), BasisName::B631g);
    let pairs = ShellPairs::build(&b);
    let s = Screening::from_pairs(&b, &pairs);
    let d = density(b.n_basis());
    let tau = 1e-10;

    let want = serial::build_g_serial(&b, &pairs, &s, tau, &d);
    let builds = [
        ("MPI-only", mpi_only::build_g_mpi_only(&b, &pairs, &s, tau, &d, 3)),
        ("private Fock", private_fock::build_g_private_fock(&b, &pairs, &s, tau, &d, 2, 2)),
        ("shared Fock", shared_fock::build_g_shared_fock(&b, &pairs, &s, tau, &d, 2, 2)),
        ("distributed", distributed::build_g_distributed(&b, &pairs, &s, tau, &d, 2)),
    ];
    for (name, got) in builds {
        assert_eq!(
            got.stats.quartets_computed, want.stats.quartets_computed,
            "{name}: computed-quartet census drifted from serial"
        );
        assert!(
            got.g.max_abs_diff(&want.g) < 1e-12,
            "{name}: G differs from serial by {}",
            got.g.max_abs_diff(&want.g)
        );
    }
}

#[test]
fn shared_pairs_memory_is_charged_per_rank() {
    // Each rank charges the (shared, read-only) dataset once; the tracked
    // peak must therefore grow by at least pairs.bytes() per extra rank and
    // the dataset must never be replicated per thread.
    let b = BasisSet::build(&small::water(), BasisName::Sto3g);
    let pairs = ShellPairs::build(&b);
    let s = Screening::from_pairs(&b, &pairs);
    let d = density(b.n_basis());
    let two_threads = private_fock::build_g_private_fock(&b, &pairs, &s, 1e-10, &d, 1, 2);
    let four_threads = private_fock::build_g_private_fock(&b, &pairs, &s, 1e-10, &d, 1, 4);
    let n = b.n_basis();
    // Thread scaling adds only the private Fock copies (n^2 words each),
    // not extra pair-dataset copies.
    let delta = four_threads.stats.memory_total_peak - two_threads.stats.memory_total_peak;
    assert_eq!(delta, 2 * n * n * std::mem::size_of::<f64>());
    // Rank scaling replicates the dataset.
    let one_rank = mpi_only::build_g_mpi_only(&b, &pairs, &s, 1e-10, &d, 1);
    let two_ranks = mpi_only::build_g_mpi_only(&b, &pairs, &s, 1e-10, &d, 2);
    let rank_delta = two_ranks.stats.memory_total_peak - one_rank.stats.memory_total_peak;
    assert!(rank_delta >= pairs.bytes());
}
