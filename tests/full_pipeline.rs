//! Cross-crate integration tests: geometry -> basis -> integrals -> SCF
//! with the parallel Fock builders, end to end.

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::hf::{run_scf, FockAlgorithm, ScfConfig};

fn energy(mol: &phi_scf::chem::Molecule, basis: BasisName, algorithm: FockAlgorithm) -> f64 {
    let b = BasisSet::build(mol, basis);
    let r = run_scf(mol, &b, &ScfConfig { algorithm, ..Default::default() });
    assert!(r.converged, "{} did not converge on {:?}", algorithm.label(), basis);
    r.energy
}

#[test]
fn methane_631g_agrees_across_all_algorithms() {
    let mol = small::methane();
    let serial = energy(&mol, BasisName::B631g, FockAlgorithm::Serial);
    // RHF/6-31G methane is around -40.18 Eh; guard the ballpark so a wrong
    // basis or integral bug cannot hide behind self-consistency.
    assert!((serial - (-40.18)).abs() < 0.05, "methane energy {serial}");
    for algorithm in [
        FockAlgorithm::MpiOnly { n_ranks: 3 },
        FockAlgorithm::PrivateFock { n_ranks: 2, n_threads: 2 },
        FockAlgorithm::SharedFock { n_ranks: 1, n_threads: 4 },
    ] {
        let e = energy(&mol, BasisName::B631g, algorithm);
        assert!((e - serial).abs() < 1e-8, "{}: {e} vs serial {serial}", algorithm.label());
    }
}

#[test]
fn water_631gd_exercises_d_functions_in_parallel() {
    let mol = small::water();
    let serial = energy(&mol, BasisName::B631gd, FockAlgorithm::Serial);
    // RHF/6-31G(d) water at the experimental geometry: about -76.01 Eh.
    assert!((serial - (-76.01)).abs() < 0.03, "water/6-31G(d) energy {serial}");
    let shared =
        energy(&mol, BasisName::B631gd, FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 });
    assert!((shared - serial).abs() < 1e-8);
}

#[test]
fn basis_set_quality_ordering() {
    // Bigger basis => lower (variational) RHF energy for the same molecule.
    let mol = small::water();
    let sto = energy(&mol, BasisName::Sto3g, FockAlgorithm::Serial);
    let dz = energy(&mol, BasisName::B631g, FockAlgorithm::Serial);
    let dzp = energy(&mol, BasisName::B631gd, FockAlgorithm::Serial);
    let dzpp = energy(&mol, BasisName::B631gdp, FockAlgorithm::Serial);
    assert!(dz < sto, "6-31G {dz} must be below STO-3G {sto}");
    assert!(dzp < dz, "6-31G(d) {dzp} must be below 6-31G {dz}");
    assert!(dzpp < dzp, "6-31G(d,p) {dzpp} must be below 6-31G(d) {dzp}");
    // RHF/6-31G(d,p) water is about -76.02 Eh.
    assert!((dzpp - (-76.02)).abs() < 0.03, "6-31G(d,p) water {dzpp}");
}

#[test]
fn hydrogen_dissociation_curve_is_sane() {
    // RHF H2: minimum near 1.4 a0; energy rises on compression and
    // stretching (RHF does not dissociate correctly, but the near-minimum
    // shape must hold).
    let e = |r: f64| energy(&small::hydrogen_molecule(r), BasisName::Sto3g, FockAlgorithm::Serial);
    let e_compressed = e(1.0);
    let e_min = e(1.4);
    let e_stretched = e(2.2);
    assert!(e_min < e_compressed, "{e_min} vs compressed {e_compressed}");
    assert!(e_min < e_stretched, "{e_min} vs stretched {e_stretched}");
}

#[test]
fn charged_species_work_end_to_end() {
    // H3+ (equilateral, 2 electrons) is a closed-shell cation exercising
    // the charge bookkeeping through the whole stack.
    let r = 1.65;
    let h = 3f64.sqrt() / 2.0;
    let mol = phi_scf::chem::Molecule::new(
        vec![
            phi_scf::chem::Atom { element: phi_scf::chem::Element::H, pos: [0.0, 0.0, 0.0] },
            phi_scf::chem::Atom { element: phi_scf::chem::Element::H, pos: [r, 0.0, 0.0] },
            phi_scf::chem::Atom { element: phi_scf::chem::Element::H, pos: [r / 2.0, r * h, 0.0] },
        ],
        1,
    );
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let res = run_scf(&mol, &b, &ScfConfig::default());
    assert!(res.converged);
    // Physical sanity: H3+ must be bound with respect to H2 + H+ (the
    // proton affinity of H2 is positive), i.e. E(H3+) < E(H2).
    let h2 = energy(&small::hydrogen_molecule(1.4), BasisName::Sto3g, FockAlgorithm::Serial);
    assert!(res.energy < h2, "H3+ {} must lie below H2 {}", res.energy, h2);
    // Regression anchor for our basis/geometry.
    assert!((res.energy - (-1.2375)).abs() < 5e-3, "H3+ energy {}", res.energy);
}

#[test]
fn scf_reports_complete_statistics() {
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let r = run_scf(
        &mol,
        &b,
        &ScfConfig {
            algorithm: FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
            ..Default::default()
        },
    );
    assert_eq!(r.fock_stats.len(), r.iterations);
    for s in &r.fock_stats {
        assert!(s.quartets_computed > 0);
        assert!(s.memory_total_peak > 0);
        assert_eq!(s.per_rank_peak.len(), 2);
    }
    assert_eq!(r.energy_history.len(), r.iterations);
    assert!(r.orbital_energies.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    // Occupied orbital energies of a stable closed-shell molecule are
    // negative (Koopmans).
    assert!(r.orbital_energies[..mol.n_occupied()].iter().all(|&e| e < 0.0));
}
