//! Trace x fault-injection: kill ranks mid-build under every parallel
//! builder and check that the trace tells the recovery story accurately:
//!
//! - every death shows up as a `rank.died` instant, inside the dead
//!   rank's still-well-formed `fock.build` span (death terminates the
//!   rank's work, not the trace structure);
//! - every lease served from the reissue queue shows up as a
//!   `task.reissued` instant whose `aux` is the dead rank that
//!   originally claimed the task;
//! - the instant counts reconcile with `tasks_reclaimed` / `retries`
//!   from [`FockBuildStats`].
#![cfg(feature = "trace")]

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::dmpi::FaultPlan;
use phi_scf::hf::{DensitySet, FockAlgorithm, FockBuildStats, FockData};
use phi_scf::linalg::Mat;
use phi_scf::trace::{TraceReport, TraceSession};
use std::collections::BTreeSet;

fn algorithms() -> [FockAlgorithm; 4] {
    [
        FockAlgorithm::MpiOnly { n_ranks: 4 },
        FockAlgorithm::PrivateFock { n_ranks: 4, n_threads: 2 },
        FockAlgorithm::SharedFock { n_ranks: 4, n_threads: 2 },
        FockAlgorithm::Distributed { n_ranks: 4 },
    ]
}

fn density(n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        0.2 + ((i * 5 + j * 11) % 7) as f64 * 0.1
    })
}

fn traced_faulty_build(alg: FockAlgorithm, plan: FaultPlan) -> (TraceReport, FockBuildStats) {
    let b = BasisSet::build(&small::water(), BasisName::Sto3g);
    let data = FockData::build(&b);
    let ctx = data.context(&b, 1e-12);
    let d = density(b.n_basis());
    let session = TraceSession::begin();
    let gb = alg.builder_with_faults(Some(plan)).build(&ctx, &DensitySet::Restricted(&d));
    (session.finish(), gb.stats)
}

#[test]
fn rank_deaths_are_traced_inside_their_build_span() {
    for alg in algorithms() {
        for seed in [11u64, 42] {
            let (report, stats) = traced_faulty_build(alg, FaultPlan::random_kills(seed, 1));
            let label = alg.label();
            report
                .check_well_formed()
                .unwrap_or_else(|e| panic!("{label} seed {seed}: malformed trace: {e}"));

            let died = report.instants("rank.died");
            assert_eq!(
                died.iter().map(|i| i.value as usize).collect::<BTreeSet<_>>(),
                stats.failed_ranks.iter().copied().collect::<BTreeSet<_>>(),
                "{label} seed {seed}: rank.died instants vs failed_ranks"
            );
            assert_eq!(died.len(), stats.failed_ranks.len());

            // The death lands inside the dead rank's fock.build span: the
            // span closed normally (no unclosed spans per well-formedness)
            // and brackets the instant.
            for ev in &died {
                let stream = report
                    .streams
                    .iter()
                    .find(|s| s.rank == ev.value as u32 && s.thread == 0)
                    .unwrap_or_else(|| panic!("{label}: no stream for dead rank {}", ev.value));
                let mut inside = false;
                TraceReport::for_each_span_in(stream, |name, t0, t1, _| {
                    if name == "fock.build" && t0 <= ev.t && ev.t <= t1 {
                        inside = true;
                    }
                });
                assert!(
                    inside,
                    "{label} seed {seed}: rank {} died outside its fock.build span",
                    ev.value
                );
            }
        }
    }
}

#[test]
fn reissued_task_instants_carry_the_dead_claimant_and_reconcile() {
    for alg in algorithms() {
        for (seed, kills) in [(11u64, 1usize), (42, 2)] {
            let (report, stats) = traced_faulty_build(alg, FaultPlan::random_kills(seed, kills));
            let label = alg.label();
            let failed: BTreeSet<usize> = stats.failed_ranks.iter().copied().collect();
            assert_eq!(failed.len(), kills, "{label} seed {seed}: kills landed");

            let reissued = report.instants("task.reissued");
            // One instant per lease served from the reissue queue.
            assert_eq!(
                reissued.len(),
                stats.retries,
                "{label} seed {seed}: task.reissued instants vs lease retries"
            );
            // Every reclaimed task is eventually re-served by a survivor.
            assert!(
                reissued.len() >= stats.tasks_reclaimed,
                "{label} seed {seed}: {} reissue instants < {} reclaimed tasks",
                reissued.len(),
                stats.tasks_reclaimed
            );
            assert!(stats.tasks_reclaimed > 0, "{label} seed {seed}: a dead rank held a lease");

            for ev in &reissued {
                // aux = the original claimant, which must be a dead rank —
                // and never the rank that recovered the task.
                assert!(
                    failed.contains(&(ev.aux as usize)),
                    "{label} seed {seed}: task {} reissued from live rank {}",
                    ev.value,
                    ev.aux
                );
                assert_ne!(
                    ev.rank as u64, ev.aux,
                    "{label} seed {seed}: a dead rank cannot recover its own task"
                );
            }
        }
    }
}

#[test]
fn clean_builds_trace_no_fault_events() {
    let (report, stats) =
        traced_faulty_build(FockAlgorithm::MpiOnly { n_ranks: 3 }, FaultPlan::random_kills(7, 0));
    assert!(report.instants("rank.died").is_empty());
    assert!(report.instants("task.reissued").is_empty());
    assert_eq!(stats.tasks_reclaimed, 0);
    assert_eq!(report.counter_total("tasks.reclaimed"), 0);
}
