//! The cluster simulator must reproduce the *shapes* of the paper's
//! results on a real (small) workload: who wins where, which crossovers
//! exist, how the memory hierarchy behaves.

use phi_scf::chem::basis::BasisName;
use phi_scf::chem::geom::small;
use phi_scf::knlsim::des::{simulate, SimAlgorithm, SimConfig};
use phi_scf::knlsim::node::{ClusterMode, MemoryMode};
use phi_scf::knlsim::scenarios::Ctx;

fn ctx() -> Ctx {
    Ctx::from_molecule(
        "C10 ring / 6-31G(d)",
        &small::c_ring(10, 1.40),
        BasisName::B631gd,
        1e-10,
        0.0,
        false,
    )
}

#[test]
fn single_node_ordering_private_beats_shared_beats_mpi() {
    // Paper §6.1: on one node, private Fock gives the best time of the
    // three; MPI-only is the slowest at saturation.
    let ctx = ctx();
    let time = |alg| {
        let cfg = match alg {
            SimAlgorithm::MpiOnly => SimConfig::mpi_only(1),
            _ => SimConfig::hybrid(alg, 1),
        };
        simulate(&ctx.workload, &ctx.cost, &cfg).total_seconds
    };
    let mpi = time(SimAlgorithm::MpiOnly);
    let prf = time(SimAlgorithm::PrivateFock);
    let shf = time(SimAlgorithm::SharedFock);
    assert!(prf <= shf, "private {prf} must beat shared {shf} on one node");
    assert!(shf < mpi, "shared {shf} must beat MPI-only {mpi} on one node");
}

#[test]
fn smt_sweet_spot_at_two_threads_per_core() {
    // Paper §6.1: the benefit is highest for two threads per core.
    let ctx = ctx();
    let time = |threads_per_rank| {
        let cfg = SimConfig { threads_per_rank, ..SimConfig::hybrid(SimAlgorithm::PrivateFock, 1) };
        simulate(&ctx.workload, &ctx.cost, &cfg).total_seconds
    };
    let t16 = time(16); // 64 threads = 1/core
    let t32 = time(32); // 128 threads = 2/core
    let t64 = time(64); // 256 threads = 4/core
    let gain_2 = t16 / t32;
    let gain_4 = t32 / t64;
    assert!(gain_2 > 1.2, "2/core should help substantially: {gain_2}");
    assert!(gain_4 > 1.0, "4/core should still help a bit: {gain_4}");
    assert!(gain_2 > gain_4, "diminishing SMT returns");
}

#[test]
fn quad_cache_is_the_best_mode_combination() {
    // Paper §6.1 conclusion: quadrant-cache suits the hybrid codes best.
    let ctx = ctx();
    let quad_cache =
        simulate(&ctx.workload, &ctx.cost, &SimConfig::hybrid(SimAlgorithm::SharedFock, 1))
            .total_seconds;
    for cluster in ClusterMode::ALL {
        for memory in [MemoryMode::Cache, MemoryMode::FlatDdr] {
            let cfg = SimConfig {
                cluster_mode: cluster,
                memory_mode: memory,
                ..SimConfig::hybrid(SimAlgorithm::SharedFock, 1)
            };
            let t = simulate(&ctx.workload, &ctx.cost, &cfg).total_seconds;
            assert!(
                t >= quad_cache * 0.999,
                "{}/{} ({t}) beat quad-cache ({quad_cache})",
                cluster.label(),
                memory.label()
            );
        }
    }
}

#[test]
fn memory_footprint_hierarchy_in_the_model() {
    let ctx = ctx();
    let fp = |alg| {
        let cfg = match alg {
            SimAlgorithm::MpiOnly => SimConfig::mpi_only(1),
            _ => SimConfig::hybrid(alg, 1),
        };
        simulate(&ctx.workload, &ctx.cost, &cfg).footprint_gb
    };
    let mpi = fp(SimAlgorithm::MpiOnly);
    let prf = fp(SimAlgorithm::PrivateFock);
    let shf = fp(SimAlgorithm::SharedFock);
    assert!(mpi > prf, "MPI {mpi} vs private {prf}");
    assert!(prf > shf, "private {prf} vs shared {shf}");
}

#[test]
fn shared_fock_keeps_the_best_load_balance_at_scale() {
    let ctx = ctx();
    let nodes = 32;
    let busy = |alg| {
        let cfg = match alg {
            SimAlgorithm::MpiOnly => SimConfig { ranks_per_node: 64, ..SimConfig::mpi_only(nodes) },
            _ => SimConfig::hybrid(alg, nodes),
        };
        simulate(&ctx.workload, &ctx.cost, &cfg).busy_fraction
    };
    let shf = busy(SimAlgorithm::SharedFock);
    let prf = busy(SimAlgorithm::PrivateFock);
    assert!(shf > prf, "shared Fock busy {shf} vs private {prf}");
}

#[test]
fn efficiency_declines_monotonically_for_private_fock() {
    // Adding nodes cannot *increase* Algorithm 2's efficiency once its
    // task pool is exhausted.
    let ctx = ctx();
    let time = |nodes| {
        simulate(&ctx.workload, &ctx.cost, &SimConfig::hybrid(SimAlgorithm::PrivateFock, nodes))
            .total_seconds
    };
    let t: Vec<f64> = [1usize, 4, 16, 64].iter().map(|&n| time(n)).collect();
    let eff: Vec<f64> =
        [1usize, 4, 16, 64].iter().zip(&t).map(|(&n, &s)| t[0] / (s * n as f64)).collect();
    for w in eff.windows(2) {
        assert!(w[1] <= w[0] * 1.05, "efficiency must not grow with nodes: {eff:?}");
    }
}
