//! Golden-breakdown regression: trace the serial, private-Fock and
//! shared-Fock builds of the C6 ring in 6-31G(d) (the shape of the
//! paper's single-node benchmark) and pin the *paper-shaped* structure of
//! the breakdown — which phases exist, how they relate across algorithms,
//! and how DLB traffic scales with the rank count. Absolute times are
//! machine-dependent and are never asserted; every inequality below is
//! either exact counter arithmetic or an ordering the paper's model
//! guarantees (e.g. the shared-Fock code flushes FI/FJ buffers, the
//! private-Fock code has no flush phase at all).
//!
//! The C6/6-31G(d) builds are expensive in debug mode, so each
//! configuration is built exactly once and all invariants are asserted
//! from those four reports in a single test.
#![cfg(feature = "trace")]

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::hf::{DensitySet, FockAlgorithm, FockBuildStats, FockData};
use phi_scf::linalg::Mat;
use phi_scf::trace::{TraceReport, TraceSession};

fn density(n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        0.15 + ((i * 3 + j * 13) % 9) as f64 * 0.07
    })
}

fn flush_total_ns(r: &TraceReport) -> u64 {
    r.span_total_ns("fock.flush_fi") + r.span_total_ns("fock.flush_fj")
}

#[test]
fn c6_631gd_breakdown_has_the_paper_shape() {
    let b = BasisSet::build(&small::c_ring(6, 1.39), BasisName::B631gd);
    let data = FockData::build(&b);
    let ctx = data.context(&b, 1e-10);
    let d = density(b.n_basis());
    let dens = DensitySet::Restricted(&d);

    let trace = |alg: FockAlgorithm| -> (TraceReport, FockBuildStats) {
        let session = TraceSession::begin();
        let gb = alg.builder().build(&ctx, &dens);
        let report = session.finish();
        report
            .check_well_formed()
            .unwrap_or_else(|e| panic!("{}: malformed trace: {e}", alg.label()));
        (report, gb.stats)
    };

    let (serial, serial_stats) = trace(FockAlgorithm::Serial);
    let (private, _) = trace(FockAlgorithm::PrivateFock { n_ranks: 2, n_threads: 2 });
    let (shared1, shared1_stats) = trace(FockAlgorithm::SharedFock { n_ranks: 1, n_threads: 2 });
    let (shared2, shared2_stats) = trace(FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 });

    // -- serial: one build span, no parallel phases at all -------------
    assert_eq!(serial.span_count("fock.build"), 1);
    assert_eq!(serial.span_count("dlb.wait"), 0);
    assert_eq!(serial.span_count("omp.loop"), 0);
    assert_eq!(serial.span_count("mpi.gsum"), 0);
    assert_eq!(flush_total_ns(&serial), 0);
    let s = serial.summary();
    assert!(s.fock_seconds > 0.0 && s.fock_seconds <= s.total_seconds);
    assert_eq!(serial.counter_total("quartets_computed"), serial_stats.quartets_computed);
    assert!(serial_stats.quartets_screened > 0, "6-31G(d) at 1e-10 must screen something");

    // -- flush phase: exists for shared Fock, absent for private Fock --
    // (the paper's Algorithm 3 pays FI/FJ buffer flushes for its shared
    // Fock matrix; Algorithm 2's thread-private Fock never flushes).
    assert_eq!(flush_total_ns(&private), 0, "private Fock has no flush phase");
    assert!(shared1.span_count("fock.flush_fi") > 0, "shared Fock flushes FI");
    assert!(shared1.span_count("fock.flush_fj") > 0, "shared Fock flushes FJ");
    assert!(
        flush_total_ns(&shared1) > flush_total_ns(&private),
        "shared-Fock flush time must exceed private-Fock flush time"
    );

    // -- gsum: one reduction span per rank -----------------------------
    assert_eq!(shared1.span_count("mpi.gsum"), 1);
    assert_eq!(shared2.span_count("mpi.gsum"), 2);

    // -- DLB traffic grows with the rank count -------------------------
    // Each lease_next call is one dlb.wait span; every rank makes one
    // final out-of-range call, so two ranks make exactly one claim more
    // than one rank over the same task pool.
    assert_eq!(shared1.span_count("dlb.wait"), shared1_stats.dlb_calls);
    assert_eq!(shared2.span_count("dlb.wait"), shared2_stats.dlb_calls);
    assert_eq!(shared2_stats.dlb_calls, shared1_stats.dlb_calls + 1);
    assert!(shared1.dlb_wait_total_ns() > 0);
    assert!(shared2.dlb_wait_by_rank_ns().len() == 2, "both ranks wait on the counter");

    // -- per-thread busy and imbalance (paper Fig. 8) ------------------
    for (label, report, ranks) in [("shared 1x2", &shared1, 1u32), ("shared 2x2", &shared2, 2)] {
        let summary = report.summary();
        assert!(
            summary.busy_fraction > 0.0 && summary.busy_fraction <= 1.0,
            "{label}: busy fraction {} out of range",
            summary.busy_fraction
        );
        for rank in 0..ranks {
            let ratio = report
                .imbalance_ratio(rank)
                .unwrap_or_else(|| panic!("{label}: rank {rank} ran no omp loops"));
            assert!(ratio >= 1.0, "{label}: rank {rank} imbalance {ratio} < 1");
        }
    }

    // -- the same physics under every breakdown ------------------------
    // The shared-Fock task prescreen can only drop whole tasks whose
    // quartets the serial loop screens one-by-one, so computed counts
    // match exactly and screened counts can only shrink.
    assert_eq!(shared1_stats.quartets_computed, serial_stats.quartets_computed);
    assert_eq!(shared2_stats.quartets_computed, serial_stats.quartets_computed);
    assert!(shared1_stats.quartets_screened <= serial_stats.quartets_screened);
}
