//! Incremental-vs-full SCF parity: running the drivers with `--incremental`
//! semantics (ΔD builds under density-weighted screening, accumulated onto
//! the reference `G`, periodic full rebuilds) must land on the same
//! converged answer as the plain direct drivers — for RHF and UHF, under
//! every parallel Fock algorithm.
//!
//! Three guarantees are pinned here:
//!
//! - the final energy agrees with the non-incremental run within the SCF
//!   convergence threshold (the accumulated screening error is bounded by
//!   design: every dropped quartet contributes less than `tau` per build,
//!   and full rebuilds reset the accumulation);
//! - the per-iteration `quartets_computed` stat never *grows* across an
//!   incremental stretch, and never exceeds the full-rebuild count — the
//!   whole point of weighting the screening by ΔD;
//! - (with `--features trace`) the trace counter totals still reconcile
//!   exactly with the summed per-iteration [`FockBuildStats`], i.e. the
//!   weighted screening path feeds the same accumulation locals.

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::chem::Molecule;
use phi_scf::hf::{run_scf, run_uhf, FockAlgorithm, FockBuildStats, ScfConfig, UhfConfig};

fn algorithms() -> [FockAlgorithm; 4] {
    [
        FockAlgorithm::MpiOnly { n_ranks: 3 },
        FockAlgorithm::PrivateFock { n_ranks: 2, n_threads: 2 },
        FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
        FockAlgorithm::Distributed { n_ranks: 3 },
    ]
}

/// The two test systems: one with a split-valence basis (so the Schwarz
/// spectrum has some spread) and one minimal-basis multi-atom case.
fn systems() -> [(Molecule, BasisName); 2] {
    [(small::water(), BasisName::B631g), (small::methane(), BasisName::Sto3g)]
}

/// Check the quartet-count discipline of an incremental run's stats:
/// the first build is full, at least one later build is incremental, and
/// within every incremental stretch the surviving-quartet count is
/// non-increasing and bounded by the preceding full build's count.
fn check_quartet_discipline(label: &str, stats: &[FockBuildStats]) {
    assert!(!stats[0].incremental, "{label}: first build must be full");
    assert!(
        stats.iter().any(|s| s.incremental),
        "{label}: no incremental build in {} iterations",
        stats.len()
    );
    let mut prev = stats[0].quartets_computed;
    let mut full = stats[0].quartets_computed;
    for (it, s) in stats.iter().enumerate().skip(1) {
        if s.incremental {
            assert!(
                s.quartets_computed <= prev,
                "{label}: iteration {it} computed {} quartets, up from {prev} \
                 within an incremental stretch",
                s.quartets_computed
            );
            assert!(
                s.quartets_computed <= full,
                "{label}: incremental iteration {it} computed {} quartets, \
                 more than the full build's {full}",
                s.quartets_computed
            );
        } else {
            full = s.quartets_computed;
        }
        prev = s.quartets_computed;
    }
}

#[test]
fn rhf_incremental_matches_full_under_every_algorithm() {
    for (mol, basis) in systems() {
        let b = BasisSet::build(&mol, basis);
        for algorithm in algorithms() {
            let base = ScfConfig { algorithm, ..Default::default() };
            let full = run_scf(&mol, &b, &base);
            let inc =
                run_scf(&mol, &b, &ScfConfig { incremental: true, full_rebuild_every: 6, ..base });
            let label = format!("{} on {basis:?}", algorithm.label());
            assert!(full.converged && inc.converged, "{label}: convergence lost");
            let de = (inc.energy - full.energy).abs();
            assert!(
                de < base.convergence,
                "{label}: incremental energy off by {de:.3e} \
                 ({} vs {})",
                inc.energy,
                full.energy
            );
            check_quartet_discipline(&label, &inc.fock_stats);
            // The non-incremental run must not carry the flag at all.
            assert!(full.fock_stats.iter().all(|s| !s.incremental), "{label}");
        }
    }
}

#[test]
fn uhf_incremental_matches_full_under_every_algorithm() {
    // Closed-shell water driven through the spin-resolved code path, and a
    // genuinely open-shell doublet H3 chain (triplet H2 would converge in
    // one iteration, leaving no incremental stretch to exercise).
    let cases = [
        (small::water(), BasisName::Sto3g, 5usize, 5usize),
        (small::h_chain(3, 1.8), BasisName::Sto3g, 2, 1),
    ];
    for (mol, basis, n_a, n_b) in cases {
        let b = BasisSet::build(&mol, basis);
        for algorithm in algorithms() {
            let base = UhfConfig { algorithm, ..Default::default() };
            let full = run_uhf(&mol, &b, n_a, n_b, &base);
            let inc = run_uhf(
                &mol,
                &b,
                n_a,
                n_b,
                &UhfConfig { incremental: true, full_rebuild_every: 6, ..base },
            );
            let label = format!("UHF({n_a},{n_b}) {} on {basis:?}", algorithm.label());
            assert!(full.converged && inc.converged, "{label}: convergence lost");
            let de = (inc.energy - full.energy).abs();
            assert!(de < base.convergence, "{label}: incremental energy off by {de:.3e}");
            check_quartet_discipline(&label, &inc.fock_stats);
        }
    }
}

#[test]
fn frequent_full_rebuilds_stay_bit_identical_with_the_plain_driver() {
    // full_rebuild_every = 1 means *every* build is a full rebuild under
    // static screening — the incremental machinery must then be a no-op,
    // bit for bit, since full rebuilds bypass the ΔD path entirely.
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::B631g);
    let base = ScfConfig::default();
    let plain = run_scf(&mol, &b, &base);
    let k1 = run_scf(&mol, &b, &ScfConfig { incremental: true, full_rebuild_every: 1, ..base });
    assert_eq!(plain.energy.to_bits(), k1.energy.to_bits());
    assert_eq!(plain.energy_history.len(), k1.energy_history.len());
    for (p, q) in plain.energy_history.iter().zip(&k1.energy_history) {
        assert_eq!(p.to_bits(), q.to_bits());
    }
    assert!(k1.fock_stats.iter().all(|s| !s.incremental));
}

/// With the instrumentation layer compiled in, the counters must still
/// reconcile exactly with the stats during an incremental run: the
/// weighted screening predicate changes *which* quartets survive, not how
/// the survivors are counted.
#[cfg(feature = "trace")]
mod traced {
    use super::*;
    use phi_scf::trace::TraceSession;

    #[test]
    fn incremental_run_counters_reconcile_exactly_with_stats() {
        let mol = small::water();
        let b = BasisSet::build(&mol, BasisName::Sto3g);
        let config = ScfConfig {
            algorithm: FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
            incremental: true,
            full_rebuild_every: 4,
            ..Default::default()
        };
        let session = TraceSession::begin();
        let r = run_scf(&mol, &b, &config);
        let report = session.finish();
        assert!(r.converged);
        assert!(r.fock_stats.iter().any(|s| s.incremental));

        let sum = |f: fn(&FockBuildStats) -> u64| r.fock_stats.iter().map(f).sum::<u64>();
        assert_eq!(report.counter_total("quartets_computed"), sum(|s| s.quartets_computed));
        assert_eq!(report.counter_total("quartets_screened"), sum(|s| s.quartets_screened));
        assert_eq!(report.counter_total("flushes"), sum(|s| s.flushes));
        assert_eq!(
            report.counter_total("dlb.calls") as usize,
            r.fock_stats.iter().map(|s| s.dlb_calls).sum::<usize>()
        );
    }
}
