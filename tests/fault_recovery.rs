//! Fault-injected recovery suite: kill ranks mid-Fock-build under every
//! parallel algorithm and check that survivors reclaim the dead ranks'
//! task leases and still produce the serial Fock matrix; interrupt an SCF
//! and check the checkpointed restart reproduces the uninterrupted energy
//! bit-for-bit.
//!
//! The kill schedule is seeded and deterministic ([`FaultPlan`]), so every
//! failure here replays exactly. CI sweeps additional seeds via the
//! `PHI_FAULT_SEEDS` environment variable (comma-separated integers).

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::dmpi::FaultPlan;
use phi_scf::hf::{run_scf, DensitySet, FockAlgorithm, FockData, ScfConfig};
use phi_scf::linalg::Mat;

/// Seeds to sweep: `PHI_FAULT_SEEDS=1,2,3` overrides the built-in pair.
fn seeds() -> Vec<u64> {
    match std::env::var("PHI_FAULT_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim())
            .filter(|t| !t.is_empty())
            .map(|t| {
                t.parse().unwrap_or_else(|_| {
                    panic!("PHI_FAULT_SEEDS must be comma-separated integers, got '{t}'")
                })
            })
            .collect(),
        Err(_) => vec![11, 42],
    }
}

/// All four parallel builders at four ranks (so up to two deaths still
/// leave a quorum of survivors).
fn algorithms() -> [FockAlgorithm; 4] {
    [
        FockAlgorithm::MpiOnly { n_ranks: 4 },
        FockAlgorithm::PrivateFock { n_ranks: 4, n_threads: 2 },
        FockAlgorithm::SharedFock { n_ranks: 4, n_threads: 2 },
        FockAlgorithm::Distributed { n_ranks: 4 },
    ]
}

fn density(n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        0.2 + ((i * 5 + j * 11) % 7) as f64 * 0.1
    })
}

/// Kill `k` of 4 ranks at seeded DLB tasks and require the recovered Fock
/// to match serial, with the dead ranks' leases visibly reclaimed.
fn check_recovery_after_kills(k: usize) {
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let data = FockData::build(&b);
    let ctx = data.context(&b, 1e-12);
    let d = density(b.n_basis());
    let want = FockAlgorithm::Serial.builder().build(&ctx, &DensitySet::Restricted(&d));

    for seed in seeds() {
        for alg in algorithms() {
            let plan = FaultPlan::random_kills(seed, k);
            let builder = alg.builder_with_faults(Some(plan));
            let got = builder.build(&ctx, &DensitySet::Restricted(&d));
            let diff = got.g.max_abs_diff(&want.g);
            assert!(
                diff <= 1e-12,
                "{} seed {seed}: Fock diff {diff:e} after {k} kills",
                builder.label()
            );
            assert_eq!(
                got.stats.failed_ranks.len(),
                k,
                "{} seed {seed}: expected {k} dead ranks, got {:?}",
                builder.label(),
                got.stats.failed_ranks
            );
            assert!(
                got.stats.faults_injected >= k,
                "{} seed {seed}: {} faults fired",
                builder.label(),
                got.stats.faults_injected
            );
            assert!(
                got.stats.tasks_reclaimed > 0,
                "{} seed {seed}: a rank died holding a lease, so at least \
                 that task must be reclaimed",
                builder.label()
            );
            assert!(
                got.stats.retries > 0,
                "{} seed {seed}: reclaimed tasks must be re-served to survivors",
                builder.label()
            );
        }
    }
}

#[test]
fn killing_one_of_four_ranks_preserves_the_fock_matrix() {
    check_recovery_after_kills(1);
}

#[test]
fn killing_two_of_four_ranks_preserves_the_fock_matrix() {
    check_recovery_after_kills(2);
}

#[test]
fn recovery_covers_both_spin_channels() {
    // The lease loop sits below the spin-generalized digestion, so an
    // unrestricted build must recover both channels.
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let data = FockData::build(&b);
    let ctx = data.context(&b, 1e-12);
    let n = b.n_basis();
    let d_a = density(n);
    let mut d_b = density(n);
    d_b.scale(0.8);
    let dens = DensitySet::Unrestricted { alpha: &d_a, beta: &d_b };
    let want = FockAlgorithm::Serial.builder().build(&ctx, &dens);
    let want_b = want.g_beta.as_ref().expect("serial beta channel");

    for alg in [FockAlgorithm::MpiOnly { n_ranks: 4 }, FockAlgorithm::Distributed { n_ranks: 4 }] {
        let plan = FaultPlan::random_kills(7, 1);
        let got = alg.builder_with_faults(Some(plan)).build(&ctx, &dens);
        let got_b = got.g_beta.as_ref().expect("recovered beta channel");
        assert!(got.g.max_abs_diff(&want.g) <= 1e-12, "{} alpha", alg.label());
        assert!(got_b.max_abs_diff(want_b) <= 1e-12, "{} beta", alg.label());
        assert_eq!(got.stats.failed_ranks.len(), 1);
        assert!(got.stats.tasks_reclaimed > 0);
    }
}

#[test]
fn scf_converges_to_the_fault_free_energy_under_repeated_kills() {
    // The fault plan replays on *every* iteration's build: each one loses
    // a rank and recovers. The converged energy must match the serial
    // driver's.
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let clean = run_scf(&mol, &b, &ScfConfig::default());
    assert!(clean.converged);

    for seed in seeds() {
        let faulty = run_scf(
            &mol,
            &b,
            &ScfConfig {
                algorithm: FockAlgorithm::MpiOnly { n_ranks: 4 },
                faults: Some(FaultPlan::random_kills(seed, 1)),
                ..Default::default()
            },
        );
        assert!(faulty.converged, "seed {seed}: faulty SCF did not converge");
        assert!(
            (faulty.energy - clean.energy).abs() < 1e-10,
            "seed {seed}: faulty {} vs clean {}",
            faulty.energy,
            clean.energy
        );
        let reclaimed: usize = faulty.fock_stats.iter().map(|s| s.tasks_reclaimed).sum();
        assert!(reclaimed > 0, "seed {seed}: every iteration killed a rank");
    }
}

#[test]
fn checkpointed_scf_restart_is_bit_exact() {
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::B631g);
    let full = run_scf(&mol, &b, &ScfConfig::default());
    assert!(full.converged);

    let path =
        std::env::temp_dir().join(format!("phiscf_fault_recovery_{}.ckpt", std::process::id()));
    let interrupted = run_scf(
        &mol,
        &b,
        &ScfConfig { max_iterations: 3, checkpoint_path: Some(path.clone()), ..Default::default() },
    );
    assert!(!interrupted.converged, "3 iterations must not converge 6-31G water");

    let resumed =
        run_scf(&mol, &b, &ScfConfig { resume_from: Some(path.clone()), ..Default::default() });
    let _ = std::fs::remove_file(&path);
    assert!(resumed.converged);
    assert_eq!(
        resumed.energy.to_bits(),
        full.energy.to_bits(),
        "resumed {} must equal uninterrupted {} bit-for-bit",
        resumed.energy,
        full.energy
    );
    assert_eq!(resumed.iterations, full.iterations);
}
