//! Randomized property tests on the core data structures and invariants
//! across the workspace. A small in-tree LCG drives the case generation so
//! the suite runs fully offline; every test is deterministic per seed.

use phi_scf::chem::basis::{custom_shell, BasisName, BasisSet};
use phi_scf::chem::Shell;
use phi_scf::integrals::boys::boys_single;
use phi_scf::integrals::{EriEngine, ShellPairs};
use phi_scf::linalg::{eigh, solve, Mat};

/// Deterministic PRNG (64-bit LCG, top bits) for property-style tests.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }

    /// Uniform in [0, 1).
    fn unit(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [lo, hi).
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in [0, n).
    fn index(&mut self, n: usize) -> usize {
        (self.unit() * n as f64) as usize % n
    }
}

fn random_symmetric(rng: &mut Rng, n: usize, lo: f64, hi: f64) -> Mat {
    let mut m = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = rng.range(lo, hi);
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    m
}

// ---------------------------------------------------------------- linalg --

#[test]
fn eigh_reconstructs_and_is_orthonormal() {
    let mut rng = Rng::new(11);
    for _ in 0..48 {
        let a = random_symmetric(&mut rng, 8, -10.0, 10.0);
        let e = eigh(&a);
        let rebuilt = e.apply(|x| x);
        assert!(
            rebuilt.max_abs_diff(&a) < 1e-8,
            "reconstruction error {}",
            rebuilt.max_abs_diff(&a)
        );
        let vtv = e.vectors.matmul_tn(&e.vectors);
        assert!(vtv.max_abs_diff(&Mat::identity(8)) < 1e-9);
        // Eigenvalue sum equals trace.
        let sum: f64 = e.values.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-8);
    }
}

#[test]
fn lu_solve_has_small_residual() {
    let mut rng = Rng::new(23);
    for _ in 0..48 {
        // Shift the diagonal to keep the system well-conditioned.
        let mut m = random_symmetric(&mut rng, 6, -10.0, 10.0);
        for i in 0..6 {
            m[(i, i)] += 25.0;
        }
        let b: Vec<f64> = (0..6).map(|_| rng.range(-5.0, 5.0)).collect();
        let x = solve(&m, &b).expect("diagonally dominant");
        let r = m.matvec(&x);
        for i in 0..6 {
            assert!((r[i] - b[i]).abs() < 1e-8);
        }
    }
}

// ------------------------------------------------------------------ boys --

#[test]
fn boys_recursion_identity_holds() {
    let mut rng = Rng::new(37);
    for _ in 0..128 {
        let t = rng.range(0.0, 120.0);
        let m = rng.index(10);
        // (2m+1) F_m = 2T F_{m+1} + e^{-T}
        let fm = boys_single(m, t);
        let fm1 = boys_single(m + 1, t);
        let lhs = (2 * m + 1) as f64 * fm;
        let rhs = 2.0 * t * fm1 + (-t).exp();
        assert!(
            (lhs - rhs).abs() < 1e-11 * (1.0 + lhs.abs()),
            "recursion broken at m={m}, T={t}: {lhs} vs {rhs}"
        );
    }
}

#[test]
fn boys_bounds() {
    let mut rng = Rng::new(41);
    for _ in 0..128 {
        let t = rng.range(0.0, 200.0);
        let m = rng.index(12);
        let f = boys_single(m, t);
        assert!(f > 0.0);
        assert!(f <= 1.0 / (2 * m + 1) as f64 + 1e-15, "F_m(T) <= F_m(0)");
    }
}

// ------------------------------------------------------------------- eri --

/// A random single-block contracted shell with l in 0..3.
fn arb_shell(rng: &mut Rng) -> Shell {
    let l = rng.index(3);
    let alpha = rng.range(0.2, 3.0);
    let center = [rng.range(-1.5, 1.5), rng.range(-1.5, 1.5), rng.range(-1.5, 1.5)];
    custom_shell(0, center, vec![alpha], &[(l, vec![1.0])])
}

/// A random shell that may be contracted (up to 3 primitives), may be a
/// Pople composite SP shell, and may carry d functions.
fn arb_rich_shell(rng: &mut Rng) -> Shell {
    let nprim = 1 + rng.index(3);
    let center = [rng.range(-1.5, 1.5), rng.range(-1.5, 1.5), rng.range(-1.5, 1.5)];
    let exps: Vec<f64> = (0..nprim).map(|_| rng.range(0.15, 4.0)).collect();
    let coefs = |rng: &mut Rng| -> Vec<f64> {
        (0..nprim)
            .map(|_| rng.range(0.2, 1.0) * if rng.unit() < 0.3 { -1.0 } else { 1.0 })
            .collect()
    };
    let blocks: Vec<(usize, Vec<f64>)> = match rng.index(4) {
        // Composite SP ("L") shell: S and P sharing exponents.
        0 => vec![(0, coefs(rng)), (1, coefs(rng))],
        // Pure d shell.
        1 => vec![(2, coefs(rng))],
        2 => vec![(0, coefs(rng))],
        _ => vec![(1, coefs(rng))],
    };
    custom_shell(0, center, exps, &blocks)
}

#[test]
fn eri_bra_ket_symmetry() {
    let mut rng = Rng::new(53);
    for _ in 0..24 {
        let (a, b, c, d) =
            (arb_shell(&mut rng), arb_shell(&mut rng), arb_shell(&mut rng), arb_shell(&mut rng));
        let mut engine = EriEngine::new();
        engine.prefactor_cutoff = 0.0;
        let (na, nb, nc, nd) = (a.n_functions(), b.n_functions(), c.n_functions(), d.n_functions());
        let mut abcd = vec![0.0; na * nb * nc * nd];
        let mut cdab = vec![0.0; na * nb * nc * nd];
        engine.shell_quartet(&a, &b, &c, &d, &mut abcd);
        engine.shell_quartet(&c, &d, &a, &b, &mut cdab);
        for ia in 0..na {
            for ib in 0..nb {
                for ic in 0..nc {
                    for id in 0..nd {
                        let v1 = abcd[((ia * nb + ib) * nc + ic) * nd + id];
                        let v2 = cdab[((ic * nd + id) * na + ia) * nb + ib];
                        assert!(
                            (v1 - v2).abs() < 1e-10 * (1.0 + v1.abs()),
                            "(ab|cd) != (cd|ab): {v1} vs {v2}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn eri_diagonal_quartets_are_nonnegative() {
    let mut rng = Rng::new(59);
    for _ in 0..24 {
        let (a, b) = (arb_shell(&mut rng), arb_shell(&mut rng));
        let mut engine = EriEngine::new();
        engine.prefactor_cutoff = 0.0;
        let (na, nb) = (a.n_functions(), b.n_functions());
        let mut buf = vec![0.0; na * nb * na * nb];
        engine.shell_quartet(&a, &b, &a, &b, &mut buf);
        for ia in 0..na {
            for ib in 0..nb {
                let diag = buf[((ia * nb + ib) * na + ia) * nb + ib];
                assert!(diag >= -1e-12, "diagonal ({ia},{ib}) = {diag}");
            }
        }
    }
}

/// The persistent shell-pair path must reproduce the build-on-the-fly path
/// to tight absolute tolerance over random shells, including contracted,
/// composite SP ("L"), and d-function blocks.
#[test]
fn eri_pair_cache_matches_on_the_fly() {
    let mut rng = Rng::new(61);
    for case in 0..40 {
        let shells = vec![
            arb_rich_shell(&mut rng),
            arb_rich_shell(&mut rng),
            arb_rich_shell(&mut rng),
            arb_rich_shell(&mut rng),
        ];
        let basis = BasisSet::from_shells(BasisName::Sto3g, shells);
        // Keep every primitive pair so the comparison covers the full
        // contraction space, not just the survivors.
        let pairs = ShellPairs::build_with(&basis, 0.0);
        let mut engine = EriEngine::new();
        engine.prefactor_cutoff = 0.0;
        let (a, b, c, d) = (1usize, 0usize, 3usize, 2usize);
        let (sa, sb, sc, sd) =
            (&basis.shells[a], &basis.shells[b], &basis.shells[c], &basis.shells[d]);
        let len = sa.n_functions() * sb.n_functions() * sc.n_functions() * sd.n_functions();
        let mut fly = vec![0.0; len];
        let mut cached = vec![0.0; len];
        engine.shell_quartet(sa, sb, sc, sd, &mut fly);
        engine.shell_quartet_pairs(pairs.pair(a, b), pairs.pair(c, d), &mut cached);
        for (k, (x, y)) in fly.iter().zip(&cached).enumerate() {
            assert!(
                (x - y).abs() <= 1e-12,
                "case {case}, element {k}: on-the-fly {x} vs pair-cached {y}"
            );
        }
    }
}

/// The class-specialized kernel path must respect the full 8-fold
/// permutational symmetry of real ERIs, across random class combinations
/// (s/p/d/SP, contracted): (ab|cd) = (ba|cd) = (ab|dc) = (ba|dc) =
/// (cd|ab) = (dc|ab) = (cd|ba) = (dc|ba).
#[test]
fn eri_kernel_path_eightfold_symmetry() {
    let mut rng = Rng::new(67);
    let mut engine = EriEngine::new();
    engine.prefactor_cutoff = 0.0;
    for case in 0..24 {
        let (a, b, c, d) = (
            arb_rich_shell(&mut rng),
            arb_rich_shell(&mut rng),
            arb_rich_shell(&mut rng),
            arb_rich_shell(&mut rng),
        );
        let (na, nb, nc, nd) = (a.n_functions(), b.n_functions(), c.n_functions(), d.n_functions());
        let eval = |engine: &mut EriEngine, a: &Shell, b: &Shell, c: &Shell, d: &Shell| {
            let mut out =
                vec![0.0; a.n_functions() * b.n_functions() * c.n_functions() * d.n_functions()];
            engine.shell_quartet(a, b, c, d, &mut out);
            out
        };
        let abcd = eval(&mut engine, &a, &b, &c, &d);
        let bacd = eval(&mut engine, &b, &a, &c, &d);
        let abdc = eval(&mut engine, &a, &b, &d, &c);
        let badc = eval(&mut engine, &b, &a, &d, &c);
        let cdab = eval(&mut engine, &c, &d, &a, &b);
        let dcab = eval(&mut engine, &d, &c, &a, &b);
        let cdba = eval(&mut engine, &c, &d, &b, &a);
        let dcba = eval(&mut engine, &d, &c, &b, &a);
        for ia in 0..na {
            for ib in 0..nb {
                for ic in 0..nc {
                    for id in 0..nd {
                        let want = abcd[((ia * nb + ib) * nc + ic) * nd + id];
                        let perms = [
                            ("ba|cd", bacd[((ib * na + ia) * nc + ic) * nd + id]),
                            ("ab|dc", abdc[((ia * nb + ib) * nd + id) * nc + ic]),
                            ("ba|dc", badc[((ib * na + ia) * nd + id) * nc + ic]),
                            ("cd|ab", cdab[((ic * nd + id) * na + ia) * nb + ib]),
                            ("dc|ab", dcab[((id * nc + ic) * na + ia) * nb + ib]),
                            ("cd|ba", cdba[((ic * nd + id) * nb + ib) * na + ia]),
                            ("dc|ba", dcba[((id * nc + ic) * nb + ib) * na + ia]),
                        ];
                        for (name, got) in perms {
                            assert!(
                                (want - got).abs() < 1e-10 * (1.0 + want.abs()),
                                "case {case}, ({name}) at ({ia},{ib},{ic},{id}): \
                                 {want} vs {got}"
                            );
                        }
                    }
                }
            }
        }
    }
    assert!(engine.spec_quartets_computed() > 0, "kernel path did not dispatch");
}

/// The Schwarz inequality |(ij|kl)| <= sqrt((ij|ij)) * sqrt((kl|kl)) must
/// hold element-wise on the specialized kernel path — it is the soundness
/// basis of every screening layer above the engine.
#[test]
fn eri_kernel_path_respects_schwarz_bound() {
    let mut rng = Rng::new(71);
    let mut engine = EriEngine::new();
    engine.prefactor_cutoff = 0.0;
    for case in 0..24 {
        let (a, b, c, d) = (
            arb_rich_shell(&mut rng),
            arb_rich_shell(&mut rng),
            arb_rich_shell(&mut rng),
            arb_rich_shell(&mut rng),
        );
        let (na, nb, nc, nd) = (a.n_functions(), b.n_functions(), c.n_functions(), d.n_functions());
        let mut abcd = vec![0.0; na * nb * nc * nd];
        let mut abab = vec![0.0; na * nb * na * nb];
        let mut cdcd = vec![0.0; nc * nd * nc * nd];
        engine.shell_quartet(&a, &b, &c, &d, &mut abcd);
        engine.shell_quartet(&a, &b, &a, &b, &mut abab);
        engine.shell_quartet(&c, &d, &c, &d, &mut cdcd);
        for ia in 0..na {
            for ib in 0..nb {
                let q_ab = abab[((ia * nb + ib) * na + ia) * nb + ib].max(0.0).sqrt();
                for ic in 0..nc {
                    for id in 0..nd {
                        let q_cd = cdcd[((ic * nd + id) * nc + ic) * nd + id].max(0.0).sqrt();
                        let v = abcd[((ia * nb + ib) * nc + ic) * nd + id].abs();
                        assert!(
                            v <= q_ab * q_cd + 1e-10,
                            "case {case}, ({ia}{ib}|{ic}{id}): |{v}| > {} * {}",
                            q_ab,
                            q_cd
                        );
                    }
                }
            }
        }
    }
}

// ------------------------------------------------------------------ fock --

/// End-to-end differential test: a serial Fock build with the specialized
/// kernels must match the same build forced down the generic path, element
/// by element, on a basis that exercises s, p, SP, and d classes.
#[test]
fn serial_fock_matches_with_kernels_on_and_off() {
    use phi_scf::hf::fock::engine::FockContext;
    use phi_scf::hf::fock::{serial::build_serial, DensitySet};
    use phi_scf::integrals::Screening;

    let mol = phi_scf::chem::geom::small::water();
    let basis = BasisSet::build(&mol, BasisName::B631gd);
    let pairs = ShellPairs::build(&basis);
    let screening = Screening::from_pairs(&basis, &pairs);
    let n = basis.n_basis();
    let mut rng = Rng::new(73);
    let d = random_symmetric(&mut rng, n, -0.4, 0.4);
    let ctx = FockContext::new(&basis, &pairs, &screening, 1e-11);
    let on = build_serial(&ctx, &DensitySet::Restricted(&d));
    let off = build_serial(&ctx.with_eri_kernels(false), &DensitySet::Restricted(&d));
    assert!(
        on.g.max_abs_diff(&off.g) <= 1e-12,
        "kernels-on vs kernels-off G diverge: {}",
        on.g.max_abs_diff(&off.g)
    );
    // The kernel build must actually have dispatched specialized classes,
    // and the generic build must not have.
    assert!(on.stats.eri_spec_quartets() > 0);
    assert_eq!(off.stats.eri_spec_quartets(), 0);
    assert_eq!(
        on.stats.quartets_computed, off.stats.quartets_computed,
        "both paths must screen identically"
    );
}

#[test]
fn g_build_is_linear_and_symmetric() {
    use phi_scf::hf::fock::serial::build_g_serial;
    use phi_scf::integrals::Screening;

    let mol = phi_scf::chem::geom::small::hydrogen_molecule(1.4);
    let basis = BasisSet::build(&mol, BasisName::B631g);
    let pairs = ShellPairs::build(&basis);
    let screening = Screening::from_pairs(&basis, &pairs);
    let n = basis.n_basis();
    for seed in 0..12u64 {
        let mut rng = Rng::new(seed.wrapping_mul(77).wrapping_add(5));
        let d = random_symmetric(&mut rng, n, -0.5, 0.5);
        let g1 = build_g_serial(&basis, &pairs, &screening, 0.0, &d).g;
        assert!(g1.is_symmetric(1e-10));
        let mut d2 = d.clone();
        d2.scale(2.0);
        let g2 = build_g_serial(&basis, &pairs, &screening, 0.0, &d2).g;
        let mut g1x2 = g1.clone();
        g1x2.scale(2.0);
        assert!(g2.max_abs_diff(&g1x2) < 1e-9, "G not linear in D");
    }
}

// -------------------------------------------------------------- runtimes --

#[test]
fn dynamic_worksharing_partitions_any_range() {
    use std::sync::atomic::{AtomicU32, Ordering};
    let mut rng = Rng::new(71);
    for _ in 0..16 {
        let n = rng.index(500);
        let threads = 1 + rng.index(5);
        let chunk = 1 + rng.index(7);
        let team = phi_scf::omp::Team::new(threads);
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        team.parallel(|ctx| {
            ctx.for_each(n, phi_scf::omp::Schedule::Dynamic { chunk }, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} hit wrong count");
        }
    }
}

#[test]
fn gsumf_matches_scalar_sum() {
    let mut rng = Rng::new(83);
    for _ in 0..16 {
        let n_ranks = 1 + rng.index(5);
        let values: Vec<f64> = (0..n_ranks).map(|_| rng.range(-100.0, 100.0)).collect();
        let values2 = values.clone();
        let res = phi_scf::dmpi::run_world(n_ranks, move |rank| {
            let mut v = vec![values2[rank.rank()]];
            rank.gsumf(&mut v);
            v[0]
        });
        let want: f64 = values.iter().sum();
        for got in res.per_rank {
            assert!((got - want).abs() < 1e-10);
        }
    }
}
