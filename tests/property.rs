//! Property-based tests (proptest) on the core data structures and
//! invariants across the workspace.

use proptest::prelude::*;
use phi_scf::chem::basis::{custom_shell, BasisName, BasisSet};
use phi_scf::integrals::boys::boys_single;
use phi_scf::integrals::EriEngine;
use phi_scf::linalg::{eigh, solve, Mat};

// ---------------------------------------------------------------- linalg --

fn symmetric_mat(n: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-10.0f64..10.0, n * (n + 1) / 2).prop_map(move |tri| {
        let mut m = Mat::zeros(n, n);
        let mut it = tri.into_iter();
        for i in 0..n {
            for j in 0..=i {
                let v = it.next().unwrap();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn eigh_reconstructs_and_is_orthonormal(a in symmetric_mat(8)) {
        let e = eigh(&a);
        let rebuilt = e.apply(|x| x);
        prop_assert!(rebuilt.max_abs_diff(&a) < 1e-8,
            "reconstruction error {}", rebuilt.max_abs_diff(&a));
        let vtv = e.vectors.matmul_tn(&e.vectors);
        prop_assert!(vtv.max_abs_diff(&Mat::identity(8)) < 1e-9);
        // Eigenvalue sum equals trace.
        let sum: f64 = e.values.iter().sum();
        prop_assert!((sum - a.trace()).abs() < 1e-8);
    }

    #[test]
    fn lu_solve_has_small_residual(
        a in symmetric_mat(6),
        b in proptest::collection::vec(-5.0f64..5.0, 6),
    ) {
        // Shift the diagonal to keep the system well-conditioned.
        let mut m = a.clone();
        for i in 0..6 {
            m[(i, i)] += 25.0;
        }
        let x = solve(&m, &b).expect("diagonally dominant");
        let r = m.matvec(&x);
        for i in 0..6 {
            prop_assert!((r[i] - b[i]).abs() < 1e-8);
        }
    }
}

// ------------------------------------------------------------------ boys --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn boys_recursion_identity_holds(t in 0.0f64..120.0, m in 0usize..10) {
        // (2m+1) F_m = 2T F_{m+1} + e^{-T}
        let fm = boys_single(m, t);
        let fm1 = boys_single(m + 1, t);
        let lhs = (2 * m + 1) as f64 * fm;
        let rhs = 2.0 * t * fm1 + (-t).exp();
        prop_assert!((lhs - rhs).abs() < 1e-11 * (1.0 + lhs.abs()),
            "recursion broken at m={m}, T={t}: {lhs} vs {rhs}");
    }

    #[test]
    fn boys_bounds(t in 0.0f64..200.0, m in 0usize..12) {
        let f = boys_single(m, t);
        prop_assert!(f > 0.0);
        prop_assert!(f <= 1.0 / (2 * m + 1) as f64 + 1e-15, "F_m(T) <= F_m(0)");
    }
}

// ------------------------------------------------------------------- eri --

fn arb_shell() -> impl Strategy<Value = phi_scf::chem::Shell> {
    (
        0usize..3,
        0.2f64..3.0,
        prop::array::uniform3(-1.5f64..1.5),
    )
        .prop_map(|(l, alpha, center)| custom_shell(0, center, vec![alpha], &[(l, vec![1.0])]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn eri_bra_ket_symmetry(a in arb_shell(), b in arb_shell(), c in arb_shell(), d in arb_shell()) {
        let mut engine = EriEngine::new();
        engine.prefactor_cutoff = 0.0;
        let (na, nb, nc, nd) =
            (a.n_functions(), b.n_functions(), c.n_functions(), d.n_functions());
        let mut abcd = vec![0.0; na * nb * nc * nd];
        let mut cdab = vec![0.0; na * nb * nc * nd];
        engine.shell_quartet(&a, &b, &c, &d, &mut abcd);
        engine.shell_quartet(&c, &d, &a, &b, &mut cdab);
        for ia in 0..na {
            for ib in 0..nb {
                for ic in 0..nc {
                    for id in 0..nd {
                        let v1 = abcd[((ia * nb + ib) * nc + ic) * nd + id];
                        let v2 = cdab[((ic * nd + id) * na + ia) * nb + ib];
                        prop_assert!((v1 - v2).abs() < 1e-10 * (1.0 + v1.abs()),
                            "(ab|cd) != (cd|ab): {v1} vs {v2}");
                    }
                }
            }
        }
    }

    #[test]
    fn eri_diagonal_quartets_are_nonnegative(a in arb_shell(), b in arb_shell()) {
        let mut engine = EriEngine::new();
        engine.prefactor_cutoff = 0.0;
        let (na, nb) = (a.n_functions(), b.n_functions());
        let mut buf = vec![0.0; na * nb * na * nb];
        engine.shell_quartet(&a, &b, &a, &b, &mut buf);
        for ia in 0..na {
            for ib in 0..nb {
                let diag = buf[((ia * nb + ib) * na + ia) * nb + ib];
                prop_assert!(diag >= -1e-12, "diagonal ({ia},{ib}) = {diag}");
            }
        }
    }
}

// ------------------------------------------------------------------ fock --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn g_build_is_linear_and_symmetric(seed in 0u64..1000) {
        use phi_scf::hf::fock::serial::build_g_serial;
        use phi_scf::integrals::Screening;

        let mol = phi_scf::chem::geom::small::hydrogen_molecule(1.4);
        let basis = BasisSet::build(&mol, BasisName::B631g);
        let screening = Screening::compute(&basis);
        let n = basis.n_basis();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut d = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                d[(i, j)] = v;
                d[(j, i)] = v;
            }
        }
        let g1 = build_g_serial(&basis, &screening, 0.0, &d).g;
        prop_assert!(g1.is_symmetric(1e-10));
        let mut d2 = d.clone();
        d2.scale(2.0);
        let g2 = build_g_serial(&basis, &screening, 0.0, &d2).g;
        let mut g1x2 = g1.clone();
        g1x2.scale(2.0);
        prop_assert!(g2.max_abs_diff(&g1x2) < 1e-9, "G not linear in D");
    }
}

// -------------------------------------------------------------- runtimes --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dynamic_worksharing_partitions_any_range(
        n in 0usize..500,
        threads in 1usize..6,
        chunk in 1usize..8,
    ) {
        use std::sync::atomic::{AtomicU32, Ordering};
        let team = phi_scf::omp::Team::new(threads);
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        team.parallel(|ctx| {
            ctx.for_each(n, phi_scf::omp::Schedule::Dynamic { chunk }, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "index {} hit wrong count", i);
        }
    }

    #[test]
    fn gsumf_matches_scalar_sum(values in proptest::collection::vec(-100.0f64..100.0, 1..6)) {
        let n_ranks = values.len();
        let values2 = values.clone();
        let res = phi_scf::dmpi::run_world(n_ranks, move |rank| {
            let mut v = vec![values2[rank.rank()]];
            rank.gsumf(&mut v);
            v[0]
        });
        let want: f64 = values.iter().sum();
        for got in res.per_rank {
            prop_assert!((got - want).abs() < 1e-10);
        }
    }
}
