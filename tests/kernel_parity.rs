//! Differential-testing harness for the class-specialized ERI kernels:
//! every specialized kernel against the generic McMurchie–Davidson path,
//! over seeded random shell quartets (random centers, exponents,
//! contraction depths 1–6, every class permutation of {S, P, D, SP}) and
//! the degenerate configurations that historically break integral codes
//! (coincident centers, near-zero exponents, zero AB/CD distance).
//!
//! Parity is asserted at `<= 1e-14` per integral — the acceptance bound of
//! ISSUE 9 — but the kernels are *designed* for exact arithmetic replay,
//! so any observed difference at all is a regression in the making (the
//! in-crate `specialized_kernels_match_generic_bitwise` test pins the
//! stronger bitwise contract on a fixed geometry).
//!
//! Seeds sweep through `PHI_KERNEL_SEEDS` (comma-separated), the same
//! pattern the fault matrix uses with `PHI_FAULT_SEEDS`; CI runs four.

use phi_scf::chem::basis::custom_shell;
use phi_scf::chem::Shell;
use phi_scf::integrals::EriEngine;

/// Seeds to sweep: `PHI_KERNEL_SEEDS=1,2,3` overrides the built-in pair.
fn seeds() -> Vec<u64> {
    match std::env::var("PHI_KERNEL_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim())
            .filter(|t| !t.is_empty())
            .map(|t| {
                t.parse().unwrap_or_else(|_| {
                    panic!("PHI_KERNEL_SEEDS must be comma-separated integers, got '{t}'")
                })
            })
            .collect(),
        Err(_) => vec![7, 19],
    }
}

/// Deterministic PRNG (64-bit LCG, top bits), as in tests/property.rs.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }

    fn unit(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    fn index(&mut self, n: usize) -> usize {
        (self.unit() * n as f64) as usize % n
    }
}

/// The shell classes the specialized kernels cover: pure S/P/D blocks and
/// the Pople composite SP ("L") shell.
const KINDS: [&str; 4] = ["S", "P", "D", "SP"];

/// A random contracted shell of the given class at the given center with
/// `depth` primitives (1..=6).
fn class_shell(rng: &mut Rng, kind: usize, depth: usize, center: [f64; 3]) -> Shell {
    let exps: Vec<f64> = (0..depth).map(|_| rng.range(0.12, 5.0)).collect();
    let mut coefs = || -> Vec<f64> {
        (0..depth)
            .map(|_| rng.range(0.2, 1.0) * if rng.unit() < 0.3 { -1.0 } else { 1.0 })
            .collect()
    };
    let blocks: Vec<(usize, Vec<f64>)> = match kind {
        0 => vec![(0, coefs())],
        1 => vec![(1, coefs())],
        2 => vec![(2, coefs())],
        _ => vec![(0, coefs()), (1, coefs())],
    };
    custom_shell(0, center, exps, &blocks)
}

fn rand_center(rng: &mut Rng) -> [f64; 3] {
    [rng.range(-1.5, 1.5), rng.range(-1.5, 1.5), rng.range(-1.5, 1.5)]
}

/// `class_shell` at a freshly drawn random center (avoids two simultaneous
/// `&mut rng` borrows at the call sites).
fn rand_shell(rng: &mut Rng, kind: usize, depth: usize) -> Shell {
    let center = rand_center(rng);
    class_shell(rng, kind, depth, center)
}

/// Evaluate the quartet on both paths and assert `<= 1e-14` per integral.
/// Returns the kernel-path values for further checks.
fn assert_parity(
    spec: &mut EriEngine,
    generic: &mut EriEngine,
    a: &Shell,
    b: &Shell,
    c: &Shell,
    d: &Shell,
    what: &str,
) -> Vec<f64> {
    let len = a.n_functions() * b.n_functions() * c.n_functions() * d.n_functions();
    let mut vs = vec![0.0; len];
    let mut vg = vec![0.0; len];
    spec.shell_quartet(a, b, c, d, &mut vs);
    generic.shell_quartet(a, b, c, d, &mut vg);
    for (k, (x, y)) in vs.iter().zip(&vg).enumerate() {
        assert!(
            (x - y).abs() <= 1e-14,
            "{what}: element {k} diverges: kernel {x:.17e} vs generic {y:.17e}"
        );
    }
    vs
}

/// Every class permutation {S,P,D,SP}^4, random geometry/exponents/
/// contraction per case, per seed. Covers all 16 specialized (l_bra,
/// l_ket) slots reachable from s/p/SP/d shells, on both bra and ket sides.
#[test]
#[allow(clippy::needless_range_loop)] // index drives both shells and labels
fn all_class_permutations_match_generic() {
    for seed in seeds() {
        let mut rng = Rng::new(seed);
        let mut spec = EriEngine::new();
        spec.prefactor_cutoff = 0.0;
        let mut generic = EriEngine::generic_only();
        generic.prefactor_cutoff = 0.0;
        for ka in 0..KINDS.len() {
            for kb in 0..KINDS.len() {
                for kc in 0..KINDS.len() {
                    for kd in 0..KINDS.len() {
                        let depth = 1 + (seed as usize + ka + kb + kc + kd) % 3;
                        let a = rand_shell(&mut rng, ka, depth);
                        let b = rand_shell(&mut rng, kb, depth);
                        let c = rand_shell(&mut rng, kc, depth);
                        let d = rand_shell(&mut rng, kd, depth);
                        let what = format!(
                            "seed {seed}, class {}{}{}{}",
                            KINDS[ka], KINDS[kb], KINDS[kc], KINDS[kd]
                        );
                        assert_parity(&mut spec, &mut generic, &a, &b, &c, &d, &what);
                    }
                }
            }
        }
        assert!(spec.spec_quartets_computed() > 0, "no specialized kernel ran");
        assert_eq!(
            generic.spec_quartets_computed(),
            0,
            "generic_only engine must never dispatch a specialized kernel"
        );
    }
}

/// Deep contractions (depth 6 on every shell) on the heavy classes — the
/// regime where the survivor-compaction and batched-Boys phases process
/// hundreds of primitive quartets per shell quartet.
#[test]
fn deep_contractions_match_generic() {
    for seed in seeds() {
        let mut rng = Rng::new(seed ^ 0xD00D);
        let mut spec = EriEngine::new();
        spec.prefactor_cutoff = 0.0;
        let mut generic = EriEngine::generic_only();
        generic.prefactor_cutoff = 0.0;
        for &(ka, kb, kc, kd) in &[(2, 2, 2, 2), (3, 3, 3, 3), (2, 3, 0, 2), (3, 1, 2, 3)] {
            let a = rand_shell(&mut rng, ka, 6);
            let b = rand_shell(&mut rng, kb, 6);
            let c = rand_shell(&mut rng, kc, 6);
            let d = rand_shell(&mut rng, kd, 6);
            let what =
                format!("seed {seed}, deep {}{}{}{}", KINDS[ka], KINDS[kb], KINDS[kc], KINDS[kd]);
            assert_parity(&mut spec, &mut generic, &a, &b, &c, &d, &what);
        }
    }
}

/// Degenerate configurations: all four shells on one center, zero AB and
/// CD distances (same-center pairs at different pair centers), and
/// near-zero exponents. These exercise the `E`-table odd-moment zeros
/// (the sparse entry lists shrink), the Boys small-argument branch, and
/// the `T = 0` Hermite recursion.
#[test]
fn degenerate_geometries_match_generic() {
    for seed in seeds() {
        let mut rng = Rng::new(seed ^ 0xBEEF);
        let mut spec = EriEngine::new();
        spec.prefactor_cutoff = 0.0;
        let mut generic = EriEngine::generic_only();
        generic.prefactor_cutoff = 0.0;
        for kind_set in 0..KINDS.len() {
            // Coincident centers: the full quartet on one point.
            let origin = [0.3, -0.2, 0.1];
            let a = class_shell(&mut rng, kind_set, 2, origin);
            let b = class_shell(&mut rng, (kind_set + 1) % 4, 2, origin);
            let c = class_shell(&mut rng, (kind_set + 2) % 4, 2, origin);
            let d = class_shell(&mut rng, (kind_set + 3) % 4, 2, origin);
            assert_parity(
                &mut spec,
                &mut generic,
                &a,
                &b,
                &c,
                &d,
                &format!("seed {seed}, coincident centers, kinds from {kind_set}"),
            );

            // Zero AB and CD distance, nonzero bra-ket separation.
            let p1 = [0.0, 0.0, 0.0];
            let p2 = [0.0, 0.0, 1.7];
            let a = class_shell(&mut rng, kind_set, 3, p1);
            let b = class_shell(&mut rng, (kind_set + 2) % 4, 3, p1);
            let c = class_shell(&mut rng, (kind_set + 1) % 4, 3, p2);
            let d = class_shell(&mut rng, (kind_set + 3) % 4, 3, p2);
            assert_parity(
                &mut spec,
                &mut generic,
                &a,
                &b,
                &c,
                &d,
                &format!("seed {seed}, zero AB/CD distance, kinds from {kind_set}"),
            );

            // Near-zero exponents: extremely diffuse primitives (tiny Boys
            // arguments, huge prefactors).
            let diffuse_center = rand_center(&mut rng);
            let diffuse = custom_shell(
                0,
                diffuse_center,
                vec![1e-6, 0.8],
                &[(kind_set.min(2), vec![0.7, 0.4])],
            );
            let probe = rand_shell(&mut rng, (kind_set + 1) % 4, 2);
            assert_parity(
                &mut spec,
                &mut generic,
                &diffuse,
                &probe,
                &probe,
                &diffuse,
                &format!("seed {seed}, near-zero exponent, kind {kind_set}"),
            );
        }
    }
}

/// The default screened configuration (prefactor cutoff 1e-18) must agree
/// too: both paths apply the same screen, so the same primitive quartets
/// survive on each side.
#[test]
fn screened_quartets_match_generic() {
    for seed in seeds() {
        let mut rng = Rng::new(seed ^ 0xACE);
        let mut spec = EriEngine::new();
        let mut generic = EriEngine::generic_only();
        for case in 0..12 {
            let (ka, kb, kc, kd) = (rng.index(4), rng.index(4), rng.index(4), rng.index(4));
            // Mix near and far centers so the screen actually fires.
            let far = if case % 3 == 0 { 18.0 } else { 1.0 };
            let (da, db, dc, dd) =
                (1 + rng.index(3), 1 + rng.index(3), 1 + rng.index(3), 1 + rng.index(3));
            let a = rand_shell(&mut rng, ka, da);
            let b = class_shell(&mut rng, kb, db, [far, 0.0, 0.2]);
            let c = rand_shell(&mut rng, kc, dc);
            let d = class_shell(&mut rng, kd, dd, [0.0, far, -0.1]);
            assert_parity(
                &mut spec,
                &mut generic,
                &a,
                &b,
                &c,
                &d,
                &format!("seed {seed}, screened case {case}"),
            );
        }
        assert_eq!(
            spec.prim_quartets_computed(),
            generic.prim_quartets_computed(),
            "both paths must screen identically"
        );
    }
}
