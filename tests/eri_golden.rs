//! Golden-value ERI regression tests.
//!
//! The differential harness (tests/kernel_parity.rs) proves the specialized
//! kernels agree with the generic path — but both could drift *together*.
//! This file pins absolute values: the classic H2/STO-3G two-electron
//! integrals (cross-checked against Szabo & Ostlund Table 3.12 at R = 1.4
//! bohr) and a set of water/6-31G p-class elements, all to 12 significant
//! digits, asserted on BOTH the kernel and the generic path. A silent
//! change to either path fails loudly here, not just self-consistently.

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::chem::Shell;
use phi_scf::integrals::EriEngine;

/// Relative tolerance matching 12-significant-digit pinned literals.
const TOL_12SIG: f64 = 1e-11;

/// Evaluate one shell quartet on the given engine.
fn quartet(engine: &mut EriEngine, a: &Shell, b: &Shell, c: &Shell, d: &Shell) -> Vec<f64> {
    let mut out = vec![0.0; a.n_functions() * b.n_functions() * c.n_functions() * d.n_functions()];
    engine.shell_quartet(a, b, c, d, &mut out);
    out
}

/// Assert `got` matches a 12-significant-digit golden literal, on both the
/// kernel path and the generic path.
fn assert_golden(got_kernel: f64, got_generic: f64, want: f64, what: &str) {
    for (path, got) in [("kernel", got_kernel), ("generic", got_generic)] {
        let rel = (got - want).abs() / want.abs().max(1e-300);
        assert!(
            rel <= TOL_12SIG,
            "{what} [{path}]: got {got:.15e}, golden {want:.15e}, rel err {rel:.2e}"
        );
    }
}

/// Values that are exactly zero by symmetry must stay (numerically) zero.
fn assert_symmetry_zero(got_kernel: f64, got_generic: f64, what: &str) {
    for (path, got) in [("kernel", got_kernel), ("generic", got_generic)] {
        assert!(got.abs() <= 1e-15, "{what} [{path}]: expected symmetry zero, got {got:.3e}");
    }
}

/// H2/STO-3G at R = 1.4 bohr: the ssss class against the textbook values
/// (phi1 phi1|phi1 phi1) = 0.7746, (phi1 phi1|phi2 phi2) = 0.5697,
/// (phi1 phi2|phi1 phi2) = 0.2970 — and against this implementation's own
/// 12-digit values so the pin is much tighter than the 4-digit reference.
#[test]
fn h2_sto3g_ssss_golden() {
    let b = BasisSet::build(&small::hydrogen_molecule(1.4), BasisName::Sto3g);
    assert_eq!(b.n_shells(), 2, "H2/STO-3G is two s shells");
    let sh = &b.shells;
    let mut spec = EriEngine::new();
    let mut generic = EriEngine::generic_only();

    // (shell indices, textbook value, golden 12-digit value)
    let cases: [(usize, usize, usize, usize, f64, f64, &str); 3] = [
        (0, 0, 0, 0, 0.7746, 7.74605944211e-1, "(11|11)"),
        (0, 0, 1, 1, 0.5697, 5.69675926472e-1, "(11|22)"),
        (0, 1, 0, 1, 0.2970, 2.97028541181e-1, "(12|12)"),
    ];
    for (i, j, k, l, textbook, golden, name) in cases {
        let vk = quartet(&mut spec, &sh[i], &sh[j], &sh[k], &sh[l])[0];
        let vg = quartet(&mut generic, &sh[i], &sh[j], &sh[k], &sh[l])[0];
        assert!(
            (vk - textbook).abs() < 1e-4,
            "{name}: {vk:.6} disagrees with the Szabo-Ostlund value {textbook}"
        );
        assert_golden(vk, vg, golden, name);
    }
    assert!(spec.spec_quartets_computed() > 0, "ssss must dispatch to a specialized kernel");
}

/// Water/6-31G p-class golden values: elements of quartets built from the
/// oxygen SP (L) shells — the composite class the paper's C6/6-31G(d)
/// workload is dominated by. Shell layout (asserted): 0 = O s core,
/// 1..=2 = O sp valence, 3..=6 = H s. Function order within an SP shell
/// is [s, px, py, pz].
#[test]
fn water_631g_p_class_golden() {
    let w = BasisSet::build(&small::water(), BasisName::B631g);
    assert_eq!(w.n_shells(), 7, "water/6-31G is 7 shells");
    let sh = &w.shells;
    assert_eq!(sh[1].n_functions(), 4, "shell 1 is an oxygen SP shell");
    assert_eq!(sh[2].n_functions(), 4, "shell 2 is an oxygen SP shell");
    let mut spec = EriEngine::new();
    let mut generic = EriEngine::generic_only();

    // (L1 L1 | L1 L1): the all-SP quartet, element (fa fb|fc fd).
    let vk = quartet(&mut spec, &sh[1], &sh[1], &sh[1], &sh[1]);
    let vg = quartet(&mut generic, &sh[1], &sh[1], &sh[1], &sh[1]);
    let idx = |fa: usize, fb: usize, fc: usize, fd: usize| ((fa * 4 + fb) * 4 + fc) * 4 + fd;
    let cases: [(usize, usize, usize, usize, f64, &str); 6] = [
        (0, 0, 0, 0, 1.02967715624, "(ss|ss)"),
        (1, 1, 0, 0, 1.03921285459, "(px px|ss)"),
        (1, 1, 1, 1, 1.13687533194, "(px px|px px)"),
        (1, 2, 1, 2, 6.11609658167e-2, "(px py|px py)"),
        (1, 1, 2, 2, 1.01455340030, "(px px|py py)"),
        (3, 3, 3, 3, 1.13687533194, "(pz pz|pz pz)"),
    ];
    for (fa, fb, fc, fd, golden, name) in cases {
        assert_golden(vk[idx(fa, fb, fc, fd)], vg[idx(fa, fb, fc, fd)], golden, name);
    }

    // (L1 L2 | H1s H1s): mixed SP bra over an s-only ket.
    let vk = quartet(&mut spec, &sh[1], &sh[2], &sh[3], &sh[3]);
    let vg = quartet(&mut generic, &sh[1], &sh[2], &sh[3], &sh[3]);
    let jdx = |fa: usize, fb: usize| fa * 4 + fb;
    assert_golden(vk[jdx(0, 0)], vg[jdx(0, 0)], 4.08218033706e-1, "(L1s L2s|hh)");
    assert_golden(vk[jdx(1, 1)], vg[jdx(1, 1)], 2.77378905660e-1, "(L1px L2px|hh)");
    assert_golden(vk[jdx(3, 3)], vg[jdx(3, 3)], 2.64415885594e-1, "(L1pz L2pz|hh)");
    // The water plane makes the lone out-of-plane p component odd:
    // its overlap-like couplings to s vanish identically.
    assert_symmetry_zero(vk[jdx(2, 0)], vg[jdx(2, 0)], "(L1py L2s|hh)");

    // (L2 H | L2 H'): p functions split across bra and ket.
    let vk = quartet(&mut spec, &sh[2], &sh[3], &sh[2], &sh[4]);
    let vg = quartet(&mut generic, &sh[2], &sh[3], &sh[2], &sh[4]);
    let kdx = |fa: usize, fc: usize| fa * 4 + fc;
    assert_golden(vk[kdx(0, 0)], vg[kdx(0, 0)], 1.73568411240e-1, "(L2s h|L2s h')");
    assert_golden(vk[kdx(1, 1)], vg[kdx(1, 1)], 1.41863966344e-1, "(L2px h|L2px h')");
    assert_symmetry_zero(vk[kdx(3, 2)], vg[kdx(3, 2)], "(L2pz h|L2py h')");

    assert!(spec.spec_quartets_computed() > 0, "SP quartets must dispatch to kernels");
    assert_eq!(generic.spec_quartets_computed(), 0);
}
