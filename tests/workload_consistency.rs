//! The simulator's workload statistics must agree with what the *real*
//! Fock builders actually do: same quartet counts, same screening
//! behaviour. This ties the performance model to the executing code.

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::hf::fock::serial::build_g_serial;
use phi_scf::hf::{DensitySet, FockAlgorithm, FockData};
use phi_scf::integrals::screening::WorkloadStats;
use phi_scf::integrals::{Screening, ShellPairs};
use phi_scf::linalg::Mat;

#[test]
fn fenwick_counts_match_real_build_quartets() {
    for (mol, label) in [
        (small::water(), "water"),
        (small::h_chain(12, 3.0), "H12"),
        (small::c_ring(6, 1.39), "C6"),
    ] {
        let basis = BasisSet::build(&mol, BasisName::Sto3g);
        let pairs = ShellPairs::build(&basis);
        let screening = Screening::from_pairs(&basis, &pairs);
        let tau = 1e-9;
        let stats = WorkloadStats::compute(&basis, &screening, tau);
        let n = basis.n_basis();
        let d = Mat::identity(n);
        let build = build_g_serial(&basis, &pairs, &screening, tau, &d);
        let counted = stats.surviving_quartets() as i64;
        let real = build.stats.quartets_computed as i64;
        // Quantized-bucket boundary effects only: within 1% + small slack.
        assert!(
            (counted - real).unsigned_abs() as f64 <= 0.01 * real as f64 + 3.0,
            "{label}: statistics {counted} vs real build {real}"
        );
    }
}

#[test]
fn prescreened_tasks_do_no_work_in_the_real_builder() {
    // Two far-apart fragments: tasks joining them must be prescreened by
    // the statistics AND produce no computed quartets in the real build.
    let mut atoms = small::water().atoms().to_vec();
    atoms.extend(small::water().translated([0.0, 0.0, 80.0]).atoms().iter().copied());
    let mol = phi_scf::chem::Molecule::neutral(atoms);
    let basis = BasisSet::build(&mol, BasisName::Sto3g);
    let pairs = ShellPairs::build(&basis);
    let screening = Screening::from_pairs(&basis, &pairs);
    let tau = 1e-10;
    let stats = WorkloadStats::compute(&basis, &screening, tau);
    assert!(stats.pairs_prescreened > 0, "distant fragments must prescreen pairs");

    let n = basis.n_basis();
    let d = Mat::identity(n);
    let mono_basis = BasisSet::build(&small::water(), BasisName::Sto3g);
    let mono_pairs = ShellPairs::build(&mono_basis);
    let mono_screening = Screening::from_pairs(&mono_basis, &mono_pairs);
    let one = build_g_serial(&mono_basis, &mono_pairs, &mono_screening, tau, &Mat::identity(7));
    let two = build_g_serial(&basis, &pairs, &screening, tau, &d);
    // Schwarz keeps long-range *Coulomb* blocks (ij on fragment A | kl on
    // fragment B) — the interaction decays as 1/R, not exponentially — but
    // kills every inter-fragment *pair*. So the dimer workload grows
    // quadratically in the fragment count (~4x), far below the unscreened
    // quartic growth (~12x here: 666 vs 55 canonical quartets).
    let ratio = two.stats.quartets_computed as f64 / one.stats.quartets_computed as f64;
    assert!(
        (3.0..5.0).contains(&ratio),
        "expected quadratic growth, got dimer/monomer quartet ratio {ratio}"
    );
}

#[test]
fn builder_counters_are_deterministic_across_algorithms() {
    // The counters the builders report (and, with the `trace` feature,
    // emit as trace counter events) are exact work accounting, not
    // timings: every parallel decomposition of the same workload must
    // land on the same totals as the serial enumeration, run after run.
    let basis = BasisSet::build(&small::water(), BasisName::Sto3g);
    let data = FockData::build(&basis);
    let tau = 1e-12;
    let ctx = data.context(&basis, tau);
    let n = basis.n_basis();
    let d = Mat::from_fn(n, n, |i, j| {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        0.2 + ((i * 5 + j * 11) % 7) as f64 * 0.1
    });
    let dens = DensitySet::Restricted(&d);
    let serial = FockAlgorithm::Serial.builder().build(&ctx, &dens);
    let total = serial.stats.quartets_computed + serial.stats.quartets_screened;

    let ns = basis.n_shells();
    let n_pair = ns * (ns + 1) / 2;
    for (alg, ranks) in [
        (FockAlgorithm::MpiOnly { n_ranks: 3 }, 3),
        (FockAlgorithm::PrivateFock { n_ranks: 2, n_threads: 2 }, 2),
        (FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 }, 2),
        (FockAlgorithm::Distributed { n_ranks: 3 }, 3),
    ] {
        let got = alg.builder().build(&ctx, &dens);
        let label = alg.label();
        assert_eq!(
            got.stats.quartets_computed, serial.stats.quartets_computed,
            "{label}: every surviving quartet exactly once"
        );
        assert_eq!(
            got.stats.quartets_computed + got.stats.quartets_screened,
            total,
            "{label}: full canonical coverage"
        );
        // DLB accounting: tasks pulled plus one final out-of-range claim
        // per rank — exact, not approximate.
        let tasks = match alg {
            FockAlgorithm::PrivateFock { .. } => ns,
            _ => n_pair,
        };
        assert_eq!(got.stats.dlb_tasks, tasks, "{label}: one lease per task");
        assert_eq!(got.stats.dlb_calls, tasks + ranks, "{label}: claims + final polls");
    }
}

#[test]
fn screened_fraction_grows_with_system_extent() {
    let basis_of = |n: usize| BasisSet::build(&small::h_chain(n, 3.0), BasisName::Sto3g);
    let frac = |n: usize| {
        let b = basis_of(n);
        let s = Screening::compute(&b);
        WorkloadStats::compute(&b, &s, 1e-10).screened_fraction()
    };
    let small_sys = frac(6);
    let large_sys = frac(24);
    assert!(
        large_sys > small_sys,
        "longer chain must screen a larger fraction: {large_sys} vs {small_sys}"
    );
}
