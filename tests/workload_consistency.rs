//! The simulator's workload statistics must agree with what the *real*
//! Fock builders actually do: same quartet counts, same screening
//! behaviour. This ties the performance model to the executing code.

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::hf::fock::serial::build_g_serial;
use phi_scf::integrals::screening::WorkloadStats;
use phi_scf::integrals::{Screening, ShellPairs};
use phi_scf::linalg::Mat;

#[test]
fn fenwick_counts_match_real_build_quartets() {
    for (mol, label) in [
        (small::water(), "water"),
        (small::h_chain(12, 3.0), "H12"),
        (small::c_ring(6, 1.39), "C6"),
    ] {
        let basis = BasisSet::build(&mol, BasisName::Sto3g);
        let pairs = ShellPairs::build(&basis);
        let screening = Screening::from_pairs(&basis, &pairs);
        let tau = 1e-9;
        let stats = WorkloadStats::compute(&basis, &screening, tau);
        let n = basis.n_basis();
        let d = Mat::identity(n);
        let build = build_g_serial(&basis, &pairs, &screening, tau, &d);
        let counted = stats.surviving_quartets() as i64;
        let real = build.stats.quartets_computed as i64;
        // Quantized-bucket boundary effects only: within 1% + small slack.
        assert!(
            (counted - real).unsigned_abs() as f64 <= 0.01 * real as f64 + 3.0,
            "{label}: statistics {counted} vs real build {real}"
        );
    }
}

#[test]
fn prescreened_tasks_do_no_work_in_the_real_builder() {
    // Two far-apart fragments: tasks joining them must be prescreened by
    // the statistics AND produce no computed quartets in the real build.
    let mut atoms = small::water().atoms().to_vec();
    atoms.extend(small::water().translated([0.0, 0.0, 80.0]).atoms().iter().copied());
    let mol = phi_scf::chem::Molecule::neutral(atoms);
    let basis = BasisSet::build(&mol, BasisName::Sto3g);
    let pairs = ShellPairs::build(&basis);
    let screening = Screening::from_pairs(&basis, &pairs);
    let tau = 1e-10;
    let stats = WorkloadStats::compute(&basis, &screening, tau);
    assert!(stats.pairs_prescreened > 0, "distant fragments must prescreen pairs");

    let n = basis.n_basis();
    let d = Mat::identity(n);
    let mono_basis = BasisSet::build(&small::water(), BasisName::Sto3g);
    let mono_pairs = ShellPairs::build(&mono_basis);
    let mono_screening = Screening::from_pairs(&mono_basis, &mono_pairs);
    let one = build_g_serial(&mono_basis, &mono_pairs, &mono_screening, tau, &Mat::identity(7));
    let two = build_g_serial(&basis, &pairs, &screening, tau, &d);
    // Schwarz keeps long-range *Coulomb* blocks (ij on fragment A | kl on
    // fragment B) — the interaction decays as 1/R, not exponentially — but
    // kills every inter-fragment *pair*. So the dimer workload grows
    // quadratically in the fragment count (~4x), far below the unscreened
    // quartic growth (~12x here: 666 vs 55 canonical quartets).
    let ratio = two.stats.quartets_computed as f64 / one.stats.quartets_computed as f64;
    assert!(
        (3.0..5.0).contains(&ratio),
        "expected quadratic growth, got dimer/monomer quartet ratio {ratio}"
    );
}

#[test]
fn screened_fraction_grows_with_system_extent() {
    let basis_of = |n: usize| BasisSet::build(&small::h_chain(n, 3.0), BasisName::Sto3g);
    let frac = |n: usize| {
        let b = basis_of(n);
        let s = Screening::compute(&b);
        WorkloadStats::compute(&b, &s, 1e-10).screened_fraction()
    };
    let small_sys = frac(6);
    let large_sys = frac(24);
    assert!(
        large_sys > small_sys,
        "longer chain must screen a larger fraction: {large_sys} vs {small_sys}"
    );
}
