//! Parallel-UHF parity: every parallel Fock builder, driven through the
//! unified engine with an unrestricted density set, must reproduce the
//! serial α and β two-electron matrices to tight tolerance.
//!
//! This is the guarantee that lets `run_uhf` accept any `FockAlgorithm`:
//! the spin-generalized digestion is the same code path for all builders,
//! so agreement here means UHF inherits the paper's parallel schemes
//! wholesale.

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::hf::{DensitySet, FockAlgorithm, FockContext};
use phi_scf::integrals::{Screening, ShellPairs};
use phi_scf::linalg::Mat;

/// Symmetric pseudo-density with different α and β content (open shell).
fn spin_densities(n: usize) -> (Mat, Mat) {
    let d_a = Mat::from_fn(n, n, |i, j| {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        0.25 + ((i * 5 + j * 3) % 7) as f64 * 0.08
    });
    let d_b = Mat::from_fn(n, n, |i, j| {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        0.15 + ((i * 3 + j * 7) % 5) as f64 * 0.06
    });
    (d_a, d_b)
}

#[test]
fn parallel_uhf_builds_match_serial_on_both_spin_channels() {
    let algorithms = [
        FockAlgorithm::MpiOnly { n_ranks: 3 },
        FockAlgorithm::PrivateFock { n_ranks: 2, n_threads: 2 },
        FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
        FockAlgorithm::Distributed { n_ranks: 3 },
    ];
    for (mol, basis) in
        [(small::water(), BasisName::B631g), (small::c_ring(6, 1.39), BasisName::Sto3g)]
    {
        let b = BasisSet::build(&mol, basis);
        let pairs = ShellPairs::build(&b);
        let s = Screening::from_pairs(&b, &pairs);
        let ctx = FockContext::new(&b, &pairs, &s, 1e-12);
        let (d_a, d_b) = spin_densities(b.n_basis());
        let dens = DensitySet::Unrestricted { alpha: &d_a, beta: &d_b };

        let want = FockAlgorithm::Serial.builder().build(&ctx, &dens);
        let want_b = want.g_beta.as_ref().expect("serial beta channel");

        for alg in algorithms {
            let got = alg.builder().build(&ctx, &dens);
            let got_b = got.g_beta.as_ref().expect("beta channel");
            let da = got.g.max_abs_diff(&want.g);
            let db = got_b.max_abs_diff(want_b);
            assert!(
                da < 1e-12 && db < 1e-12,
                "{} on {basis:?}: alpha diff {da:.3e}, beta diff {db:.3e}",
                alg.label()
            );
            // Same quartets survive the same screening on every builder.
            assert_eq!(got.stats.quartets_computed, want.stats.quartets_computed);
        }
    }
}

#[test]
fn restricted_pair_collapses_to_rhf_build() {
    // α = β = D/2 must reproduce the restricted G(D) exactly — the UHF
    // digestion orbit is then algebraically identical to the RHF one.
    let b = BasisSet::build(&small::water(), BasisName::B631g);
    let pairs = ShellPairs::build(&b);
    let s = Screening::from_pairs(&b, &pairs);
    let ctx = FockContext::new(&b, &pairs, &s, 1e-12);
    let n = b.n_basis();
    let (d_a, _) = spin_densities(n);
    let mut half = d_a.clone();
    half.scale(0.5);
    let dens = DensitySet::Unrestricted { alpha: &half, beta: &half };

    for alg in [FockAlgorithm::Serial, FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 }] {
        let uhf = alg.builder().build(&ctx, &dens);
        let rhf = alg.builder().build(&ctx, &DensitySet::Restricted(&d_a));
        // F_α = J(D) - K(D/2) = J(D) - K(D)/2 = G_RHF.
        let diff = uhf.g.max_abs_diff(&rhf.g);
        assert!(diff < 1e-12, "{}: closed-shell UHF vs RHF diff {diff:.3e}", alg.label());
    }
}
