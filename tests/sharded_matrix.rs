//! Sharded (non-replicated) build suite: the distribution-aware matrix
//! layer must produce the serial Fock matrix through both DDI transports
//! (MPI-3 one-sided and data-server), survive rank deaths mid-build with
//! its window flushes intact, and drive full RHF/UHF SCF runs — including
//! the purification partner that avoids the replicated eigensolve — to
//! the serial energy.
//!
//! Fault schedules are seeded and deterministic ([`FaultPlan`]), so every
//! failure replays exactly; `PHI_FAULT_SEEDS` sweeps extra seeds in CI.

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::dmpi::{DdiMode, FaultPlan};
use phi_scf::hf::{run_scf, run_uhf, DensitySet, FockAlgorithm, FockData, ScfConfig, UhfConfig};
use phi_scf::linalg::Mat;

/// Seeds to sweep: `PHI_FAULT_SEEDS=1,2,3` overrides the built-in pair.
fn seeds() -> Vec<u64> {
    match std::env::var("PHI_FAULT_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim())
            .filter(|t| !t.is_empty())
            .map(|t| {
                t.parse().unwrap_or_else(|_| {
                    panic!("PHI_FAULT_SEEDS must be comma-separated integers, got '{t}'")
                })
            })
            .collect(),
        Err(_) => vec![11, 42],
    }
}

fn density(n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        0.2 + ((i * 5 + j * 11) % 7) as f64 * 0.1
    })
}

/// Kill one of four ranks mid-build through BOTH DDI transports and
/// require the recovered sharded Fock to match serial: the durable lease
/// plus flush-then-complete ordering means a dead rank's unflushed
/// contributions are re-digested by a survivor, never double-counted.
#[test]
fn sharded_build_recovers_from_a_rank_death_in_both_ddi_modes() {
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let data = FockData::build(&b);
    let ctx = data.context(&b, 1e-12);
    let d = density(b.n_basis());
    let want = FockAlgorithm::Serial.builder().build(&ctx, &DensitySet::Restricted(&d));

    for seed in seeds() {
        for mode in [DdiMode::Mpi3OneSided, DdiMode::DataServer] {
            let alg = FockAlgorithm::Sharded { n_ranks: 4, mode };
            let plan = FaultPlan::random_kills(seed, 1);
            let got = alg.builder_with_faults(Some(plan)).build(&ctx, &DensitySet::Restricted(&d));
            let diff = got.g.max_abs_diff(&want.g);
            assert!(diff <= 1e-12, "{mode:?} seed {seed}: Fock diff {diff:e} after a kill");
            assert_eq!(
                got.stats.failed_ranks.len(),
                1,
                "{mode:?} seed {seed}: expected one dead rank, got {:?}",
                got.stats.failed_ranks
            );
            assert!(
                got.stats.tasks_reclaimed > 0,
                "{mode:?} seed {seed}: the dead rank's lease must be reclaimed"
            );
            assert!(
                got.stats.retries > 0,
                "{mode:?} seed {seed}: reclaimed tasks must be re-served"
            );
        }
    }
}

/// The two transports must be numerically interchangeable under the same
/// fault schedule — the data-server mode only changes who owns the bytes
/// and what traffic is charged, never the arithmetic. Which survivor
/// re-digests a reclaimed task is a thread race, so window accumulation
/// order (and the last-ulp rounding) can differ between runs; anything
/// beyond that is a real divergence.
#[test]
fn ddi_transports_agree_to_machine_precision_under_faults() {
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let data = FockData::build(&b);
    let ctx = data.context(&b, 1e-12);
    let d = density(b.n_basis());

    for seed in seeds() {
        let build = |mode| {
            let alg = FockAlgorithm::Sharded { n_ranks: 4, mode };
            alg.builder_with_faults(Some(FaultPlan::random_kills(seed, 1)))
                .build(&ctx, &DensitySet::Restricted(&d))
        };
        let os = build(DdiMode::Mpi3OneSided);
        let ds = build(DdiMode::DataServer);
        let diff = os.g.max_abs_diff(&ds.g);
        assert!(
            diff <= 1e-13,
            "seed {seed}: transports diverged by {diff:e} under an identical fault replay"
        );
        // The kill targets whichever rank claims the seeded task index, so
        // the victim's identity is a race; only the death count replays.
        assert_eq!(os.stats.failed_ranks.len(), 1, "seed {seed}");
        assert_eq!(ds.stats.failed_ranks.len(), 1, "seed {seed}");
    }
}

/// Both spin channels recover: the lease loop sits below the
/// spin-generalized digestion, so an unrestricted sharded build must
/// reconstruct alpha and beta Fock matrices after a kill.
#[test]
fn unrestricted_sharded_build_recovers_both_channels() {
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let data = FockData::build(&b);
    let ctx = data.context(&b, 1e-12);
    let n = b.n_basis();
    let d_a = density(n);
    let mut d_b = density(n);
    d_b.scale(0.8);
    let dens = DensitySet::Unrestricted { alpha: &d_a, beta: &d_b };
    let want = FockAlgorithm::Serial.builder().build(&ctx, &dens);
    let want_b = want.g_beta.as_ref().expect("serial beta channel");

    for mode in [DdiMode::Mpi3OneSided, DdiMode::DataServer] {
        let alg = FockAlgorithm::Sharded { n_ranks: 4, mode };
        let got = alg.builder_with_faults(Some(FaultPlan::random_kills(7, 1))).build(&ctx, &dens);
        let got_b = got.g_beta.as_ref().expect("recovered beta channel");
        assert!(got.g.max_abs_diff(&want.g) <= 1e-12, "{mode:?} alpha");
        assert!(got_b.max_abs_diff(want_b) <= 1e-12, "{mode:?} beta");
        assert_eq!(got.stats.failed_ranks.len(), 1);
        assert!(got.stats.tasks_reclaimed > 0);
    }
}

/// Full RHF through the sharded build — with and without the purification
/// partner that replaces the replicated diagonalization — lands on the
/// serial energy, even when every iteration loses and recovers a rank.
#[test]
fn sharded_scf_matches_serial_energy_under_repeated_kills() {
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let clean = run_scf(&mol, &b, &ScfConfig::default());
    assert!(clean.converged);

    for purification in [false, true] {
        let faulty = run_scf(
            &mol,
            &b,
            &ScfConfig {
                algorithm: FockAlgorithm::Sharded { n_ranks: 4, mode: DdiMode::Mpi3OneSided },
                faults: Some(FaultPlan::random_kills(seeds()[0], 1)),
                purification,
                max_iterations: 200,
                ..Default::default()
            },
        );
        assert!(faulty.converged, "purification={purification}: SCF did not converge");
        assert!(
            (faulty.energy - clean.energy).abs() < 1e-10,
            "purification={purification}: {} vs clean {}",
            faulty.energy,
            clean.energy
        );
        let reclaimed: usize = faulty.fock_stats.iter().map(|s| s.tasks_reclaimed).sum();
        assert!(reclaimed > 0, "every iteration killed a rank");
    }
}

/// UHF parity: a stretched-H2 triplet through the sharded build matches
/// the serial unrestricted energy.
#[test]
fn sharded_uhf_matches_serial_energy() {
    let mol = small::hydrogen_molecule(2.8);
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let clean = run_uhf(&mol, &b, 2, 0, &UhfConfig::default());
    assert!(clean.converged);

    let sharded = run_uhf(
        &mol,
        &b,
        2,
        0,
        &UhfConfig {
            algorithm: FockAlgorithm::Sharded { n_ranks: 3, mode: DdiMode::DataServer },
            ..Default::default()
        },
    );
    assert!(sharded.converged);
    assert!(
        (sharded.energy - clean.energy).abs() < 1e-10,
        "{} vs {}",
        sharded.energy,
        clean.energy
    );
}

/// The incremental (dD) path composes with the sharded build: later
/// iterations digest the density *difference* through the same windows
/// and must still converge to the full-rebuild energy.
#[test]
fn incremental_sharded_scf_matches_full_rebuilds() {
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::B631g);
    let full = run_scf(
        &mol,
        &b,
        &ScfConfig {
            algorithm: FockAlgorithm::Sharded { n_ranks: 2, mode: DdiMode::Mpi3OneSided },
            ..Default::default()
        },
    );
    assert!(full.converged);

    let inc = run_scf(
        &mol,
        &b,
        &ScfConfig {
            algorithm: FockAlgorithm::Sharded { n_ranks: 2, mode: DdiMode::Mpi3OneSided },
            incremental: true,
            ..Default::default()
        },
    );
    assert!(inc.converged);
    assert!((inc.energy - full.energy).abs() < 1e-9, "{} vs {}", inc.energy, full.energy);
}
