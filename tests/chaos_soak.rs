//! Chaos soak: *mixed* fault plans — a rank kill, message drops, payload
//! corruptions and stragglers in the same run — against every parallel
//! builder, including the sharded build under both DDI transports.
//!
//! The contract under test is the transient/fatal taxonomy of PR 8:
//!
//! * the kill is the only fatal fault — exactly one rank dies, its
//!   leases are reclaimed, and the build completes on the survivors;
//! * every drop/corrupt drains into acked retransmission
//!   (`retransmits > 0`, `transient_recoveries > 0`) and costs **zero**
//!   additional rank deaths;
//! * the recovered Fock matrix matches the serial reference to 1e-12.
//!
//! Plans are seeded and replay deterministically; CI sweeps extra seeds
//! through `PHI_FAULT_SEEDS` with a hang-guard timeout on the job.

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::dmpi::{DdiMode, FaultPlan, RetryPolicy};
use phi_scf::hf::{run_scf, DensitySet, FockAlgorithm, FockData, ScfConfig};
use phi_scf::linalg::Mat;
use std::time::Duration;

/// Seeds to sweep: `PHI_FAULT_SEEDS=1,2,3` overrides the built-in pair.
fn seeds() -> Vec<u64> {
    match std::env::var("PHI_FAULT_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim())
            .filter(|t| !t.is_empty())
            .map(|t| {
                t.parse().unwrap_or_else(|_| {
                    panic!("PHI_FAULT_SEEDS must be comma-separated integers, got '{t}'")
                })
            })
            .collect(),
        Err(_) => vec![11, 42],
    }
}

/// Every parallel builder at four ranks — the replicated family (whose
/// faults ride the reliable gsum tree) and the distributed family
/// (whose faults ride the DDI window links), sharded in both DDI modes.
fn algorithms() -> [FockAlgorithm; 6] {
    [
        FockAlgorithm::MpiOnly { n_ranks: 4 },
        FockAlgorithm::PrivateFock { n_ranks: 4, n_threads: 2 },
        FockAlgorithm::SharedFock { n_ranks: 4, n_threads: 2 },
        FockAlgorithm::Distributed { n_ranks: 4 },
        FockAlgorithm::Sharded { n_ranks: 4, mode: DdiMode::Mpi3OneSided },
        FockAlgorithm::Sharded { n_ranks: 4, mode: DdiMode::DataServer },
    ]
}

/// A mixed plan: one kill (whoever claims task 2 dies holding it), first
/// messages dropped on three edges chosen to cover every possible
/// post-kill reduction tree and the window links' hottest edges, the
/// retransmissions of two of those edges corrupted on top (so one send
/// must survive *two* transient faults back to back), and two
/// millisecond stragglers to keep timings shuffled.
fn mixed_plan(seed: u64) -> FaultPlan {
    FaultPlan::parse(&format!(
        "{seed}:kill@2,drop@1->0#1,drop@2->0#1,drop@2->1#1,\
         corrupt@1->0#2,corrupt@2->0#2,delay@0#1:3,delay@3#1:2"
    ))
    .expect("chaos plan parses")
}

/// Millisecond-scale timeouts so a dropped message costs tens of
/// milliseconds, not the defaults' 200 ms — and so a genuine hang is
/// diagnosed in seconds. Budget of 5 attempts absorbs the
/// drop-then-corrupt chains the plan schedules.
fn soak_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 5,
        ack_timeout: Duration::from_millis(40),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        ft_timeout: Duration::from_secs(10),
        recv_timeout: Duration::from_secs(20),
        ..RetryPolicy::default()
    }
}

fn density(n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        0.2 + ((i * 5 + j * 11) % 7) as f64 * 0.1
    })
}

#[test]
fn mixed_faults_recover_on_every_builder_with_zero_transient_deaths() {
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let data = FockData::build(&b);
    let ctx = data.context(&b, 1e-12);
    let d = density(b.n_basis());
    let want = FockAlgorithm::Serial.builder().build(&ctx, &DensitySet::Restricted(&d));

    for seed in seeds() {
        for alg in algorithms() {
            let builder = alg.builder_with_comm(Some(mixed_plan(seed)), soak_policy());
            let got = builder.build(&ctx, &DensitySet::Restricted(&d));
            let label = builder.label();
            let diff = got.g.max_abs_diff(&want.g);
            assert!(diff <= 1e-12, "{label} seed {seed}: Fock diff {diff:e} under mixed faults");

            // Exactly the scheduled kill died. Every drop/corrupt must
            // have drained into retransmission, not the kill path.
            assert_eq!(
                got.stats.failed_ranks.len(),
                1,
                "{label} seed {seed}: transient faults killed ranks: {:?}",
                got.stats.failed_ranks
            );
            assert!(
                got.stats.retransmits > 0,
                "{label} seed {seed}: mixed faults fired but nothing was retransmitted"
            );
            assert!(
                got.stats.transient_recoveries > 0,
                "{label} seed {seed}: no transient fault was recovered"
            );
            assert!(
                got.stats.tasks_reclaimed > 0,
                "{label} seed {seed}: the killed rank died holding a lease"
            );
            // Counter coherence: acked traffic implies acks were counted;
            // every retransmission beyond a corruption implies at least
            // one detected corruption was paid for by a resend.
            assert!(
                got.stats.acks >= got.stats.retransmits,
                "{label} seed {seed}: {} acks < {} retransmits — successful \
                 retransmissions must each be acked",
                got.stats.acks,
                got.stats.retransmits
            );
            assert!(
                got.stats.retransmits >= got.stats.corruptions_detected,
                "{label} seed {seed}: {} corruptions detected but only {} retransmits",
                got.stats.corruptions_detected,
                got.stats.retransmits
            );
            // The kill plus at least one message fault fired.
            assert!(
                got.stats.faults_injected >= 2,
                "{label} seed {seed}: only {} faults fired",
                got.stats.faults_injected
            );
        }
    }
}

#[test]
fn chaos_scf_converges_to_the_fault_free_energy() {
    // The mixed plan replays on every iteration's build; the converged
    // energy must match the clean serial run to SCF tolerance.
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let clean = run_scf(&mol, &b, &ScfConfig::default());
    assert!(clean.converged);

    for seed in seeds() {
        let faulty = run_scf(
            &mol,
            &b,
            &ScfConfig {
                algorithm: FockAlgorithm::MpiOnly { n_ranks: 4 },
                faults: Some(mixed_plan(seed)),
                retry: soak_policy(),
                ..Default::default()
            },
        );
        assert!(faulty.converged, "seed {seed}: chaos SCF did not converge");
        assert!(
            (faulty.energy - clean.energy).abs() < 1e-10,
            "seed {seed}: chaos {} vs clean {}",
            faulty.energy,
            clean.energy
        );
        let retransmits: u64 = faulty.fock_stats.iter().map(|s| s.retransmits).sum();
        let deaths: usize = faulty.fock_stats.iter().map(|s| s.failed_ranks.len()).max().unwrap();
        assert!(retransmits > 0, "seed {seed}: no retransmissions across the whole SCF");
        assert_eq!(deaths, 1, "seed {seed}: transient faults must not add rank deaths");
    }
}

#[test]
fn unreliable_policy_under_drops_collapses_reliable_policy_recovers() {
    // The control experiment: same drop fault, reliability off
    // (max_attempts = 1) versus on. Without retransmission a dropped
    // reduction message is unrecoverable — the sender exhausts its single
    // attempt, the root's receive times out, the broadcast never happens,
    // and the world collapses with no survivor to return the Fock. With
    // it, the identical plan costs one retransmission.
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let data = FockData::build(&b);
    let ctx = data.context(&b, 1e-12);
    let d = density(b.n_basis());
    let plan = || FaultPlan::parse("7:drop@1->0#1").expect("plan parses");

    let off = RetryPolicy {
        ft_timeout: Duration::from_millis(500),
        recv_timeout: Duration::from_millis(500),
        ..RetryPolicy::none()
    };
    let alg = FockAlgorithm::MpiOnly { n_ranks: 4 };
    let collapsed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        alg.builder_with_comm(Some(plan()), off).build(&ctx, &DensitySet::Restricted(&d))
    }));
    match collapsed {
        Err(_) => {} // every rank timed out: "no surviving rank returned the reduced Fock"
        Ok(got) => {
            assert!(
                !got.stats.failed_ranks.is_empty(),
                "fire-and-forget under a dropped reduction message must lose ranks"
            );
            assert_eq!(got.stats.retransmits, 0);
        }
    }

    let on = soak_policy();
    let got = alg.builder_with_comm(Some(plan()), on).build(&ctx, &DensitySet::Restricted(&d));
    let want = FockAlgorithm::Serial.builder().build(&ctx, &DensitySet::Restricted(&d));
    assert!(got.stats.failed_ranks.is_empty(), "reliable delivery must absorb the drop");
    assert!(got.stats.retransmits > 0);
    assert!(got.g.max_abs_diff(&want.g) <= 1e-12);
}

/// Trace-side reconciliation: the retransmit/recovery instants the world
/// and the window links emit must agree exactly with the stats counters
/// the builders return — the deterministic replacement for asserting on
/// wall-clock behavior.
#[cfg(feature = "trace")]
#[test]
fn chaos_trace_instants_reconcile_exactly_with_build_stats() {
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let data = FockData::build(&b);
    let ctx = data.context(&b, 1e-12);
    let d = density(b.n_basis());

    for alg in [
        FockAlgorithm::MpiOnly { n_ranks: 4 },
        FockAlgorithm::Sharded { n_ranks: 4, mode: DdiMode::DataServer },
    ] {
        let session = phi_scf::trace::TraceSession::begin();
        let builder = alg.builder_with_comm(Some(mixed_plan(11)), soak_policy());
        let got = builder.build(&ctx, &DensitySet::Restricted(&d));
        let report = session.finish();
        let label = builder.label();

        let retransmit_instants = report.instants("comm.retransmit").len() as u64
            + report.instants("ddi.retransmit").len() as u64;
        let recovery_instants = report.instants("comm.recovered").len() as u64
            + report.instants("ddi.recovered").len() as u64;
        let corrupt_instants = report.instants("comm.corrupt_detected").len() as u64
            + report.instants("ddi.corrupt_detected").len() as u64;
        assert_eq!(
            retransmit_instants, got.stats.retransmits,
            "{label}: retransmit instants vs stats"
        );
        assert_eq!(
            recovery_instants, got.stats.transient_recoveries,
            "{label}: recovery instants vs stats"
        );
        assert_eq!(
            corrupt_instants, got.stats.corruptions_detected,
            "{label}: corruption instants vs stats"
        );
        assert!(got.stats.retransmits > 0, "{label}: soak plan must force retransmissions");
    }
}
