//! Failure injection and boundary behaviour across the stack.

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::chem::{Atom, Element, Molecule};
use phi_scf::hf::{run_scf, FockAlgorithm, ScfConfig};

#[test]
fn non_convergence_is_reported_not_hidden() {
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let r = run_scf(&mol, &b, &ScfConfig { max_iterations: 2, diis: false, ..Default::default() });
    assert!(!r.converged, "2 iterations cannot converge water");
    assert_eq!(r.iterations, 2);
    assert!(r.energy.is_finite());
}

#[test]
fn near_linear_dependence_is_projected_out() {
    // Two hydrogens almost on top of each other: the overlap matrix is
    // nearly singular; the s_threshold projection must keep SCF stable.
    let mol = Molecule::new(
        vec![
            Atom { element: Element::H, pos: [0.0, 0.0, 0.0] },
            Atom { element: Element::H, pos: [0.0, 0.0, 1e-5] },
        ],
        0,
    );
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let r = run_scf(&mol, &b, &ScfConfig { s_threshold: 1e-6, ..Default::default() });
    assert!(r.converged, "linear dependence must not break SCF");
    assert!(r.energy.is_finite());
    // Two coincident protons with two electrons: helium-like energy plus
    // the huge nuclear repulsion term 1/1e-5.
    assert!(r.energy > 1e4, "nuclear repulsion must dominate: {}", r.energy);
}

#[test]
fn single_atom_runs_through_every_algorithm() {
    // One helium atom: 1 shell. Exercises all the degenerate loop bounds
    // (single task, single pair) in the parallel builders.
    let mol = Molecule::neutral(vec![Atom { element: Element::He, pos: [0.0; 3] }]);
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let mut energies = Vec::new();
    for algorithm in [
        FockAlgorithm::Serial,
        FockAlgorithm::MpiOnly { n_ranks: 3 },
        FockAlgorithm::PrivateFock { n_ranks: 2, n_threads: 2 },
        FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
    ] {
        let r = run_scf(&mol, &b, &ScfConfig { algorithm, ..Default::default() });
        assert!(r.converged);
        energies.push(r.energy);
    }
    for e in &energies[1..] {
        assert!((e - energies[0]).abs() < 1e-10);
    }
    // He/STO-3G ground state: -2.8078 Eh (textbook value -2.8077839).
    assert!((energies[0] - (-2.8078)).abs() < 1e-3, "He energy {}", energies[0]);
}

#[test]
fn more_ranks_than_tasks_still_terminates() {
    // 8 ranks x 2 threads on a 2-shell molecule: most ranks get nothing.
    let mol = small::hydrogen_molecule(1.4);
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let r = run_scf(
        &mol,
        &b,
        &ScfConfig {
            algorithm: FockAlgorithm::SharedFock { n_ranks: 8, n_threads: 2 },
            ..Default::default()
        },
    );
    assert!(r.converged);
    assert!((r.energy - (-1.1167)).abs() < 2e-4);
}

#[test]
fn extreme_screening_threshold_degrades_gracefully() {
    // tau = 1.0 screens essentially everything: SCF must still terminate
    // (it just solves a core-Hamiltonian-like problem).
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let r = run_scf(
        &mol,
        &b,
        &ScfConfig { screening_tau: 1.0, max_iterations: 50, ..Default::default() },
    );
    assert!(r.energy.is_finite());
    // And the screened energy must be *wrong* relative to the exact one —
    // confirming quartets were really dropped, not silently kept.
    let exact = run_scf(&mol, &b, &ScfConfig::default());
    assert!((r.energy - exact.energy).abs() > 1e-3);
}

#[test]
fn zero_electron_systems_are_rejected() {
    let mol = Molecule::new(vec![Atom { element: Element::H, pos: [0.0; 3] }], 1);
    assert_eq!(mol.n_electrons(), 0);
    assert_eq!(mol.n_occupied(), 0);
    // SCF on an empty system: energy is pure nuclear repulsion (0 here).
    let b = BasisSet::build(&mol, BasisName::Sto3g);
    let r = run_scf(&mol, &b, &ScfConfig::default());
    assert!(r.converged);
    assert!(r.energy.abs() < 1e-12);
}

#[test]
fn dlb_counter_survives_many_small_worlds() {
    // Regression guard for world setup/teardown: run many tiny worlds in
    // sequence (each SCF iteration spins one up).
    for _ in 0..20 {
        let res = phi_scf::dmpi::run_world(3, |rank| {
            rank.dlb_reset();
            let mut v = vec![rank.rank() as f64];
            rank.gsumf(&mut v);
            v[0]
        });
        assert_eq!(res.per_rank, vec![3.0, 3.0, 3.0]);
    }
}
