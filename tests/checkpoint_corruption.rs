//! Checkpoint-corruption sweep: damage a written `PHISCF1` file at every
//! section boundary — bit flips and truncations — and require the resume
//! path to either fall back to the previous good generation or fail with
//! a clean error naming the corrupt section. A damaged checkpoint must
//! never be silently loaded.

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::small;
use phi_scf::hf::checkpoint::{ScfCheckpoint, CHECKPOINT_KEEP};
use phi_scf::hf::{run_scf, ScfConfig};
use std::path::{Path, PathBuf};

/// A unique temp path per test so parallel tests never share rotations.
fn temp_ckpt(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("phiscf_corruption_{tag}_{}.ckpt", std::process::id()))
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    for i in 1..=CHECKPOINT_KEEP {
        let mut name = path.file_name().unwrap().to_os_string();
        name.push(format!(".{i}"));
        let _ = std::fs::remove_file(path.with_file_name(name));
    }
}

/// Run an interrupted SCF twice so the rotation holds two good
/// generations, returning the converged reference energy and iteration
/// counts of the uninterrupted run.
fn interrupted_run(path: &Path) -> (f64, usize) {
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::B631g);
    let full = run_scf(&mol, &b, &ScfConfig::default());
    assert!(full.converged);
    let interrupted = run_scf(
        &mol,
        &b,
        &ScfConfig {
            max_iterations: 3,
            checkpoint_path: Some(path.to_path_buf()),
            ..Default::default()
        },
    );
    assert!(!interrupted.converged, "3 iterations must not converge 6-31G water");
    (full.energy, full.iterations)
}

fn resume(path: &Path) -> phi_scf::hf::ScfResult {
    let mol = small::water();
    let b = BasisSet::build(&mol, BasisName::B631g);
    run_scf(&mol, &b, &ScfConfig { resume_from: Some(path.to_path_buf()), ..Default::default() })
}

#[test]
fn bit_flips_at_every_section_fall_back_to_the_previous_generation() {
    let path = temp_ckpt("flip");
    cleanup(&path);
    let (full_energy, full_iters) = interrupted_run(&path);

    let good = std::fs::read(&path).expect("checkpoint written");
    let ck = ScfCheckpoint::from_bytes(&good).expect("pristine checkpoint loads");
    let offsets = ck.section_offsets();
    // The SCF writes three rotating generations (one per iteration), so
    // `.1` already holds the iteration-2 state — an older but *good*
    // checkpoint the loader must fall back to.
    for (section, start) in &offsets[..offsets.len() - 1] {
        let mut bad = good.clone();
        bad[start + 1] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();

        // The damaged primary alone must refuse to load, naming either
        // the magic or the CRC-sealed section that was hit.
        let err = ScfCheckpoint::load(&path).expect_err("corrupt checkpoint must not load");
        let msg = err.to_string();
        assert!(
            msg.contains("magic") || msg.contains("CRC") || msg.contains("corrupt"),
            "section '{section}': uninformative error: {msg}"
        );

        // End to end, the resume falls back to `.1` and still converges
        // to the uninterrupted energy.
        let resumed = resume(&path);
        assert!(resumed.converged, "section '{section}': fallback resume did not converge");
        assert!(
            (resumed.energy - full_energy).abs() < 1e-10,
            "section '{section}': fallback energy {} vs {}",
            resumed.energy,
            full_energy
        );
        assert!(
            resumed.iterations <= full_iters,
            "section '{section}': resume from iteration 2 must not exceed the cold run"
        );
    }
    cleanup(&path);
}

#[test]
fn truncation_at_every_section_boundary_is_rejected_or_recovered() {
    let path = temp_ckpt("trunc");
    cleanup(&path);
    let (full_energy, _) = interrupted_run(&path);

    let good = std::fs::read(&path).expect("checkpoint written");
    let ck = ScfCheckpoint::from_bytes(&good).expect("pristine checkpoint loads");
    for (section, start) in ck.section_offsets() {
        // Cut the file just short of each boundary (and at zero length).
        let cut = start.saturating_sub(1);
        std::fs::write(&path, &good[..cut]).unwrap();
        let err = ScfCheckpoint::load(&path)
            .expect_err(&format!("truncated-at-{section} checkpoint must not load"));
        assert!(!err.to_string().is_empty());

        let resumed = resume(&path);
        assert!(resumed.converged, "truncated at '{section}': fallback did not converge");
        assert!((resumed.energy - full_energy).abs() < 1e-10);
    }
    cleanup(&path);
}

#[test]
fn with_no_good_generation_left_the_resume_fails_naming_every_path_tried() {
    let path = temp_ckpt("wreck");
    cleanup(&path);
    interrupted_run(&path);

    // Wreck the primary and every rotated generation.
    let mut paths = vec![path.clone()];
    for i in 1..=CHECKPOINT_KEEP {
        let mut name = path.file_name().unwrap().to_os_string();
        name.push(format!(".{i}"));
        paths.push(path.with_file_name(name));
    }
    for p in &paths {
        if p.exists() {
            let mut bytes = std::fs::read(p).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            bytes[8] ^= 0x01; // header section too, so the CRC trips early
            std::fs::write(p, &bytes).unwrap();
        }
    }

    let err = ScfCheckpoint::load_with_fallback(&path, CHECKPOINT_KEEP)
        .expect_err("no good generation must be a hard error");
    let msg = err.to_string();
    for p in &paths {
        if p.exists() {
            let fname = p.file_name().unwrap().to_str().unwrap().to_string();
            assert!(msg.contains(&fname), "error must name attempted path {fname}: {msg}");
        }
    }

    // And the SCF driver surfaces it as a panic naming the checkpoint,
    // never a silent cold start that would masquerade as a resume.
    let resumed = std::panic::catch_unwind(|| resume(&path));
    assert!(resumed.is_err(), "resume from all-corrupt generations must not succeed");
    cleanup(&path);
}
