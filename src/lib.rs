//! Facade crate for the phi-scf workspace: a Rust reproduction of
//! Mironov et al., "An efficient MPI/OpenMP parallelization of the
//! Hartree-Fock method for the second generation of Intel Xeon Phi
//! processor" (SC'17).
//!
//! Re-exports the public API of every workspace crate so examples and
//! downstream users can depend on a single crate.

pub use hf;
pub use phi_chem as chem;
pub use phi_dmpi as dmpi;
pub use phi_integrals as integrals;
pub use phi_knlsim as knlsim;
pub use phi_linalg as linalg;
pub use phi_omp as omp;
pub use phi_trace as trace;
