//! `phi-scf` command-line interface: run Hartree-Fock on built-in
//! geometries with any of the paper's Fock-build algorithms.
//!
//! ```sh
//! phi-scf --molecule water --basis 631gd --algorithm shared:2x2
//! phi-scf --molecule ring:8 --basis sto3g --algorithm private:1x4
//! phi-scf --molecule benzene --algorithm distributed:4
//! phi-scf --molecule h2:1.4 --uhf 1,1 --algorithm mpi:2
//! phi-scf --help
//! ```

use phi_scf::chem::basis::{BasisName, BasisSet};
use phi_scf::chem::geom::{graphene, small};
use phi_scf::chem::Molecule;
use phi_scf::dmpi::{DdiMode, FaultPlan};
use phi_scf::hf::{mp2_energy, run_scf, run_uhf, FockAlgorithm, MemoryModel, ScfConfig, UhfConfig};

const HELP: &str = "\
phi-scf — Hartree-Fock with the SC'17 hybrid MPI/OpenMP Fock builders

USAGE:
    phi-scf [OPTIONS]

OPTIONS:
    --molecule <NAME>    water | methane | benzene | h2[:R_bohr] | hehp |
                         ring:<n_atoms> | chain:<n>:<spacing> |
                         graphene:<n_atoms>            [default: water]
    --xyz <FILE>         read the geometry from an XYZ file instead
                         (charge via charge=<int> on the comment line)
    --basis <NAME>       sto3g | 631g | 631gd | 631gdp [default: 631g]
    --algorithm <SPEC>   serial | mpi:<ranks> | private:<R>x<T> |
                         shared:<R>x<T> | distributed:<ranks> |
                         sharded:<ranks>[:os|:ds]
                         (applies to RHF and UHF)      [default: shared:2x2]
                         sharded keeps density and Fock in tri-packed
                         distributed windows — no rank ever holds a full
                         N x N matrix; :os = MPI-3 one-sided (default),
                         :ds = classic DDI data servers
    --tau <FLOAT>        Schwarz screening threshold   [default: 1e-10]
    --max-iter <N>       SCF iteration cap             [default: 100]
    --uhf <NA>,<NB>      run UHF with NA alpha / NB beta electrons
    --mp2                add the MP2 correlation energy after RHF
    --no-diis            disable DIIS acceleration
    --purify             build each iteration's density by canonical
                         purification instead of diagonalization (no
                         replicated O(N^3) eigensolve; pairs with
                         --algorithm sharded; RHF and UHF). Orbital
                         output (and so --mp2) is unavailable
    --memory-budget <MiB>
                         print the per-rank memory-model estimate for every
                         algorithm at the requested rank/thread shape and
                         refuse to run an algorithm whose estimate exceeds
                         the budget (the error names the sharded
                         alternative that fits)
    --incremental        incremental (ΔD) Fock builds: each iteration
                         builds G(ΔD) under density-weighted screening and
                         accumulates G_n = G_ref + G(ΔD); surviving-quartet
                         counts collapse as SCF converges (RHF and UHF)
    --full-rebuild-every <K>
                         with --incremental, perform a full rebuild every
                         K-th Fock build (K=1: all full)  [default: 8]
    --faults <SPEC>      deterministic fault injection, replayed on every
                         Fock build: <seed>:<fault>[,<fault>...] with
                         kill@<task> | kill@<rank>#<claim> | kill*<count> |
                         delay@<rank>#<claim>:<ms> |
                         drop@<from>-><to>#<nth> |
                         corrupt@<from>-><to>#<nth>
                         e.g. --faults 42:kill@3,delay@1#2:50
    --comm-timeout-ms <MS>
                         barrier/receive timeout for the failure-aware
                         collectives (replaces the old hard-coded 30-60 s
                         ceilings; ack timeouts scale to min(MS, 200) ms)
                         (parallel algorithms only; survivors reclaim the
                         dead ranks' tasks and finish the build)
    --trace <FILE>       record a span trace of the whole run and write it
                         as Chrome trace_event JSON (open in
                         chrome://tracing or https://ui.perfetto.dev);
                         also prints the phase breakdown and per-rank
                         thread imbalance. Needs a binary built with
                         `--features trace` — without it the run works
                         but the trace is empty and a warning is printed
    --help               print this text
";

fn parse_molecule(spec: &str) -> Result<Molecule, String> {
    let (name, arg) = match spec.split_once(':') {
        Some((n, a)) => (n, Some(a)),
        None => (spec, None),
    };
    match name {
        "water" => Ok(small::water()),
        "methane" => Ok(small::methane()),
        "benzene" => Ok(small::benzene()),
        "hehp" => Ok(small::heh_cation()),
        "h2" => {
            let r = arg.map(|a| a.parse().map_err(|_| format!("bad bond length '{a}'")));
            Ok(small::hydrogen_molecule(r.transpose()?.unwrap_or(1.4)))
        }
        "ring" => {
            let n = arg.ok_or("ring needs an atom count, e.g. ring:8")?;
            Ok(small::c_ring(n.parse().map_err(|_| format!("bad count '{n}'"))?, 1.40))
        }
        "chain" => {
            let a = arg.ok_or("chain needs <n>:<spacing>, e.g. chain:8:1.8")?;
            let (n, sp) = a.split_once(':').ok_or("chain needs <n>:<spacing>")?;
            Ok(small::h_chain(
                n.parse().map_err(|_| format!("bad count '{n}'"))?,
                sp.parse().map_err(|_| format!("bad spacing '{sp}'"))?,
            ))
        }
        "graphene" => {
            let n = arg.ok_or("graphene needs an atom count, e.g. graphene:16")?;
            Ok(graphene::graphene_flake(n.parse().map_err(|_| format!("bad count '{n}'"))?))
        }
        other => Err(format!("unknown molecule '{other}'")),
    }
}

fn parse_basis(spec: &str) -> Result<BasisName, String> {
    match spec {
        "sto3g" | "sto-3g" => Ok(BasisName::Sto3g),
        "631g" | "6-31g" => Ok(BasisName::B631g),
        "631gd" | "6-31g(d)" | "6-31gd" => Ok(BasisName::B631gd),
        "631gdp" | "6-31g(d,p)" | "6-31gdp" => Ok(BasisName::B631gdp),
        other => Err(format!("unknown basis '{other}'")),
    }
}

fn parse_algorithm(spec: &str) -> Result<FockAlgorithm, String> {
    if spec == "serial" {
        return Ok(FockAlgorithm::Serial);
    }
    let (name, cfg) = spec.split_once(':').ok_or_else(|| format!("bad algorithm '{spec}'"))?;
    let parse_rt = |s: &str| -> Result<(usize, usize), String> {
        let (r, t) = s.split_once('x').ok_or_else(|| format!("need <R>x<T>, got '{s}'"))?;
        Ok((
            r.parse().map_err(|_| format!("bad rank count '{r}'"))?,
            t.parse().map_err(|_| format!("bad thread count '{t}'"))?,
        ))
    };
    match name {
        "mpi" => Ok(FockAlgorithm::MpiOnly {
            n_ranks: cfg.parse().map_err(|_| format!("bad rank count '{cfg}'"))?,
        }),
        "private" => {
            let (r, t) = parse_rt(cfg)?;
            Ok(FockAlgorithm::PrivateFock { n_ranks: r, n_threads: t })
        }
        "shared" => {
            let (r, t) = parse_rt(cfg)?;
            Ok(FockAlgorithm::SharedFock { n_ranks: r, n_threads: t })
        }
        "distributed" => Ok(FockAlgorithm::Distributed {
            n_ranks: cfg.parse().map_err(|_| format!("bad rank count '{cfg}'"))?,
        }),
        "sharded" => {
            let (ranks, mode) = match cfg.split_once(':') {
                Some((r, "os")) => (r, DdiMode::Mpi3OneSided),
                Some((r, "ds")) => (r, DdiMode::DataServer),
                Some((_, m)) => return Err(format!("unknown DDI mode '{m}' (os or ds)")),
                None => (cfg, DdiMode::Mpi3OneSided),
            };
            Ok(FockAlgorithm::Sharded {
                n_ranks: ranks.parse().map_err(|_| format!("bad rank count '{ranks}'"))?,
                mode,
            })
        }
        other => Err(format!("unknown algorithm '{other}'")),
    }
}

/// Per-rank memory-model estimate (bytes) for one algorithm, with the
/// shell-pair dataset included. `Serial` and `Distributed` replicate the
/// same density + full accumulation matrices as MPI-only, so they share
/// eq. (3a); the sharded build is the only sub-quadratic row.
fn per_rank_estimate(alg: FockAlgorithm, n_basis: usize, pair_bytes: usize) -> f64 {
    let model =
        |threads: usize| MemoryModel::hybrid(n_basis, 1, threads).with_shell_pairs(pair_bytes);
    match alg {
        FockAlgorithm::Serial => model(1).bytes_mpi_only(),
        FockAlgorithm::MpiOnly { .. } => model(1).bytes_mpi_only(),
        FockAlgorithm::PrivateFock { n_threads, .. } => model(n_threads).bytes_private_fock(),
        FockAlgorithm::SharedFock { n_threads, .. } => model(n_threads).bytes_shared_fock(),
        FockAlgorithm::Distributed { .. } => model(1).bytes_mpi_only(),
        FockAlgorithm::Sharded { n_ranks, mode } => model(1).with_ddi(mode).bytes_sharded(n_ranks),
    }
}

/// Apply `--memory-budget`: print the model table and refuse an
/// over-budget algorithm, pointing at the sharded configuration that fits.
fn check_memory_budget(
    budget_mib: f64,
    alg: FockAlgorithm,
    n_basis: usize,
    pair_bytes: usize,
) -> Result<(), String> {
    let mib = |bytes: f64| bytes / (1024.0 * 1024.0);
    let (ranks, threads) = match alg {
        FockAlgorithm::Serial => (1, 1),
        FockAlgorithm::MpiOnly { n_ranks } | FockAlgorithm::Distributed { n_ranks } => (n_ranks, 1),
        FockAlgorithm::PrivateFock { n_ranks, n_threads }
        | FockAlgorithm::SharedFock { n_ranks, n_threads } => (n_ranks, n_threads),
        FockAlgorithm::Sharded { n_ranks, .. } => (n_ranks, 1),
    };
    let sharded = FockAlgorithm::Sharded { n_ranks: ranks, mode: DdiMode::Mpi3OneSided };
    println!("memory model (per rank, N = {n_basis}, budget {budget_mib:.1} MiB):");
    for candidate in [
        FockAlgorithm::MpiOnly { n_ranks: ranks },
        FockAlgorithm::PrivateFock { n_ranks: ranks, n_threads: threads },
        FockAlgorithm::SharedFock { n_ranks: ranks, n_threads: threads },
        FockAlgorithm::Distributed { n_ranks: ranks },
        sharded,
    ] {
        let est = mib(per_rank_estimate(candidate, n_basis, pair_bytes));
        let verdict = if est <= budget_mib { "fits" } else { "OVER BUDGET" };
        println!("  {:<12} {est:>10.2} MiB  {verdict}", candidate.label());
    }
    let est = mib(per_rank_estimate(alg, n_basis, pair_bytes));
    if est > budget_mib {
        // Stripes thin as ranks are added; the O(N) caches and the
        // shell-pair dataset do not, so a fitting rank count may not exist.
        let fitting = (0..).map(|i| ranks.max(1) << i).take(13).find(|&r| {
            let s = FockAlgorithm::Sharded { n_ranks: r, mode: DdiMode::Mpi3OneSided };
            mib(per_rank_estimate(s, n_basis, pair_bytes)) <= budget_mib
        });
        let hint = match fitting {
            Some(r) => {
                let s = FockAlgorithm::Sharded { n_ranks: r, mode: DdiMode::Mpi3OneSided };
                let sharded_est = mib(per_rank_estimate(s, n_basis, pair_bytes));
                format!(
                    "the sharded build fits in ~{sharded_est:.2} MiB — \
                     try --algorithm sharded:{r}"
                )
            }
            None => "even the sharded build cannot fit (its per-rank floor is the \
                     O(N) caches plus the shell-pair dataset); raise the budget"
                .to_string(),
        };
        return Err(format!(
            "algorithm '{}' needs ~{est:.2} MiB per rank, over the {budget_mib:.1} MiB \
             budget; {hint}",
            alg.label()
        ));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let mut molecule = "water".to_string();
    let mut xyz_path: Option<String> = None;
    let mut basis = "631g".to_string();
    let mut algorithm = "shared:2x2".to_string();
    let mut tau = 1e-10f64;
    let mut max_iter = 100usize;
    let mut uhf: Option<(usize, usize)> = None;
    let mut mp2 = false;
    let mut diis = true;
    let mut faults: Option<FaultPlan> = None;
    let mut retry = phi_scf::dmpi::RetryPolicy::default();
    let mut trace_path: Option<String> = None;
    let mut incremental = false;
    let mut full_rebuild_every = 8usize;
    let mut purify = false;
    let mut memory_budget: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |what: &str| args.next().ok_or(format!("--{what} needs a value"));
        match a.as_str() {
            "--molecule" => molecule = value("molecule")?,
            "--xyz" => xyz_path = Some(value("xyz")?),
            "--basis" => basis = value("basis")?,
            "--algorithm" => algorithm = value("algorithm")?,
            "--tau" => tau = value("tau")?.parse().map_err(|e| format!("bad tau: {e}"))?,
            "--max-iter" => {
                max_iter = value("max-iter")?.parse().map_err(|e| format!("bad max-iter: {e}"))?
            }
            "--uhf" => {
                let v = value("uhf")?;
                let (na, nb) = v.split_once(',').ok_or("--uhf needs NA,NB")?;
                uhf = Some((
                    na.parse().map_err(|_| format!("bad alpha count '{na}'"))?,
                    nb.parse().map_err(|_| format!("bad beta count '{nb}'"))?,
                ));
            }
            "--mp2" => mp2 = true,
            "--no-diis" => diis = false,
            "--incremental" => incremental = true,
            "--full-rebuild-every" => {
                full_rebuild_every = value("full-rebuild-every")?
                    .parse()
                    .map_err(|e| format!("bad full-rebuild-every: {e}"))?;
                if full_rebuild_every == 0 {
                    return Err("--full-rebuild-every needs K >= 1".into());
                }
            }
            "--purify" => purify = true,
            "--memory-budget" => {
                let mib: f64 = value("memory-budget")?
                    .parse()
                    .map_err(|e| format!("bad memory-budget: {e}"))?;
                if !mib.is_finite() || mib <= 0.0 {
                    return Err("--memory-budget needs MiB > 0".into());
                }
                memory_budget = Some(mib);
            }
            "--faults" => faults = Some(FaultPlan::parse(&value("faults")?)?),
            "--comm-timeout-ms" => {
                let ms: u64 = value("comm-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad comm-timeout-ms: {e}"))?;
                if ms == 0 {
                    return Err("--comm-timeout-ms needs MS >= 1".into());
                }
                retry = retry.with_comm_timeout(std::time::Duration::from_millis(ms));
                // Ack timeouts longer than the receive ceiling would turn
                // every transient fault into a barrier timeout first.
                retry.ack_timeout = retry.ack_timeout.min(retry.ft_timeout);
            }
            "--trace" => trace_path = Some(value("trace")?),
            "--help" | "-h" => {
                print!("{HELP}");
                return Ok(());
            }
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }

    let mol = match &xyz_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            molecule = path.clone();
            phi_scf::chem::parse_xyz(&text)?
        }
        None => parse_molecule(&molecule)?,
    };
    let basis_name = parse_basis(&basis)?;
    let b = BasisSet::build(&mol, basis_name);
    println!(
        "{molecule} / {}: {} atoms, {} shells, {} basis functions, {} electrons",
        basis_name.label(),
        mol.n_atoms(),
        b.n_shells(),
        b.n_basis(),
        mol.n_electrons()
    );

    let alg = parse_algorithm(&algorithm)?;
    if mp2 && purify {
        return Err("--mp2 needs MO coefficients and orbital energies; \
                    --purify produces neither (drop one of the two flags)"
            .into());
    }
    if let Some(mib) = memory_budget {
        let pair_bytes = phi_scf::integrals::ShellPairs::build(&b).bytes();
        check_memory_budget(mib, alg, b.n_basis(), pair_bytes)?;
    }
    let trace_session = trace_path.as_deref().map(|_| {
        if !phi_scf::trace::enabled() {
            eprintln!(
                "warning: this binary was built without `--features trace`; \
                 the trace file will be empty"
            );
        }
        phi_scf::trace::TraceSession::begin()
    });
    if let Some((na, nb)) = uhf {
        let config = UhfConfig {
            algorithm: alg,
            screening_tau: tau,
            max_iterations: max_iter,
            faults: faults.clone(),
            retry,
            incremental,
            full_rebuild_every,
            purification: purify,
            ..Default::default()
        };
        let r = run_uhf(&mol, &b, na, nb, &config);
        println!(
            "UHF [{}] ({na} alpha, {nb} beta): E = {:.8} Eh  <S^2> = {:.4}  ({} iterations, converged: {})",
            alg.label(),
            r.energy,
            r.s_squared,
            r.iterations,
            r.converged
        );
        if let Some(s) = r.fock_stats.first() {
            println!(
                "per build: {} quartets computed, {:.1}% screened, {} DLB calls",
                s.quartets_computed,
                s.screened_fraction() * 100.0,
                s.dlb_calls
            );
        }
        print_fault_summary(&r.fock_stats);
        if let (Some(session), Some(path)) = (trace_session, trace_path.as_deref()) {
            write_trace(session, path)?;
        }
        return Ok(());
    }

    let config = ScfConfig {
        algorithm: alg,
        screening_tau: tau,
        max_iterations: max_iter,
        diis,
        faults: faults.clone(),
        retry,
        incremental,
        full_rebuild_every,
        purification: purify,
        ..Default::default()
    };
    let r = run_scf(&mol, &b, &config);
    if let (Some(session), Some(path)) = (trace_session, trace_path.as_deref()) {
        write_trace(session, path)?;
    }
    println!(
        "RHF [{}]: E = {:.8} Eh  ({} iterations, converged: {})",
        alg.label(),
        r.energy,
        r.iterations,
        r.converged
    );
    print_fault_summary(&r.fock_stats);
    let rank_peak = r.fock_stats.iter().map(|s| s.max_rank_peak()).max().unwrap_or(0);
    println!(
        "time to form Fock: {:.3} s over {} builds; peak tracked memory {} bytes \
         ({} bytes on the busiest rank)",
        r.time_to_form_fock(),
        r.fock_stats.len(),
        r.peak_memory(),
        rank_peak
    );
    if let Some(s) = r.fock_stats.first() {
        println!(
            "per build: {} quartets computed, {:.1}% screened, {} DLB tasks",
            s.quartets_computed,
            s.screened_fraction() * 100.0,
            s.dlb_tasks
        );
    }
    if incremental {
        if let (Some(first), Some(last)) = (r.fock_stats.first(), r.fock_stats.last()) {
            let ratio = first.quartets_computed as f64 / (last.quartets_computed.max(1)) as f64;
            println!(
                "incremental: final build computed {} quartets ({ratio:.1}x fewer than the \
                 first full build's {})",
                last.quartets_computed, first.quartets_computed
            );
        }
    }
    if mp2 {
        if !r.converged {
            return Err("MP2 needs a converged SCF".into());
        }
        let c = mp2_energy(&b, &r.orbitals, &r.orbital_energies, mol.n_occupied(), r.energy);
        println!("MP2: E_corr = {:.8} Eh, total = {:.8} Eh", c.correlation_energy, c.total_energy);
    }
    Ok(())
}

/// Finish the trace session, write the Chrome trace_event JSON, and print
/// the phase breakdown plus per-rank thread imbalance (paper Fig. 8).
fn write_trace(session: phi_scf::trace::TraceSession, path: &str) -> Result<(), String> {
    let report = session.finish();
    std::fs::write(path, report.to_chrome_json()).map_err(|e| format!("{path}: {e}"))?;
    if report.is_empty() {
        println!("trace: wrote {path} (empty)");
        return Ok(());
    }
    let s = report.summary();
    println!(
        "trace: wrote {path}; fock {:.3} s, gsum {:.3} s, total {:.3} s, \
         busy fraction {:.2}, DLB wait {:.3} s",
        s.fock_seconds,
        s.reduction_seconds,
        s.total_seconds,
        s.busy_fraction,
        report.dlb_wait_total_ns() as f64 * 1e-9
    );
    for (rank, ratio) in report.imbalance_ratios() {
        println!("trace: rank {rank} thread imbalance (max/mean busy) {ratio:.2}");
    }
    Ok(())
}

/// If any build injected faults, summarize the recovery across iterations.
fn print_fault_summary(stats: &[phi_scf::hf::FockBuildStats]) {
    let injected: usize = stats.iter().map(|s| s.faults_injected).sum();
    if injected == 0 {
        return;
    }
    let reclaimed: usize = stats.iter().map(|s| s.tasks_reclaimed).sum();
    let retries: usize = stats.iter().map(|s| s.retries).sum();
    let failed = stats.iter().map(|s| s.failed_ranks.len()).max().unwrap_or(0);
    println!(
        "fault injection: {injected} faults fired, up to {failed} rank(s) lost per build, \
         {reclaimed} tasks reclaimed, {retries} recovery claims"
    );
    let retransmits: u64 = stats.iter().map(|s| s.retransmits).sum();
    let recovered: u64 = stats.iter().map(|s| s.transient_recoveries).sum();
    let corrupt: u64 = stats.iter().map(|s| s.corruptions_detected).sum();
    if retransmits + recovered + corrupt > 0 {
        println!(
            "reliable delivery: {retransmits} retransmissions, {corrupt} corruptions \
             detected, {recovered} transient faults recovered without losing a rank"
        );
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
