//! Cartesian Gaussian component bookkeeping.
//!
//! A shell block of angular momentum `l` carries `(l+1)(l+2)/2` cartesian
//! components `x^lx y^ly z^lz`. This module fixes their canonical order and
//! provides the per-component normalization factors relative to the
//! `(l,0,0)` component (whose normalization is folded into the contraction
//! coefficients by `phi-chem`).

/// Cartesian powers `(lx, ly, lz)` of one component.
pub type Cart = (usize, usize, usize);

/// Components of angular momentum `l` in canonical order:
/// `lx` descending, then `ly` descending.
///
/// l = 1 gives x, y, z; l = 2 gives xx, xy, xz, yy, yz, zz (the GAMESS
/// cartesian d order up to a permutation — any fixed order works as long as
/// it is used consistently). Tables are computed once and cached; this
/// function sits on the ERI hot path.
pub fn components(l: usize) -> &'static [Cart] {
    use std::sync::OnceLock;
    const LMAX: usize = 8;
    static TABLES: OnceLock<Vec<Vec<Cart>>> = OnceLock::new();
    let tables = TABLES.get_or_init(|| (0..=LMAX).map(components_uncached).collect());
    &tables[l]
}

fn components_uncached(l: usize) -> Vec<Cart> {
    let mut out = Vec::with_capacity((l + 1) * (l + 2) / 2);
    for lx in (0..=l).rev() {
        for ly in (0..=(l - lx)).rev() {
            out.push((lx, ly, l - lx - ly));
        }
    }
    out
}

/// Odd double factorial `(2n - 1)!!` with `(-1)!! = 1`.
fn odd_df(n: usize) -> f64 {
    let mut acc = 1.0;
    let mut k = 2 * n as i64 - 1;
    while k > 1 {
        acc *= k as f64;
        k -= 2;
    }
    acc
}

/// Normalization of component `(lx, ly, lz)` relative to `(l, 0, 0)`:
/// `sqrt((2l-1)!! / ((2lx-1)!!(2ly-1)!!(2lz-1)!!))`.
///
/// Equals 1 for axial components (e.g. d_xx) and e.g. `sqrt(3)` for d_xy.
pub fn component_norm((lx, ly, lz): Cart) -> f64 {
    let l = lx + ly + lz;
    (odd_df(l) / (odd_df(lx) * odd_df(ly) * odd_df(lz))).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_counts() {
        for l in 0..6 {
            assert_eq!(components(l).len(), (l + 1) * (l + 2) / 2);
        }
    }

    #[test]
    fn p_order_is_xyz() {
        assert_eq!(components(1), &[(1, 0, 0), (0, 1, 0), (0, 0, 1)]);
    }

    #[test]
    fn d_order_and_norms() {
        let d = components(2);
        assert_eq!(d[0], (2, 0, 0));
        assert_eq!(d[3], (0, 2, 0));
        assert_eq!(d[5], (0, 0, 2));
        // Axial components have factor 1; cross terms sqrt(3).
        assert!((component_norm((2, 0, 0)) - 1.0).abs() < 1e-15);
        assert!((component_norm((1, 1, 0)) - 3f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn s_and_p_norms_are_unity() {
        assert_eq!(component_norm((0, 0, 0)), 1.0);
        for &c in components(1) {
            assert_eq!(component_norm(c), 1.0);
        }
    }

    #[test]
    fn f_cross_norms() {
        // f_xyz: sqrt(5!!/(1*1*1)) = sqrt(15); f_xxy: sqrt(5!!/3!!) = sqrt(5).
        assert!((component_norm((1, 1, 1)) - 15f64.sqrt()).abs() < 1e-12);
        assert!((component_norm((2, 1, 0)) - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn powers_sum_to_l() {
        for l in 0..5 {
            for (lx, ly, lz) in components(l) {
                assert_eq!(lx + ly + lz, l);
            }
        }
    }
}
