//! Class-specialized, batched ERI kernels.
//!
//! The generic McMurchie–Davidson path in [`crate::eri`] is one loop nest
//! that handles every angular-momentum combination through runtime bounds,
//! dense scratch cubes and per-quartet Hermite `E`-table walks. That
//! generality is exactly what the SC'17 paper's vectorization analysis
//! (arXiv:1708.00033, §"SIMD optimization") identifies as the obstacle to
//! wide SIMD: trip counts the compiler cannot see, strided scratch access,
//! and redundant zero-initialization of high-water buffers.
//!
//! This module monomorphizes the hot classes. A *class* is the pair of
//! combined angular momenta `(l_bra, l_ket)` of the two shell pairs —
//! `ssss` is `(0,0)`, `pppp` and the Pople composite `spsp` are `(2,2)`,
//! `dddd` is `(4,4)` — mirroring how GAMESS groups composite-L shells: all
//! blocks of an SP shell share exponents, so one kernel instance covers the
//! whole quartet. Every class with both sides `<=` [`SPEC_LMAX`] gets its
//! own `eval_spec::<LB, LK>` instantiation (25 in total, covering every
//! s/p/SP/d combination of 6-31G(d)-style bases); anything hotter — f
//! shells and beyond — falls back to the generic recursion through the same
//! [`EriKernel`] trait.
//!
//! Per quartet a specialized kernel runs three phases:
//!
//! 1. **Survivor compaction** (batched, structure-of-arrays): the primitive
//!    prefactor screen streams the pair datasets' [`PrimSoA`] lanes and
//!    compacts surviving primitive quartets into flat lanes
//!    (`base`, `alpha`, displacement, Boys argument).
//! 2. **Batched Boys evaluation**: one [`boys_batch`] pass fills a
//!    contiguous `F_0..F_{l_bra+l_ket}` stripe per surviving lane.
//! 3. **Hermite recursion + two-stage contraction** with const-generic loop
//!    bounds: the `R` recursion skips the dense-cube zero-fill (the
//!    dominant per-quartet cost for d-heavy classes — see
//!    `rints::fill_r0_into`), the Hermite `E` triple products come
//!    replayed from the pair datasets' precomputed sparse [`E3Sparse`]
//!    entries instead of walking dense tables, and the stage-1 inner loops
//!    run unit-stride over a simplex-packed `W` scratch so rustc
//!    autovectorizes them.
//!
//! **Parity contract.** A specialized kernel is not "close to" the generic
//! path — it replays the *same arithmetic in the same order*: the same
//! screening test, the same operation order in every prefactor and scale
//! factor, Boys values from the same scalar evaluator, the `R` recursion
//! through the shared `fill_r0_into` core, `E` products stored in generic
//! iteration order with the parity sign applied as an exact IEEE negation,
//! and per-output-element accumulation in the same survivor/entry order.
//! Results agree with the generic path to the last bit (up to the sign of
//! exact zeros); `tests/kernel_parity.rs` enforces `<= 1e-14` per integral
//! across seeded random geometries, exponents, contraction depths and
//! degenerate configurations.
//!
//! [`PrimSoA`]: crate::shell_pairs::PrimSoA
//! [`E3Sparse`]: crate::shell_pairs::E3Sparse

use crate::boys::boys_batch;
use crate::eri::GenericKernel;
use crate::rints::fill_r0_into;
use crate::shell_pairs::ShellPair;

const PI: f64 = std::f64::consts::PI;

/// Largest combined per-side angular momentum (`l_bra` or `l_ket`) with a
/// specialized kernel. 4 covers `dd` bra/ket pairs — every class of an
/// s/p/SP/d basis like 6-31G(d).
pub const SPEC_LMAX: usize = 4;

/// Number of specialized `(l_bra, l_ket)` classes.
pub const N_SPEC: usize = (SPEC_LMAX + 1) * (SPEC_LMAX + 1);

/// Class slots: the specialized classes plus one generic-fallback slot.
pub const N_CLASS_SLOTS: usize = N_SPEC + 1;

/// Slot index of the generic fallback in per-class counters.
pub const GENERIC_SLOT: usize = N_SPEC;

/// Map a quartet's combined bra/ket angular momenta to its class slot.
/// Classes beyond [`SPEC_LMAX`] on either side land on [`GENERIC_SLOT`].
#[inline]
pub fn class_index(l_bra: usize, l_ket: usize) -> usize {
    if l_bra <= SPEC_LMAX && l_ket <= SPEC_LMAX {
        l_bra * (SPEC_LMAX + 1) + l_ket
    } else {
        GENERIC_SLOT
    }
}

/// Human-readable class labels, indexed by class slot: `b<l_bra>k<l_ket>`
/// (combined angular momenta, so `pppp` and `spsp` both read `b2k2`, `dddd`
/// reads `b4k4`), with the fallback labeled `generic`.
pub const CLASS_LABELS: [&str; N_CLASS_SLOTS] = [
    "b0k0", "b0k1", "b0k2", "b0k3", "b0k4", //
    "b1k0", "b1k1", "b1k2", "b1k3", "b1k4", //
    "b2k0", "b2k1", "b2k2", "b2k3", "b2k4", //
    "b3k0", "b3k1", "b3k2", "b3k3", "b3k4", //
    "b4k0", "b4k1", "b4k2", "b4k3", "b4k4", //
    "generic",
];

/// Trace-counter names per class slot (static, as `phi_trace` requires).
pub const CLASS_TRACE_NAMES: [&str; N_CLASS_SLOTS] = [
    "eri.class.b0k0",
    "eri.class.b0k1",
    "eri.class.b0k2",
    "eri.class.b0k3",
    "eri.class.b0k4",
    "eri.class.b1k0",
    "eri.class.b1k1",
    "eri.class.b1k2",
    "eri.class.b1k3",
    "eri.class.b1k4",
    "eri.class.b2k0",
    "eri.class.b2k1",
    "eri.class.b2k2",
    "eri.class.b2k3",
    "eri.class.b2k4",
    "eri.class.b3k0",
    "eri.class.b3k1",
    "eri.class.b3k2",
    "eri.class.b3k3",
    "eri.class.b3k4",
    "eri.class.b4k0",
    "eri.class.b4k1",
    "eri.class.b4k2",
    "eri.class.b4k3",
    "eri.class.b4k4",
    "eri.class.generic",
];

/// What one kernel invocation did (surfaced into engine/Fock statistics).
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelRun {
    /// Primitive quartets that survived screening and were computed.
    pub prim_quartets: u64,
}

/// The common contract of the generic path and the specialized kernels:
/// evaluate one contracted shell quartet from precomputed pair data into a
/// pre-zeroed `out` buffer of length `bra.n_fn() * ket.n_fn()`.
pub trait EriKernel {
    fn eval(
        &mut self,
        bra: &ShellPair,
        ket: &ShellPair,
        prefactor_cutoff: f64,
        out: &mut [f64],
    ) -> KernelRun;
}

/// Thread-private scratch of the specialized kernels: survivor lanes
/// (structure-of-arrays, one value per surviving primitive quartet), the
/// batched Boys stripes, the two `R`-recursion rolling buffers and the
/// contraction intermediates. All buffers grow to a high-water mark and are
/// reused; no per-quartet allocation.
#[derive(Default)]
pub struct KernelScratch {
    /// Survivor lanes: quartet prefactor `2 pi^{5/2} / (p q sqrt(p+q))`.
    base: Vec<f64>,
    /// Survivor lanes: reduced exponent `alpha = p q / (p + q)`.
    alpha: Vec<f64>,
    /// Survivor lanes: bra-to-ket product-center displacement.
    dx: Vec<f64>,
    dy: Vec<f64>,
    dz: Vec<f64>,
    /// Survivor lanes: Boys argument `alpha |PQ|^2`.
    targ: Vec<f64>,
    /// Survivor lanes: originating primitive-pair indices.
    ip_ab: Vec<u32>,
    ip_cd: Vec<u32>,
    /// Batched Boys values, `fm[q * (l_total+1) + m] = F_m(targ[q])`.
    fm: Vec<f64>,
    /// Rolling buffers of the shared `R` recursion (no zero-fill mode).
    r_prev: Vec<f64>,
    r_cur: Vec<f64>,
    /// Stage-1 intermediate `W[simplex_tuv * ncd + cd]` (simplex-packed).
    w: Vec<f64>,
    /// Per-(cd function pair) unit-stride staging row of stage 1.
    wtmp: Vec<f64>,
    /// Stage-2 per-bra-function-pair accumulator.
    acc: Vec<f64>,
}

/// One monomorphized class kernel: `LB`/`LK` are the combined bra/ket
/// angular momenta, so every loop bound below is a compile-time constant.
/// Returns the number of primitive quartets computed.
///
/// Bitwise-parity notes are inline at each stage; the scheme and operation
/// order mirror `GenericKernel::eval` exactly.
fn eval_spec<const LB: usize, const LK: usize>(
    s: &mut KernelScratch,
    bra: &ShellPair,
    ket: &ShellPair,
    prefactor_cutoff: f64,
    out: &mut [f64],
) -> u64 {
    let l_total = LB + LK;
    let rdim = l_total + 1;
    let ntuv = (LB + 1) * (LB + 2) * (LB + 3) / 6;

    // Row offsets of the simplex-packed W index:
    // sidx(t,u,v) = offs[t*(LB+1) + u] + v, for t+u+v <= LB.
    let mut offs = [0u16; (SPEC_LMAX + 1) * (SPEC_LMAX + 1)];
    {
        let mut a = 0u16;
        for t in 0..=LB {
            for u in 0..=(LB - t) {
                offs[t * (LB + 1) + u] = a;
                a += (LB - t - u + 1) as u16;
            }
        }
    }

    // Phase A: primitive screening + survivor compaction, streaming the SoA
    // lanes in the generic order (ip_ab outer, ip_cd inner). Same screen,
    // same operation order as the generic path.
    let coef_bound = bra.max_coef * ket.max_coef;
    let num = 2.0 * PI.powf(2.5);
    let (bs, ks) = (&bra.soa, &ket.soa);
    s.base.clear();
    s.alpha.clear();
    s.dx.clear();
    s.dy.clear();
    s.dz.clear();
    s.targ.clear();
    s.ip_ab.clear();
    s.ip_cd.clear();
    for ia in 0..bs.p.len() {
        let p = bs.p[ia];
        let (bcx, bcy, bcz, bk) = (bs.cx[ia], bs.cy[ia], bs.cz[ia], bs.k[ia]);
        for ic in 0..ks.p.len() {
            let q = ks.p[ic];
            let base = num / (p * q * (p + q).sqrt());
            if (base * bk * ks.k[ic] * coef_bound).abs() < prefactor_cutoff {
                continue;
            }
            let alpha = p * q / (p + q);
            let dx = bcx - ks.cx[ic];
            let dy = bcy - ks.cy[ic];
            let dz = bcz - ks.cz[ic];
            let r2 = dx * dx + dy * dy + dz * dz;
            s.base.push(base);
            s.alpha.push(alpha);
            s.dx.push(dx);
            s.dy.push(dy);
            s.dz.push(dz);
            s.targ.push(alpha * r2);
            s.ip_ab.push(ia as u32);
            s.ip_cd.push(ic as u32);
        }
    }
    let nsurv = s.base.len();
    if nsurv == 0 {
        return 0;
    }

    // Phase B: one batched Boys pass, a contiguous F_0..F_{l_total} stripe
    // per survivor lane. Same scalar evaluator as RTable::rebuild uses.
    if s.fm.len() < nsurv * rdim {
        s.fm.resize(nsurv * rdim, 0.0);
    }
    boys_batch(l_total, &s.targ, &mut s.fm);

    // Phase C: per survivor, the shared R recursion (zero-fill skipped: the
    // contraction below reads only on-simplex entries) and both contraction
    // stages with const bounds.
    let (nfa, nfb, nfc, nfd) = (bra.a.n_fn, bra.b.n_fn, ket.a.n_fn, ket.b.n_fn);
    let ncd = nfc * nfd;
    if s.w.len() < ntuv * ncd {
        s.w.resize(ntuv * ncd, 0.0);
    }
    if s.wtmp.len() < ntuv {
        s.wtmp.resize(ntuv, 0.0);
    }
    if s.acc.len() < ncd {
        s.acc.resize(ncd, 0.0);
    }

    for qi in 0..nsurv {
        let base = s.base[qi];
        fill_r0_into(
            l_total,
            s.alpha[qi],
            s.dx[qi],
            s.dy[qi],
            s.dz[qi],
            &s.fm[qi * rdim..(qi + 1) * rdim],
            &mut s.r_prev,
            &mut s.r_cur,
            false,
        );
        let r: &[f64] = &s.r_prev;
        let ip_cd = s.ip_cd[qi] as usize;

        // Stage 1: ket contraction into W[sidx * ncd + cdi]. Per cd function
        // pair the precomputed sparse E entries are replayed in generic
        // iteration order into a unit-stride staging row, then placed into
        // the cd column. Per W slot the accumulation order (entries of its
        // own function pair, ascending) is exactly the generic path's.
        let w = &mut s.w[..ntuv * ncd];
        w.iter_mut().for_each(|x| *x = 0.0);
        for fc in 0..nfc {
            let bci = ket.a.fn_block[fc] as usize;
            let norm_c = ket.a.norms[fc];
            for fd in 0..nfd {
                let cdi = fc * nfd + fd;
                let wcd = ket.coef(ip_cd, bci, ket.b.fn_block[fd] as usize);
                let scale_ket = base * wcd;
                if scale_ket == 0.0 {
                    continue;
                }
                let scale_cd = scale_ket * norm_c * ket.b.norms[fd];
                let (tuvs, vals) = ket.e3.entries(ip_cd, fc, fd);
                let wtmp = &mut s.wtmp[..ntuv];
                wtmp.iter_mut().for_each(|x| *x = 0.0);
                for (ei, tuv) in tuvs.iter().enumerate() {
                    let (tau, nu, phi) = (tuv[0] as usize, tuv[1] as usize, tuv[2] as usize);
                    // Generic: (((sign*etx)*ety)*etz)*scale_cd. Negation is
                    // exact, so sign-after-product is bitwise identical.
                    let v0 = vals[ei] * scale_cd;
                    let e_ket = if (tau + nu + phi) % 2 == 1 { -v0 } else { v0 };
                    for t in 0..=LB {
                        let rt = (t + tau) * rdim;
                        for u in 0..=(LB - t) {
                            let row = offs[t * (LB + 1) + u] as usize;
                            let rbase = (rt + u + nu) * rdim + phi;
                            for v in 0..=(LB - t - u) {
                                wtmp[row + v] += e_ket * r[rbase + v];
                            }
                        }
                    }
                }
                for (sidx, &wv) in wtmp.iter().enumerate() {
                    w[sidx * ncd + cdi] = wv;
                }
            }
        }

        // Stage 2: bra expansion. Per bra function pair, replay the sparse
        // bra E entries (entry order = generic order) against the packed W
        // rows; the inner cd loop is unit-stride, as in the generic path.
        let w = &s.w[..ntuv * ncd];
        let ip_ab = s.ip_ab[qi] as usize;
        for fa in 0..nfa {
            let bai = bra.a.fn_block[fa] as usize;
            let norm_a = bra.a.norms[fa];
            for fb in 0..nfb {
                let wab = bra.coef(ip_ab, bai, bra.b.fn_block[fb] as usize);
                if wab == 0.0 {
                    continue;
                }
                let wab_full = wab * norm_a * bra.b.norms[fb];
                let acc = &mut s.acc[..ncd];
                acc.iter_mut().for_each(|x| *x = 0.0);
                let (tuvs, vals) = bra.e3.entries(ip_ab, fa, fb);
                for (ei, tuv) in tuvs.iter().enumerate() {
                    let (t, u, v) = (tuv[0] as usize, tuv[1] as usize, tuv[2] as usize);
                    let sidx = offs[t * (LB + 1) + u] as usize + v;
                    let e_bra = vals[ei];
                    let row = &w[sidx * ncd..sidx * ncd + ncd];
                    for (a, rv) in acc.iter_mut().zip(row) {
                        *a += e_bra * rv;
                    }
                }
                let obase = (fa * nfb + fb) * ncd;
                let orow = &mut out[obase..obase + ncd];
                for (o, a) in orow.iter_mut().zip(acc.iter()) {
                    *o += wab_full * *a;
                }
            }
        }
    }
    nsurv as u64
}

/// Dispatch a specialized class slot to its monomorphized instance.
/// `ci` must be a specialized slot (`< N_SPEC`).
fn eval_spec_dispatch(
    ci: usize,
    s: &mut KernelScratch,
    bra: &ShellPair,
    ket: &ShellPair,
    prefactor_cutoff: f64,
    out: &mut [f64],
) -> u64 {
    macro_rules! arm {
        ($lb:literal, $lk:literal) => {
            eval_spec::<$lb, $lk>(s, bra, ket, prefactor_cutoff, out)
        };
    }
    match ci {
        0 => arm!(0, 0),
        1 => arm!(0, 1),
        2 => arm!(0, 2),
        3 => arm!(0, 3),
        4 => arm!(0, 4),
        5 => arm!(1, 0),
        6 => arm!(1, 1),
        7 => arm!(1, 2),
        8 => arm!(1, 3),
        9 => arm!(1, 4),
        10 => arm!(2, 0),
        11 => arm!(2, 1),
        12 => arm!(2, 2),
        13 => arm!(2, 3),
        14 => arm!(2, 4),
        15 => arm!(3, 0),
        16 => arm!(3, 1),
        17 => arm!(3, 2),
        18 => arm!(3, 3),
        19 => arm!(3, 4),
        20 => arm!(4, 0),
        21 => arm!(4, 1),
        22 => arm!(4, 2),
        23 => arm!(4, 3),
        24 => arm!(4, 4),
        _ => unreachable!("eval_spec_dispatch called with generic slot {ci}"),
    }
}

/// The full kernel set: the 25 specialized instances plus the generic
/// fallback, behind one [`EriKernel`] face. This is what [`crate::eri::EriEngine`]
/// owns; the engine's `use_kernels` toggle routes everything through the
/// fallback for differential testing and ablation.
#[derive(Default)]
pub struct ClassKernels {
    scratch: KernelScratch,
    /// The generic-path fallback (also the differential-testing reference).
    pub generic: GenericKernel,
}

impl ClassKernels {
    pub fn new() -> ClassKernels {
        ClassKernels::default()
    }

    /// Evaluate one quartet, choosing a specialized kernel when
    /// `use_spec` is set and the class has one. Returns the class slot
    /// actually used (for per-class accounting) and the run statistics.
    pub fn eval_classed(
        &mut self,
        use_spec: bool,
        bra: &ShellPair,
        ket: &ShellPair,
        prefactor_cutoff: f64,
        out: &mut [f64],
    ) -> (usize, KernelRun) {
        let ci = class_index(bra.l_sum, ket.l_sum);
        if use_spec && ci != GENERIC_SLOT {
            let n = eval_spec_dispatch(ci, &mut self.scratch, bra, ket, prefactor_cutoff, out);
            (ci, KernelRun { prim_quartets: n })
        } else {
            (GENERIC_SLOT, self.generic.eval(bra, ket, prefactor_cutoff, out))
        }
    }
}

impl EriKernel for ClassKernels {
    fn eval(
        &mut self,
        bra: &ShellPair,
        ket: &ShellPair,
        prefactor_cutoff: f64,
        out: &mut [f64],
    ) -> KernelRun {
        self.eval_classed(true, bra, ket, prefactor_cutoff, out).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_covers_the_spec_grid() {
        let mut seen = [false; N_CLASS_SLOTS];
        for lb in 0..=SPEC_LMAX {
            for lk in 0..=SPEC_LMAX {
                let ci = class_index(lb, lk);
                assert!(ci < N_SPEC);
                assert!(!seen[ci], "classes must map 1:1");
                seen[ci] = true;
            }
        }
        assert_eq!(class_index(5, 0), GENERIC_SLOT);
        assert_eq!(class_index(0, 5), GENERIC_SLOT);
        assert_eq!(class_index(6, 8), GENERIC_SLOT);
    }

    #[test]
    fn labels_match_slots() {
        assert_eq!(CLASS_LABELS.len(), N_CLASS_SLOTS);
        assert_eq!(CLASS_LABELS[class_index(0, 0)], "b0k0");
        assert_eq!(CLASS_LABELS[class_index(2, 2)], "b2k2");
        assert_eq!(CLASS_LABELS[class_index(4, 4)], "b4k4");
        assert_eq!(CLASS_LABELS[GENERIC_SLOT], "generic");
        for (ci, label) in CLASS_LABELS.iter().enumerate() {
            assert!(
                CLASS_TRACE_NAMES[ci].ends_with(label),
                "trace name {} must end with label {label}",
                CLASS_TRACE_NAMES[ci]
            );
        }
    }
}
