//! One-electron integral matrices: overlap `S`, kinetic energy `T`, and
//! nuclear attraction `V`.
//!
//! These are the O(N²) part of Fock construction (paper §3); they are cheap
//! compared to the ERIs but required for the core Hamiltonian
//! `H_core = T + V` and the orthogonalization metric `S`.

use crate::cart::{component_norm, components};
use crate::hermite::ETable;
use crate::rints::RTable;
use phi_chem::{BasisSet, Molecule, Shell};
use phi_linalg::Mat;

const PI: f64 = std::f64::consts::PI;

/// Overlap matrix `S_{mu nu} = <mu | nu>`.
pub fn overlap_matrix(basis: &BasisSet) -> Mat {
    build_symmetric(basis, |sa, sb, out, nb| {
        shell_pair(sa, sb, out, nb, PairOp::Overlap);
    })
}

/// Kinetic energy matrix `T_{mu nu} = <mu | -1/2 nabla^2 | nu>`.
pub fn kinetic_matrix(basis: &BasisSet) -> Mat {
    build_symmetric(basis, |sa, sb, out, nb| {
        shell_pair(sa, sb, out, nb, PairOp::Kinetic);
    })
}

/// Nuclear attraction matrix
/// `V_{mu nu} = -sum_C Z_C <mu | 1/r_C | nu>`.
pub fn nuclear_attraction_matrix(basis: &BasisSet, mol: &Molecule) -> Mat {
    let charges: Vec<([f64; 3], f64)> =
        mol.atoms().iter().map(|a| (a.pos, a.element.atomic_number() as f64)).collect();
    build_symmetric(basis, |sa, sb, out, nb| {
        shell_pair(sa, sb, out, nb, PairOp::Nuclear(&charges));
    })
}

/// Electric dipole moment matrices `(X, Y, Z)` with
/// `X_{mu nu} = <mu | x - origin_x | nu>` etc.
///
/// Uses the shift identity `x = (x - x_B) + x_B`, so each matrix element is
/// `S(i, j+1) + (B_x - origin_x) S(i, j)` in the shifted direction. Needed
/// for molecular dipole moments (a standard GAMESS property output).
pub fn dipole_matrices(basis: &BasisSet, origin: [f64; 3]) -> [Mat; 3] {
    [0usize, 1, 2].map(|dir| {
        build_symmetric(basis, |sa, sb, out, nb| {
            shell_pair(sa, sb, out, nb, PairOp::Dipole { dir, origin });
        })
    })
}

/// Which one-electron operator a shell-pair evaluation computes.
enum PairOp<'a> {
    Overlap,
    Kinetic,
    Nuclear(&'a [([f64; 3], f64)]),
    Dipole { dir: usize, origin: [f64; 3] },
}

/// Assemble a symmetric matrix by looping over shell pairs `i >= j`.
fn build_symmetric(basis: &BasisSet, eval: impl Fn(&Shell, &Shell, &mut [f64], usize)) -> Mat {
    let n = basis.n_basis();
    let mut m = Mat::zeros(n, n);
    let mut buf = Vec::new();
    for (si, sa) in basis.shells.iter().enumerate() {
        for sb in basis.shells.iter().take(si + 1) {
            let (na, nb) = (sa.n_functions(), sb.n_functions());
            buf.clear();
            buf.resize(na * nb, 0.0);
            eval(sa, sb, &mut buf, nb);
            for ia in 0..na {
                for ib in 0..nb {
                    let v = buf[ia * nb + ib];
                    m[(sa.first_bf + ia, sb.first_bf + ib)] = v;
                    m[(sb.first_bf + ib, sa.first_bf + ia)] = v;
                }
            }
        }
    }
    m
}

/// Evaluate one operator over a full shell pair (all angular blocks, all
/// primitives, all cartesian components). `out` is `[na][nb]` row-major.
fn shell_pair(sa: &Shell, sb: &Shell, out: &mut [f64], nb_total: usize, op: PairOp<'_>) {
    let mut off_a = 0;
    for ba in &sa.blocks {
        let comps_a = components(ba.l);
        let mut off_b = 0;
        for bb in &sb.blocks {
            let comps_b = components(bb.l);
            for (pa, (&ea, &ca)) in sa.exps.iter().zip(&ba.coefs).enumerate() {
                for (pb, (&eb, &cb)) in sb.exps.iter().zip(&bb.coefs).enumerate() {
                    let _ = (pa, pb);
                    let w = ca * cb;
                    // Kinetic needs E up to j + 2 in the ket index; dipole
                    // needs j + 1.
                    let extra = match op {
                        PairOp::Kinetic => 2,
                        PairOp::Dipole { .. } => 1,
                        _ => 0,
                    };
                    let ex = ETable::build(ba.l, bb.l + extra, ea, eb, sa.center[0], sb.center[0]);
                    let ey = ETable::build(ba.l, bb.l + extra, ea, eb, sa.center[1], sb.center[1]);
                    let ez = ETable::build(ba.l, bb.l + extra, ea, eb, sa.center[2], sb.center[2]);
                    let p = ea + eb;
                    match &op {
                        PairOp::Overlap => {
                            let scale = (PI / p).powf(1.5) * w;
                            for (ia, &(ax, ay, az)) in comps_a.iter().enumerate() {
                                for (ib, &(bx, by, bz)) in comps_b.iter().enumerate() {
                                    out[(off_a + ia) * nb_total + off_b + ib] += scale
                                        * ex.get(ax, bx, 0)
                                        * ey.get(ay, by, 0)
                                        * ez.get(az, bz, 0);
                                }
                            }
                        }
                        PairOp::Kinetic => {
                            let scale = (PI / p).powf(1.5) * w;
                            // 1-D kinetic factor acting on the ket power j:
                            // t(i,j) = -2 b^2 E0(i,j+2) + b(2j+1) E0(i,j)
                            //          - j(j-1)/2 E0(i,j-2)
                            let tfac = |e: &ETable, i: usize, j: usize| -> f64 {
                                let mut v = -2.0 * eb * eb * e.get(i, j + 2, 0)
                                    + eb * (2 * j + 1) as f64 * e.get(i, j, 0);
                                if j >= 2 {
                                    v -= 0.5 * (j * (j - 1)) as f64 * e.get(i, j - 2, 0);
                                }
                                v
                            };
                            for (ia, &(ax, ay, az)) in comps_a.iter().enumerate() {
                                for (ib, &(bx, by, bz)) in comps_b.iter().enumerate() {
                                    let sx = ex.get(ax, bx, 0);
                                    let sy = ey.get(ay, by, 0);
                                    let sz = ez.get(az, bz, 0);
                                    let tx = tfac(&ex, ax, bx);
                                    let ty = tfac(&ey, ay, by);
                                    let tz = tfac(&ez, az, bz);
                                    out[(off_a + ia) * nb_total + off_b + ib] +=
                                        scale * (tx * sy * sz + sx * ty * sz + sx * sy * tz);
                                }
                            }
                        }
                        PairOp::Dipole { dir, origin } => {
                            let scale = (PI / p).powf(1.5) * w;
                            let tables = [&ex, &ey, &ez];
                            let centers = [sb.center[0], sb.center[1], sb.center[2]];
                            for (ia, &ca3) in comps_a.iter().enumerate() {
                                let apow = [ca3.0, ca3.1, ca3.2];
                                for (ib, &cb3) in comps_b.iter().enumerate() {
                                    let bpow = [cb3.0, cb3.1, cb3.2];
                                    // <a| r_dir |b> = prod_{d != dir} S_d *
                                    //   [S_dir(i, j+1) + (B_dir - o_dir) S_dir(i, j)]
                                    let mut v = scale;
                                    for d3 in 0..3 {
                                        let s0 = tables[d3].get(apow[d3], bpow[d3], 0);
                                        if d3 == *dir {
                                            let s1 = tables[d3].get(apow[d3], bpow[d3] + 1, 0);
                                            v *= s1 + (centers[d3] - origin[d3]) * s0;
                                        } else {
                                            v *= s0;
                                        }
                                    }
                                    out[(off_a + ia) * nb_total + off_b + ib] += v;
                                }
                            }
                        }
                        PairOp::Nuclear(charges) => {
                            let px = (ea * sa.center[0] + eb * sb.center[0]) / p;
                            let py = (ea * sa.center[1] + eb * sb.center[1]) / p;
                            let pz = (ea * sa.center[2] + eb * sb.center[2]) / p;
                            let scale = 2.0 * PI / p * w;
                            let l_tot = ba.l + bb.l;
                            for &(cpos, z) in charges.iter() {
                                let r = RTable::build(
                                    l_tot,
                                    p,
                                    px - cpos[0],
                                    py - cpos[1],
                                    pz - cpos[2],
                                );
                                for (ia, &(ax, ay, az)) in comps_a.iter().enumerate() {
                                    for (ib, &(bx, by, bz)) in comps_b.iter().enumerate() {
                                        let mut acc = 0.0;
                                        for t in 0..=(ax + bx) {
                                            let etx = ex.get(ax, bx, t);
                                            if etx == 0.0 {
                                                continue;
                                            }
                                            for u in 0..=(ay + by) {
                                                let euy = ey.get(ay, by, u);
                                                if euy == 0.0 {
                                                    continue;
                                                }
                                                for v in 0..=(az + bz) {
                                                    acc += etx
                                                        * euy
                                                        * ez.get(az, bz, v)
                                                        * r.get(t, u, v);
                                                }
                                            }
                                        }
                                        out[(off_a + ia) * nb_total + off_b + ib] -=
                                            scale * z * acc;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            off_b += comps_b.len();
        }
        off_a += comps_a.len();
    }
    // Apply per-component normalization factors.
    let fa = shell_component_norms(sa);
    let fb = shell_component_norms(sb);
    for (ia, &na) in fa.iter().enumerate() {
        for (ib, &nb) in fb.iter().enumerate() {
            out[ia * nb_total + ib] *= na * nb;
        }
    }
}

/// Per-component normalization factors for every function of a shell
/// (concatenated over its angular blocks).
pub fn shell_component_norms(shell: &Shell) -> Vec<f64> {
    let mut out = Vec::with_capacity(shell.n_functions());
    for b in &shell.blocks {
        for &c in components(b.l) {
            out.push(component_norm(c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_chem::basis::{AngBlock, BasisName};
    use phi_chem::geom::small;
    use phi_chem::{Atom, Element, Molecule};
    use phi_linalg::eigh;

    fn single_prim_shell(l: usize, alpha: f64, center: [f64; 3]) -> Shell {
        // Normalized single-primitive coefficient for the (l,0,0) component.
        let df: f64 = (1..=l).map(|k| 2.0 * k as f64 - 1.0).product();
        let norm = (2.0 * alpha / PI).powf(0.75) * (4.0 * alpha).powf(l as f64 / 2.0) / df.sqrt();
        Shell {
            atom: 0,
            center,
            exps: vec![alpha],
            blocks: vec![AngBlock { l, coefs: vec![norm] }],
            first_bf: 0,
        }
    }

    fn one_shell_basis(shell: Shell) -> BasisSet {
        BasisSet::from_shells(BasisName::Sto3g, vec![shell])
    }

    #[test]
    fn overlap_diagonal_is_one_for_every_basis() {
        for name in [BasisName::Sto3g, BasisName::B631g, BasisName::B631gd] {
            let m = small::water();
            let b = BasisSet::build(&m, name);
            let s = overlap_matrix(&b);
            for i in 0..b.n_basis() {
                assert!(
                    (s[(i, i)] - 1.0).abs() < 1e-10,
                    "{}: S[{i},{i}] = {}",
                    name.label(),
                    s[(i, i)]
                );
            }
            assert!(s.is_symmetric(1e-12));
        }
    }

    #[test]
    fn overlap_is_positive_definite() {
        let b = BasisSet::build(&small::water(), BasisName::B631gd);
        let s = overlap_matrix(&b);
        let e = eigh(&s);
        assert!(e.values[0] > 0.0, "smallest overlap eigenvalue {}", e.values[0]);
    }

    #[test]
    fn kinetic_of_single_s_gaussian_is_3a_over_2() {
        // <T> = 3 alpha / 2 for a normalized s Gaussian.
        for alpha in [0.3, 1.0, 2.7] {
            let b = one_shell_basis(single_prim_shell(0, alpha, [0.0; 3]));
            let t = kinetic_matrix(&b);
            assert!((t[(0, 0)] - 1.5 * alpha).abs() < 1e-12, "alpha={alpha}: {}", t[(0, 0)]);
        }
    }

    #[test]
    fn kinetic_diagonal_positive_for_d_functions() {
        let b = one_shell_basis(single_prim_shell(2, 0.8, [0.1, -0.2, 0.3]));
        let t = kinetic_matrix(&b);
        for i in 0..6 {
            assert!(t[(i, i)] > 0.0);
        }
        assert!(t.is_symmetric(1e-12));
    }

    #[test]
    fn nuclear_attraction_of_s_gaussian_at_nucleus() {
        // <V> = -Z * 2 sqrt(2 alpha / pi) for a normalized s Gaussian
        // centered on the charge.
        let alpha = 1.3;
        let b = one_shell_basis(single_prim_shell(0, alpha, [0.0; 3]));
        let mol = Molecule::new(vec![Atom { element: Element::He, pos: [0.0; 3] }], 2);
        let v = nuclear_attraction_matrix(&b, &mol);
        let want = -2.0 * 2.0 * (2.0 * alpha / PI).sqrt();
        assert!((v[(0, 0)] - want).abs() < 1e-12, "{} vs {want}", v[(0, 0)]);
    }

    #[test]
    fn matrices_transform_consistently_under_translation() {
        let m = small::water();
        let b1 = BasisSet::build(&m, BasisName::B631g);
        let m2 = m.translated([1.0, -2.0, 0.5]);
        let b2 = BasisSet::build(&m2, BasisName::B631g);
        let s1 = overlap_matrix(&b1);
        let s2 = overlap_matrix(&b2);
        assert!(s1.max_abs_diff(&s2) < 1e-12, "overlap not translation invariant");
        let t1 = kinetic_matrix(&b1);
        let t2 = kinetic_matrix(&b2);
        assert!(t1.max_abs_diff(&t2) < 1e-12);
        let v1 = nuclear_attraction_matrix(&b1, &m);
        let v2 = nuclear_attraction_matrix(&b2, &m2);
        assert!(v1.max_abs_diff(&v2) < 1e-10);
    }

    #[test]
    fn far_apart_shells_have_negligible_overlap() {
        let mol = Molecule::neutral(vec![
            Atom { element: Element::H, pos: [0.0; 3] },
            Atom { element: Element::H, pos: [0.0, 0.0, 50.0] },
        ]);
        let b = BasisSet::build(&mol, BasisName::Sto3g);
        let s = overlap_matrix(&b);
        assert!(s[(0, 1)].abs() < 1e-20);
    }

    #[test]
    fn dipole_of_a_gaussian_is_its_center() {
        // <phi | r - o | phi> = R - o for any normalized gaussian at R.
        let center = [0.5, -0.3, 1.1];
        let origin = [0.1, 0.2, 0.3];
        for l in 0..=2 {
            let b = one_shell_basis(single_prim_shell(l, 0.9, center));
            let dip = dipole_matrices(&b, origin);
            for (d, m) in dip.iter().enumerate() {
                for f in 0..b.n_basis() {
                    assert!(
                        (m[(f, f)] - (center[d] - origin[d])).abs() < 1e-10,
                        "l={l} dir={d} fn={f}: {} vs {}",
                        m[(f, f)],
                        center[d] - origin[d]
                    );
                }
            }
        }
    }

    #[test]
    fn dipole_origin_shift_is_minus_overlap_times_shift() {
        // X(o + s) = X(o) - s_x * S, exactly.
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        let s_mat = overlap_matrix(&b);
        let d0 = dipole_matrices(&b, [0.0; 3]);
        let shift = [0.7, -0.2, 1.3];
        let d1 = dipole_matrices(&b, shift);
        for dir in 0..3 {
            let mut expect = d0[dir].clone();
            expect.axpy(-shift[dir], &s_mat);
            assert!(
                d1[dir].max_abs_diff(&expect) < 1e-11,
                "dir {dir}: origin shift identity broken"
            );
        }
    }

    #[test]
    fn nuclear_attraction_is_negative_definite_diagonal() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let v = nuclear_attraction_matrix(&b, &small::water());
        for i in 0..b.n_basis() {
            assert!(v[(i, i)] < 0.0, "V[{i},{i}] = {} should be negative", v[(i, i)]);
        }
    }
}
