//! Contracted two-electron repulsion integrals (ERIs) over shell quartets.
//!
//! `(ij|kl)` shell quartets are the unit of work every algorithm in the
//! paper distributes (Algorithms 1–3 all call `eri(i,j,k,l, X_ijkl)` on
//! them). The engine evaluates a full quartet — all angular blocks of all
//! four shells, all primitive combinations, all cartesian components — into
//! a caller-provided buffer laid out `[na][nb][nc][nd]`.
//!
//! Scheme: McMurchie–Davidson. Per primitive quartet,
//!
//! ```text
//! (ab|cd) = 2 pi^(5/2) / (p q sqrt(p+q))
//!           * sum_{tuv} E^{ab}_{tuv}
//!             sum_{TUV} (-1)^{T+U+V} E^{cd}_{TUV} R^0_{t+T, u+U, v+V}
//! ```
//!
//! evaluated in two stages: the ket sum is contracted into an intermediate
//! `W[tuv][cd-component]` once, then the bra sum runs per bra component.
//!
//! Performance structure: all blocks of a (possibly composite SP) shell
//! share one primitive exponent set, so the Hermite `E` tables are built
//! *once per primitive pair at the shell's maximum angular momentum* and
//! reused by every angular block, and the `R` table is built once per
//! primitive quartet and reused by every block combination. For the Pople
//! L-shell-heavy carbon baskets this saves severalfold over the naive
//! block-by-block evaluation.
//!
//! Each [`EriEngine`] owns its scratch buffers, mirroring the thread-private
//! work arrays of the paper's OpenMP implementation: Fock-build threads each
//! construct one engine and never share it.

use crate::cart::components;
use crate::kernels::{ClassKernels, EriKernel, KernelRun, GENERIC_SLOT, N_CLASS_SLOTS};
use crate::rints::RTable;
use crate::shell_pairs::ShellPair;
use phi_chem::Shell;

const PI: f64 = std::f64::consts::PI;

/// Reusable ERI evaluator with thread-private scratch space.
///
/// The hot path is [`EriEngine::shell_quartet_pairs`], which consumes two
/// precomputed [`ShellPair`]s and performs no heap allocation per quartet:
/// all intermediates live in engine-owned buffers that grow to a high-water
/// mark on first use. [`EriEngine::shell_quartet`] is a compatibility
/// wrapper that builds the two pairs on the fly.
///
/// Quartets dispatch by angular-momentum class: classes with a specialized
/// kernel (see [`crate::kernels`]) run monomorphized batched code, the rest
/// run the generic recursion in [`GenericKernel`]. The `use_kernels` toggle
/// routes *everything* through the generic path — the reference side of the
/// differential-testing harness and the ablation baseline.
pub struct EriEngine {
    /// Primitive-quartet prefactor cutoff: quartets whose Gaussian-product
    /// prefactors bound the integral below this are skipped. Set to 0.0 for
    /// bitwise-exact reference calculations.
    pub prefactor_cutoff: f64,
    /// Route classes with a specialized kernel through it (default). Clear
    /// to force the generic recursion for every quartet.
    pub use_kernels: bool,
    /// Number of shell quartets evaluated (for workload statistics).
    shell_quartets: u64,
    /// Number of primitive quartets actually computed.
    prim_quartets: u64,
    /// Shell quartets per class slot (specialized classes + generic).
    class_quartets: [u64; N_CLASS_SLOTS],
    /// The kernel set: specialized instances + generic fallback.
    kernels: ClassKernels,
}

impl Default for EriEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl EriEngine {
    pub fn new() -> Self {
        EriEngine {
            prefactor_cutoff: 1e-18,
            use_kernels: true,
            shell_quartets: 0,
            prim_quartets: 0,
            class_quartets: [0; N_CLASS_SLOTS],
            kernels: ClassKernels::new(),
        }
    }

    /// An engine forced onto the generic path for every class — the
    /// reference side of kernel-vs-generic differential tests and ablations.
    pub fn generic_only() -> Self {
        EriEngine { use_kernels: false, ..EriEngine::new() }
    }

    pub fn shell_quartets_computed(&self) -> u64 {
        self.shell_quartets
    }

    pub fn prim_quartets_computed(&self) -> u64 {
        self.prim_quartets
    }

    /// Shell quartets evaluated per class slot; index with
    /// [`crate::kernels::class_index`] / label with
    /// [`crate::kernels::CLASS_LABELS`].
    pub fn class_counts(&self) -> &[u64; N_CLASS_SLOTS] {
        &self.class_quartets
    }

    /// Shell quartets that ran a specialized kernel (all slots but the
    /// generic fallback).
    pub fn spec_quartets_computed(&self) -> u64 {
        self.class_quartets[..GENERIC_SLOT].iter().sum()
    }

    /// Evaluate the full contracted quartet `(ab|cd)` into `out`, which must
    /// have length `na * nb * nc * nd` (shell function counts). `out` is
    /// overwritten.
    ///
    /// Compatibility wrapper: builds both shell pairs on the fly (keeping
    /// every primitive pair) and delegates to
    /// [`EriEngine::shell_quartet_pairs`]. Production Fock builds construct
    /// a persistent `ShellPairs` dataset instead and never pay this per-call
    /// rebuild.
    pub fn shell_quartet(
        &mut self,
        sa: &Shell,
        sb: &Shell,
        sc: &Shell,
        sd: &Shell,
        out: &mut [f64],
    ) {
        let bra = ShellPair::build(0, 0, sa, sb, 0.0);
        let ket = ShellPair::build(0, 0, sc, sd, 0.0);
        self.shell_quartet_pairs(&bra, &ket, out);
    }

    /// Evaluate the full contracted quartet `(ab|cd)` from precomputed pair
    /// data into `out` (length `na * nb * nc * nd`, overwritten). Shell `a`
    /// is `bra.a`, `b` is `bra.b`, `c` is `ket.a`, `d` is `ket.b`.
    ///
    /// Allocation-free: E tables, product centers, prefactors, coefficient
    /// products, block offsets and normalization factors all come from the
    /// pair dataset; scratch lives in the engine.
    pub fn shell_quartet_pairs(&mut self, bra: &ShellPair, ket: &ShellPair, out: &mut [f64]) {
        let (nb, nc, nd) = (bra.b.n_fn, ket.a.n_fn, ket.b.n_fn);
        assert_eq!(out.len(), bra.a.n_fn * nb * nc * nd, "output buffer has wrong length");
        out.iter_mut().for_each(|x| *x = 0.0);
        self.shell_quartets += 1;
        let (slot, run) =
            self.kernels.eval_classed(self.use_kernels, bra, ket, self.prefactor_cutoff, out);
        self.class_quartets[slot] += 1;
        self.prim_quartets += run.prim_quartets;
    }
}

/// The generic McMurchie–Davidson path: one loop nest for every
/// angular-momentum class, with runtime bounds and dense scratch. This is
/// the reference implementation the specialized kernels are differentially
/// tested against, and the fallback for classes beyond
/// [`crate::kernels::SPEC_LMAX`] (f shells and up).
#[derive(Default)]
pub struct GenericKernel {
    /// Stage-1 intermediate `W[tuv_flat * ncd + cd]`, per ket block pair.
    w: Vec<f64>,
    /// Stage-2 per-bra-component accumulator (ncd elements).
    acc: Vec<f64>,
    /// Reusable Hermite Coulomb table (one rebuild per primitive quartet).
    r: RTable,
}

impl EriKernel for GenericKernel {
    fn eval(
        &mut self,
        bra: &ShellPair,
        ket: &ShellPair,
        prefactor_cutoff: f64,
        out: &mut [f64],
    ) -> KernelRun {
        let (nb, nc, nd) = (bra.b.n_fn, ket.a.n_fn, ket.b.n_fn);
        debug_assert_eq!(out.len(), bra.a.n_fn * nb * nc * nd);
        let mut prim_quartets = 0u64;

        let l_bra = bra.l_sum;
        let l_ket = ket.l_sum;
        let bra_dim = l_bra + 1;
        let n_tuv = bra_dim * bra_dim * bra_dim;

        // Primitive screening bound: largest possible coefficient weight.
        let coef_bound = bra.max_coef * ket.max_coef;

        for (ip_ab, bt) in bra.prims.iter().enumerate() {
            for (ip_cd, kt) in ket.prims.iter().enumerate() {
                let p = bt.p;
                let q = kt.p;
                let base = 2.0 * PI.powf(2.5) / (p * q * (p + q).sqrt());
                if (base * bt.k * kt.k * coef_bound).abs() < prefactor_cutoff {
                    continue;
                }
                prim_quartets += 1;
                let alpha = p * q / (p + q);
                // One R table per primitive quartet, reused by every block
                // combination.
                self.r.rebuild(
                    l_bra + l_ket,
                    alpha,
                    bt.center[0] - kt.center[0],
                    bt.center[1] - kt.center[1],
                    bt.center[2] - kt.center[2],
                );
                let r = &self.r;

                for (bci, blk_c) in ket.a.blocks.iter().enumerate() {
                    let comps_c = components(blk_c.l);
                    for (bdi, blk_d) in ket.b.blocks.iter().enumerate() {
                        let comps_d = components(blk_d.l);
                        let ncd = comps_c.len() * comps_d.len();
                        let wcd = ket.coef(ip_cd, bci, bdi);
                        let scale_ket = base * wcd;
                        if scale_ket == 0.0 {
                            continue;
                        }

                        // Stage 1: contract the ket Hermite expansion into
                        // W[tuv][cd], once per ket block pair. Component
                        // normalization of c and d folds in here.
                        let w_len = n_tuv * ncd;
                        if self.w.len() < w_len {
                            self.w.resize(w_len, 0.0);
                        }
                        let w = &mut self.w[..w_len];
                        w.iter_mut().for_each(|x| *x = 0.0);
                        for (icc, &(cx, cy, cz)) in comps_c.iter().enumerate() {
                            let norm_c = ket.a.norms[blk_c.off + icc];
                            for (idd, &(dx, dy, dz)) in comps_d.iter().enumerate() {
                                let scale_cd = scale_ket * norm_c * ket.b.norms[blk_d.off + idd];
                                let cdi = icc * comps_d.len() + idd;
                                for tau in 0..=(cx + dx) {
                                    let etx = kt.ex.get(cx, dx, tau);
                                    if etx == 0.0 {
                                        continue;
                                    }
                                    for nu in 0..=(cy + dy) {
                                        let ety = kt.ey.get(cy, dy, nu);
                                        if ety == 0.0 {
                                            continue;
                                        }
                                        for phi in 0..=(cz + dz) {
                                            let etz = kt.ez.get(cz, dz, phi);
                                            if etz == 0.0 {
                                                continue;
                                            }
                                            let sign =
                                                if (tau + nu + phi) % 2 == 1 { -1.0 } else { 1.0 };
                                            let e_ket = sign * etx * ety * etz * scale_cd;
                                            for t in 0..=l_bra {
                                                for u in 0..=(l_bra - t) {
                                                    for v in 0..=(l_bra - t - u) {
                                                        let widx =
                                                            ((t * bra_dim + u) * bra_dim + v) * ncd
                                                                + cdi;
                                                        w[widx] +=
                                                            e_ket * r.get(t + tau, u + nu, v + phi);
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }

                        // Stage 2: bra expansion, every bra block pair, with
                        // a/b component normalization folded into the
                        // accumulation weight.
                        for (bai, blk_a) in bra.a.blocks.iter().enumerate() {
                            let comps_a = components(blk_a.l);
                            for (bbi, blk_b) in bra.b.blocks.iter().enumerate() {
                                let comps_b = components(blk_b.l);
                                let wab = bra.coef(ip_ab, bai, bbi);
                                if wab == 0.0 {
                                    continue;
                                }
                                for (iaa, &(ax, ay, az)) in comps_a.iter().enumerate() {
                                    let wab_a = wab * bra.a.norms[blk_a.off + iaa];
                                    for (ibb, &(bx, by, bz)) in comps_b.iter().enumerate() {
                                        if self.acc.len() < ncd {
                                            self.acc.resize(ncd, 0.0);
                                        }
                                        let acc = &mut self.acc[..ncd];
                                        acc.iter_mut().for_each(|x| *x = 0.0);
                                        for t in 0..=(ax + bx) {
                                            let etx = bt.ex.get(ax, bx, t);
                                            if etx == 0.0 {
                                                continue;
                                            }
                                            for u in 0..=(ay + by) {
                                                let ety = bt.ey.get(ay, by, u);
                                                if ety == 0.0 {
                                                    continue;
                                                }
                                                for v in 0..=(az + bz) {
                                                    let etz = bt.ez.get(az, bz, v);
                                                    if etz == 0.0 {
                                                        continue;
                                                    }
                                                    let e_bra = etx * ety * etz;
                                                    let row = &self.w[((t * bra_dim + u) * bra_dim
                                                        + v)
                                                        * ncd
                                                        ..((t * bra_dim + u) * bra_dim + v) * ncd
                                                            + ncd];
                                                    for (a, rv) in acc.iter_mut().zip(row) {
                                                        *a += e_bra * rv;
                                                    }
                                                }
                                            }
                                        }
                                        let wab_full = wab_a * bra.b.norms[blk_b.off + ibb];
                                        let obase = ((blk_a.off + iaa) * nb + blk_b.off + ibb) * nc;
                                        for icc in 0..comps_c.len() {
                                            for idd in 0..comps_d.len() {
                                                let cdi = icc * comps_d.len() + idd;
                                                let oidx = (obase + blk_c.off + icc) * nd
                                                    + blk_d.off
                                                    + idd;
                                                out[oidx] += wab_full * acc[cdi];
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        KernelRun { prim_quartets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_chem::basis::{AngBlock, BasisName, BasisSet};
    use phi_chem::geom::small;

    fn prim_shell(l: usize, alpha: f64, center: [f64; 3]) -> Shell {
        let df: f64 = (1..=l).map(|k| 2.0 * k as f64 - 1.0).product();
        let norm = (2.0 * alpha / PI).powf(0.75) * (4.0 * alpha).powf(l as f64 / 2.0) / df.sqrt();
        Shell {
            atom: 0,
            center,
            exps: vec![alpha],
            blocks: vec![AngBlock { l, coefs: vec![norm] }],
            first_bf: 0,
        }
    }

    fn quartet(engine: &mut EriEngine, a: &Shell, b: &Shell, c: &Shell, d: &Shell) -> Vec<f64> {
        let mut out =
            vec![0.0; a.n_functions() * b.n_functions() * c.n_functions() * d.n_functions()];
        engine.shell_quartet(a, b, c, d, &mut out);
        out
    }

    #[test]
    fn ssss_same_center_analytic() {
        // Four normalized unit-exponent s Gaussians at the origin:
        // (ss|ss) = 2 / sqrt(pi).
        let s = prim_shell(0, 1.0, [0.0; 3]);
        let mut e = EriEngine::new();
        e.prefactor_cutoff = 0.0;
        let v = quartet(&mut e, &s, &s, &s, &s);
        let want = 2.0 / PI.sqrt();
        assert!((v[0] - want).abs() < 1e-13, "{} vs {want}", v[0]);
    }

    #[test]
    fn ssss_two_center_erf_formula() {
        // (aa|bb) for normalized s Gaussians: centers A (pair at A) and B
        // (pair at B), exponents 2a and 2b for the pair distributions:
        // (aa|bb) = erf(sqrt(rho) R) / R * prefactors; with a = b = 1:
        // p = q = 2, rho = pq/(p+q) = 1, and normalizations cancel to give
        // (aa|bb) = erf(R) / R.
        let r = 1.75;
        let sa = prim_shell(0, 1.0, [0.0; 3]);
        let sb = prim_shell(0, 1.0, [0.0, 0.0, r]);
        let mut e = EriEngine::new();
        e.prefactor_cutoff = 0.0;
        let v = quartet(&mut e, &sa, &sa, &sb, &sb);
        // erf(1.75) = 0.9866716712191824.
        let want = 0.9866716712191824 / r;
        assert!((v[0] - want).abs() < 1e-12, "{} vs {want}", v[0]);
    }

    #[test]
    fn eight_fold_permutation_symmetry() {
        let a = prim_shell(1, 0.9, [0.1, 0.2, -0.3]);
        let b = prim_shell(0, 1.4, [-0.4, 0.5, 0.0]);
        let c = prim_shell(2, 0.7, [0.3, -0.6, 0.8]);
        let d = prim_shell(0, 1.1, [0.0, 0.9, -0.2]);
        let mut e = EriEngine::new();
        e.prefactor_cutoff = 0.0;
        let (na, nb, nc, nd) = (3, 1, 6, 1);
        let abcd = quartet(&mut e, &a, &b, &c, &d);
        let bacd = quartet(&mut e, &b, &a, &c, &d);
        let abdc = quartet(&mut e, &a, &b, &d, &c);
        let cdab = quartet(&mut e, &c, &d, &a, &b);
        for ia in 0..na {
            for ib in 0..nb {
                for ic in 0..nc {
                    for id in 0..nd {
                        let v = abcd[((ia * nb + ib) * nc + ic) * nd + id];
                        let v_ba = bacd[((ib * na + ia) * nc + ic) * nd + id];
                        let v_dc = abdc[((ia * nb + ib) * nd + id) * nc + ic];
                        let v_cd = cdab[((ic * nd + id) * na + ia) * nb + ib];
                        assert!((v - v_ba).abs() < 1e-13, "bra swap: {v} vs {v_ba}");
                        assert!((v - v_dc).abs() < 1e-13, "ket swap: {v} vs {v_dc}");
                        assert!((v - v_cd).abs() < 1e-13, "bra-ket swap: {v} vs {v_cd}");
                    }
                }
            }
        }
    }

    #[test]
    fn composite_l_shell_equals_split_shells() {
        // An SP shell must give the same integrals as separate S and P
        // shells with the same exponents/coefficients.
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let l_shell = b
            .shells
            .iter()
            .find(|s| s.blocks.len() == 2)
            .expect("water/STO-3G has an SP shell on oxygen");
        let s_only = Shell { blocks: vec![l_shell.blocks[0].clone()], ..l_shell.clone() };
        let p_only = Shell { blocks: vec![l_shell.blocks[1].clone()], ..l_shell.clone() };
        let probe = prim_shell(0, 0.8, [0.5, 0.1, -0.3]);
        let mut e = EriEngine::new();
        e.prefactor_cutoff = 0.0;
        let combined = quartet(&mut e, l_shell, &probe, &probe, &probe);
        let s_part = quartet(&mut e, &s_only, &probe, &probe, &probe);
        let p_part = quartet(&mut e, &p_only, &probe, &probe, &probe);
        assert_eq!(combined.len(), 4);
        assert!((combined[0] - s_part[0]).abs() < 1e-14);
        for k in 0..3 {
            assert!((combined[1 + k] - p_part[k]).abs() < 1e-14);
        }
    }

    #[test]
    fn schwarz_inequality_holds() {
        let shells = [
            prim_shell(0, 1.2, [0.0, 0.0, 0.0]),
            prim_shell(1, 0.8, [1.0, 0.0, 0.5]),
            prim_shell(2, 0.6, [-0.5, 0.8, 0.0]),
            prim_shell(0, 2.0, [0.3, -0.9, 1.2]),
        ];
        let mut e = EriEngine::new();
        e.prefactor_cutoff = 0.0;
        let qbound = |a: &Shell, b: &Shell, e: &mut EriEngine| -> f64 {
            let v = quartet(e, a, b, a, b);
            let (na, nb) = (a.n_functions(), b.n_functions());
            let mut q: f64 = 0.0;
            for ia in 0..na {
                for ib in 0..nb {
                    let diag = v[((ia * nb + ib) * na + ia) * nb + ib];
                    q = q.max(diag.abs());
                }
            }
            q.sqrt()
        };
        for a in &shells {
            for b in &shells {
                for c in &shells {
                    for d in &shells {
                        let v = quartet(&mut e, a, b, c, d);
                        let vmax = v.iter().fold(0.0f64, |m, x| m.max(x.abs()));
                        let bound = qbound(a, b, &mut e) * qbound(c, d, &mut e);
                        assert!(
                            vmax <= bound * (1.0 + 1e-10) + 1e-14,
                            "Schwarz violated: {vmax} > {bound}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn translation_invariance() {
        let a = prim_shell(1, 0.9, [0.1, 0.2, -0.3]);
        let b = prim_shell(2, 1.4, [-0.4, 0.5, 0.0]);
        let shift = [2.0, -1.0, 0.7];
        let shifted = |s: &Shell| Shell {
            center: [s.center[0] + shift[0], s.center[1] + shift[1], s.center[2] + shift[2]],
            ..s.clone()
        };
        let mut e = EriEngine::new();
        e.prefactor_cutoff = 0.0;
        let v1 = quartet(&mut e, &a, &b, &a, &b);
        let v2 = quartet(&mut e, &shifted(&a), &shifted(&b), &shifted(&a), &shifted(&b));
        for (x, y) in v1.iter().zip(&v2) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn prefactor_cutoff_only_drops_negligible_quartets() {
        let a = prim_shell(0, 1.0, [0.0; 3]);
        let b = prim_shell(0, 1.0, [0.0, 0.0, 30.0]);
        let mut exact = EriEngine::new();
        exact.prefactor_cutoff = 0.0;
        let mut screened = EriEngine::new();
        screened.prefactor_cutoff = 1e-18;
        let v_exact = quartet(&mut exact, &a, &b, &a, &b);
        let v_scr = quartet(&mut screened, &a, &b, &a, &b);
        for (x, y) in v_exact.iter().zip(&v_scr) {
            assert!((x - y).abs() < 1e-14);
        }
        assert!(screened.prim_quartets_computed() <= exact.prim_quartets_computed());
    }

    #[test]
    fn f_shells_work_through_the_general_recurrences() {
        // Nothing in the engine is specialized to l <= 2; exercise l = 3
        // (cartesian f, 10 components) through symmetry and positivity.
        let a = prim_shell(3, 0.6, [0.1, 0.0, -0.2]);
        let b = prim_shell(1, 0.9, [0.4, -0.3, 0.5]);
        let mut e = EriEngine::new();
        e.prefactor_cutoff = 0.0;
        let (na, nb) = (10, 3);
        let abab = quartet(&mut e, &a, &b, &a, &b);
        // Diagonal elements positive.
        for ia in 0..na {
            for ib in 0..nb {
                let diag = abab[((ia * nb + ib) * na + ia) * nb + ib];
                assert!(diag > 0.0, "f-shell diagonal ({ia},{ib}) = {diag}");
            }
        }
        // Bra-ket swap symmetry.
        let baba = quartet(&mut e, &b, &a, &b, &a);
        for ia in 0..na {
            for ib in 0..nb {
                let v1 = abab[((ia * nb + ib) * na + ia) * nb + ib];
                let v2 = baba[((ib * na + ia) * nb + ib) * na + ia];
                assert!((v1 - v2).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn specialized_kernels_match_generic_bitwise() {
        // The kernel layer's design contract is exact arithmetic replay, so
        // parity here is bitwise (not just 1e-14): any FP reordering in
        // either path trips this immediately.
        let shells = [
            prim_shell(0, 1.2, [0.0, 0.0, 0.0]),
            prim_shell(1, 0.8, [1.0, 0.0, 0.5]),
            prim_shell(2, 0.6, [-0.5, 0.8, 0.0]),
            prim_shell(2, 1.3, [0.3, -0.9, 1.2]),
        ];
        let mut spec = EriEngine::new();
        let mut generic = EriEngine::generic_only();
        for a in &shells {
            for b in &shells {
                for c in &shells {
                    for d in &shells {
                        let vs = quartet(&mut spec, a, b, c, d);
                        let vg = quartet(&mut generic, a, b, c, d);
                        for (x, y) in vs.iter().zip(&vg) {
                            assert_eq!(
                                x.to_bits(),
                                y.to_bits(),
                                "kernel path diverges from generic: {x:e} vs {y:e}"
                            );
                        }
                    }
                }
            }
        }
        assert!(spec.spec_quartets_computed() > 0);
        assert_eq!(generic.spec_quartets_computed(), 0);
    }

    #[test]
    fn class_counters_track_dispatch() {
        let s = prim_shell(0, 1.0, [0.0; 3]);
        let d = prim_shell(2, 0.7, [0.4, 0.0, -0.2]);
        let f = prim_shell(3, 0.5, [0.1, 0.3, 0.0]);
        let mut e = EriEngine::new();
        let _ = quartet(&mut e, &s, &s, &s, &s); // (0,0)
        let _ = quartet(&mut e, &d, &d, &s, &s); // (4,0)
        let _ = quartet(&mut e, &f, &f, &s, &s); // l_bra = 6 -> generic
        let counts = e.class_counts();
        assert_eq!(counts[crate::kernels::class_index(0, 0)], 1);
        assert_eq!(counts[crate::kernels::class_index(4, 0)], 1);
        assert_eq!(counts[crate::kernels::GENERIC_SLOT], 1);
        assert_eq!(e.spec_quartets_computed(), 2);
        assert_eq!(e.shell_quartets_computed(), 3);
    }

    #[test]
    fn diagonal_quartets_are_positive() {
        // (ab|ab) with matching components is a norm, hence >= 0.
        let a = prim_shell(1, 0.7, [0.2, 0.0, 0.1]);
        let b = prim_shell(2, 1.1, [-0.3, 0.4, 0.0]);
        let mut e = EriEngine::new();
        e.prefactor_cutoff = 0.0;
        let v = quartet(&mut e, &a, &b, &a, &b);
        let (na, nb) = (3, 6);
        for ia in 0..na {
            for ib in 0..nb {
                let diag = v[((ia * nb + ib) * na + ia) * nb + ib];
                assert!(diag > 0.0, "diagonal ({ia},{ib}) = {diag}");
            }
        }
    }
}
