//! The Boys function `F_m(T) = ∫₀¹ t^{2m} e^{-T t²} dt`.
//!
//! Every Coulomb-type Gaussian integral reduces to Boys function values, so
//! this sits on the innermost hot path of the ERI engine. Two regimes:
//!
//! * `T < 35`: evaluate the highest required order by its (all-positive,
//!   cancellation-free) ascending series, then fill lower orders by the
//!   numerically stable *downward* recursion
//!   `F_m = (2T F_{m+1} + e^{-T}) / (2m + 1)`.
//! * `T >= 35`: `erf(sqrt(T)) = 1` to double precision, so
//!   `F_0 = sqrt(pi / T) / 2` exactly, and the *upward* recursion
//!   `F_{m+1} = ((2m+1) F_m - e^{-T}) / (2T)` is stable because `2T`
//!   dominates.

/// Crossover between the series and the asymptotic branch.
const T_ASYMPTOTIC: f64 = 35.0;

/// Fill `out[m] = F_m(T)` for `m = 0..=mmax` (`out.len() == mmax + 1`).
pub fn boys(t: f64, out: &mut [f64]) {
    assert!(!out.is_empty());
    let mmax = out.len() - 1;
    debug_assert!(t >= 0.0, "Boys argument must be non-negative, got {t}");
    if t < 1e-14 {
        for (m, o) in out.iter_mut().enumerate() {
            *o = 1.0 / (2 * m + 1) as f64;
        }
        return;
    }
    if t >= T_ASYMPTOTIC {
        let exp_mt = (-t).exp();
        out[0] = 0.5 * (std::f64::consts::PI / t).sqrt();
        for m in 0..mmax {
            out[m + 1] = ((2 * m + 1) as f64 * out[m] - exp_mt) / (2.0 * t);
        }
        return;
    }
    // Ascending series for the highest order:
    //   F_m(T) = e^{-T} * sum_{i>=0} (2T)^i / ((2m+1)(2m+3)...(2m+2i+1))
    let exp_mt = (-t).exp();
    let two_t = 2.0 * t;
    let mut term = 1.0 / (2 * mmax + 1) as f64;
    let mut sum = term;
    let mut denom = (2 * mmax + 1) as f64;
    for _ in 1..=300 {
        denom += 2.0;
        term *= two_t / denom;
        sum += term;
        if term < sum * 1e-17 {
            break;
        }
    }
    out[mmax] = exp_mt * sum;
    // Downward recursion.
    for m in (0..mmax).rev() {
        out[m] = (two_t * out[m + 1] + exp_mt) / (2 * m + 1) as f64;
    }
}

/// Convenience scalar version.
pub fn boys_single(m: usize, t: f64) -> f64 {
    let mut buf = vec![0.0; m + 1];
    boys(t, &mut buf);
    buf[m]
}

/// Batched multi-`m` evaluation over a lane of arguments, the structure-of-
/// arrays entry point of the class-specialized ERI kernels.
///
/// Fills `out[q * (mmax + 1) + m] = F_m(ts[q])` — one contiguous
/// `F_0..F_mmax` stripe per lane, so the Hermite `R` recursion that follows
/// streams each quartet's Boys values from one cache line instead of
/// recomputing the series inside the quartet loop. Each stripe is produced
/// by the same scalar [`boys`] evaluation (series/asymptotic branches are
/// data-dependent, so the transcendental core stays scalar); the batching
/// is in the memory layout and in hoisting the calls out of the per-quartet
/// recursion. Values are bitwise identical to per-quartet [`boys`] calls.
pub fn boys_batch(mmax: usize, ts: &[f64], out: &mut [f64]) {
    let stride = mmax + 1;
    assert!(out.len() >= ts.len() * stride, "boys_batch output buffer too small");
    for (q, &t) in ts.iter().enumerate() {
        boys(t, &mut out[q * stride..(q + 1) * stride]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adaptive Simpson quadrature of the defining integral — slow but
    /// independent of every code path above.
    fn boys_quadrature(m: usize, t: f64) -> f64 {
        let f = |x: f64| x.powi(2 * m as i32) * (-t * x * x).exp();
        let n = 20_000;
        let h = 1.0 / n as f64;
        let mut s = f(0.0) + f(1.0);
        for k in 1..n {
            let x = k as f64 * h;
            s += f(x) * if k % 2 == 1 { 4.0 } else { 2.0 };
        }
        s * h / 3.0
    }

    #[test]
    fn zero_argument_is_exact() {
        let mut out = [0.0; 6];
        boys(0.0, &mut out);
        for (m, v) in out.iter().enumerate() {
            assert!((v - 1.0 / (2 * m + 1) as f64).abs() < 1e-15);
        }
    }

    #[test]
    fn f0_matches_erf_formula() {
        // F_0(1) = (sqrt(pi)/2) * erf(1): known value of erf(1) = 0.8427007929497149.
        let want = 0.5 * std::f64::consts::PI.sqrt() * 0.8427007929497149;
        assert!((boys_single(0, 1.0) - want).abs() < 1e-14);
    }

    #[test]
    fn matches_quadrature_across_regimes() {
        for &t in &[0.01, 0.5, 2.0, 10.0, 30.0, 34.9, 35.1, 80.0, 200.0] {
            for m in 0..=8 {
                let got = boys_single(m, t);
                let want = boys_quadrature(m, t);
                assert!(
                    (got - want).abs() < 1e-10 * (1.0 + want),
                    "F_{m}({t}): got {got}, quadrature {want}"
                );
            }
        }
    }

    #[test]
    fn continuous_at_the_branch_point() {
        // F_m varies genuinely with T (dF/dT ~ -F), so allow for the change
        // over the 2e-9 argument gap plus a safety margin; what this guards
        // against is an O(1e-10)+ jump between the two evaluation branches.
        for m in 0..=10 {
            let below = boys_single(m, T_ASYMPTOTIC - 1e-9);
            let above = boys_single(m, T_ASYMPTOTIC + 1e-9);
            assert!(
                (below - above).abs() < 1e-10 * (1.0 + below),
                "discontinuity at branch for m={m}: {below} vs {above}"
            );
        }
    }

    #[test]
    fn monotone_decreasing_in_t_and_m() {
        let mut prev = [0.0; 5];
        boys(0.0, &mut prev);
        for k in 1..200 {
            let t = k as f64 * 0.5;
            let mut cur = [0.0; 5];
            boys(t, &mut cur);
            for m in 0..5 {
                assert!(cur[m] <= prev[m] + 1e-15, "F_{m} not decreasing at T={t}");
                assert!(cur[m] > 0.0);
            }
            for m in 1..5 {
                assert!(cur[m] <= cur[m - 1], "F_m must decrease in m");
            }
            prev = cur;
        }
    }

    #[test]
    fn downward_recursion_consistency() {
        // F_{m+1} and F_m must satisfy the recursion identity everywhere.
        for &t in &[0.3, 3.0, 33.0, 60.0] {
            let mut f = [0.0; 7];
            boys(t, &mut f);
            let e = (-t).exp();
            for m in 0..6 {
                let lhs = (2 * m + 1) as f64 * f[m];
                let rhs = 2.0 * t * f[m + 1] + e;
                assert!(
                    (lhs - rhs).abs() < 1e-12 * (1.0 + lhs.abs()),
                    "recursion broken at m={m}, T={t}"
                );
            }
        }
    }
}
