//! Gaussian integral engine (McMurchie–Davidson scheme).
//!
//! GAMESS ships a mature Fortran ERI stack (rotated-axis + Rys quadrature);
//! no equivalent exists in the Rust ecosystem, so this crate implements the
//! full set of integrals the Hartree-Fock method needs from scratch:
//!
//! * [`boys`] — the Boys function `F_m(T)`, the transcendental core of every
//!   Coulomb-type integral;
//! * [`hermite`] — Hermite Gaussian expansion coefficients `E_t^{ij}`;
//! * [`rints`] — Hermite Coulomb integrals `R^0_{tuv}`;
//! * [`one_electron`] — overlap, kinetic and nuclear-attraction matrices;
//! * [`eri`] — contracted two-electron repulsion integrals over shell
//!   quartets, the quantity Algorithms 1–3 of the paper parallelize over;
//! * [`kernels`] — class-specialized, batched ERI kernels (monomorphized
//!   per combined bra/ket angular momentum, structure-of-arrays primitive
//!   batching), differentially tested against the generic recursion;
//! * [`screening`] — Cauchy–Schwarz bounds `Q_ij = sqrt((ij|ij))`, the
//!   screening the paper applies at both the `ij`-task and `ijkl`-quartet
//!   level, plus survivor-count statistics that drive the cluster
//!   simulator;
//! * [`shell_pairs`] — the persistent shell-pair dataset (Hermite `E`
//!   tables, product centers, prefactors, folded normalization, Schwarz
//!   bounds), built once per geometry/basis and shared read-only by every
//!   Fock-build rank and thread.
//!
//! Angular momentum is general in the recurrences and exercised through
//! cartesian *d* functions (everything 6-31G(d) needs); combined SP shells
//! are handled by iterating their angular blocks.

pub mod boys;
pub mod cart;
pub mod eri;
pub mod hermite;
pub mod kernels;
pub mod one_electron;
pub mod rints;
pub mod screening;
pub mod shell_pairs;

pub use eri::{EriEngine, GenericKernel};
pub use kernels::{
    class_index, ClassKernels, EriKernel, KernelRun, CLASS_LABELS, CLASS_TRACE_NAMES, GENERIC_SLOT,
    N_CLASS_SLOTS, N_SPEC, SPEC_LMAX,
};
pub use one_electron::{
    dipole_matrices, kinetic_matrix, nuclear_attraction_matrix, overlap_matrix,
};
pub use screening::{DensityMax, Screening, WorkloadStats};
pub use shell_pairs::{ShellPair, ShellPairs};
