//! Cauchy–Schwarz screening and screened-workload statistics.
//!
//! The paper screens shell quartets with `|(ij|kl)| <= Q_ij * Q_kl`,
//! `Q_ij = sqrt((ij|ij))` (§4.1), and additionally prescreens whole `ij`
//! MPI tasks in the shared-Fock algorithm (Algorithm 3, line 13). This
//! module computes:
//!
//! * [`Screening`] — the per-shell-pair `Q` table used by the real Fock
//!   builders;
//! * [`WorkloadStats`] — for every surviving `ij` task, how many canonical
//!   `kl` quartets survive, broken down by shell-class pair. This is the
//!   exact screened workload of one Fock-build iteration, and it is what the
//!   cluster simulator distributes over ranks and threads. Counting uses a
//!   Fenwick tree over quantized `Q` values, so the full statistics for the
//!   5 nm system (8,064 shells, 32.5M shell pairs) cost O(P log B) instead
//!   of the O(P^2) of brute-force enumeration.

use crate::eri::EriEngine;
use crate::shell_pairs::ShellPairs;
use phi_chem::{BasisSet, Shell};

/// Packed lower-triangular index for `i >= j`.
#[inline]
pub fn pair_index(i: usize, j: usize) -> usize {
    debug_assert!(i >= j);
    i * (i + 1) / 2 + j
}

/// Number of shell pairs for `n` shells.
#[inline]
pub fn n_pairs(n: usize) -> usize {
    n * (n + 1) / 2
}

/// Narrow an f64 upper bound to f32 with *upward* rounding.
///
/// `v as f32` rounds to nearest, which can round a bound *below* its true
/// f64 value — a stored "upper bound" that is not an upper bound, so
/// `survives()` could drop a quartet whose true `Q_ij * Q_kl` is >= tau.
/// Taking the next representable f32 up whenever the cast rounded down
/// keeps the stored value a genuine upper bound at a cost of at most one
/// ulp of slack.
#[inline]
pub(crate) fn round_up_f32(v: f64) -> f32 {
    let w = v as f32;
    if (w as f64) < v {
        w.next_up()
    } else {
        w
    }
}

/// Schwarz bound table `Q_ij` over shell pairs.
///
/// Values are stored as `f32`: screening only ever compares products of
/// bounds against a threshold, so seven significant digits are ample, and
/// the 5 nm system's 32.5M pairs stay at ~130 MB.
pub struct Screening {
    n_shells: usize,
    q: Vec<f32>,
    q_max: f64,
}

impl Screening {
    /// Exact `Q_ij` for every pair, via the diagonal quartets `(ij|ij)`.
    pub fn compute(basis: &BasisSet) -> Screening {
        Screening::compute_hybrid(basis, 0.0)
    }

    /// `Q_ij` table read directly out of a persistent [`ShellPairs`]
    /// dataset, whose construction already evaluated every diagonal quartet
    /// through the pair-cached path. This is the production route: the Fock
    /// builders share the same dataset, so the bounds are computed exactly
    /// once per (geometry, basis).
    pub fn from_pairs(basis: &BasisSet, pairs: &ShellPairs) -> Screening {
        let n = basis.n_shells();
        assert_eq!(n, pairs.n_shells(), "pair dataset covers a different basis");
        let mut q = vec![0.0f32; n_pairs(n)];
        let mut q_max = 0.0f64;
        for pr in pairs.iter() {
            let qv = round_up_f32(pr.schwarz);
            q[pair_index(pr.i, pr.j)] = qv;
            // Maximize over the *stored* (rounded-up) bounds so the
            // task-level prescreen can never drop a task that holds a
            // surviving quartet.
            q_max = q_max.max(qv as f64);
        }
        Screening { n_shells: n, q, q_max }
    }

    /// Hybrid computation for large systems: pairs whose Gaussian-product
    /// prefactor bound falls below `est_floor` get the (tiny) bound itself
    /// instead of an exact ERI evaluation. With `est_floor = 0.0` every pair
    /// is exact.
    ///
    /// The prefactor bound only decides *which* pairs are negligible; any
    /// pair that could matter at realistic screening thresholds
    /// (tau >= 1e-12) is evaluated exactly.
    pub fn compute_hybrid(basis: &BasisSet, est_floor: f64) -> Screening {
        let n = basis.n_shells();
        let mut q = vec![0.0f32; n_pairs(n)];
        let mut engine = EriEngine::new();
        let mut buf: Vec<f64> = Vec::new();
        let mut q_max = 0.0f64;
        for i in 0..n {
            let si = &basis.shells[i];
            for j in 0..=i {
                let sj = &basis.shells[j];
                let est = prefactor_bound(si, sj);
                let val = if est < est_floor {
                    est
                } else {
                    let (ni, nj) = (si.n_functions(), sj.n_functions());
                    buf.clear();
                    buf.resize(ni * nj * ni * nj, 0.0);
                    engine.shell_quartet(si, sj, si, sj, &mut buf);
                    let mut m = 0.0f64;
                    for a in 0..ni {
                        for b in 0..nj {
                            let diag = buf[((a * nj + b) * ni + a) * nj + b];
                            m = m.max(diag.abs());
                        }
                    }
                    m.sqrt()
                };
                let qv = round_up_f32(val);
                q[pair_index(i, j)] = qv;
                q_max = q_max.max(qv as f64);
            }
        }
        Screening { n_shells: n, q, q_max }
    }

    pub fn n_shells(&self) -> usize {
        self.n_shells
    }

    /// `Q_ij` (order of `i`, `j` irrelevant).
    #[inline]
    pub fn q(&self, i: usize, j: usize) -> f64 {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        self.q[pair_index(i, j)] as f64
    }

    /// Largest bound in the table.
    pub fn q_max(&self) -> f64 {
        self.q_max
    }

    /// The quartet-level Schwarz test of Algorithms 1-3.
    #[inline]
    pub fn survives(&self, i: usize, j: usize, k: usize, l: usize, tau: f64) -> bool {
        self.q(i, j) * self.q(k, l) >= tau
    }

    /// The `ij`-task-level prescreen of Algorithm 3 (line 13): can *any*
    /// quartet of this task survive?
    #[inline]
    pub fn task_survives(&self, i: usize, j: usize, tau: f64) -> bool {
        self.q(i, j) * self.q_max >= tau
    }

    /// Density-weighted quartet test: `Q_ij * Q_kl * D_fac >= tau`, where
    /// `D_fac` is the largest per-shell-pair density magnitude over the six
    /// pairs a quartet's Coulomb and exchange updates touch
    /// (`kl`, `ij`, `jl`, `jk`, `il`, `ik` — Algorithm 1's update set).
    /// Since `|G| <= 2 Q_ij Q_kl max|D|` per destination, a quartet failing
    /// this test contributes below tau to every Fock element it updates.
    ///
    /// With `dmax = None` this degrades to the static [`Self::survives`]
    /// test, so unweighted builds stay bit-identical.
    #[inline]
    pub fn survives_weighted(
        &self,
        dmax: Option<&DensityMax>,
        i: usize,
        j: usize,
        k: usize,
        l: usize,
        tau: f64,
    ) -> bool {
        let qq = self.q(i, j) * self.q(k, l);
        match dmax {
            None => qq >= tau,
            Some(d) => qq * d.quartet_factor(i, j, k, l) >= tau,
        }
    }

    /// Density-weighted `ij`-task prescreen: `Q_ij * Q_max * D_max >= tau`
    /// with the *global* density max. For any quartet of the task,
    /// `Q_kl <= Q_max` and every per-pair density factor is `<= D_max`, so
    /// this is a necessary condition of [`Self::survives_weighted`] — the
    /// prescreen never drops a task holding a surviving weighted quartet.
    #[inline]
    pub fn task_survives_weighted(
        &self,
        dmax: Option<&DensityMax>,
        i: usize,
        j: usize,
        tau: f64,
    ) -> bool {
        let qb = self.q(i, j) * self.q_max;
        match dmax {
            None => qb >= tau,
            Some(d) => qb * d.global_max() >= tau,
        }
    }
}

/// Per-shell-pair density-max table `D_ij^max` for density-weighted
/// screening.
///
/// Refreshed once per Fock build from the incoming density (or density
/// *difference* in incremental mode): entry `(i, j)` is the largest
/// absolute density-matrix element over the basis-function block of shell
/// pair `(i, j)`. Like the `Q` table the entries are stored as `f32` with
/// upward rounding, so they remain genuine upper bounds.
pub struct DensityMax {
    n_shells: usize,
    d: Vec<f32>,
    d_max: f64,
}

impl DensityMax {
    /// Build the table for `basis` from `abs_den(p, q)` = the absolute
    /// density value for basis functions `p`, `q` (maximized over spin
    /// channels by the caller when several matrices feed one build).
    pub fn build(basis: &BasisSet, abs_den: impl Fn(usize, usize) -> f64) -> DensityMax {
        let n = basis.n_shells();
        let mut d = vec![0.0f32; n_pairs(n)];
        let mut d_max = 0.0f64;
        for i in 0..n {
            let si = &basis.shells[i];
            for j in 0..=i {
                let sj = &basis.shells[j];
                let mut m = 0.0f64;
                for p in si.first_bf..si.first_bf + si.n_functions() {
                    for q in sj.first_bf..sj.first_bf + sj.n_functions() {
                        m = m.max(abs_den(p, q));
                    }
                }
                let dv = round_up_f32(m);
                d[pair_index(i, j)] = dv;
                d_max = d_max.max(dv as f64);
            }
        }
        DensityMax { n_shells: n, d, d_max }
    }

    pub fn n_shells(&self) -> usize {
        self.n_shells
    }

    /// `D_ij^max` (order of `i`, `j` irrelevant).
    #[inline]
    pub fn pair_max(&self, i: usize, j: usize) -> f64 {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        self.d[pair_index(i, j)] as f64
    }

    /// Largest entry in the table.
    #[inline]
    pub fn global_max(&self) -> f64 {
        self.d_max
    }

    /// Largest density factor over the six shell pairs a quartet `(ij|kl)`
    /// updates: Coulomb destinations `ij`/`kl` read `D_kl`/`D_ij`, exchange
    /// destinations read the four cross pairs.
    #[inline]
    pub fn quartet_factor(&self, i: usize, j: usize, k: usize, l: usize) -> f64 {
        let mut m = self.pair_max(i, j).max(self.pair_max(k, l));
        m = m.max(self.pair_max(i, k)).max(self.pair_max(i, l));
        m = m.max(self.pair_max(j, k)).max(self.pair_max(j, l));
        m
    }
}

/// Cheap upper-bound-flavoured estimate of `Q_ij` from the Gaussian product
/// prefactor: `max_pq |c_p c_q| exp(-mu R^2)`, maximized over block pairs.
/// Decays with the exact Gaussian rate in the pair distance, which is all
/// the hybrid path needs.
fn prefactor_bound(a: &Shell, b: &Shell) -> f64 {
    let dx = a.center[0] - b.center[0];
    let dy = a.center[1] - b.center[1];
    let dz = a.center[2] - b.center[2];
    let r2 = dx * dx + dy * dy + dz * dz;
    let mut best = 0.0f64;
    for ba in &a.blocks {
        for bb in &b.blocks {
            for (&ea, &ca) in a.exps.iter().zip(&ba.coefs) {
                for (&eb, &cb) in b.exps.iter().zip(&bb.coefs) {
                    let mu = ea * eb / (ea + eb);
                    best = best.max((ca * cb).abs() * (-mu * r2).exp());
                }
            }
        }
    }
    best
}

// ------------------------------------------------------------------------
// Shell classes: shells that share (function count, primitive count, max l)
// have identical per-quartet ERI cost, so workload statistics are broken
// down by class.
// ------------------------------------------------------------------------

/// Classification of a basis set's shells into cost-equivalent classes.
#[derive(Clone, Debug)]
pub struct ShellClasses {
    /// Class id of every shell.
    pub class_of: Vec<u16>,
    /// `(n_functions, n_primitives, max_l)` for each class id.
    pub descr: Vec<(usize, usize, usize)>,
}

impl ShellClasses {
    pub fn classify(basis: &BasisSet) -> ShellClasses {
        let mut descr: Vec<(usize, usize, usize)> = Vec::new();
        let class_of = basis
            .shells
            .iter()
            .map(|s| {
                let key = (s.n_functions(), s.exps.len(), s.max_l());
                if let Some(pos) = descr.iter().position(|&d| d == key) {
                    pos as u16
                } else {
                    descr.push(key);
                    (descr.len() - 1) as u16
                }
            })
            .collect();
        ShellClasses { class_of, descr }
    }

    pub fn n_classes(&self) -> usize {
        self.descr.len()
    }

    /// Number of unordered shell-class pairs.
    pub fn n_pair_classes(&self) -> usize {
        let c = self.n_classes();
        c * (c + 1) / 2
    }

    /// Unordered pair-class id of two shells.
    #[inline]
    pub fn pair_class(&self, i: usize, j: usize) -> usize {
        let (a, b) = {
            let (ca, cb) = (self.class_of[i] as usize, self.class_of[j] as usize);
            if ca >= cb {
                (ca, cb)
            } else {
                (cb, ca)
            }
        };
        a * (a + 1) / 2 + b
    }

    /// A representative shell index for each class (first occurrence).
    pub fn representatives(&self) -> Vec<usize> {
        let mut reps = vec![usize::MAX; self.n_classes()];
        for (i, &c) in self.class_of.iter().enumerate() {
            if reps[c as usize] == usize::MAX {
                reps[c as usize] = i;
            }
        }
        reps
    }
}

// ------------------------------------------------------------------------
// Fenwick tree over quantized Q buckets.
// ------------------------------------------------------------------------

/// Q values are quantized onto a log scale covering [1e-30, 1e5] with
/// `N_BUCKETS` levels (~0.0043 decades per bucket, i.e. ~1% resolution —
/// far finer than any workload-modeling need).
const N_BUCKETS: usize = 8192;
const LOG_MIN: f64 = -30.0;
const LOG_MAX: f64 = 5.0;

#[inline]
fn bucket_of(q: f64) -> usize {
    if q <= 0.0 {
        return 0;
    }
    let x = (q.log10() - LOG_MIN) / (LOG_MAX - LOG_MIN);
    ((x * (N_BUCKETS - 1) as f64).round().max(0.0) as usize).min(N_BUCKETS - 1)
}

struct Fenwick {
    tree: Vec<u32>,
    total: u64,
}

impl Fenwick {
    fn new() -> Fenwick {
        Fenwick { tree: vec![0; N_BUCKETS + 1], total: 0 }
    }

    fn insert(&mut self, bucket: usize) {
        let mut i = bucket + 1;
        while i <= N_BUCKETS {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
        self.total += 1;
    }

    /// Count of inserted values in buckets `0..=bucket`.
    fn prefix(&self, bucket: usize) -> u64 {
        let mut i = bucket + 1;
        let mut s = 0u64;
        while i > 0 {
            s += self.tree[i] as u64;
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Count of inserted values with bucket index >= `bucket`.
    fn count_at_least(&self, bucket: usize) -> u64 {
        if bucket == 0 {
            self.total
        } else {
            self.total - self.prefix(bucket - 1)
        }
    }
}

// ------------------------------------------------------------------------
// Workload statistics.
// ------------------------------------------------------------------------

/// One surviving `ij` MPI task of a Fock-build iteration.
#[derive(Clone, Copy, Debug)]
pub struct IjTask {
    pub i: u32,
    pub j: u32,
    /// Schwarz bound of the task's bra pair.
    pub q: f32,
}

/// Exact screened workload of one Fock-build iteration.
///
/// `tasks[t]` is the `t`-th surviving `ij` pair in canonical (triangular)
/// order; `kl_counts[t * n_pair_classes + c]` is the number of canonical
/// `kl <= ij` quartets of kl-pair-class `c` that survive
/// `Q_ij Q_kl >= tau`.
pub struct WorkloadStats {
    pub tau: f64,
    pub n_shells: usize,
    pub classes: ShellClasses,
    pub tasks: Vec<IjTask>,
    pub kl_counts: Vec<u32>,
    /// Total surviving quartets per kl pair class (sums of `kl_counts`).
    pub totals_by_class: Vec<u64>,
    /// Total canonical quartets before screening.
    pub total_quartets: u128,
    /// Shell pairs dropped by the task-level prescreen.
    pub pairs_prescreened: u64,
}

impl WorkloadStats {
    /// Count the screened workload. `screening` must cover the same basis.
    pub fn compute(basis: &BasisSet, screening: &Screening, tau: f64) -> WorkloadStats {
        let n = basis.n_shells();
        assert_eq!(n, screening.n_shells());
        let classes = ShellClasses::classify(basis);
        let npc = classes.n_pair_classes();
        let mut fenwicks: Vec<Fenwick> = (0..npc).map(|_| Fenwick::new()).collect();

        let mut tasks = Vec::new();
        let mut kl_counts: Vec<u32> = Vec::new();
        let mut totals = vec![0u64; npc];
        let mut prescreened = 0u64;

        let q_max = screening.q_max().max(f64::MIN_POSITIVE);
        for i in 0..n {
            for j in 0..=i {
                let qij = screening.q(i, j);
                // Insert this pair as a potential kl partner for itself and
                // all later tasks (canonical kl <= ij is inclusive).
                fenwicks[classes.pair_class(i, j)].insert(bucket_of(qij));
                if qij * q_max < tau {
                    prescreened += 1;
                    continue;
                }
                // Threshold for partners: q_kl >= tau / q_ij.
                let thr_bucket = bucket_of(tau / qij);
                let mut any = 0u64;
                let base = kl_counts.len();
                kl_counts.resize(base + npc, 0);
                for (c, fw) in fenwicks.iter().enumerate() {
                    let cnt = fw.count_at_least(thr_bucket);
                    kl_counts[base + c] = cnt.min(u32::MAX as u64) as u32;
                    totals[c] += cnt;
                    any += cnt;
                }
                if any == 0 {
                    kl_counts.truncate(base);
                    prescreened += 1;
                    continue;
                }
                tasks.push(IjTask { i: i as u32, j: j as u32, q: qij as f32 });
            }
        }
        let p = n_pairs(n) as u128;
        WorkloadStats {
            tau,
            n_shells: n,
            classes,
            tasks,
            kl_counts,
            totals_by_class: totals,
            total_quartets: p * (p + 1) / 2,
            pairs_prescreened: prescreened,
        }
    }

    pub fn n_pair_classes(&self) -> usize {
        self.classes.n_pair_classes()
    }

    /// Surviving quartets of task `t`, per kl pair class.
    pub fn task_counts(&self, t: usize) -> &[u32] {
        let npc = self.n_pair_classes();
        &self.kl_counts[t * npc..(t + 1) * npc]
    }

    /// Total surviving quartets over all tasks.
    pub fn surviving_quartets(&self) -> u128 {
        self.totals_by_class.iter().map(|&x| x as u128).sum()
    }

    /// Fraction of canonical quartets removed by screening.
    pub fn screened_fraction(&self) -> f64 {
        1.0 - self.surviving_quartets() as f64 / self.total_quartets as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;

    fn water_screening() -> (BasisSet, Screening) {
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        let s = Screening::compute(&b);
        (b, s)
    }

    #[test]
    fn q_is_symmetric_and_positive() {
        let (b, s) = water_screening();
        for i in 0..b.n_shells() {
            for j in 0..b.n_shells() {
                assert_eq!(s.q(i, j), s.q(j, i));
                assert!(s.q(i, j) > 0.0);
            }
        }
        assert!(s.q_max() > 0.0);
    }

    #[test]
    fn schwarz_bounds_actual_quartets() {
        let (b, s) = water_screening();
        let mut engine = EriEngine::new();
        engine.prefactor_cutoff = 0.0;
        let n = b.n_shells();
        let mut buf = Vec::new();
        for i in 0..n {
            for j in 0..=i {
                for k in 0..=i {
                    for l in 0..=k {
                        let (si, sj, sk, sl) =
                            (&b.shells[i], &b.shells[j], &b.shells[k], &b.shells[l]);
                        buf.clear();
                        buf.resize(
                            si.n_functions()
                                * sj.n_functions()
                                * sk.n_functions()
                                * sl.n_functions(),
                            0.0,
                        );
                        engine.shell_quartet(si, sj, sk, sl, &mut buf);
                        let vmax = buf.iter().fold(0.0f64, |m, x| m.max(x.abs()));
                        let bound = s.q(i, j) * s.q(k, l);
                        assert!(
                            vmax <= bound * (1.0 + 1e-6) + 1e-12,
                            "({i}{j}|{k}{l}): {vmax} > {bound}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn from_pairs_matches_compute() {
        let (b, s) = water_screening();
        let pairs = crate::ShellPairs::build_with(&b, 0.0);
        let sp = Screening::from_pairs(&b, &pairs);
        assert_eq!(s.n_shells(), sp.n_shells());
        for i in 0..b.n_shells() {
            for j in 0..=i {
                let (qa, qb) = (s.q(i, j), sp.q(i, j));
                assert!((qa - qb).abs() <= 1e-6 * qa.max(1e-30), "({i},{j}): {qa} vs {qb}");
            }
        }
        // Survivor decisions must agree at practical thresholds.
        for tau in [1e-6, 1e-10] {
            for i in 0..b.n_shells() {
                for j in 0..=i {
                    for k in 0..=i {
                        for l in 0..=k {
                            assert_eq!(
                                s.survives(i, j, k, l, tau),
                                sp.survives(i, j, k, l, tau),
                                "({i}{j}|{k}{l}) at tau={tau}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn hybrid_matches_exact_for_relevant_pairs() {
        let b = BasisSet::build(&small::h_chain(8, 4.0), BasisName::Sto3g);
        let exact = Screening::compute(&b);
        let hybrid = Screening::compute_hybrid(&b, 1e-12);
        for i in 0..b.n_shells() {
            for j in 0..=i {
                let (qe, qh) = (exact.q(i, j), hybrid.q(i, j));
                if qe > 1e-8 {
                    assert!((qe - qh).abs() < 1e-6 * qe, "pair ({i},{j}): {qe} vs {qh}");
                } else {
                    assert!(qh < 1e-6, "negligible pair got bound {qh}");
                }
            }
        }
    }

    #[test]
    fn workload_counts_match_bruteforce() {
        let b = BasisSet::build(&small::h_chain(10, 3.0), BasisName::Sto3g);
        let s = Screening::compute(&b);
        for tau in [1e-6, 1e-8, 1e-10] {
            let w = WorkloadStats::compute(&b, &s, tau);
            // Brute force count.
            let n = b.n_shells();
            let mut brute = 0u64;
            for i in 0..n {
                for j in 0..=i {
                    let ij = pair_index(i, j);
                    for k in 0..=i {
                        for l in 0..=(if k == i { j } else { k }) {
                            let kl = pair_index(k, l);
                            assert!(kl <= ij);
                            if s.q(i, j) * s.q(k, l) >= tau {
                                brute += 1;
                            }
                        }
                    }
                }
            }
            let counted = w.surviving_quartets() as u64;
            // Quantization can shift boundary cases; with smooth H-chain Q
            // distributions the disagreement must stay well under 1%.
            let diff = (counted as i64 - brute as i64).unsigned_abs();
            assert!(
                diff as f64 <= 0.01 * brute as f64 + 2.0,
                "tau={tau}: counted {counted}, brute {brute}"
            );
        }
    }

    #[test]
    fn tighter_threshold_means_more_work() {
        let b = BasisSet::build(&small::h_chain(12, 3.5), BasisName::Sto3g);
        let s = Screening::compute(&b);
        let loose = WorkloadStats::compute(&b, &s, 1e-6);
        let tight = WorkloadStats::compute(&b, &s, 1e-12);
        assert!(tight.surviving_quartets() >= loose.surviving_quartets());
        assert!(tight.tasks.len() >= loose.tasks.len());
    }

    #[test]
    fn distant_fragments_screen_out() {
        // Two H2 molecules 60 bohr apart: inter-fragment quartets must die.
        let mut atoms = small::hydrogen_molecule(1.4).atoms().to_vec();
        for a in small::hydrogen_molecule(1.4).translated([0.0, 0.0, 60.0]).atoms() {
            atoms.push(*a);
        }
        let m = phi_chem::Molecule::neutral(atoms);
        let b = BasisSet::build(&m, BasisName::Sto3g);
        let s = Screening::compute(&b);
        let w = WorkloadStats::compute(&b, &s, 1e-10);
        assert!(w.screened_fraction() > 0.3, "screened only {}", w.screened_fraction());
        // Cross-fragment pair bound must be tiny.
        assert!(s.q(0, b.n_shells() - 1) < 1e-12);
    }

    #[test]
    fn classes_of_carbon_631gd() {
        let b = BasisSet::build(&small::c_ring(6, 1.39), BasisName::B631gd);
        let c = ShellClasses::classify(&b);
        // Carbon shells: S(6 prim), L(3 prim), L(1 prim), D(1 prim).
        assert_eq!(c.n_classes(), 4);
        assert_eq!(c.descr[0], (1, 6, 0));
        assert_eq!(c.descr[1], (4, 3, 1));
        assert_eq!(c.descr[2], (4, 1, 1));
        assert_eq!(c.descr[3], (6, 1, 2));
        assert_eq!(c.n_pair_classes(), 10);
    }

    #[test]
    fn fenwick_counts() {
        let mut f = Fenwick::new();
        for b in [0, 5, 5, 100, N_BUCKETS - 1] {
            f.insert(b);
        }
        assert_eq!(f.count_at_least(0), 5);
        assert_eq!(f.count_at_least(1), 4);
        assert_eq!(f.count_at_least(5), 4);
        assert_eq!(f.count_at_least(6), 2);
        assert_eq!(f.count_at_least(N_BUCKETS - 1), 1);
    }

    /// Regression for the f32-narrowing bug: `val as f32` rounds to
    /// nearest, so a stored "upper bound" could round *below* the true f64
    /// bound and `survives()` would drop a quartet whose true
    /// `Q_ij * Q_kl` is >= tau. With upward rounding the stored bound
    /// dominates the f64 value for every pair.
    #[test]
    fn narrowed_bounds_never_round_below_true_bound() {
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        let pairs = crate::ShellPairs::build_with(&b, 0.0);
        let s = Screening::from_pairs(&b, &pairs);
        let mut rounded_up = 0usize;
        for pr in pairs.iter() {
            let stored = s.q(pr.i, pr.j);
            assert!(
                stored >= pr.schwarz,
                "pair ({},{}): stored bound {stored:e} < true bound {:e}",
                pr.i,
                pr.j,
                pr.schwarz
            );
            // Detects the old `as f32` behaviour: round-to-nearest lands
            // below the f64 value for roughly half the pairs.
            if (pr.schwarz as f32 as f64) < pr.schwarz {
                rounded_up += 1;
            }
        }
        assert!(rounded_up > 0, "no pair exercised the upward-rounding path");
        assert!(s.q_max() >= pairs.iter().map(|p| p.schwarz).fold(0.0, f64::max));
    }

    /// A pair product engineered to straddle tau at f32 precision: the
    /// nearest-f32 narrowing of `q` loses just enough that the product
    /// drops below tau, while the upward-rounded bound keeps it >= tau.
    #[test]
    fn round_up_keeps_threshold_straddling_product_alive() {
        // q is exactly representable in f64 but not in f32, and sits just
        // above its f32 neighbor: round-to-nearest goes DOWN.
        let q: f64 = 1.0 + 2f64.powi(-25) + 2f64.powi(-30);
        let down = q as f32; // nearest = 1.0 (rounds down)
        assert!((down as f64) < q, "test premise: cast must round down");
        let up = round_up_f32(q);
        assert!((up as f64) >= q, "round_up_f32 must dominate the input");
        // tau between the two narrowings of q * q.
        let tau = q * q; // true product exactly meets the threshold
        assert!(
            (down as f64) * (down as f64) < tau,
            "nearest-rounded bound wrongly drops the quartet"
        );
        assert!((up as f64) * (up as f64) >= tau);
        // Exact-representable values must pass through unchanged.
        assert_eq!(round_up_f32(0.5), 0.5f32);
        assert_eq!(round_up_f32(0.0), 0.0f32);
    }

    #[test]
    fn density_max_covers_shell_blocks() {
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        // Synthetic |D|: distinct value per (p, q) so block maxima are
        // easy to cross-check.
        let den = |p: usize, q: usize| ((p * 31 + q * 7) % 13) as f64 * 0.1;
        let sym = |p: usize, q: usize| den(p, q).max(den(q, p));
        let dm = DensityMax::build(&b, sym);
        assert_eq!(dm.n_shells(), b.n_shells());
        let mut global = 0.0f64;
        for i in 0..b.n_shells() {
            for j in 0..=i {
                let (si, sj) = (&b.shells[i], &b.shells[j]);
                let mut want = 0.0f64;
                for p in si.first_bf..si.first_bf + si.n_functions() {
                    for q in sj.first_bf..sj.first_bf + sj.n_functions() {
                        want = want.max(sym(p, q));
                    }
                }
                let got = dm.pair_max(i, j);
                assert!(got >= want && got <= want * (1.0 + 1e-6) + 1e-30);
                assert_eq!(dm.pair_max(i, j), dm.pair_max(j, i));
                global = global.max(got);
            }
        }
        assert_eq!(dm.global_max(), global);
    }

    #[test]
    fn weighted_tests_degrade_to_static_without_table() {
        let (b, s) = water_screening();
        let n = b.n_shells();
        for tau in [1e-6, 1e-10] {
            for i in 0..n {
                for j in 0..=i {
                    assert_eq!(
                        s.task_survives(i, j, tau),
                        s.task_survives_weighted(None, i, j, tau)
                    );
                    for k in 0..=i {
                        for l in 0..=k {
                            assert_eq!(
                                s.survives(i, j, k, l, tau),
                                s.survives_weighted(None, i, j, k, l, tau)
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn weighted_task_prescreen_is_necessary_for_weighted_quartets() {
        let (b, s) = water_screening();
        // Small density: most quartets die under the weighted test.
        let dm = DensityMax::build(&b, |p, q| if p == q { 1e-5 } else { 1e-7 });
        let n = b.n_shells();
        let tau = 1e-8;
        let mut weighted_killed = 0u64;
        for i in 0..n {
            for j in 0..=i {
                let task = s.task_survives_weighted(Some(&dm), i, j, tau);
                for k in 0..=i {
                    for l in 0..=(if k == i { j } else { k }) {
                        let q_surv = s.survives_weighted(Some(&dm), i, j, k, l, tau);
                        // Prescreen must never drop a surviving quartet.
                        assert!(!q_surv || task, "task ({i},{j}) dropped live quartet");
                        if s.survives(i, j, k, l, tau) && !q_surv {
                            weighted_killed += 1;
                        }
                    }
                }
            }
        }
        assert!(weighted_killed > 0, "weighted test should prune below the static test");
    }

    #[test]
    fn bucket_monotonicity() {
        let mut prev = 0;
        for k in 0..100 {
            let q = 1e-25 * 10f64.powf(k as f64 * 0.3);
            let b = bucket_of(q);
            assert!(b >= prev);
            prev = b;
        }
        assert_eq!(bucket_of(0.0), 0);
    }
}
