//! Hermite Coulomb integrals `R^n_{tuv}(alpha, X, Y, Z)`.
//!
//! These are the derivatives of the Boys function that couple two Hermite
//! Gaussian charge distributions:
//!
//! ```text
//! R^n_{000} = (-2 alpha)^n F_n(alpha * R^2)
//! R^n_{t+1,u,v} = t R^{n+1}_{t-1,u,v} + X R^{n+1}_{t,u,v}   (same for u, v)
//! ```
//!
//! Only the `n = 0` slice is consumed by callers; the auxiliary orders exist
//! during construction.

use crate::boys::boys;

/// Dense table of `R^0_{tuv}` for `t + u + v <= l_total`.
///
/// The table is reusable: [`RTable::rebuild`] recomputes it in place,
/// recycling the internal buffers, so a caller evaluating many primitive
/// quartets (the ERI engine) performs no heap allocation after the first
/// build at a given order.
#[derive(Clone, Debug, Default)]
pub struct RTable {
    dim: usize,
    data: Vec<f64>,
    /// Rolling buffer for the auxiliary orders during construction.
    aux: Vec<f64>,
    /// Boys function values `F_0..F_{l_total}`.
    fm: Vec<f64>,
}

impl RTable {
    /// An empty table; call [`RTable::rebuild`] before [`RTable::get`].
    pub fn new() -> RTable {
        RTable::default()
    }

    /// Build the table for total Hermite order `l_total`, screening exponent
    /// `alpha` and center displacement `(x, y, z)`.
    pub fn build(l_total: usize, alpha: f64, x: f64, y: f64, z: f64) -> RTable {
        let mut tab = RTable::new();
        tab.rebuild(l_total, alpha, x, y, z);
        tab
    }

    /// Recompute the table in place (see [`RTable::build`] for parameters).
    pub fn rebuild(&mut self, l_total: usize, alpha: f64, x: f64, y: f64, z: f64) {
        let r2 = x * x + y * y + z * z;
        self.fm.clear();
        self.fm.resize(l_total + 1, 0.0);
        boys(alpha * r2, &mut self.fm);
        self.rebuild_with_fm(l_total, alpha, x, y, z);
    }

    /// Recompute the table from already-evaluated Boys values in `self.fm`
    /// (`fm[n] = F_n(alpha * R^2)`, `n <= l_total`). This is the entry point
    /// the batched kernels use after a [`crate::boys::boys_batch`] pass; the
    /// recursion is byte-identical to [`RTable::rebuild`]'s.
    fn rebuild_with_fm(&mut self, l_total: usize, alpha: f64, x: f64, y: f64, z: f64) {
        self.dim = l_total + 1;
        fill_r0_into(l_total, alpha, x, y, z, &self.fm, &mut self.data, &mut self.aux, true);
    }

    /// `R^0_{tuv}`.
    #[inline]
    pub fn get(&self, t: usize, u: usize, v: usize) -> f64 {
        debug_assert!(t < self.dim && u < self.dim && v < self.dim);
        self.data[(t * self.dim + u) * self.dim + v]
    }
}

/// The downward-in-`n` rolling recursion shared by [`RTable`] and the
/// class-specialized kernels. Fills `prev` (growing it to `(l_total+1)^3` if
/// needed) with the `n = 0` slice `R^0_{tuv}` at dense-cube index
/// `(t (l_total+1) + u)(l_total+1) + v`; `cur` is the scratch rolling
/// buffer. `fm` must hold `F_0..F_{l_total}` of `alpha * R^2`.
///
/// Only entries on the simplex `t + u + v <= l_total` are defined. With
/// `zero_fill` set, every pass clears the whole rolling buffer first, so
/// off-simplex entries read as 0.0 (the [`RTable`] contract). With it
/// clear, the recursion writes exactly the entries it later reads — every
/// read at order `n` touches sums `<= l_total - n - 1`, all written at
/// order `n + 1` — so the dense cube holds stale values off the simplex.
/// The kernels use this mode: for the d-heavy classes the per-pass
/// zero-fill of the `(l+1)^3` cube costs more than the recursion itself,
/// and no kernel stage reads past the simplex. On-simplex values are
/// bitwise identical in both modes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_r0_into(
    l_total: usize,
    alpha: f64,
    x: f64,
    y: f64,
    z: f64,
    fm: &[f64],
    prev: &mut Vec<f64>,
    cur: &mut Vec<f64>,
    zero_fill: bool,
) {
    let dim = l_total + 1;
    let vol = dim * dim * dim;
    let idx = |t: usize, u: usize, v: usize| (t * dim + u) * dim + v;
    if prev.len() < vol {
        prev.resize(vol, 0.0);
    }
    if cur.len() < vol {
        cur.resize(vol, 0.0);
    }
    for n in (0..=l_total).rev() {
        if zero_fill {
            cur.iter_mut().for_each(|c| *c = 0.0);
        }
        cur[idx(0, 0, 0)] = (-2.0 * alpha).powi(n as i32) * fm[n];
        let reach = l_total - n;
        // Fill by increasing total order so dependencies are ready.
        for total in 1..=reach {
            for t in 0..=total {
                for u in 0..=(total - t) {
                    let v = total - t - u;
                    let val = if t > 0 {
                        let mut w = x * prev[idx(t - 1, u, v)];
                        if t > 1 {
                            w += (t - 1) as f64 * prev[idx(t - 2, u, v)];
                        }
                        w
                    } else if u > 0 {
                        let mut w = y * prev[idx(t, u - 1, v)];
                        if u > 1 {
                            w += (u - 1) as f64 * prev[idx(t, u - 2, v)];
                        }
                        w
                    } else {
                        let mut w = z * prev[idx(t, u, v - 1)];
                        if v > 1 {
                            w += (v - 1) as f64 * prev[idx(t, u, v - 2)];
                        }
                        w
                    };
                    cur[idx(t, u, v)] = val;
                }
            }
        }
        std::mem::swap(prev, cur);
    }
    // After the final swap the n = 0 slice lives in `prev`.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boys::boys_single;

    #[test]
    fn zeroth_entry_is_f0() {
        let (alpha, x, y, z) = (0.8, 0.4, -0.2, 1.0);
        let tab = RTable::build(4, alpha, x, y, z);
        let r2 = x * x + y * y + z * z;
        assert!((tab.get(0, 0, 0) - boys_single(0, alpha * r2)).abs() < 1e-15);
    }

    #[test]
    fn first_derivatives_match_finite_differences() {
        // R^0_{100} = d/dX R^0_{000}(X, Y, Z) — verify numerically.
        let (alpha, x, y, z) = (0.65, 0.7, -0.3, 0.5);
        let h = 1e-6;
        let f = |xx: f64| RTable::build(0, alpha, xx, y, z).get(0, 0, 0);
        let numeric = (f(x + h) - f(x - h)) / (2.0 * h);
        let tab = RTable::build(1, alpha, x, y, z);
        assert!((tab.get(1, 0, 0) - numeric).abs() < 1e-7, "{} vs {}", tab.get(1, 0, 0), numeric);
    }

    #[test]
    fn second_derivative_in_z() {
        let (alpha, x, y, z) = (1.1, 0.2, 0.4, -0.6);
        let h = 1e-4;
        let f = |zz: f64| RTable::build(0, alpha, x, y, zz).get(0, 0, 0);
        let numeric = (f(z + h) - 2.0 * f(z) + f(z - h)) / (h * h);
        let tab = RTable::build(2, alpha, x, y, z);
        assert!((tab.get(0, 0, 2) - numeric).abs() < 1e-5, "{} vs {}", tab.get(0, 0, 2), numeric);
    }

    #[test]
    fn mixed_derivative_symmetry() {
        // R_{110} must equal d2/dXdY, symmetric in the order of differentiation;
        // check against cross finite differences.
        let (alpha, x, y, z) = (0.9, 0.5, 0.3, 0.0);
        let h = 1e-4;
        let f = |xx: f64, yy: f64| RTable::build(0, alpha, xx, yy, z).get(0, 0, 0);
        let numeric =
            (f(x + h, y + h) - f(x + h, y - h) - f(x - h, y + h) + f(x - h, y - h)) / (4.0 * h * h);
        let tab = RTable::build(2, alpha, x, y, z);
        assert!((tab.get(1, 1, 0) - numeric).abs() < 1e-5);
    }

    #[test]
    fn axis_permutation_symmetry() {
        // Swapping (X, t) with (Y, u) must leave values unchanged.
        let tab_a = RTable::build(3, 0.75, 0.8, -0.1, 0.3);
        let tab_b = RTable::build(3, 0.75, -0.1, 0.8, 0.3);
        for t in 0..=2 {
            for u in 0..=(2 - t) {
                assert!((tab_a.get(t, u, 1) - tab_b.get(u, t, 1)).abs() < 1e-14);
            }
        }
    }
}
