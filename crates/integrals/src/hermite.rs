//! Hermite Gaussian expansion coefficients (McMurchie–Davidson `E_t^{ij}`).
//!
//! For a 1-D product of two primitive cartesian Gaussians with powers `i`
//! (at A, exponent a) and `j` (at B, exponent b),
//!
//! ```text
//! x_A^i x_B^j exp(-a x_A^2) exp(-b x_B^2)
//!     = sum_t E_t^{ij} Lambda_t(x_P; p)
//! ```
//!
//! where `Lambda_t` are Hermite Gaussians at the product center P with
//! exponent `p = a + b`. The `E` coefficients obey two-term transfer
//! recurrences in `i` and `j`; `E_0^{00}` carries the Gaussian-product
//! prefactor `exp(-mu X_AB^2)`, `mu = a b / p`.

/// Table of `E_t^{ij}` for one direction: `0 <= i <= imax`,
/// `0 <= j <= jmax`, `0 <= t <= i + j`.
#[derive(Clone, Debug)]
pub struct ETable {
    imax: usize,
    jmax: usize,
    /// Flat storage `[i][j][t]` with strides `(jmax+1)*(tdim)`, `tdim`.
    data: Vec<f64>,
    tdim: usize,
}

impl ETable {
    /// Build the full table for a primitive pair in one direction.
    ///
    /// * `a`, `b` — exponents; `xa`, `xb` — center coordinates.
    pub fn build(imax: usize, jmax: usize, a: f64, b: f64, xa: f64, xb: f64) -> ETable {
        let p = a + b;
        let mu = a * b / p;
        let xab = xa - xb;
        let xp = (a * xa + b * xb) / p;
        let xpa = xp - xa;
        let xpb = xp - xb;
        let one_over_2p = 0.5 / p;
        let tdim = imax + jmax + 1;
        let mut tab = ETable { imax, jmax, data: vec![0.0; (imax + 1) * (jmax + 1) * tdim], tdim };

        tab.set(0, 0, 0, (-mu * xab * xab).exp());
        // Raise i: E_t^{i+1,0} from E^{i,0}.
        for i in 0..imax {
            for t in 0..=(i + 1) {
                let mut v = xpa * tab.get(i, 0, t);
                if t > 0 {
                    v += one_over_2p * tab.get(i, 0, t - 1);
                }
                v += (t + 1) as f64 * tab.get(i, 0, t + 1);
                tab.set(i + 1, 0, t, v);
            }
        }
        // Raise j: E_t^{i,j+1} from E^{i,j}, for every i.
        for i in 0..=imax {
            for j in 0..jmax {
                for t in 0..=(i + j + 1) {
                    let mut v = xpb * tab.get(i, j, t);
                    if t > 0 {
                        v += one_over_2p * tab.get(i, j, t - 1);
                    }
                    v += (t + 1) as f64 * tab.get(i, j, t + 1);
                    tab.set(i, j + 1, t, v);
                }
            }
        }
        tab
    }

    /// Heap bytes held by the table (for memory accounting of persistent
    /// pair data).
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// `E_t^{ij}`; zero outside `0 <= t <= i + j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, t: usize) -> f64 {
        debug_assert!(i <= self.imax && j <= self.jmax);
        if t > i + j {
            return 0.0;
        }
        self.data[(i * (self.jmax + 1) + j) * self.tdim + t]
    }

    #[inline]
    fn set(&mut self, i: usize, j: usize, t: usize, v: f64) {
        self.data[(i * (self.jmax + 1) + j) * self.tdim + t] = v;
    }
}

/// Append the sparse 3-D Hermite products
/// `E_tau^{ax bx}(x) E_nu^{ay by}(y) E_phi^{az bz}(z)` of one cartesian
/// component pair to `tuv`/`val`, skipping exact zeros.
///
/// The iteration order (`tau` outer, then `nu`, then `phi`, each ascending,
/// with the same per-direction zero tests the generic ERI recursion applies)
/// and the multiplication order `(e_x * e_y) * e_z` are contracts: the
/// class-specialized kernels replay these entries in storage order and rely
/// on them to reproduce the generic path bit for bit. The value carries no
/// sign or normalization — the ket-side parity sign `(-1)^{tau+nu+phi}` and
/// the component norms are exact (sign flip) or folded at evaluation time
/// exactly where the generic path folds them.
#[allow(clippy::too_many_arguments)]
pub fn e3_sparse_into(
    ex: &ETable,
    ey: &ETable,
    ez: &ETable,
    (ax, ay, az): (usize, usize, usize),
    (bx, by, bz): (usize, usize, usize),
    tuv: &mut Vec<[u8; 3]>,
    val: &mut Vec<f64>,
) {
    for tau in 0..=(ax + bx) {
        let etx = ex.get(ax, bx, tau);
        if etx == 0.0 {
            continue;
        }
        for nu in 0..=(ay + by) {
            let ety = ey.get(ay, by, nu);
            if ety == 0.0 {
                continue;
            }
            for phi in 0..=(az + bz) {
                let etz = ez.get(az, bz, phi);
                if etz == 0.0 {
                    continue;
                }
                tuv.push([tau as u8, nu as u8, phi as u8]);
                val.push(etx * ety * etz);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PI: f64 = std::f64::consts::PI;

    #[test]
    fn e000_is_gaussian_product_prefactor() {
        let (a, b, xa, xb) = (0.9, 1.3, 0.2, -0.5);
        let tab = ETable::build(2, 2, a, b, xa, xb);
        let mu = a * b / (a + b);
        let want = (-mu * (xa - xb) * (xa - xb)).exp();
        assert!((tab.get(0, 0, 0) - want).abs() < 1e-15);
    }

    #[test]
    fn overlap_via_e0_matches_analytic_s_s() {
        // <s_a | s_b> (unnormalized) = (pi/p)^(1/2) * E_0^{00} in 1D.
        let (a, b, xa, xb) = (0.7, 0.4, 0.0, 1.1);
        let tab = ETable::build(0, 0, a, b, xa, xb);
        let p = a + b;
        let s = (PI / p).sqrt() * tab.get(0, 0, 0);
        let mu = a * b / p;
        let want = (PI / p).sqrt() * (-mu * (xa - xb) * (xa - xb)).exp();
        assert!((s - want).abs() < 1e-14);
    }

    /// 1-D numerical overlap of x_A^i x_B^j gaussian product, by quadrature.
    fn numeric_overlap_1d(i: usize, j: usize, a: f64, b: f64, xa: f64, xb: f64) -> f64 {
        let n = 400_000;
        let lo = -12.0;
        let hi = 12.0;
        let h = (hi - lo) / n as f64;
        let mut s = 0.0;
        for k in 0..=n {
            let x = lo + k as f64 * h;
            let f = (x - xa).powi(i as i32)
                * (x - xb).powi(j as i32)
                * (-a * (x - xa) * (x - xa)).exp()
                * (-b * (x - xb) * (x - xb)).exp();
            s += f * if k == 0 || k == n { 0.5 } else { 1.0 };
        }
        s * h
    }

    #[test]
    fn e0_reproduces_numeric_overlaps_up_to_d() {
        let (a, b, xa, xb) = (0.8, 0.5, 0.3, -0.4);
        let tab = ETable::build(2, 2, a, b, xa, xb);
        let p = a + b;
        for i in 0..=2 {
            for j in 0..=2 {
                let analytic = (PI / p).sqrt() * tab.get(i, j, 0);
                let numeric = numeric_overlap_1d(i, j, a, b, xa, xb);
                assert!(
                    (analytic - numeric).abs() < 1e-8,
                    "overlap({i},{j}): {analytic} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn out_of_range_t_is_zero() {
        let tab = ETable::build(1, 1, 1.0, 1.0, 0.0, 0.0);
        assert_eq!(tab.get(1, 1, 3), 0.0);
        assert_eq!(tab.get(0, 0, 1), 0.0);
    }

    #[test]
    fn same_center_odd_moments_vanish() {
        // With A = B the product is a single even Gaussian; E_0^{10} = 0
        // because <x> over an even Gaussian vanishes.
        let tab = ETable::build(1, 1, 0.6, 0.9, 0.25, 0.25);
        assert!(tab.get(1, 0, 0).abs() < 1e-16);
        assert!(tab.get(0, 1, 0).abs() < 1e-16);
    }
}
