//! Persistent shell-pair dataset: everything about a shell pair that does
//! not depend on its quartet partner, computed once per (geometry, basis).
//!
//! The ERI engine historically rebuilt the Hermite `E` tables, Gaussian
//! product centers, exponent sums and prefactors of both the bra and the ket
//! pair inside every shell quartet — O(N^4) rebuilds of O(N^2) data. This
//! module hoists that work out of the quartet loop: [`ShellPairs::build`]
//! walks the lower triangle of shell pairs once, prunes primitive pairs
//! whose Gaussian-product prefactor bound can never survive screening, and
//! stores for each pair
//!
//! * the surviving primitive pairs with their `E` tables (built at the
//!   shells' maximum angular momenta, valid for every lower block), product
//!   centers, exponent sums and prefactors `K = exp(-mu |AB|^2)`;
//! * the contraction-coefficient products per (primitive pair, block pair);
//! * per-function cartesian normalization factors, so the engine folds
//!   normalization into the contraction instead of a per-quartet post-pass;
//! * angular-block function offsets (the engine's output indexing);
//! * the pair's Schwarz bound `sqrt(max (ij|ij))`, evaluated through the
//!   pair-cached path itself, so `Screening` construction reuses the
//!   diagonal pairs.
//!
//! One `ShellPairs` is built per SCF run and shared read-only by every rank
//! and thread of every Fock algorithm (the struct is `Sync`); its footprint
//! is reported by [`ShellPairs::bytes`] and belongs to the *per-node* memory
//! budget, not the per-thread one.

use crate::cart::{component_norm, components};
use crate::eri::EriEngine;
use crate::hermite::ETable;
use crate::screening::{n_pairs, pair_index};
use phi_chem::{BasisSet, Shell};

/// Primitive pairs whose prefactor bound `K * max|c_a c_b|` falls below this
/// are dropped at construction. Against the default quartet prefactor cutoff
/// (1e-18) and Schwarz thresholds down to 1e-12 the dropped contributions
/// are far below every accuracy target; set 0.0 (via
/// [`ShellPairs::build_with`]) to keep every primitive pair.
pub const DEFAULT_PAIR_CUTOFF: f64 = 1e-16;

/// One angular block of a shell, as seen by the pair dataset.
#[derive(Clone, Copy, Debug)]
pub struct SideBlock {
    /// Angular momentum of the block.
    pub l: usize,
    /// Function offset of the block within its shell.
    pub off: usize,
    /// Number of cartesian components (`(l+1)(l+2)/2`).
    pub n_comp: usize,
}

/// Per-shell metadata of one side of a pair.
#[derive(Clone, Debug)]
pub struct PairSide {
    /// Shell index within the basis.
    pub shell: usize,
    /// Total functions of the shell.
    pub n_fn: usize,
    /// Maximum angular momentum over the shell's blocks.
    pub max_l: usize,
    pub blocks: Vec<SideBlock>,
    /// Per-function cartesian normalization factors.
    pub norms: Vec<f64>,
    /// Per-function angular-block index (function -> position in `blocks`),
    /// so the class kernels can walk plain function loops and still look up
    /// the block-level contraction coefficient.
    pub fn_block: Vec<u8>,
}

impl PairSide {
    fn new(index: usize, s: &Shell) -> PairSide {
        let mut blocks = Vec::with_capacity(s.blocks.len());
        let mut norms = Vec::with_capacity(s.n_functions());
        let mut fn_block = Vec::with_capacity(s.n_functions());
        let mut off = 0;
        for (bi, b) in s.blocks.iter().enumerate() {
            let comps = components(b.l);
            blocks.push(SideBlock { l: b.l, off, n_comp: comps.len() });
            for &c in comps {
                norms.push(component_norm(c));
                fn_block.push(bi as u8);
            }
            off += comps.len();
        }
        PairSide { shell: index, n_fn: off, max_l: s.max_l(), blocks, norms, fn_block }
    }

    /// Cartesian powers of every function of this side, block-concatenated
    /// in function order (build-time helper for the sparse Hermite tables).
    fn powers(&self) -> Vec<(usize, usize, usize)> {
        self.blocks.iter().flat_map(|b| components(b.l).iter().copied()).collect()
    }

    fn heap_bytes(&self) -> usize {
        self.blocks.len() * std::mem::size_of::<SideBlock>()
            + self.norms.len() * std::mem::size_of::<f64>()
            + self.fn_block.len()
    }
}

/// Structure-of-arrays view of a pair's surviving primitive pairs: the
/// per-quartet prefactor/Boys-argument phase of the class kernels streams
/// these flat lanes (`p`, product center, `K`) instead of hopping across
/// [`PrimPair`] structs, which is what lets rustc vectorize it.
#[derive(Clone, Debug, Default)]
pub struct PrimSoA {
    /// Exponent sums, one per surviving primitive pair.
    pub p: Vec<f64>,
    /// Product-center coordinates, one lane per axis.
    pub cx: Vec<f64>,
    pub cy: Vec<f64>,
    pub cz: Vec<f64>,
    /// Gaussian-product prefactors `K = exp(-mu |AB|^2)`.
    pub k: Vec<f64>,
}

impl PrimSoA {
    fn from_prims(prims: &[PrimPair]) -> PrimSoA {
        PrimSoA {
            p: prims.iter().map(|pp| pp.p).collect(),
            cx: prims.iter().map(|pp| pp.center[0]).collect(),
            cy: prims.iter().map(|pp| pp.center[1]).collect(),
            cz: prims.iter().map(|pp| pp.center[2]).collect(),
            k: prims.iter().map(|pp| pp.k).collect(),
        }
    }

    fn heap_bytes(&self) -> usize {
        (self.p.len() + self.cx.len() + self.cy.len() + self.cz.len() + self.k.len())
            * std::mem::size_of::<f64>()
    }
}

/// Precomputed sparse 3-D Hermite expansion products of one shell pair:
/// for every (surviving primitive pair, function pair) the nonzero
/// `E_tau E_nu E_phi` triples, in the exact iteration order of the generic
/// recursion (see [`crate::hermite::e3_sparse_into`]).
///
/// This hoists the triple-nested `E`-table walk — bounds arithmetic, zero
/// tests, and the three multiplies — from the `O(N^4)` quartet loop into the
/// `O(N^2)` pair build. The class kernels replay the flat entry list per
/// quartet; the generic path keeps walking the dense tables.
#[derive(Clone, Debug, Default)]
pub struct E3Sparse {
    /// Hermite orders `[tau, nu, phi]` per entry.
    tuv: Vec<[u8; 3]>,
    /// `(E_tau * E_nu) * E_phi` per entry (unsigned, unnormalized).
    val: Vec<f64>,
    /// Entry ranges per `(prim, fa, fb)`, flattened
    /// `(ip * n_fn_a + fa) * n_fn_b + fb`; length `nprim*n_fn_a*n_fn_b + 1`.
    offsets: Vec<u32>,
    n_fn_a: usize,
    n_fn_b: usize,
}

impl E3Sparse {
    fn build(prims: &[PrimPair], a: &PairSide, b: &PairSide) -> E3Sparse {
        let (pa, pb) = (a.powers(), b.powers());
        let mut tuv = Vec::new();
        let mut val = Vec::new();
        let mut offsets = Vec::with_capacity(prims.len() * a.n_fn * b.n_fn + 1);
        offsets.push(0);
        for pp in prims {
            for &ca in &pa {
                for &cb in &pb {
                    crate::hermite::e3_sparse_into(
                        &pp.ex, &pp.ey, &pp.ez, ca, cb, &mut tuv, &mut val,
                    );
                    offsets.push(tuv.len() as u32);
                }
            }
        }
        E3Sparse { tuv, val, offsets, n_fn_a: a.n_fn, n_fn_b: b.n_fn }
    }

    /// The entries of `(prim ip, function fa of side a, fb of side b)`, in
    /// generic-recursion iteration order.
    #[inline]
    pub fn entries(&self, ip: usize, fa: usize, fb: usize) -> (&[[u8; 3]], &[f64]) {
        let slot = (ip * self.n_fn_a + fa) * self.n_fn_b + fb;
        let (lo, hi) = (self.offsets[slot] as usize, self.offsets[slot + 1] as usize);
        (&self.tuv[lo..hi], &self.val[lo..hi])
    }

    fn heap_bytes(&self) -> usize {
        self.tuv.len() * 3
            + self.val.len() * std::mem::size_of::<f64>()
            + self.offsets.len() * std::mem::size_of::<u32>()
    }
}

/// Hermite tables and Gaussian-product data for one surviving primitive
/// pair.
#[derive(Clone, Debug)]
pub struct PrimPair {
    pub ex: ETable,
    pub ey: ETable,
    pub ez: ETable,
    /// Sum of the two exponents.
    pub p: f64,
    /// Product center.
    pub center: [f64; 3],
    /// Gaussian-product prefactor `exp(-mu |AB|^2)`.
    pub k: f64,
}

/// All quartet-independent data of one shell pair `(i, j)`, `i >= j`.
#[derive(Clone, Debug)]
pub struct ShellPair {
    pub i: usize,
    pub j: usize,
    pub a: PairSide,
    pub b: PairSide,
    /// Surviving primitive pairs.
    pub prims: Vec<PrimPair>,
    /// Structure-of-arrays view of `prims` for the class kernels.
    pub soa: PrimSoA,
    /// Sparse Hermite triple products per (prim, function pair).
    pub e3: E3Sparse,
    /// Coefficient products, laid out `[prim][block_a][block_b]`
    /// (see [`ShellPair::coef`]).
    coef: Vec<f64>,
    /// Largest `|c_a c_b|` over surviving primitive and block pairs — the
    /// quartet-level prefactor-screening bound.
    pub max_coef: f64,
    /// `Q_ij = sqrt(max (ij|ij))`, set by [`ShellPairs::build_with`]; 0.0
    /// for pairs built standalone.
    pub schwarz: f64,
    /// `max_l(a) + max_l(b)`.
    pub l_sum: usize,
    /// `max |c_a c_b| K` over *all* primitive pairs, kept or pruned — the
    /// Schwarz stand-in for pairs whose every primitive pair was pruned.
    pub prefactor_bound: f64,
}

impl ShellPair {
    /// Build the pair data for shells `sa` (side a, basis index `i`) and
    /// `sb` (side b, basis index `j`). Primitive pairs with
    /// `K * max|c_a c_b| < pair_cutoff` are dropped.
    pub fn build(i: usize, j: usize, sa: &Shell, sb: &Shell, pair_cutoff: f64) -> ShellPair {
        let a = PairSide::new(i, sa);
        let b = PairSide::new(j, sb);
        let (la, lb) = (a.max_l, b.max_l);
        let nblk = a.blocks.len() * b.blocks.len();
        let dx = sa.center[0] - sb.center[0];
        let dy = sa.center[1] - sb.center[1];
        let dz = sa.center[2] - sb.center[2];
        let r2 = dx * dx + dy * dy + dz * dz;

        let mut prims = Vec::with_capacity(sa.exps.len() * sb.exps.len());
        let mut coef = Vec::with_capacity(prims.capacity() * nblk);
        let mut max_coef = 0.0f64;
        let mut prefactor_bound = 0.0f64;
        for (pa, &aexp) in sa.exps.iter().enumerate() {
            for (pb, &bexp) in sb.exps.iter().enumerate() {
                let p = aexp + bexp;
                let k = (-aexp * bexp / p * r2).exp();
                let mut mc = 0.0f64;
                for ba in &sa.blocks {
                    for bb in &sb.blocks {
                        mc = mc.max((ba.coefs[pa] * bb.coefs[pb]).abs());
                    }
                }
                prefactor_bound = prefactor_bound.max(k * mc);
                if k * mc < pair_cutoff {
                    continue;
                }
                max_coef = max_coef.max(mc);
                for ba in &sa.blocks {
                    for bb in &sb.blocks {
                        coef.push(ba.coefs[pa] * bb.coefs[pb]);
                    }
                }
                prims.push(PrimPair {
                    ex: ETable::build(la, lb, aexp, bexp, sa.center[0], sb.center[0]),
                    ey: ETable::build(la, lb, aexp, bexp, sa.center[1], sb.center[1]),
                    ez: ETable::build(la, lb, aexp, bexp, sa.center[2], sb.center[2]),
                    p,
                    center: [
                        (aexp * sa.center[0] + bexp * sb.center[0]) / p,
                        (aexp * sa.center[1] + bexp * sb.center[1]) / p,
                        (aexp * sa.center[2] + bexp * sb.center[2]) / p,
                    ],
                    k,
                });
            }
        }
        let soa = PrimSoA::from_prims(&prims);
        let e3 = E3Sparse::build(&prims, &a, &b);
        ShellPair {
            i,
            j,
            a,
            b,
            prims,
            soa,
            e3,
            coef,
            max_coef,
            schwarz: 0.0,
            l_sum: la + lb,
            prefactor_bound,
        }
    }

    /// Coefficient product `c_a[block ba][prim pa] * c_b[block bb][prim pb]`
    /// for surviving primitive pair `ip`.
    #[inline]
    pub fn coef(&self, ip: usize, ba: usize, bb: usize) -> f64 {
        self.coef[(ip * self.a.blocks.len() + ba) * self.b.blocks.len() + bb]
    }

    /// Number of function pairs `n_fn(a) * n_fn(b)` — a quartet buffer over
    /// two pairs holds `bra.n_fn() * ket.n_fn()` values.
    #[inline]
    pub fn n_fn(&self) -> usize {
        self.a.n_fn * self.b.n_fn
    }

    /// Heap bytes held by this pair's dataset.
    pub fn heap_bytes(&self) -> usize {
        let etables: usize = self
            .prims
            .iter()
            .map(|pp| pp.ex.heap_bytes() + pp.ey.heap_bytes() + pp.ez.heap_bytes())
            .sum();
        etables
            + self.prims.len() * std::mem::size_of::<PrimPair>()
            + self.soa.heap_bytes()
            + self.e3.heap_bytes()
            + self.coef.len() * std::mem::size_of::<f64>()
            + self.a.heap_bytes()
            + self.b.heap_bytes()
    }
}

/// The persistent dataset: one [`ShellPair`] per lower-triangular shell pair
/// of a basis, plus its total memory footprint.
pub struct ShellPairs {
    n_shells: usize,
    pairs: Vec<ShellPair>,
    bytes: usize,
}

impl ShellPairs {
    /// Build the full dataset with the default primitive-pair cutoff.
    pub fn build(basis: &BasisSet) -> ShellPairs {
        ShellPairs::build_with(basis, DEFAULT_PAIR_CUTOFF)
    }

    /// Build the full dataset; `pair_cutoff = 0.0` keeps every primitive
    /// pair (bitwise-reference mode).
    pub fn build_with(basis: &BasisSet, pair_cutoff: f64) -> ShellPairs {
        let n = basis.n_shells();
        let mut pairs = Vec::with_capacity(n_pairs(n));
        for i in 0..n {
            for j in 0..=i {
                pairs.push(ShellPair::build(i, j, &basis.shells[i], &basis.shells[j], pair_cutoff));
            }
        }
        // Schwarz bounds via the diagonal quartets (ij|ij), evaluated through
        // the pair-cached path itself. Pairs whose primitive pairs were all
        // pruned keep their (tiny) prefactor bound as a stand-in, mirroring
        // `Screening::compute_hybrid`.
        let mut engine = EriEngine::new();
        let mut buf: Vec<f64> = Vec::new();
        for pr in &mut pairs {
            pr.schwarz = if pr.prims.is_empty() {
                pr.prefactor_bound
            } else {
                let (ni, nj) = (pr.a.n_fn, pr.b.n_fn);
                buf.clear();
                buf.resize(ni * nj * ni * nj, 0.0);
                engine.shell_quartet_pairs(pr, pr, &mut buf);
                let mut m = 0.0f64;
                for fa in 0..ni {
                    for fb in 0..nj {
                        let diag = buf[((fa * nj + fb) * ni + fa) * nj + fb];
                        m = m.max(diag.abs());
                    }
                }
                m.sqrt()
            };
        }
        let bytes = pairs.iter().map(|p| p.heap_bytes() + std::mem::size_of::<ShellPair>()).sum();
        ShellPairs { n_shells: n, pairs, bytes }
    }

    pub fn n_shells(&self) -> usize {
        self.n_shells
    }

    /// The pair `(i, j)`; requires `i >= j` (the stored orientation).
    #[inline]
    pub fn pair(&self, i: usize, j: usize) -> &ShellPair {
        assert!(i >= j, "shell pairs are stored lower-triangular (i >= j), got ({i}, {j})");
        &self.pairs[pair_index(i, j)]
    }

    /// All pairs in canonical triangular order.
    pub fn iter(&self) -> impl Iterator<Item = &ShellPair> {
        self.pairs.iter()
    }

    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Total heap footprint of the dataset. The dataset is built once per
    /// SCF run and shared read-only across threads and (in-process) ranks,
    /// so this charges the per-node memory budget once per rank at most.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Total surviving primitive pairs (pruning diagnostics).
    pub fn n_prim_pairs(&self) -> usize {
        self.pairs.iter().map(|p| p.prims.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_chem::basis::{BasisName, BasisSet};
    use phi_chem::geom::small;

    fn c_ring_basis() -> BasisSet {
        BasisSet::build(&small::c_ring(6, 1.39), BasisName::B631gd)
    }

    #[test]
    fn dataset_is_sync_and_shared() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<ShellPairs>();
    }

    #[test]
    fn pair_metadata_matches_shells() {
        let basis = c_ring_basis();
        let pairs = ShellPairs::build(&basis);
        assert_eq!(pairs.len(), n_pairs(basis.n_shells()));
        for i in 0..basis.n_shells() {
            for j in 0..=i {
                let pr = pairs.pair(i, j);
                assert_eq!(pr.i, i);
                assert_eq!(pr.j, j);
                assert_eq!(pr.a.n_fn, basis.shells[i].n_functions());
                assert_eq!(pr.b.n_fn, basis.shells[j].n_functions());
                assert_eq!(pr.l_sum, basis.shells[i].max_l() + basis.shells[j].max_l());
            }
        }
    }

    #[test]
    fn norms_fold_component_normalization() {
        let basis = c_ring_basis();
        let pairs = ShellPairs::build(&basis);
        // The d shell (index 3 on the first atom) has 6 cartesian components
        // with two distinct norm values (xx-type vs xy-type).
        let pr = pairs.pair(3, 3);
        assert_eq!(pr.a.norms.len(), 6);
        let distinct: Vec<f64> = {
            let mut v = pr.a.norms.clone();
            v.sort_by(|x, y| x.partial_cmp(y).unwrap());
            v.dedup_by(|x, y| (*x - *y).abs() < 1e-12);
            v
        };
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn pruning_drops_primitive_pairs_for_distant_shells() {
        // Two far-apart hydrogen atoms: the cross pair's K prefactors are
        // astronomically small, so every primitive pair must be pruned while
        // the diagonal pairs keep all of theirs.
        let mol = small::h_chain(2, 40.0);
        let basis = BasisSet::build(&mol, BasisName::Sto3g);
        let pairs = ShellPairs::build(&basis);
        assert!(!pairs.pair(0, 0).prims.is_empty());
        assert!(!pairs.pair(1, 1).prims.is_empty());
        assert!(pairs.pair(1, 0).prims.is_empty());
        // The empty pair still carries a conservative Schwarz stand-in.
        assert!(pairs.pair(1, 0).schwarz >= 0.0);
        assert!(pairs.pair(1, 0).schwarz < 1e-16);
    }

    #[test]
    fn cutoff_zero_keeps_every_primitive_pair() {
        let basis = c_ring_basis();
        let all = ShellPairs::build_with(&basis, 0.0);
        for i in 0..basis.n_shells() {
            for j in 0..=i {
                let want = basis.shells[i].exps.len() * basis.shells[j].exps.len();
                assert_eq!(all.pair(i, j).prims.len(), want);
            }
        }
    }

    #[test]
    fn max_coef_equals_product_of_shell_maxima() {
        // With no pruning, max_coef must equal the product of each shell's
        // largest |coefficient| — the bound the engine's prefactor screen
        // historically used.
        let basis = c_ring_basis();
        let pairs = ShellPairs::build_with(&basis, 0.0);
        let shell_max = |s: &phi_chem::Shell| -> f64 {
            s.blocks.iter().flat_map(|b| b.coefs.iter()).fold(0.0f64, |m, c| m.max(c.abs()))
        };
        for i in 0..basis.n_shells() {
            for j in 0..=i {
                let want = shell_max(&basis.shells[i]) * shell_max(&basis.shells[j]);
                let got = pairs.pair(i, j).max_coef;
                assert!((got - want).abs() < 1e-15 * want.max(1.0), "({i},{j}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn bytes_accounting_is_plausible() {
        let basis = c_ring_basis();
        let pairs = ShellPairs::build(&basis);
        // Must at least cover the E tables of the surviving primitive pairs
        // and stay within an order of magnitude of a direct estimate.
        let etable_bytes: usize = pairs
            .iter()
            .flat_map(|p| p.prims.iter())
            .map(|pp| pp.ex.heap_bytes() + pp.ey.heap_bytes() + pp.ez.heap_bytes())
            .sum();
        assert!(pairs.bytes() > etable_bytes);
        assert!(pairs.bytes() < 20 * etable_bytes);
    }

    #[test]
    fn schwarz_bounds_match_screening_compute() {
        let basis = BasisSet::build(&small::water(), BasisName::B631g);
        let pairs = ShellPairs::build_with(&basis, 0.0);
        let s = crate::Screening::compute(&basis);
        for i in 0..basis.n_shells() {
            for j in 0..=i {
                let q_pair = pairs.pair(i, j).schwarz;
                let q_ref = s.q(i, j);
                assert!(
                    (q_pair - q_ref).abs() <= 1e-6 * q_ref.max(1e-30) + 1e-12,
                    "({i},{j}): {q_pair} vs {q_ref}"
                );
            }
        }
    }
}
