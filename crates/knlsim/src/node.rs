//! KNL node parameters, cluster modes and memory modes (paper §5.1).

/// Second-generation Xeon Phi node (models 7210/7230 as benchmarked).
#[derive(Clone, Copy, Debug)]
pub struct KnlNode {
    pub cores: usize,
    pub smt: usize,
    pub freq_ghz: f64,
    pub mcdram_gb: f64,
    pub mcdram_bw_gbs: f64,
    pub ddr_gb: f64,
    pub ddr_bw_gbs: f64,
}

impl Default for KnlNode {
    fn default() -> Self {
        KnlNode {
            cores: 64,
            smt: 4,
            freq_ghz: 1.3,
            mcdram_gb: 16.0,
            mcdram_bw_gbs: 400.0,
            ddr_gb: 192.0,
            ddr_bw_gbs: 100.0,
        }
    }
}

impl KnlNode {
    pub fn total_memory_gb(&self) -> f64 {
        self.mcdram_gb + self.ddr_gb
    }

    pub fn hw_threads(&self) -> usize {
        self.cores * self.smt
    }

    /// Relative per-core throughput with `load` hardware threads resident
    /// (paper §6.1: two threads per core give the highest benefit, three
    /// and four some gain "at a diminished level"). Fractional loads are
    /// interpolated.
    pub fn core_throughput(&self, load: f64) -> f64 {
        // Control points at 1..4 threads/core.
        const TP: [f64; 4] = [1.0, 1.5, 1.62, 1.70];
        if load <= 1.0 {
            return TP[0] * load.max(0.0);
        }
        if load >= 4.0 {
            return TP[3];
        }
        let lo = load.floor() as usize; // 1..3
        let frac = load - lo as f64;
        TP[lo - 1] * (1.0 - frac) + TP[lo] * frac
    }
}

/// Cache-coherence cluster mode of the tag-directory mesh (paper §5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClusterMode {
    AllToAll,
    Quadrant,
    Hemisphere,
    Snc4,
    Snc2,
}

impl ClusterMode {
    pub const ALL: [ClusterMode; 5] = [
        ClusterMode::Quadrant,
        ClusterMode::Hemisphere,
        ClusterMode::Snc4,
        ClusterMode::Snc2,
        ClusterMode::AllToAll,
    ];

    pub fn label(self) -> &'static str {
        match self {
            ClusterMode::AllToAll => "all-to-all",
            ClusterMode::Quadrant => "quadrant",
            ClusterMode::Hemisphere => "hemisphere",
            ClusterMode::Snc4 => "SNC-4",
            ClusterMode::Snc2 => "SNC-2",
        }
    }

    /// Multiplier on memory/coherence-sensitive time. `shared_intensity`
    /// in [0, 1] expresses how much of the algorithm's traffic goes through
    /// shared, coherence-visible structures (0 = fully replicated MPI-only
    /// data, 1 = shared Fock). All-to-all loses tag-directory locality and
    /// punishes shared traffic hardest — this is what lets the MPI-only
    /// code beat the shared-Fock code in all-to-all mode on small systems
    /// (paper Fig. 5).
    pub fn coherence_factor(self, shared_intensity: f64) -> f64 {
        let (base, shared) = match self {
            ClusterMode::Quadrant => (1.0, 0.02),
            ClusterMode::Hemisphere => (1.01, 0.03),
            ClusterMode::Snc4 => (1.005, 0.035),
            ClusterMode::Snc2 => (1.01, 0.04),
            ClusterMode::AllToAll => (1.06, 0.85),
        };
        base + shared * shared_intensity
    }
}

/// MCDRAM configuration (paper §5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemoryMode {
    /// MCDRAM as a direct-mapped cache in front of DDR4 (the paper's
    /// choice, "quad-cache").
    Cache,
    /// Flat: allocations pinned in MCDRAM (infeasible above 16 GB).
    FlatMcdram,
    /// Flat: allocations in DDR4 only.
    FlatDdr,
    /// Half MCDRAM as cache, half flat.
    Hybrid,
}

impl MemoryMode {
    pub const ALL: [MemoryMode; 4] =
        [MemoryMode::Cache, MemoryMode::FlatMcdram, MemoryMode::FlatDdr, MemoryMode::Hybrid];

    pub fn label(self) -> &'static str {
        match self {
            MemoryMode::Cache => "cache",
            MemoryMode::FlatMcdram => "flat-MCDRAM",
            MemoryMode::FlatDdr => "flat-DDR",
            MemoryMode::Hybrid => "hybrid",
        }
    }

    /// Effective bandwidth for a working set of `ws_gb`, and feasibility.
    pub fn effective_bandwidth(self, node: &KnlNode, ws_gb: f64) -> Option<f64> {
        match self {
            MemoryMode::Cache => {
                // Fraction of the working set resident in the MCDRAM cache.
                let hit = (node.mcdram_gb / ws_gb).min(1.0);
                Some(hit * node.mcdram_bw_gbs + (1.0 - hit) * node.ddr_bw_gbs)
            }
            MemoryMode::FlatMcdram => {
                if ws_gb <= node.mcdram_gb {
                    Some(node.mcdram_bw_gbs)
                } else {
                    None
                }
            }
            MemoryMode::FlatDdr => {
                if ws_gb <= node.ddr_gb {
                    Some(node.ddr_bw_gbs)
                } else {
                    None
                }
            }
            MemoryMode::Hybrid => {
                let cache_gb = node.mcdram_gb / 2.0;
                let hit = (cache_gb / ws_gb).min(1.0);
                Some(hit * node.mcdram_bw_gbs + (1.0 - hit) * node.ddr_bw_gbs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_throughput_matches_the_papers_smt_story() {
        let node = KnlNode::default();
        let t1 = node.core_throughput(1.0);
        let t2 = node.core_throughput(2.0);
        let t3 = node.core_throughput(3.0);
        let t4 = node.core_throughput(4.0);
        // Biggest jump 1 -> 2; diminishing gains to 3 and 4.
        assert!(t2 > t1);
        assert!(t2 - t1 > t3 - t2);
        assert!(t3 - t2 >= t4 - t3);
        assert!(t4 < 2.0 * t1, "SMT never doubles throughput");
        // Interpolation is monotone.
        assert!(node.core_throughput(1.5) > t1);
        assert!(node.core_throughput(1.5) < t2);
    }

    #[test]
    fn quadrant_is_the_best_cluster_mode() {
        for intensity in [0.0, 0.5, 1.0] {
            for mode in ClusterMode::ALL {
                assert!(
                    mode.coherence_factor(intensity)
                        >= ClusterMode::Quadrant.coherence_factor(intensity) - 1e-12
                );
            }
        }
    }

    #[test]
    fn all_to_all_punishes_shared_structures_hardest() {
        let a2a = ClusterMode::AllToAll;
        let quad = ClusterMode::Quadrant;
        let penalty_shared = a2a.coherence_factor(1.0) / quad.coherence_factor(1.0);
        let penalty_private = a2a.coherence_factor(0.0) / quad.coherence_factor(0.0);
        assert!(penalty_shared > penalty_private);
        assert!(penalty_shared > 1.5);
    }

    #[test]
    fn cache_mode_degrades_with_working_set() {
        let node = KnlNode::default();
        let small = MemoryMode::Cache.effective_bandwidth(&node, 8.0).unwrap();
        let large = MemoryMode::Cache.effective_bandwidth(&node, 64.0).unwrap();
        assert_eq!(small, node.mcdram_bw_gbs);
        assert!(large < small);
        assert!(large > node.ddr_bw_gbs);
    }

    #[test]
    fn flat_mcdram_is_infeasible_beyond_16gb() {
        let node = KnlNode::default();
        assert!(MemoryMode::FlatMcdram.effective_bandwidth(&node, 15.0).is_some());
        assert!(MemoryMode::FlatMcdram.effective_bandwidth(&node, 17.0).is_none());
    }
}
