//! Xeon Phi (Knights Landing) node and cluster performance model.
//!
//! The paper's evaluation runs on hardware this reproduction does not have:
//! up to 3,000 KNL nodes of the Theta Cray XC40. Per the substitution plan
//! in DESIGN.md, this crate replaces the machine with a calibrated model
//! driven by *real measured quantities*:
//!
//! * the exact Schwarz-screened workload of each dataset (shell-pair tasks
//!   and surviving quartet counts per cost class) from
//!   `phi-integrals::screening`;
//! * per-quartet ERI+digestion costs measured by running the actual Rust
//!   engine on representative shell quartets ([`calibrate`]);
//! * the per-node memory footprint from the `hf` memory model, which
//!   decides rank-count feasibility and MCDRAM-vs-DDR bandwidth.
//!
//! On top sit the machine parameters ([`node`]): 64 cores x 4 SMT, MCDRAM
//! 16 GB @ 400 GB/s vs DDR4 192 GB @ 100 GB/s, cluster modes and memory
//! modes; a dragonfly-flavoured network model ([`network`]); and a
//! discrete-event simulation of the DLB task distribution ([`des`]) whose
//! load-balance behaviour — not a formula — produces the paper's scaling
//! curves. [`scenarios`] packages one entry point per paper figure/table.

pub mod calibrate;
pub mod cost;
pub mod des;
pub mod network;
pub mod node;
pub mod report;
pub mod scenarios;
pub mod workload;

pub use cost::{CostModel, EriCostTable};
pub use des::{simulate, SimAlgorithm, SimConfig, SimResult};
pub use node::{ClusterMode, KnlNode, MemoryMode};
pub use workload::Workload;
