//! One entry point per paper figure/table (the per-experiment index of
//! DESIGN.md §4). Each function returns a [`Table`] whose rows are the
//! series the paper plots.

use crate::calibrate::calibrate_eri_costs;
use crate::cost::{CostModel, EriCostTable};
use crate::des::{parallel_efficiency, simulate, SimAlgorithm, SimConfig};
use crate::node::{ClusterMode, MemoryMode};
use crate::report::{fmt_gb, fmt_secs, Table};
use crate::workload::Workload;
use phi_chem::basis::{BasisName, BasisSet};
use phi_chem::geom::graphene::PaperSystem;
use phi_chem::Molecule;
use phi_integrals::screening::{ShellClasses, WorkloadStats};
use phi_integrals::Screening;
use phi_omp::Affinity;

/// Everything the scenarios need about one benchmark system.
pub struct Ctx {
    pub label: String,
    pub basis: BasisSet,
    pub workload: Workload,
    pub cost: CostModel,
}

impl Ctx {
    /// Build a context for an arbitrary molecule (tests, custom runs).
    pub fn from_molecule(
        label: &str,
        mol: &Molecule,
        basis_name: BasisName,
        tau: f64,
        est_floor: f64,
        calibrated: bool,
    ) -> Ctx {
        let basis = BasisSet::build(mol, basis_name);
        let screening = Screening::compute_hybrid(&basis, est_floor);
        let stats = WorkloadStats::compute(&basis, &screening, tau);
        let classes = ShellClasses::classify(&basis);
        let eri = if calibrated {
            let pairs = phi_integrals::ShellPairs::build(&basis);
            calibrate_eri_costs(&basis, &pairs, &classes)
        } else {
            EriCostTable::analytic(&classes)
        };
        let workload = Workload::build(&basis, &stats, &eri);
        let cost = CostModel::new(workload_cost_table(&workload, &eri));
        Ctx { label: label.to_string(), basis, workload, cost }
    }

    /// Build the context for one of the paper's graphene datasets.
    /// `calibrated` uses wall-clock ERI costs from the real engine.
    pub fn paper(system: PaperSystem, calibrated: bool) -> Ctx {
        let mol = system.molecule();
        // Exact Schwarz bounds for the small systems; the prefactor-floored
        // hybrid for the big ones (identical for every relevant pair).
        let est_floor = if system.n_atoms() > 500 { 1e-13 } else { 0.0 };
        Ctx::from_molecule(system.label(), &mol, BasisName::B631gd, 1e-10, est_floor, calibrated)
    }

    /// Anchor the model's absolute scale: make the shared-Fock hybrid at
    /// `nodes` nodes take `seconds` (one published number; every other
    /// point is then a prediction). Returns the scale applied.
    pub fn anchor(&mut self, nodes: usize, seconds: f64) -> f64 {
        self.cost.time_scale = 1.0;
        let sim = simulate(
            &self.workload,
            &self.cost,
            &SimConfig::hybrid(SimAlgorithm::SharedFock, nodes),
        );
        let scale = seconds / sim.total_seconds;
        self.cost.time_scale = scale;
        scale
    }
}

fn workload_cost_table(_w: &Workload, eri: &EriCostTable) -> EriCostTable {
    eri.clone()
}

// -------------------------------------------------------------- Fig. 3 --

/// Fig. 3: shared-Fock time vs threads/rank for each affinity type
/// (1 node, 4 ranks, the paper uses the 1.0 nm dataset, quad-cache).
pub fn fig3(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        format!("Figure 3 — thread affinity, shared Fock, {} (1 node, 4 ranks)", ctx.label),
        &["threads/rank", "compact", "scatter", "balanced", "none"],
    );
    for threads in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut row = vec![threads.to_string()];
        for aff in [Affinity::Compact, Affinity::Scatter, Affinity::Balanced, Affinity::None] {
            let cfg = SimConfig {
                threads_per_rank: threads,
                affinity: aff,
                ..SimConfig::hybrid(SimAlgorithm::SharedFock, 1)
            };
            let r = simulate(&ctx.workload, &ctx.cost, &cfg);
            row.push(fmt_secs(r.total_seconds));
        }
        t.row(row);
    }
    t.note("times are full SCF (16 iterations), model seconds");
    t
}

// -------------------------------------------------------------- Fig. 4 --

/// Fig. 4: single-node scalability vs hardware threads for the three codes
/// (the paper uses the 1.0 nm dataset).
pub fn fig4(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        format!("Figure 4 — single-node scalability, {} (quad-cache)", ctx.label),
        &["hw threads", "MPI-only", "private Fock", "shared Fock"],
    );
    for hw in [4usize, 8, 16, 32, 64, 128, 256] {
        let mut row = vec![hw.to_string()];
        // MPI-only: one rank per hardware thread, memory permitting.
        let mpi_cfg = SimConfig {
            ranks_per_node: hw,
            threads_per_rank: 1,
            nodes: 1,
            ..SimConfig::mpi_only(1)
        };
        let mpi = simulate(&ctx.workload, &ctx.cost, &mpi_cfg);
        row.push(if mpi.feasible && mpi.ranks_per_node == hw {
            fmt_secs(mpi.total_seconds)
        } else {
            // The paper's Fig. 4: "the larger memory requirements of the
            // original MPI-only code restrict the computations".
            "- (mem)".into()
        });
        for alg in [SimAlgorithm::PrivateFock, SimAlgorithm::SharedFock] {
            let ranks = 4.min(hw);
            let cfg = SimConfig {
                ranks_per_node: ranks,
                threads_per_rank: (hw / ranks).max(1),
                ..SimConfig::hybrid(alg, 1)
            };
            let r = simulate(&ctx.workload, &ctx.cost, &cfg);
            row.push(if r.feasible { fmt_secs(r.total_seconds) } else { "-".into() });
        }
        t.row(row);
    }
    t
}

// -------------------------------------------------------------- Fig. 5 --

/// Fig. 5: cluster-mode x memory-mode grid for the three codes, small and
/// large datasets (the paper uses 0.5 nm and 2.0 nm).
pub fn fig5(small: &Ctx, large: &Ctx) -> Table {
    let mut t = Table::new(
        format!("Figure 5 — cluster/memory modes ({} and {}, 1 node)", small.label, large.label),
        &[
            "cluster",
            "memory",
            "MPI small",
            "PrF small",
            "ShF small",
            "MPI large",
            "PrF large",
            "ShF large",
        ],
    );
    let clusters =
        [ClusterMode::Quadrant, ClusterMode::Snc4, ClusterMode::Hemisphere, ClusterMode::AllToAll];
    for cluster in clusters {
        for memory in [MemoryMode::Cache, MemoryMode::FlatDdr] {
            let mut row = vec![cluster.label().to_string(), memory.label().to_string()];
            for ctx in [small, large] {
                for alg in
                    [SimAlgorithm::MpiOnly, SimAlgorithm::PrivateFock, SimAlgorithm::SharedFock]
                {
                    let mut cfg = if alg == SimAlgorithm::MpiOnly {
                        SimConfig::mpi_only(1)
                    } else {
                        SimConfig::hybrid(alg, 1)
                    };
                    cfg.cluster_mode = cluster;
                    cfg.memory_mode = memory;
                    let r = simulate(&ctx.workload, &ctx.cost, &cfg);
                    row.push(if r.feasible { fmt_secs(r.total_seconds) } else { "-".into() });
                }
            }
            t.row(row);
        }
    }
    t
}

// ----------------------------------------------------- Fig. 6 / Table 3 --

/// Published Table 3 values for side-by-side printing:
/// (nodes, [time mpi, prf, shf], [eff mpi, prf, shf]).
pub const PAPER_TABLE3: [(usize, [f64; 3], [f64; 3]); 6] = [
    (4, [2661.0, 1128.0, 1318.0], [100.0, 100.0, 100.0]),
    (16, [685.0, 288.0, 332.0], [97.0, 98.0, 99.0]),
    (64, [195.0, 78.0, 85.0], [85.0, 90.0, 97.0]),
    (128, [118.0, 49.0, 43.0], [70.0, 72.0, 96.0]),
    (256, [85.0, 44.0, 23.0], [49.0, 40.0, 90.0]),
    (512, [82.0, 44.0, 13.0], [25.0, 20.0, 79.0]),
];

/// Fig. 6 + Table 3: multi-node scalability of the three codes
/// (the paper uses the 2.0 nm dataset, 4-512 nodes).
pub fn fig6_table3(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        format!("Figure 6 / Table 3 — multi-node scaling, {} (quad-cache)", ctx.label),
        &["nodes", "MPI s", "PrF s", "ShF s", "MPI eff%", "PrF eff%", "ShF eff%", "ShF speedup"],
    );
    let nodes_list = [4usize, 16, 64, 128, 256, 512];
    let mut base: Option<[f64; 3]> = None;
    for &nodes in &nodes_list {
        let mut times = [0.0f64; 3];
        for (k, alg) in [SimAlgorithm::MpiOnly, SimAlgorithm::PrivateFock, SimAlgorithm::SharedFock]
            .into_iter()
            .enumerate()
        {
            let cfg = if alg == SimAlgorithm::MpiOnly {
                // The paper requests up to 256 ranks/node; memory caps it.
                SimConfig::mpi_only(nodes)
            } else {
                SimConfig::hybrid(alg, nodes)
            };
            times[k] = simulate(&ctx.workload, &ctx.cost, &cfg).total_seconds;
        }
        let b = *base.get_or_insert(times);
        let eff: Vec<f64> =
            (0..3).map(|k| parallel_efficiency(b[k], nodes_list[0], times[k], nodes)).collect();
        t.row(vec![
            nodes.to_string(),
            fmt_secs(times[0]),
            fmt_secs(times[1]),
            fmt_secs(times[2]),
            format!("{:.0}", eff[0]),
            format!("{:.0}", eff[1]),
            format!("{:.0}", eff[2]),
            format!("{:.1}x", times[0] / times[2]),
        ]);
    }
    t.note("paper's headline: shared Fock ~6x faster than stock MPI at 512 nodes");
    t
}

// -------------------------------------------------------------- Fig. 7 --

/// Fig. 7: shared-Fock scaling for the largest dataset up to 3,000 nodes
/// (the paper uses 5.0 nm).
pub fn fig7(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        format!("Figure 7 — shared Fock at scale, {} (4 ranks x 64 threads)", ctx.label),
        &["nodes", "cores", "time s", "efficiency %", "busy %", "GB/node"],
    );
    let nodes_list = [256usize, 512, 1024, 1536, 2048, 2500, 3000];
    let mut base: Option<(usize, f64)> = None;
    for &nodes in &nodes_list {
        let r =
            simulate(&ctx.workload, &ctx.cost, &SimConfig::hybrid(SimAlgorithm::SharedFock, nodes));
        let (bn, bt) = *base.get_or_insert((nodes, r.total_seconds));
        t.row(vec![
            nodes.to_string(),
            (nodes * 64).to_string(),
            fmt_secs(r.total_seconds),
            format!("{:.0}", parallel_efficiency(bt, bn, r.total_seconds, nodes)),
            format!("{:.0}", r.busy_fraction * 100.0),
            fmt_gb(r.footprint_gb),
        ]);
    }
    t
}

// ----------------------------------------------------------- ablations --

/// Ablation: lazy vs eager FI flushing (DESIGN.md §5.1).
pub fn ablation_flush(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        format!("Ablation — FI flush policy, shared Fock, {}", ctx.label),
        &["nodes", "lazy flush s", "eager flush s", "penalty %"],
    );
    for nodes in [1usize, 4, 16] {
        let lazy =
            simulate(&ctx.workload, &ctx.cost, &SimConfig::hybrid(SimAlgorithm::SharedFock, nodes));
        let eager = simulate(
            &ctx.workload,
            &ctx.cost,
            &SimConfig {
                eager_fi_flush: true,
                ..SimConfig::hybrid(SimAlgorithm::SharedFock, nodes)
            },
        );
        t.row(vec![
            nodes.to_string(),
            fmt_secs(lazy.total_seconds),
            fmt_secs(eager.total_seconds),
            format!("{:.3}", (eager.total_seconds / lazy.total_seconds - 1.0) * 100.0),
        ]);
    }
    t
}

/// Ablation: ij-task prescreen on/off (DESIGN.md §5.3).
pub fn ablation_prescreen(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        format!("Ablation — ij-task prescreen, shared Fock, {}", ctx.label),
        &["nodes", "prescreen on s", "prescreen off s", "penalty %"],
    );
    for nodes in [1usize, 4, 16] {
        let on =
            simulate(&ctx.workload, &ctx.cost, &SimConfig::hybrid(SimAlgorithm::SharedFock, nodes));
        let off = simulate(
            &ctx.workload,
            &ctx.cost,
            &SimConfig {
                task_prescreen: false,
                ..SimConfig::hybrid(SimAlgorithm::SharedFock, nodes)
            },
        );
        t.row(vec![
            nodes.to_string(),
            fmt_secs(on.total_seconds),
            fmt_secs(off.total_seconds),
            format!("{:.3}", (off.total_seconds / on.total_seconds - 1.0) * 100.0),
        ]);
    }
    t
}

/// Ablation: static vs dynamic thread schedule (paper §4.3: "no significant
/// difference ... was observed").
pub fn ablation_schedule(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        format!("Ablation — OpenMP schedule, private Fock, {}", ctx.label),
        &["nodes", "dynamic s", "static s", "difference %"],
    );
    for nodes in [1usize, 4] {
        let dynamic = simulate(
            &ctx.workload,
            &ctx.cost,
            &SimConfig::hybrid(SimAlgorithm::PrivateFock, nodes),
        );
        let stat = simulate(
            &ctx.workload,
            &ctx.cost,
            &SimConfig {
                static_schedule: true,
                ..SimConfig::hybrid(SimAlgorithm::PrivateFock, nodes)
            },
        );
        t.row(vec![
            nodes.to_string(),
            fmt_secs(dynamic.total_seconds),
            fmt_secs(stat.total_seconds),
            format!("{:.2}", (stat.total_seconds / dynamic.total_seconds - 1.0) * 100.0),
        ]);
    }
    t
}

/// Ablation: DLB over collapsed indices vs two-index MPI (§4.2) — compare
/// the load balance (busy fraction) of the three task partitionings at a
/// fixed machine size.
pub fn ablation_loadbalance(ctx: &Ctx, nodes: usize) -> Table {
    let mut t = Table::new(
        format!("Ablation — task partitioning vs load balance, {} ({} nodes)", ctx.label, nodes),
        &["algorithm", "MPI task space", "busy %", "time s"],
    );
    for alg in [SimAlgorithm::MpiOnly, SimAlgorithm::PrivateFock, SimAlgorithm::SharedFock] {
        let cfg = if alg == SimAlgorithm::MpiOnly {
            SimConfig::mpi_only(nodes)
        } else {
            SimConfig::hybrid(alg, nodes)
        };
        let r = simulate(&ctx.workload, &ctx.cost, &cfg);
        let space = match alg {
            SimAlgorithm::PrivateFock => ctx.workload.n_shells,
            _ => ctx.workload.total_pairs,
        };
        t.row(vec![
            alg.label().to_string(),
            space.to_string(),
            format!("{:.0}", r.busy_fraction * 100.0),
            fmt_secs(r.total_seconds),
        ]);
    }
    t
}

/// Analysis: where does shared Fock overtake private Fock as nodes grow?
/// The paper's Table 3 implies a crossover between 64 and 128 nodes for the
/// 2.0 nm system; this sweep locates it for any workload.
pub fn crossover(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        format!("Crossover analysis — private vs shared Fock, {}", ctx.label),
        &["nodes", "PrF s", "ShF s", "faster"],
    );
    let mut crossed_at: Option<usize> = None;
    for k in 0..10 {
        let nodes = 1usize << k;
        let prf = simulate(
            &ctx.workload,
            &ctx.cost,
            &SimConfig::hybrid(SimAlgorithm::PrivateFock, nodes),
        );
        let shf =
            simulate(&ctx.workload, &ctx.cost, &SimConfig::hybrid(SimAlgorithm::SharedFock, nodes));
        let faster = if shf.total_seconds < prf.total_seconds { "shared" } else { "private" };
        if faster == "shared" && crossed_at.is_none() {
            crossed_at = Some(nodes);
        }
        t.row(vec![
            nodes.to_string(),
            fmt_secs(prf.total_seconds),
            fmt_secs(shf.total_seconds),
            faster.into(),
        ]);
    }
    match crossed_at {
        Some(n) => {
            t.note(format!("shared Fock overtakes private Fock at ~{n} nodes for this workload"))
        }
        None => t.note("no crossover within 512 nodes"),
    }
    t
}

/// Analysis: recovery cost when ranks die mid-build under the task-lease
/// protocol (the fault-injection layer of the real builders).
///
/// Analytic overlay on the simulated clean build: `k` of `R` ranks die at
/// fraction `phi` of the build. With *volatile* leases (replicated Fock
/// accumulators — the MPI-only and both hybrid codes) everything a dead
/// rank ever computed dies with its accumulators, so survivors redo
/// `phi * W * k / R` on top of the remaining work. With *durable* leases
/// (the distributed-data build: flushed contributions persist in the
/// distributed array) only the in-flight task per dead rank is redone.
///
/// ```text
/// T_volatile / T = phi + (1 - phi + phi k / R) * R / (R - k)
/// T_durable  / T = phi + (1 - phi)             * R / (R - k)   (+ O(1 task))
/// ```
pub fn failure_recovery(ctx: &Ctx, nodes: usize) -> Table {
    let phi = 0.5; // deaths halfway through the build
    let mut t = Table::new(
        format!(
            "Failure recovery — {k} rank deaths at 50% of the build, {} ({nodes} nodes)",
            ctx.label,
            k = "1/2"
        ),
        &["algorithm", "leases", "ranks", "clean s", "1 death", "2 deaths"],
    );
    let algorithms: [(SimAlgorithm, &str); 4] = [
        (SimAlgorithm::MpiOnly, "volatile"),
        (SimAlgorithm::PrivateFock, "volatile"),
        (SimAlgorithm::SharedFock, "volatile"),
        // The distributed-data baseline shares SharedFock's simulated
        // timing shape but completes tasks durably via one-sided flushes.
        (SimAlgorithm::SharedFock, "durable"),
    ];
    for (alg, leases) in algorithms {
        let cfg = if alg == SimAlgorithm::MpiOnly {
            SimConfig::mpi_only(nodes)
        } else {
            SimConfig::hybrid(alg, nodes)
        };
        let r = simulate(&ctx.workload, &ctx.cost, &cfg);
        let ranks = (r.ranks_per_node * nodes).max(2);
        let label =
            if leases == "durable" { "distributed".to_string() } else { alg.label().to_string() };
        let slowdown = |k: usize| -> f64 {
            let (rr, kk) = (ranks as f64, k as f64);
            let lost = if leases == "durable" {
                // One in-flight task per dead rank, relative to total work.
                kk / ctx.workload.total_pairs.max(1) as f64
            } else {
                phi * kk / rr
            };
            phi + (1.0 - phi + lost) * rr / (rr - kk)
        };
        t.row(vec![
            label,
            leases.to_string(),
            ranks.to_string(),
            fmt_secs(r.total_seconds),
            format!("{:.2}x", slowdown(1)),
            format!("{:.2}x", slowdown(2)),
        ]);
    }
    t.note("slowdowns are per faulty build; volatile leases redo the dead ranks' work");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_chem::geom::small;

    fn toy_ctx() -> Ctx {
        Ctx::from_molecule(
            "toy C8 ring",
            &small::c_ring(8, 1.40),
            BasisName::B631gd,
            1e-10,
            0.0,
            false,
        )
    }

    #[test]
    fn fig3_produces_all_rows_and_sensible_ordering() {
        let ctx = toy_ctx();
        let t = fig3(&ctx);
        assert_eq!(t.rows.len(), 7);
        // At 64 threads/rank (full saturation) all affinities converge.
        let last = &t.rows[6];
        let vals: Vec<f64> = last[1..].iter().map(|s| s.parse().unwrap()).collect();
        let spread = (vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min))
            / vals[0];
        assert!(spread < 0.15, "affinities should converge at saturation: {vals:?}");
        // At 4 threads/rank compact must be slower than scatter.
        let row4 = &t.rows[2];
        let compact: f64 = row4[1].parse().unwrap();
        let scatter: f64 = row4[2].parse().unwrap();
        assert!(compact > scatter, "compact {compact} vs scatter {scatter}");
    }

    #[test]
    fn fig4_private_fock_wins_on_a_single_node() {
        let ctx = toy_ctx();
        let t = fig4(&ctx);
        // At 256 threads the hybrids must have entries and private Fock
        // must be the fastest of the three (paper §6.1).
        let row = t.rows.last().unwrap();
        let prf: f64 = row[2].parse().unwrap();
        let shf: f64 = row[3].parse().unwrap();
        assert!(prf <= shf, "private {prf} should beat shared {shf} on one node");
    }

    #[test]
    fn fig6_shared_fock_wins_at_scale() {
        // The toy system saturates beyond ~64 nodes (only ~500 tasks), so
        // assert the orderings where it still differentiates — the same
        // orderings the paper reports for 2.0 nm at its scale.
        let ctx = toy_ctx();
        let t = fig6_table3(&ctx);
        let row16 = &t.rows[1];
        let mpi: f64 = row16[1].parse().unwrap();
        let shf: f64 = row16[3].parse().unwrap();
        assert!(shf < mpi, "shared Fock must beat MPI-only");
        let eff_mpi: f64 = row16[4].parse().unwrap();
        let eff_shf: f64 = row16[6].parse().unwrap();
        assert!(eff_shf > eff_mpi, "ShF efficiency {eff_shf} vs MPI {eff_mpi}");
        // The headline speedup column grows with node count and exceeds 1.
        let last = t.rows.last().unwrap();
        let speedup: f64 = last[7].trim_end_matches('x').parse().unwrap();
        assert!(speedup > 1.0);
    }

    #[test]
    fn crossover_reports_shared_fock_winning_eventually() {
        let ctx = toy_ctx();
        let t = crossover(&ctx);
        assert_eq!(t.rows.len(), 10);
        let last = t.rows.last().unwrap();
        assert_eq!(last[3], "shared", "shared Fock must win at 512 nodes");
    }

    #[test]
    fn ablations_run_and_report_finite_numbers() {
        let ctx = toy_ctx();
        for t in [ablation_flush(&ctx), ablation_prescreen(&ctx), ablation_schedule(&ctx)] {
            for row in &t.rows {
                for cell in &row[1..] {
                    let v: f64 = cell.parse().unwrap();
                    assert!(v.is_finite());
                }
            }
        }
    }

    #[test]
    fn failure_recovery_durable_beats_volatile_and_stays_bounded() {
        let ctx = toy_ctx();
        let t = failure_recovery(&ctx, 4);
        assert_eq!(t.rows.len(), 4);
        let slow =
            |row: &[String], col: usize| -> f64 { row[col].trim_end_matches('x').parse().unwrap() };
        for row in &t.rows {
            let one = slow(row, 4);
            let two = slow(row, 5);
            // Losing ranks can only slow a build down, and two deaths cost
            // at least as much as one.
            assert!(one >= 1.0 && two >= one, "{row:?}");
            // Bounded by redoing everything on the survivors.
            assert!(two < 3.0, "{row:?}");
        }
        // At the same rank count, durable leases (distributed row) recover
        // cheaper than the volatile shared-Fock row.
        let shf = &t.rows[2];
        let dist = &t.rows[3];
        assert_eq!(shf[2], dist[2], "same rank count for the comparison");
        assert!(slow(dist, 4) < slow(shf, 4), "durable {dist:?} vs volatile {shf:?}");
    }

    #[test]
    fn anchoring_scales_absolute_times() {
        let mut ctx = toy_ctx();
        let scale = ctx.anchor(4, 1318.0);
        assert!(scale > 0.0);
        let r = simulate(&ctx.workload, &ctx.cost, &SimConfig::hybrid(SimAlgorithm::SharedFock, 4));
        assert!((r.total_seconds - 1318.0).abs() < 1.0, "anchored to {}", r.total_seconds);
    }
}
