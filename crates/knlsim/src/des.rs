//! Discrete-event simulation of one Fock-build iteration under the
//! paper's three distribution schemes.
//!
//! Mechanisms modelled (each tied to a paper observation):
//!
//! * **Greedy DLB list scheduling** — ranks pull the next task from the
//!   global counter when free (exactly `ddi_dlbnext`), so load imbalance
//!   emerges from the real task-cost distribution, not a formula. This is
//!   what makes Algorithm 2 flatline once `n_tasks(i) < n_ranks` and what
//!   keeps Algorithm 3 (four-index partitioning) efficient — the paper's
//!   §6.2 explanation of Table 3.
//! * **DLB counter serialization** — the shared counter is a single-server
//!   queue (hardware-offloaded fetch-add at its home NIC), a hard floor on
//!   task distribution. The MPI-only efficiency collapse at scale (Table 3:
//!   49% at 256 nodes, 25% at 512) instead emerges from task starvation:
//!   with 128 fat ranks per node, 512 nodes leave only a couple of
//!   surviving tasks per rank, and the heavy-tailed task-cost distribution
//!   does the rest.
//! * **SMT throughput curve** (Fig. 3/4), **affinity placement** (Fig. 3),
//!   **memory modes and cluster modes** (Fig. 5), **memory-capacity rank
//!   limits** for the MPI-only code (Fig. 4's 128-thread ceiling),
//!   **thread-team barriers, FI/FJ flushes and atomic adds** for the
//!   shared-Fock code (Fig. 4's high-thread gap to private Fock), and the
//!   **`gsumf` allreduce** at the end of every build.

use crate::cost::CostModel;
use crate::network::Network;
use crate::node::{ClusterMode, KnlNode, MemoryMode};
use crate::workload::{SimTask, Workload};
use phi_omp::Affinity;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which algorithm's distribution scheme to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimAlgorithm {
    MpiOnly,
    PrivateFock,
    SharedFock,
    /// The non-replicated build (`hf`'s `fock::sharded`): density and
    /// Fock live as tri-packed stripes in distributed windows, ranks hold
    /// only O(N) caches, every get/accumulate is one-sided traffic.
    Sharded,
}

impl SimAlgorithm {
    pub fn label(self) -> &'static str {
        match self {
            SimAlgorithm::MpiOnly => "MPI-only",
            SimAlgorithm::PrivateFock => "private Fock",
            SimAlgorithm::SharedFock => "shared Fock",
            SimAlgorithm::Sharded => "sharded",
        }
    }

    /// How much of the algorithm's traffic is coherence-visible shared
    /// data (input to [`ClusterMode::coherence_factor`]).
    fn shared_intensity(self) -> f64 {
        match self {
            SimAlgorithm::MpiOnly => 0.0,
            SimAlgorithm::PrivateFock => 0.35,
            SimAlgorithm::SharedFock => 1.0,
            // One-sided window traffic bypasses the coherence fabric the
            // same way two-sided MPI does.
            SimAlgorithm::Sharded => 0.0,
        }
    }

    /// Matrix words per rank as a multiple of N^2 (the eqs. 3a-3c
    /// prefactor). `total_ranks` only matters for the sharded build, whose
    /// two tri-packed window stripes hold `2 * N(N+1)/2 / R ~ N^2 / R`
    /// words per rank; its O(N) row cache and flush buffer vanish next to
    /// that at simulated scales.
    fn matrix_words_per_rank(self, threads: usize, total_ranks: usize) -> f64 {
        match self {
            SimAlgorithm::MpiOnly => 2.5,
            SimAlgorithm::PrivateFock => 2.0 + threads as f64,
            SimAlgorithm::SharedFock => 3.5,
            SimAlgorithm::Sharded => 1.0 / total_ranks.max(1) as f64,
        }
    }
}

/// Simulation configuration for one data point.
#[derive(Clone, Debug)]
pub struct SimConfig {
    pub node: KnlNode,
    pub network: Network,
    pub cluster_mode: ClusterMode,
    pub memory_mode: MemoryMode,
    pub affinity: Affinity,
    pub nodes: usize,
    /// Requested ranks per node (the MPI-only code may get fewer if memory
    /// does not allow it, halving until it fits — the paper varies 64-256).
    pub ranks_per_node: usize,
    pub threads_per_rank: usize,
    pub algorithm: SimAlgorithm,
    /// SCF iterations folded into `total_seconds`.
    pub scf_iterations: usize,
    /// Ablation: flush FI after every task instead of only on i-change.
    pub eager_fi_flush: bool,
    /// Ablation: static instead of dynamic thread schedule (larger
    /// straggler tail; the paper found the difference insignificant).
    pub static_schedule: bool,
    /// Ablation: disable the shared-Fock ij-task prescreen, so skipped
    /// tasks still sweep their Schwarz-check loops.
    pub task_prescreen: bool,
}

impl SimConfig {
    /// The paper's hybrid configuration: 4 ranks x 64 threads, quad-cache.
    pub fn hybrid(algorithm: SimAlgorithm, nodes: usize) -> SimConfig {
        SimConfig {
            node: KnlNode::default(),
            network: Network::default(),
            cluster_mode: ClusterMode::Quadrant,
            memory_mode: MemoryMode::Cache,
            affinity: Affinity::Balanced,
            nodes,
            ranks_per_node: 4,
            threads_per_rank: 64,
            algorithm,
            scf_iterations: 16,
            eager_fi_flush: false,
            static_schedule: false,
            task_prescreen: true,
        }
    }

    /// The paper's MPI-only configuration: up to 256 ranks, quad-cache.
    pub fn mpi_only(nodes: usize) -> SimConfig {
        SimConfig {
            ranks_per_node: 256,
            threads_per_rank: 1,
            algorithm: SimAlgorithm::MpiOnly,
            ..SimConfig::hybrid(SimAlgorithm::MpiOnly, nodes)
        }
    }
}

/// Result of one simulated configuration.
#[derive(Clone, Debug)]
pub struct SimResult {
    pub feasible: bool,
    pub infeasible_reason: Option<String>,
    /// Ranks per node actually used (after memory-driven reduction).
    pub ranks_per_node: usize,
    /// One Fock-build iteration, seconds (scaled by `time_scale`).
    pub fock_seconds: f64,
    /// `gsumf` allreduce per iteration, seconds.
    pub reduction_seconds: f64,
    /// `scf_iterations x (fock + reduction)`.
    pub total_seconds: f64,
    /// Mean rank busy fraction during the build (load-balance metric).
    pub busy_fraction: f64,
    /// Per-node footprint, GB.
    pub footprint_gb: f64,
}

impl SimResult {
    fn infeasible(reason: String) -> SimResult {
        SimResult {
            feasible: false,
            infeasible_reason: Some(reason),
            ranks_per_node: 0,
            fock_seconds: f64::INFINITY,
            reduction_seconds: f64::INFINITY,
            total_seconds: f64::INFINITY,
            busy_fraction: 0.0,
            footprint_gb: f64::INFINITY,
        }
    }

    /// Export this simulated configuration in the shared observability
    /// schema ([`phi_trace::TraceSummary`]), so model predictions and
    /// measured traces can be compared field-for-field. Note the
    /// normalization: here `fock_seconds`/`reduction_seconds` are per
    /// SCF iteration, while a measured trace sums every build in the
    /// session — divide the trace side by its iteration count before
    /// comparing. `busy_fraction` is the mean/max busy ratio in both
    /// (the inverse of the paper's Fig. 8 imbalance metric).
    pub fn trace_summary(&self) -> phi_trace::TraceSummary {
        phi_trace::TraceSummary {
            fock_seconds: self.fock_seconds,
            reduction_seconds: self.reduction_seconds,
            total_seconds: self.total_seconds,
            busy_fraction: self.busy_fraction,
        }
    }
}

/// Base OS + program image per process, GB (GAMESS executable, runtime,
/// integral tables). Chosen so the paper's capacity observations come out:
/// 256 MPI ranks fit for the 0.5 nm system (Table 2) but the 1.0 nm system
/// caps the MPI-only code at 128 hardware threads (Fig. 4 text).
const BASE_PROCESS_GB: f64 = 0.78;

/// Cheap per-quartet Schwarz screening test inside the kl/k,l loops.
const CHECK_NS: f64 = 1.5;

/// f64 wrapper ordered by total order, for the event heap.
#[derive(Clone, Copy, PartialEq)]
struct Time(f64);
impl Eq for Time {}
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Per-node footprint in GB for an algorithm/configuration (capacity).
fn footprint_gb(
    alg: SimAlgorithm,
    n_basis: usize,
    ranks: usize,
    threads: usize,
    nodes: usize,
) -> f64 {
    let n2 = (n_basis * n_basis) as f64;
    let total_ranks = (ranks * nodes.max(1)).max(1);
    let matrices = alg.matrix_words_per_rank(threads, total_ranks) * n2 * 8.0 / 1e9;
    ranks as f64 * (BASE_PROCESS_GB + matrices)
}

/// Hot working set in GB — what competes for MCDRAM bandwidth/cache during
/// the build. Differs from the capacity footprint in one way: thread-
/// private Fock buffers are write-mostly streaming targets, so only a small
/// fraction of them is hot at any instant (weight 0.1). The MPI-only code's
/// per-process images *are* hot (256 replicated processes thrash the cache
/// with code + static data too — the paper's §6.1 "cache capacity and cache
/// line conflict effects").
fn hot_ws_gb(alg: SimAlgorithm, n_basis: usize, ranks: usize, threads: usize, nodes: usize) -> f64 {
    let n2gb = (n_basis * n_basis) as f64 * 8.0 / 1e9;
    match alg {
        SimAlgorithm::MpiOnly => ranks as f64 * (BASE_PROCESS_GB + 2.5 * n2gb),
        SimAlgorithm::PrivateFock => ranks as f64 * (2.0 + 0.1 * threads as f64) * n2gb,
        SimAlgorithm::SharedFock => ranks as f64 * 3.5 * n2gb,
        // Like MPI-only it runs one process per rank (so the replicated
        // images stay hot), but of the matrices only the node's window
        // stripes plus O(N) caches are resident; the rest is remote.
        SimAlgorithm::Sharded => {
            let total_ranks = (ranks * nodes.max(1)).max(1) as f64;
            ranks as f64 * (BASE_PROCESS_GB + n2gb / total_ranks)
        }
    }
}

/// Simulate one Fock-build iteration.
pub fn simulate(workload: &Workload, cost: &CostModel, cfg: &SimConfig) -> SimResult {
    let node = &cfg.node;
    let mut ranks_per_node = cfg.ranks_per_node;
    let threads = cfg.threads_per_rank.max(1);

    // --- Memory feasibility -------------------------------------------
    let mem_limit = node.total_memory_gb();
    if cfg.algorithm == SimAlgorithm::MpiOnly {
        // Halve the rank count until the node fits — both total capacity
        // and the chosen memory mode (paper §6.1: "the larger memory
        // requirements of the original MPI-only code restrict...").
        let fits = |ranks: usize| {
            footprint_gb(cfg.algorithm, workload.n_basis, ranks, threads, cfg.nodes) <= mem_limit
                && cfg
                    .memory_mode
                    .effective_bandwidth(
                        node,
                        hot_ws_gb(cfg.algorithm, workload.n_basis, ranks, threads, cfg.nodes),
                    )
                    .is_some()
        };
        while ranks_per_node > 1 && !fits(ranks_per_node) {
            ranks_per_node /= 2;
        }
    }
    let fp = footprint_gb(cfg.algorithm, workload.n_basis, ranks_per_node, threads, cfg.nodes);
    if fp > mem_limit {
        return SimResult::infeasible(format!(
            "footprint {fp:.0} GB exceeds node memory {mem_limit:.0} GB"
        ));
    }
    let hot = hot_ws_gb(cfg.algorithm, workload.n_basis, ranks_per_node, threads, cfg.nodes);
    let Some(bw) = cfg.memory_mode.effective_bandwidth(node, hot) else {
        return SimResult::infeasible(format!(
            "{} cannot hold a {hot:.0} GB working set",
            cfg.memory_mode.label()
        ));
    };

    // --- Per-rank throughput -------------------------------------------
    let total_ranks = ranks_per_node * cfg.nodes;
    let total_threads_node = ranks_per_node * threads;
    // Compact pinning packs SMT siblings even when free cores remain, so
    // it never takes the even-spread shortcut; the spreading policies
    // converge to it at full saturation.
    let per_thread_speed = if cfg.affinity != Affinity::Compact && total_threads_node >= node.cores
    {
        let load = total_threads_node as f64 / node.cores as f64;
        node.core_throughput(load.min(node.smt as f64)) / load.min(node.smt as f64)
    } else {
        let cores_per_rank = (node.cores / ranks_per_node).max(1);
        let cores_used = cfg.affinity.cores_used(threads, cores_per_rank, node.smt).max(1);
        let load = (threads as f64 / cores_used as f64).max(1.0);
        node.core_throughput(load) / load
    };
    let affinity_factor = match cfg.affinity {
        Affinity::None => cost.migration_penalty,
        Affinity::Balanced => 0.99,
        _ => 1.0,
    };
    // Nominal-thread-equivalents of work per second, per rank.
    let rank_speed = threads as f64 * per_thread_speed / (cost.knl_slowdown * affinity_factor);

    // --- Cost multipliers ------------------------------------------------
    let contention = if cfg.algorithm == SimAlgorithm::SharedFock && threads > 1 {
        1.0 + cost.shared_write_contention * (threads as f64).log2()
    } else {
        1.0
    };
    let mult = cost.bandwidth_factor(bw)
        * cfg.cluster_mode.coherence_factor(cfg.algorithm.shared_intensity())
        * cost.pressure_factor(hot, node.mcdram_gb)
        * contention;

    // --- Task list --------------------------------------------------------
    let by_i;
    let tasks: &[SimTask] = match cfg.algorithm {
        SimAlgorithm::PrivateFock => {
            by_i = workload.tasks_by_i();
            &by_i
        }
        _ => &workload.ij_tasks,
    };
    // DLB claims made beyond the real task list (empty/prescreened pulls).
    let claim_space = match cfg.algorithm {
        SimAlgorithm::PrivateFock => workload.n_shells,
        _ => workload.total_pairs,
    };
    let empty_claims = claim_space.saturating_sub(tasks.len());

    // DLB: per-claim latency paid by the puller, plus the counter's
    // serialized hardware service time (a global floor).
    let dlb_latency = if cfg.nodes > 1 { cost.dlb_off_node_s } else { cost.dlb_on_node_s };
    let dlb_service = cost.dlb_service_s;

    let barrier = cost.barrier_s(threads);
    let avg_width = workload.n_basis as f64 / workload.n_shells as f64;
    let fj_flush = match cfg.algorithm {
        SimAlgorithm::SharedFock => {
            avg_width * workload.n_basis as f64 * cost.flush_per_element_s + 2.0 * barrier
        }
        _ => 0.0,
    };
    let fi_flush = match cfg.algorithm {
        SimAlgorithm::SharedFock => {
            workload.max_shell_width as f64 * workload.n_basis as f64 * cost.flush_per_element_s
                + 2.0 * barrier
        }
        _ => 0.0,
    };
    // Fixed per-task overhead by algorithm.
    let per_task_fixed = match cfg.algorithm {
        SimAlgorithm::MpiOnly => 0.0,
        SimAlgorithm::PrivateFock => 2.0 * barrier,
        SimAlgorithm::SharedFock => 2.0 * barrier + fj_flush,
        // One window get (density rows) and one accumulate flush per task,
        // each a one-sided round trip priced like a DLB pull.
        SimAlgorithm::Sharded => 2.0 * dlb_latency,
    };

    // --- The event loop ---------------------------------------------------
    let mut heap: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::with_capacity(total_ranks);
    for r in 0..total_ranks {
        heap.push(Reverse((Time(0.0), r)));
    }
    let mut busy = vec![0.0f64; total_ranks];
    let mut last_i = vec![u32::MAX; total_ranks];
    let mut counter_free = 0.0f64;
    let mut makespan = 0.0f64;

    for task in tasks {
        let Reverse((Time(free), r)) = heap.pop().expect("heap holds every rank");
        // Claim the counter (serialized), then run.
        let start = free.max(counter_free) + dlb_latency;
        counter_free = free.max(counter_free) + dlb_service;

        // Screening-check sweep inside the task's kl/k,l loops.
        let klmax = match cfg.algorithm {
            SimAlgorithm::PrivateFock => {
                // collapse(2): (i+1)^2 (j,k) cells, each scanning ~k l-checks;
                // approximate the check count by the canonical quartets of i.
                let i = task.i as usize;
                ((i + 1) * (i + 1)) as f64 * (i as f64 + 1.0) / 2.0
            }
            _ => {
                let i = task.i as usize;
                (i * (i + 1) / 2 + task.j as usize + 1) as f64
            }
        };
        let check_cost = klmax * CHECK_NS * 1e-9;

        // Shared-Fock atomic adds.
        let atomic = if cfg.algorithm == SimAlgorithm::SharedFock {
            task.n_items as f64 * cost.atomic_per_quartet_s
        } else {
            0.0
        };

        let compute = (task.cost_s * mult + check_cost + atomic) / rank_speed;
        // Straggler tail: about one work item under dynamic scheduling,
        // a few under static chunking.
        let tail_items = if cfg.static_schedule { 4.0 } else { 1.0 };
        let tail = if threads > 1 && task.n_items > 0 {
            tail_items * task.cost_s * mult
                / task.n_items as f64
                / (per_thread_speed / cost.knl_slowdown)
        } else {
            0.0
        };
        // Lazy FI flush: charged when this rank's i changes (or on every
        // task in the eager ablation).
        let flush = if cfg.algorithm == SimAlgorithm::SharedFock
            && (cfg.eager_fi_flush || last_i[r] != task.i)
        {
            last_i[r] = task.i;
            fi_flush
        } else {
            0.0
        };

        let wall = compute + tail + per_task_fixed + flush;
        let end = start + wall;
        busy[r] += wall;
        makespan = makespan.max(end);
        heap.push(Reverse((Time(end), r)));
    }

    // Empty claims: every rank still pulls and discards them; they hammer
    // the counter but do no work. Amortize across ranks.
    let empty_wall = dlb_latency
        + match cfg.algorithm {
            SimAlgorithm::MpiOnly => 0.0,
            _ => barrier, // master pull + team barrier before the skip
        };
    let mut empty_time_per_rank = empty_claims as f64 * empty_wall / total_ranks as f64;
    if cfg.algorithm == SimAlgorithm::SharedFock && !cfg.task_prescreen {
        // Without the line-13 prescreen, non-surviving tasks still sweep
        // their whole Schwarz-check loops (workshared over the team).
        let skipped_checks =
            (workload.total_quartets - workload.sum_klmax_tasks) as f64 * CHECK_NS * 1e-9;
        empty_time_per_rank += skipped_checks
            / (threads as f64)
            / total_ranks as f64
            / (per_thread_speed / cost.knl_slowdown);
    }
    let counter_serial = empty_claims as f64 * dlb_service;
    // The counter's total service time is a hard floor on the build.
    let counter_floor = counter_free + counter_serial;
    makespan = (makespan + empty_time_per_rank).max(counter_floor);

    // --- Reduction and assembly -------------------------------------------
    // The replicated builds allreduce a full N^2 Fock; the sharded build
    // only gathers each rank's stripe (1/R of the matrix) for the driver.
    let reduction_bytes = {
        let full = (workload.n_basis * workload.n_basis * 8) as f64;
        match cfg.algorithm {
            SimAlgorithm::Sharded => full / total_ranks.max(1) as f64,
            _ => full,
        }
    };
    let reduction = cfg.network.allreduce_s(reduction_bytes, total_ranks, cfg.nodes);
    let busy_total: f64 = busy.iter().sum();
    let fock = makespan * cost.time_scale;
    let red = reduction * cost.time_scale;
    SimResult {
        feasible: true,
        infeasible_reason: None,
        ranks_per_node,
        fock_seconds: fock,
        reduction_seconds: red,
        total_seconds: cfg.scf_iterations as f64 * (fock + red),
        busy_fraction: busy_total / (total_ranks as f64 * makespan.max(1e-30)),
        footprint_gb: fp,
    }
}

/// Parallel efficiency of `result` at `nodes` relative to a baseline.
pub fn parallel_efficiency(
    base_seconds: f64,
    base_nodes: usize,
    seconds: f64,
    nodes: usize,
) -> f64 {
    (base_seconds * base_nodes as f64) / (seconds * nodes as f64) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EriCostTable;
    use phi_chem::basis::{BasisName, BasisSet};
    use phi_chem::geom::small;
    use phi_integrals::screening::{ShellClasses, WorkloadStats};
    use phi_integrals::Screening;

    fn toy_workload() -> (Workload, CostModel) {
        let mol = small::c_ring(8, 1.40);
        let b = BasisSet::build(&mol, BasisName::B631gd);
        let s = Screening::compute(&b);
        let stats = WorkloadStats::compute(&b, &s, 1e-10);
        let classes = ShellClasses::classify(&b);
        let eri = EriCostTable::analytic(&classes);
        let w = Workload::build(&b, &stats, &eri);
        let cm = CostModel::new(eri);
        (w, cm)
    }

    #[test]
    fn more_nodes_is_never_slower_much() {
        let (w, cm) = toy_workload();
        let t1 = simulate(&w, &cm, &SimConfig::hybrid(SimAlgorithm::SharedFock, 1));
        let t4 = simulate(&w, &cm, &SimConfig::hybrid(SimAlgorithm::SharedFock, 4));
        assert!(t1.feasible && t4.feasible);
        assert!(t4.fock_seconds <= t1.fock_seconds * 1.05);
    }

    #[test]
    fn trace_summary_shares_the_observability_schema() {
        let (w, cm) = toy_workload();
        let r = simulate(&w, &cm, &SimConfig::hybrid(SimAlgorithm::SharedFock, 2));
        assert!(r.feasible);
        let s = r.trace_summary();
        assert_eq!(s.fock_seconds, r.fock_seconds);
        assert_eq!(s.reduction_seconds, r.reduction_seconds);
        assert_eq!(s.total_seconds, r.total_seconds);
        assert_eq!(s.busy_fraction, r.busy_fraction);
        // The JSON form is the same one the measured-trace summary emits,
        // so files from either side are interchangeable downstream.
        let json = s.to_json();
        for key in ["fock_seconds", "reduction_seconds", "total_seconds", "busy_fraction"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn busy_fraction_is_a_fraction() {
        let (w, cm) = toy_workload();
        for alg in [
            SimAlgorithm::MpiOnly,
            SimAlgorithm::PrivateFock,
            SimAlgorithm::SharedFock,
            SimAlgorithm::Sharded,
        ] {
            let r = simulate(&w, &cm, &SimConfig::hybrid(alg, 2));
            assert!(r.feasible);
            assert!(
                r.busy_fraction > 0.0 && r.busy_fraction <= 1.0,
                "{alg:?}: {}",
                r.busy_fraction
            );
        }
    }

    #[test]
    fn private_fock_flatlines_when_tasks_run_out() {
        // With only n_shells tasks, throwing far more ranks at Algorithm 2
        // cannot help: time at absurd node counts stays near the time at
        // moderate counts (the paper's Table 3: 44 s at both 256 and 512).
        let (w, cm) = toy_workload();
        let mid = simulate(&w, &cm, &SimConfig::hybrid(SimAlgorithm::PrivateFock, 16));
        let huge = simulate(&w, &cm, &SimConfig::hybrid(SimAlgorithm::PrivateFock, 256));
        assert!(huge.fock_seconds > 0.4 * mid.fock_seconds, "should flatline, not keep scaling");
    }

    #[test]
    fn shared_fock_scales_further_than_private() {
        let (w, cm) = toy_workload();
        let nodes = 64;
        let shf = simulate(&w, &cm, &SimConfig::hybrid(SimAlgorithm::SharedFock, nodes));
        let prf = simulate(&w, &cm, &SimConfig::hybrid(SimAlgorithm::PrivateFock, nodes));
        assert!(
            shf.busy_fraction > prf.busy_fraction,
            "shared Fock {} vs private {}",
            shf.busy_fraction,
            prf.busy_fraction
        );
    }

    #[test]
    fn mpi_only_rank_count_respects_memory() {
        let (mut w, cm) = toy_workload();
        // Pretend a huge basis so 256 fat processes cannot fit.
        w.n_basis = 30240;
        let r = simulate(&w, &cm, &SimConfig::mpi_only(8));
        assert!(r.feasible);
        assert!(r.ranks_per_node < 256, "got {}", r.ranks_per_node);
        assert!(r.footprint_gb <= KnlNode::default().total_memory_gb());
    }

    #[test]
    fn flat_mcdram_rejects_big_footprints() {
        let (mut w, cm) = toy_workload();
        w.n_basis = 30240;
        let cfg = SimConfig {
            memory_mode: MemoryMode::FlatMcdram,
            ..SimConfig::hybrid(SimAlgorithm::SharedFock, 4)
        };
        let r = simulate(&w, &cm, &cfg);
        assert!(!r.feasible);
    }

    #[test]
    fn sharded_stays_feasible_past_the_replicated_memory_wall() {
        // A basis that makes every replicated footprint blow past node
        // memory leaves the sharded build standing: its stripes thin with
        // the world size instead of replicating per process.
        let (mut w, cm) = toy_workload();
        w.n_basis = 120_000;
        let nodes = 16;
        let rep = simulate(&w, &cm, &SimConfig::hybrid(SimAlgorithm::SharedFock, nodes));
        let sh = simulate(&w, &cm, &SimConfig::hybrid(SimAlgorithm::Sharded, nodes));
        assert!(!rep.feasible, "shared Fock should hit the wall");
        assert!(sh.feasible, "{:?}", sh.infeasible_reason);
        // And the per-node footprint keeps shrinking as nodes are added.
        let sh2 = simulate(&w, &cm, &SimConfig::hybrid(SimAlgorithm::Sharded, 4 * nodes));
        assert!(sh2.feasible && sh2.footprint_gb < sh.footprint_gb);
    }

    #[test]
    fn sharded_pays_window_latency_per_task() {
        // On one node with identical shapes, the sharded build can never
        // beat MPI-only: it runs the same ij-task list plus a one-sided
        // round trip per task.
        let (w, cm) = toy_workload();
        let cfg = |alg| SimConfig {
            ranks_per_node: 8,
            threads_per_rank: 1,
            algorithm: alg,
            ..SimConfig::hybrid(alg, 1)
        };
        let mpi = simulate(&w, &cm, &cfg(SimAlgorithm::MpiOnly));
        let sh = simulate(&w, &cm, &cfg(SimAlgorithm::Sharded));
        assert!(mpi.feasible && sh.feasible);
        assert!(sh.fock_seconds >= mpi.fock_seconds, "{} vs {}", sh.fock_seconds, mpi.fock_seconds);
        // But its end-of-build gather moves 1/R of the replicated
        // allreduce, so the reduction is cheaper.
        assert!(sh.reduction_seconds < mpi.reduction_seconds);
    }

    #[test]
    fn all_to_all_hurts_shared_fock_more_than_mpi() {
        let (w, cm) = toy_workload();
        let time = |alg, mode| {
            let cfg = SimConfig { cluster_mode: mode, ..SimConfig::hybrid(alg, 1) };
            simulate(&w, &cm, &cfg).fock_seconds
        };
        let shf_penalty = time(SimAlgorithm::SharedFock, ClusterMode::AllToAll)
            / time(SimAlgorithm::SharedFock, ClusterMode::Quadrant);
        let mpi_penalty = time(SimAlgorithm::MpiOnly, ClusterMode::AllToAll)
            / time(SimAlgorithm::MpiOnly, ClusterMode::Quadrant);
        assert!(shf_penalty > mpi_penalty, "{shf_penalty} vs {mpi_penalty}");
    }

    #[test]
    fn efficiency_helper() {
        assert!((parallel_efficiency(100.0, 4, 25.0, 16) - 100.0).abs() < 1e-9);
        assert!((parallel_efficiency(100.0, 4, 50.0, 16) - 50.0).abs() < 1e-9);
    }
}
