//! Wall-clock calibration of per-quartet ERI + digestion costs.
//!
//! Runs the *real* integral engine and Fock digestion on representative
//! shell quartets of each class pair and measures nanoseconds per quartet.
//! The simulator then distributes these measured costs, so its workload is
//! anchored in the actual code, not in guesses. (The analytic table in
//! [`crate::cost::EriCostTable::analytic`] exists as a deterministic
//! fallback for tests.)

use crate::cost::EriCostTable;
use hf::fock::{digest_quartet, TriSink};
use phi_chem::BasisSet;
use phi_integrals::screening::ShellClasses;
use phi_integrals::{EriEngine, ShellPairs};
use phi_linalg::Mat;
use std::time::Instant;

/// Minimum measurement window per class pair.
const MIN_WINDOW_S: f64 = 0.002;

/// Measure the cost table for a basis on this host.
///
/// Takes the persistent [`ShellPairs`] dataset the real builders use, so
/// the timed kernel consumes exactly the pair data layout of a production
/// Fock build (no ad-hoc pair construction).
pub fn calibrate_eri_costs(
    basis: &BasisSet,
    pairs: &ShellPairs,
    classes: &ShellClasses,
) -> EriCostTable {
    let reps_shells = classes.representatives();
    let nc = classes.n_classes();
    let npc = classes.n_pair_classes();
    let n = basis.n_basis();
    let d = Mat::from_fn(n, n, |i, j| {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        0.3 + ((i + 2 * j) % 7) as f64 * 0.05
    });
    let mut engine = EriEngine::new();
    engine.prefactor_cutoff = 0.0; // measure the un-screened kernel cost
    let mut fbuf = vec![0.0; n * n];
    let mut ns = vec![0.0; npc * npc];

    let mut eri_buf: Vec<f64> = Vec::new();
    for a1 in 0..nc {
        for a2 in 0..=a1 {
            let bra_pc = a1 * (a1 + 1) / 2 + a2;
            for b1 in 0..nc {
                for b2 in 0..=b1 {
                    let ket_pc = b1 * (b1 + 1) / 2 + b2;
                    // The persistent dataset stores lower-triangular pairs;
                    // orient each representative pair accordingly (the cost
                    // of a class pair is orientation-independent).
                    let (si, sj) = ordered(reps_shells[a1], reps_shells[a2]);
                    let (sk, sl) = ordered(reps_shells[b1], reps_shells[b2]);
                    let (sa, sb, sc, sd) = (
                        &basis.shells[si],
                        &basis.shells[sj],
                        &basis.shells[sk],
                        &basis.shells[sl],
                    );
                    let len =
                        sa.n_functions() * sb.n_functions() * sc.n_functions() * sd.n_functions();
                    eri_buf.clear();
                    eri_buf.resize(len, 0.0);
                    let (bra, ket) = (pairs.pair(si, sj), pairs.pair(sk, sl));
                    // Warm up once, then time batches until the window is
                    // long enough to trust.
                    engine.shell_quartet_pairs(bra, ket, &mut eri_buf);
                    let mut total_reps = 0u64;
                    let start = Instant::now();
                    loop {
                        for _ in 0..16 {
                            engine.shell_quartet_pairs(bra, ket, &mut eri_buf);
                            let mut sink = TriSink { buf: &mut fbuf, n };
                            digest_quartet(basis, si, sj, sk, sl, &eri_buf, &d, &mut sink);
                        }
                        total_reps += 16;
                        if start.elapsed().as_secs_f64() >= MIN_WINDOW_S {
                            break;
                        }
                    }
                    ns[bra_pc * npc + ket_pc] =
                        start.elapsed().as_secs_f64() * 1e9 / total_reps as f64;
                }
            }
        }
    }
    EriCostTable { n_pair_classes: npc, ns }
}

#[inline]
fn ordered(a: usize, b: usize) -> (usize, usize) {
    if a >= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;

    #[test]
    fn calibration_produces_sane_magnitudes() {
        let b = BasisSet::build(&small::c_ring(6, 1.39), BasisName::B631gd);
        let pairs = ShellPairs::build(&b);
        let classes = ShellClasses::classify(&b);
        let t = calibrate_eri_costs(&b, &pairs, &classes);
        for v in &t.ns {
            assert!(*v > 10.0, "quartet under 10 ns is implausible: {v}");
            assert!(*v < 1e7, "quartet over 10 ms is implausible: {v}");
        }
        // The heaviest contraction (S6 pairs both sides: 36x36 primitive
        // quartets) must beat the lightest (D1 pairs: 1). The true ratio is
        // ~100x; the loose bound tolerates timer noise when the test suite
        // shares one core.
        let pc = |a: usize, b: usize| a * (a + 1) / 2 + b;
        assert!(
            t.get(pc(0, 0), pc(0, 0)) > 1.5 * t.get(pc(3, 3), pc(3, 3)),
            "S6 quartet {} ns vs D1 quartet {} ns",
            t.get(pc(0, 0), pc(0, 0)),
            t.get(pc(3, 3), pc(3, 3))
        );
    }
}
