//! Translate the exact screened workload statistics into cost-weighted
//! task lists for the simulator.

use crate::cost::EriCostTable;
use phi_chem::BasisSet;
use phi_integrals::screening::WorkloadStats;

/// One MPI task with its nominal single-thread cost.
#[derive(Clone, Copy, Debug)]
pub struct SimTask {
    pub i: u32,
    pub j: u32,
    /// Nominal-thread seconds of ERI + digestion work.
    pub cost_s: f64,
    /// Surviving quartets inside the task (thread-level work items).
    pub n_items: u64,
}

/// The screened workload of one Fock-build iteration, cost-weighted.
#[derive(Clone, Debug)]
pub struct Workload {
    pub n_basis: usize,
    pub n_shells: usize,
    /// Canonical shell-pair count (the MPI-only / shared-Fock task space).
    pub total_pairs: usize,
    /// Surviving `ij` tasks in canonical order.
    pub ij_tasks: Vec<SimTask>,
    pub total_cost_s: f64,
    pub surviving_quartets: u128,
    /// Total canonical quartets (screened or not) — the Schwarz-check loop
    /// trip count of the non-prescreened algorithms.
    pub total_quartets: u128,
    /// Sum of `klmax` over surviving tasks — the check trip count of the
    /// prescreened shared-Fock algorithm.
    pub sum_klmax_tasks: u128,
    pub max_shell_width: usize,
}

impl Workload {
    /// Build from the exact screening statistics plus a cost table.
    pub fn build(basis: &BasisSet, stats: &WorkloadStats, eri: &EriCostTable) -> Workload {
        assert_eq!(stats.n_pair_classes(), eri.n_pair_classes, "cost table class mismatch");
        let npc = stats.n_pair_classes();
        let mut ij_tasks = Vec::with_capacity(stats.tasks.len());
        let mut total_cost = 0.0;
        let mut sum_klmax: u128 = 0;
        for (t, task) in stats.tasks.iter().enumerate() {
            let bra_pc = stats.classes.pair_class(task.i as usize, task.j as usize);
            let counts = &stats.kl_counts[t * npc..(t + 1) * npc];
            let mut cost_ns = 0.0;
            let mut items = 0u64;
            for (c, &cnt) in counts.iter().enumerate() {
                cost_ns += cnt as f64 * eri.get(bra_pc, c);
                items += cnt as u64;
            }
            let cost_s = cost_ns * 1e-9;
            total_cost += cost_s;
            let i = task.i as usize;
            sum_klmax += (i * (i + 1) / 2 + task.j as usize + 1) as u128;
            ij_tasks.push(SimTask { i: task.i, j: task.j, cost_s, n_items: items });
        }
        let ns = stats.n_shells;
        Workload {
            n_basis: basis.n_basis(),
            n_shells: ns,
            total_pairs: ns * (ns + 1) / 2,
            ij_tasks,
            total_cost_s: total_cost,
            surviving_quartets: stats.surviving_quartets(),
            total_quartets: stats.total_quartets,
            sum_klmax_tasks: sum_klmax,
            max_shell_width: basis.shells.iter().map(|s| s.n_functions()).max().unwrap_or(1),
        }
    }

    /// Group `ij` tasks by their `i` index — the MPI task space of
    /// Algorithm 2 (DLB over `i` only). Thread-level item counts become the
    /// collapsed `(j+1) x (k+1)` rectangle the OpenMP loop workshares.
    pub fn tasks_by_i(&self) -> Vec<SimTask> {
        let mut by_i: Vec<SimTask> = Vec::new();
        for t in &self.ij_tasks {
            match by_i.last_mut() {
                Some(last) if last.i == t.i => {
                    last.cost_s += t.cost_s;
                    last.n_items += t.n_items;
                }
                _ => by_i.push(*t),
            }
        }
        // The collapsed loop size is (i+1)^2 regardless of screening; items
        // for imbalance modelling should be the larger of surviving work
        // items and a floor of 1.
        for t in &mut by_i {
            t.j = 0;
            t.n_items = t.n_items.max(1);
        }
        by_i
    }

    /// Mean task cost (seconds) — a load-balance diagnostic.
    pub fn mean_task_cost(&self) -> f64 {
        if self.ij_tasks.is_empty() {
            0.0
        } else {
            self.total_cost_s / self.ij_tasks.len() as f64
        }
    }

    /// Largest single task cost — bounds the achievable makespan.
    pub fn max_task_cost(&self) -> f64 {
        self.ij_tasks.iter().fold(0.0f64, |m, t| m.max(t.cost_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_chem::basis::{BasisName, BasisSet};
    use phi_chem::geom::small;
    use phi_integrals::screening::{ShellClasses, WorkloadStats};
    use phi_integrals::Screening;

    fn workload_for(mol: &phi_chem::Molecule, tau: f64) -> (BasisSet, Workload) {
        let b = BasisSet::build(mol, BasisName::Sto3g);
        let s = Screening::compute(&b);
        let stats = WorkloadStats::compute(&b, &s, tau);
        let classes = ShellClasses::classify(&b);
        let eri = EriCostTable::analytic(&classes);
        let w = Workload::build(&b, &stats, &eri);
        (b, w)
    }

    #[test]
    fn costs_are_positive_and_sum() {
        let (_b, w) = workload_for(&small::water(), 1e-10);
        assert!(!w.ij_tasks.is_empty());
        let sum: f64 = w.ij_tasks.iter().map(|t| t.cost_s).sum();
        assert!((sum - w.total_cost_s).abs() < 1e-12 * sum.max(1.0));
        assert!(w.max_task_cost() > 0.0);
        assert!(w.max_task_cost() <= w.total_cost_s);
    }

    #[test]
    fn grouping_by_i_preserves_total_cost() {
        let (_b, w) = workload_for(&small::h_chain(10, 2.5), 1e-10);
        let by_i = w.tasks_by_i();
        assert!(by_i.len() <= w.n_shells);
        let sum: f64 = by_i.iter().map(|t| t.cost_s).sum();
        assert!((sum - w.total_cost_s).abs() < 1e-12 * sum.max(1.0));
        // i values strictly increasing after grouping.
        for pair in by_i.windows(2) {
            assert!(pair[0].i < pair[1].i);
        }
    }

    #[test]
    fn screening_shrinks_the_workload() {
        let mol = small::h_chain(12, 4.0);
        let (_b1, loose) = workload_for(&mol, 1e-4);
        let (_b2, tight) = workload_for(&mol, 1e-12);
        assert!(loose.total_cost_s < tight.total_cost_s);
        assert!(loose.surviving_quartets < tight.surviving_quartets);
    }
}
