//! Cost model: per-quartet ERI costs by shell-class pair, synchronization
//! and runtime overheads, and the knobs tying them to the KNL machine.

use phi_integrals::screening::ShellClasses;

/// Per-quartet ERI + digestion cost table, nanoseconds on one *nominal*
/// thread (the calibration host's single thread), indexed by
/// `[bra pair class][ket pair class]`.
#[derive(Clone, Debug)]
pub struct EriCostTable {
    pub n_pair_classes: usize,
    pub ns: Vec<f64>,
}

impl EriCostTable {
    pub fn get(&self, bra_pc: usize, ket_pc: usize) -> f64 {
        self.ns[bra_pc * self.n_pair_classes + ket_pc]
    }

    /// Analytic fallback: quartet cost scales with the primitive-quartet
    /// count times the component-quartet count of the two pairs. Used when
    /// wall-clock calibration is unavailable (tests, cross-checks).
    pub fn analytic(classes: &ShellClasses) -> EriCostTable {
        let npc = classes.n_pair_classes();
        let nc = classes.n_classes();
        // Per-pair-class primitive and function products.
        let mut pair_prims = vec![0.0; npc];
        let mut pair_fns = vec![0.0; npc];
        for a in 0..nc {
            for b in 0..=a {
                let pc = a * (a + 1) / 2 + b;
                let (fa, pa, _) = classes.descr[a];
                let (fb, pb, _) = classes.descr[b];
                pair_prims[pc] = (pa * pb) as f64;
                pair_fns[pc] = (fa * fb) as f64;
            }
        }
        let mut ns = vec![0.0; npc * npc];
        for bra in 0..npc {
            for ket in 0..npc {
                // ~110 ns per primitive quartet (E tables + R table) plus
                // ~6 ns per output component (Hermite sums + digestion) —
                // the rough proportions measured on the real engine.
                ns[bra * npc + ket] =
                    110.0 * pair_prims[bra] * pair_prims[ket] + 6.0 * pair_fns[bra] * pair_fns[ket];
            }
        }
        EriCostTable { n_pair_classes: npc, ns }
    }
}

/// All model constants in one place, with defaults chosen for the KNL
/// machine the paper benchmarks. Durations in seconds unless suffixed.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Per-quartet costs (nominal-thread nanoseconds).
    pub eri: EriCostTable,
    /// Ratio of one nominal (calibration host) thread to one KNL core at
    /// one thread per core. KNL cores are narrow in-order-flavoured cores
    /// at 1.3 GHz.
    pub knl_slowdown: f64,
    /// DLB counter claim latency: on-node atomic vs off-node RPC.
    pub dlb_on_node_s: f64,
    pub dlb_off_node_s: f64,
    /// Serialized service time at the counter's home NIC per fetch-add
    /// (Aries offloads these in hardware, so it is far below the per-claim
    /// round-trip latency).
    pub dlb_service_s: f64,
    /// Team barrier: base plus per-log2(threads) term.
    pub barrier_base_s: f64,
    pub barrier_per_log2_thread_s: f64,
    /// Buffer flush cost per matrix element (reads one element per thread
    /// column plus one shared add).
    pub flush_per_element_s: f64,
    /// Extra shared-Fock cost per quartet for atomic adds.
    pub atomic_per_quartet_s: f64,
    /// Shared-Fock write contention: fractional slowdown per log2(threads)
    /// from many threads updating one matrix (cache-line ping-pong). This
    /// is the paper's "synchronization overhead" that lets private Fock
    /// win on a single node (§6.1) — ~15% at 64 threads.
    pub shared_write_contention: f64,
    /// Fraction of ERI time that is memory-bandwidth sensitive.
    pub mem_fraction: f64,
    /// Reference bandwidth at which `eri` costs were taken (GB/s).
    pub reference_bw_gbs: f64,
    /// Penalty factor per fully-saturated MCDRAM of replicated footprint
    /// (cache pressure of many fat processes).
    pub cache_pressure: f64,
    /// Migration penalty for unpinned threads (affinity "none").
    pub migration_penalty: f64,
    /// Uniform scale applied to every simulated time, set by anchoring one
    /// simulated point to one published number (see scenarios).
    pub time_scale: f64,
}

impl CostModel {
    pub fn new(eri: EriCostTable) -> CostModel {
        CostModel {
            eri,
            knl_slowdown: 3.0,
            dlb_on_node_s: 0.3e-6,
            dlb_off_node_s: 2.0e-6,
            dlb_service_s: 0.2e-6,
            barrier_base_s: 0.3e-6,
            barrier_per_log2_thread_s: 0.25e-6,
            flush_per_element_s: 1.0e-9,
            atomic_per_quartet_s: 120.0e-9,
            shared_write_contention: 0.025,
            mem_fraction: 0.25,
            reference_bw_gbs: 400.0,
            cache_pressure: 0.15,
            migration_penalty: 1.06,
            time_scale: 1.0,
        }
    }

    /// Barrier latency for a team of `t` threads.
    pub fn barrier_s(&self, t: usize) -> f64 {
        if t <= 1 {
            return 0.0;
        }
        self.barrier_base_s + self.barrier_per_log2_thread_s * (t as f64).log2()
    }

    /// Memory-bandwidth slowdown factor for an effective bandwidth.
    pub fn bandwidth_factor(&self, effective_bw_gbs: f64) -> f64 {
        (1.0 - self.mem_fraction) + self.mem_fraction * self.reference_bw_gbs / effective_bw_gbs
    }

    /// Cache-pressure factor for `footprint_gb` of per-node replicated
    /// data competing for the 16 GB MCDRAM cache.
    pub fn pressure_factor(&self, footprint_gb: f64, mcdram_gb: f64) -> f64 {
        1.0 + self.cache_pressure * (footprint_gb / mcdram_gb).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_chem::basis::{BasisName, BasisSet};
    use phi_chem::geom::small;

    fn carbon_classes() -> ShellClasses {
        let b = BasisSet::build(&small::c_ring(6, 1.39), BasisName::B631gd);
        ShellClasses::classify(&b)
    }

    #[test]
    fn analytic_costs_are_positive_and_ordered() {
        let classes = carbon_classes();
        let t = EriCostTable::analytic(&classes);
        for v in &t.ns {
            assert!(*v > 0.0);
        }
        // The (S6,S6)x(S6,S6) quartet (36x36 primitive quartets) must cost
        // more than the (D1,D1)x(D1,D1) quartet (1 primitive quartet).
        // Class ids from classify(): 0 = S6, 1 = L3, 2 = L1, 3 = D1.
        let pc = |a: usize, b: usize| a * (a + 1) / 2 + b;
        assert!(t.get(pc(0, 0), pc(0, 0)) > t.get(pc(3, 3), pc(3, 3)));
    }

    #[test]
    fn barrier_grows_with_threads() {
        let m = CostModel::new(EriCostTable::analytic(&carbon_classes()));
        assert_eq!(m.barrier_s(1), 0.0);
        assert!(m.barrier_s(64) > m.barrier_s(2));
    }

    #[test]
    fn bandwidth_factor_is_one_at_reference() {
        let m = CostModel::new(EriCostTable::analytic(&carbon_classes()));
        assert!((m.bandwidth_factor(400.0) - 1.0).abs() < 1e-12);
        assert!(m.bandwidth_factor(100.0) > 1.0);
        assert!(m.bandwidth_factor(100.0) < 2.0, "compute-bound code cannot slow 4x");
    }

    #[test]
    fn pressure_factor_saturates() {
        let m = CostModel::new(EriCostTable::analytic(&carbon_classes()));
        assert!((m.pressure_factor(0.0, 16.0) - 1.0).abs() < 1e-12);
        assert_eq!(m.pressure_factor(16.0, 16.0), m.pressure_factor(1000.0, 16.0));
    }
}
