//! Plain-text table rendering for the experiment binaries.

use std::fmt;

/// A printable table with a title, column headers and string rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Emit as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (c, cell) in r.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        writeln!(f, "=== {} ===", self.title)?;
        for (c, h) in self.headers.iter().enumerate() {
            write!(f, "{:>w$}  ", h, w = widths[c])?;
        }
        writeln!(f)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * ncol;
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            for (c, cell) in r.iter().enumerate() {
                write!(f, "{:>w$}  ", cell, w = widths[c])?;
            }
            writeln!(f)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Human-readable seconds.
pub fn fmt_secs(s: f64) -> String {
    if !s.is_finite() {
        return "-".into();
    }
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.3}")
    }
}

/// Human-readable gigabytes.
pub fn fmt_gb(gb: f64) -> String {
    if !gb.is_finite() {
        return "-".into();
    }
    if gb >= 100.0 {
        format!("{gb:.0}")
    } else if gb >= 1.0 {
        format!("{gb:.1}")
    } else {
        format!("{gb:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["1000".into(), "x".into(), "y".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("long-header"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(1234.5), "1234");
        assert_eq!(fmt_secs(12.34), "12.3");
        assert_eq!(fmt_secs(0.1234), "0.123");
        assert_eq!(fmt_secs(f64::INFINITY), "-");
        assert_eq!(fmt_gb(0.5), "0.50");
        assert_eq!(fmt_gb(417.2), "417");
    }
}
