//! Interconnect model: Aries dragonfly-flavoured collectives (paper §5.1:
//! Theta uses the Aries interconnect with dragonfly topology).

/// Network parameters for inter-node communication.
#[derive(Clone, Copy, Debug)]
pub struct Network {
    /// Per-hop message latency, seconds.
    pub alpha_s: f64,
    /// Injection bandwidth per node, GB/s.
    pub bandwidth_gbs: f64,
}

impl Default for Network {
    fn default() -> Self {
        // Aries-class numbers: ~1-2 us MPI latency, ~8-10 GB/s injection.
        Network { alpha_s: 1.5e-6, bandwidth_gbs: 8.0 }
    }
}

impl Network {
    /// Allreduce (`gsumf`) of `bytes` over `ranks` ranks spread over
    /// `nodes` nodes: tree latency over the nodes plus a pipelined
    /// reduce-scatter/allgather bandwidth term; on-node combining is
    /// charged at memory speed and is negligible next to the wire.
    pub fn allreduce_s(&self, bytes: f64, ranks: usize, nodes: usize) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let tree_depth = (nodes.max(2) as f64).log2().ceil();
        let latency = 2.0 * tree_depth * self.alpha_s;
        let bw = if nodes > 1 {
            2.0 * bytes / (self.bandwidth_gbs * 1e9)
        } else {
            // Single node: shared-memory reduction at ~50 GB/s effective.
            2.0 * bytes / 50e9
        };
        latency + bw
    }

    /// One remote DLB counter claim (an off-node atomic RPC).
    pub fn rpc_s(&self) -> f64 {
        2.0 * self.alpha_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_grows_with_bytes_and_nodes() {
        let n = Network::default();
        let small = n.allreduce_s(1e6, 256, 4);
        let big = n.allreduce_s(1e8, 256, 4);
        assert!(big > small);
        let wide = n.allreduce_s(1e6, 256 * 64, 256);
        assert!(wide > small);
    }

    #[test]
    fn single_rank_is_free() {
        let n = Network::default();
        assert_eq!(n.allreduce_s(1e9, 1, 1), 0.0);
    }

    #[test]
    fn on_node_reduction_beats_off_node() {
        let n = Network::default();
        assert!(n.allreduce_s(1e8, 4, 1) < n.allreduce_s(1e8, 4, 4));
    }
}
