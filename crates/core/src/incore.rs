//! In-core ("conventional") SCF: compute the surviving ERIs once, store
//! them, and replay them every iteration.
//!
//! GAMESS supports both direct SCF (recompute ERIs each iteration — what
//! the paper benchmarks, since the 30,240-function systems cannot store
//! their integrals) and conventional SCF. The in-core path completes the
//! functionality and gives the test suite a strong independent check: the
//! stored-integral Fock build must agree with every direct builder.
//!
//! [`IncoreEris`] implements [`FockBuilder`], so the SCF drivers treat the
//! replay as just another engine: whenever the stored integrals fit the
//! configured budget, iterations replay them — regardless of which direct
//! algorithm the run was configured with.
//!
//! Incremental (ΔD) SCF composes with the replay unchanged: the replay is
//! exact and linear in the density, so `G(ΔD)` accumulation is valid — but
//! it ignores the per-build density-max table (the integrals are already
//! stored; there is no ERI work to skip), so incremental mode brings no
//! savings here. The direct builders are where ΔD screening pays off.

use crate::fock::engine::{FockBuilder, FockContext};
use crate::fock::{digest_quartet_dens, kl_bounds, tri_to_full, DensitySet, GBuild, TriSink};
use crate::stats::FockBuildStats;
use phi_chem::BasisSet;
use phi_integrals::{EriEngine, Screening, ShellPairs};
use phi_linalg::Mat;
use std::time::Instant;

/// A stored list of surviving shell quartets and their integral blocks.
pub struct IncoreEris {
    /// `(i, j, k, l)` canonical shell indices of each stored quartet.
    quartets: Vec<(u32, u32, u32, u32)>,
    /// Offsets into `values` (quartets have varying block sizes).
    offsets: Vec<usize>,
    values: Vec<f64>,
    n_basis: usize,
}

impl IncoreEris {
    /// Compute and store every surviving quartet. Memory grows as O(N^4 /
    /// screening); `max_bytes` guards against accidental huge systems
    /// (returns `None` if the estimate exceeds it).
    pub fn compute(
        basis: &BasisSet,
        pairs: &ShellPairs,
        screening: &Screening,
        tau: f64,
        max_bytes: usize,
    ) -> Option<IncoreEris> {
        let ns = basis.n_shells();
        let mut engine = EriEngine::new();
        let mut quartets = Vec::new();
        let mut offsets = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        for i in 0..ns {
            for j in 0..=i {
                for k in 0..=i {
                    for l in 0..=kl_bounds(i, j, k) {
                        if !screening.survives(i, j, k, l, tau) {
                            continue;
                        }
                        let (bra, ket) = (pairs.pair(i, j), pairs.pair(k, l));
                        let len = bra.n_fn() * ket.n_fn();
                        if (values.len() + len) * 8 > max_bytes {
                            return None;
                        }
                        offsets.push(values.len());
                        values.resize(values.len() + len, 0.0);
                        let start = *offsets.last().expect("just pushed");
                        engine.shell_quartet_pairs(bra, ket, &mut values[start..start + len]);
                        quartets.push((i as u32, j as u32, k as u32, l as u32));
                    }
                }
            }
        }
        offsets.push(values.len());
        Some(IncoreEris { quartets, offsets, values, n_basis: basis.n_basis() })
    }

    pub fn n_quartets(&self) -> usize {
        self.quartets.len()
    }

    pub fn stored_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
    }

    /// Build the two-electron matrices for any [`DensitySet`] by replaying
    /// the stored integrals — no ERI evaluation.
    pub fn build_set(&self, basis: &BasisSet, dens: &DensitySet<'_>) -> GBuild {
        let _span = phi_trace::span("fock.build");
        let start = Instant::now();
        let work = dens.prepare();
        let nch = work.n_channels();
        let n = self.n_basis;
        let mut bufs = vec![0.0; nch * n * n];
        {
            let mut sinks: Vec<TriSink<'_>> =
                bufs.chunks_mut(n * n).map(|buf| TriSink { buf, n }).collect();
            for (q, &(i, j, k, l)) in self.quartets.iter().enumerate() {
                let vals = &self.values[self.offsets[q]..self.offsets[q + 1]];
                digest_quartet_dens(
                    basis, i as usize, j as usize, k as usize, l as usize, vals, &work, &mut sinks,
                );
            }
        }
        phi_trace::counter("quartets_computed", self.quartets.len() as u64);
        phi_trace::counter("quartets_screened", 0);
        phi_trace::counter("flushes", 0);
        GBuild::from_channels(
            bufs.chunks(n * n).map(|b| tri_to_full(b, n)).collect(),
            FockBuildStats {
                seconds: start.elapsed().as_secs_f64(),
                quartets_computed: self.quartets.len() as u64,
                ..Default::default()
            },
        )
    }

    /// Build `G(D)` by replaying the stored integrals (restricted wrapper
    /// over [`IncoreEris::build_set`]).
    pub fn build_g(&self, basis: &BasisSet, d: &Mat) -> GBuild {
        self.build_set(basis, &DensitySet::Restricted(d))
    }
}

impl FockBuilder for IncoreEris {
    fn build(&self, ctx: &FockContext<'_>, dens: &DensitySet<'_>) -> GBuild {
        self.build_set(ctx.basis, dens)
    }

    fn label(&self) -> &'static str {
        "in-core replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::serial::build_g_serial;
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;

    fn density(n: usize) -> Mat {
        Mat::from_fn(n, n, |i, j| {
            let (i, j) = if i >= j { (i, j) } else { (j, i) };
            0.2 + ((i * 7 + j) % 4) as f64 * 0.11
        })
    }

    fn pairs_and_screening(b: &BasisSet) -> (ShellPairs, Screening) {
        let pairs = ShellPairs::build(b);
        let s = Screening::from_pairs(b, &pairs);
        (pairs, s)
    }

    #[test]
    fn incore_matches_direct_for_every_density() {
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        let (pairs, s) = pairs_and_screening(&b);
        let tau = 1e-10;
        let eris = IncoreEris::compute(&b, &pairs, &s, tau, 1 << 30).expect("fits");
        for seed in 0..3 {
            let mut d = density(b.n_basis());
            d.scale(1.0 + seed as f64 * 0.5);
            let direct = build_g_serial(&b, &pairs, &s, tau, &d).g;
            let incore = eris.build_g(&b, &d).g;
            assert!(
                direct.max_abs_diff(&incore) < 1e-11,
                "seed {seed}: direct vs in-core differ by {}",
                direct.max_abs_diff(&incore)
            );
        }
    }

    #[test]
    fn incore_replays_unrestricted_sets() {
        // The stored-integral replay must agree with the direct serial
        // UHF digestion on both spin channels.
        use crate::fock::engine::FockContext;
        use crate::fock::serial::build_serial;
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let (pairs, s) = pairs_and_screening(&b);
        let tau = 1e-10;
        let eris = IncoreEris::compute(&b, &pairs, &s, tau, 1 << 30).expect("fits");
        let n = b.n_basis();
        let d_a = density(n);
        let mut d_b = density(n);
        d_b.scale(0.7);
        let dens = DensitySet::Unrestricted { alpha: &d_a, beta: &d_b };
        let ctx = FockContext::new(&b, &pairs, &s, tau);
        let direct = build_serial(&ctx, &dens);
        let replay = eris.build_set(&b, &dens);
        let direct_b = direct.g_beta.expect("beta channel");
        let replay_b = replay.g_beta.expect("beta channel");
        assert!(direct.g.max_abs_diff(&replay.g) < 1e-11);
        assert!(direct_b.max_abs_diff(&replay_b) < 1e-11);
    }

    #[test]
    fn quartet_count_matches_direct_build() {
        let b = BasisSet::build(&small::methane(), BasisName::Sto3g);
        let (pairs, s) = pairs_and_screening(&b);
        let eris = IncoreEris::compute(&b, &pairs, &s, 1e-10, 1 << 30).expect("fits");
        let direct = build_g_serial(&b, &pairs, &s, 1e-10, &density(b.n_basis()));
        assert_eq!(eris.n_quartets() as u64, direct.stats.quartets_computed);
        assert!(eris.stored_bytes() > 0);
    }

    #[test]
    fn memory_guard_refuses_oversized_stores() {
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        let (pairs, s) = pairs_and_screening(&b);
        assert!(
            IncoreEris::compute(&b, &pairs, &s, 1e-10, 1024).is_none(),
            "1 KB cannot hold water ERIs"
        );
    }

    #[test]
    fn replay_does_no_eri_work() {
        // The whole point of conventional SCF: iteration cost drops once
        // integrals are stored. Asserted deterministically — the replay
        // evaluates zero primitive quartets while the direct build pays
        // for all of them — instead of racing wall-clock timers, which
        // was flaky on loaded machines and debug builds.
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let eris = IncoreEris::compute(&b, &pairs, &s, 1e-10, 1 << 30).expect("fits");
        let direct = build_g_serial(&b, &pairs, &s, 1e-10, &d);
        let incore = eris.build_g(&b, &d);
        assert!(direct.stats.prim_quartets > 0, "direct build evaluates primitives");
        assert_eq!(incore.stats.prim_quartets, 0, "replay never touches the ERI engine");
        assert_eq!(incore.stats.quartets_computed, direct.stats.quartets_computed);
    }
}
