//! Initial guess for the SCF iterations.
//!
//! The paper's workflow (§3): build the core Hamiltonian, diagonalize it in
//! the orthogonalized basis, occupy the lowest orbitals, and form the
//! initial density from the resulting MO coefficients.

use phi_linalg::{eigh, Mat};

/// Solve the Roothaan equations `F C = S C eps` for a given Fock matrix
/// using a precomputed orthogonalizer `X` (`Xᵀ S X = 1`): diagonalize
/// `F' = Xᵀ F X`, back-transform `C = X C'`.
///
/// Returns `(orbital energies, C)` with orbitals sorted by energy.
pub fn solve_roothaan(f: &Mat, x: &Mat) -> (Vec<f64>, Mat) {
    let f_prime = f.congruence(x);
    let eig = eigh(&f_prime);
    let c = x.matmul(&eig.vectors);
    (eig.values, c)
}

/// Closed-shell density matrix `D = 2 C_occ C_occᵀ` from the `n_occ`
/// lowest orbitals.
pub fn density_from_orbitals(c: &Mat, n_occ: usize) -> Mat {
    let n = c.rows();
    let mut d = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut v = 0.0;
            for k in 0..n_occ {
                v += c[(i, k)] * c[(j, k)];
            }
            v *= 2.0;
            d[(i, j)] = v;
            d[(j, i)] = v;
        }
    }
    d
}

/// Core-Hamiltonian guess: diagonalize `H_core` itself.
pub fn core_guess(h: &Mat, x: &Mat, n_occ: usize) -> Mat {
    let (_e, c) = solve_roothaan(h, x);
    density_from_orbitals(&c, n_occ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_chem::basis::{BasisName, BasisSet};
    use phi_chem::geom::small;
    use phi_integrals::{kinetic_matrix, nuclear_attraction_matrix, overlap_matrix};
    use phi_linalg::sym_inv_sqrt;

    fn water_setup() -> (Mat, Mat, usize) {
        let mol = small::water();
        let b = BasisSet::build(&mol, BasisName::Sto3g);
        let s = overlap_matrix(&b);
        let h = kinetic_matrix(&b).add(&nuclear_attraction_matrix(&b, &mol));
        let x = sym_inv_sqrt(&s, 1e-8);
        (h, x, mol.n_occupied())
    }

    #[test]
    fn guess_density_has_correct_electron_count() {
        let (h, x, n_occ) = water_setup();
        let d = core_guess(&h, &x, n_occ);
        // tr(D S) = N_electrons; with X from the same S:
        let mol = small::water();
        let b = BasisSet::build(&mol, BasisName::Sto3g);
        let s = overlap_matrix(&b);
        let tr = d.matmul(&s).trace();
        assert!((tr - 2.0 * n_occ as f64).abs() < 1e-8, "tr(DS) = {tr}");
    }

    #[test]
    fn guess_density_is_symmetric_and_idempotent_in_s_metric() {
        let (h, x, n_occ) = water_setup();
        let d = core_guess(&h, &x, n_occ);
        assert!(d.is_symmetric(1e-12));
        // D S D = 2 D for an idempotent closed-shell density.
        let mol = small::water();
        let b = BasisSet::build(&mol, BasisName::Sto3g);
        let s = overlap_matrix(&b);
        let dsd = d.matmul(&s).matmul(&d);
        let mut d2 = d.clone();
        d2.scale(2.0);
        assert!(dsd.max_abs_diff(&d2) < 1e-8);
    }

    #[test]
    fn orbital_energies_sorted() {
        let (h, x, _) = water_setup();
        let (e, _c) = solve_roothaan(&h, &x);
        for w in e.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn orbitals_are_s_orthonormal() {
        let (h, x, _) = water_setup();
        let (_e, c) = solve_roothaan(&h, &x);
        let mol = small::water();
        let b = BasisSet::build(&mol, BasisName::Sto3g);
        let s = overlap_matrix(&b);
        let ctsc = s.congruence(&c);
        assert!(ctsc.max_abs_diff(&Mat::identity(c.cols())) < 1e-8);
    }
}
