//! Distribution-aware matrix layer: how builders *read* density and
//! *write* Fock contributions, independent of where the matrices live.
//!
//! The read side is [`DensityView`], the write side [`FockAccumulator`];
//! each has two backends:
//!
//! * **Replicated** — the matrices exist in full on every rank.
//!   [`ReplicatedFock`] owns the per-channel lower-triangle accumulation
//!   buffers every replicated builder (serial, MPI-only, private-Fock,
//!   shared-Fock) digests into, and `DensityView::Replicated` wraps the
//!   prepared [`DensityWork`]. The replicated read path stays on the
//!   monomorphic digestion in `fock/mod.rs` — this layer adds no cost to
//!   the paper's three algorithms.
//! * **RowShard** — the matrices live in tri-packed row shards inside
//!   [`phi_dmpi::DistributedArray`] windows, striped over ranks.
//!   [`ShardDensity`] reads rows on demand through `get` with a bounded
//!   row cache; [`RowShardFock`] buffers contributions sparsely and
//!   flushes them as coalesced `acc` runs. No rank ever materializes a
//!   full `N x N` matrix — per-rank memory is the owned window stripes
//!   plus two O(N) caches.
//!
//! The tri-packed layout stores the lower triangle row-major:
//! element `(p, q)` with `p >= q` lives at `p (p + 1) / 2 + q`, so one
//! matrix costs `N (N + 1) / 2` words total across all ranks instead of
//! `N^2` words *per* rank.

use super::{DensityWork, FockSink, TriSink};
use phi_chem::BasisSet;
use phi_dmpi::{DdiMode, DistributedArray};
use phi_linalg::Mat;
use std::collections::{HashMap, VecDeque};

/// Length of a tri-packed lower triangle of an `n x n` symmetric matrix.
#[inline]
pub fn tri_len(n: usize) -> usize {
    n * (n + 1) / 2
}

/// Tri-packed index of element `(p, q)`, `p >= q`.
#[inline]
pub fn tri_index(p: usize, q: usize) -> usize {
    debug_assert!(p >= q);
    p * (p + 1) / 2 + q
}

/// Row-cache capacity in *elements* for the sharded density reader.
/// O(N): big enough to keep the bra rows plus the sweeping ket rows of a
/// task hot, small enough that it never approaches a replicated matrix.
pub fn shard_cache_elems(n: usize) -> usize {
    (16 * n).max(1024)
}

/// Pending-entry capacity of the sharded Fock write buffer. Each entry is
/// 16 bytes (packed index + value); O(N) total.
pub fn shard_flush_entries(n: usize) -> usize {
    (8 * n).max(512)
}

// ---------------------------------------------------------------------
// Replicated backend (write side)
// ---------------------------------------------------------------------

/// The replicated write-side backend: per-channel lower-triangle
/// accumulation buffers owned in full by one rank (or one thread).
///
/// Centralizes the `vec![0.0; nch * n * n]` + [`TriSink`] +
/// `tri_to_full` boilerplate the replicated builders all shared.
pub struct ReplicatedFock {
    bufs: Vec<f64>,
    nch: usize,
    n: usize,
}

impl ReplicatedFock {
    pub fn new(nch: usize, n: usize) -> ReplicatedFock {
        ReplicatedFock { bufs: vec![0.0; nch * n * n], nch, n }
    }

    /// Wrap an existing channel-major lower-triangle buffer (e.g. the
    /// snapshot a `gsumf` reduction produced) in the replicated backend.
    pub fn from_raw(bufs: Vec<f64>, nch: usize, n: usize) -> ReplicatedFock {
        debug_assert_eq!(bufs.len(), nch * n * n);
        ReplicatedFock { bufs, nch, n }
    }

    /// Bytes this backend holds resident (for the live memory tracker).
    pub fn bytes(&self) -> usize {
        self.bufs.len() * std::mem::size_of::<f64>()
    }

    /// One [`TriSink`] per spin channel, borrowing the buffers.
    pub fn sinks(&mut self) -> Vec<TriSink<'_>> {
        let n = self.n;
        self.bufs.chunks_mut(n * n).map(|buf| TriSink { buf, n }).collect()
    }

    /// The raw channel-major accumulation buffer (e.g. for `gsumf`).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.bufs
    }

    pub fn as_slice(&self) -> &[f64] {
        &self.bufs
    }

    /// Sum another replica into this one (the OpenMP
    /// `reduction(+ : Fock)` step of Algorithm 2).
    pub fn reduce_from(&mut self, other: &ReplicatedFock) {
        debug_assert_eq!(self.bufs.len(), other.bufs.len());
        for (dst, src) in self.bufs.iter_mut().zip(&other.bufs) {
            *dst += src;
        }
    }

    /// Mirror each channel's lower triangle into a full symmetric matrix.
    pub fn into_mats(self) -> Vec<Mat> {
        let n = self.n;
        let _ = self.nch;
        self.bufs.chunks(n * n).map(|b| super::tri_to_full(b, n)).collect()
    }
}

// ---------------------------------------------------------------------
// RowShard backend (read side)
// ---------------------------------------------------------------------

/// Scatter a prepared density into tri-packed DDI windows, striped over
/// `n_ranks`. Restricted input yields one window (`D`); unrestricted
/// input yields three (`D_total`, `D_alpha`, `D_beta`) so Coulomb and
/// per-spin exchange reads each have a home. Runs on the driver before
/// the world starts; the windows outlive rank deaths.
pub fn scatter_density(
    work: &DensityWork<'_>,
    n: usize,
    n_ranks: usize,
    mode: DdiMode,
) -> Vec<DistributedArray> {
    let pack = |m: &Mat| {
        let mut buf = vec![0.0; tri_len(n)];
        for p in 0..n {
            for q in 0..=p {
                buf[tri_index(p, q)] = m[(p, q)];
            }
        }
        let win = DistributedArray::new_with_mode(tri_len(n), n_ranks, mode);
        win.put(0, 0, &buf);
        win
    };
    match work {
        DensityWork::Restricted(d) => vec![pack(d)],
        DensityWork::Unrestricted { total, alpha, beta } => {
            vec![pack(total), pack(alpha), pack(beta)]
        }
    }
}

/// Gather a tri-packed Fock window back into a full symmetric matrix
/// (driver side, after the world has finished accumulating).
pub fn gather_tri(win: &DistributedArray, n: usize) -> Mat {
    let mut buf = vec![0.0; tri_len(n)];
    win.get(0, 0, &mut buf);
    let mut m = Mat::zeros(n, n);
    for p in 0..n {
        for q in 0..=p {
            let v = buf[tri_index(p, q)];
            m[(p, q)] = v;
            m[(q, p)] = v;
        }
    }
    m
}

/// Read side of the RowShard backend: on-demand tri-packed row fetches
/// from the density windows with a bounded FIFO row cache.
///
/// Window 0 is the Coulomb source (`D` restricted, `D_total` UHF);
/// windows `1..` are the per-spin exchange densities of a UHF build.
pub struct ShardDensity<'a> {
    wins: &'a [DistributedArray],
    rank: usize,
    /// `(window, row) -> row values [row*(row+1)/2 .. +row+1)`.
    cache: HashMap<(u32, u32), Vec<f64>>,
    /// FIFO eviction order of cached rows.
    order: VecDeque<(u32, u32)>,
    /// Elements currently cached / capacity in elements.
    cached_elems: usize,
    cap_elems: usize,
}

impl<'a> ShardDensity<'a> {
    pub fn new(wins: &'a [DistributedArray], n: usize, rank: usize) -> ShardDensity<'a> {
        ShardDensity {
            wins,
            rank,
            cache: HashMap::new(),
            order: VecDeque::new(),
            cached_elems: 0,
            cap_elems: shard_cache_elems(n),
        }
    }

    /// Number of spin output channels this density feeds (1 restricted,
    /// 2 unrestricted).
    pub fn n_out(&self) -> usize {
        if self.wins.len() == 1 {
            1
        } else {
            2
        }
    }

    /// Exchange scale: RHF digests `-X/2 * D`, UHF `-X * D_s`.
    pub fn k_factor(&self) -> f64 {
        if self.wins.len() == 1 {
            -0.5
        } else {
            -1.0
        }
    }

    fn row(&mut self, win: usize, r: usize) -> &[f64] {
        let key = (win as u32, r as u32);
        if !self.cache.contains_key(&key) {
            while self.cached_elems + r + 1 > self.cap_elems {
                match self.order.pop_front() {
                    Some(old) => {
                        if let Some(v) = self.cache.remove(&old) {
                            self.cached_elems -= v.len();
                        }
                    }
                    None => break, // single row larger than cap: cache it anyway
                }
            }
            let mut buf = vec![0.0; r + 1];
            self.wins[win].get(self.rank, tri_index(r, 0), &mut buf);
            self.cached_elems += buf.len();
            self.cache.insert(key, buf);
            self.order.push_back(key);
        }
        &self.cache[&key]
    }

    /// Symmetric element read from window `win`.
    fn value(&mut self, win: usize, p: usize, q: usize) -> f64 {
        let (r, c) = if p >= q { (p, q) } else { (q, p) };
        self.row(win, r)[c]
    }

    /// Coulomb-source element (`D` or `D_total`).
    pub fn coulomb(&mut self, p: usize, q: usize) -> f64 {
        self.value(0, p, q)
    }

    /// Exchange-source element for spin channel `ch`.
    pub fn exchange(&mut self, ch: usize, p: usize, q: usize) -> f64 {
        let win = if self.wins.len() == 1 { 0 } else { 1 + ch };
        self.value(win, p, q)
    }

    /// Bytes of bounded per-rank state (the row cache at capacity).
    pub fn budget_bytes(&self) -> usize {
        self.cap_elems * std::mem::size_of::<f64>()
    }
}

// ---------------------------------------------------------------------
// RowShard backend (write side)
// ---------------------------------------------------------------------

/// Write side of the RowShard backend: contributions are buffered as
/// sparse `(channel, tri index, value)` entries and flushed as coalesced
/// one-sided `acc` runs into the tri-packed Fock windows.
///
/// Durability contract (the PR 3 fault model): a kill can only fire
/// inside `lease_next`, i.e. *between* tasks — so as long as the builder
/// flushes before `lease_complete` of each task (flush-then-complete,
/// like the distributed builder), a dead rank never strands completed
/// work, and capacity-triggered flushes mid-task are safe in every mode.
pub struct RowShardFock<'a> {
    wins: &'a [DistributedArray],
    rank: usize,
    /// Packed key: `channel << 48 | tri index`.
    pending: Vec<(u64, f64)>,
    cap: usize,
    /// One-sided `acc` runs issued so far.
    pub flushes: u64,
}

impl<'a> RowShardFock<'a> {
    pub fn new(wins: &'a [DistributedArray], n: usize, rank: usize) -> RowShardFock<'a> {
        let cap = shard_flush_entries(n);
        RowShardFock { wins, rank, pending: Vec::with_capacity(cap), cap, flushes: 0 }
    }

    /// Canonical update `F_ch[mu, nu] += v` (`mu >= nu`).
    #[inline]
    pub fn add(&mut self, ch: usize, mu: usize, nu: usize, v: f64) {
        debug_assert!(mu >= nu);
        self.pending.push((((ch as u64) << 48) | tri_index(mu, nu) as u64, v));
    }

    /// Whether the pending buffer has reached its capacity.
    pub fn full(&self) -> bool {
        self.pending.len() >= self.cap
    }

    /// Sort, merge and accumulate every pending entry into the windows as
    /// contiguous runs, then clear the buffer.
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.pending.sort_unstable_by_key(|&(k, _)| k);
        let mut run_start_key = self.pending[0].0;
        let mut run: Vec<f64> = Vec::new();
        let mut last_key = run_start_key;
        let mut acc = 0.0;
        let flush_run = |this_flushes: &mut u64,
                         wins: &[DistributedArray],
                         rank: usize,
                         start_key: u64,
                         vals: &[f64]| {
            let ch = (start_key >> 48) as usize;
            let lo = (start_key & 0xFFFF_FFFF_FFFF) as usize;
            wins[ch].acc(rank, lo, vals);
            *this_flushes += 1;
        };
        for &(key, v) in &self.pending {
            if key == last_key {
                acc += v;
                continue;
            }
            run.push(acc);
            if key != last_key + 1 || (key >> 48) != (last_key >> 48) {
                flush_run(&mut self.flushes, self.wins, self.rank, run_start_key, &run);
                run.clear();
                run_start_key = key;
            }
            last_key = key;
            acc = v;
        }
        run.push(acc);
        flush_run(&mut self.flushes, self.wins, self.rank, run_start_key, &run);
        self.pending.clear();
    }

    /// Bytes of bounded per-rank state (the pending buffer at capacity).
    pub fn budget_bytes(&self) -> usize {
        self.cap * std::mem::size_of::<(u64, f64)>()
    }
}

// ---------------------------------------------------------------------
// The unified view/accumulator pair and generic digestion
// ---------------------------------------------------------------------

/// Read side of one Fock build: where density elements come from.
pub enum DensityView<'a> {
    /// Full matrices on this rank (wraps the prepared [`DensityWork`]).
    Replicated(&'a DensityWork<'a>),
    /// Tri-packed DDI row shards with a bounded row cache.
    RowShard(ShardDensity<'a>),
}

impl DensityView<'_> {
    pub fn n_out(&self) -> usize {
        match self {
            DensityView::Replicated(w) => w.n_channels(),
            DensityView::RowShard(s) => s.n_out(),
        }
    }

    pub fn k_factor(&self) -> f64 {
        match self {
            DensityView::Replicated(w) => match w {
                DensityWork::Restricted(_) => -0.5,
                DensityWork::Unrestricted { .. } => -1.0,
            },
            DensityView::RowShard(s) => s.k_factor(),
        }
    }

    /// Coulomb-source element (`D` restricted, `D_total` UHF).
    #[inline]
    pub fn coulomb(&mut self, p: usize, q: usize) -> f64 {
        match self {
            DensityView::Replicated(w) => match w {
                DensityWork::Restricted(d) => d[(p, q)],
                DensityWork::Unrestricted { total, .. } => total[(p, q)],
            },
            DensityView::RowShard(s) => s.coulomb(p, q),
        }
    }

    /// Exchange-source element for spin channel `ch`.
    #[inline]
    pub fn exchange(&mut self, ch: usize, p: usize, q: usize) -> f64 {
        match self {
            DensityView::Replicated(w) => match w {
                DensityWork::Restricted(d) => d[(p, q)],
                DensityWork::Unrestricted { alpha, beta, .. } => {
                    if ch == 0 {
                        alpha[(p, q)]
                    } else {
                        beta[(p, q)]
                    }
                }
            },
            DensityView::RowShard(s) => s.exchange(ch, p, q),
        }
    }
}

/// Write side of one Fock build: where canonical updates land.
pub enum FockAccumulator<'a> {
    Replicated(ReplicatedFock),
    RowShard(RowShardFock<'a>),
}

impl FockAccumulator<'_> {
    #[inline]
    pub fn add(&mut self, ch: usize, mu: usize, nu: usize, v: f64) {
        match self {
            FockAccumulator::Replicated(r) => {
                let n = r.n;
                r.bufs[ch * n * n + mu * n + nu] += v;
            }
            FockAccumulator::RowShard(s) => s.add(ch, mu, nu, v),
        }
    }
}

/// Digest one canonical shell quartet through the distribution-aware
/// layer: reads via [`DensityView`], writes via [`FockAccumulator`].
///
/// Semantically identical to the monomorphic `digest_quartet_dens` —
/// per unique ordered tuple `(a,b,c,e)` of the integral's orbit,
/// Coulomb `F_ch[ab] += D_J[ce] * X` into every spin channel and
/// exchange `F_ch[ac] += k * X * D_ch[be]` with `k` = -1/2 (RHF) or
/// -1 (UHF). The replicated builders keep the monomorphic path for
/// speed; equivalence is asserted by this module's tests.
#[allow(clippy::too_many_arguments)]
pub fn digest_quartet_view(
    basis: &BasisSet,
    si: usize,
    sj: usize,
    sk: usize,
    sl: usize,
    quartet: &[f64],
    view: &mut DensityView<'_>,
    acc: &mut FockAccumulator<'_>,
) {
    let sh_i = &basis.shells[si];
    let sh_j = &basis.shells[sj];
    let sh_k = &basis.shells[sk];
    let sh_l = &basis.shells[sl];
    let (ni, nj, nk, nl) =
        (sh_i.n_functions(), sh_j.n_functions(), sh_k.n_functions(), sh_l.n_functions());
    let (fi, fj, fk, fl) = (sh_i.first_bf, sh_j.first_bf, sh_k.first_bf, sh_l.first_bf);
    let same_ij = si == sj;
    let same_kl = sk == sl;
    let same_pair = si == sk && sj == sl;
    let nch = view.n_out();
    let kf = view.k_factor();

    for a in 0..ni {
        let mu = fi + a;
        let b_hi = if same_ij { a + 1 } else { nj };
        for b in 0..b_hi {
            let nu = fj + b;
            let munu = mu * (mu + 1) / 2 + nu;
            for c in 0..nk {
                let lam = fk + c;
                let d_hi = if same_kl { c + 1 } else { nl };
                for dd in 0..d_hi {
                    let sig = fl + dd;
                    if same_pair && lam * (lam + 1) / 2 + sig > munu {
                        continue;
                    }
                    let x = quartet[((a * nj + b) * nk + c) * nl + dd];
                    if x == 0.0 {
                        continue;
                    }
                    let orbit = [
                        (mu, nu, lam, sig),
                        (nu, mu, lam, sig),
                        (mu, nu, sig, lam),
                        (nu, mu, sig, lam),
                        (lam, sig, mu, nu),
                        (sig, lam, mu, nu),
                        (lam, sig, nu, mu),
                        (sig, lam, nu, mu),
                    ];
                    for (idx, &(p, q, r, s)) in orbit.iter().enumerate() {
                        if orbit[..idx].contains(&(p, q, r, s)) {
                            continue;
                        }
                        if p >= q {
                            let j = view.coulomb(r, s) * x;
                            for ch in 0..nch {
                                acc.add(ch, p, q, j);
                            }
                        }
                        if p >= r {
                            for ch in 0..nch {
                                acc.add(ch, p, r, kf * x * view.exchange(ch, q, s));
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Row-buffer write backend of the *distributed* builder (N x N Fock
/// striped over ranks, full local scatter buffer): canonical updates land
/// in a row-major lower-triangle buffer, flushed as whole touched rows.
/// Predates the sparse [`RowShardFock`]; kept for the builder that
/// deliberately trades a full local buffer for fewer `acc` calls.
pub struct RowBufferFock {
    /// Lower-triangular accumulation for the rows this rank touched.
    pub buf: Vec<f64>,
    pub touched: Vec<bool>,
    pub n: usize,
}

impl RowBufferFock {
    pub fn new(n: usize) -> RowBufferFock {
        RowBufferFock { buf: vec![0.0; n * n], touched: vec![false; n], n }
    }

    /// Flush every touched row into the distributed array and clear it;
    /// returns the number of row segments accumulated.
    pub fn flush_rows(&mut self, fock: &DistributedArray, rank: usize) -> u64 {
        let n = self.n;
        let mut flushed = 0u64;
        for row in 0..n {
            if !self.touched[row] {
                continue;
            }
            self.touched[row] = false;
            // Lower-triangular row segment [row*n, row*n + row].
            let seg = &mut self.buf[row * n..row * n + row + 1];
            if seg.iter().any(|&v| v != 0.0) {
                fock.acc(rank, row * n, seg);
                seg.iter_mut().for_each(|v| *v = 0.0);
                flushed += 1;
            }
        }
        flushed
    }
}

impl FockSink for RowBufferFock {
    #[inline]
    fn add(&mut self, mu: usize, nu: usize, v: f64) {
        self.buf[mu * self.n + nu] += v;
        self.touched[mu] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::{serial::build_g_serial, DensitySet};
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;
    use phi_integrals::{EriEngine, Screening, ShellPairs};

    fn density(n: usize) -> Mat {
        Mat::from_fn(n, n, |i, j| {
            let (i, j) = if i >= j { (i, j) } else { (j, i) };
            0.2 + ((i * 5 + j * 7) % 8) as f64 * 0.05
        })
    }

    /// Full serial quartet sweep through the generic view/accumulator
    /// pair with the given backends; returns the per-channel matrices.
    fn sweep(
        b: &BasisSet,
        dens: &DensitySet<'_>,
        mut view: DensityView<'_>,
        mut acc: FockAccumulator<'_>,
    ) -> Vec<Mat> {
        let _ = dens;
        let pairs = ShellPairs::build(b);
        let s = Screening::from_pairs(b, &pairs);
        let ns = b.n_shells();
        let mut engine = EriEngine::new();
        let mut eri = Vec::new();
        for i in 0..ns {
            for j in 0..=i {
                for k in 0..=i {
                    for l in 0..=super::super::kl_bounds(i, j, k) {
                        if !s.survives(i, j, k, l, 1e-14) {
                            continue;
                        }
                        let (bra, ket) = (pairs.pair(i, j), pairs.pair(k, l));
                        eri.clear();
                        eri.resize(bra.n_fn() * ket.n_fn(), 0.0);
                        engine.shell_quartet_pairs(bra, ket, &mut eri);
                        digest_quartet_view(b, i, j, k, l, &eri, &mut view, &mut acc);
                    }
                }
            }
        }
        match acc {
            FockAccumulator::Replicated(r) => r.into_mats(),
            FockAccumulator::RowShard(mut s) => {
                s.flush();
                Vec::new() // caller gathers from the windows
            }
        }
    }

    #[test]
    fn replicated_view_matches_monomorphic_serial_digestion() {
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        let n = b.n_basis();
        let d = density(n);
        let pairs = ShellPairs::build(&b);
        let s = Screening::from_pairs(&b, &pairs);
        let want = build_g_serial(&b, &pairs, &s, 1e-14, &d).g;
        let dens = DensitySet::Restricted(&d);
        let work = dens.prepare();
        let mats = sweep(
            &b,
            &dens,
            DensityView::Replicated(&work),
            FockAccumulator::Replicated(ReplicatedFock::new(1, n)),
        );
        assert!(mats[0].max_abs_diff(&want) < 1e-12, "diff {}", mats[0].max_abs_diff(&want));
    }

    #[test]
    fn rowshard_backends_match_replicated_restricted_and_uhf() {
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        let n = b.n_basis();
        let d_a = density(n);
        let mut d_b = density(n);
        d_b.scale(0.7);
        for (label, dens) in [
            ("restricted", DensitySet::Restricted(&d_a)),
            ("unrestricted", DensitySet::Unrestricted { alpha: &d_a, beta: &d_b }),
        ] {
            let work = dens.prepare();
            let nch = dens.n_channels();
            let want = sweep(
                &b,
                &dens,
                DensityView::Replicated(&work),
                FockAccumulator::Replicated(ReplicatedFock::new(nch, n)),
            );
            for mode in [DdiMode::Mpi3OneSided, DdiMode::DataServer] {
                let d_wins = scatter_density(&work, n, 3, mode);
                let f_wins: Vec<DistributedArray> = (0..nch)
                    .map(|_| DistributedArray::new_with_mode(tri_len(n), 3, mode))
                    .collect();
                let mats = sweep(
                    &b,
                    &dens,
                    DensityView::RowShard(ShardDensity::new(&d_wins, n, 0)),
                    FockAccumulator::RowShard(RowShardFock::new(&f_wins, n, 0)),
                );
                assert!(mats.is_empty());
                for (ch, want_ch) in want.iter().enumerate() {
                    let got = gather_tri(&f_wins[ch], n);
                    assert!(
                        got.max_abs_diff(want_ch) < 1e-12,
                        "{label} ch {ch} {:?}: diff {}",
                        mode,
                        got.max_abs_diff(want_ch)
                    );
                }
            }
        }
    }

    #[test]
    fn shard_density_cache_stays_bounded_and_reads_symmetric() {
        let n = 40;
        let d = density(n);
        let dens = DensitySet::Restricted(&d);
        let work = dens.prepare();
        let wins = scatter_density(&work, n, 4, DdiMode::Mpi3OneSided);
        let mut reader = ShardDensity::new(&wins, n, 1);
        for p in 0..n {
            for q in 0..n {
                assert_eq!(reader.coulomb(p, q), d[(p, q)], "({p},{q})");
            }
        }
        assert!(reader.cached_elems <= reader.cap_elems.max(n));
    }

    #[test]
    fn rowshard_flush_merges_duplicates_and_coalesces_runs() {
        let n = 8;
        let wins = vec![DistributedArray::new(tri_len(n), 2)];
        let mut acc = RowShardFock::new(&wins, n, 0);
        acc.add(0, 3, 1, 2.0);
        acc.add(0, 3, 1, 0.5); // duplicate key: merged before the acc
        acc.add(0, 3, 2, 1.0); // adjacent: same run
        acc.add(0, 6, 0, 4.0); // separate run
        acc.flush();
        assert_eq!(acc.flushes, 2, "two coalesced runs");
        let m = gather_tri(&wins[0], n);
        assert_eq!(m[(3, 1)], 2.5);
        assert_eq!(m[(3, 2)], 1.0);
        assert_eq!(m[(6, 0)], 4.0);
        assert_eq!(m[(5, 5)], 0.0);
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let n = 17;
        let d = density(n);
        let dens = DensitySet::Restricted(&d);
        let work = dens.prepare();
        for mode in [DdiMode::Mpi3OneSided, DdiMode::DataServer] {
            let wins = scatter_density(&work, n, 5, mode);
            assert_eq!(gather_tri(&wins[0], n).max_abs_diff(&d), 0.0);
        }
    }
}
