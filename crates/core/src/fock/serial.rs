//! Serial reference Fock build: the canonical quartet loops of Algorithm 1
//! on a single thread, no MPI, no OpenMP. Ground truth for the parallel
//! builders and the baseline for workload statistics.

use super::engine::FockContext;
use super::matrix::ReplicatedFock;
use super::{digest_quartet_dens, kl_bounds, tri_to_full, DensitySet, TriSink};
// Re-exported here for backward compatibility: `GBuild` predates the
// unified engine layer and used to live in this module.
pub use super::GBuild;
use crate::stats::FockBuildStats;
use phi_chem::BasisSet;
use phi_integrals::{EriEngine, Screening, ShellPairs};
use phi_linalg::Mat;
use std::time::Instant;

/// Build the two-electron matrices for a [`DensitySet`] with the serial
/// canonical loops: `G(D)` for a restricted set, `G_alpha`/`G_beta` for an
/// unrestricted one — every surviving ERI evaluated once and digested into
/// every spin channel.
pub fn build_serial(ctx: &FockContext<'_>, dens: &DensitySet<'_>) -> GBuild {
    // One span + three counters per build — nothing per quartet, so the
    // serial path carries essentially zero tracing overhead (asserted by
    // benches/trace_overhead.rs).
    let _span = phi_trace::span("fock.build");
    let start = Instant::now();
    let basis = ctx.basis;
    let work = dens.prepare();
    let nch = work.n_channels();
    let n = basis.n_basis();
    let ns = basis.n_shells();
    let mut fock = ReplicatedFock::new(nch, n);
    let mut engine = ctx.engine();
    let mut quartets_computed = 0u64;
    let mut quartets_screened = 0u64;
    let mut eri_buf: Vec<f64> = Vec::new();

    {
        let mut sinks = fock.sinks();
        for i in 0..ns {
            for j in 0..=i {
                for k in 0..=i {
                    for l in 0..=kl_bounds(i, j, k) {
                        if !ctx.survives(i, j, k, l) {
                            quartets_screened += 1;
                            continue;
                        }
                        let (bra, ket) = (ctx.pairs.pair(i, j), ctx.pairs.pair(k, l));
                        eri_buf.clear();
                        eri_buf.resize(bra.n_fn() * ket.n_fn(), 0.0);
                        engine.shell_quartet_pairs(bra, ket, &mut eri_buf);
                        digest_quartet_dens(basis, i, j, k, l, &eri_buf, &work, &mut sinks);
                        quartets_computed += 1;
                    }
                }
            }
        }
    }

    phi_trace::counter("quartets_computed", quartets_computed);
    phi_trace::counter("quartets_screened", quartets_screened);
    phi_trace::counter("flushes", 0);
    phi_trace::counter("eri.spec_quartets", engine.spec_quartets_computed());
    // Per-class dispatch counters (serial reference only — the parallel
    // builders emit the aggregate above; see trace_invariants.rs).
    for (ci, &count) in engine.class_counts().iter().enumerate() {
        if count > 0 {
            phi_trace::counter(phi_integrals::CLASS_TRACE_NAMES[ci], count);
        }
    }

    let mats = fock.into_mats();
    GBuild::from_channels(
        mats,
        FockBuildStats {
            seconds: start.elapsed().as_secs_f64(),
            quartets_computed,
            quartets_screened,
            prim_quartets: engine.prim_quartets_computed(),
            eri_class_quartets: engine.class_counts().to_vec(),
            ..Default::default()
        },
    )
}

/// Build a generalized two-electron matrix
/// `M_{mu nu} = cj * J(D)_{mu nu} + |ck| * sign(ck) * K(D)_{mu nu}`
/// with the serial canonical loops. `(1, -0.5)` recovers the RHF `G`;
/// `(1, 0)` gives pure Coulomb, `(0, -1)` gives `-K` — the building blocks
/// of the UHF spin Fock matrices (and the reference the unified
/// unrestricted digestion is tested against).
pub fn build_jk_serial(
    basis: &BasisSet,
    pairs: &ShellPairs,
    screening: &Screening,
    tau: f64,
    d: &Mat,
    cj: f64,
    ck: f64,
) -> GBuild {
    use super::digest_value_scaled;
    let start = std::time::Instant::now();
    let n = basis.n_basis();
    let ns = basis.n_shells();
    let mut buf = vec![0.0; n * n];
    let mut engine = EriEngine::new();
    let mut quartets_computed = 0u64;
    let mut quartets_screened = 0u64;
    let mut eri_buf: Vec<f64> = Vec::new();

    for i in 0..ns {
        for j in 0..=i {
            for k in 0..=i {
                for l in 0..=kl_bounds(i, j, k) {
                    if !screening.survives(i, j, k, l, tau) {
                        quartets_screened += 1;
                        continue;
                    }
                    let (bra, ket) = (pairs.pair(i, j), pairs.pair(k, l));
                    eri_buf.clear();
                    eri_buf.resize(bra.n_fn() * ket.n_fn(), 0.0);
                    engine.shell_quartet_pairs(bra, ket, &mut eri_buf);
                    // Digest with custom J/K factors over canonical
                    // function quartets.
                    let sh =
                        [&basis.shells[i], &basis.shells[j], &basis.shells[k], &basis.shells[l]];
                    let (ni, nj, nk, nl) = (
                        sh[0].n_functions(),
                        sh[1].n_functions(),
                        sh[2].n_functions(),
                        sh[3].n_functions(),
                    );
                    let same_ij = i == j;
                    let same_kl = k == l;
                    let same_pair = i == k && j == l;
                    let mut sink = TriSink { buf: &mut buf, n };
                    for fa in 0..ni {
                        let mu = sh[0].first_bf + fa;
                        let b_hi = if same_ij { fa + 1 } else { nj };
                        for fb in 0..b_hi {
                            let nu = sh[1].first_bf + fb;
                            let munu = mu * (mu + 1) / 2 + nu;
                            for fc in 0..nk {
                                let lam = sh[2].first_bf + fc;
                                let d_hi = if same_kl { fc + 1 } else { nl };
                                for fd in 0..d_hi {
                                    let sig = sh[3].first_bf + fd;
                                    if same_pair && lam * (lam + 1) / 2 + sig > munu {
                                        continue;
                                    }
                                    let x = eri_buf[((fa * nj + fb) * nk + fc) * nl + fd];
                                    if x != 0.0 {
                                        digest_value_scaled(
                                            mu, nu, lam, sig, x, d, cj, ck, &mut sink,
                                        );
                                    }
                                }
                            }
                        }
                    }
                    quartets_computed += 1;
                }
            }
        }
    }
    let g = tri_to_full(&buf, n);
    GBuild::restricted(
        g,
        FockBuildStats {
            seconds: start.elapsed().as_secs_f64(),
            quartets_computed,
            quartets_screened,
            prim_quartets: engine.prim_quartets_computed(),
            ..Default::default()
        },
    )
}

/// Build `G(D)` with the serial canonical loops (restricted convenience
/// wrapper over [`build_serial`]). The quartet-independent pair data
/// (E tables, product centers, prefactors, folded normalization) comes
/// from the shared read-only `pairs` dataset.
pub fn build_g_serial(
    basis: &BasisSet,
    pairs: &ShellPairs,
    screening: &Screening,
    tau: f64,
    d: &Mat,
) -> GBuild {
    build_serial(&FockContext::new(basis, pairs, screening, tau), &DensitySet::Restricted(d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;

    fn pairs_and_screening(b: &BasisSet) -> (ShellPairs, Screening) {
        let pairs = ShellPairs::build(b);
        let s = Screening::from_pairs(b, &pairs);
        (pairs, s)
    }

    #[test]
    fn g_is_symmetric() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let n = b.n_basis();
        let mut d = Mat::identity(n);
        d.scale(0.4);
        let (pairs, s) = pairs_and_screening(&b);
        let g = build_g_serial(&b, &pairs, &s, 1e-12, &d).g;
        assert!(g.is_symmetric(1e-12));
    }

    #[test]
    fn g_is_linear_in_density() {
        let b = BasisSet::build(&small::hydrogen_molecule(1.4), BasisName::Sto3g);
        let n = b.n_basis();
        let (pairs, s) = pairs_and_screening(&b);
        let d1 = Mat::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.2 });
        let mut d2 = d1.clone();
        d2.scale(3.0);
        let g1 = build_g_serial(&b, &pairs, &s, 0.0, &d1).g;
        let g2 = build_g_serial(&b, &pairs, &s, 0.0, &d2).g;
        let mut g1x3 = g1.clone();
        g1x3.scale(3.0);
        assert!(g2.max_abs_diff(&g1x3) < 1e-10);
    }

    #[test]
    fn stats_are_populated() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let n = b.n_basis();
        let d = Mat::identity(n);
        let (pairs, s) = pairs_and_screening(&b);
        let out = build_g_serial(&b, &pairs, &s, 1e-10, &d);
        let ns = b.n_shells();
        // Total canonical quartets = P(P+1)/2 with P = ns(ns+1)/2.
        let p = ns * (ns + 1) / 2;
        assert_eq!(
            out.stats.quartets_computed + out.stats.quartets_screened,
            (p * (p + 1) / 2) as u64
        );
        assert!(out.stats.quartets_computed > 0);
        assert!(out.stats.prim_quartets > 0);
    }

    #[test]
    fn unrestricted_channels_match_jk_recombination() {
        // The single-pass UHF digestion must reproduce the three-pass
        // reference: G_s = J(D_a + D_b) - K(D_s).
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        let n = b.n_basis();
        let (pairs, s) = pairs_and_screening(&b);
        let d_a = Mat::from_fn(n, n, |i, j| {
            let (i, j) = if i >= j { (i, j) } else { (j, i) };
            0.15 + ((i * 3 + j) % 5) as f64 * 0.06
        });
        let d_b = Mat::from_fn(n, n, |i, j| {
            let (i, j) = if i >= j { (i, j) } else { (j, i) };
            0.1 + ((i + 2 * j) % 7) as f64 * 0.04
        });
        let d_t = d_a.add(&d_b);
        let ctx = FockContext::new(&b, &pairs, &s, 0.0);
        let got = build_serial(&ctx, &DensitySet::Unrestricted { alpha: &d_a, beta: &d_b });
        let j_t = build_jk_serial(&b, &pairs, &s, 0.0, &d_t, 1.0, 0.0).g;
        let k_a = build_jk_serial(&b, &pairs, &s, 0.0, &d_a, 0.0, -1.0).g;
        let k_b = build_jk_serial(&b, &pairs, &s, 0.0, &d_b, 0.0, -1.0).g;
        let want_a = j_t.add(&k_a);
        let want_b = j_t.add(&k_b);
        let got_b = got.g_beta.expect("unrestricted build has a beta channel");
        assert!(got.g.max_abs_diff(&want_a) < 1e-11, "alpha {}", got.g.max_abs_diff(&want_a));
        assert!(got_b.max_abs_diff(&want_b) < 1e-11, "beta {}", got_b.max_abs_diff(&want_b));
    }

    #[test]
    fn restricted_density_set_matches_legacy_wrapper() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let n = b.n_basis();
        let d = Mat::from_fn(n, n, |i, j| if i == j { 0.9 } else { 0.1 });
        let (pairs, s) = pairs_and_screening(&b);
        let ctx = FockContext::new(&b, &pairs, &s, 1e-12);
        let via_engine = build_serial(&ctx, &DensitySet::Restricted(&d));
        let via_wrapper = build_g_serial(&b, &pairs, &s, 1e-12, &d);
        assert_eq!(via_engine.g.max_abs_diff(&via_wrapper.g), 0.0);
        assert!(via_engine.g_beta.is_none());
    }
}
