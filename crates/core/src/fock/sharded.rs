//! Fully sharded Fock build: density *and* Fock live in tri-packed DDI
//! windows striped over ranks — no rank ever holds a full `N x N` matrix.
//!
//! This is the step past the paper's ~200x memory headline: Algorithm 3
//! stopped replicating Fock per *thread*; the HONPAS-lineage distributed
//! codes (and GAMESS's distributed-data SCF) stop replicating density and
//! Fock per *rank*. Each rank owns a `~N(N+1)/2 / R` stripe of every
//! window plus two O(N) caches:
//!
//! * reads go through [`ShardDensity`] — on-demand row `get`s
//!   with a bounded FIFO row cache;
//! * writes buffer in [`RowShardFock`] — sparse entries flushed
//!   as coalesced one-sided `acc` runs whenever the buffer fills and at
//!   task boundaries.
//!
//! Durability reuses the distributed builder's contract: windows are
//! created *outside* the world so flushed contributions survive rank
//! deaths, leases are [`LeaseMode::Durable`], and under fault injection
//! every task is flushed before it completes (kills only fire inside
//! `lease_next`, so a dead rank dies holding an unstarted task — never
//! stranding flushed-but-incomplete or completed-but-unflushed work).

use super::engine::FockContext;
use super::matrix::{
    digest_quartet_view, gather_tri, scatter_density, tri_len, DensityView, FockAccumulator,
    RowShardFock, ShardDensity,
};
use super::{kl_bounds, pair_decode, DensitySet};
use crate::stats::FockBuildStats;
use phi_chem::BasisSet;
use phi_dmpi::{DdiMode, DistributedArray, FaultPlan, LeaseMode, RetryPolicy, WorldConfig};
use phi_integrals::{Screening, ShellPairs};
use phi_linalg::Mat;
use std::time::Instant;

pub use super::GBuild;

/// Build the two-electron matrices for `dens` with DLB over `(i, j)`
/// pairs, sharded density reads and sharded Fock accumulation.
pub fn build_sharded(
    ctx: &FockContext<'_>,
    dens: &DensitySet<'_>,
    n_ranks: usize,
    mode: DdiMode,
    faults: Option<&FaultPlan>,
    retry: RetryPolicy,
) -> GBuild {
    let basis = ctx.basis;
    let n = basis.n_basis();
    let ns = basis.n_shells();
    let n_pair = ns * (ns + 1) / 2;
    let work = dens.prepare();
    let nch = work.n_channels();

    // All windows are created outside the world: the density scatter is
    // the driver's job (it already owns the full matrices), and the Fock
    // windows must survive rank deaths for the durable-lease contract.
    let reliable = |w: DistributedArray| match faults {
        Some(plan) => w.with_faults(plan, retry),
        None => w,
    };
    let d_wins: Vec<DistributedArray> =
        scatter_density(&work, n, n_ranks, mode).into_iter().map(reliable).collect();
    let f_wins: Vec<DistributedArray> = (0..nch)
        .map(|_| reliable(DistributedArray::new_with_mode(tri_len(n), n_ranks, mode)))
        .collect();

    let cfg = WorldConfig { n_ranks, faults: faults.cloned(), retry };
    let world = phi_dmpi::run_world_with_config(cfg, |rank| {
        let _span = phi_trace::span("fock.build");
        let start = Instant::now();
        let mut view = DensityView::RowShard(ShardDensity::new(&d_wins, n, rank.rank()));
        let mut acc = FockAccumulator::RowShard(RowShardFock::new(&f_wins, n, rank.rank()));
        // Per-rank resident bytes: this rank's owned stripe of every
        // window plus the two bounded caches plus the shared read-only
        // pair dataset. Nothing here scales as a full N x N matrix.
        let stripe_bytes = (d_wins.len() + f_wins.len())
            * tri_len(n).div_ceil(n_ranks)
            * std::mem::size_of::<f64>();
        let (cache_bytes, buffer_bytes) = match (&view, &acc) {
            (DensityView::RowShard(v), FockAccumulator::RowShard(a)) => {
                (v.budget_bytes(), a.budget_bytes())
            }
            _ => unreachable!(),
        };
        rank.charge_bytes(stripe_bytes + cache_bytes + buffer_bytes);
        rank.charge_bytes(ctx.pairs.bytes());

        let mut engine = ctx.engine();
        let mut eri_buf: Vec<f64> = Vec::new();
        let mut computed = 0u64;
        let mut screened = 0u64;
        let mut tasks = 0usize;

        let fault_mode = rank.faults_enabled();
        let mut dead = rank.lease_reset(n_pair, LeaseMode::Durable).is_err();
        while !dead {
            let t = match rank.lease_next() {
                Ok(Some(t)) => t,
                Ok(None) => break,
                Err(_) => {
                    dead = true;
                    break;
                }
            };
            tasks += 1;
            let (i, j) = pair_decode(t);
            for k in 0..=i {
                for l in 0..=kl_bounds(i, j, k) {
                    if !ctx.survives(i, j, k, l) {
                        screened += 1;
                        continue;
                    }
                    let (bra, ket) = (ctx.pairs.pair(i, j), ctx.pairs.pair(k, l));
                    eri_buf.clear();
                    eri_buf.resize(bra.n_fn() * ket.n_fn(), 0.0);
                    engine.shell_quartet_pairs(bra, ket, &mut eri_buf);
                    digest_quartet_view(basis, i, j, k, l, &eri_buf, &mut view, &mut acc);
                    computed += 1;
                    // Capacity flush: keeps the write buffer O(N) even
                    // inside a large task. Safe under faults because
                    // kills only fire at lease claims, between tasks.
                    if let FockAccumulator::RowShard(a) = &mut acc {
                        if a.full() {
                            let _span = phi_trace::span("fock.flush_scatter");
                            a.flush();
                        }
                    }
                }
            }
            if let FockAccumulator::RowShard(a) = &mut acc {
                if fault_mode {
                    // Flush-then-complete: this task's contributions are
                    // durable in the windows before the lease completes.
                    let _span = phi_trace::span("fock.flush_scatter");
                    a.flush();
                    rank.lease_complete(t);
                } else {
                    rank.lease_complete(t);
                    if tasks.is_multiple_of(32) {
                        let _span = phi_trace::span("fock.flush_scatter");
                        a.flush();
                    }
                }
            }
        }
        let mut flushes = 0u64;
        if let FockAccumulator::RowShard(a) = &mut acc {
            if !dead {
                let _span = phi_trace::span("fock.flush_scatter");
                a.flush();
                // Every live rank's accumulates must land before anyone
                // reads; dead ranks have deregistered.
                let _ = rank.ft_barrier();
            }
            flushes = a.flushes;
        }
        rank.release_bytes(stripe_bytes + cache_bytes + buffer_bytes);
        rank.release_bytes(ctx.pairs.bytes());

        phi_trace::counter("quartets_computed", computed);
        phi_trace::counter("quartets_screened", screened);
        phi_trace::counter("flushes", flushes);
        phi_trace::counter("eri.spec_quartets", engine.spec_quartets_computed());
        FockBuildStats {
            seconds: start.elapsed().as_secs_f64(),
            quartets_computed: computed,
            quartets_screened: screened,
            prim_quartets: engine.prim_quartets_computed(),
            eri_class_quartets: engine.class_counts().to_vec(),
            dlb_tasks: tasks,
            flushes,
            ..Default::default()
        }
    });

    let failed = world.failed_ranks();
    let mut stats = FockBuildStats::default();
    for s in world.per_rank {
        stats = FockBuildStats::merge(stats, &s);
    }
    stats.memory_total_peak = world.memory.total_peak();
    stats.per_rank_peak = world.memory.per_rank_peak.clone();
    stats.dlb_calls = world.dlb_calls;
    stats.faults_injected = world.faults_injected;
    stats.tasks_reclaimed = world.tasks_reclaimed;
    stats.retries = world.lease_retries;
    stats.failed_ranks = failed;
    stats.retransmits = world.retransmits;
    stats.acks = world.acks;
    stats.corruptions_detected = world.corruptions_detected;
    stats.transient_recoveries = world.transient_recoveries;
    for w in d_wins.iter().chain(&f_wins) {
        let ls = w.link_stats();
        stats.retransmits += ls.retransmits;
        stats.acks += ls.acks;
        stats.corruptions_detected += ls.corruptions_detected;
        stats.transient_recoveries += ls.transient_recoveries;
        stats.faults_injected += ls.faults_injected as usize;
    }
    let mats: Vec<Mat> = f_wins.iter().map(|w| gather_tri(w, n)).collect();
    GBuild::from_channels(mats, stats)
}

/// Restricted convenience wrapper over [`build_sharded`].
pub fn build_g_sharded(
    basis: &BasisSet,
    pairs: &ShellPairs,
    screening: &Screening,
    tau: f64,
    d: &Mat,
    n_ranks: usize,
    mode: DdiMode,
) -> GBuild {
    build_sharded(
        &FockContext::new(basis, pairs, screening, tau),
        &DensitySet::Restricted(d),
        n_ranks,
        mode,
        None,
        RetryPolicy::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::mpi_only::build_g_mpi_only;
    use crate::fock::serial::build_g_serial;
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;

    fn density(n: usize) -> Mat {
        Mat::from_fn(n, n, |i, j| {
            let (i, j) = if i >= j { (i, j) } else { (j, i) };
            0.25 + ((i * 7 + j * 5) % 6) as f64 * 0.08
        })
    }

    fn pairs_and_screening(b: &BasisSet) -> (ShellPairs, Screening) {
        let pairs = ShellPairs::build(b);
        let s = Screening::from_pairs(b, &pairs);
        (pairs, s)
    }

    #[test]
    fn matches_serial_for_various_rank_counts_and_modes() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let want = build_g_serial(&b, &pairs, &s, 1e-12, &d).g;
        for n_ranks in [1, 2, 4] {
            for mode in [DdiMode::Mpi3OneSided, DdiMode::DataServer] {
                let got = build_g_sharded(&b, &pairs, &s, 1e-12, &d, n_ranks, mode);
                assert!(
                    got.g.max_abs_diff(&want) < 1e-12,
                    "{n_ranks} ranks {}: diff {}",
                    mode.label(),
                    got.g.max_abs_diff(&want)
                );
                assert!(got.stats.flushes > 0);
            }
        }
    }

    #[test]
    fn unrestricted_sharded_matches_serial() {
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        let (pairs, s) = pairs_and_screening(&b);
        let n = b.n_basis();
        let d_a = density(n);
        let mut d_b = density(n);
        d_b.scale(0.6);
        let ctx = FockContext::new(&b, &pairs, &s, 1e-12);
        let dens = DensitySet::Unrestricted { alpha: &d_a, beta: &d_b };
        let want = crate::fock::serial::build_serial(&ctx, &dens);
        let got =
            build_sharded(&ctx, &dens, 3, DdiMode::Mpi3OneSided, None, RetryPolicy::default());
        let want_b = want.g_beta.expect("beta channel");
        let got_b = got.g_beta.expect("beta channel");
        assert!(got.g.max_abs_diff(&want.g) < 1e-12, "alpha {}", got.g.max_abs_diff(&want.g));
        assert!(got_b.max_abs_diff(&want_b) < 1e-12, "beta {}", got_b.max_abs_diff(&want_b));
    }

    #[test]
    fn per_rank_memory_is_sharded_not_replicated() {
        // Big enough that the O(N) cache floors (1024 elems / 512 entries)
        // lose to the N x N matrices a replicated rank holds; tiny systems
        // like water invert the comparison because the floors dominate.
        let b = BasisSet::build(&small::h_chain(50, 2.0), BasisName::Sto3g);
        let (pairs, s) = pairs_and_screening(&b);
        let n = b.n_basis();
        let d = density(n);
        let ranks = 4;
        let replicated = build_g_mpi_only(&b, &pairs, &s, 1e-12, &d, ranks);
        let sharded = build_g_sharded(&b, &pairs, &s, 1e-12, &d, ranks, DdiMode::Mpi3OneSided);
        let rep_peak = replicated.stats.max_rank_peak();
        let sh_peak = sharded.stats.max_rank_peak();
        assert!(sh_peak < rep_peak, "sharded {sh_peak} vs replicated {rep_peak}");
        // Per-rank matrix memory (peak minus the shared read-only pair
        // dataset) is exactly the budgeted stripe + caches.
        let tri = crate::fock::matrix::tri_len(n);
        let budget = 2 * tri.div_ceil(ranks) * 8
            + crate::fock::matrix::shard_cache_elems(n) * 8
            + crate::fock::matrix::shard_flush_entries(n) * 16;
        assert_eq!(sh_peak - pairs.bytes(), budget);
    }

    #[test]
    fn shard_budget_never_approaches_a_full_matrix_at_scale() {
        // The O(N) caches have small-system floors; past those, per-rank
        // matrix memory is a vanishing fraction of one N x N matrix (the
        // measured version of this claim runs in benches/memory_wall.rs).
        for (n, ranks) in [(500, 4), (2000, 8), (10000, 16)] {
            let budget = 2 * crate::fock::matrix::tri_len(n).div_ceil(ranks) * 8
                + crate::fock::matrix::shard_cache_elems(n) * 8
                + crate::fock::matrix::shard_flush_entries(n) * 16;
            assert!(
                budget < n * n * 8 / (ranks / 2),
                "n={n} ranks={ranks}: budget {budget} vs full matrix {}",
                n * n * 8
            );
        }
    }
}
