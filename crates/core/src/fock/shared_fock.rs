//! Algorithm 3: hybrid MPI/OpenMP, shared density *and* shared Fock.
//!
//! The paper's unique contribution. Per rank, one Fock matrix per spin
//! channel is shared by all threads; the write-dependency problem of
//! eqs. (2a)–(2f) is solved by splitting each quartet's six updates across
//! three destinations (Algorithm 3 lines 25–27):
//!
//! * updates touching shell `i`'s block -> thread-private `FI` buffer,
//! * updates touching shell `j`'s block -> thread-private `FJ` buffer,
//! * the `(k, l)` element -> the shared Fock matrix directly (threads own
//!   distinct `kl` iterations, so element collisions cannot occur within a
//!   task; we still use atomic adds — see DESIGN.md on the safe-Rust
//!   substitution).
//!
//! `FJ` is flushed (padded chunked tree reduction, paper Figure 1) after
//! every `kl` loop; `FI` is flushed lazily, only when the task's `i`
//! changes (lines 15–18 and 33), which removes most of the synchronization
//! the naive scheme would pay.
//!
//! MPI tasks are combined `ij` pair indices pulled from the DLB counter,
//! prescreened at the task level (line 13) so whole iterations of the most
//! costly top loop vanish for sparse systems.

use super::engine::FockContext;
use super::matrix::ReplicatedFock;
use super::private_fock::{TASK_DEAD, TASK_DONE};
use super::{digest_quartet_dens, pair_decode, pair_index, DensitySet, FockSink};
use crate::stats::FockBuildStats;
use phi_chem::BasisSet;
use phi_dmpi::{FaultPlan, LeaseMode, RetryPolicy, WorldConfig};
use phi_integrals::{Screening, ShellPairs};
use phi_linalg::Mat;
use phi_omp::{PaddedColumns, Schedule, SharedAccumulator, Team};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

pub use super::GBuild;

fn replicated_readonly_bytes(n: usize) -> usize {
    3 * n * n * std::mem::size_of::<f64>()
}

/// Task-level prescreen policy (Algorithm 3 line 13).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskPrescreen {
    /// Skip task `ij` if `Q_ij * Q_max < tau` — a lossless necessary
    /// condition (our default; see DESIGN.md).
    QMax,
    /// The paper's literal `schwartz(i,j,i,j)` test: skip if
    /// `Q_ij^2 < tau`. Slightly lossy for quartets whose ket pair has a
    /// much larger bound than the bra pair.
    Diagonal,
    /// No task-level prescreening (ablation).
    Off,
}

/// Routes canonical Fock updates to FI / FJ / the shared matrix (one
/// instance per spin channel).
struct SharedFockSink<'a> {
    fi_col: &'a mut [f64],
    fj_col: &'a mut [f64],
    fock: &'a SharedAccumulator,
    n: usize,
    i_lo: usize,
    i_hi: usize,
    j_lo: usize,
    j_hi: usize,
}

impl FockSink for SharedFockSink<'_> {
    #[inline]
    fn add(&mut self, mu: usize, nu: usize, v: f64) {
        debug_assert!(mu >= nu);
        if mu >= self.i_lo && mu < self.i_hi {
            self.fi_col[(mu - self.i_lo) * self.n + nu] += v;
        } else if nu >= self.i_lo && nu < self.i_hi {
            self.fi_col[(nu - self.i_lo) * self.n + mu] += v;
        } else if mu >= self.j_lo && mu < self.j_hi {
            self.fj_col[(mu - self.j_lo) * self.n + nu] += v;
        } else if nu >= self.j_lo && nu < self.j_hi {
            self.fj_col[(nu - self.j_lo) * self.n + mu] += v;
        } else {
            // Pure (k, l) element: straight into the shared Fock matrix.
            self.fock.add(mu * self.n + nu, v);
        }
    }
}

/// Build `G(D)` with Algorithm 3 over `n_ranks` ranks x `n_threads` threads.
pub fn build_g_shared_fock(
    basis: &BasisSet,
    pairs: &ShellPairs,
    screening: &Screening,
    tau: f64,
    d: &Mat,
    n_ranks: usize,
    n_threads: usize,
) -> GBuild {
    build_g_shared_fock_opt(
        basis,
        pairs,
        screening,
        tau,
        d,
        n_ranks,
        n_threads,
        TaskPrescreen::QMax,
        true,
    )
}

/// Restricted full-control variant: `prescreen` selects the task-level
/// screen, and `lazy_fi` toggles the lazy-FI-flush optimization (the
/// `ablation_flush` experiment flushes FI after every task instead).
#[allow(clippy::too_many_arguments)]
pub fn build_g_shared_fock_opt(
    basis: &BasisSet,
    pairs: &ShellPairs,
    screening: &Screening,
    tau: f64,
    d: &Mat,
    n_ranks: usize,
    n_threads: usize,
    prescreen: TaskPrescreen,
    lazy_fi: bool,
) -> GBuild {
    build_shared_fock_set(
        &FockContext::new(basis, pairs, screening, tau),
        &DensitySet::Restricted(d),
        n_ranks,
        n_threads,
        prescreen,
        lazy_fi,
        None,
        RetryPolicy::default(),
    )
}

/// Spin-generalized Algorithm 3: one shared Fock matrix and one FI/FJ
/// buffer pair per spin channel; every quartet is digested into all
/// channels before the shared kl element leaves the thread.
#[allow(clippy::too_many_arguments)]
pub fn build_shared_fock_set(
    ctx: &FockContext<'_>,
    dens: &DensitySet<'_>,
    n_ranks: usize,
    n_threads: usize,
    prescreen: TaskPrescreen,
    lazy_fi: bool,
    faults: Option<&FaultPlan>,
    retry: RetryPolicy,
) -> GBuild {
    let basis = ctx.basis;
    let n = basis.n_basis();
    let ns = basis.n_shells();
    let n_pair = ns * (ns + 1) / 2;
    let max_width = basis.shells.iter().map(|s| s.n_functions()).max().unwrap_or(1);
    let work = dens.prepare();
    let nch = work.n_channels();

    let cfg = WorldConfig { n_ranks, faults: faults.cloned(), retry };
    let world = phi_dmpi::run_world_with_config(cfg, |rank| {
        let _span = phi_trace::span("fock.build");
        let start = Instant::now();
        let mut d_rank = rank.alloc_f64(nch * n * n);
        match *dens {
            DensitySet::Restricted(d) => d_rank.copy_from_slice(d.as_slice()),
            DensitySet::Unrestricted { alpha, beta } => {
                d_rank[..n * n].copy_from_slice(alpha.as_slice());
                d_rank[n * n..].copy_from_slice(beta.as_slice());
            }
        }
        rank.charge_bytes(replicated_readonly_bytes(n));
        // One shell-pair dataset per rank, shared read-only by all threads.
        rank.charge_bytes(ctx.pairs.bytes());

        // The rank's shared Fock matrices, one per channel (line 4:
        // shared(Fock)).
        let focks: Vec<SharedAccumulator> =
            (0..nch).map(|_| SharedAccumulator::new(n * n)).collect();
        rank.charge_bytes(nch * n * n * std::mem::size_of::<f64>());
        // FI / FJ: mxsize x nthreads padded column buffers (lines 1-3),
        // one pair per channel.
        let fis: Vec<PaddedColumns> =
            (0..nch).map(|_| PaddedColumns::new(n * max_width, n_threads)).collect();
        let fjs: Vec<PaddedColumns> =
            (0..nch).map(|_| PaddedColumns::new(n * max_width, n_threads)).collect();
        rank.charge_bytes(fis.iter().chain(&fjs).map(|p| p.bytes()).sum());

        let team = Team::new(n_threads);
        let current_ij = AtomicUsize::new(0);
        // If this errors the rank is already doomed; the master's first
        // lease claim below observes the same condition and unwinds the
        // whole team cleanly.
        let _ = rank.lease_reset(n_pair, LeaseMode::Volatile);

        let thread_stats = team.parallel(|tctx| {
            let mut engine = ctx.engine();
            let mut eri_buf: Vec<f64> = Vec::new();
            let mut computed = 0u64;
            let mut screened = 0u64;
            let mut tasks = 0usize;
            let mut flushes = 0u64;
            // (shell index, first_bf) of the last task's i shell; identical
            // across threads because every thread follows the same task
            // sequence.
            let mut iold: Option<usize> = None;

            let flush_fi = |tctx: &phi_omp::ThreadCtx<'_>, shell: usize| {
                let _span = phi_trace::span("fock.flush_fi");
                let sh = &basis.shells[shell];
                let (lo, width) = (sh.first_bf, sh.n_functions());
                for (fi, fock) in fis.iter().zip(&focks) {
                    fi.flush_prefix_with(tctx, width * n, |row, sum| {
                        let gi = lo + row / n;
                        let other = row % n;
                        let idx = if gi >= other { gi * n + other } else { other * n + gi };
                        fock.add(idx, sum);
                    });
                }
            };

            let mut prev_task: Option<usize> = None;
            loop {
                // Master pulls the next combined ij lease (lines 7-10).
                // The previous task only counts as complete here — after
                // the trailing barrier of its kl loop (or the prescreen
                // path's explicit barrier) proved the team finished it.
                // A kill fires inside the claim; the master then
                // broadcasts the DEAD sentinel and the team unwinds.
                tctx.master(|| {
                    if let Some(p) = prev_task.take() {
                        rank.lease_complete(p);
                    }
                    let next = match rank.lease_next() {
                        Ok(Some(t)) => {
                            prev_task = Some(t);
                            t
                        }
                        Ok(None) => TASK_DONE,
                        Err(_) => TASK_DEAD,
                    };
                    current_ij.store(next, Ordering::SeqCst);
                });
                tctx.barrier();
                let ij = current_ij.load(Ordering::SeqCst);
                if ij >= n_pair {
                    break;
                }
                let (i, j) = pair_decode(ij);
                // Task-level prescreen (lines 13-14).
                let survives = match prescreen {
                    TaskPrescreen::QMax => ctx.task_survives(i, j),
                    TaskPrescreen::Diagonal => ctx.survives(i, j, i, j),
                    TaskPrescreen::Off => true,
                };
                if !survives {
                    // A barrier before looping: every thread must have read
                    // current_ij before the master overwrites it with the
                    // next pull. (The surviving path gets this for free from
                    // the kl-loop's trailing barrier; without this one, a
                    // slow thread can miss a task entirely and the team's
                    // collective-call sequences diverge — deadlock.)
                    tctx.barrier();
                    continue;
                }
                if tctx.is_master() {
                    tasks += 1;
                }
                // Flush FI when i changes (lines 15-18) — or every task in
                // the ablation configuration.
                if let Some(io) = iold {
                    if io != i || !lazy_fi {
                        flush_fi(tctx, io);
                        if tctx.is_master() {
                            flushes += nch as u64;
                        }
                    }
                }

                let sh_i = &basis.shells[i];
                let sh_j = &basis.shells[j];
                let mut sinks: Vec<SharedFockSink<'_>> = (0..nch)
                    .map(|ch| SharedFockSink {
                        fi_col: fis[ch].col_mut(tctx.thread_num()),
                        fj_col: fjs[ch].col_mut(tctx.thread_num()),
                        fock: &focks[ch],
                        n,
                        i_lo: sh_i.first_bf,
                        i_hi: sh_i.first_bf + sh_i.n_functions(),
                        j_lo: sh_j.first_bf,
                        j_hi: sh_j.first_bf + sh_j.n_functions(),
                    })
                    .collect();

                // Workshared kl loop (lines 19-30).
                let klmax = pair_index(i, j) + 1;
                tctx.for_each(klmax, Schedule::dynamic1(), |kl| {
                    let (k, l) = pair_decode(kl);
                    if !ctx.survives(i, j, k, l) {
                        screened += 1;
                        return;
                    }
                    let (bra, ket) = (ctx.pairs.pair(i, j), ctx.pairs.pair(k, l));
                    eri_buf.clear();
                    eri_buf.resize(bra.n_fn() * ket.n_fn(), 0.0);
                    engine.shell_quartet_pairs(bra, ket, &mut eri_buf);
                    digest_quartet_dens(basis, i, j, k, l, &eri_buf, &work, &mut sinks);
                    computed += 1;
                });

                // Flush FJ after every kl loop (lines 31-32).
                {
                    let _span = phi_trace::span("fock.flush_fj");
                    let width_j = sh_j.n_functions();
                    let j_lo = sh_j.first_bf;
                    for (fj, fock) in fjs.iter().zip(&focks) {
                        fj.flush_prefix_with(tctx, width_j * n, |row, sum| {
                            let gj = j_lo + row / n;
                            let other = row % n;
                            let idx = if gj >= other { gj * n + other } else { other * n + gj };
                            fock.add(idx, sum);
                        });
                    }
                    if tctx.is_master() {
                        flushes += nch as u64;
                    }
                }
                iold = Some(i);
            }

            // Flush the FI remainder (line 36).
            if let Some(io) = iold {
                flush_fi(tctx, io);
                if tctx.is_master() {
                    flushes += nch as u64;
                }
            }

            // Per-thread counter totals (accumulated in plain locals, no
            // per-quartet events); flushes is master-counted, so summing
            // the per-thread contributions reconciles with stats.flushes.
            phi_trace::counter("quartets_computed", computed);
            phi_trace::counter("quartets_screened", screened);
            phi_trace::counter("flushes", flushes);
            phi_trace::counter("eri.spec_quartets", engine.spec_quartets_computed());
            FockBuildStats {
                quartets_computed: computed,
                quartets_screened: screened,
                prim_quartets: engine.prim_quartets_computed(),
                eri_class_quartets: engine.class_counts().to_vec(),
                dlb_tasks: tasks,
                flushes,
                ..Default::default()
            }
        });

        // 2e-Fock reduction over the surviving MPI ranks (line 38) — one
        // collective covering every spin channel. A killed rank's shared
        // Fock is abandoned here; its leases were reissued to survivors.
        let mut dead = !rank.alive();
        let mut fbuf: Vec<f64> = Vec::with_capacity(nch * n * n);
        for fock in &focks {
            fbuf.extend(fock.snapshot());
        }
        if !dead {
            dead = rank.try_gsumf(&mut fbuf).is_err();
        }

        rank.release_bytes(fis.iter().chain(&fjs).map(|p| p.bytes()).sum());
        rank.release_bytes(nch * n * n * std::mem::size_of::<f64>());
        rank.release_bytes(replicated_readonly_bytes(n));
        rank.release_bytes(ctx.pairs.bytes());

        let mut stats = FockBuildStats::default();
        for ts in &thread_stats {
            stats = FockBuildStats::merge(stats, ts);
        }
        stats.seconds = start.elapsed().as_secs_f64();
        let result = if !dead && rank.is_lowest_live() { Some(fbuf) } else { None };
        (result, stats)
    });

    let failed = world.failed_ranks();
    let mut stats = FockBuildStats::default();
    let mut g_buf = None;
    for (buf, s) in world.per_rank {
        stats = FockBuildStats::merge(stats, &s);
        if let Some(b) = buf {
            g_buf = Some(b);
        }
    }
    stats.memory_total_peak = world.memory.total_peak();
    stats.per_rank_peak = world.memory.per_rank_peak.clone();
    stats.dlb_calls = world.dlb_calls;
    stats.faults_injected = world.faults_injected;
    stats.tasks_reclaimed = world.tasks_reclaimed;
    stats.retries = world.lease_retries;
    stats.failed_ranks = failed.clone();
    stats.retransmits = world.retransmits;
    stats.acks = world.acks;
    stats.corruptions_detected = world.corruptions_detected;
    stats.transient_recoveries = world.transient_recoveries;
    let bufs = g_buf.unwrap_or_else(|| {
        panic!("no surviving rank returned the reduced Fock (failed ranks: {failed:?})")
    });
    GBuild::from_channels(ReplicatedFock::from_raw(bufs, nch, n).into_mats(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::mpi_only::build_g_mpi_only;
    use crate::fock::private_fock::build_g_private_fock;
    use crate::fock::serial::build_g_serial;
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;

    fn density(n: usize) -> Mat {
        Mat::from_fn(n, n, |i, j| {
            let (i, j) = if i >= j { (i, j) } else { (j, i) };
            0.25 + ((i * 17 + j * 7) % 5) as f64 * 0.08 - 0.02 * i as f64 / (n as f64)
        })
    }

    fn pairs_and_screening(b: &BasisSet) -> (ShellPairs, Screening) {
        let pairs = ShellPairs::build(b);
        let s = Screening::from_pairs(b, &pairs);
        (pairs, s)
    }

    #[test]
    fn matches_serial_across_rank_thread_grids() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let want = build_g_serial(&b, &pairs, &s, 1e-12, &d).g;
        for (r, t) in [(1, 1), (1, 4), (2, 2), (2, 3)] {
            let got = build_g_shared_fock(&b, &pairs, &s, 1e-12, &d, r, t);
            assert!(
                got.g.max_abs_diff(&want) < 1e-10,
                "{r} ranks x {t} threads: diff {}",
                got.g.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn matches_serial_with_d_functions() {
        let b = BasisSet::build(&small::water(), BasisName::B631gd);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let want = build_g_serial(&b, &pairs, &s, 1e-11, &d).g;
        let got = build_g_shared_fock(&b, &pairs, &s, 1e-11, &d, 2, 2);
        assert!(got.g.max_abs_diff(&want) < 1e-9, "diff {}", got.g.max_abs_diff(&want));
    }

    #[test]
    fn eager_fi_flush_gives_identical_result() {
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let lazy =
            build_g_shared_fock_opt(&b, &pairs, &s, 1e-12, &d, 1, 3, TaskPrescreen::QMax, true);
        let eager =
            build_g_shared_fock_opt(&b, &pairs, &s, 1e-12, &d, 1, 3, TaskPrescreen::QMax, false);
        assert!(lazy.g.max_abs_diff(&eager.g) < 1e-10);
        // Eager flushing performs strictly more FI flushes; both count them.
        assert!(lazy.stats.flushes > 0);
        assert!(eager.stats.flushes > lazy.stats.flushes);
    }

    #[test]
    fn prescreen_variants_agree_on_dense_systems() {
        // For a compact molecule nothing is prescreened away, so all three
        // policies give the same G.
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let qmax =
            build_g_shared_fock_opt(&b, &pairs, &s, 1e-10, &d, 1, 2, TaskPrescreen::QMax, true);
        let diag =
            build_g_shared_fock_opt(&b, &pairs, &s, 1e-10, &d, 1, 2, TaskPrescreen::Diagonal, true);
        let off =
            build_g_shared_fock_opt(&b, &pairs, &s, 1e-10, &d, 1, 2, TaskPrescreen::Off, true);
        assert!(qmax.g.max_abs_diff(&off.g) < 1e-10);
        assert!(diag.g.max_abs_diff(&off.g) < 1e-10);
    }

    #[test]
    fn sparse_system_with_prescreened_tasks_is_race_free() {
        // Regression test: a spread-out H chain prescreens many ij tasks.
        // Before the prescreen-path barrier fix, a thread could miss the
        // master's current_ij update on the continue path, desynchronizing
        // the team's collective sequence (deadlock) or silently skipping a
        // surviving task (wrong Fock matrix). Dense molecules (water etc.)
        // never prescreen, which is why only sparse systems exposed it.
        let b = BasisSet::build(&small::h_chain(8, 5.0), BasisName::Sto3g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let tau = 1e-10;
        let want = build_g_serial(&b, &pairs, &s, tau, &d).g;
        for (r, t) in [(1, 2), (1, 4), (2, 3)] {
            // Repeat several times: the race was timing-dependent.
            for round in 0..5 {
                let got = build_g_shared_fock(&b, &pairs, &s, tau, &d, r, t);
                assert!(
                    got.g.max_abs_diff(&want) < 1e-10,
                    "{r}x{t} round {round}: diff {}",
                    got.g.max_abs_diff(&want)
                );
            }
        }
    }

    #[test]
    fn memory_hierarchy_matches_the_paper() {
        // At equal core counts: MPI-only > private Fock > shared Fock.
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let cores = 4;
        let mpi = build_g_mpi_only(&b, &pairs, &s, 1e-12, &d, cores);
        let prv = build_g_private_fock(&b, &pairs, &s, 1e-12, &d, 1, cores);
        let shr = build_g_shared_fock(&b, &pairs, &s, 1e-12, &d, 1, cores);
        assert!(
            mpi.stats.memory_total_peak > prv.stats.memory_total_peak,
            "MPI {} <= private {}",
            mpi.stats.memory_total_peak,
            prv.stats.memory_total_peak
        );
        assert!(
            prv.stats.memory_total_peak > shr.stats.memory_total_peak,
            "private {} <= shared {}",
            prv.stats.memory_total_peak,
            shr.stats.memory_total_peak
        );
    }

    #[test]
    fn task_count_equals_surviving_pairs() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let out = build_g_shared_fock(&b, &pairs, &s, 1e-14, &d, 2, 2);
        let ns = b.n_shells();
        // Water/STO-3G is compact: no pair is prescreened at 1e-14.
        assert_eq!(out.stats.dlb_tasks, ns * (ns + 1) / 2);
        // Every task pull plus each rank's final out-of-range claim.
        assert_eq!(out.stats.dlb_calls, ns * (ns + 1) / 2 + 2);
    }
}
