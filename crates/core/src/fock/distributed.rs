//! Distributed-data Fock build: the related-work baseline where the Fock
//! matrix is *distributed* across ranks instead of replicated.
//!
//! The paper's §2 surveys this lineage — Harrison et al.'s node-distributed
//! SCF over globally addressable arrays and the GAMESS "distributed data
//! SCF" of Alexeev et al. over DDI one-sided operations. It trades the
//! replication memory of Algorithm 1 for remote-accumulate traffic: each
//! rank digests its quartets into a local scatter buffer and flushes
//! batches into a [`phi_dmpi::DistributedArray`] with one-sided `acc`
//! operations; no `gsumf` reduction is needed at the end because the array
//! is the single authoritative copy.
//!
//! This is not one of the paper's three benchmarked codes — it is the
//! natural fourth point of the design space (distributed instead of
//! replicated-then-reduced) and lets the memory/traffic trade-off be
//! measured with the same instrumentation.

use super::engine::FockContext;
use super::matrix::RowBufferFock;
use super::{digest_quartet_dens, kl_bounds, pair_decode, tri_to_full, DensitySet};
use crate::stats::FockBuildStats;
use phi_chem::BasisSet;
use phi_dmpi::{DistributedArray, FaultPlan, LeaseMode, RetryPolicy, WorldConfig};
use phi_integrals::{Screening, ShellPairs};
use phi_linalg::Mat;
use std::time::Instant;

pub use super::GBuild;

/// Build the two-electron matrices for `dens` with DLB over `(i,j)` pairs
/// and a *distributed* Fock matrix per spin channel.
///
/// Each rank still shares a read-only density copy (as in the hybrid codes)
/// but owns only `N^2 / n_ranks` elements of each Fock matrix;
/// contributions to other ranks' rows travel as `acc` batches.
pub fn build_distributed(
    ctx: &FockContext<'_>,
    dens: &DensitySet<'_>,
    n_ranks: usize,
    faults: Option<&FaultPlan>,
    retry: RetryPolicy,
) -> GBuild {
    let basis = ctx.basis;
    let n = basis.n_basis();
    let ns = basis.n_shells();
    let n_pair = ns * (ns + 1) / 2;
    let work = dens.prepare();
    let nch = work.n_channels();
    // The distributed Fock matrices: N x N row-major, striped over ranks,
    // one array per spin channel. Created outside the world, so they
    // survive rank deaths — flushed contributions are durable. Under a
    // fault plan the window requests travel the reliable link, so drops
    // and corruptions drain into retransmission.
    let focks: Vec<DistributedArray> = (0..nch)
        .map(|_| {
            let w = DistributedArray::new(n * n, n_ranks);
            match faults {
                Some(plan) => w.with_faults(plan, retry),
                None => w,
            }
        })
        .collect();

    let cfg = WorldConfig { n_ranks, faults: faults.cloned(), retry };
    let world = phi_dmpi::run_world_with_config(cfg, |rank| {
        let _span = phi_trace::span("fock.build");
        let start = Instant::now();
        let mut d_local = rank.alloc_f64(nch * n * n);
        match *dens {
            DensitySet::Restricted(d) => d_local.copy_from_slice(d.as_slice()),
            DensitySet::Unrestricted { alpha, beta } => {
                d_local[..n * n].copy_from_slice(alpha.as_slice());
                d_local[n * n..].copy_from_slice(beta.as_slice());
            }
        }
        // Charged per rank and channel: its stripe of the distributed Fock
        // plus the full local scatter buffer. Versus Algorithm 1 this still
        // drops the replicated read-only matrices and the second full Fock
        // copy (5/2 N^2 -> ~2 N^2 words) — the distributed-data SCF trade.
        let fock_bytes = nch * n * n * std::mem::size_of::<f64>();
        rank.charge_bytes(fock_bytes / rank.size() + fock_bytes);
        rank.charge_bytes(ctx.pairs.bytes());

        let mut engine = ctx.engine();
        let mut eri_buf: Vec<f64> = Vec::new();
        // The write side of the distribution-aware matrix layer: a full
        // local row buffer flushed as whole rows (see fock::matrix).
        let mut sinks: Vec<RowBufferFock> = (0..nch).map(|_| RowBufferFock::new(n)).collect();
        let mut computed = 0u64;
        let mut screened = 0u64;
        let mut tasks = 0usize;
        let mut flushes = 0u64;

        // Leases are durable here: flushed contributions persist in the
        // distributed array, so a dead rank's already-completed tasks are
        // *not* reissued — only the lease it held at death. That contract
        // needs flush-then-complete per task, so it is only paid under
        // fault injection. In a clean run no rank can die, completion is
        // immediate (a task completed before its flush is still flushed
        // before the final barrier), and flushes batch every 32 tasks
        // purely to amortize one-sided calls.
        let fault_mode = rank.faults_enabled();
        let mut dead = rank.lease_reset(n_pair, LeaseMode::Durable).is_err();
        while !dead {
            let t = match rank.lease_next() {
                Ok(Some(t)) => t,
                Ok(None) => break,
                Err(_) => {
                    dead = true;
                    break;
                }
            };
            tasks += 1;
            let (i, j) = pair_decode(t);
            for k in 0..=i {
                for l in 0..=kl_bounds(i, j, k) {
                    if !ctx.survives(i, j, k, l) {
                        screened += 1;
                        continue;
                    }
                    let (bra, ket) = (ctx.pairs.pair(i, j), ctx.pairs.pair(k, l));
                    eri_buf.clear();
                    eri_buf.resize(bra.n_fn() * ket.n_fn(), 0.0);
                    engine.shell_quartet_pairs(bra, ket, &mut eri_buf);
                    digest_quartet_dens(basis, i, j, k, l, &eri_buf, &work, &mut sinks);
                    computed += 1;
                }
            }
            if fault_mode {
                // Durable completion: this task's rows land in the array
                // *before* the lease completes, so death never strands a
                // completed-but-unflushed task.
                let _span = phi_trace::span("fock.flush_scatter");
                for (fock, sink) in focks.iter().zip(&mut sinks) {
                    flushes += sink.flush_rows(fock, rank.rank());
                }
                rank.lease_complete(t);
            } else {
                // Complete eagerly so the last incomplete tasks are never
                // this rank's own unflushed batch (which would make its
                // next lease poll wait on itself); flush periodically so
                // the scatter buffer does not hold the whole matrix hot.
                rank.lease_complete(t);
                if tasks.is_multiple_of(32) {
                    let _span = phi_trace::span("fock.flush_scatter");
                    for (fock, sink) in focks.iter().zip(&mut sinks) {
                        flushes += sink.flush_rows(fock, rank.rank());
                    }
                }
            }
        }
        if !dead {
            {
                let _span = phi_trace::span("fock.flush_scatter");
                for (fock, sink) in focks.iter().zip(&mut sinks) {
                    flushes += sink.flush_rows(fock, rank.rank());
                }
            }
            // Everyone alive must finish accumulating before anyone reads;
            // dead ranks have deregistered (their unflushed work was
            // recomputed by survivors) and must stay out.
            let _ = rank.ft_barrier();
        }
        rank.release_bytes(fock_bytes / rank.size() + fock_bytes);
        rank.release_bytes(ctx.pairs.bytes());

        // Once per rank per build: totals reconcile exactly with the
        // merged FockBuildStats (no per-quartet events on the hot path).
        phi_trace::counter("quartets_computed", computed);
        phi_trace::counter("quartets_screened", screened);
        phi_trace::counter("flushes", flushes);
        phi_trace::counter("eri.spec_quartets", engine.spec_quartets_computed());
        (
            FockBuildStats {
                seconds: start.elapsed().as_secs_f64(),
                quartets_computed: computed,
                quartets_screened: screened,
                prim_quartets: engine.prim_quartets_computed(),
                eri_class_quartets: engine.class_counts().to_vec(),
                dlb_tasks: tasks,
                flushes,
                ..Default::default()
            },
            focks.iter().map(|f| f.remote_traffic_bytes()).sum::<u64>(),
        )
    });

    let failed = world.failed_ranks();
    let mut stats = FockBuildStats::default();
    let mut remote_bytes = 0u64;
    for (s, rb) in world.per_rank {
        stats = FockBuildStats::merge(stats, &s);
        remote_bytes = remote_bytes.max(rb);
    }
    stats.memory_total_peak = world.memory.total_peak();
    stats.per_rank_peak = world.memory.per_rank_peak.clone();
    stats.dlb_calls = world.dlb_calls;
    stats.faults_injected = world.faults_injected;
    stats.tasks_reclaimed = world.tasks_reclaimed;
    stats.retries = world.lease_retries;
    stats.failed_ranks = failed;
    stats.retransmits = world.retransmits;
    stats.acks = world.acks;
    stats.corruptions_detected = world.corruptions_detected;
    stats.transient_recoveries = world.transient_recoveries;
    for fock in &focks {
        let ls = fock.link_stats();
        stats.retransmits += ls.retransmits;
        stats.acks += ls.acks;
        stats.corruptions_detected += ls.corruptions_detected;
        stats.transient_recoveries += ls.transient_recoveries;
        stats.faults_injected += ls.faults_injected as usize;
    }
    // Read the assembled lower triangles back out.
    let mats = focks
        .iter()
        .map(|fock| {
            let mut buf = vec![0.0; n * n];
            fock.get(0, 0, &mut buf);
            let mut g = tri_to_full(&buf, n);
            g.symmetrize();
            g
        })
        .collect();
    let _ = remote_bytes; // surfaced via DistributedArray for callers/tests
    GBuild::from_channels(mats, stats)
}

/// Restricted convenience wrapper over [`build_distributed`].
pub fn build_g_distributed(
    basis: &BasisSet,
    pairs: &ShellPairs,
    screening: &Screening,
    tau: f64,
    d: &Mat,
    n_ranks: usize,
) -> GBuild {
    build_distributed(
        &FockContext::new(basis, pairs, screening, tau),
        &DensitySet::Restricted(d),
        n_ranks,
        None,
        RetryPolicy::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::mpi_only::build_g_mpi_only;
    use crate::fock::serial::build_g_serial;
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;

    fn density(n: usize) -> Mat {
        Mat::from_fn(n, n, |i, j| {
            let (i, j) = if i >= j { (i, j) } else { (j, i) };
            0.3 + ((i * 11 + j * 3) % 6) as f64 * 0.09
        })
    }

    fn pairs_and_screening(b: &BasisSet) -> (phi_integrals::ShellPairs, Screening) {
        let pairs = phi_integrals::ShellPairs::build(b);
        let s = Screening::from_pairs(b, &pairs);
        (pairs, s)
    }

    #[test]
    fn matches_serial_for_various_rank_counts() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let want = build_g_serial(&b, &pairs, &s, 1e-12, &d).g;
        for n_ranks in [1, 2, 4] {
            let got = build_g_distributed(&b, &pairs, &s, 1e-12, &d, n_ranks);
            assert!(
                got.g.max_abs_diff(&want) < 1e-10,
                "{n_ranks} ranks: diff {}",
                got.g.max_abs_diff(&want)
            );
            // Every rank flushes its scatter rows at least once.
            assert!(got.stats.flushes > 0);
        }
    }

    #[test]
    fn matches_serial_on_sparse_systems() {
        let b = BasisSet::build(&small::h_chain(8, 5.0), BasisName::Sto3g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let want = build_g_serial(&b, &pairs, &s, 1e-10, &d).g;
        let got = build_g_distributed(&b, &pairs, &s, 1e-10, &d, 3);
        assert!(got.g.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn fock_memory_is_distributed_not_replicated() {
        // Versus Algorithm 1 at the same rank count, the tracked footprint
        // must be smaller: the Fock matrix is striped, not copied.
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let ranks = 4;
        let replicated = build_g_mpi_only(&b, &pairs, &s, 1e-12, &d, ranks);
        let distributed = build_g_distributed(&b, &pairs, &s, 1e-12, &d, ranks);
        assert!(
            distributed.stats.memory_total_peak < replicated.stats.memory_total_peak,
            "distributed {} vs replicated {}",
            distributed.stats.memory_total_peak,
            replicated.stats.memory_total_peak
        );
    }
}
