//! Algorithm 2: hybrid MPI/OpenMP, shared density, thread-private Fock.
//!
//! Per rank, all read-only matrices (density, overlap, core Hamiltonian)
//! exist once and are shared by the team's threads; only the Fock
//! accumulation buffers are replicated per thread (the OpenMP
//! `reduction(+ : Fock)` clause of the paper's listing). The MPI DLB runs
//! over the `i` shell index; within a task the merged `(j, k)` loops are
//! workshared with `collapse(2) schedule(dynamic,1)`, which enlarges the
//! task pool from `i` iterations to `(i+1)^2` and fixes the load imbalance
//! the paper attributes to two-index MPI parallelization.

use super::engine::FockContext;
use super::matrix::ReplicatedFock;
use super::{digest_quartet_dens, kl_bounds, DensitySet};
use crate::stats::FockBuildStats;
use phi_chem::BasisSet;
use phi_dmpi::{FaultPlan, LeaseMode, RetryPolicy, WorldConfig};
use phi_integrals::{Screening, ShellPairs};
use phi_linalg::Mat;
use phi_omp::{Schedule, Team};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

pub use super::GBuild;

/// Sentinel the master stores when every task is complete.
pub(crate) const TASK_DONE: usize = usize::MAX;
/// Sentinel the master stores when its rank has been killed: the whole
/// thread team unwinds cleanly at the next barrier.
pub(crate) const TASK_DEAD: usize = usize::MAX - 1;

/// Replicated read-only matrices per *rank* (S, H, C) — one set per rank,
/// not per thread, which is the first memory win over Algorithm 1.
fn replicated_readonly_bytes(n: usize) -> usize {
    3 * n * n * std::mem::size_of::<f64>()
}

/// Build the two-electron matrices for `dens` with Algorithm 2 over
/// `n_ranks` ranks x `n_threads` threads.
pub fn build_private_fock(
    ctx: &FockContext<'_>,
    dens: &DensitySet<'_>,
    n_ranks: usize,
    n_threads: usize,
    faults: Option<&FaultPlan>,
    retry: RetryPolicy,
) -> GBuild {
    let basis = ctx.basis;
    let n = basis.n_basis();
    let ns = basis.n_shells();
    let work = dens.prepare();
    let nch = work.n_channels();

    let cfg = WorldConfig { n_ranks, faults: faults.cloned(), retry };
    let world = phi_dmpi::run_world_with_config(cfg, |rank| {
        let _span = phi_trace::span("fock.build");
        let start = Instant::now();
        // One shared copy of each spin-channel density per rank (threads
        // read them concurrently).
        let mut d_rank = rank.alloc_f64(nch * n * n);
        match *dens {
            DensitySet::Restricted(d) => d_rank.copy_from_slice(d.as_slice()),
            DensitySet::Unrestricted { alpha, beta } => {
                d_rank[..n * n].copy_from_slice(alpha.as_slice());
                d_rank[n * n..].copy_from_slice(beta.as_slice());
            }
        }
        rank.charge_bytes(replicated_readonly_bytes(n));
        // One shell-pair dataset per rank, shared read-only by the team's
        // threads (never replicated per thread).
        rank.charge_bytes(ctx.pairs.bytes());

        let team = Team::new(n_threads);
        let current_i = AtomicUsize::new(0);
        // If this errors the rank is already doomed; the master's first
        // lease claim below observes the same condition and unwinds the
        // whole team cleanly.
        let _ = rank.lease_reset(ns, LeaseMode::Volatile);

        let thread_results = team.parallel(|tctx| {
            // Thread-private Fock matrices (one per spin channel) — the
            // replication this algorithm still pays for (charged to the
            // rank's footprint).
            let mut fock = ReplicatedFock::new(nch, n);
            rank.charge_bytes(fock.bytes());
            let mut engine = ctx.engine();
            let mut eri_buf: Vec<f64> = Vec::new();
            let mut computed = 0u64;
            let mut screened = 0u64;
            let mut tasks = 0usize;

            {
                let mut sinks = fock.sinks();
                let mut prev_task: Option<usize> = None;
                loop {
                    // Master pulls the next i lease (Algorithm 2 lines
                    // 3-6). The previous task only counts as complete
                    // here, after collapse2's trailing barrier proved
                    // the whole team finished it. A kill fires inside
                    // the claim, so the master then broadcasts the DEAD
                    // sentinel and every thread unwinds at the barrier.
                    tctx.master(|| {
                        if let Some(p) = prev_task.take() {
                            rank.lease_complete(p);
                        }
                        let next = match rank.lease_next() {
                            Ok(Some(t)) => {
                                prev_task = Some(t);
                                t
                            }
                            Ok(None) => TASK_DONE,
                            Err(_) => TASK_DEAD,
                        };
                        current_i.store(next, Ordering::SeqCst);
                    });
                    tctx.barrier();
                    let i = current_i.load(Ordering::SeqCst);
                    if i >= ns {
                        break;
                    }
                    if tctx.is_master() {
                        tasks += 1;
                    }
                    // Merged (j, k) loops, workshared dynamically (lines 7-20).
                    tctx.collapse2(i + 1, i + 1, Schedule::dynamic1(), |j, k| {
                        for l in 0..=kl_bounds(i, j, k) {
                            if !ctx.survives(i, j, k, l) {
                                screened += 1;
                                continue;
                            }
                            let (bra, ket) = (ctx.pairs.pair(i, j), ctx.pairs.pair(k, l));
                            eri_buf.clear();
                            eri_buf.resize(bra.n_fn() * ket.n_fn(), 0.0);
                            engine.shell_quartet_pairs(bra, ket, &mut eri_buf);
                            digest_quartet_dens(basis, i, j, k, l, &eri_buf, &work, &mut sinks);
                            computed += 1;
                        }
                    });
                    // collapse2 ends with the implicit barrier; the master
                    // then pulls the next task.
                }
            }

            // Per-thread totals, accumulated in plain locals above (no
            // per-quartet trace events); sums reconcile with the merged
            // FockBuildStats.
            phi_trace::counter("quartets_computed", computed);
            phi_trace::counter("quartets_screened", screened);
            phi_trace::counter("eri.spec_quartets", engine.spec_quartets_computed());
            let stats = FockBuildStats {
                quartets_computed: computed,
                quartets_screened: screened,
                prim_quartets: engine.prim_quartets_computed(),
                eri_class_quartets: engine.class_counts().to_vec(),
                dlb_tasks: tasks,
                ..Default::default()
            };
            (fock, stats)
        });
        phi_trace::counter("flushes", 0);

        // OpenMP reduction(+ : Fock): sum the thread-private copies.
        let mut fock = ReplicatedFock::new(nch, n);
        rank.charge_bytes(fock.bytes());
        let mut stats = FockBuildStats::default();
        for (tf, ts) in &thread_results {
            fock.reduce_from(tf);
            stats = FockBuildStats::merge(stats, ts);
        }
        rank.release_bytes(n_threads * nch * n * n * std::mem::size_of::<f64>());

        // 2e-Fock matrix reduction over the surviving MPI ranks (line
        // 23). A killed rank's team unwound via the DEAD sentinel; its
        // partial sums die here with it and its leases were reissued.
        let mut dead = !rank.alive();
        if !dead {
            dead = rank.try_gsumf(fock.as_mut_slice()).is_err();
        }
        rank.release_bytes(replicated_readonly_bytes(n));
        rank.release_bytes(ctx.pairs.bytes());
        rank.release_bytes(fock.bytes());
        stats.seconds = start.elapsed().as_secs_f64();
        let result = if !dead && rank.is_lowest_live() { Some(fock) } else { None };
        (result, stats)
    });

    let failed = world.failed_ranks();
    let mut stats = FockBuildStats::default();
    let mut g_buf = None;
    for (buf, s) in world.per_rank {
        stats = FockBuildStats::merge(stats, &s);
        if let Some(b) = buf {
            g_buf = Some(b);
        }
    }
    stats.memory_total_peak = world.memory.total_peak();
    stats.per_rank_peak = world.memory.per_rank_peak.clone();
    stats.dlb_calls = world.dlb_calls;
    stats.faults_injected = world.faults_injected;
    stats.tasks_reclaimed = world.tasks_reclaimed;
    stats.retries = world.lease_retries;
    stats.failed_ranks = failed.clone();
    stats.retransmits = world.retransmits;
    stats.acks = world.acks;
    stats.corruptions_detected = world.corruptions_detected;
    stats.transient_recoveries = world.transient_recoveries;
    let fock = g_buf.unwrap_or_else(|| {
        panic!("no surviving rank returned the reduced Fock (failed ranks: {failed:?})")
    });
    GBuild::from_channels(fock.into_mats(), stats)
}

/// Restricted convenience wrapper over [`build_private_fock`].
pub fn build_g_private_fock(
    basis: &BasisSet,
    pairs: &ShellPairs,
    screening: &Screening,
    tau: f64,
    d: &Mat,
    n_ranks: usize,
    n_threads: usize,
) -> GBuild {
    build_private_fock(
        &FockContext::new(basis, pairs, screening, tau),
        &DensitySet::Restricted(d),
        n_ranks,
        n_threads,
        None,
        RetryPolicy::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::serial::build_g_serial;
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;

    fn density(n: usize) -> Mat {
        Mat::from_fn(n, n, |i, j| {
            let (i, j) = if i >= j { (i, j) } else { (j, i) };
            0.15 + ((i * 3 + j * 13) % 9) as f64 * 0.07
        })
    }

    fn pairs_and_screening(b: &BasisSet) -> (ShellPairs, Screening) {
        let pairs = ShellPairs::build(b);
        let s = Screening::from_pairs(b, &pairs);
        (pairs, s)
    }

    #[test]
    fn matches_serial_across_rank_thread_grids() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let want = build_g_serial(&b, &pairs, &s, 1e-12, &d).g;
        for (r, t) in [(1, 1), (1, 4), (2, 2), (3, 2)] {
            let got = build_g_private_fock(&b, &pairs, &s, 1e-12, &d, r, t);
            assert!(
                got.g.max_abs_diff(&want) < 1e-10,
                "{r} ranks x {t} threads: diff {}",
                got.g.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn covers_every_quartet_exactly_once() {
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let serial = build_g_serial(&b, &pairs, &s, 0.0, &d);
        let hybrid = build_g_private_fock(&b, &pairs, &s, 0.0, &d, 2, 3);
        assert_eq!(hybrid.stats.quartets_computed, serial.stats.quartets_computed);
    }

    #[test]
    fn rank_memory_smaller_than_mpi_only_at_same_core_count() {
        // 4 "cores": MPI-only = 4 ranks; private Fock = 1 rank x 4 threads.
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let mpi = crate::fock::mpi_only::build_g_mpi_only(&b, &pairs, &s, 1e-12, &d, 4);
        let hyb = build_g_private_fock(&b, &pairs, &s, 1e-12, &d, 1, 4);
        assert!(
            hyb.stats.memory_total_peak < mpi.stats.memory_total_peak,
            "hybrid {} vs MPI {}",
            hyb.stats.memory_total_peak,
            mpi.stats.memory_total_peak
        );
    }
}
