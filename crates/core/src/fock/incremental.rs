//! Incremental (ΔD) Fock-build bookkeeping shared by the RHF and UHF
//! drivers.
//!
//! Direct SCF recomputes the full screened quartet set every iteration,
//! so per-build cost is flat while the density change collapses toward
//! convergence. The two-electron operator is linear in the density
//! (`G(D) = J(D) - K(D)/2` for RHF; per spin channel
//! `G_s = J(D_a + D_b) - K(D_s)` for UHF), so iteration `n` can instead
//! build `G(ΔD)` with `ΔD = D_n - D_ref` and accumulate
//! `G_n = G_ref + G(ΔD)`. With a density-weighted screening test
//! (`Q_ij Q_kl max(ΔD-factors) >= tau`, see
//! [`phi_integrals::DensityMax`]), the surviving-quartet count shrinks in
//! step with ‖ΔD‖.
//!
//! The accumulation is *lossy but bounded*: every build drops quartets
//! whose contribution to any Fock element is below `tau`, and those
//! omissions add up across the incremental stretch. [`IncrementalFock`]
//! therefore forces a periodic full rebuild — every K-th build, or as
//! soon as ‖ΔD‖ *recovers* (grows well past the smallest ΔD norm
//! seen since the last full build, the signature of an oscillating or
//! restarted density) — which resets the accumulated error to one build's
//! worth. Full rebuilds use the static (unweighted) screening test, so a
//! run whose every build is full stays bit-identical with the
//! non-incremental driver.

use super::engine::{FockBuilder, FockContext};
use super::{DensitySet, GBuild};
use phi_linalg::Mat;

/// Reference-state bookkeeping for incremental Fock builds: the density
/// and accumulated `G` of the last build (one matrix per spin channel),
/// plus the full-rebuild policy state.
pub struct IncrementalFock {
    /// Full-rebuild period: every `k`-th build is a full rebuild, so at
    /// most `k - 1` consecutive builds are incremental. `k = 1` degenerates
    /// to the plain driver (every build full, ΔD never used).
    k: usize,
    since_full: usize,
    /// Smallest ΔD Frobenius norm seen since the last full rebuild;
    /// `INFINITY` right after one.
    min_delta: f64,
    /// Reference densities (empty until the first build).
    d_ref: Vec<Mat>,
    /// Accumulated `G(D_ref)` per channel.
    g_ref: Vec<Mat>,
}

impl IncrementalFock {
    /// A ΔD norm this many times larger than the smallest seen since the
    /// last full rebuild signals density recovery (oscillation, level-shift
    /// kick-in, restart) and forces a full rebuild.
    const RECOVERY_FACTOR: f64 = 10.0;

    /// `full_rebuild_every`: a full rebuild every this many builds
    /// (clamped to >= 1; `1` makes every build full).
    pub fn new(full_rebuild_every: usize) -> IncrementalFock {
        IncrementalFock {
            k: full_rebuild_every.max(1),
            since_full: 0,
            min_delta: f64::INFINITY,
            d_ref: Vec::new(),
            g_ref: Vec::new(),
        }
    }

    /// Build the *total* `G` for the densities in `mats` (one matrix =
    /// restricted, two = UHF alpha/beta), incrementally when the policy
    /// allows it. The returned [`GBuild`] carries the accumulated total
    /// matrices; its stats describe the work actually done this iteration
    /// (the ΔD build's shrunken quartet counts on incremental iterations).
    pub fn build(
        &mut self,
        ctx: FockContext<'_>,
        builder: &dyn FockBuilder,
        mats: &[&Mat],
    ) -> GBuild {
        assert!(
            matches!(mats.len(), 1 | 2),
            "IncrementalFock::build takes 1 (RHF) or 2 (UHF) density matrices"
        );
        let deltas: Option<Vec<Mat>> = (self.d_ref.len() == mats.len())
            .then(|| mats.iter().zip(&self.d_ref).map(|(d, r)| d.sub(r)).collect());
        let delta_norm =
            deltas.as_ref().map(|ds| ds.iter().map(|m| m.frobenius_norm()).fold(0.0, f64::max));

        let full = match delta_norm {
            // First build (or first after a checkpoint resume): no
            // reference state exists yet.
            None => true,
            Some(norm) => {
                self.since_full + 1 >= self.k
                    || (self.min_delta.is_finite() && norm > Self::RECOVERY_FACTOR * self.min_delta)
            }
        };

        let gb = if full {
            // Static screening: identical to the non-incremental driver.
            let gb = builder.build(&ctx, &dens_of(mats));
            self.since_full = 0;
            self.min_delta = f64::INFINITY;
            self.g_ref = channels_of(&gb);
            gb
        } else {
            let deltas = deltas.expect("incremental build requires reference state");
            let delta_refs: Vec<&Mat> = deltas.iter().collect();
            let dens_delta = dens_of(&delta_refs);
            // Weight the screening by ΔD: quartets whose contribution to
            // every Fock element of G(ΔD) is below tau are dropped.
            let dmax = dens_delta.density_max(ctx.basis);
            let mut gb = builder.build(&ctx.with_dmax(&dmax), &dens_delta);
            // Accumulate G_n = G_ref + G(ΔD), channel by channel.
            let mut totals = channels_of(&gb);
            for (t, r) in totals.iter_mut().zip(&self.g_ref) {
                *t = t.add(r);
            }
            gb.g = totals[0].clone();
            if let Some(gbeta) = gb.g_beta.as_mut() {
                *gbeta = totals[1].clone();
            }
            gb.stats.incremental = true;
            self.since_full += 1;
            self.min_delta = self.min_delta.min(delta_norm.expect("deltas exist"));
            self.g_ref = totals;
            gb
        };
        // Rebase the reference every iteration so ΔD is the per-iteration
        // density change, which collapses as SCF converges.
        self.d_ref = mats.iter().map(|m| (*m).clone()).collect();
        gb
    }
}

/// View a channel list as the matching [`DensitySet`].
fn dens_of<'a>(mats: &[&'a Mat]) -> DensitySet<'a> {
    match mats {
        [d] => DensitySet::Restricted(d),
        [a, b] => DensitySet::Unrestricted { alpha: a, beta: b },
        _ => unreachable!("validated by caller"),
    }
}

/// Clone the per-channel matrices out of a build result.
fn channels_of(gb: &GBuild) -> Vec<Mat> {
    let mut v = vec![gb.g.clone()];
    if let Some(b) = &gb.g_beta {
        v.push(b.clone());
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::engine::FockData;
    use crate::fock::FockAlgorithm;
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;
    use phi_chem::BasisSet;

    fn density(n: usize, seed: usize) -> Mat {
        Mat::from_fn(n, n, |i, j| {
            let (i, j) = if i >= j { (i, j) } else { (j, i) };
            0.2 + ((i * 5 + j * 11 + seed) % 7) as f64 * 0.1
        })
    }

    /// The accumulated G after a sequence of slightly-perturbed densities
    /// must track the directly-built G within the screening budget, and
    /// incremental iterations must compute fewer quartets.
    #[test]
    fn accumulated_g_tracks_direct_build() {
        let b = BasisSet::build(&small::water(), BasisName::B631g);
        let data = FockData::build(&b);
        let tau = 1e-10;
        let ctx = data.context(&b, tau);
        let builder = FockAlgorithm::Serial.builder();
        let mut inc = IncrementalFock::new(100);
        let n = b.n_basis();
        let base = density(n, 0);
        let mut full_quartets = 0;
        for step in 0..5 {
            // Shrinking perturbations, mimicking SCF convergence. Small
            // enough that `Q_ij Q_kl |ΔD|` falls below tau for a visible
            // fraction of water's quartets.
            let scale = 1e-9 * 0.1f64.powi(2 * step);
            let mut d = base.clone();
            let mut pert = density(n, step as usize + 1);
            pert.scale(scale);
            d.axpy(1.0, &pert);
            let got = inc.build(ctx, builder.as_ref(), &[&d]);
            let want = builder.build(&ctx, &DensitySet::Restricted(&d));
            assert!(
                got.g.max_abs_diff(&want.g) < 1e-6,
                "step {step}: accumulated G off by {}",
                got.g.max_abs_diff(&want.g)
            );
            if step == 0 {
                assert!(!got.stats.incremental);
                full_quartets = got.stats.quartets_computed;
            } else {
                assert!(got.stats.incremental, "step {step} should be incremental");
                assert!(
                    got.stats.quartets_computed < full_quartets,
                    "step {step}: {} quartets vs full {full_quartets}",
                    got.stats.quartets_computed
                );
            }
        }
    }

    #[test]
    fn rebuild_schedule_and_recovery_force_full_builds() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let data = FockData::build(&b);
        let ctx = data.context(&b, 1e-10);
        let builder = FockAlgorithm::Serial.builder();
        let mut inc = IncrementalFock::new(3);
        let n = b.n_basis();
        let mk = |eps: f64, seed: usize| {
            let mut d = density(n, 0);
            let mut p = density(n, seed);
            p.scale(eps);
            d.axpy(1.0, &p);
            d
        };
        // Build 0: full. Builds 1-2: incremental. Build 3: K=3 period hit.
        let seq = [mk(0.0, 1), mk(1e-4, 1), mk(2e-4, 2), mk(3e-4, 3)];
        let flags: Vec<bool> =
            seq.iter().map(|d| inc.build(ctx, builder.as_ref(), &[d]).stats.incremental).collect();
        assert_eq!(flags, vec![false, true, true, false]);
        // A tiny step then a large one: the recovery trigger fires.
        let d_small = mk(1e-9, 4);
        let d_big = mk(0.5, 5);
        assert!(inc.build(ctx, builder.as_ref(), &[&d_small]).stats.incremental);
        assert!(!inc.build(ctx, builder.as_ref(), &[&d_big]).stats.incremental);
    }

    #[test]
    fn uhf_channels_accumulate_independently() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let data = FockData::build(&b);
        let ctx = data.context(&b, 1e-10);
        let builder = FockAlgorithm::Serial.builder();
        let mut inc = IncrementalFock::new(100);
        let n = b.n_basis();
        let (base_a, base_b) = (density(n, 1), density(n, 4));
        for step in 0..3 {
            let scale = 1e-4 * 0.1f64.powi(step);
            let mut d_a = base_a.clone();
            let mut d_b = base_b.clone();
            let mut p = density(n, 7 + step as usize);
            p.scale(scale);
            d_a.axpy(1.0, &p);
            d_b.axpy(-1.0, &p);
            let got = inc.build(ctx, builder.as_ref(), &[&d_a, &d_b]);
            let want = builder.build(&ctx, &DensitySet::Unrestricted { alpha: &d_a, beta: &d_b });
            let got_b = got.g_beta.as_ref().expect("beta channel");
            let want_b = want.g_beta.as_ref().expect("beta channel");
            assert!(got.g.max_abs_diff(&want.g) < 1e-7, "alpha step {step}");
            assert!(got_b.max_abs_diff(want_b) < 1e-7, "beta step {step}");
        }
    }
}
