//! Two-electron Fock matrix construction.
//!
//! Shared machinery lives here: the canonical shell-quartet enumeration and
//! the *digestion* of one computed quartet into Fock matrix updates — the
//! paper's equations (2a)–(2f). Every algorithm then differs only in how
//! quartets are distributed over ranks/threads and where updates land,
//! which is exactly the paper's framing.
//!
//! Digestion works on the ordered-orbit principle: a unique integral
//! `(ij|kl)` stands for up to eight ordered index tuples; each distinct
//! ordered tuple `(a,b,c,d)` contributes a Coulomb update
//! `F_ab += D_cd * X` and an exchange update `F_ac -= X/2 * D_bd`
//! (closed-shell RHF). Only canonical (`row >= col`) updates are emitted —
//! mirror updates are redundant by symmetry — matching GAMESS's triangular
//! Fock storage.
//!
//! Note: Algorithm 1/2 in the paper print the inner loop bound as
//! `k==i ? lmax <- k : lmax <- j`; the canonical unique-quartet bound
//! (which the text's "symmetry-unique quartets" requires, and which GAMESS
//! implements) is `k==i ? lmax <- j : lmax <- k`. We implement the
//! canonical bound and note the typo here.

pub mod distributed;
pub mod engine;
pub mod incremental;
pub mod matrix;
pub mod mpi_only;
pub mod private_fock;
pub mod serial;
pub mod sharded;
pub mod shared_fock;

use crate::stats::FockBuildStats;
use phi_chem::BasisSet;
use phi_integrals::{Screening, ShellPairs};
use phi_linalg::Mat;

/// Which Fock-build parallelization to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FockAlgorithm {
    /// Single-threaded reference.
    Serial,
    /// Algorithm 1: MPI-only, everything replicated per rank.
    MpiOnly { n_ranks: usize },
    /// Algorithm 2: hybrid, density shared per rank, Fock private per thread.
    PrivateFock { n_ranks: usize, n_threads: usize },
    /// Algorithm 3: hybrid, density and Fock both shared per rank.
    SharedFock { n_ranks: usize, n_threads: usize },
    /// Related-work baseline: Fock distributed over ranks (one-sided
    /// accumulates), never replicated or reduced.
    Distributed { n_ranks: usize },
    /// Fully sharded: density *and* Fock live in tri-packed DDI windows;
    /// no rank ever holds a full N x N matrix. `mode` picks the DDI
    /// transport (data servers vs MPI-3 one-sided).
    Sharded { n_ranks: usize, mode: phi_dmpi::DdiMode },
}

impl FockAlgorithm {
    pub fn label(self) -> &'static str {
        match self {
            FockAlgorithm::Serial => "serial",
            FockAlgorithm::MpiOnly { .. } => "MPI-only",
            FockAlgorithm::PrivateFock { .. } => "private Fock",
            FockAlgorithm::SharedFock { .. } => "shared Fock",
            FockAlgorithm::Distributed { .. } => "distributed",
            FockAlgorithm::Sharded { .. } => "sharded",
        }
    }
}

/// Result of one two-electron Fock build, spin-generalized: restricted
/// builds fill `g` only; unrestricted builds fill `g` with the alpha
/// channel and `g_beta` with the beta channel.
pub struct GBuild {
    /// The two-electron contribution `G` (full symmetric matrix): the RHF
    /// `G(D)`, or the alpha-spin `G_alpha = J(D_t) - K(D_alpha)` of a UHF
    /// build.
    pub g: Mat,
    /// The beta-spin channel of a UHF build; `None` for restricted builds.
    pub g_beta: Option<Mat>,
    pub stats: FockBuildStats,
}

impl GBuild {
    /// Wrap a restricted (single-channel) result.
    pub fn restricted(g: Mat, stats: FockBuildStats) -> GBuild {
        GBuild { g, g_beta: None, stats }
    }

    /// Assemble from per-channel matrices (one = restricted, two = UHF
    /// alpha/beta).
    pub fn from_channels(mats: Vec<Mat>, stats: FockBuildStats) -> GBuild {
        let mut it = mats.into_iter();
        let g = it
            .next()
            .expect("from_channels needs at least one spin-channel matrix (got an empty vec)");
        GBuild { g, g_beta: it.next(), stats }
    }
}

/// Spin-generalized density input for one Fock build.
///
/// Every builder consumes this and produces the matching [`GBuild`]:
///
/// * `Restricted(D)` — closed-shell RHF; the output is
///   `G = J(D) - K(D)/2`.
/// * `Unrestricted { alpha, beta }` — the UHF spin densities (each without
///   the RHF factor of 2); the outputs are `G_s = J(D_a + D_b) - K(D_s)`
///   for `s` in alpha, beta — exactly the two-electron parts of the UHF
///   spin Fock matrices `F_s = H + G_s`. Every ERI is computed once and
///   digested into both spin channels, which is the generalization the
///   paper's conclusion points at ("UHF, GVB, DFT, CPHF all have this
///   structure").
#[derive(Clone, Copy)]
pub enum DensitySet<'a> {
    Restricted(&'a Mat),
    Unrestricted { alpha: &'a Mat, beta: &'a Mat },
}

impl<'a> DensitySet<'a> {
    /// Number of spin channels (1 restricted, 2 unrestricted).
    pub fn n_channels(&self) -> usize {
        match self {
            DensitySet::Restricted(_) => 1,
            DensitySet::Unrestricted { .. } => 2,
        }
    }

    /// Per-shell-pair density-max table over every matrix this set feeds
    /// into digestion. Restricted input bounds `|D|`; unrestricted input
    /// bounds `|D_alpha| + |D_beta|`, which dominates each spin density
    /// *and* the Coulomb source `D_total = D_alpha + D_beta` — so one
    /// table covers every channel's updates.
    pub fn density_max(&self, basis: &BasisSet) -> phi_integrals::DensityMax {
        match *self {
            DensitySet::Restricted(d) => {
                phi_integrals::DensityMax::build(basis, |p, q| d[(p, q)].abs())
            }
            DensitySet::Unrestricted { alpha, beta } => {
                phi_integrals::DensityMax::build(basis, |p, q| {
                    alpha[(p, q)].abs() + beta[(p, q)].abs()
                })
            }
        }
    }

    /// Precompute the per-build digestion data (the UHF Coulomb source
    /// `D_total = D_alpha + D_beta`). Called once per build, outside the
    /// quartet loops.
    pub fn prepare(&self) -> DensityWork<'a> {
        match *self {
            DensitySet::Restricted(d) => DensityWork::Restricted(d),
            DensitySet::Unrestricted { alpha, beta } => {
                DensityWork::Unrestricted { total: alpha.add(beta), alpha, beta }
            }
        }
    }
}

/// Prepared per-build density data: what the digestion loops actually read.
/// Public because it is the replicated backend of
/// [`matrix::DensityView`]; constructed via [`DensitySet::prepare`].
pub enum DensityWork<'a> {
    Restricted(&'a Mat),
    Unrestricted { total: Mat, alpha: &'a Mat, beta: &'a Mat },
}

impl DensityWork<'_> {
    pub(crate) fn n_channels(&self) -> usize {
        match self {
            DensityWork::Restricted(_) => 1,
            DensityWork::Unrestricted { .. } => 2,
        }
    }
}

/// Destination of canonical Fock updates (`mu >= nu` always).
pub trait FockSink {
    fn add(&mut self, mu: usize, nu: usize, v: f64);
}

/// A plain lower-triangle sink over a square row-major buffer with known
/// dimension (avoids the sqrt in the `[f64]` impl on hot paths).
pub struct TriSink<'a> {
    pub buf: &'a mut [f64],
    pub n: usize,
}

impl FockSink for TriSink<'_> {
    #[inline]
    fn add(&mut self, mu: usize, nu: usize, v: f64) {
        debug_assert!(mu >= nu);
        self.buf[mu * self.n + nu] += v;
    }
}

/// Digest one *canonical* shell quartet `(si sj | sk sl)` (shell indices
/// `si >= sj`, `sk >= sl`, `pair(si,sj) >= pair(sk,sl)`) into Fock updates.
///
/// `quartet` is the ERI buffer laid out `[n_i][n_j][n_k][n_l]`; `d` the
/// (full, symmetric) density matrix; updates flow into `sink`.
#[allow(clippy::too_many_arguments)]
pub fn digest_quartet(
    basis: &BasisSet,
    si: usize,
    sj: usize,
    sk: usize,
    sl: usize,
    quartet: &[f64],
    d: &Mat,
    sink: &mut impl FockSink,
) {
    let sh_i = &basis.shells[si];
    let sh_j = &basis.shells[sj];
    let sh_k = &basis.shells[sk];
    let sh_l = &basis.shells[sl];
    let (ni, nj, nk, nl) =
        (sh_i.n_functions(), sh_j.n_functions(), sh_k.n_functions(), sh_l.n_functions());
    let (fi, fj, fk, fl) = (sh_i.first_bf, sh_j.first_bf, sh_k.first_bf, sh_l.first_bf);
    let same_ij = si == sj;
    let same_kl = sk == sl;
    let same_pair = si == sk && sj == sl;

    for a in 0..ni {
        let mu = fi + a;
        let b_hi = if same_ij { a + 1 } else { nj };
        for b in 0..b_hi {
            let nu = fj + b;
            let munu = mu * (mu + 1) / 2 + nu;
            for c in 0..nk {
                let lam = fk + c;
                let d_hi = if same_kl { c + 1 } else { nl };
                for dd in 0..d_hi {
                    let sig = fl + dd;
                    if same_pair && lam * (lam + 1) / 2 + sig > munu {
                        continue;
                    }
                    let x = quartet[((a * nj + b) * nk + c) * nl + dd];
                    if x == 0.0 {
                        continue;
                    }
                    digest_value(mu, nu, lam, sig, x, d, sink);
                }
            }
        }
    }
}

/// Digest one canonical shell quartet into every spin channel of a
/// prepared [`DensityWork`], one sink per channel.
///
/// Restricted input routes through the monomorphic RHF fast path
/// ([`digest_quartet`]) so the closed-shell hot loop is byte-for-byte the
/// pre-engine code; unrestricted input walks the same orbit once, reading
/// the total density for Coulomb and the per-spin densities for exchange.
#[allow(clippy::too_many_arguments)]
pub(crate) fn digest_quartet_dens<S: FockSink>(
    basis: &BasisSet,
    si: usize,
    sj: usize,
    sk: usize,
    sl: usize,
    quartet: &[f64],
    dens: &DensityWork<'_>,
    sinks: &mut [S],
) {
    match dens {
        DensityWork::Restricted(d) => {
            digest_quartet(basis, si, sj, sk, sl, quartet, d, &mut sinks[0])
        }
        DensityWork::Unrestricted { total, alpha, beta } => {
            let (sa, sb) = sinks.split_at_mut(1);
            digest_quartet_uhf(
                basis, si, sj, sk, sl, quartet, total, alpha, beta, &mut sa[0], &mut sb[0],
            )
        }
    }
}

/// UHF digestion of one canonical quartet: per unique integral,
/// `G_s[ab] += D_t[ce] * X` (Coulomb, both spins) and
/// `G_s[ac] -= X * D_s[be]` (exchange, per spin, full factor — no RHF 1/2).
#[allow(clippy::too_many_arguments)]
fn digest_quartet_uhf<SA: FockSink, SB: FockSink>(
    basis: &BasisSet,
    si: usize,
    sj: usize,
    sk: usize,
    sl: usize,
    quartet: &[f64],
    d_total: &Mat,
    d_alpha: &Mat,
    d_beta: &Mat,
    sink_a: &mut SA,
    sink_b: &mut SB,
) {
    let sh_i = &basis.shells[si];
    let sh_j = &basis.shells[sj];
    let sh_k = &basis.shells[sk];
    let sh_l = &basis.shells[sl];
    let (ni, nj, nk, nl) =
        (sh_i.n_functions(), sh_j.n_functions(), sh_k.n_functions(), sh_l.n_functions());
    let (fi, fj, fk, fl) = (sh_i.first_bf, sh_j.first_bf, sh_k.first_bf, sh_l.first_bf);
    let same_ij = si == sj;
    let same_kl = sk == sl;
    let same_pair = si == sk && sj == sl;

    for a in 0..ni {
        let mu = fi + a;
        let b_hi = if same_ij { a + 1 } else { nj };
        for b in 0..b_hi {
            let nu = fj + b;
            let munu = mu * (mu + 1) / 2 + nu;
            for c in 0..nk {
                let lam = fk + c;
                let d_hi = if same_kl { c + 1 } else { nl };
                for dd in 0..d_hi {
                    let sig = fl + dd;
                    if same_pair && lam * (lam + 1) / 2 + sig > munu {
                        continue;
                    }
                    let x = quartet[((a * nj + b) * nk + c) * nl + dd];
                    if x == 0.0 {
                        continue;
                    }
                    let orbit = [
                        (mu, nu, lam, sig),
                        (nu, mu, lam, sig),
                        (mu, nu, sig, lam),
                        (nu, mu, sig, lam),
                        (lam, sig, mu, nu),
                        (sig, lam, mu, nu),
                        (lam, sig, nu, mu),
                        (sig, lam, nu, mu),
                    ];
                    for (idx, &(p, q, r, s)) in orbit.iter().enumerate() {
                        if orbit[..idx].contains(&(p, q, r, s)) {
                            continue;
                        }
                        if p >= q {
                            let j = d_total[(r, s)] * x;
                            sink_a.add(p, q, j);
                            sink_b.add(p, q, j);
                        }
                        if p >= r {
                            sink_a.add(p, r, -x * d_alpha[(q, s)]);
                            sink_b.add(p, r, -x * d_beta[(q, s)]);
                        }
                    }
                }
            }
        }
    }
}

/// Apply the updates of one unique integral value over its ordered orbit,
/// with separate Coulomb and exchange scale factors.
///
/// The closed-shell RHF digestion is `(cj, ck) = (1, -1/2)`; the
/// open-shell builders (UHF) recombine passes with other factors —
/// exactly the generalization the paper's conclusion points at ("UHF,
/// GVB, DFT, CPHF all have this structure").
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn digest_value_scaled(
    mu: usize,
    nu: usize,
    lam: usize,
    sig: usize,
    x: f64,
    d: &Mat,
    cj: f64,
    ck: f64,
    sink: &mut impl FockSink,
) {
    let orbit = [
        (mu, nu, lam, sig),
        (nu, mu, lam, sig),
        (mu, nu, sig, lam),
        (nu, mu, sig, lam),
        (lam, sig, mu, nu),
        (sig, lam, mu, nu),
        (lam, sig, nu, mu),
        (sig, lam, nu, mu),
    ];
    for (idx, &(a, b, c, e)) in orbit.iter().enumerate() {
        if orbit[..idx].contains(&(a, b, c, e)) {
            continue;
        }
        if cj != 0.0 && a >= b {
            sink.add(a, b, cj * d[(c, e)] * x);
        }
        if ck != 0.0 && a >= c {
            sink.add(a, c, ck * x * d[(b, e)]);
        }
    }
}

/// Apply the updates of one unique integral value over its ordered orbit.
#[inline]
pub fn digest_value(
    mu: usize,
    nu: usize,
    lam: usize,
    sig: usize,
    x: f64,
    d: &Mat,
    sink: &mut impl FockSink,
) {
    // The eight ordered representatives of the orbit.
    let orbit = [
        (mu, nu, lam, sig),
        (nu, mu, lam, sig),
        (mu, nu, sig, lam),
        (nu, mu, sig, lam),
        (lam, sig, mu, nu),
        (sig, lam, mu, nu),
        (lam, sig, nu, mu),
        (sig, lam, nu, mu),
    ];
    for (idx, &(a, b, c, e)) in orbit.iter().enumerate() {
        // Skip duplicates arising from index coincidences.
        if orbit[..idx].contains(&(a, b, c, e)) {
            continue;
        }
        // Coulomb: F_ab += D_ce * X  (canonical emission only).
        if a >= b {
            sink.add(a, b, d[(c, e)] * x);
        }
        // Exchange: F_ac -= X/2 * D_be (canonical emission only).
        if a >= c {
            sink.add(a, c, -0.5 * x * d[(b, e)]);
        }
    }
}

/// Mirror a lower-triangular accumulation into a full symmetric matrix.
pub fn tri_to_full(buf: &[f64], n: usize) -> Mat {
    let mut m = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = buf[i * n + j];
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    m
}

/// Canonical shell-quartet enumeration shared by the serial and MPI-only
/// builders: yields `(k, l)` for a given `(i, j)` task.
#[inline]
pub fn kl_bounds(i: usize, j: usize, k: usize) -> usize {
    // l runs over 0..=bound; canonical unique-quartet bound (see module
    // docs on the paper's typo).
    if k == i {
        j
    } else {
        k
    }
}

/// Triangular pair index of shells `i >= j` (the combined `ij` task index
/// of Algorithm 3).
#[inline]
pub fn pair_index(i: usize, j: usize) -> usize {
    debug_assert!(i >= j);
    i * (i + 1) / 2 + j
}

/// Inverse of [`pair_index`]: recover `(i, j)` from a combined index
/// (Algorithm 3 lines 11 and 21, "deduce I and J indices").
#[inline]
pub fn pair_decode(t: usize) -> (usize, usize) {
    let mut i = ((((8 * t + 1) as f64).sqrt() as usize).max(1) - 1) / 2;
    while (i + 1) * (i + 2) / 2 <= t {
        i += 1;
    }
    while i * (i + 1) / 2 > t {
        i -= 1;
    }
    (i, t - i * (i + 1) / 2)
}

/// Brute-force reference: build G (the two-electron Fock contribution)
/// from all ERIs with no symmetry exploitation. O(N^4) quartet evaluations
/// — tests only.
pub fn brute_force_g(basis: &BasisSet, d: &Mat) -> Mat {
    use phi_integrals::EriEngine;
    let n = basis.n_basis();
    let ns = basis.n_shells();
    let mut g = Mat::zeros(n, n);
    let mut engine = EriEngine::new();
    engine.prefactor_cutoff = 0.0;
    let mut buf = Vec::new();
    for si in 0..ns {
        for sj in 0..ns {
            for sk in 0..ns {
                for sl in 0..ns {
                    let (a, b, c, e) = (
                        &basis.shells[si],
                        &basis.shells[sj],
                        &basis.shells[sk],
                        &basis.shells[sl],
                    );
                    buf.clear();
                    buf.resize(
                        a.n_functions() * b.n_functions() * c.n_functions() * e.n_functions(),
                        0.0,
                    );
                    engine.shell_quartet(a, b, c, e, &mut buf);
                    for ia in 0..a.n_functions() {
                        for ib in 0..b.n_functions() {
                            for ic in 0..c.n_functions() {
                                for id in 0..e.n_functions() {
                                    let x = buf[((ia * b.n_functions() + ib) * c.n_functions()
                                        + ic)
                                        * e.n_functions()
                                        + id];
                                    let (mu, nu, lam, sig) = (
                                        a.first_bf + ia,
                                        b.first_bf + ib,
                                        c.first_bf + ic,
                                        e.first_bf + id,
                                    );
                                    // J
                                    g[(mu, nu)] += d[(lam, sig)] * x;
                                    // K with the RHF -1/2 factor.
                                    g[(mu, lam)] -= 0.5 * d[(nu, sig)] * x;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    g
}

/// Statistics-free convenience used by several builders: evaluate one
/// quartet with screening and digest it.
pub struct QuartetWorker {
    pub engine: phi_integrals::EriEngine,
    buf: Vec<f64>,
}

impl Default for QuartetWorker {
    fn default() -> Self {
        Self::new()
    }
}

impl QuartetWorker {
    pub fn new() -> QuartetWorker {
        QuartetWorker { engine: phi_integrals::EriEngine::new(), buf: Vec::new() }
    }

    /// Evaluate and digest quartet `(si sj | sk sl)` if it survives
    /// screening, using the shared pair dataset. Returns true if computed.
    #[allow(clippy::too_many_arguments)]
    pub fn process(
        &mut self,
        basis: &BasisSet,
        pairs: &ShellPairs,
        screening: &Screening,
        tau: f64,
        si: usize,
        sj: usize,
        sk: usize,
        sl: usize,
        d: &Mat,
        sink: &mut impl FockSink,
    ) -> bool {
        if !screening.survives(si, sj, sk, sl, tau) {
            return false;
        }
        let (bra, ket) = (pairs.pair(si, sj), pairs.pair(sk, sl));
        self.buf.clear();
        self.buf.resize(bra.n_fn() * ket.n_fn(), 0.0);
        self.engine.shell_quartet_pairs(bra, ket, &mut self.buf);
        digest_quartet(basis, si, sj, sk, sl, &self.buf, d, sink);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;

    fn test_density(n: usize) -> Mat {
        // A symmetric, not-too-structured density stand-in.
        let mut d = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = 0.3 + 0.1 * ((i * 7 + j * 3) % 5) as f64 - 0.05 * (i as f64 - j as f64);
                d[(i, j)] = v;
                d[(j, i)] = v;
            }
        }
        d
    }

    #[test]
    fn serial_digestion_matches_brute_force() {
        for (mol, basis) in [
            (small::hydrogen_molecule(1.4), BasisName::Sto3g),
            (small::water(), BasisName::Sto3g),
            (small::water(), BasisName::B631g),
        ] {
            let b = BasisSet::build(&mol, basis);
            let n = b.n_basis();
            let d = test_density(n);
            let want = brute_force_g(&b, &d);
            let pairs = ShellPairs::build(&b);
            let s = Screening::from_pairs(&b, &pairs);
            let got = serial::build_g_serial(&b, &pairs, &s, 0.0, &d).g;
            assert!(
                got.max_abs_diff(&want) < 1e-10,
                "{:?}: digestion differs from brute force by {}",
                basis,
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn digestion_with_d_functions_matches_brute_force() {
        let b = BasisSet::build(&small::water(), BasisName::B631gd);
        let n = b.n_basis();
        let d = test_density(n);
        let want = brute_force_g(&b, &d);
        let pairs = ShellPairs::build(&b);
        let s = Screening::from_pairs(&b, &pairs);
        let got = serial::build_g_serial(&b, &pairs, &s, 0.0, &d).g;
        assert!(got.max_abs_diff(&want) < 1e-9, "differs by {}", got.max_abs_diff(&want));
    }

    #[test]
    fn screening_changes_g_only_within_tau_budget() {
        let b = BasisSet::build(&small::h_chain(6, 2.5), BasisName::Sto3g);
        let n = b.n_basis();
        let d = test_density(n);
        let pairs = ShellPairs::build(&b);
        let s = Screening::from_pairs(&b, &pairs);
        let exact = serial::build_g_serial(&b, &pairs, &s, 0.0, &d).g;
        let screened = serial::build_g_serial(&b, &pairs, &s, 1e-9, &d).g;
        // Dropped quartets are bounded by tau * |D| * multiplicity; stay
        // well under a conservative bound.
        assert!(exact.max_abs_diff(&screened) < 1e-6);
        let coarse = serial::build_g_serial(&b, &pairs, &s, 1e-3, &d).g;
        assert!(exact.max_abs_diff(&coarse) > exact.max_abs_diff(&screened));
    }

    #[test]
    fn orbit_dedup_handles_all_coincidence_patterns() {
        // Exercise digest_value on every index-coincidence pattern and
        // compare against an equivalent brute-force ordered expansion.
        let n = 4;
        let d = test_density(n);
        let cases = [
            (3, 2, 1, 0), // all distinct
            (2, 2, 1, 0), // i == j
            (3, 2, 1, 1), // k == l
            (2, 2, 1, 1), // both diagonal
            (3, 2, 3, 2), // pair equality
            (2, 2, 2, 2), // fully diagonal
            (3, 1, 3, 1),
        ];
        for (mu, nu, lam, sig) in cases {
            let x = 0.7;
            let mut got = vec![0.0; n * n];
            {
                let mut sink = TriSink { buf: &mut got, n };
                digest_value(mu, nu, lam, sig, x, &d, &mut sink);
            }
            // Reference: enumerate the orbit as a set, apply full updates.
            let mut orbit = vec![
                (mu, nu, lam, sig),
                (nu, mu, lam, sig),
                (mu, nu, sig, lam),
                (nu, mu, sig, lam),
                (lam, sig, mu, nu),
                (sig, lam, mu, nu),
                (lam, sig, nu, mu),
                (sig, lam, nu, mu),
            ];
            orbit.sort_unstable();
            orbit.dedup();
            let mut want_full = Mat::zeros(n, n);
            for &(a, b, c, e) in &orbit {
                want_full[(a, b)] += d[(c, e)] * x;
                want_full[(a, c)] -= 0.5 * x * d[(b, e)];
            }
            // Compare lower triangles (the sink only receives canonical).
            for r in 0..n {
                for c in 0..=r {
                    assert!(
                        (got[r * n + c] - want_full[(r, c)]).abs() < 1e-13,
                        "case {:?} element ({r},{c}): {} vs {}",
                        (mu, nu, lam, sig),
                        got[r * n + c],
                        want_full[(r, c)]
                    );
                }
            }
        }
    }

    #[test]
    fn pair_encode_decode_roundtrip() {
        let mut t = 0;
        for i in 0..60 {
            for j in 0..=i {
                assert_eq!(pair_index(i, j), t);
                assert_eq!(pair_decode(t), (i, j));
                t += 1;
            }
        }
        // A large index as well.
        let big = pair_index(8063, 4000);
        assert_eq!(pair_decode(big), (8063, 4000));
    }

    #[test]
    fn tri_to_full_mirrors() {
        let buf = vec![1.0, 0.0, 2.0, 3.0];
        let m = tri_to_full(&buf, 2);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 1)], 3.0);
    }
}
