//! The unified Fock-build engine: one context, one builder abstraction.
//!
//! The paper's framing (§3) is that Algorithms 1–3 differ *only* in how
//! shell quartets are distributed over ranks/threads and where the updates
//! land. This module makes that structural claim literal in the API:
//!
//! * [`FockContext`] — the per-(geometry, basis) invariants every build
//!   reads: the basis, the persistent [`ShellPairs`] dataset, the Schwarz
//!   [`Screening`] and the threshold `tau`. Drivers construct it once (via
//!   [`FockData`]) and hand the same context to every iteration.
//! * [`FockBuilder`] — the one-method trait each algorithm implements.
//!   Rank/thread topology lives in the builder (it is part of *how* the
//!   algorithm distributes work, not of the problem), mirroring how
//!   [`FockAlgorithm`] variants carry their own `n_ranks`/`n_threads`.
//! * [`DensitySet`] — the spin-generalized input (one matrix for RHF, an
//!   α/β pair for UHF), so every parallel algorithm serves both SCF
//!   drivers from a single code path.
//!
//! Every build returns the same [`GBuild`]: per-channel `G` matrices plus
//! [`crate::stats::FockBuildStats`] collected identically across
//! algorithms (quartets computed/screened, DLB counter calls, buffer
//! flushes, wall time, tracked memory). Adding an algorithm is now one
//! file implementing one trait, not a five-file surgery.

use super::shared_fock::TaskPrescreen;
use super::{DensitySet, FockAlgorithm, GBuild};
use phi_chem::BasisSet;
use phi_dmpi::{FaultPlan, RetryPolicy};
use phi_integrals::{DensityMax, Screening, ShellPairs};

/// Borrowed view of everything a Fock build needs besides the density:
/// basis, shell-pair dataset, screening, and the Schwarz threshold.
///
/// Cheap to copy (a few references and a float); build one per SCF run
/// from a [`FockData`] and pass it to every [`FockBuilder::build`] call.
#[derive(Clone, Copy)]
pub struct FockContext<'a> {
    pub basis: &'a BasisSet,
    pub pairs: &'a ShellPairs,
    pub screening: &'a Screening,
    /// Schwarz screening threshold on `Q_ij * Q_kl`.
    pub tau: f64,
    /// Per-shell-pair density-max table for density-weighted screening.
    /// `None` (the default) keeps the static `Q_ij * Q_kl >= tau` test and
    /// bit-identical results with pre-incremental builds; incremental
    /// drivers refresh a table from ΔD each iteration and attach it with
    /// [`FockContext::with_dmax`].
    pub dmax: Option<&'a DensityMax>,
    /// Route ERI evaluation through the class-specialized kernels
    /// (default). Cleared by differential tests and ablations to force the
    /// generic recursion in every builder's engines.
    pub eri_kernels: bool,
}

impl<'a> FockContext<'a> {
    pub fn new(
        basis: &'a BasisSet,
        pairs: &'a ShellPairs,
        screening: &'a Screening,
        tau: f64,
    ) -> FockContext<'a> {
        FockContext { basis, pairs, screening, tau, dmax: None, eri_kernels: true }
    }

    /// The same context with a density-max table attached: every builder's
    /// quartet test and `ij`-task prescreen become density-weighted.
    pub fn with_dmax(mut self, dmax: &'a DensityMax) -> FockContext<'a> {
        self.dmax = Some(dmax);
        self
    }

    /// The same context with the class-specialized ERI kernels toggled —
    /// `with_eri_kernels(false)` is the generic-path side of end-to-end
    /// kernels-on-vs-off differential tests.
    pub fn with_eri_kernels(mut self, on: bool) -> FockContext<'a> {
        self.eri_kernels = on;
        self
    }

    /// A fresh ERI engine configured per this context's kernel policy.
    /// Every builder's per-thread engines come from here, so the one
    /// toggle covers all algorithms.
    pub fn engine(&self) -> phi_integrals::EriEngine {
        let mut e = phi_integrals::EriEngine::new();
        e.use_kernels = self.eri_kernels;
        e
    }

    /// The quartet-level screening test every builder applies: static
    /// Schwarz when no density table is attached, density-weighted
    /// otherwise.
    #[inline]
    pub fn survives(&self, i: usize, j: usize, k: usize, l: usize) -> bool {
        self.screening.survives_weighted(self.dmax, i, j, k, l, self.tau)
    }

    /// The `ij`-task-level prescreen (Algorithm 3, line 13), weighted by
    /// the attached density table when present.
    #[inline]
    pub fn task_survives(&self, i: usize, j: usize) -> bool {
        self.screening.task_survives_weighted(self.dmax, i, j, self.tau)
    }
}

/// Owned per-(geometry, basis) build data: the persistent shell-pair
/// dataset and the Schwarz screening derived from it. Built once per SCF
/// run and shared read-only by every iteration, rank and thread.
pub struct FockData {
    pub pairs: ShellPairs,
    pub screening: Screening,
}

impl FockData {
    /// Build the pair dataset and its Schwarz screening for `basis`.
    pub fn build(basis: &BasisSet) -> FockData {
        let pairs = ShellPairs::build(basis);
        let screening = Screening::from_pairs(basis, &pairs);
        FockData { pairs, screening }
    }

    /// Borrow a [`FockContext`] over this data.
    pub fn context<'a>(&'a self, basis: &'a BasisSet, tau: f64) -> FockContext<'a> {
        FockContext::new(basis, &self.pairs, &self.screening, tau)
    }
}

/// One Fock-build algorithm: consumes a spin-generalized density set and
/// produces the matching two-electron matrices with uniform statistics.
pub trait FockBuilder {
    /// Build `G` for every spin channel of `dens`.
    fn build(&self, ctx: &FockContext<'_>, dens: &DensitySet<'_>) -> GBuild;

    /// Human-readable algorithm name (for logs and bench tables).
    fn label(&self) -> &'static str;
}

/// Single-threaded reference build ([`super::serial`]).
pub struct SerialBuilder;

impl FockBuilder for SerialBuilder {
    fn build(&self, ctx: &FockContext<'_>, dens: &DensitySet<'_>) -> GBuild {
        super::serial::build_serial(ctx, dens)
    }

    fn label(&self) -> &'static str {
        "serial"
    }
}

/// Algorithm 1: MPI-only, everything replicated per rank
/// ([`super::mpi_only`]).
pub struct MpiOnlyBuilder {
    pub n_ranks: usize,
    /// Deterministic fault plan applied to every build; `None` runs clean.
    pub faults: Option<FaultPlan>,
    /// Reliable-delivery policy for the world's message path.
    pub retry: RetryPolicy,
}

impl FockBuilder for MpiOnlyBuilder {
    fn build(&self, ctx: &FockContext<'_>, dens: &DensitySet<'_>) -> GBuild {
        super::mpi_only::build_mpi_only(ctx, dens, self.n_ranks, self.faults.as_ref(), self.retry)
    }

    fn label(&self) -> &'static str {
        "MPI-only"
    }
}

/// Algorithm 2: hybrid, shared density, thread-private Fock
/// ([`super::private_fock`]).
pub struct PrivateFockBuilder {
    pub n_ranks: usize,
    pub n_threads: usize,
    /// Deterministic fault plan applied to every build; `None` runs clean.
    pub faults: Option<FaultPlan>,
    /// Reliable-delivery policy for the world's message path.
    pub retry: RetryPolicy,
}

impl FockBuilder for PrivateFockBuilder {
    fn build(&self, ctx: &FockContext<'_>, dens: &DensitySet<'_>) -> GBuild {
        super::private_fock::build_private_fock(
            ctx,
            dens,
            self.n_ranks,
            self.n_threads,
            self.faults.as_ref(),
            self.retry,
        )
    }

    fn label(&self) -> &'static str {
        "private Fock"
    }
}

/// Algorithm 3: hybrid, density and Fock both shared per rank
/// ([`super::shared_fock`]), with the task-prescreen and lazy-FI-flush
/// knobs exposed for ablations.
pub struct SharedFockBuilder {
    pub n_ranks: usize,
    pub n_threads: usize,
    pub prescreen: TaskPrescreen,
    pub lazy_fi: bool,
    /// Deterministic fault plan applied to every build; `None` runs clean.
    pub faults: Option<FaultPlan>,
    /// Reliable-delivery policy for the world's message path.
    pub retry: RetryPolicy,
}

impl SharedFockBuilder {
    /// The paper's default configuration: QMax task prescreen, lazy FI.
    pub fn new(n_ranks: usize, n_threads: usize) -> SharedFockBuilder {
        SharedFockBuilder {
            n_ranks,
            n_threads,
            prescreen: TaskPrescreen::QMax,
            lazy_fi: true,
            faults: None,
            retry: RetryPolicy::default(),
        }
    }
}

impl FockBuilder for SharedFockBuilder {
    fn build(&self, ctx: &FockContext<'_>, dens: &DensitySet<'_>) -> GBuild {
        super::shared_fock::build_shared_fock_set(
            ctx,
            dens,
            self.n_ranks,
            self.n_threads,
            self.prescreen,
            self.lazy_fi,
            self.faults.as_ref(),
            self.retry,
        )
    }

    fn label(&self) -> &'static str {
        "shared Fock"
    }
}

/// Fully sharded build: density *and* Fock live in tri-packed
/// [`phi_dmpi::DistributedArray`] windows, no rank ever materializes a
/// full `N x N` matrix ([`super::sharded`]).
pub struct ShardedBuilder {
    pub n_ranks: usize,
    /// DDI transport the get/accumulate windows model.
    pub mode: phi_dmpi::DdiMode,
    /// Deterministic fault plan applied to every build; `None` runs clean.
    pub faults: Option<FaultPlan>,
    /// Reliable-delivery policy for the world and the window links.
    pub retry: RetryPolicy,
}

impl FockBuilder for ShardedBuilder {
    fn build(&self, ctx: &FockContext<'_>, dens: &DensitySet<'_>) -> GBuild {
        super::sharded::build_sharded(
            ctx,
            dens,
            self.n_ranks,
            self.mode,
            self.faults.as_ref(),
            self.retry,
        )
    }

    fn label(&self) -> &'static str {
        "sharded"
    }
}

/// Related-work baseline: Fock distributed over ranks with one-sided
/// accumulates ([`super::distributed`]).
pub struct DistributedBuilder {
    pub n_ranks: usize,
    /// Deterministic fault plan applied to every build; `None` runs clean.
    pub faults: Option<FaultPlan>,
    /// Reliable-delivery policy for the world and the window links.
    pub retry: RetryPolicy,
}

impl FockBuilder for DistributedBuilder {
    fn build(&self, ctx: &FockContext<'_>, dens: &DensitySet<'_>) -> GBuild {
        super::distributed::build_distributed(
            ctx,
            dens,
            self.n_ranks,
            self.faults.as_ref(),
            self.retry,
        )
    }

    fn label(&self) -> &'static str {
        "distributed"
    }
}

impl FockAlgorithm {
    /// The [`FockBuilder`] implementing this algorithm (no fault plan).
    pub fn builder(self) -> Box<dyn FockBuilder> {
        self.builder_with_faults(None)
    }

    /// The [`FockBuilder`] implementing this algorithm under `faults`,
    /// with the default [`RetryPolicy`].
    pub fn builder_with_faults(self, faults: Option<FaultPlan>) -> Box<dyn FockBuilder> {
        self.builder_with_comm(faults, RetryPolicy::default())
    }

    /// The [`FockBuilder`] implementing this algorithm under `faults`
    /// and the reliable-delivery policy `retry`.
    ///
    /// The serial reference build runs in-process with no ranks to kill
    /// and no messages to lose; it ignores both. Every parallel builder
    /// threads them into its world so rank kills, stragglers and message
    /// faults replay deterministically on each SCF iteration — and so
    /// transient message faults drain into acked retransmission instead
    /// of the kill path.
    pub fn builder_with_comm(
        self,
        faults: Option<FaultPlan>,
        retry: RetryPolicy,
    ) -> Box<dyn FockBuilder> {
        match self {
            FockAlgorithm::Serial => Box::new(SerialBuilder),
            FockAlgorithm::MpiOnly { n_ranks } => {
                Box::new(MpiOnlyBuilder { n_ranks, faults, retry })
            }
            FockAlgorithm::PrivateFock { n_ranks, n_threads } => {
                Box::new(PrivateFockBuilder { n_ranks, n_threads, faults, retry })
            }
            FockAlgorithm::SharedFock { n_ranks, n_threads } => Box::new(SharedFockBuilder {
                faults,
                retry,
                ..SharedFockBuilder::new(n_ranks, n_threads)
            }),
            FockAlgorithm::Distributed { n_ranks } => {
                Box::new(DistributedBuilder { n_ranks, faults, retry })
            }
            FockAlgorithm::Sharded { n_ranks, mode } => {
                Box::new(ShardedBuilder { n_ranks, mode, faults, retry })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;
    use phi_linalg::Mat;

    fn density(n: usize, seed: usize) -> Mat {
        Mat::from_fn(n, n, |i, j| {
            let (i, j) = if i >= j { (i, j) } else { (j, i) };
            0.2 + ((i * 5 + j * 11 + seed) % 7) as f64 * 0.1
        })
    }

    #[test]
    fn every_algorithm_builds_restricted_through_the_trait() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let data = FockData::build(&b);
        let ctx = data.context(&b, 1e-12);
        let d = density(b.n_basis(), 0);
        let want = FockAlgorithm::Serial.builder().build(&ctx, &DensitySet::Restricted(&d));
        for alg in [
            FockAlgorithm::MpiOnly { n_ranks: 2 },
            FockAlgorithm::PrivateFock { n_ranks: 1, n_threads: 3 },
            FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
            FockAlgorithm::Distributed { n_ranks: 3 },
            FockAlgorithm::Sharded { n_ranks: 3, mode: phi_dmpi::DdiMode::Mpi3OneSided },
        ] {
            let builder = alg.builder();
            let got = builder.build(&ctx, &DensitySet::Restricted(&d));
            assert!(
                got.g.max_abs_diff(&want.g) < 1e-10,
                "{}: diff {}",
                builder.label(),
                got.g.max_abs_diff(&want.g)
            );
            assert!(got.g_beta.is_none());
            assert!(got.stats.quartets_computed > 0);
        }
    }

    #[test]
    fn every_algorithm_builds_unrestricted_through_the_trait() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let data = FockData::build(&b);
        let ctx = data.context(&b, 1e-12);
        let d_a = density(b.n_basis(), 1);
        let d_b = density(b.n_basis(), 4);
        let dens = DensitySet::Unrestricted { alpha: &d_a, beta: &d_b };
        let want = FockAlgorithm::Serial.builder().build(&ctx, &dens);
        let want_b = want.g_beta.as_ref().expect("serial UHF beta channel");
        for alg in [
            FockAlgorithm::MpiOnly { n_ranks: 2 },
            FockAlgorithm::PrivateFock { n_ranks: 2, n_threads: 2 },
            FockAlgorithm::SharedFock { n_ranks: 1, n_threads: 3 },
            FockAlgorithm::Distributed { n_ranks: 2 },
            FockAlgorithm::Sharded { n_ranks: 2, mode: phi_dmpi::DdiMode::DataServer },
        ] {
            let builder = alg.builder();
            let got = builder.build(&ctx, &dens);
            let got_b = got.g_beta.as_ref().expect("UHF build returns a beta channel");
            assert!(
                got.g.max_abs_diff(&want.g) < 1e-10,
                "{} alpha: diff {}",
                builder.label(),
                got.g.max_abs_diff(&want.g)
            );
            assert!(
                got_b.max_abs_diff(want_b) < 1e-10,
                "{} beta: diff {}",
                builder.label(),
                got_b.max_abs_diff(want_b)
            );
        }
    }

    #[test]
    fn dlb_builders_report_counter_calls() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let data = FockData::build(&b);
        let ctx = data.context(&b, 1e-12);
        let d = density(b.n_basis(), 2);
        for alg in [
            FockAlgorithm::MpiOnly { n_ranks: 2 },
            FockAlgorithm::PrivateFock { n_ranks: 2, n_threads: 2 },
            FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
            FockAlgorithm::Distributed { n_ranks: 2 },
            FockAlgorithm::Sharded { n_ranks: 2, mode: phi_dmpi::DdiMode::Mpi3OneSided },
        ] {
            let got = alg.builder().build(&ctx, &DensitySet::Restricted(&d));
            // Every DLB-driven builder makes at least one counter call per
            // task plus each rank's final out-of-range claim.
            assert!(
                got.stats.dlb_calls > got.stats.dlb_tasks,
                "{}: dlb_calls {} vs tasks {}",
                alg.label(),
                got.stats.dlb_calls,
                got.stats.dlb_tasks
            );
        }
        // The serial path never touches the counter.
        let serial = FockAlgorithm::Serial.builder().build(&ctx, &DensitySet::Restricted(&d));
        assert_eq!(serial.stats.dlb_calls, 0);
    }
}
