//! Algorithm 1: the stock GAMESS MPI-only Fock build.
//!
//! Every rank replicates the density matrices, overlap matrix, MO
//! coefficients and its own Fock accumulation buffers. Work is distributed
//! by the global DLB counter over `(i, j)` shell-pair tasks; each task runs
//! the full canonical `(k, l)` loops. The final Fock matrices are summed
//! over ranks with `gsumf`.
//!
//! The memory pathology the paper attacks is visible here by construction:
//! the replicated matrices are *really allocated* per rank through the
//! tracker, so the returned report scales linearly with the rank count.

use super::engine::FockContext;
use super::matrix::ReplicatedFock;
use super::{digest_quartet_dens, kl_bounds, pair_decode, DensitySet};
use crate::stats::FockBuildStats;
use phi_chem::BasisSet;
use phi_dmpi::{FaultPlan, LeaseMode, RetryPolicy, WorldConfig};
use phi_integrals::{Screening, ShellPairs};
use phi_linalg::Mat;
use std::time::Instant;

pub use super::GBuild;

/// Bytes of replicated read-only matrices a real GAMESS process carries
/// besides D and F: overlap S, core Hamiltonian H, and MO coefficients C.
/// (We charge them to the tracker; the build itself only needs D.)
fn replicated_readonly_bytes(n: usize) -> usize {
    3 * n * n * std::mem::size_of::<f64>()
}

/// Build the two-electron matrices for `dens` with Algorithm 1 over
/// `n_ranks` ranks, optionally under deterministic fault injection.
/// Tasks leased to a rank that dies mid-build are reclaimed and
/// recomputed by survivors, so the result matches serial regardless of
/// how many (< all) ranks fail.
pub fn build_mpi_only(
    ctx: &FockContext<'_>,
    dens: &DensitySet<'_>,
    n_ranks: usize,
    faults: Option<&FaultPlan>,
    retry: RetryPolicy,
) -> GBuild {
    let basis = ctx.basis;
    let n = basis.n_basis();
    let ns = basis.n_shells();
    let n_pair = ns * (ns + 1) / 2;
    let work = dens.prepare();
    let nch = work.n_channels();

    let cfg = WorldConfig { n_ranks, faults: faults.cloned(), retry };
    let world = phi_dmpi::run_world_with_config(cfg, |rank| {
        let _span = phi_trace::span("fock.build");
        let start = Instant::now();
        // Replicated data structures, one full set per rank (the paper's
        // memory bottleneck): every spin-channel density plus the
        // read-only matrices.
        let mut d_local = rank.alloc_f64(nch * n * n);
        match *dens {
            DensitySet::Restricted(d) => d_local.copy_from_slice(d.as_slice()),
            DensitySet::Unrestricted { alpha, beta } => {
                d_local[..n * n].copy_from_slice(alpha.as_slice());
                d_local[n * n..].copy_from_slice(beta.as_slice());
            }
        }
        rank.charge_bytes(replicated_readonly_bytes(n));
        // The shell-pair dataset: one read-only copy per MPI process (in a
        // real multi-process run each rank materializes its own).
        rank.charge_bytes(ctx.pairs.bytes());
        // The replicated write side, charged to the tracker like every
        // other full-matrix allocation.
        let mut fock = ReplicatedFock::new(nch, n);
        rank.charge_bytes(fock.bytes());

        let mut engine = ctx.engine();
        let mut eri_buf: Vec<f64> = Vec::new();
        let mut computed = 0u64;
        let mut screened = 0u64;
        let mut tasks = 0usize;

        // Fock accumulators are volatile: a dead rank's partial sums
        // never reach the reduction, so everything it ever computed is
        // reissued to survivors.
        let mut dead = rank.lease_reset(n_pair, LeaseMode::Volatile).is_err();
        if !dead {
            let mut sinks = fock.sinks();
            loop {
                let t = match rank.lease_next() {
                    Ok(Some(t)) => t,
                    Ok(None) => break,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                };
                tasks += 1;
                let (i, j) = pair_decode(t);
                for k in 0..=i {
                    for l in 0..=kl_bounds(i, j, k) {
                        if !ctx.survives(i, j, k, l) {
                            screened += 1;
                            continue;
                        }
                        let (bra, ket) = (ctx.pairs.pair(i, j), ctx.pairs.pair(k, l));
                        eri_buf.clear();
                        eri_buf.resize(bra.n_fn() * ket.n_fn(), 0.0);
                        engine.shell_quartet_pairs(bra, ket, &mut eri_buf);
                        digest_quartet_dens(basis, i, j, k, l, &eri_buf, &work, &mut sinks);
                        computed += 1;
                    }
                }
                rank.lease_complete(t);
            }
        }

        // 2e-Fock matrix reduction over the surviving MPI ranks
        // (Algorithm 1 line 16) — one collective covering every spin
        // channel. Dead ranks have deregistered and must stay out.
        if !dead {
            dead = rank.try_gsumf(fock.as_mut_slice()).is_err();
        }

        rank.release_bytes(replicated_readonly_bytes(n));
        rank.release_bytes(ctx.pairs.bytes());
        rank.release_bytes(fock.bytes());
        // Once per rank per build: totals reconcile exactly with the
        // merged FockBuildStats (no per-quartet events on the hot path).
        phi_trace::counter("quartets_computed", computed);
        phi_trace::counter("quartets_screened", screened);
        phi_trace::counter("flushes", 0);
        phi_trace::counter("eri.spec_quartets", engine.spec_quartets_computed());
        let result = if !dead && rank.is_lowest_live() { Some(fock) } else { None };
        (
            result,
            FockBuildStats {
                seconds: start.elapsed().as_secs_f64(),
                quartets_computed: computed,
                quartets_screened: screened,
                prim_quartets: engine.prim_quartets_computed(),
                eri_class_quartets: engine.class_counts().to_vec(),
                dlb_tasks: tasks,
                ..Default::default()
            },
        )
    });

    let failed = world.failed_ranks();
    let mut stats = FockBuildStats::default();
    let mut g_buf = None;
    for (buf, s) in world.per_rank {
        stats = FockBuildStats::merge(stats, &s);
        if let Some(b) = buf {
            g_buf = Some(b);
        }
    }
    stats.memory_total_peak = world.memory.total_peak();
    stats.per_rank_peak = world.memory.per_rank_peak.clone();
    stats.dlb_calls = world.dlb_calls;
    stats.faults_injected = world.faults_injected;
    stats.tasks_reclaimed = world.tasks_reclaimed;
    stats.retries = world.lease_retries;
    stats.failed_ranks = failed.clone();
    stats.retransmits = world.retransmits;
    stats.acks = world.acks;
    stats.corruptions_detected = world.corruptions_detected;
    stats.transient_recoveries = world.transient_recoveries;
    let fock = g_buf.unwrap_or_else(|| {
        panic!("no surviving rank returned the reduced Fock (failed ranks: {failed:?})")
    });
    GBuild::from_channels(fock.into_mats(), stats)
}

/// Restricted convenience wrapper over [`build_mpi_only`].
pub fn build_g_mpi_only(
    basis: &BasisSet,
    pairs: &ShellPairs,
    screening: &Screening,
    tau: f64,
    d: &Mat,
    n_ranks: usize,
) -> GBuild {
    build_mpi_only(
        &FockContext::new(basis, pairs, screening, tau),
        &DensitySet::Restricted(d),
        n_ranks,
        None,
        RetryPolicy::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::serial::build_g_serial;
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;

    fn density(n: usize) -> Mat {
        Mat::from_fn(n, n, |i, j| {
            let (i, j) = if i >= j { (i, j) } else { (j, i) };
            0.2 + ((i * 5 + j * 11) % 7) as f64 * 0.1
        })
    }

    fn pairs_and_screening(b: &BasisSet) -> (ShellPairs, Screening) {
        let pairs = ShellPairs::build(b);
        let s = Screening::from_pairs(b, &pairs);
        (pairs, s)
    }

    #[test]
    fn matches_serial_for_various_rank_counts() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let want = build_g_serial(&b, &pairs, &s, 1e-12, &d).g;
        for n_ranks in [1, 2, 3, 5] {
            let got = build_g_mpi_only(&b, &pairs, &s, 1e-12, &d, n_ranks);
            assert!(
                got.g.max_abs_diff(&want) < 1e-10,
                "{n_ranks} ranks: diff {}",
                got.g.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn all_tasks_distributed_exactly_once() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let out = build_g_mpi_only(&b, &pairs, &s, 1e-12, &d, 3);
        let ns = b.n_shells();
        let p = ns * (ns + 1) / 2;
        assert_eq!(out.stats.dlb_tasks, p, "every ij pair is one task");
        // Each counter call hands out one task; every rank also makes one
        // final out-of-range call before leaving the loop.
        assert_eq!(out.stats.dlb_calls, p + 3);
        // Quartet totals match the serial enumeration.
        let serial = build_g_serial(&b, &pairs, &s, 1e-12, &d);
        assert_eq!(
            out.stats.quartets_computed + out.stats.quartets_screened,
            serial.stats.quartets_computed + serial.stats.quartets_screened
        );
    }

    #[test]
    fn memory_replication_scales_with_ranks() {
        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let (pairs, s) = pairs_and_screening(&b);
        let d = density(b.n_basis());
        let one = build_g_mpi_only(&b, &pairs, &s, 1e-12, &d, 1);
        let four = build_g_mpi_only(&b, &pairs, &s, 1e-12, &d, 4);
        // Four ranks replicate everything: total peak ~4x one rank's.
        let ratio = four.stats.memory_total_peak as f64 / one.stats.memory_total_peak as f64;
        assert!((ratio - 4.0).abs() < 0.2, "replication ratio {ratio}");
        assert_eq!(four.stats.per_rank_peak.len(), 4);
    }
}
