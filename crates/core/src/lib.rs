//! Hartree-Fock SCF with the paper's three parallel Fock-build algorithms.
//!
//! This crate is the reproduction of the paper's contribution: restricted
//! Hartree-Fock over the `phi-integrals` engine, with two-electron Fock
//! matrix construction parallelized three ways on the `phi-dmpi` +
//! `phi-omp` substrates:
//!
//! * [`fock::mpi_only`] — Algorithm 1, the stock GAMESS scheme: every rank
//!   replicates all matrices, DLB over `(i,j)` shell pairs, `gsumf`
//!   reduction;
//! * [`fock::private_fock`] — Algorithm 2 ("shared density, private Fock"):
//!   hybrid ranks x threads, density shared per rank, Fock replicated per
//!   thread, MPI DLB over `i`, collapsed `(j,k)` OpenMP loop;
//! * [`fock::shared_fock`] — Algorithm 3 ("shared density, shared Fock"):
//!   density and Fock both shared per rank, MPI DLB over combined `ij`
//!   pairs with task-level Schwarz prescreening, OpenMP over combined `kl`,
//!   thread-private `FI`/`FJ` column buffers with lazy `FI` flushing.
//!
//! A serial reference builder ([`fock::serial`]) defines ground truth (up
//! to floating-point summation order) for all three, and
//! [`fock::distributed`] adds the related-work distributed-data baseline.
//!
//! All builders sit behind one engine layer ([`fock::engine`]): drivers
//! assemble a [`FockContext`] (basis + persistent shell pairs + screening)
//! once, pick a [`FockBuilder`] via [`FockAlgorithm::builder`], and hand it
//! a [`DensitySet`] — one matrix for RHF, an α/β pair for UHF. Every
//! builder returns the same [`GBuild`] (per-channel `G` matrices plus
//! uniformly collected [`FockBuildStats`]), so RHF ([`scf`]), UHF
//! ([`uhf`]), and the stored-integral replay ([`incore`]) compose with any
//! algorithm.
//!
//! The driver ([`scf`]) handles the rest of the method: core-Hamiltonian
//! guess, symmetric orthogonalization, (optional) DIIS acceleration,
//! convergence on the density RMS — and reports per-iteration Fock timings
//! and the per-rank memory accounting that reproduce the paper's tables.

pub mod checkpoint;
pub mod diis;
pub mod fock;
pub mod guess;
pub mod incore;
pub mod memory_model;
pub mod mp2;
pub mod properties;
pub mod purification;
pub mod scf;
pub mod stats;
pub mod uhf;

pub use checkpoint::ScfCheckpoint;
pub use fock::engine::{FockBuilder, FockContext, FockData};
pub use fock::incremental::IncrementalFock;
pub use fock::{DensitySet, FockAlgorithm, GBuild};
pub use incore::IncoreEris;
pub use memory_model::MemoryModel;
pub use mp2::{mp2_energy, Mp2Result};
pub use properties::{dipole_moment, mulliken_charges, Dipole};
pub use purification::{purify_density, purify_density_threaded, Purification};
pub use scf::{run_scf, ScfConfig, ScfResult, ScfStop};
pub use stats::FockBuildStats;
pub use uhf::{mulliken_spin_populations, run_uhf, UhfConfig, UhfResult};
