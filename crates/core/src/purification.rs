//! Density-matrix purification: diagonalization-free density construction.
//!
//! The paper's related work (§2) highlights Chow et al.'s Tianhe-2 runs
//! where "density matrix construction was achieved by density purification
//! techniques" to sidestep the poor parallel scaling of diagonalization.
//! This module implements canonical purification (Palser–Manolopoulos) with
//! McWeeny iterations as that alternative path:
//!
//! 1. transform the Fock matrix to the orthogonal basis, `F' = Xᵀ F X`;
//! 2. map its spectrum into [0, 1] with the occupied end near 1 using
//!    Gershgorin bounds and the trace constraint;
//! 3. iterate `D <- 3D² - 2D³` (McWeeny), which drives every eigenvalue to
//!    0 or 1 while preserving the trace ordering;
//! 4. back-transform, `D = X D' Xᵀ` (times 2 for closed shells).
//!
//! The result matches the diagonalization-based density whenever the
//! HOMO–LUMO gap is nonzero.

use phi_linalg::Mat;

/// Outcome of a purification run.
#[derive(Clone, Debug)]
pub struct Purification {
    /// Closed-shell density matrix (includes the factor 2).
    pub density: Mat,
    pub iterations: usize,
    pub converged: bool,
    /// `|D² - D|` idempotency residual at exit (orthogonal basis).
    pub idempotency_error: f64,
}

/// Gershgorin bounds on the spectrum of a symmetric matrix.
fn gershgorin(a: &Mat) -> (f64, f64) {
    let n = a.rows();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let radius: f64 = (0..n).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
        lo = lo.min(a[(i, i)] - radius);
        hi = hi.max(a[(i, i)] + radius);
    }
    (lo, hi)
}

/// Build the closed-shell density from a Fock matrix by canonical
/// purification. `x` is the orthogonalizer (`Xᵀ S X = 1`), `n_occ` the
/// number of doubly occupied orbitals.
pub fn purify_density(f: &Mat, x: &Mat, n_occ: usize, max_iter: usize, tol: f64) -> Purification {
    purify_density_threaded(f, x, n_occ, max_iter, tol, 1)
}

/// Threaded purification: identical algorithm with the matrix products —
/// its entire cost — split over `n_threads` (what makes purification the
/// scalable alternative to diagonalization in Chow et al.).
pub fn purify_density_threaded(
    f: &Mat,
    x: &Mat,
    n_occ: usize,
    max_iter: usize,
    tol: f64,
    n_threads: usize,
) -> Purification {
    let f_prime = f.congruence(x);
    let n = f_prime.rows();
    let (emin, emax) = gershgorin(&f_prime);
    let mu = f_prime.trace() / n as f64;
    let ne = n_occ as f64;

    // Palser-Manolopoulos canonical initialization: D0 = alpha (mu I - F')
    // + (ne/n) I with alpha chosen so the spectrum stays in [0, 1].
    let alpha = (ne / (emax - mu)).min((n as f64 - ne) / (mu - emin)) / n as f64;
    let mut d = Mat::from_fn(n, n, |i, j| {
        let fij = f_prime[(i, j)];
        let delta = if i == j { 1.0 } else { 0.0 };
        alpha * (mu * delta - fij) + ne / n as f64 * delta
    });

    let mut converged = false;
    let mut iterations = 0;
    let mut idempotency = f64::INFINITY;
    for it in 0..max_iter {
        iterations = it + 1;
        let d2 = d.matmul_threaded(&d, n_threads);
        let d3 = d2.matmul_threaded(&d, n_threads);
        idempotency = d2.max_abs_diff(&d);
        if idempotency < tol {
            converged = true;
            break;
        }
        // Palser-Manolopoulos trace-conserving update: unlike the plain
        // McWeeny step, this keeps tr(D) = n_occ exactly, so the iteration
        // cannot drift to an idempotent of the wrong occupation.
        let denom = d.trace() - d2.trace();
        let c = if denom.abs() > 1e-300 { (d2.trace() - d3.trace()) / denom } else { 0.5 };
        let mut next;
        if c >= 0.5 {
            // D <- ((1 + c) D^2 - D^3) / c
            next = d2.clone();
            next.scale(1.0 + c);
            next.axpy(-1.0, &d3);
            next.scale(1.0 / c);
        } else {
            // D <- ((1 - 2c) D + (1 + c) D^2 - D^3) / (1 - c)
            next = d.clone();
            next.scale(1.0 - 2.0 * c);
            next.axpy(1.0 + c, &d2);
            next.axpy(-1.0, &d3);
            next.scale(1.0 / (1.0 - c));
        }
        d = next;
    }

    // Back-transform and apply closed-shell occupancy.
    let mut density = x.matmul(&d).matmul_nt(x);
    density.scale(2.0);
    Purification { density, iterations, converged, idempotency_error: idempotency }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guess::{core_guess, density_from_orbitals, solve_roothaan};
    use phi_chem::basis::{BasisName, BasisSet};
    use phi_chem::geom::small;
    use phi_integrals::{kinetic_matrix, nuclear_attraction_matrix, overlap_matrix, Screening};
    use phi_linalg::sym_inv_sqrt;

    fn water_fock() -> (Mat, Mat, Mat, usize) {
        let mol = small::water();
        let b = BasisSet::build(&mol, BasisName::Sto3g);
        let s = overlap_matrix(&b);
        let h = kinetic_matrix(&b).add(&nuclear_attraction_matrix(&b, &mol));
        let x = sym_inv_sqrt(&s, 1e-8);
        // One SCF iteration's Fock matrix (guess density).
        let pairs = phi_integrals::ShellPairs::build(&b);
        let screening = Screening::from_pairs(&b, &pairs);
        let d0 = core_guess(&h, &x, mol.n_occupied());
        let g = crate::fock::serial::build_g_serial(&b, &pairs, &screening, 1e-10, &d0).g;
        (h.add(&g), x, s, mol.n_occupied())
    }

    #[test]
    fn purified_density_matches_diagonalization() {
        let (f, x, _s, n_occ) = water_fock();
        let p = purify_density(&f, &x, n_occ, 200, 1e-12);
        assert!(p.converged, "purification did not converge");
        let (_e, c) = solve_roothaan(&f, &x);
        let d_diag = density_from_orbitals(&c, n_occ);
        assert!(
            p.density.max_abs_diff(&d_diag) < 1e-7,
            "purified vs diagonalized density differ by {}",
            p.density.max_abs_diff(&d_diag)
        );
    }

    #[test]
    fn purified_density_has_correct_trace_and_idempotency() {
        let (f, x, s, n_occ) = water_fock();
        let p = purify_density(&f, &x, n_occ, 200, 1e-12);
        let tr = p.density.matmul(&s).trace();
        assert!((tr - 2.0 * n_occ as f64).abs() < 1e-7, "tr(DS) = {tr}");
        // D S D = 2 D for the closed-shell density.
        let dsd = p.density.matmul(&s).matmul(&p.density);
        let mut d2 = p.density.clone();
        d2.scale(2.0);
        assert!(dsd.max_abs_diff(&d2) < 1e-6);
    }

    #[test]
    fn threaded_purification_matches_serial() {
        let (f, x, _s, n_occ) = water_fock();
        let serial = purify_density(&f, &x, n_occ, 200, 1e-12);
        let par = purify_density_threaded(&f, &x, n_occ, 200, 1e-12, 4);
        assert!(par.converged);
        assert!(
            serial.density.max_abs_diff(&par.density) < 1e-9,
            "threaded purification differs by {}",
            serial.density.max_abs_diff(&par.density)
        );
    }

    #[test]
    fn gershgorin_contains_the_spectrum() {
        let a = Mat::from_fn(5, 5, |i, j| {
            let (i, j) = if i >= j { (i, j) } else { (j, i) };
            ((i * 3 + j) % 7) as f64 - 3.0
        });
        let (lo, hi) = gershgorin(&a);
        let e = phi_linalg::eigh(&a);
        assert!(e.values[0] >= lo - 1e-12);
        assert!(e.values[4] <= hi + 1e-12);
    }

    #[test]
    fn full_scf_with_purification_reaches_the_same_energy() {
        // Replace the diagonalization in a hand-rolled SCF loop with
        // purification; the converged energy must match run_scf.
        let mol = small::water();
        let b = BasisSet::build(&mol, BasisName::Sto3g);
        let s = overlap_matrix(&b);
        let h = kinetic_matrix(&b).add(&nuclear_attraction_matrix(&b, &mol));
        let x = sym_inv_sqrt(&s, 1e-8);
        let pairs = phi_integrals::ShellPairs::build(&b);
        let screening = Screening::from_pairs(&b, &pairs);
        let n_occ = mol.n_occupied();
        let mut d = core_guess(&h, &x, n_occ);
        let mut energy = 0.0;
        for _ in 0..60 {
            let g = crate::fock::serial::build_g_serial(&b, &pairs, &screening, 1e-10, &d).g;
            let f = h.add(&g);
            energy = 0.5 * (d.dot(&h) + d.dot(&f)) + mol.nuclear_repulsion();
            d = purify_density(&f, &x, n_occ, 200, 1e-13).density;
        }
        let reference = crate::scf::run_scf(&mol, &b, &crate::scf::ScfConfig::default());
        assert!(
            (energy - reference.energy).abs() < 1e-6,
            "purification SCF {energy} vs diagonalization {}",
            reference.energy
        );
    }
}
