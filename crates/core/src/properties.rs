//! Molecular properties from a converged density: dipole moment and
//! Mulliken population analysis.
//!
//! These are standard GAMESS property outputs ("maintaining full
//! functionality of the underlying GAMESS code" is one of the paper's
//! stated constraints); they also serve as sensitive end-to-end checks of
//! the integral engine and converged densities.

use phi_chem::{BasisSet, Molecule};
use phi_integrals::{dipole_matrices, overlap_matrix};
use phi_linalg::Mat;

/// Debye per atomic unit of dipole moment.
pub const DEBYE_PER_AU: f64 = 2.541_746_473;

/// Molecular dipole moment.
#[derive(Clone, Copy, Debug)]
pub struct Dipole {
    /// Cartesian components in atomic units.
    pub au: [f64; 3],
}

impl Dipole {
    pub fn magnitude_au(&self) -> f64 {
        (self.au[0] * self.au[0] + self.au[1] * self.au[1] + self.au[2] * self.au[2]).sqrt()
    }

    pub fn magnitude_debye(&self) -> f64 {
        self.magnitude_au() * DEBYE_PER_AU
    }
}

/// Dipole moment `mu = sum_A Z_A (R_A - o) - tr(D X_o)` about the origin
/// `o` (for a neutral molecule the choice of `o` is immaterial).
pub fn dipole_moment(mol: &Molecule, basis: &BasisSet, density: &Mat) -> Dipole {
    let origin = [0.0; 3];
    let mats = dipole_matrices(basis, origin);
    let mut mu = [0.0; 3];
    for (k, m) in mats.iter().enumerate() {
        // Electronic part: -tr(D X).
        mu[k] = -density.dot(m);
        // Nuclear part.
        for a in mol.atoms() {
            mu[k] += a.element.atomic_number() as f64 * (a.pos[k] - origin[k]);
        }
    }
    Dipole { au: mu }
}

/// Mulliken atomic partial charges: `q_A = Z_A - sum_{mu in A} (D S)_{mu mu}`.
pub fn mulliken_charges(mol: &Molecule, basis: &BasisSet, density: &Mat) -> Vec<f64> {
    let s = overlap_matrix(basis);
    let ds = density.matmul(&s);
    let mut populations = vec![0.0f64; mol.n_atoms()];
    for shell in &basis.shells {
        for f in 0..shell.n_functions() {
            populations[shell.atom] += ds[(shell.first_bf + f, shell.first_bf + f)];
        }
    }
    mol.atoms()
        .iter()
        .zip(&populations)
        .map(|(a, p)| a.element.atomic_number() as f64 - p)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::{run_scf, ScfConfig};
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;

    fn converged_density(mol: &Molecule, name: BasisName) -> (BasisSet, Mat) {
        let basis = BasisSet::build(mol, name);
        let r = run_scf(mol, &basis, &ScfConfig::default());
        assert!(r.converged);
        (basis, r.density)
    }

    #[test]
    fn water_dipole_is_in_the_experimental_ballpark() {
        // RHF/STO-3G water: ~1.7 D; RHF/6-31G(d): ~2.2 D (experiment 1.85).
        let mol = small::water();
        let (basis, d) = converged_density(&mol, BasisName::Sto3g);
        let dip = dipole_moment(&mol, &basis, &d);
        let debye = dip.magnitude_debye();
        assert!((1.2..2.3).contains(&debye), "water STO-3G dipole {debye} D");
        // The C2v axis is z in our geometry: x and y components vanish.
        assert!(dip.au[0].abs() < 1e-6, "x component {}", dip.au[0]);
        assert!(dip.au[1].abs() < 1e-8, "y component {}", dip.au[1]);
    }

    #[test]
    fn homonuclear_molecules_have_zero_dipole() {
        let mol = small::hydrogen_molecule(1.4);
        let (basis, d) = converged_density(&mol, BasisName::Sto3g);
        let dip = dipole_moment(&mol, &basis, &d);
        assert!(dip.magnitude_au() < 1e-8, "H2 dipole {}", dip.magnitude_au());
    }

    #[test]
    fn mulliken_charges_sum_to_total_charge_and_polarize_correctly() {
        let mol = small::water();
        let (basis, d) = converged_density(&mol, BasisName::Sto3g);
        let q = mulliken_charges(&mol, &basis, &d);
        let total: f64 = q.iter().sum();
        assert!(total.abs() < 1e-8, "charges must sum to 0, got {total}");
        assert!(q[0] < -0.2, "oxygen must be negative: {}", q[0]);
        assert!(q[1] > 0.1 && q[2] > 0.1, "hydrogens must be positive: {:?}", q);
        assert!((q[1] - q[2]).abs() < 1e-8, "symmetric hydrogens must match");
    }

    #[test]
    fn cation_charges_sum_to_plus_one() {
        let mol = small::heh_cation();
        let (basis, d) = converged_density(&mol, BasisName::Sto3g);
        let q = mulliken_charges(&mol, &basis, &d);
        let total: f64 = q.iter().sum();
        assert!((total - 1.0).abs() < 1e-8, "HeH+ charges sum {total}");
    }
}
