//! Memory footprint model — the paper's equations (3a)–(3c) and Table 2.
//!
//! Asymptotic per-node footprints (N_BF basis functions, 8-byte reals):
//!
//! ```text
//! M_MPI  = 5/2           * N^2 * N_mpi_per_node        (eq. 3a)
//! M_PrF  = (2 + N_thr)   * N^2 * N_mpi_per_node        (eq. 3b)
//! M_ShF  = 7/2           * N^2 * N_mpi_per_node        (eq. 3c)
//! ```
//!
//! The paper runs 256 MPI ranks/node for the MPI-only code and
//! 4 ranks x 64 threads for the hybrids. The model also exposes the DDI
//! data-server variant (process count doubled, §6.2) and converts to the
//! paper's GB units for direct Table 2 comparison.

use phi_chem::geom::graphene::PaperSystem;
use phi_dmpi::DdiMode;

/// Word size of the matrices (double precision).
const WORD: f64 = 8.0;

/// Node-level memory model for one algorithm configuration.
#[derive(Clone, Copy, Debug)]
pub struct MemoryModel {
    pub n_basis: usize,
    pub mpi_per_node: usize,
    pub threads_per_rank: usize,
    pub ddi: DdiMode,
    /// Bytes of the persistent shell-pair dataset
    /// ([`phi_integrals::ShellPairs::bytes`]). Charged once per MPI rank —
    /// shared read-only by the rank's threads, never replicated per thread,
    /// and not doubled by DDI data servers (data servers hold distributed
    /// arrays, not integral data).
    pub pair_bytes: f64,
}

impl MemoryModel {
    /// The paper's MPI-only configuration (eq. 3a): up to 256 ranks/node.
    pub fn mpi_only(n_basis: usize, mpi_per_node: usize) -> MemoryModel {
        MemoryModel {
            n_basis,
            mpi_per_node,
            threads_per_rank: 1,
            ddi: DdiMode::Mpi3OneSided,
            pair_bytes: 0.0,
        }
    }

    /// The paper's hybrid configuration: 4 ranks x `threads` threads.
    pub fn hybrid(n_basis: usize, mpi_per_node: usize, threads_per_rank: usize) -> MemoryModel {
        MemoryModel {
            n_basis,
            mpi_per_node,
            threads_per_rank,
            ddi: DdiMode::Mpi3OneSided,
            pair_bytes: 0.0,
        }
    }

    pub fn with_ddi(mut self, ddi: DdiMode) -> MemoryModel {
        self.ddi = ddi;
        self
    }

    /// Account for the persistent shell-pair dataset (bytes per copy).
    pub fn with_shell_pairs(mut self, bytes: usize) -> MemoryModel {
        self.pair_bytes = bytes as f64;
        self
    }

    fn n2(&self) -> f64 {
        (self.n_basis as f64) * (self.n_basis as f64)
    }

    fn process_factor(&self) -> f64 {
        (self.mpi_per_node * self.ddi.processes_per_rank()) as f64
    }

    /// Per-node contribution of the shell-pair dataset: one copy per rank
    /// (NOT per compute thread, NOT per data server).
    fn pair_term(&self) -> f64 {
        self.pair_bytes * self.mpi_per_node as f64
    }

    /// Eq. (3a): MPI-only footprint per node, bytes.
    pub fn bytes_mpi_only(&self) -> f64 {
        2.5 * self.n2() * self.process_factor() * WORD + self.pair_term()
    }

    /// Eq. (3b): private-Fock footprint per node, bytes.
    pub fn bytes_private_fock(&self) -> f64 {
        (2.0 + self.threads_per_rank as f64) * self.n2() * self.process_factor() * WORD
            + self.pair_term()
    }

    /// Eq. (3c): shared-Fock footprint per node, bytes.
    pub fn bytes_shared_fock(&self) -> f64 {
        3.5 * self.n2() * self.process_factor() * WORD + self.pair_term()
    }

    /// Fully sharded build (restricted, [`crate::fock::sharded`]) per node,
    /// bytes: the tri-packed density + Fock window stripes (`N(N+1)/2`
    /// words each, divided over `total_ranks` world ranks, doubled per
    /// process by DDI data servers since the servers hold the array
    /// segments) plus the O(N) row cache and flush buffer each compute
    /// rank keeps. The `N^2`-per-process term that eqs. (3a)-(3c) all
    /// share is gone — this is the variant that dodges the memory wall.
    pub fn bytes_sharded(&self, total_ranks: usize) -> f64 {
        let n = self.n_basis;
        let tri = crate::fock::matrix::tri_len(n) as f64;
        let stripes = 2.0 * (tri / total_ranks.max(1) as f64) * WORD;
        let cache = crate::fock::matrix::shard_cache_elems(n) as f64 * WORD;
        let flush = crate::fock::matrix::shard_flush_entries(n) as f64 * 16.0;
        stripes * self.process_factor()
            + (cache + flush) * self.mpi_per_node as f64
            + self.pair_term()
    }

    pub fn gb_mpi_only(&self) -> f64 {
        self.bytes_mpi_only() / 1e9
    }

    pub fn gb_private_fock(&self) -> f64 {
        self.bytes_private_fock() / 1e9
    }

    pub fn gb_shared_fock(&self) -> f64 {
        self.bytes_shared_fock() / 1e9
    }

    pub fn gb_sharded(&self, total_ranks: usize) -> f64 {
        self.bytes_sharded(total_ranks) / 1e9
    }
}

/// One row of the paper's Table 2 regenerated from the model with the
/// paper's configurations: 256 ranks (MPI-only) vs 4 ranks x 64 threads
/// (hybrids).
#[derive(Clone, Debug)]
pub struct Table2Row {
    pub system: PaperSystem,
    pub gb_mpi: f64,
    pub gb_private: f64,
    pub gb_shared: f64,
}

impl Table2Row {
    pub fn compute(system: PaperSystem) -> Table2Row {
        let n = system.n_basis_functions();
        let mpi = MemoryModel::mpi_only(n, 256);
        let hyb = MemoryModel::hybrid(n, 4, 64);
        Table2Row {
            system,
            gb_mpi: mpi.gb_mpi_only(),
            gb_private: hyb.gb_private_fock(),
            gb_shared: hyb.gb_shared_fock(),
        }
    }

    /// Footprint ratio MPI-only : shared-Fock (the paper's "~200x").
    pub fn shared_ratio(&self) -> f64 {
        self.gb_mpi / self.gb_shared
    }

    /// Footprint ratio MPI-only : private-Fock (the paper's "~50x").
    pub fn private_ratio(&self) -> f64 {
        self.gb_mpi / self.gb_private
    }
}

/// The paper's printed Table 2 values (GB) for comparison output:
/// (system, MPI, private Fock, shared Fock).
pub const PAPER_TABLE2_GB: [(f64, f64, f64); 5] = [
    (7.0, 0.13, 0.03),
    (48.0, 1.0, 0.2),
    (160.0, 3.0, 0.8),
    (417.0, 8.0, 2.0),
    (9869.0, 257.0, 52.0),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_the_papers_headline_numbers() {
        // With the paper's configurations the model ratios are exact:
        // MPI : shared = 2.5*256 : 3.5*4 = 640 : 14 ~ 45.7x per eq. (3),
        // but the paper reports ~200x *measured*. The measured number also
        // folds in GAMESS's additional replicated structures; what must
        // hold from the equations alone:
        let row = Table2Row::compute(PaperSystem::Nm10);
        assert!(row.shared_ratio() > 40.0, "shared ratio {}", row.shared_ratio());
        assert!(row.private_ratio() > 2.0, "private ratio {}", row.private_ratio());
        // Shared Fock always beats private Fock at 64 threads.
        assert!(row.gb_shared < row.gb_private);
    }

    #[test]
    fn footprints_scale_quadratically_with_basis() {
        let small = Table2Row::compute(PaperSystem::Nm05);
        let large = Table2Row::compute(PaperSystem::Nm10);
        let n_ratio = (PaperSystem::Nm10.n_basis_functions() as f64
            / PaperSystem::Nm05.n_basis_functions() as f64)
            .powi(2);
        assert!((large.gb_mpi / small.gb_mpi - n_ratio).abs() < 1e-9);
    }

    #[test]
    fn data_servers_double_everything() {
        let base = MemoryModel::mpi_only(1800, 64);
        let with_servers = base.with_ddi(DdiMode::DataServer);
        assert!((with_servers.bytes_mpi_only() / base.bytes_mpi_only() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shell_pair_term_is_per_rank_not_per_thread_or_server() {
        let pair_bytes = 123_456_789usize;
        let base = MemoryModel::hybrid(1800, 4, 64);
        let with_pairs = base.with_shell_pairs(pair_bytes);
        let delta = with_pairs.bytes_shared_fock() - base.bytes_shared_fock();
        // One copy per rank: 4 ranks x pair_bytes, independent of the 64
        // threads.
        assert!((delta - 4.0 * pair_bytes as f64).abs() < 1e-6);
        assert!((with_pairs.bytes_private_fock() - base.bytes_private_fock() - delta).abs() < 1e-6);
        // Data servers double the matrix replication but NOT the pair data.
        let servers = with_pairs.with_ddi(DdiMode::DataServer);
        let base_servers = base.with_ddi(DdiMode::DataServer);
        let delta_servers = servers.bytes_shared_fock() - base_servers.bytes_shared_fock();
        assert!((delta_servers - delta).abs() < 1e-6);
    }

    #[test]
    fn hybrid_thread_count_drives_private_fock_linearly() {
        let m1 = MemoryModel::hybrid(1800, 4, 1);
        let m64 = MemoryModel::hybrid(1800, 4, 64);
        let ratio = m64.bytes_private_fock() / m1.bytes_private_fock();
        assert!((ratio - 66.0 / 3.0).abs() < 1e-9);
        // Shared Fock is thread-count independent.
        assert_eq!(m1.bytes_shared_fock(), m64.bytes_shared_fock());
    }

    #[test]
    fn sharded_model_escapes_the_quadratic_wall() {
        // At paper scale, every replicated algorithm's per-node footprint
        // grows as N^2 per process; the sharded stripes grow as N^2 only
        // in aggregate across the whole machine, so the per-node number
        // collapses as ranks are added.
        let n = PaperSystem::Nm20.n_basis_functions();
        let m = MemoryModel::hybrid(n, 4, 1);
        let sharded_64 = m.bytes_sharded(64);
        assert!(
            sharded_64 < m.bytes_shared_fock() / 10.0,
            "sharded {} vs shared Fock {}",
            sharded_64,
            m.bytes_shared_fock()
        );
        // More world ranks -> thinner stripes, monotonically.
        assert!(m.bytes_sharded(256) < m.bytes_sharded(64));
        // Data servers double the stripe term but not the rank-local
        // caches: strictly less than a full doubling.
        let ds = m.with_ddi(DdiMode::DataServer);
        assert!(ds.bytes_sharded(64) > sharded_64);
        assert!(ds.bytes_sharded(64) < 2.0 * sharded_64);
    }

    #[test]
    fn model_tracks_paper_table2_within_an_order_of_magnitude() {
        // The paper's printed Table 2 does not follow its own eqs. (3a)-(3c)
        // exactly (e.g. its private-Fock column corresponds to ~(2+8) N^2
        // per rank rather than (2+64); see EXPERIMENTS.md). The model must
        // still land within 10x on every entry and preserve the ordering
        // MPI >> private > shared.
        for (sys, &(p_mpi, p_prf, p_shf)) in PaperSystem::ALL.iter().zip(&PAPER_TABLE2_GB) {
            let row = Table2Row::compute(*sys);
            for (model, paper) in
                [(row.gb_mpi, p_mpi), (row.gb_private, p_prf), (row.gb_shared, p_shf)]
            {
                let ratio = model / paper;
                assert!(
                    (0.1..10.0).contains(&ratio),
                    "{}: model {model} GB vs paper {paper} GB",
                    sys.label()
                );
            }
            assert!(row.gb_mpi > row.gb_private && row.gb_private > row.gb_shared);
        }
    }
}
