//! The SCF driver: guess → (Fock build → diagonalize → new density) until
//! convergence.
//!
//! Matches the paper's workflow (§3): convergence is declared when the
//! root-mean-square change of the density matrix falls below the threshold.
//! The two-electron Fock build — the paper's entire subject — is delegated
//! to the algorithm selected in [`ScfConfig`].

use crate::diis::Diis;
use crate::fock::engine::{FockBuilder, FockData};
use crate::fock::{DensitySet, FockAlgorithm};
use crate::guess::{core_guess, density_from_orbitals, solve_roothaan};
use crate::stats::FockBuildStats;
use phi_chem::{BasisSet, Molecule};
use phi_integrals::{kinetic_matrix, nuclear_attraction_matrix, overlap_matrix};
use phi_linalg::{sym_inv_sqrt, Mat};

/// SCF configuration.
#[derive(Clone, Debug)]
pub struct ScfConfig {
    pub algorithm: FockAlgorithm,
    /// Schwarz screening threshold on `Q_ij * Q_kl` (GAMESS default range).
    pub screening_tau: f64,
    /// Convergence threshold on the density RMS change.
    pub convergence: f64,
    pub max_iterations: usize,
    /// Enable DIIS acceleration.
    pub diis: bool,
    /// Eigenvalue cutoff for near-linear-dependent overlap directions.
    pub s_threshold: f64,
    /// Density damping: `D <- (1-a) D_new + a D_old` with `a` in [0, 1).
    /// Stabilizes oscillatory cases (GAMESS `$SCF DAMP`).
    pub damping: Option<f64>,
    /// Level shift `beta` added to the virtual orbital spectrum via
    /// `F <- F + beta (S - S D S / 2)` before diagonalization (GAMESS
    /// `$SCF SHIFT`). Reported virtual orbital energies include the shift.
    pub level_shift: Option<f64>,
    /// Conventional (in-core) SCF: store all surviving ERIs up to this many
    /// bytes and replay them every iteration instead of recomputing
    /// (GAMESS direct vs conventional SCF). Falls back to the configured
    /// direct algorithm if the integrals do not fit; compatible with every
    /// [`FockAlgorithm`] — when the integrals fit, the replay builder is
    /// used regardless of which direct algorithm was selected.
    pub incore_max_bytes: Option<usize>,
}

impl Default for ScfConfig {
    fn default() -> Self {
        ScfConfig {
            algorithm: FockAlgorithm::Serial,
            screening_tau: 1e-10,
            convergence: 1e-8,
            max_iterations: 100,
            diis: true,
            s_threshold: 1e-8,
            damping: None,
            level_shift: None,
            incore_max_bytes: None,
        }
    }
}

/// Outcome of an SCF run.
#[derive(Clone, Debug)]
pub struct ScfResult {
    /// Total energy (electronic + nuclear repulsion), Hartree.
    pub energy: f64,
    pub electronic_energy: f64,
    pub nuclear_repulsion: f64,
    pub converged: bool,
    pub iterations: usize,
    /// Total energy after each iteration.
    pub energy_history: Vec<f64>,
    /// Per-iteration Fock-build statistics ("TIME TO FORM FOCK").
    pub fock_stats: Vec<FockBuildStats>,
    /// Final orbital energies.
    pub orbital_energies: Vec<f64>,
    /// Converged density matrix (input for property analysis).
    pub density: Mat,
    /// Final MO coefficients (columns are orbitals).
    pub orbitals: Mat,
    pub n_basis: usize,
    pub n_shells: usize,
}

impl ScfResult {
    /// Summed wall time of all two-electron Fock builds — the quantity the
    /// paper greps from the GAMESS log.
    pub fn time_to_form_fock(&self) -> f64 {
        self.fock_stats.iter().map(|s| s.seconds).sum()
    }

    /// Peak memory footprint over all builds (paper Table 2 metric).
    pub fn peak_memory(&self) -> usize {
        self.fock_stats.iter().map(|s| s.memory_total_peak).max().unwrap_or(0)
    }
}

/// Run a closed-shell restricted Hartree-Fock calculation.
pub fn run_scf(mol: &Molecule, basis: &BasisSet, config: &ScfConfig) -> ScfResult {
    let n = basis.n_basis();
    let n_occ = mol.n_occupied();
    assert!(n_occ <= n, "{n_occ} occupied orbitals need at least {n_occ} basis functions");

    // One-electron groundwork.
    let s = overlap_matrix(basis);
    let h = kinetic_matrix(basis).add(&nuclear_attraction_matrix(basis, mol));
    let x = sym_inv_sqrt(&s, config.s_threshold);
    // The persistent shell-pair dataset and Schwarz screening: built once
    // per (geometry, basis) and shared read-only by every SCF iteration,
    // thread and rank.
    let data = FockData::build(basis);
    let ctx = data.context(basis, config.screening_tau);
    let e_nn = mol.nuclear_repulsion();

    // Conventional SCF: precompute stored integrals if requested & they
    // fit. The replay is a FockBuilder like any other, so it composes with
    // every configured algorithm.
    let incore = config.incore_max_bytes.and_then(|max| {
        crate::incore::IncoreEris::compute(
            basis,
            &data.pairs,
            &data.screening,
            config.screening_tau,
            max,
        )
    });
    let direct = config.algorithm.builder();
    let builder: &dyn FockBuilder = match &incore {
        Some(eris) => eris,
        None => direct.as_ref(),
    };

    // Initial guess.
    let mut d = core_guess(&h, &x, n_occ);
    let mut diis = Diis::new(8);
    let mut energy_history = Vec::new();
    let mut fock_stats = Vec::new();
    let mut converged = false;
    let mut iterations = 0;
    let mut orbital_energies = Vec::new();
    let mut orbitals = Mat::zeros(n, n);
    let mut e_elec = 0.0;

    for it in 0..config.max_iterations {
        iterations = it + 1;
        let gb = builder.build(&ctx, &DensitySet::Restricted(&d));
        fock_stats.push(gb.stats);
        let mut f = h.add(&gb.g);
        f.symmetrize();

        // E_elec = 1/2 sum_ij D_ij (H_ij + F_ij).
        e_elec = 0.5 * (d.dot(&h) + d.dot(&f));
        energy_history.push(e_elec + e_nn);

        let mut f_use = if config.diis {
            let err = Diis::error_vector(&f, &d, &s, &x);
            diis.extrapolate(f, err)
        } else {
            f
        };
        if let Some(beta) = config.level_shift {
            // Raise the virtual spectrum by beta: with D/2 the occupied
            // projector (in the S metric), S - S D S / 2 annihilates
            // occupied orbitals and acts as beta * S on virtuals.
            let sds = s.matmul(&d).matmul(&s);
            let mut shift = s.clone();
            shift.axpy(-0.5, &sds);
            f_use.axpy(beta, &shift);
        }

        let (eps, c) = solve_roothaan(&f_use, &x);
        let mut d_new = density_from_orbitals(&c, n_occ);
        if let Some(alpha) = config.damping {
            assert!((0.0..1.0).contains(&alpha), "damping factor must be in [0, 1)");
            d_new.scale(1.0 - alpha);
            d_new.axpy(alpha, &d);
        }
        orbital_energies = eps;
        orbitals = c;

        // RMS density change.
        let diff = d_new.sub(&d);
        let rms = diff.frobenius_norm() / (n as f64);
        d = d_new;
        if rms < config.convergence {
            converged = true;
            break;
        }
    }

    ScfResult {
        energy: e_elec + e_nn,
        electronic_energy: e_elec,
        nuclear_repulsion: e_nn,
        converged,
        iterations,
        energy_history,
        fock_stats,
        orbital_energies,
        density: d,
        orbitals,
        n_basis: n,
        n_shells: basis.n_shells(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;

    fn scf(mol: &Molecule, basis: BasisName, config: &ScfConfig) -> ScfResult {
        let b = BasisSet::build(mol, basis);
        run_scf(mol, &b, config)
    }

    #[test]
    fn h2_sto3g_matches_szabo() {
        // Szabo & Ostlund: E(RHF/STO-3G, R = 1.4 a0) = -1.1167 Eh.
        let r = scf(&small::hydrogen_molecule(1.4), BasisName::Sto3g, &ScfConfig::default());
        assert!(r.converged, "H2 did not converge");
        assert!(
            (r.energy - (-1.1167)).abs() < 2e-4,
            "H2/STO-3G energy {} vs literature -1.1167",
            r.energy
        );
    }

    #[test]
    fn heh_cation_matches_szabo_with_their_zeta_scaled_basis() {
        // Szabo & Ostlund's HeH+ model problem uses zeta-scaled STO-3G:
        // zeta(He) = 2.0925, zeta(H) = 1.24 (alpha_i = alpha_i(zeta=1) *
        // zeta^2 with the zeta=1 exponents 2.227660, 0.405771, 0.109818).
        // Their total energy at R = 1.4632 a0 is -2.8606 Eh.
        let mol = small::heh_cation();
        let base = [2.227660, 0.405771, 0.109818];
        let coefs = vec![0.154329, 0.535328, 0.444635];
        let zeta_he: f64 = 2.0925;
        let zeta_h: f64 = 1.24;
        let he = phi_chem::basis::custom_shell(
            0,
            mol.atoms()[0].pos,
            base.iter().map(|a| a * zeta_he * zeta_he).collect(),
            &[(0, coefs.clone())],
        );
        let h = phi_chem::basis::custom_shell(
            1,
            mol.atoms()[1].pos,
            base.iter().map(|a| a * zeta_h * zeta_h).collect(),
            &[(0, coefs)],
        );
        let b = BasisSet::from_shells(BasisName::Sto3g, vec![he, h]);
        let r = run_scf(&mol, &b, &ScfConfig::default());
        assert!(r.converged);
        assert!((r.energy - (-2.8606)).abs() < 1e-3, "HeH+ energy {} vs Szabo -2.8606", r.energy);
    }

    #[test]
    fn heh_cation_standard_sto3g_is_sane() {
        // With the standard (EMSL) STO-3G helium the energy differs from
        // Szabo's zeta-scaled value; pin our computed value as a regression
        // anchor.
        let r = scf(&small::heh_cation(), BasisName::Sto3g, &ScfConfig::default());
        assert!(r.converged);
        assert!((r.energy - (-2.8418)).abs() < 1e-3, "energy {}", r.energy);
    }

    #[test]
    fn water_sto3g_energy_is_in_the_textbook_window() {
        let r = scf(&small::water(), BasisName::Sto3g, &ScfConfig::default());
        assert!(r.converged);
        // RHF/STO-3G water at the experimental geometry: about -74.96 Eh.
        assert!(
            (r.energy - (-74.96)).abs() < 0.02,
            "water/STO-3G energy {} out of window",
            r.energy
        );
    }

    #[test]
    fn energy_is_invariant_under_rigid_motion() {
        let mol = small::water();
        let cfg = ScfConfig::default();
        let e0 = scf(&mol, BasisName::Sto3g, &cfg).energy;
        let e1 = scf(&mol.translated([2.0, -1.0, 3.0]), BasisName::Sto3g, &cfg).energy;
        let e2 = scf(&mol.rotated_z(1.1), BasisName::Sto3g, &cfg).energy;
        assert!((e0 - e1).abs() < 1e-9, "translation changed E: {e0} vs {e1}");
        assert!((e0 - e2).abs() < 1e-9, "rotation changed E: {e0} vs {e2}");
    }

    #[test]
    fn diis_reduces_iteration_count() {
        let mol = small::water();
        let with = scf(&mol, BasisName::Sto3g, &ScfConfig { diis: true, ..Default::default() });
        let without = scf(
            &mol,
            BasisName::Sto3g,
            &ScfConfig { diis: false, max_iterations: 200, ..Default::default() },
        );
        assert!(with.converged && without.converged);
        assert!(
            with.iterations <= without.iterations,
            "DIIS {} vs plain {}",
            with.iterations,
            without.iterations
        );
        assert!((with.energy - without.energy).abs() < 1e-6);
    }

    #[test]
    fn all_parallel_algorithms_give_the_same_energy() {
        let mol = small::water();
        let algorithms = [
            FockAlgorithm::Serial,
            FockAlgorithm::MpiOnly { n_ranks: 2 },
            FockAlgorithm::PrivateFock { n_ranks: 1, n_threads: 3 },
            FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
            FockAlgorithm::Distributed { n_ranks: 2 },
        ];
        let energies: Vec<f64> = algorithms
            .iter()
            .map(|&algorithm| {
                let r = scf(&mol, BasisName::Sto3g, &ScfConfig { algorithm, ..Default::default() });
                assert!(r.converged, "{} did not converge", algorithm.label());
                r.energy
            })
            .collect();
        for (k, e) in energies.iter().enumerate().skip(1) {
            assert!(
                (e - energies[0]).abs() < 1e-8,
                "algorithm {k} energy {e} vs serial {}",
                energies[0]
            );
        }
    }

    #[test]
    fn incore_scf_matches_direct_scf() {
        let mol = small::water();
        let direct = scf(&mol, BasisName::B631g, &ScfConfig::default());
        let incore = scf(
            &mol,
            BasisName::B631g,
            &ScfConfig { incore_max_bytes: Some(1 << 30), ..Default::default() },
        );
        assert!(incore.converged);
        assert!(
            (incore.energy - direct.energy).abs() < 1e-9,
            "in-core {} vs direct {}",
            incore.energy,
            direct.energy
        );
        // If the budget is too small the driver silently falls back.
        let fallback = scf(
            &mol,
            BasisName::B631g,
            &ScfConfig { incore_max_bytes: Some(16), ..Default::default() },
        );
        assert!((fallback.energy - direct.energy).abs() < 1e-9);
    }

    #[test]
    fn incore_composes_with_any_algorithm() {
        // The in-core replay is a FockBuilder: it must work (and win) under
        // a parallel algorithm selection, replaying the stored integrals
        // instead of dispatching to the configured direct builder.
        let mol = small::water();
        let direct = scf(&mol, BasisName::B631g, &ScfConfig::default());
        let incore_shared = scf(
            &mol,
            BasisName::B631g,
            &ScfConfig {
                algorithm: FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
                incore_max_bytes: Some(1 << 30),
                ..Default::default()
            },
        );
        assert!(incore_shared.converged);
        assert!(
            (incore_shared.energy - direct.energy).abs() < 1e-9,
            "in-core + shared Fock {} vs direct {}",
            incore_shared.energy,
            direct.energy
        );
        // The replay really was used: no quartets screened at build time
        // (screening happened at store time) and no DLB counter traffic.
        let s = incore_shared.fock_stats.first().expect("at least one iteration");
        assert_eq!(s.quartets_screened, 0);
        assert_eq!(s.dlb_calls, 0);
        // An undersized budget falls back to the configured direct builder.
        let fallback = scf(
            &mol,
            BasisName::B631g,
            &ScfConfig {
                algorithm: FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
                incore_max_bytes: Some(16),
                ..Default::default()
            },
        );
        assert!((fallback.energy - direct.energy).abs() < 1e-9);
        assert!(fallback.fock_stats.first().expect("iterations").dlb_calls > 0);
    }

    #[test]
    fn damping_and_level_shift_preserve_the_converged_energy() {
        let mol = small::water();
        let plain = scf(&mol, BasisName::Sto3g, &ScfConfig::default());
        let damped = scf(
            &mol,
            BasisName::Sto3g,
            &ScfConfig { damping: Some(0.3), max_iterations: 200, ..Default::default() },
        );
        let shifted = scf(
            &mol,
            BasisName::Sto3g,
            &ScfConfig { level_shift: Some(0.5), max_iterations: 200, ..Default::default() },
        );
        assert!(damped.converged && shifted.converged);
        assert!((damped.energy - plain.energy).abs() < 1e-7, "damped {}", damped.energy);
        assert!((shifted.energy - plain.energy).abs() < 1e-7, "shifted {}", shifted.energy);
        // The level shift raises virtual orbital energies but not occupied.
        let n_occ = mol.n_occupied();
        assert!(
            (shifted.orbital_energies[n_occ - 1] - plain.orbital_energies[n_occ - 1]).abs() < 1e-5,
            "occupied spectrum must be untouched"
        );
        assert!(
            shifted.orbital_energies[n_occ] > plain.orbital_energies[n_occ] + 0.4,
            "virtual spectrum must be raised by ~the shift"
        );
    }

    #[test]
    fn variational_bound_holds() {
        // SCF energy from the converged density must lie above the basis
        // set's true ground state but below the (terrible) core guess.
        let r = scf(&small::water(), BasisName::Sto3g, &ScfConfig::default());
        let first = r.energy_history[0];
        let last = *r.energy_history.last().unwrap();
        assert!(last < first, "SCF should lower the energy ({first} -> {last})");
    }

    #[test]
    fn screening_does_not_change_converged_energy_materially() {
        let mol = small::water();
        let tight =
            scf(&mol, BasisName::B631g, &ScfConfig { screening_tau: 0.0, ..Default::default() });
        let screened =
            scf(&mol, BasisName::B631g, &ScfConfig { screening_tau: 1e-10, ..Default::default() });
        assert!((tight.energy - screened.energy).abs() < 1e-7);
    }
}
