//! The SCF driver: guess → (Fock build → diagonalize → new density) until
//! convergence.
//!
//! Matches the paper's workflow (§3): convergence is declared when the
//! root-mean-square change of the density matrix falls below the threshold.
//! The two-electron Fock build — the paper's entire subject — is delegated
//! to the algorithm selected in [`ScfConfig`].

use crate::checkpoint::{ScfCheckpoint, CHECKPOINT_KEEP};
use crate::diis::Diis;
use crate::fock::engine::{FockBuilder, FockData};
use crate::fock::incremental::IncrementalFock;
use crate::fock::{DensitySet, FockAlgorithm};
use crate::guess::{core_guess, density_from_orbitals, solve_roothaan};
use crate::stats::FockBuildStats;
use phi_chem::{BasisSet, Molecule};
use phi_dmpi::{FaultPlan, RetryPolicy};
use phi_integrals::{kinetic_matrix, nuclear_attraction_matrix, overlap_matrix};
use phi_linalg::{sym_inv_sqrt, Mat};
use std::path::PathBuf;

/// SCF configuration.
#[derive(Clone, Debug)]
pub struct ScfConfig {
    pub algorithm: FockAlgorithm,
    /// Schwarz screening threshold on `Q_ij * Q_kl` (GAMESS default range).
    pub screening_tau: f64,
    /// Convergence threshold on the density RMS change.
    pub convergence: f64,
    pub max_iterations: usize,
    /// Enable DIIS acceleration.
    pub diis: bool,
    /// Eigenvalue cutoff for near-linear-dependent overlap directions.
    pub s_threshold: f64,
    /// Density damping: `D <- (1-a) D_new + a D_old` with `a` in [0, 1).
    /// Stabilizes oscillatory cases (GAMESS `$SCF DAMP`).
    pub damping: Option<f64>,
    /// Level shift `beta` added to the virtual orbital spectrum via
    /// `F <- F + beta (S - S D S / 2)` before diagonalization (GAMESS
    /// `$SCF SHIFT`). Reported virtual orbital energies include the shift.
    pub level_shift: Option<f64>,
    /// Conventional (in-core) SCF: store all surviving ERIs up to this many
    /// bytes and replay them every iteration instead of recomputing
    /// (GAMESS direct vs conventional SCF). Falls back to the configured
    /// direct algorithm if the integrals do not fit; compatible with every
    /// [`FockAlgorithm`] — when the integrals fit, the replay builder is
    /// used regardless of which direct algorithm was selected.
    pub incore_max_bytes: Option<usize>,
    /// Deterministic fault plan replayed on every Fock build (rank kills,
    /// stragglers, message faults). The serial algorithm ignores it.
    pub faults: Option<FaultPlan>,
    /// Reliable-delivery policy for rank messages and DDI window
    /// requests: ack timeouts, retransmit budget, deterministic backoff,
    /// and the (formerly hard-coded) barrier/receive timeouts.
    pub retry: RetryPolicy,
    /// Write an [`ScfCheckpoint`] here after every iteration.
    pub checkpoint_path: Option<PathBuf>,
    /// Resume from a previously written checkpoint instead of the core
    /// guess; the resumed run reproduces the uninterrupted one bit-for-bit
    /// (for deterministic builds, i.e. [`FockAlgorithm::Serial`]).
    ///
    /// Checkpoints store no incremental reference state, so the first
    /// build of a resumed run is always a full rebuild — which is what
    /// keeps the non-incremental bit-for-bit restart claim intact.
    pub resume_from: Option<PathBuf>,
    /// Incremental (ΔD) Fock builds: iteration `n` builds `G(ΔD)` with
    /// `ΔD = D_n - D_ref` under density-weighted screening and accumulates
    /// `G_n = G_ref + G(ΔD)` (see [`crate::fock::incremental`]). Lossy but
    /// bounded: periodic full rebuilds cap the accumulated screening error.
    pub incremental: bool,
    /// In incremental mode, perform a full rebuild every this many builds
    /// (clamped to >= 1; `1` makes every build full, reproducing the plain
    /// driver bit for bit). Ignored when `incremental` is false.
    pub full_rebuild_every: usize,
    /// Build each iteration's density by canonical purification
    /// ([`crate::purification`]) instead of diagonalization. This is the
    /// partner of [`FockAlgorithm::Sharded`]: the sharded build avoids
    /// replicating `N x N` Fock/density matrices per rank, and purification
    /// avoids the replicated `O(N^3)` eigensolve that `solve_roothaan`
    /// would reintroduce. Orbital energies and MO coefficients are not
    /// produced (the result keeps the initial-guess values).
    pub purification: bool,
}

impl Default for ScfConfig {
    fn default() -> Self {
        ScfConfig {
            algorithm: FockAlgorithm::Serial,
            screening_tau: 1e-10,
            convergence: 1e-8,
            max_iterations: 100,
            diis: true,
            s_threshold: 1e-8,
            damping: None,
            level_shift: None,
            incore_max_bytes: None,
            faults: None,
            retry: RetryPolicy::default(),
            checkpoint_path: None,
            resume_from: None,
            incremental: false,
            full_rebuild_every: 8,
            purification: false,
        }
    }
}

/// Why an SCF run stopped iterating.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScfStop {
    /// Density RMS change fell below the threshold.
    Converged,
    /// Ran out of iterations without converging or diverging.
    MaxIterations,
    /// The energy became NaN or infinite.
    NumericalDivergence,
    /// The energy locked into a 2-cycle (classic charge-sloshing
    /// oscillation) instead of settling.
    Oscillation,
}

/// Incremental divergence detector over the per-iteration energy history.
///
/// Terminates runs that will never converge instead of burning the full
/// iteration budget: NaN/±inf energies stop immediately; an exact 2-cycle
/// (`|E_k - E_{k-2}|` at noise level while `|E_k - E_{k-1}|` stays large)
/// sustained for [`Self::OSC_STREAK`] iterations is flagged as oscillation.
pub(crate) struct DivergenceDetector {
    streak: usize,
}

impl DivergenceDetector {
    /// Consecutive 2-cycle iterations required before declaring
    /// oscillation (one or two near-repeats happen in healthy runs).
    const OSC_STREAK: usize = 4;

    pub(crate) fn new() -> DivergenceDetector {
        DivergenceDetector { streak: 0 }
    }

    /// Feed the history as of this iteration (last element = newest
    /// energy); returns a stop reason once divergence is established.
    pub(crate) fn check(&mut self, history: &[f64]) -> Option<ScfStop> {
        let k = history.len();
        let e = history[k - 1];
        if !e.is_finite() {
            return Some(ScfStop::NumericalDivergence);
        }
        let two_cycle =
            k >= 3 && (e - history[k - 3]).abs() < 1e-13 && (e - history[k - 2]).abs() > 1e-8;
        self.streak = if two_cycle { self.streak + 1 } else { 0 };
        (self.streak >= Self::OSC_STREAK).then_some(ScfStop::Oscillation)
    }
}

/// Outcome of an SCF run.
#[derive(Clone, Debug)]
pub struct ScfResult {
    /// Total energy (electronic + nuclear repulsion), Hartree.
    pub energy: f64,
    pub electronic_energy: f64,
    pub nuclear_repulsion: f64,
    pub converged: bool,
    /// Why the iteration loop stopped ([`ScfStop::Converged`] iff
    /// `converged`).
    pub stop_reason: ScfStop,
    pub iterations: usize,
    /// Total energy after each iteration.
    pub energy_history: Vec<f64>,
    /// Per-iteration Fock-build statistics ("TIME TO FORM FOCK").
    pub fock_stats: Vec<FockBuildStats>,
    /// Final orbital energies.
    pub orbital_energies: Vec<f64>,
    /// Converged density matrix (input for property analysis).
    pub density: Mat,
    /// Final MO coefficients (columns are orbitals).
    pub orbitals: Mat,
    pub n_basis: usize,
    pub n_shells: usize,
}

impl ScfResult {
    /// Summed wall time of all two-electron Fock builds — the quantity the
    /// paper greps from the GAMESS log.
    pub fn time_to_form_fock(&self) -> f64 {
        self.fock_stats.iter().map(|s| s.seconds).sum()
    }

    /// Peak memory footprint over all builds (paper Table 2 metric).
    pub fn peak_memory(&self) -> usize {
        self.fock_stats.iter().map(|s| s.memory_total_peak).max().unwrap_or(0)
    }
}

/// Run a closed-shell restricted Hartree-Fock calculation.
pub fn run_scf(mol: &Molecule, basis: &BasisSet, config: &ScfConfig) -> ScfResult {
    let n = basis.n_basis();
    let n_occ = mol.n_occupied();
    assert!(
        n_occ <= n,
        "basis too small: {n_occ} occupied orbitals but only {n} basis functions \
         ({} shells) — pick a larger basis set",
        basis.n_shells()
    );

    // One-electron groundwork.
    let s = overlap_matrix(basis);
    let h = kinetic_matrix(basis).add(&nuclear_attraction_matrix(basis, mol));
    let x = sym_inv_sqrt(&s, config.s_threshold);
    // The persistent shell-pair dataset and Schwarz screening: built once
    // per (geometry, basis) and shared read-only by every SCF iteration,
    // thread and rank.
    let data = FockData::build(basis);
    let ctx = data.context(basis, config.screening_tau);
    let e_nn = mol.nuclear_repulsion();

    // Conventional SCF: precompute stored integrals if requested & they
    // fit. The replay is a FockBuilder like any other, so it composes with
    // every configured algorithm.
    let incore = config.incore_max_bytes.and_then(|max| {
        crate::incore::IncoreEris::compute(
            basis,
            &data.pairs,
            &data.screening,
            config.screening_tau,
            max,
        )
    });
    let direct = config.algorithm.builder_with_comm(config.faults.clone(), config.retry);
    let builder: &dyn FockBuilder = match &incore {
        Some(eris) => eris,
        None => direct.as_ref(),
    };

    // Initial guess — or the checkpointed state of an interrupted run.
    let mut d = core_guess(&h, &x, n_occ);
    let mut diis = Diis::new(8);
    let mut energy_history = Vec::new();
    let mut start_iter = 0;
    if let Some(path) = &config.resume_from {
        // A corrupt or truncated primary falls back through the rotated
        // generations; only when none is loadable does resume fail, and
        // then with every candidate's own named error.
        let (ck, loaded_from) = ScfCheckpoint::load_with_fallback(path, CHECKPOINT_KEEP)
            .unwrap_or_else(|e| {
                panic!("failed to resume SCF from checkpoint {}: {e}", path.display())
            });
        if loaded_from != *path {
            phi_trace::instant("checkpoint.fallback", 1);
        }
        assert_eq!(
            ck.density.rows(),
            n,
            "checkpoint {} was taken with {} basis functions, this run has {n}",
            path.display(),
            ck.density.rows()
        );
        d = ck.density;
        diis.restore(ck.diis);
        energy_history = ck.energy_history;
        start_iter = ck.iteration;
    }
    let mut fock_stats = Vec::new();
    let mut converged = false;
    let mut stop_reason = ScfStop::MaxIterations;
    let mut divergence = DivergenceDetector::new();
    let mut iterations = start_iter;
    let mut orbital_energies = Vec::new();
    let mut orbitals = Mat::zeros(n, n);
    let mut e_elec = 0.0;
    // ΔD bookkeeping starts with no reference state, so the first build —
    // including the first build after a checkpoint resume — is always a
    // full rebuild.
    let mut incremental =
        config.incremental.then(|| IncrementalFock::new(config.full_rebuild_every));

    for it in start_iter..config.max_iterations {
        iterations = it + 1;
        let _iter_span = phi_trace::span("scf.iteration");
        let gb = {
            let _span = phi_trace::span("scf.fock");
            match incremental.as_mut() {
                Some(inc) => inc.build(ctx, builder, &[&d]),
                None => builder.build(&ctx, &DensitySet::Restricted(&d)),
            }
        };
        fock_stats.push(gb.stats);
        let mut f = h.add(&gb.g);
        f.symmetrize();

        // E_elec = 1/2 sum_ij D_ij (H_ij + F_ij).
        e_elec = 0.5 * (d.dot(&h) + d.dot(&f));
        energy_history.push(e_elec + e_nn);
        if let Some(stop) = divergence.check(&energy_history) {
            stop_reason = stop;
            break;
        }

        let mut f_use = if config.diis {
            let _span = phi_trace::span("scf.diis");
            let err = Diis::error_vector(&f, &d, &s, &x);
            diis.extrapolate(f, err)
        } else {
            f
        };
        if let Some(beta) = config.level_shift {
            // Raise the virtual spectrum by beta: with D/2 the occupied
            // projector (in the S metric), S - S D S / 2 annihilates
            // occupied orbitals and acts as beta * S on virtuals.
            let sds = s.matmul(&d).matmul(&s);
            let mut shift = s.clone();
            shift.axpy(-0.5, &sds);
            f_use.axpy(beta, &shift);
        }

        let mut d_new = if config.purification {
            // Diagonalization-free density update: McWeeny/PM purification
            // keeps the whole iteration free of any replicated O(N^3)
            // eigensolve (pairs with the sharded Fock build).
            let _span = phi_trace::span("scf.purify");
            crate::purification::purify_density(&f_use, &x, n_occ, 200, 1e-12).density
        } else {
            let (eps, c) = {
                let _span = phi_trace::span("scf.diag");
                solve_roothaan(&f_use, &x)
            };
            let d = density_from_orbitals(&c, n_occ);
            orbital_energies = eps;
            orbitals = c;
            d
        };
        if let Some(alpha) = config.damping {
            assert!(
                (0.0..1.0).contains(&alpha),
                "damping factor {alpha} out of range: must be in [0, 1)"
            );
            d_new.scale(1.0 - alpha);
            d_new.axpy(alpha, &d);
        }

        // RMS density change.
        let diff = d_new.sub(&d);
        let rms = diff.frobenius_norm() / (n as f64);
        d = d_new;

        // Checkpoint the post-update state: density, DIIS history, energy
        // history. A run resumed from here replays iteration it+1 onward
        // exactly.
        if let Some(path) = &config.checkpoint_path {
            let ck = ScfCheckpoint {
                iteration: iterations,
                density: d.clone(),
                energy_history: energy_history.clone(),
                diis: diis.snapshot(),
            };
            ck.save_rotating(path, CHECKPOINT_KEEP).unwrap_or_else(|e| {
                panic!("failed to write SCF checkpoint to {}: {e}", path.display())
            });
        }

        if rms < config.convergence {
            converged = true;
            stop_reason = ScfStop::Converged;
            break;
        }
    }

    // A run resumed at/after max_iterations never enters the loop; report
    // the checkpointed energy rather than a stale zero.
    let energy = if iterations == start_iter {
        energy_history.last().copied().unwrap_or(e_nn)
    } else {
        e_elec + e_nn
    };
    ScfResult {
        energy,
        electronic_energy: energy - e_nn,
        nuclear_repulsion: e_nn,
        converged,
        stop_reason,
        iterations,
        energy_history,
        fock_stats,
        orbital_energies,
        density: d,
        orbitals,
        n_basis: n,
        n_shells: basis.n_shells(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;

    fn scf(mol: &Molecule, basis: BasisName, config: &ScfConfig) -> ScfResult {
        let b = BasisSet::build(mol, basis);
        run_scf(mol, &b, config)
    }

    #[test]
    fn h2_sto3g_matches_szabo() {
        // Szabo & Ostlund: E(RHF/STO-3G, R = 1.4 a0) = -1.1167 Eh.
        let r = scf(&small::hydrogen_molecule(1.4), BasisName::Sto3g, &ScfConfig::default());
        assert!(r.converged, "H2 did not converge");
        assert!(
            (r.energy - (-1.1167)).abs() < 2e-4,
            "H2/STO-3G energy {} vs literature -1.1167",
            r.energy
        );
    }

    #[test]
    fn heh_cation_matches_szabo_with_their_zeta_scaled_basis() {
        // Szabo & Ostlund's HeH+ model problem uses zeta-scaled STO-3G:
        // zeta(He) = 2.0925, zeta(H) = 1.24 (alpha_i = alpha_i(zeta=1) *
        // zeta^2 with the zeta=1 exponents 2.227660, 0.405771, 0.109818).
        // Their total energy at R = 1.4632 a0 is -2.8606 Eh.
        let mol = small::heh_cation();
        let base = [2.227660, 0.405771, 0.109818];
        let coefs = vec![0.154329, 0.535328, 0.444635];
        let zeta_he: f64 = 2.0925;
        let zeta_h: f64 = 1.24;
        let he = phi_chem::basis::custom_shell(
            0,
            mol.atoms()[0].pos,
            base.iter().map(|a| a * zeta_he * zeta_he).collect(),
            &[(0, coefs.clone())],
        );
        let h = phi_chem::basis::custom_shell(
            1,
            mol.atoms()[1].pos,
            base.iter().map(|a| a * zeta_h * zeta_h).collect(),
            &[(0, coefs)],
        );
        let b = BasisSet::from_shells(BasisName::Sto3g, vec![he, h]);
        let r = run_scf(&mol, &b, &ScfConfig::default());
        assert!(r.converged);
        assert!((r.energy - (-2.8606)).abs() < 1e-3, "HeH+ energy {} vs Szabo -2.8606", r.energy);
    }

    #[test]
    fn heh_cation_standard_sto3g_is_sane() {
        // With the standard (EMSL) STO-3G helium the energy differs from
        // Szabo's zeta-scaled value; pin our computed value as a regression
        // anchor.
        let r = scf(&small::heh_cation(), BasisName::Sto3g, &ScfConfig::default());
        assert!(r.converged);
        assert!((r.energy - (-2.8418)).abs() < 1e-3, "energy {}", r.energy);
    }

    #[test]
    fn water_sto3g_energy_is_in_the_textbook_window() {
        let r = scf(&small::water(), BasisName::Sto3g, &ScfConfig::default());
        assert!(r.converged);
        // RHF/STO-3G water at the experimental geometry: about -74.96 Eh.
        assert!(
            (r.energy - (-74.96)).abs() < 0.02,
            "water/STO-3G energy {} out of window",
            r.energy
        );
    }

    #[test]
    fn energy_is_invariant_under_rigid_motion() {
        let mol = small::water();
        let cfg = ScfConfig::default();
        let e0 = scf(&mol, BasisName::Sto3g, &cfg).energy;
        let e1 = scf(&mol.translated([2.0, -1.0, 3.0]), BasisName::Sto3g, &cfg).energy;
        let e2 = scf(&mol.rotated_z(1.1), BasisName::Sto3g, &cfg).energy;
        assert!((e0 - e1).abs() < 1e-9, "translation changed E: {e0} vs {e1}");
        assert!((e0 - e2).abs() < 1e-9, "rotation changed E: {e0} vs {e2}");
    }

    #[test]
    fn diis_reduces_iteration_count() {
        let mol = small::water();
        let with = scf(&mol, BasisName::Sto3g, &ScfConfig { diis: true, ..Default::default() });
        let without = scf(
            &mol,
            BasisName::Sto3g,
            &ScfConfig { diis: false, max_iterations: 200, ..Default::default() },
        );
        assert!(with.converged && without.converged);
        assert!(
            with.iterations <= without.iterations,
            "DIIS {} vs plain {}",
            with.iterations,
            without.iterations
        );
        assert!((with.energy - without.energy).abs() < 1e-6);
    }

    #[test]
    fn all_parallel_algorithms_give_the_same_energy() {
        let mol = small::water();
        let algorithms = [
            FockAlgorithm::Serial,
            FockAlgorithm::MpiOnly { n_ranks: 2 },
            FockAlgorithm::PrivateFock { n_ranks: 1, n_threads: 3 },
            FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
            FockAlgorithm::Distributed { n_ranks: 2 },
            FockAlgorithm::Sharded { n_ranks: 2, mode: phi_dmpi::DdiMode::Mpi3OneSided },
        ];
        let energies: Vec<f64> = algorithms
            .iter()
            .map(|&algorithm| {
                let r = scf(&mol, BasisName::Sto3g, &ScfConfig { algorithm, ..Default::default() });
                assert!(r.converged, "{} did not converge", algorithm.label());
                r.energy
            })
            .collect();
        for (k, e) in energies.iter().enumerate().skip(1) {
            assert!(
                (e - energies[0]).abs() < 1e-8,
                "algorithm {k} energy {e} vs serial {}",
                energies[0]
            );
        }
    }

    #[test]
    fn sharded_scf_with_purification_matches_serial_diagonalization() {
        // The full memory-lean pipeline: sharded Fock build (no replicated
        // N x N matrices) + purification (no replicated eigensolve) must
        // land on the serial diagonalizing driver's energy.
        let mol = small::water();
        let reference = scf(&mol, BasisName::Sto3g, &ScfConfig::default());
        let lean = scf(
            &mol,
            BasisName::Sto3g,
            &ScfConfig {
                algorithm: FockAlgorithm::Sharded {
                    n_ranks: 3,
                    mode: phi_dmpi::DdiMode::Mpi3OneSided,
                },
                purification: true,
                max_iterations: 200,
                ..Default::default()
            },
        );
        assert!(lean.converged, "sharded + purification did not converge");
        assert!(
            (lean.energy - reference.energy).abs() < 1e-10,
            "lean {} vs reference {}",
            lean.energy,
            reference.energy
        );
    }

    #[test]
    fn incore_scf_matches_direct_scf() {
        let mol = small::water();
        let direct = scf(&mol, BasisName::B631g, &ScfConfig::default());
        let incore = scf(
            &mol,
            BasisName::B631g,
            &ScfConfig { incore_max_bytes: Some(1 << 30), ..Default::default() },
        );
        assert!(incore.converged);
        assert!(
            (incore.energy - direct.energy).abs() < 1e-9,
            "in-core {} vs direct {}",
            incore.energy,
            direct.energy
        );
        // If the budget is too small the driver silently falls back.
        let fallback = scf(
            &mol,
            BasisName::B631g,
            &ScfConfig { incore_max_bytes: Some(16), ..Default::default() },
        );
        assert!((fallback.energy - direct.energy).abs() < 1e-9);
    }

    #[test]
    fn incore_composes_with_any_algorithm() {
        // The in-core replay is a FockBuilder: it must work (and win) under
        // a parallel algorithm selection, replaying the stored integrals
        // instead of dispatching to the configured direct builder.
        let mol = small::water();
        let direct = scf(&mol, BasisName::B631g, &ScfConfig::default());
        let incore_shared = scf(
            &mol,
            BasisName::B631g,
            &ScfConfig {
                algorithm: FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
                incore_max_bytes: Some(1 << 30),
                ..Default::default()
            },
        );
        assert!(incore_shared.converged);
        assert!(
            (incore_shared.energy - direct.energy).abs() < 1e-9,
            "in-core + shared Fock {} vs direct {}",
            incore_shared.energy,
            direct.energy
        );
        // The replay really was used: no quartets screened at build time
        // (screening happened at store time) and no DLB counter traffic.
        let s = incore_shared.fock_stats.first().expect("at least one iteration");
        assert_eq!(s.quartets_screened, 0);
        assert_eq!(s.dlb_calls, 0);
        // An undersized budget falls back to the configured direct builder.
        let fallback = scf(
            &mol,
            BasisName::B631g,
            &ScfConfig {
                algorithm: FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
                incore_max_bytes: Some(16),
                ..Default::default()
            },
        );
        assert!((fallback.energy - direct.energy).abs() < 1e-9);
        assert!(fallback.fock_stats.first().expect("iterations").dlb_calls > 0);
    }

    #[test]
    fn damping_and_level_shift_preserve_the_converged_energy() {
        let mol = small::water();
        let plain = scf(&mol, BasisName::Sto3g, &ScfConfig::default());
        let damped = scf(
            &mol,
            BasisName::Sto3g,
            &ScfConfig { damping: Some(0.3), max_iterations: 200, ..Default::default() },
        );
        let shifted = scf(
            &mol,
            BasisName::Sto3g,
            &ScfConfig { level_shift: Some(0.5), max_iterations: 200, ..Default::default() },
        );
        assert!(damped.converged && shifted.converged);
        assert!((damped.energy - plain.energy).abs() < 1e-7, "damped {}", damped.energy);
        assert!((shifted.energy - plain.energy).abs() < 1e-7, "shifted {}", shifted.energy);
        // The level shift raises virtual orbital energies but not occupied.
        let n_occ = mol.n_occupied();
        assert!(
            (shifted.orbital_energies[n_occ - 1] - plain.orbital_energies[n_occ - 1]).abs() < 1e-5,
            "occupied spectrum must be untouched"
        );
        assert!(
            shifted.orbital_energies[n_occ] > plain.orbital_energies[n_occ] + 0.4,
            "virtual spectrum must be raised by ~the shift"
        );
    }

    #[test]
    fn variational_bound_holds() {
        // SCF energy from the converged density must lie above the basis
        // set's true ground state but below the (terrible) core guess.
        let r = scf(&small::water(), BasisName::Sto3g, &ScfConfig::default());
        let first = r.energy_history[0];
        let last = *r.energy_history.last().unwrap();
        assert!(last < first, "SCF should lower the energy ({first} -> {last})");
    }

    #[test]
    fn converged_run_reports_converged_stop_reason() {
        let r = scf(&small::water(), BasisName::Sto3g, &ScfConfig::default());
        assert!(r.converged);
        assert_eq!(r.stop_reason, ScfStop::Converged);
        let capped = scf(
            &small::water(),
            BasisName::Sto3g,
            &ScfConfig { max_iterations: 2, ..Default::default() },
        );
        assert!(!capped.converged);
        assert_eq!(capped.stop_reason, ScfStop::MaxIterations);
    }

    #[test]
    fn divergence_detector_flags_nan_immediately() {
        let mut det = DivergenceDetector::new();
        assert_eq!(det.check(&[-74.0]), None);
        assert_eq!(det.check(&[-74.0, f64::NAN]), Some(ScfStop::NumericalDivergence));
        let mut det = DivergenceDetector::new();
        assert_eq!(det.check(&[f64::INFINITY]), Some(ScfStop::NumericalDivergence));
    }

    #[test]
    fn divergence_detector_flags_sustained_two_cycles_only() {
        // A perfect 2-cycle: ... a, b, a, b ... with |a-b| large.
        let mut det = DivergenceDetector::new();
        let (a, b) = (-74.0, -73.0);
        let mut hist = vec![a, b];
        let mut stopped = None;
        for _ in 0..10 {
            hist.push(hist[hist.len() - 2]);
            if let Some(s) = det.check(&hist) {
                stopped = Some(s);
                break;
            }
        }
        assert_eq!(stopped, Some(ScfStop::Oscillation));

        // A healthy converging sequence never trips the detector.
        let mut det = DivergenceDetector::new();
        let mut hist = Vec::new();
        for k in 0..30 {
            hist.push(-74.0 - 0.9f64.powi(k));
            assert_eq!(det.check(&hist), None, "converging run flagged at iter {k}");
        }

        // A brief 2-cycle that breaks before the streak threshold is fine.
        let mut det = DivergenceDetector::new();
        let hist = [a, b, a, b, a, -74.5, -74.6];
        for k in 1..=hist.len() {
            assert_eq!(det.check(&hist[..k]), None, "short 2-cycle flagged at len {k}");
        }
    }

    #[test]
    fn checkpoint_resume_reproduces_uninterrupted_energy_bit_for_bit() {
        let mol = small::water();
        let full = scf(&mol, BasisName::Sto3g, &ScfConfig::default());
        assert!(full.converged);

        // Interrupted run: stop after 4 iterations, checkpointing each one.
        let path =
            std::env::temp_dir().join(format!("phiscf_resume_test_{}.ckpt", std::process::id()));
        let interrupted = scf(
            &mol,
            BasisName::Sto3g,
            &ScfConfig {
                max_iterations: 4,
                checkpoint_path: Some(path.clone()),
                ..Default::default()
            },
        );
        assert!(!interrupted.converged, "4 iterations must not be enough");

        // Resume and run to convergence.
        let resumed = scf(
            &mol,
            BasisName::Sto3g,
            &ScfConfig { resume_from: Some(path.clone()), ..Default::default() },
        );
        let _ = std::fs::remove_file(&path);
        assert!(resumed.converged);
        assert_eq!(
            resumed.energy.to_bits(),
            full.energy.to_bits(),
            "resumed {} vs uninterrupted {} must agree bit-for-bit",
            resumed.energy,
            full.energy
        );
        assert_eq!(resumed.iterations, full.iterations);
        // The stitched history matches the uninterrupted one exactly.
        assert_eq!(resumed.energy_history.len(), full.energy_history.len());
        for (k, (r, f)) in resumed.energy_history.iter().zip(&full.energy_history).enumerate() {
            assert_eq!(r.to_bits(), f.to_bits(), "iteration {k}: {r} vs {f}");
        }
    }

    #[test]
    fn screening_does_not_change_converged_energy_materially() {
        let mol = small::water();
        let tight =
            scf(&mol, BasisName::B631g, &ScfConfig { screening_tau: 0.0, ..Default::default() });
        let screened =
            scf(&mol, BasisName::B631g, &ScfConfig { screening_tau: 1e-10, ..Default::default() });
        assert!((tight.energy - screened.energy).abs() < 1e-7);
    }
}
