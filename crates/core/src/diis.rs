//! DIIS (Pulay's direct inversion in the iterative subspace) convergence
//! acceleration.
//!
//! GAMESS runs SCF with DIIS by default, and the paper's benchmarks measure
//! full SCF runs; without acceleration the iteration counts (and hence
//! timings) would not be comparable. Standard commutator formulation: the
//! error vector is `e = Xᵀ (F D S - S D F) X`, and the extrapolated Fock is
//! the linear combination minimizing `|sum c_k e_k|` under `sum c_k = 1`.

use phi_linalg::{solve, Mat};
use std::collections::VecDeque;

/// DIIS history and extrapolation.
pub struct Diis {
    max_len: usize,
    history: VecDeque<(Mat, Mat)>, // (Fock, error)
}

impl Diis {
    /// `max_len` is the history window (GAMESS uses ~10; 8 here).
    pub fn new(max_len: usize) -> Diis {
        assert!(max_len >= 2);
        Diis { max_len, history: VecDeque::new() }
    }

    /// Commutator error `Xᵀ (F D S − S D F) X`.
    pub fn error_vector(f: &Mat, d: &Mat, s: &Mat, x: &Mat) -> Mat {
        let fds = f.matmul(d).matmul(s);
        let sdf = s.matmul(d).matmul(f);
        fds.sub(&sdf).congruence(x)
    }

    /// Push a new `(F, error)` pair and return the extrapolated Fock
    /// matrix. Falls back to the raw `F` while the history is short or the
    /// DIIS system is singular.
    pub fn extrapolate(&mut self, f: Mat, err: Mat) -> Mat {
        self.history.push_back((f, err));
        if self.history.len() > self.max_len {
            self.history.pop_front();
        }
        let m = self.history.len();
        if m < 2 {
            return self.history.back().expect("just pushed").0.clone();
        }
        // B c = rhs with B_kl = <e_k, e_l>, bordered by the constraint row.
        let dim = m + 1;
        let mut b = Mat::zeros(dim, dim);
        for k in 0..m {
            for l in 0..=k {
                let v = self.history[k].1.dot(&self.history[l].1);
                b[(k, l)] = v;
                b[(l, k)] = v;
            }
            b[(k, m)] = -1.0;
            b[(m, k)] = -1.0;
        }
        let mut rhs = vec![0.0; dim];
        rhs[m] = -1.0;
        match solve(&b, &rhs) {
            Some(c) => {
                let n = self.history[0].0.rows();
                let mut out = Mat::zeros(n, n);
                for (k, (fk, _)) in self.history.iter().enumerate() {
                    out.axpy(c[k], fk);
                }
                out
            }
            // Singular B (e.g. duplicate errors): drop the oldest entry and
            // use the raw Fock this iteration.
            None => {
                self.history.pop_front();
                self.history.back().expect("non-empty").0.clone()
            }
        }
    }

    /// Copy the `(Fock, error)` history for checkpointing, oldest first.
    pub fn snapshot(&self) -> Vec<(Mat, Mat)> {
        self.history.iter().cloned().collect()
    }

    /// Replace the history with a checkpointed snapshot (truncating to the
    /// window if the snapshot came from a longer-history run).
    pub fn restore(&mut self, history: Vec<(Mat, Mat)>) {
        self.history = history.into_iter().collect();
        while self.history.len() > self.max_len {
            self.history.pop_front();
        }
    }

    /// Largest absolute element of the most recent error vector — the usual
    /// convergence diagnostic.
    pub fn last_error_norm(&self) -> f64 {
        self.history.back().map(|(_, e)| e.max_abs()).unwrap_or(f64::INFINITY)
    }

    pub fn len(&self) -> usize {
        self.history.len()
    }

    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_push_returns_raw_fock() {
        let mut diis = Diis::new(4);
        let f = Mat::from_fn(3, 3, |i, j| (i + j) as f64);
        let e = Mat::zeros(3, 3);
        let out = diis.extrapolate(f.clone(), e);
        assert_eq!(out.max_abs_diff(&f), 0.0);
    }

    #[test]
    fn exact_linear_combination_is_recovered() {
        // Two Focks with opposite errors: the minimizing combination is the
        // average (errors cancel exactly).
        let mut diis = Diis::new(4);
        let f1 = Mat::from_fn(2, 2, |i, j| if i == j { 1.0 } else { 0.1 });
        let f2 = Mat::from_fn(2, 2, |i, j| if i == j { 3.0 } else { -0.1 });
        let e1 = Mat::from_fn(2, 2, |_, _| 1.0);
        let mut e2 = e1.clone();
        e2.scale(-1.0);
        diis.extrapolate(f1.clone(), e1);
        let out = diis.extrapolate(f2.clone(), e2);
        let mut avg = f1.clone();
        avg.axpy(1.0, &f2);
        avg.scale(0.5);
        assert!(out.max_abs_diff(&avg) < 1e-10);
    }

    #[test]
    fn history_is_bounded() {
        let mut diis = Diis::new(3);
        for k in 0..10 {
            let f = Mat::from_fn(2, 2, |i, j| (i * 2 + j + k) as f64);
            let e = Mat::from_fn(2, 2, |i, j| ((i + j + k) as f64).sin());
            diis.extrapolate(f, e);
        }
        assert_eq!(diis.len(), 3);
    }

    #[test]
    fn singular_system_falls_back_gracefully() {
        let mut diis = Diis::new(4);
        let f = Mat::identity(2);
        let e = Mat::zeros(2, 2); // zero errors make B singular
        diis.extrapolate(f.clone(), e.clone());
        let out = diis.extrapolate(f.clone(), e);
        // Must return a finite matrix without panicking.
        assert!(out.max_abs() < 10.0);
    }
}
