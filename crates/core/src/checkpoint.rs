//! SCF checkpoint/restart: serialize the iteration state so a run killed
//! mid-SCF resumes and reproduces the uninterrupted energy bit-for-bit.
//!
//! The state that determines every subsequent iteration is exactly the
//! density matrix, the DIIS history (the `(F, error)` pairs), and the
//! energy history (for divergence detection); everything else — overlap,
//! core Hamiltonian, shell pairs, screening — is rebuilt deterministically
//! from the input. Checkpoints therefore hold those three plus the
//! iteration count.
//!
//! # Format
//!
//! A flat little-endian binary layout, all `f64` round-tripped through
//! [`f64::to_bits`]/[`f64::from_bits`] so resume is bit-exact. Every
//! section carries a trailing CRC-32 (IEEE) of its own bytes, so a
//! flipped bit or short write is *diagnosed by name* instead of being
//! silently loaded as garbage density:
//!
//! ```text
//! magic   8 bytes  "PHISCF1\0"
//! header  4 u64    iter, n (basis dim), n_hist, n_diis   + crc32 u32
//! density n*n f64                                        + crc32 u32
//! history n_hist f64                                     + crc32 u32
//! diis    n_diis x (2 * n*n f64)  Fock then error,       + crc32 u32
//!                                 oldest first
//! ```
//!
//! # Durability
//!
//! [`ScfCheckpoint::save`] writes to a `<path>.tmp` sibling, fsyncs,
//! then renames over `path` — a crash mid-write leaves the previous
//! checkpoint intact, never a truncated hybrid.
//! [`ScfCheckpoint::save_rotating`] additionally keeps the last K good
//! files as `<path>.1` (newest) … `<path>.K`, and
//! [`ScfCheckpoint::load_with_fallback`] walks that chain on a corrupt
//! or missing primary so one bad file costs one checkpoint interval,
//! not the whole run.

use phi_linalg::Mat;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"PHISCF1\0";

/// How many previous-good checkpoint generations
/// [`ScfCheckpoint::save_rotating`] keeps by default.
pub const CHECKPOINT_KEEP: usize = 2;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the ubiquitous
/// zlib/ethernet variant, hand-rolled bitwise since checkpoints are
/// small and the std library offers no checksum.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// `<path>.<suffix>` with the suffix appended to the full file name
/// (`foo.ckpt` → `foo.ckpt.1`), keeping rotated generations sorted next
/// to their primary.
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".{suffix}"));
    PathBuf::from(os)
}

/// One SCF iteration's restartable state.
#[derive(Clone, Debug, PartialEq)]
pub struct ScfCheckpoint {
    /// Iterations completed (the resumed loop starts at this index).
    pub iteration: usize,
    /// Density matrix after that iteration's update.
    pub density: Mat,
    /// Total energy after each completed iteration.
    pub energy_history: Vec<f64>,
    /// DIIS `(Fock, error)` history, oldest first.
    pub diis: Vec<(Mat, Mat)>,
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    for v in vs {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> io::Result<&'a [u8]> {
        if self.pos + len > self.buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "truncated SCF checkpoint: wanted {len} bytes at offset {}, file has {}",
                    self.pos,
                    self.buf.len()
                ),
            ));
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Verify the CRC-32 trailer of the section spanning
    /// `start..self.pos`, consuming the stored 4-byte checksum.
    fn check_crc(&mut self, name: &'static str, start: usize) -> io::Result<()> {
        let computed = crc32(&self.buf[start..self.pos]);
        let b = self.take(4).map_err(|_| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("truncated SCF checkpoint: section '{name}' is missing its CRC trailer"),
            )
        })?;
        let stored = u32::from_le_bytes(b.try_into().expect("4-byte slice"));
        if stored != computed {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "SCF checkpoint section '{name}' failed its CRC \
                     (stored {stored:#010x}, computed {computed:#010x}): file is corrupt"
                ),
            ));
        }
        Ok(())
    }

    fn f64s(&mut self, count: usize) -> io::Result<Vec<f64>> {
        let b = self.take(count * 8)?;
        Ok(b.chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
            .collect())
    }

    fn mat(&mut self, n: usize) -> io::Result<Mat> {
        Ok(Mat::from_vec(n, n, self.f64s(n * n)?))
    }
}

impl ScfCheckpoint {
    /// Serialize to the flat binary layout, each section followed by
    /// its CRC-32.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.density.rows();
        let mut out = Vec::with_capacity(
            MAGIC.len()
                + 4 * 8
                + 8 * (n * n + self.energy_history.len() + 2 * n * n * self.diis.len())
                + 4 * 4,
        );
        let seal = |out: &mut Vec<u8>, start: usize| {
            let crc = crc32(&out[start..]);
            out.extend_from_slice(&crc.to_le_bytes());
        };
        out.extend_from_slice(MAGIC);

        let start = out.len();
        put_u64(&mut out, self.iteration as u64);
        put_u64(&mut out, n as u64);
        put_u64(&mut out, self.energy_history.len() as u64);
        put_u64(&mut out, self.diis.len() as u64);
        seal(&mut out, start);

        let start = out.len();
        put_f64s(&mut out, self.density.as_slice());
        seal(&mut out, start);

        let start = out.len();
        put_f64s(&mut out, &self.energy_history);
        seal(&mut out, start);

        let start = out.len();
        for (f, e) in &self.diis {
            put_f64s(&mut out, f.as_slice());
            put_f64s(&mut out, e.as_slice());
        }
        seal(&mut out, start);
        out
    }

    /// Byte offset where each named section of the serialized layout
    /// begins, ending with `("end", total_len)`. Used by the
    /// corruption-sweep tests to damage every boundary of a real file.
    pub fn section_offsets(&self) -> Vec<(&'static str, usize)> {
        let n = self.density.rows();
        let mut off = MAGIC.len();
        let mut v = vec![("magic", 0), ("header", off)];
        off += 4 * 8 + 4;
        v.push(("density", off));
        off += n * n * 8 + 4;
        v.push(("history", off));
        off += self.energy_history.len() * 8 + 4;
        v.push(("diis", off));
        off += self.diis.len() * 2 * n * n * 8 + 4;
        v.push(("end", off));
        v
    }

    /// Parse the flat binary layout, validating magic, per-section
    /// CRCs, and lengths.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<ScfCheckpoint> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("not an SCF checkpoint: bad magic {magic:?}"),
            ));
        }
        let start = r.pos;
        let iteration = r.u64()? as usize;
        let n = r.u64()? as usize;
        let n_hist = r.u64()? as usize;
        let n_diis = r.u64()? as usize;
        r.check_crc("header", start)?;

        let start = r.pos;
        let density = r.mat(n)?;
        r.check_crc("density", start)?;

        let start = r.pos;
        let energy_history = r.f64s(n_hist)?;
        r.check_crc("history", start)?;

        let start = r.pos;
        let mut diis = Vec::with_capacity(n_diis);
        for _ in 0..n_diis {
            let f = r.mat(n)?;
            let e = r.mat(n)?;
            diis.push((f, e));
        }
        r.check_crc("diis", start)?;
        if r.pos != bytes.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("SCF checkpoint has {} trailing bytes", bytes.len() - r.pos),
            ));
        }
        Ok(ScfCheckpoint { iteration, density, energy_history, diis })
    }

    /// Write the checkpoint to `path` atomically: the bytes go to a
    /// `<path>.tmp` sibling (same directory, so the rename cannot cross
    /// filesystems), are fsynced, and the tmp file is renamed over
    /// `path`. A crash at any point leaves either the old file or the
    /// new one — never a truncated hybrid.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = sibling(path, "tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Atomic save with last-K rotation: the current `path` (if any)
    /// becomes `<path>.1`, `<path>.1` becomes `<path>.2`, … up to
    /// `keep` generations, then the new checkpoint is written to
    /// `path`. Pair with [`load_with_fallback`](Self::load_with_fallback)
    /// so a checkpoint corrupted on disk costs one interval of
    /// progress, not the run.
    pub fn save_rotating(&self, path: &Path, keep: usize) -> io::Result<()> {
        for i in (1..keep).rev() {
            // A missing generation is fine — rotation is best-effort.
            let _ =
                std::fs::rename(sibling(path, &i.to_string()), sibling(path, &(i + 1).to_string()));
        }
        if keep > 0 {
            let _ = std::fs::rename(path, sibling(path, "1"));
        }
        self.save(path)
    }

    /// Read a checkpoint back from `path`.
    pub fn load(path: &Path) -> io::Result<ScfCheckpoint> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }

    /// Load `path`, falling back through the rotated generations
    /// `<path>.1` … `<path>.keep` when the primary is missing,
    /// truncated, or fails a CRC. Returns the checkpoint together with
    /// the path that actually supplied it; if every candidate fails,
    /// the error names each one with its individual failure.
    pub fn load_with_fallback(path: &Path, keep: usize) -> io::Result<(ScfCheckpoint, PathBuf)> {
        let candidates = std::iter::once(path.to_path_buf())
            .chain((1..=keep).map(|i| sibling(path, &i.to_string())));
        let mut attempts = Vec::new();
        for candidate in candidates {
            match Self::load(&candidate) {
                Ok(ck) => return Ok((ck, candidate)),
                Err(e) => attempts.push(format!("{}: {e}", candidate.display())),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("no loadable SCF checkpoint; tried [{}]", attempts.join("; ")),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScfCheckpoint {
        let n = 3;
        let d = Mat::from_fn(n, n, |i, j| 0.1 * (i * n + j) as f64 - 0.3);
        let f = Mat::from_fn(n, n, |i, j| ((i + 2 * j) as f64).sin());
        let e = Mat::from_fn(n, n, |i, j| ((3 * i + j) as f64).cos() * 1e-5);
        ScfCheckpoint {
            iteration: 7,
            density: d,
            energy_history: vec![-74.0, -74.9, -74.96123456789],
            diis: vec![(f.clone(), e.clone()), (e, f)],
        }
    }

    #[test]
    fn roundtrips_bit_for_bit() {
        let ck = sample();
        let back = ScfCheckpoint::from_bytes(&ck.to_bytes()).expect("roundtrip parse");
        assert_eq!(ck, back);
        // Bit-level equality, not just PartialEq on f64 (which would accept
        // -0.0 == 0.0): the resume contract is bit-exact reproduction.
        for (a, b) in ck.density.as_slice().iter().zip(back.density.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn roundtrips_through_a_file() {
        let ck = sample();
        let path =
            std::env::temp_dir().join(format!("phiscf_ckpt_test_{}.bin", std::process::id()));
        ck.save(&path).expect("save checkpoint");
        let back = ScfCheckpoint::load(&path).expect("load checkpoint");
        let _ = std::fs::remove_file(&path);
        assert_eq!(ck, back);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let ck = sample();
        let mut bytes = ck.to_bytes();
        bytes[0] = b'X';
        assert!(ScfCheckpoint::from_bytes(&bytes).is_err(), "bad magic must be rejected");
        let bytes = ck.to_bytes();
        assert!(
            ScfCheckpoint::from_bytes(&bytes[..bytes.len() - 4]).is_err(),
            "truncated file must be rejected"
        );
        let mut bytes = ck.to_bytes();
        bytes.push(0);
        assert!(ScfCheckpoint::from_bytes(&bytes).is_err(), "trailing bytes must be rejected");
    }

    #[test]
    fn crc32_matches_the_ieee_reference_vector() {
        // The canonical zlib/IEEE check value: crc32(b"123456789).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn a_flipped_bit_in_each_section_is_caught_and_named() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let offsets = ck.section_offsets();
        // Flip one bit inside every data section (not "magic"/"end")
        // and check the parse error names that very section.
        for w in offsets.windows(2) {
            let (name, start) = w[0];
            if name == "magic" {
                continue;
            }
            let mut bad = bytes.clone();
            bad[start + 3] ^= 0x10;
            let err = ScfCheckpoint::from_bytes(&bad).expect_err("corruption must be caught");
            assert!(
                err.to_string().contains(name),
                "error for a bit flip in '{name}' names the section: {err}"
            );
        }
    }

    #[test]
    fn save_rotates_and_load_falls_back_to_previous_good() {
        let dir = std::env::temp_dir().join(format!(
            "phiscf_ckpt_rotate_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("run.ckpt");

        let mut gen1 = sample();
        gen1.iteration = 1;
        let mut gen2 = sample();
        gen2.iteration = 2;
        gen1.save_rotating(&path, CHECKPOINT_KEEP).expect("save gen1");
        gen2.save_rotating(&path, CHECKPOINT_KEEP).expect("save gen2");

        // Primary holds gen2, .1 holds gen1, no stray .tmp left behind.
        assert!(!sibling(&path, "tmp").exists(), "tmp file must be renamed away");
        let (ck, from) = ScfCheckpoint::load_with_fallback(&path, CHECKPOINT_KEEP).expect("load");
        assert_eq!((ck.iteration, from.clone()), (2, path.clone()));

        // Corrupt the primary: fallback must supply gen1 from `.1`.
        let mut bytes = std::fs::read(&path).expect("read primary");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite corrupted");
        let (ck, from) = ScfCheckpoint::load_with_fallback(&path, CHECKPOINT_KEEP)
            .expect("fallback to previous good");
        assert_eq!((ck.iteration, from), (1, sibling(&path, "1")));

        // Destroy every generation: the error names each candidate.
        std::fs::write(&path, b"garbage").expect("wreck primary");
        std::fs::write(sibling(&path, "1"), b"garbage").expect("wreck .1");
        let err = ScfCheckpoint::load_with_fallback(&path, CHECKPOINT_KEEP)
            .expect_err("nothing loadable");
        let msg = err.to_string();
        assert!(
            msg.contains("run.ckpt:") && msg.contains("run.ckpt.1:"),
            "error lists candidates: {msg}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn preserves_nan_and_negative_zero_payloads() {
        let mut ck = sample();
        ck.energy_history = vec![f64::NAN, -0.0, f64::INFINITY];
        let back = ScfCheckpoint::from_bytes(&ck.to_bytes()).expect("parse");
        assert_eq!(
            ck.energy_history.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            back.energy_history.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
