//! SCF checkpoint/restart: serialize the iteration state so a run killed
//! mid-SCF resumes and reproduces the uninterrupted energy bit-for-bit.
//!
//! The state that determines every subsequent iteration is exactly the
//! density matrix, the DIIS history (the `(F, error)` pairs), and the
//! energy history (for divergence detection); everything else — overlap,
//! core Hamiltonian, shell pairs, screening — is rebuilt deterministically
//! from the input. Checkpoints therefore hold those three plus the
//! iteration count.
//!
//! # Format
//!
//! A flat little-endian binary layout, all `f64` round-tripped through
//! [`f64::to_bits`]/[`f64::from_bits`] so resume is bit-exact:
//!
//! ```text
//! magic   8 bytes  "PHISCF1\0"
//! iter    u64      iterations completed when the checkpoint was taken
//! n       u64      basis dimension (density is n x n)
//! n_hist  u64      energy-history length
//! n_diis  u64      DIIS history length (pairs)
//! density n*n f64
//! history n_hist f64
//! diis    n_diis x (2 * n*n f64)   Fock then error, oldest first
//! ```

use phi_linalg::Mat;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PHISCF1\0";

/// One SCF iteration's restartable state.
#[derive(Clone, Debug, PartialEq)]
pub struct ScfCheckpoint {
    /// Iterations completed (the resumed loop starts at this index).
    pub iteration: usize,
    /// Density matrix after that iteration's update.
    pub density: Mat,
    /// Total energy after each completed iteration.
    pub energy_history: Vec<f64>,
    /// DIIS `(Fock, error)` history, oldest first.
    pub diis: Vec<(Mat, Mat)>,
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    for v in vs {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> io::Result<&'a [u8]> {
        if self.pos + len > self.buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "truncated SCF checkpoint: wanted {len} bytes at offset {}, file has {}",
                    self.pos,
                    self.buf.len()
                ),
            ));
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn f64s(&mut self, count: usize) -> io::Result<Vec<f64>> {
        let b = self.take(count * 8)?;
        Ok(b.chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
            .collect())
    }

    fn mat(&mut self, n: usize) -> io::Result<Mat> {
        Ok(Mat::from_vec(n, n, self.f64s(n * n)?))
    }
}

impl ScfCheckpoint {
    /// Serialize to the flat binary layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.density.rows();
        let mut out = Vec::with_capacity(
            MAGIC.len()
                + 4 * 8
                + 8 * (n * n + self.energy_history.len() + 2 * n * n * self.diis.len()),
        );
        out.extend_from_slice(MAGIC);
        put_u64(&mut out, self.iteration as u64);
        put_u64(&mut out, n as u64);
        put_u64(&mut out, self.energy_history.len() as u64);
        put_u64(&mut out, self.diis.len() as u64);
        put_f64s(&mut out, self.density.as_slice());
        put_f64s(&mut out, &self.energy_history);
        for (f, e) in &self.diis {
            put_f64s(&mut out, f.as_slice());
            put_f64s(&mut out, e.as_slice());
        }
        out
    }

    /// Parse the flat binary layout, validating magic and lengths.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<ScfCheckpoint> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("not an SCF checkpoint: bad magic {magic:?}"),
            ));
        }
        let iteration = r.u64()? as usize;
        let n = r.u64()? as usize;
        let n_hist = r.u64()? as usize;
        let n_diis = r.u64()? as usize;
        let density = r.mat(n)?;
        let energy_history = r.f64s(n_hist)?;
        let mut diis = Vec::with_capacity(n_diis);
        for _ in 0..n_diis {
            let f = r.mat(n)?;
            let e = r.mat(n)?;
            diis.push((f, e));
        }
        if r.pos != bytes.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("SCF checkpoint has {} trailing bytes", bytes.len() - r.pos),
            ));
        }
        Ok(ScfCheckpoint { iteration, density, energy_history, diis })
    }

    /// Write the checkpoint to `path` (atomically enough for tests: a
    /// single `write` of the full buffer).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        f.sync_all()
    }

    /// Read a checkpoint back from `path`.
    pub fn load(path: &Path) -> io::Result<ScfCheckpoint> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScfCheckpoint {
        let n = 3;
        let d = Mat::from_fn(n, n, |i, j| 0.1 * (i * n + j) as f64 - 0.3);
        let f = Mat::from_fn(n, n, |i, j| ((i + 2 * j) as f64).sin());
        let e = Mat::from_fn(n, n, |i, j| ((3 * i + j) as f64).cos() * 1e-5);
        ScfCheckpoint {
            iteration: 7,
            density: d,
            energy_history: vec![-74.0, -74.9, -74.96123456789],
            diis: vec![(f.clone(), e.clone()), (e, f)],
        }
    }

    #[test]
    fn roundtrips_bit_for_bit() {
        let ck = sample();
        let back = ScfCheckpoint::from_bytes(&ck.to_bytes()).expect("roundtrip parse");
        assert_eq!(ck, back);
        // Bit-level equality, not just PartialEq on f64 (which would accept
        // -0.0 == 0.0): the resume contract is bit-exact reproduction.
        for (a, b) in ck.density.as_slice().iter().zip(back.density.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn roundtrips_through_a_file() {
        let ck = sample();
        let path =
            std::env::temp_dir().join(format!("phiscf_ckpt_test_{}.bin", std::process::id()));
        ck.save(&path).expect("save checkpoint");
        let back = ScfCheckpoint::load(&path).expect("load checkpoint");
        let _ = std::fs::remove_file(&path);
        assert_eq!(ck, back);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let ck = sample();
        let mut bytes = ck.to_bytes();
        bytes[0] = b'X';
        assert!(ScfCheckpoint::from_bytes(&bytes).is_err(), "bad magic must be rejected");
        let bytes = ck.to_bytes();
        assert!(
            ScfCheckpoint::from_bytes(&bytes[..bytes.len() - 4]).is_err(),
            "truncated file must be rejected"
        );
        let mut bytes = ck.to_bytes();
        bytes.push(0);
        assert!(ScfCheckpoint::from_bytes(&bytes).is_err(), "trailing bytes must be rejected");
    }

    #[test]
    fn preserves_nan_and_negative_zero_payloads() {
        let mut ck = sample();
        ck.energy_history = vec![f64::NAN, -0.0, f64::INFINITY];
        let back = ScfCheckpoint::from_bytes(&ck.to_bytes()).expect("parse");
        assert_eq!(
            ck.energy_history.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            back.energy_history.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
