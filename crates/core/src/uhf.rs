//! Unrestricted Hartree-Fock (UHF).
//!
//! The paper's conclusion (§7) notes that its parallel-assembly strategy
//! transfers directly to "UHF, GVB, DFT, CPHF — all have this structure".
//! This module demonstrates that: the UHF spin Fock matrices
//!
//! ```text
//! F_alpha = H + J(D_total) - K(D_alpha)
//! F_beta  = H + J(D_total) - K(D_beta)
//! ```
//!
//! are assembled from the *same* canonical-quartet digestion used by the
//! RHF builders through the unified engine layer: each iteration makes one
//! [`DensitySet::Unrestricted`] build, so every surviving ERI is evaluated
//! once and digested into both spin channels — under any of the paper's
//! parallel algorithms, selected via [`UhfConfig::algorithm`].

use crate::fock::engine::FockData;
use crate::fock::incremental::IncrementalFock;
use crate::fock::{DensitySet, FockAlgorithm};
use crate::guess::{density_from_orbitals, solve_roothaan};
use crate::scf::{DivergenceDetector, ScfStop};
use crate::stats::FockBuildStats;
use phi_chem::{BasisSet, Molecule};
use phi_dmpi::{FaultPlan, RetryPolicy};
use phi_integrals::{kinetic_matrix, nuclear_attraction_matrix, overlap_matrix};
use phi_linalg::{sym_inv_sqrt, Mat};

/// UHF configuration.
#[derive(Clone, Debug)]
pub struct UhfConfig {
    /// Which Fock-build parallelization to use — all of the paper's
    /// algorithms serve UHF through the unified engine.
    pub algorithm: FockAlgorithm,
    pub screening_tau: f64,
    pub convergence: f64,
    pub max_iterations: usize,
    pub s_threshold: f64,
    /// Mix the alpha HOMO/LUMO of the initial guess to break spin symmetry
    /// (needed to reach broken-symmetry solutions, e.g. stretched H2).
    pub break_symmetry: bool,
    /// Deterministic fault plan replayed on every spin-Fock build. The
    /// serial algorithm ignores it.
    pub faults: Option<FaultPlan>,
    /// Reliable-delivery policy for rank messages and DDI window
    /// requests (see [`crate::scf::ScfConfig::retry`]).
    pub retry: RetryPolicy,
    /// Incremental (ΔD) spin-Fock builds: both channels accumulate
    /// `G_s,n = G_s,ref + G_s(ΔD)` — valid because each `G_s` is jointly
    /// linear in `(D_alpha, D_beta)`. See [`crate::fock::incremental`].
    pub incremental: bool,
    /// In incremental mode, perform a full rebuild every this many builds
    /// (clamped to >= 1; `1` makes every build full).
    pub full_rebuild_every: usize,
    /// Build each spin density by canonical purification instead of
    /// diagonalization (the partner of [`FockAlgorithm::Sharded`]; see
    /// [`crate::scf::ScfConfig::purification`]). Orbital energies are not
    /// produced; `<S^2>` is computed from the densities, which gives the
    /// same value either way.
    pub purification: bool,
}

impl Default for UhfConfig {
    fn default() -> Self {
        UhfConfig {
            algorithm: FockAlgorithm::Serial,
            screening_tau: 1e-10,
            convergence: 1e-8,
            max_iterations: 200,
            s_threshold: 1e-8,
            break_symmetry: false,
            faults: None,
            retry: RetryPolicy::default(),
            incremental: false,
            full_rebuild_every: 8,
            purification: false,
        }
    }
}

/// Outcome of a UHF run.
#[derive(Clone, Debug)]
pub struct UhfResult {
    pub energy: f64,
    pub converged: bool,
    /// Why the iteration loop stopped ([`ScfStop::Converged`] iff
    /// `converged`).
    pub stop_reason: ScfStop,
    pub iterations: usize,
    /// `<S^2>` expectation value (spin contamination diagnostic).
    pub s_squared: f64,
    pub orbital_energies_alpha: Vec<f64>,
    pub orbital_energies_beta: Vec<f64>,
    /// Converged alpha-spin density (no factor 2).
    pub density_alpha: Mat,
    /// Converged beta-spin density.
    pub density_beta: Mat,
    /// Per-iteration Fock-build statistics, collected identically to the
    /// RHF driver's ("TIME TO FORM FOCK" for the spin-Fock builds).
    pub fock_stats: Vec<FockBuildStats>,
}

/// A half-density: `C_occ C_occᵀ` (no factor 2) for one spin channel.
fn spin_density(c: &Mat, n_occ: usize) -> Mat {
    let mut d = density_from_orbitals(c, n_occ);
    d.scale(0.5);
    d
}

/// Run UHF with `n_alpha`/`n_beta` electrons of each spin.
pub fn run_uhf(
    mol: &Molecule,
    basis: &BasisSet,
    n_alpha: usize,
    n_beta: usize,
    config: &UhfConfig,
) -> UhfResult {
    assert_eq!(n_alpha + n_beta, mol.n_electrons(), "spin counts must sum to the electron count");
    assert!(n_alpha >= n_beta, "convention: n_alpha >= n_beta");
    let n = basis.n_basis();
    let s = overlap_matrix(basis);
    let h = kinetic_matrix(basis).add(&nuclear_attraction_matrix(basis, mol));
    let x = sym_inv_sqrt(&s, config.s_threshold);
    let data = FockData::build(basis);
    let ctx = data.context(basis, config.screening_tau);
    let builder = config.algorithm.builder_with_comm(config.faults.clone(), config.retry);
    let e_nn = mol.nuclear_repulsion();

    // Core guess for both spins.
    let (_e0, c0) = solve_roothaan(&h, &x);
    let mut c_alpha = c0.clone();
    let c_beta = c0;
    if config.break_symmetry && n_alpha <= n && n_alpha >= 1 && n_alpha < n {
        // Rotate alpha HOMO/LUMO by 45 degrees.
        let (homo, lumo) = (n_alpha - 1, n_alpha);
        let inv_sqrt2 = 1.0 / 2f64.sqrt();
        for r in 0..n {
            let (ch, cl) = (c_alpha[(r, homo)], c_alpha[(r, lumo)]);
            c_alpha[(r, homo)] = inv_sqrt2 * (ch + cl);
            c_alpha[(r, lumo)] = inv_sqrt2 * (cl - ch);
        }
    }
    let mut d_a = spin_density(&c_alpha, n_alpha);
    let mut d_b = if n_beta > 0 { spin_density(&c_beta, n_beta) } else { Mat::zeros(n, n) };

    let mut converged = false;
    let mut stop_reason = ScfStop::MaxIterations;
    let mut divergence = DivergenceDetector::new();
    let mut energy_history = Vec::new();
    let mut iterations = 0;
    let mut energy = 0.0;
    let mut eps_a = Vec::new();
    let mut eps_b = Vec::new();
    let mut fock_stats = Vec::new();
    let mut incremental =
        config.incremental.then(|| IncrementalFock::new(config.full_rebuild_every));

    for it in 0..config.max_iterations {
        iterations = it + 1;
        let _iter_span = phi_trace::span("scf.iteration");
        // One spin-generalized build per iteration: every surviving ERI is
        // evaluated once and digested into both channels,
        // G_s = J(D_a + D_b) - K(D_s).
        let gb = {
            let _span = phi_trace::span("scf.fock");
            match incremental.as_mut() {
                Some(inc) => inc.build(ctx, builder.as_ref(), &[&d_a, &d_b]),
                None => builder.build(&ctx, &DensitySet::Unrestricted { alpha: &d_a, beta: &d_b }),
            }
        };
        let g_b = gb.g_beta.unwrap_or_else(|| {
            panic!(
                "Fock builder '{}' returned no beta channel for an unrestricted \
                 density — every builder must digest both spin channels",
                builder.label()
            )
        });
        let mut f_a = h.add(&gb.g);
        let mut f_b = h.add(&g_b);
        fock_stats.push(gb.stats);
        f_a.symmetrize();
        f_b.symmetrize();

        // E = 1/2 [ D_t . H + D_a . F_a + D_b . F_b ] + E_nn
        let d_t = d_a.add(&d_b);
        energy = 0.5 * (d_t.dot(&h) + d_a.dot(&f_a) + d_b.dot(&f_b)) + e_nn;
        energy_history.push(energy);
        if let Some(stop) = divergence.check(&energy_history) {
            stop_reason = stop;
            break;
        }

        let (d_a_new, d_b_new) = if config.purification {
            // Diagonalization-free spin densities. `purify_density` returns
            // a closed-shell matrix (factor 2); each spin channel is half.
            let _span = phi_trace::span("scf.purify");
            let mut da = crate::purification::purify_density(&f_a, &x, n_alpha, 200, 1e-12).density;
            da.scale(0.5);
            let db = if n_beta > 0 {
                let mut db =
                    crate::purification::purify_density(&f_b, &x, n_beta, 200, 1e-12).density;
                db.scale(0.5);
                db
            } else {
                Mat::zeros(n, n)
            };
            (da, db)
        } else {
            let (ea, ca, eb, cb) = {
                let _span = phi_trace::span("scf.diag");
                let (ea, ca) = solve_roothaan(&f_a, &x);
                let (eb, cb) = solve_roothaan(&f_b, &x);
                (ea, ca, eb, cb)
            };
            let da = spin_density(&ca, n_alpha);
            let db = if n_beta > 0 { spin_density(&cb, n_beta) } else { Mat::zeros(n, n) };
            eps_a = ea;
            eps_b = eb;
            (da, db)
        };

        let rms =
            (d_a_new.sub(&d_a).frobenius_norm() + d_b_new.sub(&d_b).frobenius_norm()) / (n as f64);
        d_a = d_a_new;
        d_b = d_b_new;
        if rms < config.convergence {
            converged = true;
            stop_reason = ScfStop::Converged;
            break;
        }
    }

    // <S^2> = S(S+1) + N_beta - tr(D_a S D_b S): with D_s the occupied
    // projector of spin s, the trace equals sum_ij |<a_i|S|b_j>|^2 over
    // occupied pairs — but needs only densities, so it works identically
    // for the diagonalizing and the purification-based update.
    let sz = 0.5 * (n_alpha as f64 - n_beta as f64);
    let mut s2 = sz * (sz + 1.0) + n_beta as f64;
    s2 -= d_a.matmul(&s).matmul(&d_b.matmul(&s)).trace();

    UhfResult {
        energy,
        converged,
        stop_reason,
        iterations,
        s_squared: s2,
        orbital_energies_alpha: eps_a,
        orbital_energies_beta: eps_b,
        density_alpha: d_a,
        density_beta: d_b,
        fock_stats,
    }
}

/// Mulliken spin populations: `n_A(spin) = sum_{mu in A} ((D_a - D_b) S)_{mu mu}`.
/// Sums to `n_alpha - n_beta`.
pub fn mulliken_spin_populations(mol: &Molecule, basis: &BasisSet, result: &UhfResult) -> Vec<f64> {
    let s = phi_integrals::overlap_matrix(basis);
    let spin = result.density_alpha.sub(&result.density_beta);
    let ds = spin.matmul(&s);
    let mut pops = vec![0.0f64; mol.n_atoms()];
    for shell in &basis.shells {
        for f in 0..shell.n_functions() {
            pops[shell.atom] += ds[(shell.first_bf + f, shell.first_bf + f)];
        }
    }
    pops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::{run_scf, ScfConfig};
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;
    use phi_chem::{Atom, Element};

    #[test]
    fn hydrogen_atom_energy_is_the_core_matrix_element() {
        // With one electron and one basis function, the UHF energy must be
        // exactly H_core[0,0] + 0 — an integral-level self-check.
        let mol = Molecule::neutral(vec![Atom { element: Element::H, pos: [0.0; 3] }]);
        let b = BasisSet::build(&mol, BasisName::Sto3g);
        let r = run_uhf(&mol, &b, 1, 0, &UhfConfig::default());
        assert!(r.converged);
        let h = kinetic_matrix(&b).add(&nuclear_attraction_matrix(&b, &mol));
        assert!(
            (r.energy - h[(0, 0)]).abs() < 1e-10,
            "UHF H atom {} vs H_core {}",
            r.energy,
            h[(0, 0)]
        );
        // The textbook STO-3G hydrogen atom value.
        assert!((r.energy - (-0.4665819)).abs() < 1e-4, "H atom energy {}", r.energy);
        // A doublet: <S^2> = 0.75 exactly (one unpaired electron).
        assert!((r.s_squared - 0.75).abs() < 1e-10);
    }

    #[test]
    fn closed_shell_uhf_reduces_to_rhf() {
        let mol = small::water();
        let b = BasisSet::build(&mol, BasisName::Sto3g);
        let rhf = run_scf(
            &mol,
            &b,
            &ScfConfig { diis: false, max_iterations: 200, ..Default::default() },
        );
        let uhf = run_uhf(&mol, &b, 5, 5, &UhfConfig::default());
        assert!(rhf.converged && uhf.converged);
        assert!((rhf.energy - uhf.energy).abs() < 1e-7, "RHF {} vs UHF {}", rhf.energy, uhf.energy);
        assert!(uhf.s_squared.abs() < 1e-8, "closed shell must have <S^2> = 0");
    }

    #[test]
    fn triplet_h2_at_long_range_is_two_hydrogen_atoms() {
        let mol = small::hydrogen_molecule(50.0);
        let b = BasisSet::build(&mol, BasisName::Sto3g);
        let r = run_uhf(&mol, &b, 2, 0, &UhfConfig::default());
        assert!(r.converged);
        // Two non-interacting neutral H atoms: the monopole terms (e-n
        // attraction to the far nucleus, e-e repulsion, n-n repulsion) all
        // cancel at 1/R, so the limit is exactly 2 x E(H atom).
        let atom = Molecule::neutral(vec![Atom { element: Element::H, pos: [0.0; 3] }]);
        let ab = BasisSet::build(&atom, BasisName::Sto3g);
        let e_atom = run_uhf(&atom, &ab, 1, 0, &UhfConfig::default()).energy;
        assert!(
            (r.energy - 2.0 * e_atom).abs() < 1e-6,
            "triplet H2 at 50 a0: {} vs {}",
            r.energy,
            2.0 * e_atom
        );
        // Triplet: <S^2> = 2.
        assert!((r.s_squared - 2.0).abs() < 1e-6);
    }

    #[test]
    fn broken_symmetry_uhf_beats_rhf_for_stretched_h2() {
        // At 5 bohr RHF pays the ionic-term penalty; symmetry-broken UHF
        // must fall below it (toward two H atoms).
        let mol = small::hydrogen_molecule(5.0);
        let b = BasisSet::build(&mol, BasisName::Sto3g);
        let rhf = run_scf(&mol, &b, &ScfConfig::default());
        let uhf =
            run_uhf(&mol, &b, 1, 1, &UhfConfig { break_symmetry: true, ..Default::default() });
        assert!(rhf.converged && uhf.converged);
        assert!(
            uhf.energy < rhf.energy - 1e-4,
            "UHF {} should break symmetry below RHF {}",
            uhf.energy,
            rhf.energy
        );
        // Spin contamination appears (singlet <S^2> = 0 is violated).
        assert!(uhf.s_squared > 0.5, "expected contamination, got {}", uhf.s_squared);
    }

    #[test]
    fn spin_populations_localize_on_the_radical_center() {
        // Broken-symmetry stretched H2: one alpha electron on each atom,
        // opposite spins; populations are +-1 and sum to n_a - n_b = 0.
        let mol = small::hydrogen_molecule(8.0);
        let b = BasisSet::build(&mol, BasisName::Sto3g);
        let r = run_uhf(&mol, &b, 1, 1, &UhfConfig { break_symmetry: true, ..Default::default() });
        assert!(r.converged);
        let pops = mulliken_spin_populations(&mol, &b, &r);
        assert!((pops[0] + pops[1]).abs() < 1e-8, "spin sums to zero: {pops:?}");
        assert!(pops[0].abs() > 0.9, "spin localizes at long range: {pops:?}");
        // Triplet far-apart H2: both spins up, one per atom.
        let t = run_uhf(&mol, &b, 2, 0, &UhfConfig::default());
        let tp = mulliken_spin_populations(&mol, &b, &t);
        assert!((tp[0] - 1.0).abs() < 0.05 && (tp[1] - 1.0).abs() < 0.05, "{tp:?}");
    }

    #[test]
    fn uhf_energy_is_algorithm_invariant() {
        // The engine unlocks every parallel algorithm for UHF; all must
        // land on the serial driver's converged energy.
        let mol = small::hydrogen_molecule(5.0);
        let b = BasisSet::build(&mol, BasisName::Sto3g);
        let base = UhfConfig { break_symmetry: true, ..Default::default() };
        let want = run_uhf(&mol, &b, 1, 1, &base);
        assert!(want.converged);
        for algorithm in [
            FockAlgorithm::MpiOnly { n_ranks: 2 },
            FockAlgorithm::PrivateFock { n_ranks: 1, n_threads: 2 },
            FockAlgorithm::SharedFock { n_ranks: 2, n_threads: 2 },
            FockAlgorithm::Distributed { n_ranks: 2 },
            FockAlgorithm::Sharded { n_ranks: 2, mode: phi_dmpi::DdiMode::Mpi3OneSided },
        ] {
            let r = run_uhf(&mol, &b, 1, 1, &UhfConfig { algorithm, ..base.clone() });
            assert!(r.converged, "{} did not converge", algorithm.label());
            assert!(
                (r.energy - want.energy).abs() < 1e-8,
                "{}: {} vs serial {}",
                algorithm.label(),
                r.energy,
                want.energy
            );
        }
        assert!(!want.fock_stats.is_empty(), "UHF surfaces per-iteration Fock stats");
    }

    #[test]
    fn sharded_uhf_with_purification_matches_diagonalization() {
        // Memory-lean open-shell pipeline: sharded spin-Fock builds plus
        // per-channel purification, including the density-based <S^2>.
        let mol = small::hydrogen_molecule(5.0);
        let b = BasisSet::build(&mol, BasisName::Sto3g);
        let base = UhfConfig { break_symmetry: true, ..Default::default() };
        let want = run_uhf(&mol, &b, 1, 1, &base);
        let lean = run_uhf(
            &mol,
            &b,
            1,
            1,
            &UhfConfig {
                algorithm: FockAlgorithm::Sharded {
                    n_ranks: 2,
                    mode: phi_dmpi::DdiMode::Mpi3OneSided,
                },
                purification: true,
                ..base
            },
        );
        assert!(want.converged && lean.converged);
        assert!(
            (lean.energy - want.energy).abs() < 1e-8,
            "lean {} vs diagonalizing {}",
            lean.energy,
            want.energy
        );
        assert!(
            (lean.s_squared - want.s_squared).abs() < 1e-6,
            "<S^2> {} vs {}",
            lean.s_squared,
            want.s_squared
        );
    }

    #[test]
    fn jk_pieces_recombine_to_rhf_g() {
        // G(D) = J(D) - K(D)/2 must equal the one-pass RHF digestion.
        use crate::fock::serial::{build_g_serial, build_jk_serial};
        use phi_integrals::{Screening, ShellPairs};
        let mol = small::water();
        let b = BasisSet::build(&mol, BasisName::Sto3g);
        let pairs = ShellPairs::build(&b);
        let s = Screening::from_pairs(&b, &pairs);
        let n = b.n_basis();
        let d = Mat::from_fn(n, n, |i, j| {
            let (i, j) = if i >= j { (i, j) } else { (j, i) };
            0.1 + ((i + 3 * j) % 5) as f64 * 0.07
        });
        let g = build_g_serial(&b, &pairs, &s, 0.0, &d).g;
        let j = build_jk_serial(&b, &pairs, &s, 0.0, &d, 1.0, 0.0).g;
        let mk_half = build_jk_serial(&b, &pairs, &s, 0.0, &d, 0.0, -0.5).g;
        let recombined = j.add(&mk_half);
        assert!(g.max_abs_diff(&recombined) < 1e-10);
    }
}
