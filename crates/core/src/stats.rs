//! Per-build statistics: timings, quartet counts, memory accounting.
//!
//! The paper's headline metrics are "TIME TO FORM FOCK" (wall seconds of
//! the two-electron build) and the per-node memory footprint; both are
//! collected here for every build.

/// Statistics of one two-electron Fock build.
#[derive(Clone, Debug, Default)]
pub struct FockBuildStats {
    /// Wall-clock seconds of the build (the paper's "TIME TO FORM FOCK",
    /// measured with a monotonic clock — the paper's artifact notes that
    /// CPU-time-based timers mislead for multithreaded code).
    pub seconds: f64,
    /// Shell quartets whose ERIs were computed.
    pub quartets_computed: u64,
    /// Shell quartets eliminated by Schwarz screening.
    pub quartets_screened: u64,
    /// Primitive quartets evaluated inside the ERI engine.
    pub prim_quartets: u64,
    /// Shell quartets evaluated per ERI class slot
    /// ([`phi_integrals::N_CLASS_SLOTS`] entries: the specialized kernel
    /// classes in [`phi_integrals::CLASS_LABELS`] order, then the generic
    /// fallback). Empty when the build recorded no class accounting.
    pub eri_class_quartets: Vec<u64>,
    /// DLB counter claims made (MPI task pulls).
    pub dlb_tasks: usize,
    /// Total calls to the global DLB counter, including the final
    /// out-of-range claim each rank makes before exiting its task loop
    /// (`Dlb::calls_made`). Zero for builders that do not use the counter
    /// (serial, in-core replay). Set once per build from the world's
    /// counter — [`FockBuildStats::merge`] deliberately ignores it.
    pub dlb_calls: usize,
    /// Buffer flushes performed: FI/FJ column-buffer flushes in the
    /// shared-Fock build, scatter-row flushes in the distributed build.
    pub flushes: u64,
    /// Sum of per-rank peak tracked bytes (the paper's footprint metric).
    pub memory_total_peak: usize,
    /// Peak tracked bytes per rank.
    pub per_rank_peak: Vec<usize>,
    /// Faults injected by the world's `FaultPlan` during this build
    /// (rank kills, stragglers, message faults). World-global, set once
    /// per build like `dlb_calls`; zero without fault injection.
    pub faults_injected: usize,
    /// Tasks reclaimed from dead ranks and reissued to survivors.
    /// World-global, set once per build.
    pub tasks_reclaimed: usize,
    /// Lease claims served from the reissue queue — recovery work
    /// re-executed by surviving ranks. World-global, set once per build.
    pub retries: usize,
    /// Ranks that died during this build, in order of death.
    pub failed_ranks: Vec<usize>,
    /// Reliable-delivery retransmissions (rank messages plus DDI window
    /// requests) during this build. World-global, set once per build.
    pub retransmits: u64,
    /// Acks sent by receivers, including re-acks of deduplicated
    /// duplicates. World-global, set once per build.
    pub acks: u64,
    /// Payloads that failed their checksum at a receiver and were
    /// discarded for retransmission. World-global, set once per build.
    pub corruptions_detected: u64,
    /// Reliable operations that succeeded after ≥1 transient fault —
    /// faults that drained into retry instead of the kill path.
    /// World-global, set once per build.
    pub transient_recoveries: u64,
    /// True when this build was an incremental (ΔD) build: the quartet
    /// counts describe the density-weighted ΔD pass, not a full build.
    /// Set by the driver (like `dlb_calls`, not merged).
    pub incremental: bool,
}

impl FockBuildStats {
    /// Fraction of canonical quartets screened out.
    pub fn screened_fraction(&self) -> f64 {
        let total = self.quartets_computed + self.quartets_screened;
        if total == 0 {
            0.0
        } else {
            self.quartets_screened as f64 / total as f64
        }
    }

    /// Shell quartets that ran a class-specialized ERI kernel (every class
    /// slot except the generic fallback).
    pub fn eri_spec_quartets(&self) -> u64 {
        let spec = self.eri_class_quartets.len().min(phi_integrals::GENERIC_SLOT);
        self.eri_class_quartets[..spec].iter().sum()
    }

    /// Per-rank peak (high-water) tracked bytes: the largest single-rank
    /// footprint the live tracker saw during this build — the number the
    /// memory-wall benches assert budget claims against. Zero for builds
    /// that run no tracked world (the serial reference).
    pub fn max_rank_peak(&self) -> usize {
        self.per_rank_peak.iter().copied().max().unwrap_or(0)
    }

    /// Merge the stats of parallel contributors (max time, summed counts).
    /// `dlb_calls` is world-global and therefore *not* merged — builders
    /// set it once from the world counter after merging.
    pub fn merge(mut acc: FockBuildStats, other: &FockBuildStats) -> FockBuildStats {
        acc.seconds = acc.seconds.max(other.seconds);
        acc.quartets_computed += other.quartets_computed;
        acc.quartets_screened += other.quartets_screened;
        acc.prim_quartets += other.prim_quartets;
        if acc.eri_class_quartets.len() < other.eri_class_quartets.len() {
            acc.eri_class_quartets.resize(other.eri_class_quartets.len(), 0);
        }
        for (a, o) in acc.eri_class_quartets.iter_mut().zip(&other.eri_class_quartets) {
            *a += o;
        }
        acc.dlb_tasks += other.dlb_tasks;
        acc.flushes += other.flushes;
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screened_fraction_handles_empty() {
        assert_eq!(FockBuildStats::default().screened_fraction(), 0.0);
    }

    #[test]
    fn max_rank_peak_is_the_high_water_rank() {
        assert_eq!(FockBuildStats::default().max_rank_peak(), 0);
        let s = FockBuildStats { per_rank_peak: vec![100, 700, 300], ..Default::default() };
        assert_eq!(s.max_rank_peak(), 700);
    }

    #[test]
    fn merge_takes_max_time_and_sums_counts() {
        let a = FockBuildStats {
            seconds: 1.0,
            quartets_computed: 10,
            quartets_screened: 4,
            flushes: 2,
            dlb_calls: 7,
            ..Default::default()
        };
        let b = FockBuildStats {
            seconds: 2.0,
            quartets_computed: 5,
            quartets_screened: 6,
            flushes: 3,
            dlb_calls: 9,
            ..Default::default()
        };
        let m = FockBuildStats::merge(a, &b);
        assert_eq!(m.seconds, 2.0);
        assert_eq!(m.quartets_computed, 15);
        assert_eq!(m.quartets_screened, 10);
        assert_eq!(m.flushes, 5);
        // World-global: set once per build, never merged.
        assert_eq!(m.dlb_calls, 7);
    }

    #[test]
    fn merge_adds_class_counters_elementwise() {
        let a = FockBuildStats { eri_class_quartets: vec![1, 2], ..Default::default() };
        let b = FockBuildStats { eri_class_quartets: vec![10, 20, 30], ..Default::default() };
        let m = FockBuildStats::merge(a, &b);
        assert_eq!(m.eri_class_quartets, vec![11, 22, 30]);
        // Merging an empty contributor is a no-op.
        let m2 = FockBuildStats::merge(m, &FockBuildStats::default());
        assert_eq!(m2.eri_class_quartets, vec![11, 22, 30]);
    }

    #[test]
    fn spec_quartet_accessor_excludes_the_generic_slot() {
        assert_eq!(FockBuildStats::default().eri_spec_quartets(), 0);
        let mut v = vec![0u64; phi_integrals::N_CLASS_SLOTS];
        v[phi_integrals::class_index(0, 0)] = 3;
        v[phi_integrals::class_index(4, 4)] = 5;
        v[phi_integrals::GENERIC_SLOT] = 100;
        let s = FockBuildStats { eri_class_quartets: v, ..Default::default() };
        assert_eq!(s.eri_spec_quartets(), 8);
    }

    /// The counters the builders emit as trace events are accumulated in
    /// the same locals as these stats fields, so the two views must agree
    /// exactly — the deterministic replacement for asserting on wall
    /// times (see tests/trace_invariants.rs for the parallel builders).
    #[cfg(feature = "trace")]
    #[test]
    fn trace_counters_reconcile_with_serial_build_stats() {
        use phi_chem::basis::BasisName;
        use phi_chem::geom::small;
        use phi_chem::BasisSet;
        use phi_integrals::{Screening, ShellPairs};
        use phi_linalg::Mat;

        let b = BasisSet::build(&small::water(), BasisName::Sto3g);
        let pairs = ShellPairs::build(&b);
        let s = Screening::from_pairs(&b, &pairs);
        let d = Mat::identity(b.n_basis());
        let session = phi_trace::TraceSession::begin();
        let out = crate::fock::serial::build_g_serial(&b, &pairs, &s, 1e-10, &d);
        let report = session.finish();
        assert_eq!(report.counter_total("quartets_computed"), out.stats.quartets_computed);
        assert_eq!(report.counter_total("quartets_screened"), out.stats.quartets_screened);
        assert_eq!(report.counter_total("flushes"), out.stats.flushes);
    }
}
