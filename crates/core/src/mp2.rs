//! Second-order Møller–Plesset perturbation theory (MP2).
//!
//! The paper's introduction motivates fast HF precisely because "the HF
//! solution is commonly used as a starting point for more accurate ab
//! initio methods, such as second order perturbation theory" (O(N^5)).
//! This module closes that loop: a closed-shell MP2 energy on top of any
//! converged [`crate::scf::ScfResult`].
//!
//! Implementation: the AO ERI tensor is materialized once (small-system
//! scope — O(N^4) memory), transformed to the MO basis by four successive
//! quarter transformations (the textbook O(N^5) algorithm), and contracted
//! with the standard spin-adapted amplitude denominator:
//!
//! ```text
//! E_MP2 = sum_{i,j in occ} sum_{a,b in virt}
//!         (ia|jb) [ 2 (ia|jb) - (ib|ja) ] / (e_i + e_j - e_a - e_b)
//! ```

use phi_chem::BasisSet;
use phi_integrals::EriEngine;
use phi_linalg::Mat;

/// Dense 4-index tensor with chemist's-notation indexing `(pq|rs)`.
pub struct EriTensor {
    n: usize,
    data: Vec<f64>,
}

impl EriTensor {
    #[inline]
    fn idx(&self, p: usize, q: usize, r: usize, s: usize) -> usize {
        ((p * self.n + q) * self.n + r) * self.n + s
    }

    #[inline]
    pub fn get(&self, p: usize, q: usize, r: usize, s: usize) -> f64 {
        self.data[self.idx(p, q, r, s)]
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Materialize the full AO ERI tensor (no screening — exactness over
    /// speed; this path is for small validation systems).
    pub fn compute_ao(basis: &BasisSet) -> EriTensor {
        let n = basis.n_basis();
        let mut t = EriTensor { n, data: vec![0.0; n * n * n * n] };
        let mut engine = EriEngine::new();
        engine.prefactor_cutoff = 0.0;
        let ns = basis.n_shells();
        let mut buf: Vec<f64> = Vec::new();
        for si in 0..ns {
            for sj in 0..ns {
                for sk in 0..ns {
                    for sl in 0..ns {
                        let (a, b, c, d) = (
                            &basis.shells[si],
                            &basis.shells[sj],
                            &basis.shells[sk],
                            &basis.shells[sl],
                        );
                        let (na, nb, nc, nd) =
                            (a.n_functions(), b.n_functions(), c.n_functions(), d.n_functions());
                        buf.clear();
                        buf.resize(na * nb * nc * nd, 0.0);
                        engine.shell_quartet(a, b, c, d, &mut buf);
                        for ia in 0..na {
                            for ib in 0..nb {
                                for ic in 0..nc {
                                    for id in 0..nd {
                                        let v = buf[((ia * nb + ib) * nc + ic) * nd + id];
                                        let at = t.idx(
                                            a.first_bf + ia,
                                            b.first_bf + ib,
                                            c.first_bf + ic,
                                            d.first_bf + id,
                                        );
                                        t.data[at] = v;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        t
    }

    /// Transform to the MO basis: `(pq|rs) -> (ij|kl)` with MO coefficients
    /// `c` (columns are orbitals). Four quarter transformations, O(N^5).
    pub fn transform(&self, c: &Mat) -> EriTensor {
        let n = self.n;
        assert_eq!(c.rows(), n);
        let nmo = c.cols();
        // Each quarter transformation contracts one index.
        let quarter = |src: &[f64], d1: usize, d2: usize, d3: usize, d4: usize| -> Vec<f64> {
            // Transforms the LAST index: out[a,b,c,m] = sum_s src[a,b,c,s] C[s,m]
            let mut out = vec![0.0; d1 * d2 * d3 * nmo];
            for abc in 0..(d1 * d2 * d3) {
                let row = &src[abc * d4..(abc + 1) * d4];
                let orow = &mut out[abc * nmo..(abc + 1) * nmo];
                for (s, &v) in row.iter().enumerate() {
                    if v == 0.0 {
                        continue;
                    }
                    for (m, o) in orow.iter_mut().enumerate() {
                        *o += v * c[(s, m)];
                    }
                }
            }
            out
        };
        // Contract s, then rotate index order by re-interpreting the layout:
        // after each quarter pass the transformed index is last, so rotating
        // the tensor [a,b,c,m] -> [m,a,b,c] lets the same kernel handle all
        // four indices.
        let rotate = |src: &[f64], d1: usize, d2: usize, d3: usize, d4: usize| -> Vec<f64> {
            let mut out = vec![0.0; src.len()];
            for a in 0..d1 {
                for b in 0..d2 {
                    for cc in 0..d3 {
                        for m in 0..d4 {
                            out[((m * d1 + a) * d2 + b) * d3 + cc] =
                                src[((a * d2 + b) * d3 + cc) * d4 + m];
                        }
                    }
                }
            }
            out
        };
        let mut cur = self.data.clone();
        let mut dims = [n, n, n, n];
        for _ in 0..4 {
            cur = quarter(&cur, dims[0], dims[1], dims[2], dims[3]);
            dims[3] = nmo;
            cur = rotate(&cur, dims[0], dims[1], dims[2], dims[3]);
            dims = [dims[3], dims[0], dims[1], dims[2]];
        }
        // Four rotations restore the original index order.
        EriTensor { n: nmo, data: cur }
    }
}

/// Result of an MP2 calculation.
#[derive(Clone, Copy, Debug)]
pub struct Mp2Result {
    /// Correlation energy (negative).
    pub correlation_energy: f64,
    /// HF + MP2 total energy.
    pub total_energy: f64,
}

/// Closed-shell MP2 on top of converged orbitals.
///
/// * `orbitals` — MO coefficients (columns), all orbitals;
/// * `orbital_energies` — matching eigenvalues;
/// * `n_occ` — doubly occupied count;
/// * `hf_energy` — the converged RHF total energy.
pub fn mp2_energy(
    basis: &BasisSet,
    orbitals: &Mat,
    orbital_energies: &[f64],
    n_occ: usize,
    hf_energy: f64,
) -> Mp2Result {
    let ao = EriTensor::compute_ao(basis);
    let mo = ao.transform(orbitals);
    let nmo = mo.n();
    let mut e2 = 0.0;
    for i in 0..n_occ {
        for j in 0..n_occ {
            for a in n_occ..nmo {
                for b in n_occ..nmo {
                    let iajb = mo.get(i, a, j, b);
                    let ibja = mo.get(i, b, j, a);
                    let denom = orbital_energies[i] + orbital_energies[j]
                        - orbital_energies[a]
                        - orbital_energies[b];
                    e2 += iajb * (2.0 * iajb - ibja) / denom;
                }
            }
        }
    }
    Mp2Result { correlation_energy: e2, total_energy: hf_energy + e2 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::{run_scf, ScfConfig};
    use phi_chem::basis::BasisName;
    use phi_chem::geom::small;
    use phi_chem::Molecule;

    fn mp2_of(mol: &Molecule, name: BasisName) -> Mp2Result {
        let basis = BasisSet::build(mol, name);
        let scf = run_scf(mol, &basis, &ScfConfig::default());
        assert!(scf.converged);
        mp2_energy(&basis, &scf.orbitals, &scf.orbital_energies, mol.n_occupied(), scf.energy)
    }

    #[test]
    fn transformation_matches_naive_quadruple_sum() {
        // The O(N^5) quarter-transform algorithm must agree with the
        // brute-force O(N^8) contraction on a tiny system.
        let mol = small::hydrogen_molecule(1.4);
        let basis = BasisSet::build(&mol, BasisName::B631g);
        let scf = run_scf(&mol, &basis, &ScfConfig::default());
        let ao = EriTensor::compute_ao(&basis);
        let mo = ao.transform(&scf.orbitals);
        let n = basis.n_basis();
        let c = &scf.orbitals;
        for &(p, q, r, s) in &[(0, 0, 0, 0), (0, 1, 2, 3), (3, 1, 0, 2), (1, 1, 2, 2)] {
            let mut want = 0.0;
            for mu in 0..n {
                for nu in 0..n {
                    for lam in 0..n {
                        for sig in 0..n {
                            want += c[(mu, p)]
                                * c[(nu, q)]
                                * c[(lam, r)]
                                * c[(sig, s)]
                                * ao.get(mu, nu, lam, sig);
                        }
                    }
                }
            }
            let got = mo.get(p, q, r, s);
            assert!((got - want).abs() < 1e-10, "({p}{q}|{r}{s}): fast {got} vs naive {want}");
        }
    }

    #[test]
    fn h2_minimal_basis_matches_the_closed_form() {
        // One occupied (g), one virtual (u): the only double excitation
        // gives E2 = (gu|gu)^2 / (2 (e_g - e_u)) exactly.
        let mol = small::hydrogen_molecule(1.4);
        let basis = BasisSet::build(&mol, BasisName::Sto3g);
        let scf = run_scf(&mol, &basis, &ScfConfig::default());
        let mo = EriTensor::compute_ao(&basis).transform(&scf.orbitals);
        let k = mo.get(0, 1, 0, 1);
        let want = k * k / (2.0 * (scf.orbital_energies[0] - scf.orbital_energies[1]));
        let r = mp2_energy(&basis, &scf.orbitals, &scf.orbital_energies, 1, scf.energy);
        assert!(
            (r.correlation_energy - want).abs() < 1e-12,
            "{} vs closed form {}",
            r.correlation_energy,
            want
        );
        assert!(r.correlation_energy < 0.0);
        // H2/STO-3G MP2 correlation is about -0.013 Eh.
        assert!((-0.03..-0.005).contains(&r.correlation_energy));
    }

    #[test]
    fn correlation_energy_is_negative_and_grows_with_basis() {
        let mol = small::water();
        let sto = mp2_of(&mol, BasisName::Sto3g);
        let dz = mp2_of(&mol, BasisName::B631g);
        assert!(sto.correlation_energy < 0.0);
        assert!(dz.correlation_energy < sto.correlation_energy, "bigger basis, more correlation");
    }

    #[test]
    fn mp2_is_size_consistent() {
        // Two H2 molecules 80 bohr apart: E_corr(dimer) = 2 E_corr(monomer).
        let monomer = small::hydrogen_molecule(1.4);
        let mut atoms = monomer.atoms().to_vec();
        atoms.extend(monomer.translated([0.0, 0.0, 80.0]).atoms().iter().copied());
        let dimer = Molecule::neutral(atoms);
        let e1 = mp2_of(&monomer, BasisName::Sto3g);
        let e2 = mp2_of(&dimer, BasisName::Sto3g);
        assert!(
            (e2.correlation_energy - 2.0 * e1.correlation_energy).abs() < 1e-8,
            "dimer {} vs 2 x monomer {}",
            e2.correlation_energy,
            2.0 * e1.correlation_energy
        );
    }
}
