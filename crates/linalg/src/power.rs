//! Spectral powers of symmetric positive (semi)definite matrices.
//!
//! The SCF code needs `S^(-1/2)` for symmetric (Löwdin) orthogonalization of
//! the atomic-orbital basis. Near-linear dependencies in large diffuse bases
//! show up as tiny overlap eigenvalues; eigenvectors below `threshold` are
//! projected out (canonical-orthogonalization style), which matches what
//! production codes do.

use crate::eigen::eigh;
use crate::matrix::Mat;

/// `A^p` for symmetric `A` via the spectral decomposition.
///
/// Eigenvalues with `|lambda| < threshold` are treated as exact zeros: their
/// contribution is dropped entirely (for negative `p` this is the
/// pseudo-inverse convention).
pub fn sym_pow(a: &Mat, p: f64, threshold: f64) -> Mat {
    let eig = eigh(a);
    eig.apply(|x| if x.abs() < threshold { 0.0 } else { x.powf(p) })
}

/// Löwdin orthogonalization matrix `X = S^(-1/2)` with linear-dependence
/// screening. `X S X = I` on the retained subspace.
pub fn sym_inv_sqrt(s: &Mat, threshold: f64) -> Mat {
    sym_pow(s, -0.5, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_matrix(n: usize, seed: u64) -> Mat {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let b = Mat::from_fn(n, n, |_, _| next());
        // BᵀB + n·I is symmetric positive definite.
        let mut a = b.matmul_tn(&b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn inv_sqrt_orthogonalizes() {
        let s = spd_matrix(15, 3);
        let x = sym_inv_sqrt(&s, 1e-10);
        let should_be_identity = s.congruence(&x);
        assert!(should_be_identity.max_abs_diff(&Mat::identity(15)) < 1e-9);
    }

    #[test]
    fn pow_one_is_identity_map() {
        let s = spd_matrix(8, 11);
        let s1 = sym_pow(&s, 1.0, 1e-12);
        assert!(s1.max_abs_diff(&s) < 1e-9);
    }

    #[test]
    fn half_power_squares_back() {
        let s = spd_matrix(10, 17);
        let r = sym_pow(&s, 0.5, 1e-12);
        assert!(r.matmul(&r).max_abs_diff(&s) < 1e-8);
    }

    #[test]
    fn threshold_projects_out_null_space() {
        // Rank-1 matrix vvᵀ with v = (1,1): eigenvalues {0, 2}.
        let s = Mat::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let x = sym_inv_sqrt(&s, 1e-8);
        // X should be (1/sqrt(2)) * (vvᵀ/2): finite, no blow-up from the zero.
        assert!(x.max_abs() < 1.0);
        // X S X should be the projector onto span(v), not the identity.
        let p = s.congruence(&x);
        assert!((p.trace() - 1.0).abs() < 1e-10);
    }
}
