//! Dense linear algebra substrate for the phi-scf workspace.
//!
//! The Hartree-Fock SCF loop needs a small, self-contained set of dense
//! operations on real symmetric matrices: matrix products, a symmetric
//! eigensolver (for Fock diagonalization and S^(-1/2)), and a linear solver
//! (for DIIS). The paper's host code (GAMESS) links MKL for these but notes
//! that the BLAS choice "does not affect the performance of the SCF code"; we
//! implement everything from scratch so the workspace has no native
//! dependencies.
//!
//! Layout convention: all matrices are dense row-major [`Mat`]. Eigenvectors
//! are returned as *columns* of the vector matrix, matching the usual
//! `F C = S C eps` convention of quantum chemistry codes.

pub mod eigen;
pub mod matrix;
pub mod power;
pub mod solve;

pub use eigen::{eigh, jacobi_eigh, Eigh};
pub use matrix::Mat;
pub use power::{sym_inv_sqrt, sym_pow};
pub use solve::{lu_factor, lu_solve, solve, LuFactors};
