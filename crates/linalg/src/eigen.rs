//! Symmetric eigensolvers.
//!
//! [`eigh`] is the workhorse: Householder reduction to tridiagonal form
//! followed by the implicit-shift QL iteration, both with accumulation of the
//! orthogonal transformations (the classic EISPACK `tred2`/`tql2` pair,
//! translated to 0-based Rust). Cost is O(n^3) with a small constant; this is
//! the same algorithmic family GAMESS uses for Fock diagonalization.
//!
//! [`jacobi_eigh`] is a cyclic Jacobi solver kept as an independent
//! cross-check for the test suite: it shares no code with `eigh`, so
//! agreement between the two is strong evidence of correctness.

use crate::matrix::Mat;

/// Eigendecomposition of a real symmetric matrix: `A = V diag(values) Vᵀ`.
///
/// Eigenvalues are sorted ascending; `vectors.col(k)` is the unit eigenvector
/// for `values[k]`.
#[derive(Clone, Debug)]
pub struct Eigh {
    pub values: Vec<f64>,
    /// Orthogonal matrix whose *columns* are the eigenvectors.
    pub vectors: Mat,
}

impl Eigh {
    /// Reconstruct `V diag(f(lambda)) Vᵀ` for an arbitrary spectral function.
    pub fn apply(&self, f: impl Fn(f64) -> f64) -> Mat {
        let n = self.values.len();
        let v = &self.vectors;
        let mut scaled = Mat::zeros(n, n);
        for k in 0..n {
            let fk = f(self.values[k]);
            for i in 0..n {
                scaled[(i, k)] = v[(i, k)] * fk;
            }
        }
        scaled.matmul_nt(v)
    }
}

/// Full eigendecomposition of a symmetric matrix.
///
/// Panics if `a` is not square; symmetry is the caller's responsibility (only
/// the full matrix is read, and a badly asymmetric input gives meaningless
/// results — SCF callers symmetrize first).
pub fn eigh(a: &Mat) -> Eigh {
    assert!(a.is_square(), "eigh requires a square matrix");
    let n = a.rows();
    if n == 0 {
        return Eigh { values: vec![], vectors: Mat::zeros(0, 0) };
    }
    let mut z = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    tred2(&mut z, &mut d, &mut e);
    tql2(&mut z, &mut d, &mut e);
    sort_pairs(&mut d, &mut z);
    Eigh { values: d, vectors: z }
}

/// Householder reduction of a symmetric matrix to tridiagonal form with
/// accumulation of transformations (EISPACK `tred2`).
///
/// On exit `d` holds the diagonal, `e[1..]` the subdiagonal, and `z` the
/// accumulated orthogonal transform.
fn tred2(z: &mut Mat, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                let mut f_acc = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f_acc += e[j] * z[(i, j)];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let gj = e[j] - hh * f;
                    e[j] = gj;
                    for k in 0..=j {
                        let delta = f * e[k] + gj * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let delta = g * z[(k, i)];
                    z[(k, j)] -= delta;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// Implicit-shift QL iteration for a symmetric tridiagonal matrix with
/// eigenvector accumulation (EISPACK `tql2`).
fn tql2(z: &mut Mat, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    if n == 1 {
        return;
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Look for a single small subdiagonal element to split the matrix.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(
                iter <= 64,
                "tql2 eigensolver failed to converge after 64 QL sweeps on row {l} of an \
                 {n}x{n} matrix (residual off-diagonal {:.3e}) — the input likely contains \
                 NaN/inf or is catastrophically ill-conditioned",
                e[l].abs()
            );

            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow: deflate and restart this l.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
}

/// Sort eigenpairs ascending by eigenvalue (selection sort with column swaps,
/// matching what tql2 callers conventionally do).
fn sort_pairs(d: &mut [f64], z: &mut Mat) {
    let n = d.len();
    for i in 0..n {
        let mut k = i;
        for j in (i + 1)..n {
            if d[j] < d[k] {
                k = j;
            }
        }
        if k != i {
            d.swap(i, k);
            for row in 0..n {
                let tmp = z[(row, i)];
                z[(row, i)] = z[(row, k)];
                z[(row, k)] = tmp;
            }
        }
    }
}

/// Cyclic Jacobi eigensolver: independent cross-check implementation.
///
/// Slower than [`eigh`] (O(n^3) per sweep, several sweeps), but extremely
/// robust and algorithmically unrelated, which makes it valuable in tests.
pub fn jacobi_eigh(a: &Mat) -> Eigh {
    assert!(a.is_square(), "jacobi_eigh requires a square matrix, got {}x{}", a.rows(), a.cols());
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Mat::identity(n);
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= 1e-14 * (1.0 + m.frobenius_norm()) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut d: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    sort_pairs(&mut d, &mut v);
    Eigh { values: d, vectors: v }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_symmetric(n: usize, seed: u64) -> Mat {
        // Small deterministic LCG so tests need no external RNG.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut a = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let x = next();
                a[(i, j)] = x;
                a[(j, i)] = x;
            }
        }
        a
    }

    fn check_decomposition(a: &Mat, eig: &Eigh, tol: f64) {
        let n = a.rows();
        // A V = V diag(lambda)
        let av = a.matmul(&eig.vectors);
        for k in 0..n {
            for i in 0..n {
                let want = eig.vectors[(i, k)] * eig.values[k];
                assert!(
                    (av[(i, k)] - want).abs() < tol,
                    "residual too large at ({i},{k}): {} vs {}",
                    av[(i, k)],
                    want
                );
            }
        }
        // Vᵀ V = I
        let vtv = eig.vectors.matmul_tn(&eig.vectors);
        assert!(vtv.max_abs_diff(&Mat::identity(n)) < tol, "vectors not orthonormal");
        // ascending order
        for k in 1..n {
            assert!(eig.values[k] >= eig.values[k - 1] - 1e-12);
        }
    }

    #[test]
    fn two_by_two_analytic() {
        let a = Mat::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let eig = eigh(&a);
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = Mat::from_fn(5, 5, |i, j| if i == j { (i as f64) - 2.0 } else { 0.0 });
        let eig = eigh(&a);
        for (k, want) in [-2.0, -1.0, 0.0, 1.0, 2.0].iter().enumerate() {
            assert!((eig.values[k] - want).abs() < 1e-13);
        }
        check_decomposition(&a, &eig, 1e-12);
    }

    #[test]
    fn random_matrices_decompose() {
        for (n, seed) in [(1, 7), (2, 8), (3, 9), (10, 10), (25, 11), (50, 12)] {
            let a = random_symmetric(n, seed);
            let eig = eigh(&a);
            check_decomposition(&a, &eig, 1e-9 * (n as f64));
        }
    }

    #[test]
    fn degenerate_eigenvalues() {
        // Projector-like matrix with eigenvalues {0, 0, 3}.
        let mut a = Mat::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                a[(i, j)] = 1.0;
            }
        }
        let eig = eigh(&a);
        assert!(eig.values[0].abs() < 1e-12);
        assert!(eig.values[1].abs() < 1e-12);
        assert!((eig.values[2] - 3.0).abs() < 1e-12);
        check_decomposition(&a, &eig, 1e-11);
    }

    #[test]
    fn agrees_with_jacobi() {
        for (n, seed) in [(6, 21), (17, 22), (31, 23)] {
            let a = random_symmetric(n, seed);
            let e1 = eigh(&a);
            let e2 = jacobi_eigh(&a);
            for k in 0..n {
                assert!(
                    (e1.values[k] - e2.values[k]).abs() < 1e-9,
                    "eigenvalue {k} mismatch: {} vs {}",
                    e1.values[k],
                    e2.values[k]
                );
            }
            check_decomposition(&a, &e2, 1e-8 * n as f64);
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = random_symmetric(20, 99);
        let eig = eigh(&a);
        let sum: f64 = eig.values.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-10);
    }

    #[test]
    fn spectral_apply_reconstructs() {
        let a = random_symmetric(12, 5);
        let eig = eigh(&a);
        let rebuilt = eig.apply(|x| x);
        assert!(rebuilt.max_abs_diff(&a) < 1e-10);
        // f(x) = x^2 should equal A*A.
        let sq = eig.apply(|x| x * x);
        assert!(sq.max_abs_diff(&a.matmul(&a)) < 1e-9);
    }

    #[test]
    fn empty_and_single() {
        let e = eigh(&Mat::zeros(0, 0));
        assert!(e.values.is_empty());
        let a = Mat::from_vec(1, 1, vec![4.25]);
        let e = eigh(&a);
        assert_eq!(e.values, vec![4.25]);
        assert!((e.vectors[(0, 0)].abs() - 1.0).abs() < 1e-15);
    }
}
