//! Dense row-major matrix type and the handful of BLAS-level operations the
//! SCF code needs.
//!
//! Products use a blocked i-k-j loop order so the innermost loop streams
//! contiguously over rows of the right operand; this is the standard
//! cache-friendly ordering for row-major data and is enough for the matrix
//! sizes driven by real SCF runs in this workspace (up to a few thousand).

use std::fmt;
use std::ops::{Index, IndexMut};

/// Cache-blocking tile edge for matrix products, in elements.
///
/// 64 x 64 f64 tiles (32 KiB per operand pair) fit comfortably in L1/L2 on
/// any machine this runs on; the exact value is not performance-critical for
/// the matrix sizes exercised here.
const BLOCK: usize = 64;

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Wrap an existing row-major buffer. Panics if the length does not match.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length does not match shape");
        Mat { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a contiguous slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a contiguous slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// `self * other`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut c = Mat::zeros(m, n);
        for ib in (0..m).step_by(BLOCK) {
            for kb in (0..k).step_by(BLOCK) {
                for jb in (0..n).step_by(BLOCK) {
                    let imax = (ib + BLOCK).min(m);
                    let kmax = (kb + BLOCK).min(k);
                    let jmax = (jb + BLOCK).min(n);
                    for i in ib..imax {
                        for kk in kb..kmax {
                            let aik = self.data[i * k + kk];
                            if aik == 0.0 {
                                continue;
                            }
                            let brow = &other.data[kk * n + jb..kk * n + jmax];
                            let crow = &mut c.data[i * n + jb..i * n + jmax];
                            for (cv, bv) in crow.iter_mut().zip(brow) {
                                *cv += aik * bv;
                            }
                        }
                    }
                }
            }
        }
        c
    }

    /// `selfᵀ * other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "inner dimensions must agree");
        let (m, k, n) = (self.cols, self.rows, other.cols);
        let mut c = Mat::zeros(m, n);
        for kk in 0..k {
            let arow = self.row(kk);
            let brow = other.row(kk);
            for (i, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let crow = &mut c.data[i * n..(i + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow) {
                    *cv += aik * bv;
                }
            }
        }
        c
    }

    /// `self * otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "inner dimensions must agree");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut c = Mat::zeros(m, n);
        for i in 0..m {
            let arow = self.row(i);
            for j in 0..n {
                let brow = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (av, bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                c.data[i * n + j] = acc;
            }
        }
        c
    }

    /// `self * other` with the row range split over `n_threads` OS threads.
    ///
    /// Agrees with [`matmul`](Self::matmul) up to floating-point summation
    /// order (the kernels block differently). This is the parallelism that
    /// makes purification-based density construction competitive with
    /// diagonalization — matrix products thread trivially,
    /// tridiagonalization does not (the diagonalization-scaling problem the
    /// paper's related work §2 points at).
    pub fn matmul_threaded(&self, other: &Mat, n_threads: usize) -> Mat {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let n_threads = n_threads.max(1).min(m.max(1));
        if n_threads == 1 {
            return self.matmul(other);
        }
        let mut c = Mat::zeros(m, n);
        let rows_per = m.div_ceil(n_threads);
        std::thread::scope(|scope| {
            // Split the output into disjoint row bands, one per thread.
            let mut rest: &mut [f64] = &mut c.data;
            let mut handles = Vec::new();
            for t in 0..n_threads {
                let lo = t * rows_per;
                let hi = ((t + 1) * rows_per).min(m);
                if lo >= hi {
                    break;
                }
                let (band, tail) = rest.split_at_mut((hi - lo) * n);
                rest = tail;
                let a = &self.data;
                let b = &other.data;
                handles.push(scope.spawn(move || {
                    for (bi, i) in (lo..hi).enumerate() {
                        for kk in 0..k {
                            let aik = a[i * k + kk];
                            if aik == 0.0 {
                                continue;
                            }
                            let brow = &b[kk * n..(kk + 1) * n];
                            let crow = &mut band[bi * n..(bi + 1) * n];
                            for (cv, bv) in crow.iter_mut().zip(brow) {
                                *cv += aik * bv;
                            }
                        }
                    }
                }));
            }
            for (t, h) in handles.into_iter().enumerate() {
                if let Err(payload) = h.join() {
                    let why = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    panic!("matmul worker thread {t} panicked: {why}");
                }
            }
        });
        c
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Mat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scaling by a scalar.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Elementwise sum `self + other`.
    pub fn add(&self, other: &Mat) -> Mat {
        let mut out = self.clone();
        out.axpy(1.0, other);
        out
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Mat) -> Mat {
        let mut out = self.clone();
        out.axpy(-1.0, other);
        out
    }

    pub fn trace(&self) -> f64 {
        assert!(
            self.is_square(),
            "trace requires a square matrix, got {}x{}",
            self.rows,
            self.cols
        );
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius inner product `sum_ij self_ij * other_ij`.
    pub fn dot(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }

    /// Largest absolute elementwise difference to `other`.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Whether `|self_ij - self_ji| <= tol` everywhere.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..i {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Force exact symmetry by averaging mirror elements (useful to kill
    /// last-bit asymmetry accumulated during parallel Fock builds).
    pub fn symmetrize(&mut self) {
        assert!(
            self.is_square(),
            "symmetrize requires a square matrix, got {}x{}",
            self.rows,
            self.cols
        );
        for i in 0..self.rows {
            for j in 0..i {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len());
        (0..self.rows).map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum()).collect()
    }

    /// Congruence transform `xᵀ * self * x` (e.g. Fock orthogonalization).
    pub fn congruence(&self, x: &Mat) -> Mat {
        x.matmul_tn(&self.matmul(x))
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:12.6} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Mat::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let id = Mat::identity(3);
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn matmul_matches_hand_computed() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        approx(c[(0, 0)], 58.0);
        approx(c[(0, 1)], 64.0);
        approx(c[(1, 0)], 139.0);
        approx(c[(1, 1)], 154.0);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Mat::from_fn(4, 3, |i, j| (i + 2 * j) as f64 * 0.5 + 1.0);
        let b = Mat::from_fn(4, 5, |i, j| (i * j) as f64 - 1.5);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.max_abs_diff(&slow) < 1e-14);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Mat::from_fn(4, 3, |i, j| (i + j) as f64);
        let b = Mat::from_fn(5, 3, |i, j| (2 * i + j) as f64 * 0.25);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-14);
    }

    #[test]
    fn blocked_matmul_matches_naive_on_non_multiple_sizes() {
        // Sizes deliberately not multiples of the blocking factor.
        let (m, k, n) = (70, 65, 67);
        let a = Mat::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let b = Mat::from_fn(k, n, |i, j| ((i * 7 + j * 29) % 11) as f64 - 5.0);
        let c = a.matmul(&b);
        // Naive check at a few positions.
        for &(i, j) in &[(0, 0), (69, 66), (33, 41), (12, 64)] {
            let want: f64 = (0..k).map(|kk| a[(i, kk)] * b[(kk, j)]).sum();
            approx(c[(i, j)], want);
        }
    }

    #[test]
    fn threaded_matmul_matches_serial() {
        let (m, k, n) = (53, 47, 61);
        let a = Mat::from_fn(m, k, |i, j| ((i * 13 + j * 7) % 17) as f64 * 0.25 - 2.0);
        let b = Mat::from_fn(k, n, |i, j| ((i * 5 + j * 11) % 13) as f64 * 0.5 - 3.0);
        let serial = a.matmul(&b);
        for threads in [1, 2, 3, 8, 100] {
            let par = a.matmul_threaded(&b, threads);
            assert!(
                par.max_abs_diff(&serial) < 1e-10,
                "{threads} threads differ by {}",
                par.max_abs_diff(&serial)
            );
        }
    }

    #[test]
    fn threaded_matmul_handles_degenerate_shapes() {
        let a = Mat::from_fn(1, 3, |_, j| j as f64);
        let b = Mat::from_fn(3, 1, |i, _| i as f64 + 1.0);
        let c = a.matmul_threaded(&b, 4);
        assert!((c[(0, 0)] - (0.0 + 2.0 + 6.0)).abs() < 1e-14);
        let empty = Mat::zeros(0, 5).matmul_threaded(&Mat::zeros(5, 2), 3);
        assert_eq!(empty.rows(), 0);
    }

    #[test]
    fn congruence_transform() {
        let a = Mat::from_fn(3, 3, |i, j| ((i + j) as f64).cos());
        let x = Mat::from_fn(3, 2, |i, j| (i as f64 + 1.0) * (j as f64 + 0.5));
        let c = a.congruence(&x);
        let slow = x.transpose().matmul(&a).matmul(&x);
        assert!(c.max_abs_diff(&slow) < 1e-12);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
    }

    #[test]
    fn symmetrize_and_is_symmetric() {
        let mut a = Mat::from_fn(4, 4, |i, j| (i as f64) - (j as f64) * 1e-14 + (i * j) as f64);
        assert!(!a.is_symmetric(1e-16));
        a.symmetrize();
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn trace_dot_norms() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        approx(a.trace(), 5.0);
        approx(a.dot(&a), 30.0);
        approx(a.frobenius_norm(), 30.0f64.sqrt());
        approx(a.max_abs(), 4.0);
    }

    #[test]
    fn matvec() {
        let a = Mat::from_vec(2, 3, vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.0]);
        let y = a.matvec(&[1.0, 2.0, 3.0]);
        approx(y[0], -2.0);
        approx(y[1], 4.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
