//! LU factorization with partial pivoting and linear solves.
//!
//! Used for the small DIIS extrapolation systems (dimension = history length
//! + 1, typically <= 9), so clarity wins over blocking here.

use crate::matrix::Mat;

/// LU factors `P A = L U` stored compactly (Doolittle, unit-diagonal L).
#[derive(Clone, Debug)]
pub struct LuFactors {
    lu: Mat,
    /// Row permutation: row `i` of the factored matrix came from `perm[i]`
    /// of the original.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    sign: f64,
}

/// Factor a square matrix. Returns `None` if the matrix is numerically
/// singular (a pivot smaller than `1e-300` is encountered).
pub fn lu_factor(a: &Mat) -> Option<LuFactors> {
    assert!(a.is_square(), "lu_factor requires a square matrix");
    let n = a.rows();
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;
    for k in 0..n {
        // Partial pivoting: largest magnitude in column k at/below the diagonal.
        let mut piv = k;
        let mut max = lu[(k, k)].abs();
        for i in (k + 1)..n {
            let v = lu[(i, k)].abs();
            if v > max {
                max = v;
                piv = i;
            }
        }
        if max < 1e-300 {
            return None;
        }
        if piv != k {
            for j in 0..n {
                let tmp = lu[(k, j)];
                lu[(k, j)] = lu[(piv, j)];
                lu[(piv, j)] = tmp;
            }
            perm.swap(k, piv);
            sign = -sign;
        }
        let pivot = lu[(k, k)];
        for i in (k + 1)..n {
            let m = lu[(i, k)] / pivot;
            lu[(i, k)] = m;
            for j in (k + 1)..n {
                let delta = m * lu[(k, j)];
                lu[(i, j)] -= delta;
            }
        }
    }
    Some(LuFactors { lu, perm, sign })
}

impl LuFactors {
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        (0..n).fold(self.sign, |acc, i| acc * self.lu[(i, i)])
    }
}

/// Solve `A x = b` given precomputed factors.
pub fn lu_solve(f: &LuFactors, b: &[f64]) -> Vec<f64> {
    let n = f.lu.rows();
    assert_eq!(b.len(), n);
    // Apply permutation, then forward substitution (L has unit diagonal).
    let mut y: Vec<f64> = (0..n).map(|i| b[f.perm[i]]).collect();
    for i in 0..n {
        for j in 0..i {
            let delta = f.lu[(i, j)] * y[j];
            y[i] -= delta;
        }
    }
    // Back substitution with U.
    for i in (0..n).rev() {
        for j in (i + 1)..n {
            let delta = f.lu[(i, j)] * y[j];
            y[i] -= delta;
        }
        y[i] /= f.lu[(i, i)];
    }
    y
}

/// One-shot solve of `A x = b`. Returns `None` for singular `A`.
pub fn solve(a: &Mat, b: &[f64]) -> Option<Vec<f64>> {
    lu_factor(a).map(|f| lu_solve(&f, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        let a = Mat::from_vec(3, 3, vec![2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0]);
        let b = [8.0, -11.0, -3.0];
        let x = solve(&a, &b).unwrap();
        let want = [2.0, 3.0, -1.0];
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn residual_is_small_on_random_systems() {
        let mut state = 42u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for n in [1usize, 2, 5, 20, 40] {
            let a = Mat::from_fn(n, n, |_, _| next());
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            if let Some(x) = solve(&a, &b) {
                let r = a.matvec(&x);
                for i in 0..n {
                    assert!((r[i] - b[i]).abs() < 1e-8, "residual too large for n={n}");
                }
            }
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(solve(&a, &[1.0, 1.0]).is_none());
    }

    #[test]
    fn determinant_of_permuted_identity() {
        // Swapping two rows of I gives det = -1.
        let a = Mat::from_vec(3, 3, vec![0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        let f = lu_factor(&a).unwrap();
        assert!((f.det() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn determinant_matches_2x2_formula() {
        let a = Mat::from_vec(2, 2, vec![3.0, 7.0, 1.0, -4.0]);
        let f = lu_factor(&a).unwrap();
        assert!((f.det() - (3.0 * -4.0 - 7.0 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_element() {
        let a = Mat::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve(&a, &[5.0, 6.0]).unwrap();
        assert!((x[0] - 6.0).abs() < 1e-14);
        assert!((x[1] - 5.0).abs() < 1e-14);
    }
}
