//! The paper's Figure 1 reduction structure: thread-private padded columns
//! with a chunked, row-parallel flush.
//!
//! During accumulation each thread writes its own column (column-wise
//! access, Figure 1A); padding rounds every column up to a whole number of
//! cache lines so neighbouring threads never share a line. During the flush
//! each thread sums whole row-chunks across all columns and adds them to
//! the destination (row-wise access, Figure 1B); chunking again keeps
//! threads on distinct cache lines of the destination.

use crate::shared::SharedAccumulator;
use crate::team::ThreadCtx;
use std::cell::UnsafeCell;

/// f64 elements per cache line (64-byte lines).
const PAD: usize = 8;
/// Rows per flush chunk.
const FLUSH_CHUNK: usize = 256;

/// One padded accumulation column per thread (paper Figure 1).
///
/// Safety model: [`col_mut`](Self::col_mut) hands out a mutable slice of one
/// column; the contract (enforced by the Fock builders, and in debug builds
/// by the caller passing its own `thread_num`) is that a column is only
/// touched by its owning thread between barriers.
pub struct PaddedColumns {
    data: UnsafeCell<Vec<f64>>,
    len: usize,
    stride: usize,
    n_cols: usize,
}

// One column per thread, synchronized externally via team barriers.
unsafe impl Sync for PaddedColumns {}

impl PaddedColumns {
    /// `len` logical elements per column, one column per thread.
    pub fn new(len: usize, n_cols: usize) -> PaddedColumns {
        let stride = len.div_ceil(PAD) * PAD + PAD;
        PaddedColumns { data: UnsafeCell::new(vec![0.0; stride * n_cols]), len, stride, n_cols }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Bytes of memory held — the quantity the paper's memory-footprint
    /// model charges for the `FI`/`FJ` buffers.
    pub fn bytes(&self) -> usize {
        self.stride * self.n_cols * std::mem::size_of::<f64>()
    }

    /// Mutable access to column `col`.
    ///
    /// # Safety contract (checked by discipline, not the compiler)
    /// Only the thread owning `col` may call this between two team
    /// barriers; the flush methods must not run concurrently with it.
    #[allow(clippy::mut_from_ref)]
    pub fn col_mut(&self, col: usize) -> &mut [f64] {
        assert!(col < self.n_cols, "column {col} out of range");
        unsafe {
            let base = (*self.data.get()).as_mut_ptr().add(col * self.stride);
            std::slice::from_raw_parts_mut(base, self.len)
        }
    }

    /// Row-parallel flush into a [`SharedAccumulator`] at offset `dst_off`,
    /// then zero the columns. Call from *all* threads of the region; a
    /// barrier is executed before and after internally.
    pub fn flush_into(&self, ctx: &ThreadCtx<'_>, dst: &SharedAccumulator, dst_off: usize) {
        self.flush_prefix_with(ctx, self.len, |row, sum| dst.add(dst_off + row, sum));
    }

    /// Row-parallel flush of the first `active_len` rows through an
    /// arbitrary mapping `f(row, sum)`, then zero those rows. Collective:
    /// call from all threads; barriers are executed before and after.
    ///
    /// The shared-Fock builder uses this to scatter the `FI`/`FJ` column
    /// blocks into the (non-contiguous) triangular positions of the shared
    /// Fock matrix; `active_len` limits work to the current shell's width.
    pub fn flush_prefix_with(
        &self,
        ctx: &ThreadCtx<'_>,
        active_len: usize,
        f: impl Fn(usize, f64) + Sync,
    ) {
        assert!(active_len <= self.len);
        ctx.barrier();
        let t = ctx.thread_num();
        let nt = ctx.n_threads();
        // Static partition of row-chunks over threads (Figure 1B).
        let n_chunks = active_len.div_ceil(FLUSH_CHUNK);
        for chunk in (0..n_chunks).skip(t).step_by(nt.max(1)) {
            let lo = chunk * FLUSH_CHUNK;
            let hi = (lo + FLUSH_CHUNK).min(active_len);
            for row in lo..hi {
                let mut sum = 0.0;
                for col in 0..self.n_cols {
                    // Safe: after the barrier no thread is writing, and each
                    // row-chunk is owned by exactly one flusher.
                    let v = unsafe { *(*self.data.get()).as_ptr().add(col * self.stride + row) };
                    sum += v;
                }
                if sum != 0.0 {
                    f(row, sum);
                }
                // Zero while the line is hot.
                for col in 0..self.n_cols {
                    unsafe {
                        *(*self.data.get()).as_mut_ptr().add(col * self.stride + row) = 0.0;
                    }
                }
            }
        }
        ctx.barrier();
    }

    /// Serial flush by the calling thread alone (the naive baseline the
    /// `reduction` ablation bench compares against). No barriers; call
    /// single-threaded.
    pub fn flush_serial(&self, dst: &mut [f64], dst_off: usize) {
        for row in 0..self.len {
            let mut sum = 0.0;
            for col in 0..self.n_cols {
                let v = unsafe { *(*self.data.get()).as_ptr().add(col * self.stride + row) };
                sum += v;
            }
            dst[dst_off + row] += sum;
            for col in 0..self.n_cols {
                unsafe {
                    *(*self.data.get()).as_mut_ptr().add(col * self.stride + row) = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::Team;

    #[test]
    fn padding_separates_columns_by_cache_lines() {
        let p = PaddedColumns::new(10, 4);
        // Stride must be a multiple of the cache line and exceed len.
        assert!(p.bytes() >= 4 * 10 * 8);
        assert_eq!(p.bytes() % (PAD * 8), 0);
    }

    #[test]
    fn columns_are_disjoint() {
        let p = PaddedColumns::new(100, 3);
        for c in 0..3 {
            for v in p.col_mut(c).iter_mut() {
                *v = c as f64 + 1.0;
            }
        }
        for c in 0..3 {
            assert!(p.col_mut(c).iter().all(|&v| v == c as f64 + 1.0));
        }
    }

    #[test]
    fn parallel_flush_sums_all_columns() {
        let n = 1000;
        let nt = 4;
        let p = PaddedColumns::new(n, nt);
        let dst = SharedAccumulator::new(n);
        let team = Team::new(nt);
        team.parallel(|ctx| {
            let col = p.col_mut(ctx.thread_num());
            for (i, v) in col.iter_mut().enumerate() {
                *v = (ctx.thread_num() * n + i) as f64;
            }
            p.flush_into(ctx, &dst, 0);
        });
        for i in 0..n {
            let want: f64 = (0..nt).map(|t| (t * n + i) as f64).sum();
            assert_eq!(dst.load(i), want, "row {i}");
        }
        // Columns must be zeroed after the flush.
        for c in 0..nt {
            assert!(p.col_mut(c).iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn repeated_flushes_accumulate() {
        let n = 64;
        let nt = 2;
        let p = PaddedColumns::new(n, nt);
        let dst = SharedAccumulator::new(n);
        let team = Team::new(nt);
        team.parallel(|ctx| {
            for _round in 0..5 {
                let col = p.col_mut(ctx.thread_num());
                for v in col.iter_mut() {
                    *v = 1.0;
                }
                p.flush_into(ctx, &dst, 0);
            }
        });
        for i in 0..n {
            assert_eq!(dst.load(i), (5 * nt) as f64, "row {i}");
        }
    }

    #[test]
    fn serial_flush_matches_parallel() {
        let n = 300;
        let p = PaddedColumns::new(n, 3);
        for c in 0..3 {
            for (i, v) in p.col_mut(c).iter_mut().enumerate() {
                *v = (i % 7) as f64 * (c + 1) as f64;
            }
        }
        let mut dst = vec![0.0; n];
        p.flush_serial(&mut dst, 0);
        for (i, v) in dst.iter().enumerate() {
            let want: f64 = (1..=3).map(|c| (i % 7) as f64 * c as f64).sum();
            assert_eq!(*v, want);
        }
    }

    #[test]
    fn flush_with_offset() {
        let p = PaddedColumns::new(4, 2);
        let dst = SharedAccumulator::new(10);
        let team = Team::new(2);
        team.parallel(|ctx| {
            p.col_mut(ctx.thread_num()).fill(1.0);
            p.flush_into(ctx, &dst, 6);
        });
        assert_eq!(dst.snapshot(), vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0, 2.0, 2.0, 2.0]);
    }
}
