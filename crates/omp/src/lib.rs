//! OpenMP-like threading runtime.
//!
//! The paper's hybrid algorithms are written against a handful of OpenMP
//! constructs: `parallel` regions, `master` + `barrier`, worksharing `do`
//! loops with `schedule(static|dynamic|guided)` and `collapse(2)`, and
//! reductions over thread-private buffers. This crate provides safe Rust
//! equivalents with the same semantics, so the Fock builders in the `hf`
//! crate map line-for-line onto Algorithms 2 and 3:
//!
//! * [`Team::parallel`] — a parallel region over a fixed-size thread team;
//! * [`ThreadCtx`] — per-thread view: `thread_num`, `barrier`, `master`,
//!   `critical`, worksharing loops;
//! * [`PaddedColumns`] — the paper's Figure 1 data structure: one padded
//!   column per thread for false-sharing-free accumulation, flushed by a
//!   chunked row-wise parallel reduction;
//! * [`SharedAccumulator`] — an atomically updatable `f64` buffer standing
//!   in for the shared Fock matrix (the safe-Rust substitution for the
//!   paper's unsynchronized distinct-element writes).
//!
//! Worksharing loops follow the OpenMP contract: every thread of the team
//! must reach every construct in the same order, and each loop ends with an
//! implicit team barrier.

pub mod affinity;
pub mod reduce;
pub mod schedule;
pub mod shared;
pub mod sync;
pub mod team;

pub use affinity::Affinity;
pub use reduce::PaddedColumns;
pub use schedule::Schedule;
pub use shared::SharedAccumulator;
pub use team::{Team, ThreadCtx};
