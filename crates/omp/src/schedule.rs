//! Worksharing loop schedules (the `schedule(...)` clause).
//!
//! The paper uses `schedule(dynamic,1)` for both hybrid algorithms and notes
//! (§4.3) that static scheduling performed equivalently for the collapsed
//! loop; both are provided, plus guided, so that ablation benches can
//! compare them.

/// How a worksharing loop's iterations are distributed over the team.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Chunks dealt round-robin to threads up front (OpenMP
    /// `schedule(static, chunk)`).
    Static { chunk: usize },
    /// Threads grab the next chunk from a shared counter
    /// (`schedule(dynamic, chunk)`). The paper uses chunk = 1.
    Dynamic { chunk: usize },
    /// Chunk size decays with remaining work, never below `min_chunk`
    /// (`schedule(guided, min_chunk)`).
    Guided { min_chunk: usize },
}

impl Schedule {
    /// The paper's default for the inner ERI loops.
    pub fn dynamic1() -> Schedule {
        Schedule::Dynamic { chunk: 1 }
    }
}

/// Iterator over the chunks of a static schedule for one thread.
pub(crate) fn static_chunks(
    n: usize,
    chunk: usize,
    thread: usize,
    n_threads: usize,
) -> impl Iterator<Item = (usize, usize)> {
    let chunk = chunk.max(1);
    let n_chunks = n.div_ceil(chunk);
    (0..n_chunks).filter_map(move |c| {
        if c % n_threads == thread {
            let lo = c * chunk;
            Some((lo, (lo + chunk).min(n)))
        } else {
            None
        }
    })
}

/// Guided chunk size: proportional to remaining / threads, floored.
pub(crate) fn guided_chunk(remaining: usize, n_threads: usize, min_chunk: usize) -> usize {
    (remaining / (2 * n_threads)).max(min_chunk.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_chunks_cover_range_exactly_once() {
        for (n, chunk, nt) in [(100, 7, 4), (5, 1, 8), (64, 64, 2), (0, 3, 3)] {
            let mut seen = vec![0u32; n];
            for t in 0..nt {
                for (lo, hi) in static_chunks(n, chunk, t, nt) {
                    for s in &mut seen[lo..hi] {
                        *s += 1;
                    }
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "n={n} chunk={chunk} nt={nt}: {seen:?}");
        }
    }

    #[test]
    fn guided_chunk_respects_floor() {
        assert_eq!(guided_chunk(1000, 4, 1), 125);
        assert_eq!(guided_chunk(3, 4, 2), 2);
        assert_eq!(guided_chunk(0, 4, 1), 1);
    }
}
