//! Thread teams and parallel regions.

use crate::schedule::{guided_chunk, static_chunks, Schedule};
use crate::sync::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

/// A fixed-size thread team. One `parallel` call is one OpenMP parallel
/// region: the closure runs once per thread, with worksharing constructs
/// available through [`ThreadCtx`].
pub struct Team {
    n_threads: usize,
}

/// State shared by all threads of one parallel region.
struct RegionShared {
    barrier: Barrier,
    /// One shared iteration counter per worksharing construct, indexed by
    /// the order in which the (synchronized) team encounters them.
    loop_counters: Mutex<Vec<Arc<AtomicUsize>>>,
    critical: Mutex<()>,
    /// Claim flags for `single` constructs, one per construct sequence slot.
    single_claims: Mutex<Vec<Arc<AtomicUsize>>>,
}

impl RegionShared {
    fn counter(&self, seq: usize) -> Arc<AtomicUsize> {
        let mut v = self.loop_counters.lock();
        while v.len() <= seq {
            v.push(Arc::new(AtomicUsize::new(0)));
        }
        v[seq].clone()
    }

    fn single_claim(&self, seq: usize) -> Arc<AtomicUsize> {
        let mut v = self.single_claims.lock();
        while v.len() <= seq {
            v.push(Arc::new(AtomicUsize::new(0)));
        }
        v[seq].clone()
    }
}

/// Per-thread view of a parallel region.
pub struct ThreadCtx<'a> {
    thread_num: usize,
    n_threads: usize,
    shared: &'a RegionShared,
    /// Position in the sequence of worksharing constructs this thread has
    /// encountered (must match across the team, as in OpenMP).
    loop_seq: Cell<usize>,
}

impl Team {
    pub fn new(n_threads: usize) -> Team {
        assert!(n_threads >= 1, "a team needs at least one thread");
        Team { n_threads }
    }

    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Run a parallel region; returns each thread's result, indexed by
    /// thread number.
    pub fn parallel<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&ThreadCtx<'_>) -> R + Sync,
    {
        let shared = RegionShared {
            barrier: Barrier::new(self.n_threads),
            loop_counters: Mutex::new(Vec::new()),
            critical: Mutex::new(()),
            single_claims: Mutex::new(Vec::new()),
        };
        let n = self.n_threads;
        // The caller is the master: workers inherit its rank id so every
        // thread's trace stream lands under the right (rank, thread) pair.
        let rank = phi_trace::current_rank();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for t in 1..n {
                let shared = &shared;
                let f = &f;
                handles.push(scope.spawn(move || {
                    phi_trace::set_ids(rank, t as u32);
                    let ctx =
                        ThreadCtx { thread_num: t, n_threads: n, shared, loop_seq: Cell::new(0) };
                    f(&ctx)
                }));
            }
            // Thread 0 (the master) runs on the caller's thread.
            let ctx =
                ThreadCtx { thread_num: 0, n_threads: n, shared: &shared, loop_seq: Cell::new(0) };
            let r0 = f(&ctx);
            let mut results = vec![r0];
            for (t, h) in handles.into_iter().enumerate() {
                results.push(
                    h.join().unwrap_or_else(|_| {
                        panic!("team thread {} of rank {rank} panicked", t + 1)
                    }),
                );
            }
            results
        })
    }
}

impl ThreadCtx<'_> {
    pub fn thread_num(&self) -> usize {
        self.thread_num
    }

    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    pub fn is_master(&self) -> bool {
        self.thread_num == 0
    }

    /// Team barrier (`!$omp barrier`).
    pub fn barrier(&self) {
        let _span = phi_trace::span("omp.barrier_wait");
        self.shared.barrier.wait();
    }

    /// Run `f` on the master thread only (`!$omp master`). No implied
    /// barrier — combine with [`barrier`](Self::barrier) as the paper does.
    pub fn master<T>(&self, f: impl FnOnce() -> T) -> Option<T> {
        if self.is_master() {
            Some(f())
        } else {
            None
        }
    }

    /// Mutual exclusion (`!$omp critical`).
    pub fn critical<T>(&self, f: impl FnOnce() -> T) -> T {
        let _guard = self.shared.critical.lock();
        f()
    }

    /// Worksharing loop over `0..n` (`!$omp do schedule(...)`), with the
    /// implicit barrier at the end. Every thread of the team must call this
    /// with the same `n` and `sched`.
    pub fn for_each(&self, n: usize, sched: Schedule, mut body: impl FnMut(usize)) {
        self.for_each_nowait(n, sched, &mut body);
        self.barrier();
    }

    /// Worksharing loop without the trailing barrier (`nowait`).
    pub fn for_each_nowait(&self, n: usize, sched: Schedule, body: &mut impl FnMut(usize)) {
        // Per-thread busy time: chunk claiming + loop bodies, but not the
        // trailing barrier — this is the paper's Fig. 8 numerator.
        let _span = phi_trace::span("omp.loop");
        match sched {
            Schedule::Static { chunk } => {
                for (lo, hi) in static_chunks(n, chunk, self.thread_num, self.n_threads) {
                    for i in lo..hi {
                        body(i);
                    }
                }
                // Static schedules don't need the shared counter, but the
                // construct still occupies a sequence slot so mixed-schedule
                // regions stay aligned across threads.
                self.next_counter();
            }
            Schedule::Dynamic { chunk } => {
                let chunk = chunk.max(1);
                let counter = self.next_counter();
                loop {
                    let lo = counter.fetch_add(chunk, Ordering::Relaxed);
                    if lo >= n {
                        break;
                    }
                    for i in lo..(lo + chunk).min(n) {
                        body(i);
                    }
                }
            }
            Schedule::Guided { min_chunk } => {
                let counter = self.next_counter();
                loop {
                    // Optimistically size the chunk from the remaining work,
                    // then claim it.
                    let seen = counter.load(Ordering::Relaxed);
                    if seen >= n {
                        break;
                    }
                    let chunk = guided_chunk(n - seen, self.n_threads, min_chunk);
                    let lo = counter.fetch_add(chunk, Ordering::Relaxed);
                    if lo >= n {
                        break;
                    }
                    for i in lo..(lo + chunk).min(n) {
                        body(i);
                    }
                }
            }
        }
    }

    /// Collapsed two-level worksharing loop over the rectangle
    /// `(0..n1) x (0..n2)` (`!$omp do collapse(2)`), with the implicit
    /// trailing barrier. This is how Algorithm 2 merges its `j` and `k`
    /// loops to enlarge the task pool.
    pub fn collapse2(
        &self,
        n1: usize,
        n2: usize,
        sched: Schedule,
        mut body: impl FnMut(usize, usize),
    ) {
        if n2 == 0 {
            // Degenerate rectangle: still a worksharing construct.
            self.for_each(0, sched, |_| {});
            return;
        }
        self.for_each(n1 * n2, sched, |flat| body(flat / n2, flat % n2));
    }

    /// `!$omp single`: the first thread to arrive runs `f`; the implicit
    /// barrier at the end synchronizes the team. Returns `Some(result)` on
    /// the executing thread, `None` elsewhere.
    pub fn single<T>(&self, f: impl FnOnce() -> T) -> Option<T> {
        let seq = self.loop_seq.get();
        self.loop_seq.set(seq + 1);
        let claim = self.shared.single_claim(seq);
        let result = if claim.fetch_add(1, Ordering::AcqRel) == 0 { Some(f()) } else { None };
        self.barrier();
        result
    }

    /// `!$omp sections`: each closure runs on exactly one thread, with the
    /// implicit barrier at the end. Sections are distributed dynamically.
    pub fn sections(&self, sections: &[&(dyn Fn() + Sync)]) {
        self.for_each(sections.len(), Schedule::dynamic1(), |k| sections[k]());
    }

    fn next_counter(&self) -> Arc<AtomicUsize> {
        let seq = self.loop_seq.get();
        self.loop_seq.set(seq + 1);
        self.shared.counter(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn region_runs_once_per_thread() {
        let team = Team::new(4);
        let results = team.parallel(|ctx| ctx.thread_num());
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn master_runs_exactly_once() {
        let team = Team::new(4);
        let count = AtomicU64::new(0);
        team.parallel(|ctx| {
            ctx.master(|| count.fetch_add(1, Ordering::SeqCst));
            ctx.barrier();
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    fn check_loop_covers(sched: Schedule) {
        let team = Team::new(3);
        let n = 1000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        team.parallel(|ctx| {
            ctx.for_each(n, sched, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} under {sched:?}");
        }
    }

    #[test]
    fn dynamic_loop_covers_every_index_once() {
        check_loop_covers(Schedule::Dynamic { chunk: 1 });
        check_loop_covers(Schedule::Dynamic { chunk: 7 });
    }

    #[test]
    fn static_loop_covers_every_index_once() {
        check_loop_covers(Schedule::Static { chunk: 4 });
    }

    #[test]
    fn guided_loop_covers_every_index_once() {
        check_loop_covers(Schedule::Guided { min_chunk: 2 });
    }

    #[test]
    fn collapse2_visits_full_rectangle() {
        let team = Team::new(4);
        let (n1, n2) = (17, 23);
        let hits: Vec<AtomicU64> = (0..n1 * n2).map(|_| AtomicU64::new(0)).collect();
        team.parallel(|ctx| {
            ctx.collapse2(n1, n2, Schedule::dynamic1(), |i, j| {
                hits[i * n2 + j].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn consecutive_loops_use_fresh_counters() {
        let team = Team::new(2);
        let total = AtomicU64::new(0);
        team.parallel(|ctx| {
            for _ in 0..5 {
                ctx.for_each(10, Schedule::dynamic1(), |_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn critical_sections_are_mutually_exclusive() {
        let team = Team::new(4);
        // A non-atomic counter protected only by `critical`: races would be
        // caught by the final count (and by Miri/TSan-style tooling).
        let counter = Mutex::new(0u64);
        team.parallel(|ctx| {
            for _ in 0..1000 {
                ctx.critical(|| {
                    let mut c = counter.lock();
                    *c += 1;
                });
            }
        });
        assert_eq!(*counter.lock(), 4000);
    }

    #[test]
    fn single_runs_on_exactly_one_thread() {
        let team = Team::new(4);
        let count = AtomicU64::new(0);
        let results = team.parallel(|ctx| {
            let mut mine = 0;
            for _ in 0..10 {
                if ctx.single(|| count.fetch_add(1, Ordering::SeqCst)).is_some() {
                    mine += 1;
                }
            }
            mine
        });
        assert_eq!(count.load(Ordering::SeqCst), 10, "each single runs once");
        let total: usize = results.iter().sum();
        assert_eq!(total, 10, "exactly one executor per construct");
    }

    #[test]
    fn sections_each_run_once() {
        let team = Team::new(3);
        let hits: Vec<AtomicU64> = (0..5).map(|_| AtomicU64::new(0)).collect();
        team.parallel(|ctx| {
            let fns: Vec<Box<dyn Fn() + Sync>> = (0..5)
                .map(|k| {
                    let hits = &hits;
                    Box::new(move || {
                        hits[k].fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn Fn() + Sync>
                })
                .collect();
            let refs: Vec<&(dyn Fn() + Sync)> = fns.iter().map(|b| b.as_ref()).collect();
            ctx.sections(&refs);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn single_thread_team_works() {
        let team = Team::new(1);
        let r = team.parallel(|ctx| {
            let mut sum = 0usize;
            ctx.for_each(100, Schedule::dynamic1(), |i| sum += i);
            sum
        });
        assert_eq!(r[0], 4950);
    }

    #[test]
    fn collapse2_with_empty_inner_dimension() {
        let team = Team::new(2);
        team.parallel(|ctx| {
            // Must not deadlock or divide by zero.
            ctx.collapse2(5, 0, Schedule::dynamic1(), |_, _| panic!("no iterations expected"));
        });
    }
}
