//! Atomically updatable shared `f64` buffers.
//!
//! The paper's shared-Fock algorithm updates `Fock(k,l)` directly from many
//! threads, relying on the loop partitioning to guarantee distinct elements
//! per thread. Safe Rust cannot express "trust me, the indices are
//! disjoint" without `unsafe`; instead [`SharedAccumulator`] performs the
//! adds atomically (relaxed CAS on the f64 bit pattern). On x86 an
//! uncontended CAS-add costs a handful of cycles; the substitution is noted
//! in DESIGN.md and folded into the simulator's synchronization-cost term.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-size `f64` buffer supporting concurrent `+=` from many threads.
pub struct SharedAccumulator {
    data: Vec<AtomicU64>,
}

impl SharedAccumulator {
    /// Zero-initialized buffer of `len` elements.
    pub fn new(len: usize) -> SharedAccumulator {
        SharedAccumulator { data: (0..len).map(|_| AtomicU64::new(0f64.to_bits())).collect() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Atomically `self[idx] += v`.
    #[inline]
    pub fn add(&self, idx: usize, v: f64) {
        if v == 0.0 {
            return;
        }
        let cell = &self.data[idx];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    #[inline]
    pub fn load(&self, idx: usize) -> f64 {
        f64::from_bits(self.data[idx].load(Ordering::Relaxed))
    }

    /// Non-atomic read of the whole buffer. Callers must ensure no
    /// concurrent writers (e.g. after a barrier), which the Fock builders
    /// guarantee by construction.
    pub fn snapshot(&self) -> Vec<f64> {
        self.data.iter().map(|c| f64::from_bits(c.load(Ordering::Relaxed))).collect()
    }

    /// Reset all elements to zero (single-threaded phases only).
    pub fn zero(&self) {
        for c in &self.data {
            c.store(0f64.to_bits(), Ordering::Relaxed);
        }
    }

    /// Copy values in from a plain slice (single-threaded phases only).
    pub fn copy_from(&self, src: &[f64]) {
        assert_eq!(src.len(), self.data.len());
        for (c, &v) in self.data.iter().zip(src) {
            c.store(v.to_bits(), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::Team;

    #[test]
    fn concurrent_adds_lose_nothing() {
        let acc = SharedAccumulator::new(8);
        let team = Team::new(4);
        team.parallel(|_ctx| {
            for k in 0..10_000 {
                acc.add(k % 8, 1.0);
            }
        });
        for i in 0..8 {
            assert_eq!(acc.load(i), 4.0 * (10_000 / 8) as f64);
        }
    }

    #[test]
    fn zero_add_is_free_and_correct() {
        let acc = SharedAccumulator::new(1);
        acc.add(0, 0.0);
        acc.add(0, 2.5);
        acc.add(0, 0.0);
        assert_eq!(acc.load(0), 2.5);
    }

    #[test]
    fn snapshot_and_copy_roundtrip() {
        let acc = SharedAccumulator::new(4);
        acc.copy_from(&[1.0, -2.0, 3.5, 0.0]);
        assert_eq!(acc.snapshot(), vec![1.0, -2.0, 3.5, 0.0]);
        acc.zero();
        assert_eq!(acc.snapshot(), vec![0.0; 4]);
    }
}
