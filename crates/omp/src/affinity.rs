//! Thread-affinity descriptors (the `KMP_AFFINITY` axis of paper Figure 3).
//!
//! On the real Xeon Phi, affinity decides how software threads map onto the
//! 64 cores x 4 hardware threads, which changes L2-tile sharing and hence
//! performance. This process cannot pin threads meaningfully (and the
//! experiments that depend on affinity are simulator-driven), so the enum
//! carries the *placement semantics* that `phi-knlsim` turns into
//! efficiency factors.

/// Placement policy for a rank's threads over its cores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Affinity {
    /// Fill hardware threads of a core before moving to the next core
    /// (`KMP_AFFINITY=compact`). Dense L2 sharing; best cache reuse for
    /// neighbouring iterations, worst per-thread issue width at low thread
    /// counts.
    Compact,
    /// Spread threads across cores first (`KMP_AFFINITY=scatter`). Maximal
    /// per-thread resources at low counts; more L2 traffic between
    /// cooperating threads.
    Scatter,
    /// Spread across cores, then pack SMT siblings adjacently
    /// (`KMP_AFFINITY=balanced` — the KNL-specific mode).
    Balanced,
    /// No pinning: the OS migrates threads freely (`KMP_AFFINITY=none`).
    None,
}

impl Affinity {
    pub const ALL: [Affinity; 4] =
        [Affinity::Compact, Affinity::Scatter, Affinity::Balanced, Affinity::None];

    pub fn label(self) -> &'static str {
        match self {
            Affinity::Compact => "compact",
            Affinity::Scatter => "scatter",
            Affinity::Balanced => "balanced",
            Affinity::None => "none",
        }
    }

    /// How many distinct physical cores `n_threads` occupy on a machine
    /// with `cores` cores and `smt` hardware threads per core.
    pub fn cores_used(self, n_threads: usize, cores: usize, smt: usize) -> usize {
        match self {
            Affinity::Compact => n_threads.div_ceil(smt).min(cores),
            // Scatter/balanced/none spread over cores first.
            _ => n_threads.min(cores),
        }
    }

    /// Maximum hardware threads resident on any single core.
    pub fn max_smt_load(self, n_threads: usize, cores: usize, smt: usize) -> usize {
        match self {
            Affinity::Compact => n_threads.min(smt),
            _ => n_threads.div_ceil(cores).min(smt).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_fills_cores_first() {
        // 8 threads compact on KNL: 2 cores at 4 SMT each.
        assert_eq!(Affinity::Compact.cores_used(8, 64, 4), 2);
        assert_eq!(Affinity::Compact.max_smt_load(8, 64, 4), 4);
    }

    #[test]
    fn scatter_spreads_cores_first() {
        assert_eq!(Affinity::Scatter.cores_used(8, 64, 4), 8);
        assert_eq!(Affinity::Scatter.max_smt_load(8, 64, 4), 1);
    }

    #[test]
    fn saturation_is_equal_for_all_policies() {
        for a in Affinity::ALL {
            assert_eq!(a.cores_used(256, 64, 4), 64);
            assert_eq!(a.max_smt_load(256, 64, 4), 4);
        }
    }

    #[test]
    fn single_thread() {
        for a in Affinity::ALL {
            assert_eq!(a.cores_used(1, 64, 4), 1);
            assert_eq!(a.max_smt_load(1, 64, 4), 1);
        }
    }
}
