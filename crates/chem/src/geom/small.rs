//! Small validation molecules with literature geometries.
//!
//! These are the systems the test suite runs real SCF calculations on; the
//! H2 and HeH+ geometries are the classic Szabo & Ostlund test cases with
//! known RHF/STO-3G energies.

use crate::element::Element;
use crate::molecule::{Atom, Molecule};
use crate::ANGSTROM;

/// H2 with the bond length given in Bohr. At `r = 1.4` the RHF/STO-3G total
/// energy is -1.1167 Eh (Szabo & Ostlund, Table 3.5 region).
pub fn hydrogen_molecule(r_bohr: f64) -> Molecule {
    Molecule::neutral(vec![
        Atom { element: Element::H, pos: [0.0, 0.0, 0.0] },
        Atom { element: Element::H, pos: [0.0, 0.0, r_bohr] },
    ])
}

/// HeH+ at the Szabo & Ostlund bond length of 1.4632 Bohr.
pub fn heh_cation() -> Molecule {
    Molecule::new(
        vec![
            Atom { element: Element::He, pos: [0.0, 0.0, 0.0] },
            Atom { element: Element::H, pos: [0.0, 0.0, 1.4632] },
        ],
        1,
    )
}

/// Water at the experimental gas-phase geometry (r(OH) = 0.9572 Å,
/// HOH angle = 104.52 deg), oxygen at the origin, C2v axis along z.
pub fn water() -> Molecule {
    let r = 0.9572 * ANGSTROM;
    let half = 104.52f64.to_radians() / 2.0;
    Molecule::neutral(vec![
        Atom { element: Element::O, pos: [0.0, 0.0, 0.0] },
        Atom { element: Element::H, pos: [r * half.sin(), 0.0, r * half.cos()] },
        Atom { element: Element::H, pos: [-r * half.sin(), 0.0, r * half.cos()] },
    ])
}

/// Methane, tetrahedral, r(CH) = 1.087 Å.
pub fn methane() -> Molecule {
    let r = 1.087 * ANGSTROM / 3f64.sqrt();
    Molecule::neutral(vec![
        Atom { element: Element::C, pos: [0.0, 0.0, 0.0] },
        Atom { element: Element::H, pos: [r, r, r] },
        Atom { element: Element::H, pos: [r, -r, -r] },
        Atom { element: Element::H, pos: [-r, r, -r] },
        Atom { element: Element::H, pos: [-r, -r, r] },
    ])
}

/// Benzene, planar D6h, r(CC) = 1.39 Å, r(CH) = 1.09 Å.
pub fn benzene() -> Molecule {
    let rc = 1.39 * ANGSTROM;
    let rh = (1.39 + 1.09) * ANGSTROM;
    let mut atoms = Vec::with_capacity(12);
    for k in 0..6 {
        let th = std::f64::consts::PI / 3.0 * k as f64;
        atoms.push(Atom { element: Element::C, pos: [rc * th.cos(), rc * th.sin(), 0.0] });
    }
    for k in 0..6 {
        let th = std::f64::consts::PI / 3.0 * k as f64;
        atoms.push(Atom { element: Element::H, pos: [rh * th.cos(), rh * th.sin(), 0.0] });
    }
    Molecule::neutral(atoms)
}

/// A linear chain of `n` hydrogen atoms with the given spacing (Bohr).
/// Handy for size-scaling tests; use even `n` for RHF.
pub fn h_chain(n: usize, spacing_bohr: f64) -> Molecule {
    Molecule::neutral(
        (0..n)
            .map(|k| Atom { element: Element::H, pos: [0.0, 0.0, k as f64 * spacing_bohr] })
            .collect(),
    )
}

/// A planar ring of `n` carbon atoms with the given bond length (Å).
/// A crude all-carbon analogue of the graphene systems for cheap tests.
pub fn c_ring(n: usize, bond_angstrom: f64) -> Molecule {
    let theta = 2.0 * std::f64::consts::PI / n as f64;
    let radius = bond_angstrom * ANGSTROM / (2.0 * (theta / 2.0).sin());
    Molecule::neutral(
        (0..n)
            .map(|k| {
                let th = theta * k as f64;
                Atom { element: Element::C, pos: [radius * th.cos(), radius * th.sin(), 0.0] }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecule::dist;

    #[test]
    fn water_geometry() {
        let m = water();
        assert_eq!(m.n_atoms(), 3);
        assert_eq!(m.n_electrons(), 10);
        let a = m.atoms();
        let roh = dist(a[0].pos, a[1].pos);
        assert!((roh - 0.9572 * ANGSTROM).abs() < 1e-10);
        // H-H distance consistent with the 104.52 degree angle.
        let rhh = dist(a[1].pos, a[2].pos);
        let expect = 2.0 * 0.9572 * ANGSTROM * (104.52f64.to_radians() / 2.0).sin();
        assert!((rhh - expect).abs() < 1e-10);
    }

    #[test]
    fn methane_is_tetrahedral() {
        let m = methane();
        let a = m.atoms();
        for h in 1..5 {
            assert!((dist(a[0].pos, a[h].pos) - 1.087 * ANGSTROM).abs() < 1e-10);
        }
        // All H-H distances equal.
        let d12 = dist(a[1].pos, a[2].pos);
        for (i, j) in [(1, 3), (1, 4), (2, 3), (2, 4), (3, 4)] {
            assert!((dist(a[i].pos, a[j].pos) - d12).abs() < 1e-10);
        }
    }

    #[test]
    fn heh_cation_has_two_electrons() {
        let m = heh_cation();
        assert_eq!(m.n_electrons(), 2);
        assert_eq!(m.n_occupied(), 1);
    }

    #[test]
    fn c_ring_bonds() {
        let m = c_ring(6, 1.39);
        let a = m.atoms();
        for k in 0..6 {
            let d = dist(a[k].pos, a[(k + 1) % 6].pos);
            assert!((d - 1.39 * ANGSTROM).abs() < 1e-9);
        }
    }

    #[test]
    fn h_chain_spacing() {
        let m = h_chain(5, 1.8);
        assert_eq!(m.n_atoms(), 5);
        assert!((dist(m.atoms()[0].pos, m.atoms()[4].pos) - 4.0 * 1.8).abs() < 1e-12);
    }

    #[test]
    fn benzene_counts() {
        let m = benzene();
        assert_eq!(m.n_atoms(), 12);
        assert_eq!(m.n_electrons(), 42);
    }
}
