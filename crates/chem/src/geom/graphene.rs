//! Graphene bilayer model systems (paper §5.2, Figure 2, Table 2/Table 4).
//!
//! The paper benchmarks five bilayer graphene flakes named by their lateral
//! size: 0.5, 1.0, 1.5, 2.0 and 5.0 nm, with 44/120/220/356/2016 carbon atoms
//! in total (two equal layers). With the 6-31G(d) basis these give exactly
//! 176/480/880/1424/8064 shells and 660/1800/3300/5340/30240 basis functions
//! (artifact Table 4) — counts this module reproduces exactly.
//!
//! Flakes are cut from an ideal honeycomb lattice (C–C bond 1.42 Å) by taking
//! the `n` lattice sites closest to the flake center, which yields compact,
//! roughly isotropic patches; layers are AB-stacked at the graphite interlayer
//! distance of 3.35 Å. The physically relevant property for the paper's
//! experiments is the *spatial sparsity* of the Schwarz-screened ERI tensor,
//! which depends on flake area and stacking, not on the exact rim shape.

use crate::element::Element;
use crate::molecule::{Atom, Molecule};
use crate::ANGSTROM;

/// C–C bond length in graphene, Ångström.
pub const CC_BOND_ANGSTROM: f64 = 1.42;
/// Graphite interlayer distance, Ångström.
pub const INTERLAYER_ANGSTROM: f64 = 3.35;

/// The five benchmark datasets of the paper (Table 2 / Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PaperSystem {
    /// "0.5 nm": 44 atoms, 176 shells, 660 basis functions.
    Nm05,
    /// "1.0 nm": 120 atoms, 480 shells, 1,800 basis functions.
    Nm10,
    /// "1.5 nm": 220 atoms, 880 shells, 3,300 basis functions.
    Nm15,
    /// "2.0 nm": 356 atoms, 1,424 shells, 5,340 basis functions.
    Nm20,
    /// "5.0 nm": 2,016 atoms, 8,064 shells, 30,240 basis functions.
    Nm50,
}

impl PaperSystem {
    pub const ALL: [PaperSystem; 5] = [
        PaperSystem::Nm05,
        PaperSystem::Nm10,
        PaperSystem::Nm15,
        PaperSystem::Nm20,
        PaperSystem::Nm50,
    ];

    /// Dataset label as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            PaperSystem::Nm05 => "0.5 nm",
            PaperSystem::Nm10 => "1.0 nm",
            PaperSystem::Nm15 => "1.5 nm",
            PaperSystem::Nm20 => "2.0 nm",
            PaperSystem::Nm50 => "5.0 nm",
        }
    }

    /// Total number of carbon atoms (both layers).
    pub fn n_atoms(self) -> usize {
        match self {
            PaperSystem::Nm05 => 44,
            PaperSystem::Nm10 => 120,
            PaperSystem::Nm15 => 220,
            PaperSystem::Nm20 => 356,
            PaperSystem::Nm50 => 2016,
        }
    }

    /// Number of shells with 6-31G(d) on carbon (4 per atom: S, L, L, D).
    pub fn n_shells(self) -> usize {
        4 * self.n_atoms()
    }

    /// Number of basis functions with 6-31G(d) on carbon (15 per atom,
    /// cartesian d).
    pub fn n_basis_functions(self) -> usize {
        15 * self.n_atoms()
    }

    /// Build the molecule.
    pub fn molecule(self) -> Molecule {
        bilayer_graphene(self.n_atoms() / 2)
    }
}

/// Generate a single-layer graphene flake with exactly `n` carbon atoms in
/// the z = 0 plane, centered near the origin.
pub fn graphene_flake(n: usize) -> Molecule {
    Molecule::neutral(flake_sites(n, 0.0, false))
}

/// Generate an AB-stacked bilayer flake with `per_layer` atoms in each layer
/// (so `2 * per_layer` atoms in total).
pub fn bilayer_graphene(per_layer: usize) -> Molecule {
    let dz = INTERLAYER_ANGSTROM * ANGSTROM;
    let mut atoms = flake_sites(per_layer, -0.5 * dz, false);
    atoms.extend(flake_sites(per_layer, 0.5 * dz, true));
    Molecule::neutral(atoms)
}

/// Enumerate honeycomb sites, take the `n` closest to the center.
///
/// `shifted` applies the AB-stacking offset (one bond vector in +x) so that
/// the second layer's atoms sit over the first layer's hexagon centers /
/// atoms in the graphite pattern.
fn flake_sites(n: usize, z: f64, shifted: bool) -> Vec<Atom> {
    let a = CC_BOND_ANGSTROM * ANGSTROM;
    // Triangular lattice vectors with a two-atom basis; nearest-neighbour
    // distance is exactly `a`.
    let a1 = [1.5 * a, 3f64.sqrt() / 2.0 * a];
    let a2 = [1.5 * a, -(3f64.sqrt()) / 2.0 * a];
    let basis = [[0.0, 0.0], [a, 0.0]];
    let shift = if shifted { a } else { 0.0 };

    // A generous candidate radius: the flake area is n * (area per atom);
    // area per atom in graphene is 3*sqrt(3)/4 * a^2.
    let area_per_atom = 3.0 * 3f64.sqrt() / 4.0 * a * a;
    let radius = (n as f64 * area_per_atom / std::f64::consts::PI).sqrt() * 1.8 + 3.0 * a;
    let kmax = (radius / a) as i64 + 2;

    let mut sites: Vec<[f64; 2]> = Vec::new();
    for i in -kmax..=kmax {
        for j in -kmax..=kmax {
            for b in &basis {
                let x = i as f64 * a1[0] + j as f64 * a2[0] + b[0] + shift;
                let y = i as f64 * a1[1] + j as f64 * a2[1] + b[1];
                if x * x + y * y <= radius * radius {
                    sites.push([x, y]);
                }
            }
        }
    }
    assert!(sites.len() >= n, "candidate lattice too small: {} sites for n = {n}", sites.len());
    // Deterministic: sort by distance from origin, tie-break on coordinates.
    sites.sort_by(|p, q| {
        let rp = p[0] * p[0] + p[1] * p[1];
        let rq = q[0] * q[0] + q[1] * q[1];
        rp.partial_cmp(&rq)
            .unwrap()
            .then(p[0].partial_cmp(&q[0]).unwrap())
            .then(p[1].partial_cmp(&q[1]).unwrap())
    });
    sites.truncate(n);
    sites.into_iter().map(|p| Atom { element: Element::C, pos: [p[0], p[1], z] }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecule::dist;

    #[test]
    fn paper_system_counts_match_table4() {
        let expect = [
            (PaperSystem::Nm05, 44, 176, 660),
            (PaperSystem::Nm10, 120, 480, 1800),
            (PaperSystem::Nm15, 220, 880, 3300),
            (PaperSystem::Nm20, 356, 1424, 5340),
            (PaperSystem::Nm50, 2016, 8064, 30240),
        ];
        for (sys, atoms, shells, bf) in expect {
            assert_eq!(sys.n_atoms(), atoms);
            assert_eq!(sys.n_shells(), shells);
            assert_eq!(sys.n_basis_functions(), bf);
        }
    }

    #[test]
    fn generated_molecules_have_exact_atom_counts() {
        for sys in [PaperSystem::Nm05, PaperSystem::Nm10, PaperSystem::Nm20] {
            let m = sys.molecule();
            assert_eq!(m.n_atoms(), sys.n_atoms(), "{}", sys.label());
        }
    }

    #[test]
    fn nearest_neighbour_distance_is_the_bond_length() {
        let m = graphene_flake(30);
        let atoms = m.atoms();
        let a = CC_BOND_ANGSTROM * ANGSTROM;
        let mut min = f64::INFINITY;
        for i in 0..atoms.len() {
            for j in 0..i {
                min = min.min(dist(atoms[i].pos, atoms[j].pos));
            }
        }
        assert!((min - a).abs() < 1e-9, "min distance {min} vs bond {a}");
    }

    #[test]
    fn no_duplicate_sites() {
        let m = bilayer_graphene(60);
        let atoms = m.atoms();
        for i in 0..atoms.len() {
            for j in 0..i {
                assert!(dist(atoms[i].pos, atoms[j].pos) > 1e-6, "duplicate atoms {i},{j}");
            }
        }
    }

    #[test]
    fn bilayer_has_two_z_planes_at_interlayer_distance() {
        let m = bilayer_graphene(22);
        let mut zs: Vec<f64> = m.atoms().iter().map(|a| a.pos[2]).collect();
        zs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = zs[0];
        let hi = zs[zs.len() - 1];
        assert!((hi - lo - INTERLAYER_ANGSTROM * ANGSTROM).abs() < 1e-9);
        // Every atom is in one of the two planes.
        for &z in &zs {
            assert!((z - lo).abs() < 1e-9 || (z - hi).abs() < 1e-9);
        }
    }

    #[test]
    fn layers_are_ab_stacked() {
        // In AB stacking no atom of layer 2 sits directly above *every* atom
        // of layer 1; exactly half the sites are eclipsed. Verify at least
        // that the layers are not identical in (x, y).
        let m = bilayer_graphene(22);
        let (l1, l2): (Vec<&Atom>, Vec<&Atom>) = m.atoms().iter().partition(|a| a.pos[2] < 0.0);
        let mut eclipsed = 0;
        for a in &l1 {
            for b in &l2 {
                let dx = a.pos[0] - b.pos[0];
                let dy = a.pos[1] - b.pos[1];
                if (dx * dx + dy * dy).sqrt() < 1e-6 {
                    eclipsed += 1;
                }
            }
        }
        assert!(eclipsed < l1.len(), "layers fully eclipsed: AA stacking, expected AB");
    }

    #[test]
    fn flake_is_planar_and_compact() {
        let m = graphene_flake(100);
        for a in m.atoms() {
            assert_eq!(a.pos[2], 0.0);
        }
        // Compactness: max radius should be within ~2.5x the ideal disc radius.
        let a = CC_BOND_ANGSTROM * ANGSTROM;
        let ideal = (100.0 * 3.0 * 3f64.sqrt() / 4.0 * a * a / std::f64::consts::PI).sqrt();
        let rmax = m
            .atoms()
            .iter()
            .map(|at| (at.pos[0] * at.pos[0] + at.pos[1] * at.pos[1]).sqrt())
            .fold(0.0f64, f64::max);
        assert!(rmax < 2.5 * ideal, "flake too spread out: {rmax} vs ideal {ideal}");
    }
}
