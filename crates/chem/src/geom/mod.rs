//! Geometry builders: the paper's graphene bilayer benchmark systems and a
//! set of small validation molecules.

pub mod graphene;
pub mod small;

pub use graphene::{bilayer_graphene, graphene_flake, PaperSystem};
