//! Chemical elements (first two rows — all the paper's systems need is
//! carbon, plus H/N/O/He for validation molecules).

/// A chemical element, identified by atomic number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Element {
    H,
    He,
    Li,
    Be,
    B,
    C,
    N,
    O,
    F,
    Ne,
}

impl Element {
    /// Nuclear charge Z.
    pub fn atomic_number(self) -> u32 {
        match self {
            Element::H => 1,
            Element::He => 2,
            Element::Li => 3,
            Element::Be => 4,
            Element::B => 5,
            Element::C => 6,
            Element::N => 7,
            Element::O => 8,
            Element::F => 9,
            Element::Ne => 10,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            Element::H => "H",
            Element::He => "He",
            Element::Li => "Li",
            Element::Be => "Be",
            Element::B => "B",
            Element::C => "C",
            Element::N => "N",
            Element::O => "O",
            Element::F => "F",
            Element::Ne => "Ne",
        }
    }

    /// Parse a (case-insensitive) element symbol.
    pub fn from_symbol(s: &str) -> Option<Element> {
        let all = [
            Element::H,
            Element::He,
            Element::Li,
            Element::Be,
            Element::B,
            Element::C,
            Element::N,
            Element::O,
            Element::F,
            Element::Ne,
        ];
        all.into_iter().find(|e| e.symbol().eq_ignore_ascii_case(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_numbers_are_sequential() {
        assert_eq!(Element::H.atomic_number(), 1);
        assert_eq!(Element::C.atomic_number(), 6);
        assert_eq!(Element::Ne.atomic_number(), 10);
    }

    #[test]
    fn symbol_roundtrip() {
        for e in [Element::H, Element::He, Element::C, Element::N, Element::O] {
            assert_eq!(Element::from_symbol(e.symbol()), Some(e));
        }
        assert_eq!(Element::from_symbol("c"), Some(Element::C));
        assert_eq!(Element::from_symbol("Xx"), None);
    }
}
