//! Chemistry substrate: elements, molecular geometries and Gaussian basis
//! sets.
//!
//! This crate owns everything the paper's benchmarks parameterize over:
//!
//! * the graphene bilayer model systems (0.5 nm ... 5.0 nm, paper §5.2/§5.3,
//!   Table 2 / Table 4) via [`geom::graphene`];
//! * small validation molecules (H2, water, methane, ...) via [`geom::small`];
//! * the 6-31G(d) basis the paper uses for every benchmark, plus STO-3G and
//!   6-31G for cheap validation runs, via [`basis`].
//!
//! Shells follow the GAMESS convention the paper relies on (§4.1 footnote 1):
//! a shell groups basis functions on one atom sharing one primitive exponent
//! set, and combined SP ("L") shells are first-class — this is what makes the
//! paper's shell counts (e.g. 176 shells / 660 basis functions for the 0.5 nm
//! system) come out exactly.

pub mod basis;
pub mod element;
pub mod geom;
pub mod molecule;
pub mod xyz;

pub use basis::{BasisName, BasisSet, Shell};
pub use element::Element;
pub use molecule::{Atom, Molecule};
pub use xyz::{parse_xyz, to_xyz};

/// Bohr per Ångström.
pub const ANGSTROM: f64 = 1.889_726_124_626_18;
