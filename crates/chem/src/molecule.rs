//! Molecular geometries.
//!
//! Coordinates are stored in Bohr (atomic units) throughout the workspace;
//! builders that accept Ångström convert on construction.

use crate::element::Element;

/// An atom: element plus position in Bohr.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Atom {
    pub element: Element,
    pub pos: [f64; 3],
}

/// A molecule: a list of atoms and a total charge.
#[derive(Clone, Debug, PartialEq)]
pub struct Molecule {
    atoms: Vec<Atom>,
    charge: i32,
}

impl Molecule {
    pub fn new(atoms: Vec<Atom>, charge: i32) -> Self {
        Molecule { atoms, charge }
    }

    /// Neutral molecule.
    pub fn neutral(atoms: Vec<Atom>) -> Self {
        Molecule::new(atoms, 0)
    }

    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    pub fn n_atoms(&self) -> usize {
        self.atoms.len()
    }

    pub fn charge(&self) -> i32 {
        self.charge
    }

    /// Number of electrons = sum of nuclear charges minus the total charge.
    pub fn n_electrons(&self) -> usize {
        let z: i64 = self.atoms.iter().map(|a| a.element.atomic_number() as i64).sum();
        let n = z - self.charge as i64;
        assert!(n >= 0, "more positive charge than protons");
        usize::try_from(n).expect("checked non-negative")
    }

    /// Number of doubly-occupied orbitals for closed-shell RHF.
    /// Panics on an odd electron count (RHF requires a closed shell).
    pub fn n_occupied(&self) -> usize {
        let n = self.n_electrons();
        assert!(n.is_multiple_of(2), "RHF requires an even electron count, got {n}");
        n / 2
    }

    /// Classical nuclear-nuclear repulsion energy in Hartree.
    pub fn nuclear_repulsion(&self) -> f64 {
        let mut e = 0.0;
        for i in 0..self.atoms.len() {
            for j in 0..i {
                let zi = self.atoms[i].element.atomic_number() as f64;
                let zj = self.atoms[j].element.atomic_number() as f64;
                e += zi * zj / dist(self.atoms[i].pos, self.atoms[j].pos);
            }
        }
        e
    }

    /// Rigidly translated copy (for invariance tests).
    pub fn translated(&self, shift: [f64; 3]) -> Molecule {
        let atoms = self
            .atoms
            .iter()
            .map(|a| Atom {
                element: a.element,
                pos: [a.pos[0] + shift[0], a.pos[1] + shift[1], a.pos[2] + shift[2]],
            })
            .collect();
        Molecule { atoms, charge: self.charge }
    }

    /// Copy rotated by `angle` radians about the z axis (for invariance tests).
    pub fn rotated_z(&self, angle: f64) -> Molecule {
        let (s, c) = angle.sin_cos();
        let atoms = self
            .atoms
            .iter()
            .map(|a| Atom {
                element: a.element,
                pos: [c * a.pos[0] - s * a.pos[1], s * a.pos[0] + c * a.pos[1], a.pos[2]],
            })
            .collect();
        Molecule { atoms, charge: self.charge }
    }

    /// Geometric centroid (Bohr).
    pub fn centroid(&self) -> [f64; 3] {
        let n = self.atoms.len().max(1) as f64;
        let mut c = [0.0; 3];
        for a in &self.atoms {
            for (ck, pk) in c.iter_mut().zip(&a.pos) {
                *ck += pk / n;
            }
        }
        c
    }
}

/// Euclidean distance between two points.
pub fn dist(a: [f64; 3], b: [f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    (dx * dx + dy * dy + dz * dz).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ANGSTROM;

    #[test]
    fn electron_counting() {
        let m = Molecule::new(
            vec![
                Atom { element: Element::O, pos: [0.0; 3] },
                Atom { element: Element::H, pos: [1.0, 0.0, 0.0] },
                Atom { element: Element::H, pos: [0.0, 1.0, 0.0] },
            ],
            0,
        );
        assert_eq!(m.n_electrons(), 10);
        assert_eq!(m.n_occupied(), 5);
        let cation = Molecule::new(m.atoms().to_vec(), 2);
        assert_eq!(cation.n_electrons(), 8);
    }

    #[test]
    fn h2_nuclear_repulsion() {
        // Two protons at 1.4 bohr: E_nn = 1/1.4.
        let m = Molecule::neutral(vec![
            Atom { element: Element::H, pos: [0.0, 0.0, 0.0] },
            Atom { element: Element::H, pos: [0.0, 0.0, 1.4] },
        ]);
        assert!((m.nuclear_repulsion() - 1.0 / 1.4).abs() < 1e-14);
    }

    #[test]
    fn repulsion_invariant_under_rigid_motion() {
        let m = Molecule::neutral(vec![
            Atom { element: Element::C, pos: [0.0, 0.0, 0.0] },
            Atom { element: Element::O, pos: [0.0, 1.1 * ANGSTROM, 0.4] },
            Atom { element: Element::H, pos: [0.9, -0.3, 0.2] },
        ]);
        let e0 = m.nuclear_repulsion();
        let e1 = m.translated([3.0, -2.0, 0.5]).nuclear_repulsion();
        let e2 = m.rotated_z(0.7).nuclear_repulsion();
        assert!((e0 - e1).abs() < 1e-12);
        assert!((e0 - e2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "even electron count")]
    fn odd_electrons_rejected_for_rhf() {
        let m = Molecule::neutral(vec![Atom { element: Element::H, pos: [0.0; 3] }]);
        let _ = m.n_occupied();
    }
}
