//! Gaussian basis sets: the shell model and the builder that instantiates a
//! basis on a molecule.
//!
//! A [`Shell`] follows the GAMESS convention the paper builds on: one set of
//! primitive exponents on one atom, carrying one or more angular-momentum
//! blocks. Ordinary shells carry a single block (pure S, P or D); Pople
//! combined "L" shells carry an S block and a P block sharing the same
//! exponents. Keeping L shells combined is what makes the paper's shell
//! counts exact (4 shells per carbon in 6-31G(d): S, L, L, D -> 176 shells
//! for the 44-atom system).
//!
//! Contraction coefficients are stored fully normalized for the (l,0,0)
//! cartesian component; the integrals crate applies the per-component
//! double-factorial factors for the remaining cartesians.

pub mod data;

use crate::molecule::Molecule;

/// Which basis set to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BasisName {
    /// Minimal STO-3G (validation anchors).
    Sto3g,
    /// Split-valence 6-31G.
    B631g,
    /// 6-31G(d) — 6-31G plus one cartesian d shell on heavy atoms. This is
    /// the basis used for every benchmark in the paper.
    B631gd,
    /// 6-31G(d,p) — 6-31G(d) plus one p shell on hydrogen.
    B631gdp,
}

impl BasisName {
    pub fn label(self) -> &'static str {
        match self {
            BasisName::Sto3g => "STO-3G",
            BasisName::B631g => "6-31G",
            BasisName::B631gd => "6-31G(d)",
            BasisName::B631gdp => "6-31G(d,p)",
        }
    }
}

/// Number of cartesian components for angular momentum `l`:
/// 1 (s), 3 (p), 6 (d), 10 (f), ...
pub fn n_cart(l: usize) -> usize {
    (l + 1) * (l + 2) / 2
}

/// One angular-momentum block of a shell: `l` plus one normalized
/// contraction coefficient per primitive.
#[derive(Clone, Debug)]
pub struct AngBlock {
    pub l: usize,
    pub coefs: Vec<f64>,
}

/// A contracted shell instantiated on an atom.
#[derive(Clone, Debug)]
pub struct Shell {
    /// Index of the atom this shell sits on.
    pub atom: usize,
    /// Center coordinates (Bohr).
    pub center: [f64; 3],
    /// Primitive exponents, shared by all blocks.
    pub exps: Vec<f64>,
    /// Angular blocks in basis-function order (S before P for L shells).
    pub blocks: Vec<AngBlock>,
    /// Offset of this shell's first basis function in the full basis.
    pub first_bf: usize,
}

impl Shell {
    /// Total number of (cartesian) basis functions carried by this shell.
    pub fn n_functions(&self) -> usize {
        self.blocks.iter().map(|b| n_cart(b.l)).sum()
    }

    /// Highest angular momentum among the blocks.
    pub fn max_l(&self) -> usize {
        self.blocks.iter().map(|b| b.l).max().unwrap_or(0)
    }

    /// Smallest primitive exponent — controls the spatial extent of the
    /// shell and hence screening behaviour.
    pub fn min_exp(&self) -> f64 {
        self.exps.iter().cloned().fold(f64::INFINITY, f64::min)
    }
}

/// A basis set instantiated on a molecule.
#[derive(Clone, Debug)]
pub struct BasisSet {
    pub name: BasisName,
    pub shells: Vec<Shell>,
    n_basis: usize,
}

impl BasisSet {
    /// Instantiate `name` on every atom of `mol`.
    ///
    /// Panics if the basis has no data for one of the elements (the data
    /// tables cover H, He, C, N, O — everything the paper's systems and the
    /// validation molecules need).
    pub fn build(mol: &Molecule, name: BasisName) -> BasisSet {
        let mut shells = Vec::new();
        let mut first_bf = 0;
        for (ai, atom) in mol.atoms().iter().enumerate() {
            let specs = data::shells_for(atom.element, name).unwrap_or_else(|| {
                panic!("no {} data for element {}", name.label(), atom.element.symbol())
            });
            for spec in specs {
                let shell = instantiate(spec, ai, atom.pos, first_bf);
                first_bf += shell.n_functions();
                shells.push(shell);
            }
        }
        BasisSet { name, shells, n_basis: first_bf }
    }

    /// Assemble a basis set directly from shells (testing and custom bases).
    /// `first_bf` offsets are recomputed to be contiguous.
    pub fn from_shells(name: BasisName, mut shells: Vec<Shell>) -> BasisSet {
        let mut first_bf = 0;
        for sh in &mut shells {
            sh.first_bf = first_bf;
            first_bf += sh.n_functions();
        }
        BasisSet { name, shells, n_basis: first_bf }
    }

    /// Total number of basis functions.
    pub fn n_basis(&self) -> usize {
        self.n_basis
    }

    pub fn n_shells(&self) -> usize {
        self.shells.len()
    }

    /// Highest angular momentum present in the basis.
    pub fn max_l(&self) -> usize {
        self.shells.iter().map(|s| s.max_l()).max().unwrap_or(0)
    }
}

/// Odd double factorial `(2n - 1)!!` with the convention `(-1)!! = 1`.
pub fn odd_double_factorial(n: usize) -> f64 {
    let mut acc = 1.0;
    let mut k = 2 * n as i64 - 1;
    while k > 1 {
        acc *= k as f64;
        k -= 2;
    }
    acc
}

/// Normalize one angular block: scale each raw coefficient by the primitive
/// (l,0,0) norm, then renormalize the contraction to unit self-overlap.
fn normalize_block(l: usize, exps: &[f64], raw: &[f64]) -> Vec<f64> {
    assert_eq!(exps.len(), raw.len());
    let df = odd_double_factorial(l);
    // Primitive norms for the (l,0,0) cartesian component.
    let mut coefs: Vec<f64> = exps
        .iter()
        .zip(raw)
        .map(|(&a, &c)| {
            let norm = (2.0 * a / std::f64::consts::PI).powf(0.75) * (4.0 * a).powf(l as f64 / 2.0)
                / df.sqrt();
            c * norm
        })
        .collect();
    // Self-overlap of the contracted (l,0,0) function.
    let mut s = 0.0;
    for (p, (&ap, &cp)) in exps.iter().zip(&coefs).enumerate() {
        for (q, (&aq, &cq)) in exps.iter().zip(&coefs).enumerate() {
            let _ = (p, q);
            let g = ap + aq;
            s += cp * cq * (std::f64::consts::PI / g).powf(1.5) * df / (2.0 * g).powf(l as f64);
        }
    }
    let inv = 1.0 / s.sqrt();
    for c in &mut coefs {
        *c *= inv;
    }
    coefs
}

/// Build a custom contracted shell from raw (unnormalized) coefficients.
/// Used for non-standard bases (e.g. zeta-scaled STO-3G validation cases)
/// and by tests.
pub fn custom_shell(
    atom: usize,
    center: [f64; 3],
    exps: Vec<f64>,
    raw_blocks: &[(usize, Vec<f64>)],
) -> Shell {
    let blocks = raw_blocks
        .iter()
        .map(|(l, raw)| AngBlock { l: *l, coefs: normalize_block(*l, &exps, raw) })
        .collect();
    Shell { atom, center, exps, blocks, first_bf: 0 }
}

fn instantiate(spec: &data::ShellData, atom: usize, center: [f64; 3], first_bf: usize) -> Shell {
    let exps: Vec<f64> = spec.exps.to_vec();
    let blocks = spec
        .blocks
        .iter()
        .map(|&(l, raw)| AngBlock { l, coefs: normalize_block(l, &exps, raw) })
        .collect();
    Shell { atom, center, exps, blocks, first_bf }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::graphene::PaperSystem;
    use crate::geom::small;

    #[test]
    fn double_factorials() {
        assert_eq!(odd_double_factorial(0), 1.0);
        assert_eq!(odd_double_factorial(1), 1.0);
        assert_eq!(odd_double_factorial(2), 3.0);
        assert_eq!(odd_double_factorial(3), 15.0);
        assert_eq!(odd_double_factorial(4), 105.0);
    }

    #[test]
    fn n_cart_values() {
        assert_eq!(n_cart(0), 1);
        assert_eq!(n_cart(1), 3);
        assert_eq!(n_cart(2), 6);
        assert_eq!(n_cart(3), 10);
    }

    #[test]
    fn water_sto3g_has_7_functions() {
        let m = small::water();
        let b = BasisSet::build(&m, BasisName::Sto3g);
        // O: S + L (1 + 4) = 5; each H: 1 -> 7 total.
        assert_eq!(b.n_basis(), 7);
        assert_eq!(b.n_shells(), 4);
        assert_eq!(b.max_l(), 1);
    }

    #[test]
    fn water_631gd_counts() {
        let m = small::water();
        let b = BasisSet::build(&m, BasisName::B631gd);
        // O: S(1) + L(4) + L(4) + D(6) = 15; H: 2 each -> 19.
        assert_eq!(b.n_basis(), 19);
        assert_eq!(b.n_shells(), 8);
        assert_eq!(b.max_l(), 2);
    }

    #[test]
    fn carbon_631gd_matches_paper_per_atom_counts() {
        let m = small::c_ring(6, 1.39);
        let b = BasisSet::build(&m, BasisName::B631gd);
        assert_eq!(b.n_shells(), 6 * 4, "4 shells per carbon (S, L, L, D)");
        assert_eq!(b.n_basis(), 6 * 15, "15 basis functions per carbon");
    }

    #[test]
    fn paper_smallest_system_matches_table4_exactly() {
        let m = PaperSystem::Nm05.molecule();
        let b = BasisSet::build(&m, BasisName::B631gd);
        assert_eq!(b.n_shells(), 176);
        assert_eq!(b.n_basis(), 660);
    }

    #[test]
    fn first_bf_offsets_are_contiguous() {
        let m = small::water();
        let b = BasisSet::build(&m, BasisName::B631gd);
        let mut expect = 0;
        for sh in &b.shells {
            assert_eq!(sh.first_bf, expect);
            expect += sh.n_functions();
        }
        assert_eq!(expect, b.n_basis());
    }

    #[test]
    fn single_primitive_s_normalization_is_analytic() {
        // For one primitive the normalized coefficient must be
        // (2a/pi)^(3/4) exactly.
        let coefs = normalize_block(0, &[0.7], &[1.0]);
        let want = (2.0 * 0.7 / std::f64::consts::PI).powf(0.75);
        assert!((coefs[0] - want).abs() < 1e-14);
    }

    #[test]
    fn raw_coefficient_scale_is_irrelevant_after_normalization() {
        let a = normalize_block(1, &[1.2, 0.3], &[0.5, 0.5]);
        let b = normalize_block(1, &[1.2, 0.3], &[2.0, 2.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "no STO-3G data")]
    fn missing_element_data_panics_with_context() {
        let m = crate::Molecule::neutral(vec![crate::Atom { element: Element::Ne, pos: [0.0; 3] }]);
        let _ = BasisSet::build(&m, BasisName::Sto3g);
    }

    use crate::element::Element;
}
