//! Literal basis-set data (exponents and raw contraction coefficients) for
//! H, He, C, N, O — everything the paper's graphene systems and the
//! validation molecules require.
//!
//! Values are the standard published Pople parameters (Hehre/Ditchfield/
//! Pople STO-3G and 6-31G families, as distributed by GAMESS and the EMSL
//! basis set exchange). Raw coefficients are stored unnormalized; the
//! builder in [`super`] normalizes them.

use crate::basis::BasisName;
use crate::element::Element;

/// One shell's worth of raw data: shared exponents plus one `(l, coefs)`
/// block per angular momentum (two blocks for combined SP shells).
pub struct ShellData {
    pub exps: &'static [f64],
    pub blocks: &'static [(usize, &'static [f64])],
}

// ---------------------------------------------------------------- STO-3G --

const STO3G_H: &[ShellData] = &[ShellData {
    exps: &[3.425250914, 0.6239137298, 0.1688554040],
    blocks: &[(0, &[0.1543289673, 0.5353281423, 0.4446345422])],
}];

const STO3G_HE: &[ShellData] = &[ShellData {
    exps: &[6.362421394, 1.158922999, 0.3136497915],
    blocks: &[(0, &[0.1543289673, 0.5353281423, 0.4446345422])],
}];

const STO3G_C: &[ShellData] = &[
    ShellData {
        exps: &[71.61683735, 13.04509632, 3.530512160],
        blocks: &[(0, &[0.1543289673, 0.5353281423, 0.4446345422])],
    },
    ShellData {
        exps: &[2.941249355, 0.6834830964, 0.2222899159],
        blocks: &[
            (0, &[-0.09996722919, 0.3995128261, 0.7001154689]),
            (1, &[0.1559162750, 0.6076837186, 0.3919573931]),
        ],
    },
];

const STO3G_N: &[ShellData] = &[
    ShellData {
        exps: &[99.10616896, 18.05231239, 4.885660238],
        blocks: &[(0, &[0.1543289673, 0.5353281423, 0.4446345422])],
    },
    ShellData {
        exps: &[3.780455879, 0.8784966449, 0.2857143744],
        blocks: &[
            (0, &[-0.09996722919, 0.3995128261, 0.7001154689]),
            (1, &[0.1559162750, 0.6076837186, 0.3919573931]),
        ],
    },
];

const STO3G_O: &[ShellData] = &[
    ShellData {
        exps: &[130.7093214, 23.80886605, 6.443608313],
        blocks: &[(0, &[0.1543289673, 0.5353281423, 0.4446345422])],
    },
    ShellData {
        exps: &[5.033151319, 1.169596125, 0.3803889600],
        blocks: &[
            (0, &[-0.09996722919, 0.3995128261, 0.7001154689]),
            (1, &[0.1559162750, 0.6076837186, 0.3919573931]),
        ],
    },
];

// ----------------------------------------------------------------- 6-31G --

const B631G_H: &[ShellData] = &[
    ShellData {
        exps: &[18.73113696, 2.825394365, 0.6401216923],
        blocks: &[(0, &[0.03349460434, 0.2347269535, 0.8137573261])],
    },
    ShellData { exps: &[0.1612777588], blocks: &[(0, &[1.0])] },
];

const B631G_HE: &[ShellData] = &[
    ShellData {
        exps: &[38.42163400, 5.778030000, 1.241774000],
        blocks: &[(0, &[0.02376600, 0.1546790, 0.4696300])],
    },
    ShellData { exps: &[0.2979640], blocks: &[(0, &[1.0])] },
];

const B631G_C: &[ShellData] = &[
    ShellData {
        exps: &[3047.524880, 457.3695180, 103.9486850, 29.21015530, 9.286662960, 3.163926960],
        blocks: &[(
            0,
            &[
                0.001834737132,
                0.01403732281,
                0.06884262226,
                0.2321844432,
                0.4679413484,
                0.3623119853,
            ],
        )],
    },
    ShellData {
        exps: &[7.868272350, 1.881288540, 0.5442492580],
        blocks: &[
            (0, &[-0.1193324198, -0.1608541517, 1.143456438]),
            (1, &[0.06899906659, 0.3164239610, 0.7443082909]),
        ],
    },
    ShellData { exps: &[0.1687144782], blocks: &[(0, &[1.0]), (1, &[1.0])] },
];

const B631G_N: &[ShellData] = &[
    ShellData {
        exps: &[4173.511460, 627.4579110, 142.9020930, 40.23432930, 13.03269600, 4.603090990],
        blocks: &[(
            0,
            &[
                0.001834772160,
                0.01399462700,
                0.06858655181,
                0.2322408730,
                0.4690699481,
                0.3604551991,
            ],
        )],
    },
    ShellData {
        exps: &[11.62636186, 2.716279807, 0.7722183966],
        blocks: &[
            (0, &[-0.1149611817, -0.1691174786, 1.145851947]),
            (1, &[0.06757974388, 0.3239072959, 0.7408951398]),
        ],
    },
    ShellData { exps: &[0.2120314975], blocks: &[(0, &[1.0]), (1, &[1.0])] },
];

const B631G_O: &[ShellData] = &[
    ShellData {
        exps: &[5484.671660, 825.2349460, 188.0469580, 52.96450000, 16.89757040, 5.799635340],
        blocks: &[(
            0,
            &[
                0.001831074430,
                0.01395017220,
                0.06844507810,
                0.2327143360,
                0.4701928980,
                0.3585208530,
            ],
        )],
    },
    ShellData {
        exps: &[15.53961625, 3.599933586, 1.013761750],
        blocks: &[
            (0, &[-0.1107775495, -0.1480262627, 1.130767015]),
            (1, &[0.07087426823, 0.3397528391, 0.7271585773]),
        ],
    },
    ShellData { exps: &[0.2700058226], blocks: &[(0, &[1.0]), (1, &[1.0])] },
];

// Polarization shells; standard exponents (d = 0.8 on C/N/O, p = 1.1 on H).
const P_H: ShellData = ShellData { exps: &[1.1], blocks: &[(1, &[1.0])] };
const B631GDP_H: &[ShellData] = &[
    ShellData { exps: B631G_H[0].exps, blocks: B631G_H[0].blocks },
    ShellData { exps: B631G_H[1].exps, blocks: B631G_H[1].blocks },
    P_H,
];

const D_C: ShellData = ShellData { exps: &[0.8], blocks: &[(2, &[1.0])] };
const D_N: ShellData = ShellData { exps: &[0.8], blocks: &[(2, &[1.0])] };
const D_O: ShellData = ShellData { exps: &[0.8], blocks: &[(2, &[1.0])] };

const B631GD_C: &[ShellData] = &[
    ShellData { exps: B631G_C[0].exps, blocks: B631G_C[0].blocks },
    ShellData { exps: B631G_C[1].exps, blocks: B631G_C[1].blocks },
    ShellData { exps: B631G_C[2].exps, blocks: B631G_C[2].blocks },
    D_C,
];
const B631GD_N: &[ShellData] = &[
    ShellData { exps: B631G_N[0].exps, blocks: B631G_N[0].blocks },
    ShellData { exps: B631G_N[1].exps, blocks: B631G_N[1].blocks },
    ShellData { exps: B631G_N[2].exps, blocks: B631G_N[2].blocks },
    D_N,
];
const B631GD_O: &[ShellData] = &[
    ShellData { exps: B631G_O[0].exps, blocks: B631G_O[0].blocks },
    ShellData { exps: B631G_O[1].exps, blocks: B631G_O[1].blocks },
    ShellData { exps: B631G_O[2].exps, blocks: B631G_O[2].blocks },
    D_O,
];

/// Raw shell data for `element` in `basis`, or `None` if not tabulated.
pub fn shells_for(element: Element, basis: BasisName) -> Option<&'static [ShellData]> {
    match (basis, element) {
        (BasisName::Sto3g, Element::H) => Some(STO3G_H),
        (BasisName::Sto3g, Element::He) => Some(STO3G_HE),
        (BasisName::Sto3g, Element::C) => Some(STO3G_C),
        (BasisName::Sto3g, Element::N) => Some(STO3G_N),
        (BasisName::Sto3g, Element::O) => Some(STO3G_O),
        (BasisName::B631g, Element::H) => Some(B631G_H),
        (BasisName::B631g, Element::He) => Some(B631G_HE),
        (BasisName::B631g, Element::C) => Some(B631G_C),
        (BasisName::B631g, Element::N) => Some(B631G_N),
        (BasisName::B631g, Element::O) => Some(B631G_O),
        // 6-31G(d): hydrogen and helium are unchanged from 6-31G.
        (BasisName::B631gd, Element::H) => Some(B631G_H),
        (BasisName::B631gd, Element::He) => Some(B631G_HE),
        (BasisName::B631gd, Element::C) => Some(B631GD_C),
        (BasisName::B631gd, Element::N) => Some(B631GD_N),
        (BasisName::B631gd, Element::O) => Some(B631GD_O),
        // 6-31G(d,p): heavy atoms as in 6-31G(d), hydrogen gains a p shell.
        (BasisName::B631gdp, Element::H) => Some(B631GDP_H),
        (BasisName::B631gdp, Element::He) => Some(B631G_HE),
        (BasisName::B631gdp, Element::C) => Some(B631GD_C),
        (BasisName::B631gdp, Element::N) => Some(B631GD_N),
        (BasisName::B631gdp, Element::O) => Some(B631GD_O),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_has_consistent_lengths() {
        for basis in [BasisName::Sto3g, BasisName::B631g, BasisName::B631gd, BasisName::B631gdp] {
            for el in [Element::H, Element::He, Element::C, Element::N, Element::O] {
                let shells = shells_for(el, basis).unwrap();
                for sh in shells {
                    assert!(!sh.exps.is_empty());
                    for &(l, coefs) in sh.blocks {
                        assert!(l <= 2);
                        assert_eq!(
                            coefs.len(),
                            sh.exps.len(),
                            "{:?} {:?}: coef/exp length mismatch",
                            basis,
                            el
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exponents_are_positive_and_descending() {
        for basis in [BasisName::Sto3g, BasisName::B631g, BasisName::B631gd] {
            for el in [Element::H, Element::C, Element::O] {
                for sh in shells_for(el, basis).unwrap() {
                    for w in sh.exps.windows(2) {
                        assert!(w[0] > w[1], "exponents must descend within a shell");
                    }
                    assert!(*sh.exps.last().unwrap() > 0.0);
                }
            }
        }
    }

    #[test]
    fn d_shells_only_in_631gd_heavy_atoms() {
        let has_d = |el| {
            shells_for(el, BasisName::B631gd)
                .unwrap()
                .iter()
                .any(|s| s.blocks.iter().any(|b| b.0 == 2))
        };
        assert!(has_d(Element::C));
        assert!(has_d(Element::O));
        assert!(!has_d(Element::H));
        let g_has_d = shells_for(Element::C, BasisName::B631g)
            .unwrap()
            .iter()
            .any(|s| s.blocks.iter().any(|b| b.0 == 2));
        assert!(!g_has_d);
    }
}
