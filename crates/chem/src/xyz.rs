//! XYZ-format molecular geometry I/O.
//!
//! The standard interchange format: first line atom count, second line a
//! comment, then `symbol x y z` per atom in Ångström. Lets users run the
//! code on their own structures (the paper's artifact distributes its
//! graphene systems as coordinate files).

use crate::element::Element;
use crate::molecule::{Atom, Molecule};
use crate::ANGSTROM;

/// Parse an XYZ document. The comment line may carry `charge=<int>`.
pub fn parse_xyz(text: &str) -> Result<Molecule, String> {
    let mut lines = text.lines();
    let n: usize = lines
        .next()
        .ok_or("empty XYZ input")?
        .trim()
        .parse()
        .map_err(|e| format!("bad atom count: {e}"))?;
    let comment = lines.next().unwrap_or("");
    let charge = comment
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("charge="))
        .map(|v| v.parse::<i32>().map_err(|e| format!("bad charge: {e}")))
        .transpose()?
        .unwrap_or(0);

    let mut atoms = Vec::with_capacity(n);
    for (k, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if atoms.len() == n {
            return Err(format!("more atom lines than the declared count {n}"));
        }
        let mut parts = line.split_whitespace();
        let sym = parts.next().ok_or(format!("line {}: missing symbol", k + 3))?;
        let element =
            Element::from_symbol(sym).ok_or(format!("line {}: unknown element '{sym}'", k + 3))?;
        let mut coord = [0.0; 3];
        for c in &mut coord {
            *c = parts
                .next()
                .ok_or(format!("line {}: missing coordinate", k + 3))?
                .parse::<f64>()
                .map_err(|e| format!("line {}: bad coordinate: {e}", k + 3))?
                * ANGSTROM;
        }
        atoms.push(Atom { element, pos: coord });
    }
    if atoms.len() != n {
        return Err(format!("declared {n} atoms but found {}", atoms.len()));
    }
    Ok(Molecule::new(atoms, charge))
}

/// Serialize a molecule to XYZ (Ångström), embedding the charge in the
/// comment line so a round trip is lossless.
pub fn to_xyz(mol: &Molecule, comment: &str) -> String {
    let mut out = format!("{}\ncharge={} {}\n", mol.n_atoms(), mol.charge(), comment);
    for a in mol.atoms() {
        out.push_str(&format!(
            "{:2} {:18.10} {:18.10} {:18.10}\n",
            a.element.symbol(),
            a.pos[0] / ANGSTROM,
            a.pos[1] / ANGSTROM,
            a.pos[2] / ANGSTROM
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::small;

    #[test]
    fn roundtrip_preserves_geometry_and_charge() {
        let mol = small::heh_cation();
        let text = to_xyz(&mol, "test");
        let back = parse_xyz(&text).unwrap();
        assert_eq!(back.n_atoms(), mol.n_atoms());
        assert_eq!(back.charge(), mol.charge());
        for (a, b) in mol.atoms().iter().zip(back.atoms()) {
            assert_eq!(a.element, b.element);
            for k in 0..3 {
                assert!((a.pos[k] - b.pos[k]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn parses_a_handwritten_file() {
        let text = "3\nwater molecule\nO 0.0 0.0 0.117\nH 0.0 0.757 -0.469\nH 0.0 -0.757 -0.469\n";
        let mol = parse_xyz(text).unwrap();
        assert_eq!(mol.n_atoms(), 3);
        assert_eq!(mol.charge(), 0);
        assert_eq!(mol.atoms()[0].element, Element::O);
        // Coordinates converted to Bohr.
        assert!((mol.atoms()[1].pos[1] - 0.757 * ANGSTROM).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_xyz("").is_err());
        assert!(parse_xyz("x\ncomment\n").is_err());
        assert!(parse_xyz("1\nc\nXx 0 0 0\n").is_err());
        assert!(parse_xyz("2\nc\nH 0 0 0\n").is_err(), "too few atoms");
        assert!(parse_xyz("1\nc\nH 0 0\n").is_err(), "missing coordinate");
        assert!(parse_xyz("1\nc\nH 0 0 0\nH 1 1 1\n").is_err(), "too many atoms");
    }

    #[test]
    fn charge_tag_is_parsed() {
        let text = "1\ncharge=-1 anion\nH 0 0 0\n";
        let mol = parse_xyz(text).unwrap();
        assert_eq!(mol.charge(), -1);
        assert_eq!(mol.n_electrons(), 2);
    }
}
