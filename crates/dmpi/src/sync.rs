//! Minimal mutex wrapper over `std::sync::Mutex` with a `parking_lot`-style
//! infallible `lock()` (poisoning is ignored: a panicked holder leaves data
//! in a consistent-enough state for the runtimes here, which only guard
//! bookkeeping vectors). Keeps the workspace free of external dependencies
//! so it builds without network access.

/// Mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}
