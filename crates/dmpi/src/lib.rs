//! MPI/DDI substrate: an in-process SPMD rank runtime.
//!
//! GAMESS parallelizes through the Distributed Data Interface (DDI), a thin
//! layer over MPI providing a global dynamic load-balancing counter
//! (`ddi_dlbnext`), global sums (`ddi_gsumf`) and one-sided distributed
//! arrays. There is no mature Rust MPI stack (the reproduction band calls
//! this out explicitly), so this crate *is* that substrate: ranks are OS
//! threads with disjoint owned memory, point-to-point messages travel over
//! channels, and collectives synchronize through a shared buffer guarded by
//! the world barrier.
//!
//! What makes this a faithful stand-in rather than a toy:
//!
//! * **Replication is real.** Each rank allocates its own matrices through
//!   [`Rank::alloc_f64`], and [`memory::MemoryTracker`] records per-rank
//!   current/peak bytes — so the paper's Table 2 memory claims are
//!   *measured* on real allocations, not asserted from a formula.
//! * **Identical API semantics.** `dlb_next` is a single global
//!   fetch-and-add counter exactly like `ddi_dlbnext`; `gsumf` is an
//!   all-reduce sum over `f64` slices exactly like `ddi_gsumf`.
//! * **DDI process model.** [`ddi::DdiMode`] captures the data-server vs
//!   MPI-3 one-sided distinction the paper discusses in §6.2 (data servers
//!   double the process count per node and hence the replicated footprint).

//! * **Failure is a first-class input.** [`fault::FaultPlan`] schedules
//!   deterministic rank kills, stragglers and message faults;
//!   [`fault::TaskLeases`] and the failure-aware barrier/reduction let
//!   survivors reclaim a dead rank's tasks and finish the computation.

pub mod ddi;
pub mod dlb;
pub mod fault;
pub mod memory;
pub mod sync;
pub mod world;

pub use ddi::{DdiMode, DistributedArray, LinkStats};
pub use fault::{
    CommError, FaultPlan, FaultSpec, FtBarrier, LeaseClaim, LeaseMode, RetryPolicy, TaskLeases,
};
pub use memory::{MemoryReport, MemoryTracker, TrackedBuf};
pub use world::{
    run_world, run_world_with_config, run_world_with_faults, Rank, WorldConfig, WorldResult,
};
