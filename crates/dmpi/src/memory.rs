//! Per-rank memory accounting.
//!
//! The central claim of the paper is a memory-footprint reduction (Table 2:
//! ~50x for private Fock, ~200x for shared Fock). To *measure* rather than
//! assert this, every large buffer a Fock algorithm allocates goes through
//! [`TrackedBuf`], and the tracker records current and peak bytes per rank.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Tracks current and peak allocated bytes for every rank of a world.
#[derive(Debug)]
pub struct MemoryTracker {
    current: Vec<AtomicUsize>,
    peak: Vec<AtomicUsize>,
}

impl MemoryTracker {
    pub fn new(n_ranks: usize) -> MemoryTracker {
        MemoryTracker {
            current: (0..n_ranks).map(|_| AtomicUsize::new(0)).collect(),
            peak: (0..n_ranks).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    pub fn n_ranks(&self) -> usize {
        self.current.len()
    }

    pub fn on_alloc(&self, rank: usize, bytes: usize) {
        let cur = self.current[rank].fetch_add(bytes, Ordering::Relaxed) + bytes;
        // Monotone max update.
        let mut peak = self.peak[rank].load(Ordering::Relaxed);
        while cur > peak {
            match self.peak[rank].compare_exchange_weak(
                peak,
                cur,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(p) => peak = p,
            }
        }
    }

    pub fn on_free(&self, rank: usize, bytes: usize) {
        self.current[rank].fetch_sub(bytes, Ordering::Relaxed);
    }

    pub fn report(&self) -> MemoryReport {
        MemoryReport {
            per_rank_peak: self.peak.iter().map(|p| p.load(Ordering::Relaxed)).collect(),
            per_rank_current: self.current.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// Snapshot of the tracker.
#[derive(Clone, Debug)]
pub struct MemoryReport {
    pub per_rank_peak: Vec<usize>,
    pub per_rank_current: Vec<usize>,
}

impl MemoryReport {
    /// Sum of per-rank peaks: the paper's "memory footprint" metric for a
    /// node running all these ranks.
    pub fn total_peak(&self) -> usize {
        self.per_rank_peak.iter().sum()
    }

    pub fn max_rank_peak(&self) -> usize {
        self.per_rank_peak.iter().copied().max().unwrap_or(0)
    }

    /// Bytes still accounted as live (should be 0 after a clean run).
    pub fn total_current(&self) -> usize {
        self.per_rank_current.iter().sum()
    }
}

/// An `f64` buffer whose lifetime is charged against one rank.
pub struct TrackedBuf {
    data: Vec<f64>,
    rank: usize,
    tracker: Arc<MemoryTracker>,
}

impl TrackedBuf {
    pub fn new(len: usize, rank: usize, tracker: Arc<MemoryTracker>) -> TrackedBuf {
        tracker.on_alloc(rank, len * std::mem::size_of::<f64>());
        TrackedBuf { data: vec![0.0; len], rank, tracker }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }
}

impl Drop for TrackedBuf {
    fn drop(&mut self) {
        self.tracker.on_free(self.rank, self.data.len() * std::mem::size_of::<f64>());
    }
}

impl std::ops::Deref for TrackedBuf {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.data
    }
}

impl std::ops::DerefMut for TrackedBuf {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle_tracks_peak() {
        let t = Arc::new(MemoryTracker::new(2));
        {
            let _a = TrackedBuf::new(1000, 0, t.clone());
            {
                let _b = TrackedBuf::new(500, 0, t.clone());
                let r = t.report();
                assert_eq!(r.per_rank_current[0], 1500 * 8);
            }
            let r = t.report();
            assert_eq!(r.per_rank_current[0], 1000 * 8);
            assert_eq!(r.per_rank_peak[0], 1500 * 8);
        }
        let r = t.report();
        assert_eq!(r.total_current(), 0);
        assert_eq!(r.per_rank_peak[0], 1500 * 8, "peak survives frees");
        assert_eq!(r.per_rank_peak[1], 0);
    }

    #[test]
    fn per_rank_isolation() {
        let t = Arc::new(MemoryTracker::new(3));
        let _a = TrackedBuf::new(10, 0, t.clone());
        let _b = TrackedBuf::new(20, 2, t.clone());
        let r = t.report();
        assert_eq!(r.per_rank_peak, vec![80, 0, 160]);
        assert_eq!(r.total_peak(), 240);
        assert_eq!(r.max_rank_peak(), 160);
    }

    #[test]
    fn concurrent_peak_is_monotone() {
        let t = Arc::new(MemoryTracker::new(1));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let _x = TrackedBuf::new(100, 0, t.clone());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let r = t.report();
        assert_eq!(r.total_current(), 0);
        assert!(r.per_rank_peak[0] >= 100 * 8);
        assert!(r.per_rank_peak[0] <= 4 * 100 * 8);
    }

    #[test]
    fn buffer_is_usable_as_slice() {
        let t = Arc::new(MemoryTracker::new(1));
        let mut b = TrackedBuf::new(4, 0, t);
        b[2] = 7.5;
        assert_eq!(&b[..], &[0.0, 0.0, 7.5, 0.0]);
    }
}
