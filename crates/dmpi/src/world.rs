//! SPMD worlds: spawning ranks, barriers, point-to-point messages and
//! collectives — with optional deterministic fault injection.
//!
//! A world can be started with a [`FaultPlan`]
//! via [`run_world_with_faults`]: ranks then die, straggle, or lose
//! messages exactly where the plan says, and the failure-aware
//! primitives ([`Rank::lease_next`], [`Rank::ft_barrier`],
//! [`Rank::try_gsumf`], [`Rank::recv_timeout`]) let survivors regroup
//! and finish the computation.

use crate::dlb::Dlb;
use crate::fault::{
    splitmix64, CommError, FaultPlan, FaultSpec, FtBarrier, LeaseClaim, LeaseMode, RetryPolicy,
    TaskLeases,
};
use crate::memory::{MemoryReport, MemoryTracker, TrackedBuf};
use crate::sync::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Back-off between lease polls while another live rank holds the last
/// outstanding tasks.
const LEASE_POLL: Duration = Duration::from_micros(50);

/// How long a rank parked at a barrier blocks between channel-pumping
/// sweeps. Short enough that a peer's retransmission is re-acked well
/// inside one ack timeout; release itself is condvar-notified, so
/// barrier exit latency does not pay this granularity.
const BARRIER_PUMP_SLICE: Duration = Duration::from_millis(1);

/// Reserved tag for the reliable reduction messages of
/// [`Rank::try_gsumf`].
const TAG_RELIABLE_REDUCE: u64 = u64::MAX - 3;
/// Reserved tag for the reliable broadcast messages of
/// [`Rank::try_gsumf`].
const TAG_RELIABLE_BCAST: u64 = u64::MAX - 4;

/// A tagged point-to-point message. The checksum travels with the
/// payload so corruption injected (or, at real scale, suffered) in
/// flight is detected at the receiver. Reliable-path messages carry a
/// per-edge sequence number (`seq > 0`) for ack correlation and
/// duplicate suppression; acks are empty-payload control messages with
/// `ack = true` echoing the `(tag, seq)` they acknowledge.
struct Message {
    from: usize,
    tag: u64,
    seq: u64,
    ack: bool,
    data: Vec<f64>,
    checksum: u64,
}

fn payload_checksum(data: &[f64]) -> u64 {
    let mut state = 0x9E37_79B9_7F4A_7C15 ^ (data.len() as u64);
    let mut acc = 0u64;
    for v in data {
        state ^= v.to_bits();
        acc ^= splitmix64(&mut state);
    }
    acc
}

struct KillTask {
    task: usize,
    fired: bool,
}

struct ClaimKill {
    rank: usize,
    claim: usize,
    fired: bool,
}

struct EdgeFault {
    from: usize,
    to: usize,
    nth: usize,
    fired: bool,
}

/// Per-world interpreter of a [`FaultPlan`]: tracks which scheduled
/// faults have fired and the per-rank / per-edge ordinals they key on.
struct FaultRuntime {
    seed: u64,
    kill_tasks: Mutex<Vec<KillTask>>,
    random_kill_count: usize,
    random_resolved: AtomicBool,
    claim_kills: Mutex<Vec<ClaimKill>>,
    delays: Vec<(usize, usize, u64)>,
    drops: Mutex<Vec<EdgeFault>>,
    corrupts: Mutex<Vec<EdgeFault>>,
    /// Successful lease claims made by each rank (1-based ordinals).
    claims: Vec<AtomicUsize>,
    /// Messages sent per (from, to) edge (1-based ordinals).
    msg_seq: Mutex<HashMap<(usize, usize), usize>>,
    injected: AtomicUsize,
}

impl FaultRuntime {
    fn new(plan: &FaultPlan, n_ranks: usize) -> Self {
        let mut kill_tasks = Vec::new();
        let mut claim_kills = Vec::new();
        let mut delays = Vec::new();
        let mut drops = Vec::new();
        let mut corrupts = Vec::new();
        let mut random_kill_count = 0;
        for spec in plan.specs() {
            match *spec {
                FaultSpec::KillAtTask { task } => kill_tasks.push(KillTask { task, fired: false }),
                FaultSpec::KillAtClaim { rank, claim } => {
                    claim_kills.push(ClaimKill { rank, claim, fired: false })
                }
                FaultSpec::KillRandom { count } => random_kill_count += count,
                FaultSpec::Delay { rank, claim, millis } => delays.push((rank, claim, millis)),
                FaultSpec::DropMessage { from, to, nth } => {
                    drops.push(EdgeFault { from, to, nth, fired: false })
                }
                FaultSpec::CorruptMessage { from, to, nth } => {
                    corrupts.push(EdgeFault { from, to, nth, fired: false })
                }
            }
        }
        FaultRuntime {
            seed: plan.seed,
            kill_tasks: Mutex::new(kill_tasks),
            random_kill_count,
            random_resolved: AtomicBool::new(false),
            claim_kills: Mutex::new(claim_kills),
            delays,
            drops: Mutex::new(drops),
            corrupts: Mutex::new(corrupts),
            claims: (0..n_ranks).map(|_| AtomicUsize::new(0)).collect(),
            msg_seq: Mutex::new(HashMap::new()),
            injected: AtomicUsize::new(0),
        }
    }

    /// Turn `kill*K` specs into concrete fatal task indices once the
    /// task range is known. Runs once per world (the first lease reset).
    fn resolve_random_kills(&self, n_tasks: usize) {
        if self.random_kill_count == 0 || n_tasks == 0 {
            return;
        }
        if self.random_resolved.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut state = self.seed;
        let mut chosen: Vec<usize> = Vec::new();
        let want = self.random_kill_count.min(n_tasks);
        while chosen.len() < want {
            let t = (splitmix64(&mut state) % n_tasks as u64) as usize;
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        let mut kills = self.kill_tasks.lock();
        kills.extend(chosen.into_iter().map(|task| KillTask { task, fired: false }));
    }

    fn delay_for(&self, rank: usize, claim: usize) -> Option<u64> {
        self.delays.iter().find(|&&(r, c, _)| r == rank && c == claim).map(|&(_, _, ms)| ms)
    }

    /// Check (and mark fired) any kill scheduled for this claim. Kills
    /// are suppressed — but still marked fired — when the victim is the
    /// last live rank, so a plan can never extinguish the whole world.
    fn check_kill(&self, rank: usize, claim: usize, task: usize, live_count: usize) -> bool {
        let mut matched = false;
        {
            let mut kills = self.kill_tasks.lock();
            for k in kills.iter_mut() {
                if !k.fired && k.task == task {
                    k.fired = true;
                    matched = true;
                }
            }
        }
        {
            let mut kills = self.claim_kills.lock();
            for k in kills.iter_mut() {
                if !k.fired && k.rank == rank && k.claim == claim {
                    k.fired = true;
                    matched = true;
                }
            }
        }
        if matched && live_count > 1 {
            self.injected.fetch_add(1, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    fn next_msg_seq(&self, from: usize, to: usize) -> usize {
        let mut seq = self.msg_seq.lock();
        let n = seq.entry((from, to)).or_insert(0);
        *n += 1;
        *n
    }

    fn fire_edge(faults: &Mutex<Vec<EdgeFault>>, from: usize, to: usize, nth: usize) -> bool {
        let mut faults = faults.lock();
        for f in faults.iter_mut() {
            if !f.fired && f.from == from && f.to == to && f.nth == nth {
                f.fired = true;
                return true;
            }
        }
        false
    }
}

/// State shared by every rank of a world.
struct WorldShared {
    n_ranks: usize,
    barrier: FtBarrier,
    dlb: Dlb,
    leases: TaskLeases,
    /// Scratch buffer for collectives; valid only between the barriers of
    /// one collective call.
    coll: Mutex<Vec<f64>>,
    mem: Arc<MemoryTracker>,
    /// Bytes moved per rank: point-to-point payloads plus each rank's
    /// contribution to collectives. The communication volume the cluster
    /// model charges for is thereby observable on real runs.
    comm_bytes: Vec<AtomicU64>,
    /// Liveness flags; a rank marked dead has deregistered from the
    /// barrier and abandoned its task leases.
    alive: Vec<AtomicBool>,
    /// Ranks that died, with reasons, in order of death.
    failures: Mutex<Vec<(usize, String)>>,
    faults: Option<FaultRuntime>,
    /// Retry/backoff policy for the reliable message path and the
    /// failure-aware wait deadlines.
    retry: RetryPolicy,
    /// Reliable-path payload retransmissions (attempts after the first).
    retransmits: AtomicU64,
    /// Acks sent by receivers (including re-acks of deduped duplicates).
    acks: AtomicU64,
    /// Payloads whose checksum verification failed at a receiver.
    corruptions: AtomicU64,
    /// Reliable operations (sends, barriers) that succeeded after at
    /// least one transient failure.
    recoveries: AtomicU64,
}

/// Handle a rank's SPMD closure receives. Not `Clone` — exactly one per
/// rank, like an MPI communicator's view of `MPI_COMM_WORLD`.
pub struct Rank {
    id: usize,
    shared: Arc<WorldShared>,
    senders: Vec<Sender<Message>>,
    /// Wrapped in a mutex so `Rank` stays `Sync` with the std mpsc receiver
    /// (p2p calls are one-rank operations; the lock is uncontended).
    receiver: Mutex<Receiver<Message>>,
    /// Messages received but not yet matched by a `recv` call.
    /// Mutex (not RefCell) so a `Rank` can be shared with an OpenMP-style
    /// thread team; p2p calls themselves remain one-rank operations.
    stash: Mutex<VecDeque<Message>>,
    /// Next reliable sequence number per destination (outgoing edges).
    next_seq: Mutex<HashMap<usize, u64>>,
    /// Sequence numbers already delivered per source (incoming edges) —
    /// the dedup set that makes retransmission at-most-once delivery.
    delivered: Mutex<HashMap<usize, HashSet<u64>>>,
}

/// Everything a finished world returns: per-rank results plus the memory
/// accounting and the fault/recovery summary.
pub struct WorldResult<R> {
    /// One entry per rank, in rank order (dead ranks return whatever
    /// their closure produced on the error path).
    pub per_rank: Vec<R>,
    /// Per-rank memory accounting.
    pub memory: MemoryReport,
    /// Total DLB counter calls (including lease claims).
    pub dlb_calls: usize,
    /// Bytes each rank moved (p2p payloads + collective contributions).
    pub comm_bytes: Vec<u64>,
    /// Ranks that died mid-run, with reasons, in order of death.
    pub failures: Vec<(usize, String)>,
    /// Faults actually injected (kills, delays, drops, corruptions).
    pub faults_injected: usize,
    /// Tasks reclaimed from dead ranks and queued for reissue.
    pub tasks_reclaimed: usize,
    /// Lease claims served from the reissue queue — recovery work
    /// re-executed by survivors.
    pub lease_retries: usize,
    /// Reliable-path payload retransmissions (attempts after the first).
    pub retransmits: u64,
    /// Acks sent by receivers (including re-acks of deduped duplicates).
    pub acks: u64,
    /// Payloads whose checksum verification failed at a receiver.
    pub corruptions_detected: u64,
    /// Reliable operations that succeeded after >= 1 transient failure.
    pub transient_recoveries: u64,
}

impl<R> WorldResult<R> {
    /// Ids of the ranks that died, in order of death.
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.failures.iter().map(|&(r, _)| r).collect()
    }
}

/// Full configuration of a world: rank count, optional fault plan, and
/// the retry/backoff policy governing the reliable message path and
/// failure-aware wait deadlines.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of SPMD ranks to spawn.
    pub n_ranks: usize,
    /// Optional deterministic fault schedule.
    pub faults: Option<FaultPlan>,
    /// Retry/backoff policy (reliable delivery on by default).
    pub retry: RetryPolicy,
}

impl WorldConfig {
    /// Fault-free world with the default (reliable) retry policy.
    pub fn new(n_ranks: usize) -> Self {
        WorldConfig { n_ranks, faults: None, retry: RetryPolicy::default() }
    }
}

/// Run an SPMD function over `n_ranks` ranks (each on its own OS thread)
/// and collect their results. Equivalent to
/// [`run_world_with_faults`]`(n_ranks, None, f)`.
pub fn run_world<R, F>(n_ranks: usize, f: F) -> WorldResult<R>
where
    R: Send,
    F: Fn(&Rank) -> R + Sync,
{
    run_world_with_faults(n_ranks, None, f)
}

/// Run an SPMD function over `n_ranks` ranks under an optional
/// deterministic [`FaultPlan`] and the default [`RetryPolicy`].
pub fn run_world_with_faults<R, F>(
    n_ranks: usize,
    faults: Option<FaultPlan>,
    f: F,
) -> WorldResult<R>
where
    R: Send,
    F: Fn(&Rank) -> R + Sync,
{
    run_world_with_config(WorldConfig { n_ranks, faults, retry: RetryPolicy::default() }, f)
}

/// Run an SPMD function over a fully specified [`WorldConfig`]. If any
/// rank's closure panics, the world still joins every thread and then
/// reports *which* ranks panicked and why, instead of a bare double
/// panic.
pub fn run_world_with_config<R, F>(config: WorldConfig, f: F) -> WorldResult<R>
where
    R: Send,
    F: Fn(&Rank) -> R + Sync,
{
    let WorldConfig { n_ranks, faults, retry } = config;
    assert!(n_ranks >= 1);
    let shared = Arc::new(WorldShared {
        n_ranks,
        barrier: FtBarrier::new(n_ranks),
        dlb: Dlb::new(),
        leases: TaskLeases::new(n_ranks),
        coll: Mutex::new(Vec::new()),
        mem: Arc::new(MemoryTracker::new(n_ranks)),
        comm_bytes: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
        alive: (0..n_ranks).map(|_| AtomicBool::new(true)).collect(),
        failures: Mutex::new(Vec::new()),
        faults: faults.as_ref().map(|p| FaultRuntime::new(p, n_ranks)),
        retry,
        retransmits: AtomicU64::new(0),
        acks: AtomicU64::new(0),
        corruptions: AtomicU64::new(0),
        recoveries: AtomicU64::new(0),
    });
    let mut senders = Vec::with_capacity(n_ranks);
    let mut receivers = Vec::with_capacity(n_ranks);
    for _ in 0..n_ranks {
        let (s, r) = channel();
        senders.push(s);
        receivers.push(r);
    }
    let ranks: Vec<Rank> = receivers
        .into_iter()
        .enumerate()
        .map(|(id, receiver)| Rank {
            id,
            shared: shared.clone(),
            senders: senders.clone(),
            receiver: Mutex::new(receiver),
            stash: Mutex::new(VecDeque::new()),
            next_seq: Mutex::new(HashMap::new()),
            delivered: Mutex::new(HashMap::new()),
        })
        .collect();

    let per_rank = std::thread::scope(|scope| {
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|rank| {
                let f = &f;
                scope.spawn(move || {
                    phi_trace::set_rank(rank.id as u32);
                    f(&rank)
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n_ranks);
        let mut panics: Vec<(usize, String)> = Vec::new();
        for (id, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => out.push(r),
                Err(payload) => panics.push((id, panic_message(payload))),
            }
        }
        if !panics.is_empty() {
            let detail: Vec<String> =
                panics.iter().map(|(id, msg)| format!("rank {id}: {msg}")).collect();
            panic!("{} of {n_ranks} ranks panicked — {}", panics.len(), detail.join("; "));
        }
        out
    });

    // World-global counters, emitted once per world so trace totals
    // reconcile exactly with the WorldResult fields below.
    phi_trace::counter("dlb.calls", shared.dlb.calls_made() as u64);
    phi_trace::counter("tasks.reclaimed", shared.leases.reclaimed() as u64);
    phi_trace::counter("comm.retransmits", shared.retransmits.load(Ordering::SeqCst));
    phi_trace::counter("comm.acks", shared.acks.load(Ordering::SeqCst));
    phi_trace::counter("comm.corruptions", shared.corruptions.load(Ordering::SeqCst));
    phi_trace::counter("comm.recoveries", shared.recoveries.load(Ordering::SeqCst));

    let failures = shared.failures.lock().clone();
    WorldResult {
        per_rank,
        memory: shared.mem.report(),
        dlb_calls: shared.dlb.calls_made(),
        comm_bytes: shared.comm_bytes.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        failures,
        faults_injected: shared.faults.as_ref().map_or(0, |fr| fr.injected.load(Ordering::SeqCst)),
        tasks_reclaimed: shared.leases.reclaimed(),
        lease_retries: shared.leases.reissued_claims(),
        retransmits: shared.retransmits.load(Ordering::SeqCst),
        acks: shared.acks.load(Ordering::SeqCst),
        corruptions_detected: shared.corruptions.load(Ordering::SeqCst),
        transient_recoveries: shared.recoveries.load(Ordering::SeqCst),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Rank {
    pub fn rank(&self) -> usize {
        self.id
    }

    pub fn size(&self) -> usize {
        self.shared.n_ranks
    }

    pub fn is_root(&self) -> bool {
        self.id == 0
    }

    // ----------------------------------------------------- liveness -----

    /// Whether this rank is still alive (i.e. not killed by fault
    /// injection).
    pub fn alive(&self) -> bool {
        self.shared.alive[self.id].load(Ordering::SeqCst)
    }

    /// Whether fault injection is active in this world. Builders use
    /// this to pick recovery-friendly settings (e.g. flush cadence).
    pub fn faults_enabled(&self) -> bool {
        self.shared.faults.is_some()
    }

    /// Number of ranks currently alive.
    pub fn live_count(&self) -> usize {
        self.shared.alive.iter().filter(|a| a.load(Ordering::SeqCst)).count()
    }

    /// True if this rank is the lowest-ranked survivor — the coordinator
    /// role that falls back from rank 0 when rank 0 dies.
    pub fn is_lowest_live(&self) -> bool {
        self.alive() && (0..self.id).all(|r| !self.shared.alive[r].load(Ordering::SeqCst))
    }

    /// Ranks that have died so far, in order of death.
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.shared.failures.lock().iter().map(|&(r, _)| r).collect()
    }

    /// Mark this rank dead: record the reason, hand its task leases back
    /// for reissue, and deregister from the world barrier so survivors
    /// regroup instead of deadlocking.
    fn mark_dead(&self, reason: String) {
        if !self.shared.alive[self.id].swap(false, Ordering::SeqCst) {
            return;
        }
        phi_trace::instant("rank.died", self.id as u64);
        self.shared.failures.lock().push((self.id, reason));
        self.shared.leases.on_death(self.id);
        self.shared.barrier.deregister();
    }

    // ------------------------------------------------------ barriers ----

    /// World barrier (legacy API; panics if the barrier fails).
    pub fn barrier(&self) {
        self.ft_barrier().unwrap_or_else(|e| panic!("rank {}: barrier failed: {e}", self.id));
    }

    /// Failure-aware world barrier: only live ranks participate, a dead
    /// caller errors immediately, and a wedged barrier times out (after
    /// the [`RetryPolicy`] `ft_timeout`) instead of hanging forever.
    ///
    /// This is a *progress* barrier: while parked, the rank keeps
    /// draining and acking its message channel. That
    /// matters for reliable delivery — a rank that finished its part of
    /// a collective and reached the exit barrier must still re-ack a
    /// peer's retransmissions (whose original ack the network lost), or
    /// the peer would retry into silence and burn its budget on a fault
    /// that was already recovered.
    pub fn ft_barrier(&self) -> Result<(), CommError> {
        if !self.alive() {
            return Err(CommError::SelfDead);
        }
        let _span = phi_trace::span("mpi.barrier");
        let Some(gen) = self.shared.barrier.arrive() else {
            return Ok(()); // our arrival completed the barrier
        };
        let deadline = Instant::now() + self.shared.retry.ft_timeout;
        loop {
            if self.shared.barrier.wait_released(gen, BARRIER_PUMP_SLICE) {
                return Ok(());
            }
            if !self.alive() {
                // deregister (in mark_dead) already withdrew our slot
                // from `expected`; drop the pending arrival too.
                self.shared.barrier.withdraw(gen);
                return Err(CommError::SelfDead);
            }
            if Instant::now() >= deadline {
                if self.shared.barrier.withdraw(gen) {
                    return Err(CommError::Timeout { what: "barrier" });
                }
                return Ok(()); // released at the last instant
            }
            self.pump_channel();
        }
    }

    /// Drain every already-delivered message through
    /// [`pump`](Self::pump), stashing survivors for later receives.
    /// Safe wherever the rank has no reliable send in flight (sends
    /// block until acked, so a rank parked at a barrier never does).
    fn pump_channel(&self) {
        while let Ok(msg) = { self.receiver.lock().try_recv() } {
            if let Some(m) = self.pump(msg) {
                self.stash.lock().push_back(m);
            }
        }
    }

    // ----------------------------------------------------------- dlb ----

    /// Claim the next global task index (`ddi_dlbnext`).
    pub fn dlb_next(&self) -> usize {
        self.shared.dlb.next()
    }

    /// Collective reset of the DLB counter (call from all ranks).
    pub fn dlb_reset(&self) {
        self.barrier();
        if self.is_root() {
            self.shared.dlb.reset();
        }
        self.barrier();
    }

    // -------------------------------------------------- task leases -----

    /// Collective reset of the lease table over `0..n_tasks` (the
    /// failure-aware `dlb_reset`). Call from every live rank.
    pub fn lease_reset(&self, n_tasks: usize, mode: LeaseMode) -> Result<(), CommError> {
        self.ft_barrier()?;
        if self.is_lowest_live() {
            self.shared.leases.reset(n_tasks, mode);
            self.shared.dlb.reset();
            if let Some(fr) = &self.shared.faults {
                fr.resolve_random_kills(n_tasks);
            }
        }
        self.ft_barrier()?;
        Ok(())
    }

    /// Claim the next task lease (the failure-aware `ddi_dlbnext`).
    ///
    /// `Ok(Some(task))` leases a task to this rank — fresh work or a
    /// reissued task reclaimed from a dead rank. `Ok(None)` means every
    /// task is complete (not merely handed out): while outstanding tasks
    /// are leased to other live ranks this call polls, because those
    /// tasks may yet fail back into the reissue queue. Scheduled faults
    /// (kills, delays) fire here, after the claim succeeds, so a killed
    /// rank always dies holding a lease that survivors must reclaim.
    pub fn lease_next(&self) -> Result<Option<usize>, CommError> {
        if !self.alive() {
            return Err(CommError::SelfDead);
        }
        // DLB wait: claim-lock contention plus any Pending polling until
        // a task (or exhaustion) arrives — the paper's idle-time metric.
        let _span = phi_trace::span("dlb.wait");
        let deadline = Instant::now() + self.shared.retry.ft_timeout;
        loop {
            match self.shared.leases.claim(self.id) {
                LeaseClaim::Task { task, reissued, prev_owner } => {
                    if reissued {
                        // aux names the original (dead) claimant so
                        // recovery work is attributable in the trace.
                        phi_trace::instant_with(
                            "task.reissued",
                            task as u64,
                            prev_owner.map_or(u64::MAX, |r| r as u64),
                        );
                    }
                    self.shared.dlb.note_call();
                    if let Some(fr) = &self.shared.faults {
                        let claim_no = fr.claims[self.id].fetch_add(1, Ordering::SeqCst) + 1;
                        if let Some(ms) = fr.delay_for(self.id, claim_no) {
                            fr.injected.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(Duration::from_millis(ms));
                        }
                        if fr.check_kill(self.id, claim_no, task, self.live_count()) {
                            self.mark_dead(format!(
                                "fault injection: killed holding task {task} (claim #{claim_no})"
                            ));
                            return Err(CommError::SelfDead);
                        }
                    }
                    return Ok(Some(task));
                }
                LeaseClaim::Exhausted => {
                    self.shared.dlb.note_call();
                    return Ok(None);
                }
                LeaseClaim::Pending => {
                    if Instant::now() >= deadline {
                        return Err(CommError::Timeout { what: "task lease" });
                    }
                    std::thread::sleep(LEASE_POLL);
                }
            }
        }
    }

    /// Mark a leased task complete. For [`LeaseMode::Volatile`] this
    /// still only durably counts while this rank stays alive.
    pub fn lease_complete(&self, task: usize) {
        self.shared.leases.complete(task);
    }

    // ------------------------------------------------------- memory -----

    /// Allocate a memory-tracked buffer charged to this rank.
    pub fn alloc_f64(&self, len: usize) -> TrackedBuf {
        TrackedBuf::new(len, self.id, self.shared.mem.clone())
    }

    /// Record an allocation this rank made outside [`TrackedBuf`] (e.g.
    /// thread-private buffers inside an OpenMP region).
    pub fn charge_bytes(&self, bytes: usize) {
        self.shared.mem.on_alloc(self.id, bytes);
    }

    pub fn release_bytes(&self, bytes: usize) {
        self.shared.mem.on_free(self.id, bytes);
    }

    // ---------------------------------------------------------- p2p -----

    /// Non-blocking tagged send to `dest` (legacy API; panics on error).
    pub fn send(&self, dest: usize, tag: u64, data: &[f64]) {
        self.try_send(dest, tag, data).unwrap_or_else(|e| {
            panic!("rank {}: send(dest={dest}, tag={tag}) failed: {e}", self.id)
        });
    }

    /// Non-blocking tagged send to `dest` with raw (fire-and-forget)
    /// semantics. Under fault injection the scheduled message on this
    /// edge may be silently dropped or have its payload corrupted in
    /// flight — and stays lost: recovery is the caller's problem. The
    /// reliable path is [`send_reliable`](Self::send_reliable).
    pub fn try_send(&self, dest: usize, tag: u64, data: &[f64]) -> Result<(), CommError> {
        self.post(dest, tag, 0, false, data, true)
    }

    /// One physical transmission on the `self -> dest` edge. Every
    /// outgoing message — raw, reliable data, retransmission, or ack —
    /// funnels through here, so injected edge faults key on physical
    /// 1-based transmission ordinals. `charge` controls communication-
    /// volume accounting: collectives charge each rank's contribution
    /// once at a higher level, and the protocol's acks/retransmits are
    /// never charged.
    fn post(
        &self,
        dest: usize,
        tag: u64,
        seq: u64,
        ack: bool,
        data: &[f64],
        charge: bool,
    ) -> Result<(), CommError> {
        if !self.alive() {
            return Err(CommError::SelfDead);
        }
        let mut payload = data.to_vec();
        let mut checksum = payload_checksum(data);
        if let Some(fr) = &self.shared.faults {
            let nth = fr.next_msg_seq(self.id, dest);
            if FaultRuntime::fire_edge(&fr.drops, self.id, dest, nth) {
                fr.injected.fetch_add(1, Ordering::SeqCst);
                return Ok(()); // swallowed by the network
            }
            if FaultRuntime::fire_edge(&fr.corrupts, self.id, dest, nth) {
                fr.injected.fetch_add(1, Ordering::SeqCst);
                // Damage the payload but ship the original checksum, so
                // the receiver's verification catches it.
                match payload.first_mut() {
                    Some(x) => *x = -*x + 1.0,
                    None => checksum ^= 0xDEAD_BEEF,
                }
            }
        }
        if charge {
            self.count_bytes(payload.len());
        }
        self.senders[dest]
            .send(Message { from: self.id, tag, seq, ack, data: payload, checksum })
            .map_err(|_| CommError::RankFailed { rank: dest })
    }

    fn count_bytes(&self, elems: usize) {
        self.shared.comm_bytes[self.id]
            .fetch_add((elems * std::mem::size_of::<f64>()) as u64, Ordering::Relaxed);
    }

    fn verify(&self, msg: Message) -> Result<Vec<f64>, CommError> {
        if payload_checksum(&msg.data) != msg.checksum {
            self.shared.corruptions.fetch_add(1, Ordering::SeqCst);
            phi_trace::instant("comm.corrupt_detected", msg.from as u64);
            Err(CommError::CorruptPayload { from: msg.from, tag: msg.tag })
        } else {
            Ok(msg.data)
        }
    }

    /// Housekeeping applied to every message pulled off the channel.
    /// Returns the message if it should be kept (matched or stashed);
    /// `None` if the protocol consumed it: stale acks are discarded,
    /// corrupt reliable payloads are dropped (the sender's ack timeout
    /// drives the retransmission that recovers them), and duplicate
    /// reliable deliveries are suppressed but re-acked — the first ack
    /// may be what the network lost.
    fn pump(&self, msg: Message) -> Option<Message> {
        if msg.ack {
            // An ack reaching a generic receive path is stale: acks are
            // awaited synchronously right after their data send.
            return None;
        }
        if msg.seq == 0 {
            return Some(msg); // raw message; verified when matched
        }
        if payload_checksum(&msg.data) != msg.checksum {
            self.shared.corruptions.fetch_add(1, Ordering::SeqCst);
            phi_trace::instant("comm.corrupt_detected", msg.from as u64);
            return None;
        }
        let fresh = self.delivered.lock().entry(msg.from).or_default().insert(msg.seq);
        if self.shared.retry.reliable() {
            // Ack delivery into this rank's address space. A dead rank
            // cannot ack — its peers' retry budgets will conclude so.
            let _ = self.post(msg.from, msg.tag, msg.seq, true, &[], false);
            self.shared.acks.fetch_add(1, Ordering::SeqCst);
        }
        if fresh {
            Some(msg)
        } else {
            None
        }
    }

    /// Blocking receive matching `(from, tag)` (legacy API; panics if
    /// the message never arrives or fails verification).
    pub fn recv(&self, from: usize, tag: u64) -> Vec<f64> {
        self.recv_timeout(from, tag, self.shared.retry.recv_timeout).unwrap_or_else(|e| {
            panic!("rank {}: recv(from={from}, tag={tag}) failed: {e}", self.id)
        })
    }

    /// Receive the message matching `(from, tag)`, waiting at most
    /// `timeout`. Unmatched messages are stashed for later calls, so
    /// tagged out-of-order delivery works; a message that never arrives
    /// returns [`CommError::Timeout`] instead of hanging forever, and a
    /// payload failing its checksum returns
    /// [`CommError::CorruptPayload`]. Messages from a peer's
    /// [`send_reliable`](Self::send_reliable) are acked and deduplicated
    /// transparently.
    pub fn recv_timeout(
        &self,
        from: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f64>, CommError> {
        // Check earlier unmatched messages first.
        {
            let mut stash = self.stash.lock();
            if let Some(pos) = stash.iter().position(|m| m.from == from && m.tag == tag) {
                let msg = stash.remove(pos).expect("position is valid");
                return self.verify(msg);
            }
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CommError::Timeout { what: "recv" });
            }
            let msg = match self.receiver.lock().recv_timeout(remaining) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => return Err(CommError::Timeout { what: "recv" }),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::RankFailed { rank: from })
                }
            };
            let Some(msg) = self.pump(msg) else { continue };
            if msg.from == from && msg.tag == tag {
                return self.verify(msg);
            }
            self.stash.lock().push_back(msg);
        }
    }

    // ------------------------------------------- reliable delivery ------

    /// Reliable tagged send: the payload travels with a per-edge
    /// sequence number, and the call blocks until the receiver's ack
    /// arrives. On a transient failure (payload or ack lost/corrupt in
    /// flight) the sender backs off deterministically and retransmits;
    /// the receiver deduplicates by sequence number, so delivery is
    /// exactly-once even when the ack was what the network lost. A
    /// burned retry budget is fatal:
    /// [`CommError::RetriesExhausted`].
    pub fn send_reliable(&self, dest: usize, tag: u64, data: &[f64]) -> Result<(), CommError> {
        self.send_reliable_inner(dest, tag, data, true)
    }

    fn send_reliable_inner(
        &self,
        dest: usize,
        tag: u64,
        data: &[f64],
        charge: bool,
    ) -> Result<(), CommError> {
        let seq = {
            let mut s = self.next_seq.lock();
            let n = s.entry(dest).or_insert(0);
            *n += 1;
            *n
        };
        let policy = &self.shared.retry;
        if !policy.reliable() {
            return self.post(dest, tag, seq, false, data, charge);
        }
        let mut suffered_transient = false;
        for attempt in 1..=policy.max_attempts {
            if attempt > 1 {
                std::thread::sleep(policy.backoff_for(self.id, dest, attempt - 1));
                self.shared.retransmits.fetch_add(1, Ordering::SeqCst);
                phi_trace::instant("comm.retransmit", dest as u64);
            }
            self.post(dest, tag, seq, false, data, charge && attempt == 1)?;
            match self.wait_ack(dest, tag, seq, policy.ack_timeout) {
                Ok(()) => {
                    if suffered_transient {
                        self.shared.recoveries.fetch_add(1, Ordering::SeqCst);
                        phi_trace::instant("comm.recovered", dest as u64);
                    }
                    return Ok(());
                }
                Err(e) if e.is_transient() => suffered_transient = true,
                Err(e) => return Err(e),
            }
        }
        Err(CommError::RetriesExhausted { to: dest, tag, attempts: policy.max_attempts })
    }

    /// Wait for the ack matching `(dest, tag, seq)`, pumping (acking,
    /// deduplicating, stashing) any cross-traffic that arrives in the
    /// meantime so concurrent reliable exchanges with other peers make
    /// progress.
    fn wait_ack(
        &self,
        dest: usize,
        tag: u64,
        seq: u64,
        timeout: Duration,
    ) -> Result<(), CommError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CommError::Timeout { what: "ack" });
            }
            let msg = match self.receiver.lock().recv_timeout(remaining) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => return Err(CommError::Timeout { what: "ack" }),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::RankFailed { rank: dest })
                }
            };
            if msg.ack {
                if payload_checksum(&msg.data) != msg.checksum {
                    // A corrupt ack proves nothing about delivery; let
                    // the timeout drive a retransmission.
                    self.shared.corruptions.fetch_add(1, Ordering::SeqCst);
                    phi_trace::instant("comm.corrupt_detected", msg.from as u64);
                    continue;
                }
                if msg.from == dest && msg.tag == tag && msg.seq == seq {
                    return Ok(());
                }
                continue; // stale duplicate ack from an earlier exchange
            }
            let Some(msg) = self.pump(msg) else { continue };
            self.stash.lock().push_back(msg);
        }
    }

    /// Receive the next reliable (or raw) message matching `(from,
    /// tag)`, waiting up to the policy's receive deadline. Acking and
    /// deduplication happen in the message pump, so this is just a
    /// policy-timed [`recv_timeout`](Self::recv_timeout).
    pub fn recv_reliable(&self, from: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        self.recv_timeout(from, tag, self.shared.retry.recv_timeout)
    }

    // --------------------------------------------------- collectives ----

    /// Global sum over all ranks, in place (`ddi_gsumf`). Collective: every
    /// rank must call with an equally sized slice. Legacy API; panics if
    /// the underlying failure-aware reduction errors.
    pub fn gsumf(&self, data: &mut [f64]) {
        self.try_gsumf(data).unwrap_or_else(|e| panic!("rank {}: gsumf failed: {e}", self.id));
    }

    /// Failure-aware global sum over the *surviving* ranks, in place:
    /// a binomial reduction tree to the lowest live rank followed by a
    /// binomial broadcast, carried over the reliable message path so a
    /// dropped or corrupt payload anywhere in the tree drains into
    /// retransmission instead of a dead rank. Dead ranks must not call,
    /// and a wedged phase times out instead of hanging.
    ///
    /// The entry barrier freezes the live-rank set: kills only fire
    /// inside [`lease_next`](Self::lease_next), so once every survivor
    /// has entered the collective they all derive the same tree. A
    /// fatal communication failure (retry budget exhausted, peer dead)
    /// escalates into the mark-dead/lease-reclaim path so the
    /// remaining ranks regroup.
    pub fn try_gsumf(&self, data: &mut [f64]) -> Result<(), CommError> {
        if !self.alive() {
            return Err(CommError::SelfDead);
        }
        let _span = phi_trace::span("mpi.gsum");
        // Each rank is charged its contribution once, as a collective;
        // the tree's internal transmissions and acks are not counted
        // on top.
        self.count_bytes(data.len());
        self.ft_barrier()?;
        let live: Vec<usize> = (0..self.shared.n_ranks)
            .filter(|&r| self.shared.alive[r].load(Ordering::SeqCst))
            .collect();
        let me = match live.iter().position(|&r| r == self.id) {
            Some(pos) => pos,
            None => return Err(CommError::SelfDead),
        };
        if let Err(e) = self.tree_exchange(&live, me, data) {
            if e != CommError::SelfDead {
                // The reliable layer already absorbed every transient
                // fault it could; what surfaces here is fatal.
                self.mark_dead(format!("gsum failed on rank {}: {e}", self.id));
            }
            return Err(e);
        }
        self.ft_barrier()?;
        Ok(())
    }

    /// Binomial reduce-to-`live[0]` + broadcast over the live ranks,
    /// addressed by position in `live`, on the reliable message path.
    fn tree_exchange(&self, live: &[usize], me: usize, data: &mut [f64]) -> Result<(), CommError> {
        let p = live.len();
        let mut step = 1;
        while step < p {
            if me & step != 0 {
                self.send_reliable_inner(live[me - step], TAG_RELIABLE_REDUCE, data, false)?;
                break;
            } else if me + step < p {
                let peer = live[me + step];
                let incoming = self.recv_reliable(peer, TAG_RELIABLE_REDUCE)?;
                assert_eq!(
                    incoming.len(),
                    data.len(),
                    "rank {}: gsumf length mismatch (peer rank {peer})",
                    self.id
                );
                for (d, v) in data.iter_mut().zip(&incoming) {
                    *d += v;
                }
            }
            step <<= 1;
        }
        if me != 0 {
            let lowest = me & me.wrapping_neg();
            let parent = live[me - lowest];
            let got = self.recv_reliable(parent, TAG_RELIABLE_BCAST)?;
            assert_eq!(
                got.len(),
                data.len(),
                "rank {}: gsumf length mismatch (parent rank {parent})",
                self.id
            );
            data.copy_from_slice(&got);
        }
        let mut mask = 1usize;
        while mask < p {
            mask <<= 1;
        }
        mask >>= 1;
        let mut bit = if me == 0 { mask } else { (me & me.wrapping_neg()) >> 1 };
        while bit > 0 {
            let dest = me | bit;
            if dest != me && dest < p {
                self.send_reliable_inner(live[dest], TAG_RELIABLE_BCAST, data, false)?;
            }
            bit >>= 1;
        }
        Ok(())
    }

    /// Tree-structured global sum over the point-to-point channels: a
    /// binomial reduce to rank 0 followed by a binomial broadcast. Gives
    /// the same result as [`gsumf`](Self::gsumf) (up to floating-point
    /// association order) while exercising real message traffic — the
    /// communication pattern the cluster model charges for.
    pub fn gsumf_tree(&self, data: &mut [f64]) {
        const TAG_REDUCE: u64 = u64::MAX - 1;
        const TAG_BCAST: u64 = u64::MAX - 2;
        let size = self.size();
        let me = self.id;
        // Binomial reduction: at round k, ranks with bit k set send to
        // rank - 2^k and drop out.
        let mut step = 1;
        while step < size {
            if me & step != 0 {
                self.send(me - step, TAG_REDUCE, data);
                break;
            } else if me + step < size {
                let incoming = self.recv(me + step, TAG_REDUCE);
                assert_eq!(
                    incoming.len(),
                    data.len(),
                    "rank {me}: gsumf_tree length mismatch (peer rank {})",
                    me + step
                );
                for (d, v) in data.iter_mut().zip(&incoming) {
                    *d += v;
                }
            }
            step <<= 1;
        }
        // Binomial broadcast of the result from rank 0.
        let mut mask = 1;
        while mask < size {
            mask <<= 1;
        }
        mask >>= 1;
        if me != 0 {
            // Find the bit that brought us into the tree.
            let lowest = me & me.wrapping_neg();
            let parent = me - lowest;
            let got = self.recv(parent, TAG_BCAST);
            data.copy_from_slice(&got);
        }
        let mut bit = if me == 0 { mask } else { (me & me.wrapping_neg()) >> 1 };
        while bit > 0 {
            let dest = me | bit;
            if dest != me && dest < size {
                self.send(dest, TAG_BCAST, data);
            }
            bit >>= 1;
        }
        self.barrier();
    }

    /// Broadcast `data` from `root` to every rank, in place. Collective.
    pub fn broadcast(&self, root: usize, data: &mut [f64]) {
        if self.id == root {
            self.count_bytes(data.len());
        }
        self.barrier();
        if self.id == root {
            let mut buf = self.shared.coll.lock();
            buf.clear();
            buf.extend_from_slice(data);
        }
        self.barrier();
        if self.id != root {
            let buf = self.shared.coll.lock();
            assert_eq!(
                buf.len(),
                data.len(),
                "rank {}: broadcast length mismatch (root rank {root})",
                self.id
            );
            data.copy_from_slice(&buf);
        }
        self.barrier();
    }

    /// Gather each rank's scalar into a vector on every rank (allgather).
    pub fn allgather_scalar(&self, value: f64) -> Vec<f64> {
        self.barrier();
        if self.is_root() {
            let mut buf = self.shared.coll.lock();
            buf.clear();
            buf.resize(self.size(), 0.0);
        }
        self.barrier();
        {
            let mut buf = self.shared.coll.lock();
            buf[self.id] = value;
        }
        self.barrier();
        let out = self.shared.coll.lock().clone();
        self.barrier();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let res = run_world(4, |r| (r.rank(), r.size()));
        assert_eq!(res.per_rank, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn gsumf_sums_across_ranks() {
        let res = run_world(4, |r| {
            let mut v = vec![r.rank() as f64, 1.0, -(r.rank() as f64)];
            r.gsumf(&mut v);
            v
        });
        for v in res.per_rank {
            assert_eq!(v, vec![6.0, 4.0, -6.0]);
        }
    }

    #[test]
    fn repeated_gsumf_calls_are_independent() {
        let res = run_world(3, |r| {
            let mut total = 0.0;
            for round in 0..10 {
                let mut v = vec![(r.rank() + round) as f64];
                r.gsumf(&mut v);
                total += v[0];
            }
            total
        });
        // Round k sums to 3k + 3; total over k=0..9 = 3*45 + 30 = 165.
        for v in res.per_rank {
            assert_eq!(v, 165.0);
        }
    }

    #[test]
    fn tree_gsumf_matches_shared_buffer_gsumf() {
        for n_ranks in [1usize, 2, 3, 4, 5, 7, 8] {
            let res = run_world(n_ranks, |r| {
                let mut a = vec![r.rank() as f64 + 0.5, -(r.rank() as f64)];
                let mut b = a.clone();
                r.gsumf(&mut a);
                r.gsumf_tree(&mut b);
                (a, b)
            });
            for (a, b) in res.per_rank {
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() < 1e-12, "{n_ranks} ranks: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn tree_gsumf_repeats_cleanly() {
        let res = run_world(6, |r| {
            let mut total = 0.0;
            for round in 0..5 {
                let mut v = vec![(r.rank() * round) as f64];
                r.gsumf_tree(&mut v);
                total += v[0];
            }
            total
        });
        // Round k sums to 15k; total = 15 * (0+1+2+3+4) = 150.
        for v in res.per_rank {
            assert_eq!(v, 150.0);
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let res = run_world(3, |r| {
            let mut v = if r.rank() == 2 { vec![42.0, 7.0] } else { vec![0.0, 0.0] };
            r.broadcast(2, &mut v);
            v
        });
        for v in res.per_rank {
            assert_eq!(v, vec![42.0, 7.0]);
        }
    }

    #[test]
    fn dlb_distributes_all_tasks_exactly_once() {
        let n_tasks = 1000;
        let res = run_world(4, |r| {
            let mut mine = Vec::new();
            loop {
                let t = r.dlb_next();
                if t >= n_tasks {
                    break;
                }
                mine.push(t);
            }
            mine
        });
        let mut all: Vec<usize> = res.per_rank.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n_tasks).collect::<Vec<_>>());
        assert!(res.dlb_calls >= n_tasks);
    }

    #[test]
    fn dlb_reset_between_iterations() {
        let res = run_world(2, |r| {
            let mut seen = Vec::new();
            for _iter in 0..3 {
                r.dlb_reset();
                loop {
                    let t = r.dlb_next();
                    if t >= 10 {
                        break;
                    }
                    seen.push(t);
                }
            }
            seen
        });
        let mut all: Vec<usize> = res.per_rank.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all.len(), 30, "each of 3 iterations distributes 10 tasks");
    }

    #[test]
    fn point_to_point_roundtrip() {
        let res = run_world(2, |r| {
            if r.rank() == 0 {
                r.send(1, 7, &[1.0, 2.0, 3.0]);
                r.recv(1, 8)
            } else {
                let got = r.recv(0, 7);
                let doubled: Vec<f64> = got.iter().map(|x| 2.0 * x).collect();
                r.send(0, 8, &doubled);
                got
            }
        });
        assert_eq!(res.per_rank[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(res.per_rank[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let res = run_world(2, |r| {
            if r.rank() == 0 {
                // Send tag 2 first, then tag 1.
                r.send(1, 2, &[2.0]);
                r.send(1, 1, &[1.0]);
                vec![]
            } else {
                // Receive in the opposite order.
                let a = r.recv(0, 1);
                let b = r.recv(0, 2);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(res.per_rank[1], vec![1.0, 2.0]);
    }

    #[test]
    fn communication_volume_is_accounted() {
        let res = run_world(3, |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[0.0; 100]); // 800 bytes p2p
            } else if r.rank() == 1 {
                let _ = r.recv(0, 1);
            }
            let mut v = vec![0.0; 10]; // 80 bytes collective contribution
            r.gsumf(&mut v);
        });
        assert_eq!(res.comm_bytes[0], 880);
        assert_eq!(res.comm_bytes[1], 80);
        assert_eq!(res.comm_bytes[2], 80);
    }

    #[test]
    fn memory_accounting_reaches_the_report() {
        let res = run_world(3, |r| {
            let _buf = r.alloc_f64(1000 * (r.rank() + 1));
            r.barrier();
        });
        assert_eq!(res.memory.per_rank_peak, vec![8000, 16000, 24000]);
        assert_eq!(res.memory.total_current(), 0);
    }

    #[test]
    fn allgather_scalar_collects_in_rank_order() {
        let res = run_world(4, |r| r.allgather_scalar((r.rank() * 10) as f64));
        for v in res.per_rank {
            assert_eq!(v, vec![0.0, 10.0, 20.0, 30.0]);
        }
    }

    #[test]
    fn single_rank_world() {
        let res = run_world(1, |r| {
            let mut v = vec![5.0];
            r.gsumf(&mut v);
            r.dlb_reset();
            v[0]
        });
        assert_eq!(res.per_rank, vec![5.0]);
    }

    // ------------------------------------------- fault injection --------

    /// Drain the lease loop, returning the tasks this rank completed
    /// (empty if it was killed — its work is lost with it).
    fn lease_drain(r: &Rank, n_tasks: usize, mode: LeaseMode) -> Vec<usize> {
        if r.lease_reset(n_tasks, mode).is_err() {
            return Vec::new();
        }
        let mut mine = Vec::new();
        loop {
            match r.lease_next() {
                Ok(Some(t)) => {
                    mine.push(t);
                    r.lease_complete(t);
                }
                Ok(None) => return mine,
                Err(_) => return Vec::new(),
            }
        }
    }

    fn surviving_union<const N: usize>(res: &WorldResult<Vec<usize>>) -> Vec<usize> {
        let dead = res.failed_ranks();
        let mut all: Vec<usize> = res
            .per_rank
            .iter()
            .enumerate()
            .filter(|(i, _)| !dead.contains(i))
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    #[test]
    fn lease_loop_matches_dlb_call_accounting() {
        let res = run_world(3, |r| lease_drain(r, 10, LeaseMode::Volatile).len());
        assert_eq!(res.per_rank.iter().sum::<usize>(), 10);
        // One call per task plus one Exhausted probe per rank — the same
        // accounting as the raw dlb_next loop.
        assert_eq!(res.dlb_calls, 13);
        assert_eq!(res.tasks_reclaimed, 0);
        assert!(res.failures.is_empty());
    }

    #[test]
    fn killed_rank_tasks_are_reissued_to_survivors() {
        let plan = FaultPlan::kill_at_tasks(1, &[2]);
        let res = run_world_with_faults(3, Some(plan), |r| lease_drain(r, 12, LeaseMode::Volatile));
        assert_eq!(res.failures.len(), 1, "exactly one rank dies");
        assert!(res.faults_injected >= 1);
        assert!(res.tasks_reclaimed >= 1, "the victim died holding task 2");
        assert!(res.lease_retries >= 1);
        assert_eq!(surviving_union::<3>(&res), (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn two_kills_leave_one_survivor_covering_everything() {
        let plan = FaultPlan::kill_at_tasks(7, &[1, 5]);
        let res = run_world_with_faults(3, Some(plan), |r| lease_drain(r, 10, LeaseMode::Volatile));
        assert_eq!(res.failures.len(), 2, "two distinct ranks die");
        assert!(res.tasks_reclaimed >= 2);
        assert_eq!(surviving_union::<3>(&res), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_random_kills_are_deterministic_and_survivable() {
        for seed in [11u64, 12, 13] {
            let res = run_world_with_faults(4, Some(FaultPlan::random_kills(seed, 2)), |r| {
                lease_drain(r, 20, LeaseMode::Volatile)
            });
            assert_eq!(res.failures.len(), 2, "seed {seed}: two ranks die");
            assert_eq!(surviving_union::<4>(&res), (0..20).collect::<Vec<_>>());
        }
    }

    #[test]
    fn kill_is_suppressed_for_the_last_live_rank() {
        // Every task is fatal, but the world must never fully die: the
        // last survivor absorbs the remaining kills and finishes.
        let plan = FaultPlan::kill_at_tasks(3, &[0, 1, 2, 3, 4, 5]);
        let res = run_world_with_faults(2, Some(plan), |r| lease_drain(r, 6, LeaseMode::Volatile));
        assert_eq!(res.failures.len(), 1, "only one of two ranks may die");
        assert_eq!(surviving_union::<2>(&res), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn straggler_delay_is_injected_without_killing() {
        // Single-rank world: with a peer racing for the 4 tasks, whether
        // rank 0 ever *makes* its delayed first claim depends on thread
        // scheduling (the peer can drain the whole range first), and the
        // injected-fault count flaps. Alone, rank 0 must claim, so the
        // delay fires deterministically.
        let plan = FaultPlan::parse("5:delay@0#1:10").unwrap();
        let res = run_world_with_faults(1, Some(plan), |r| lease_drain(r, 4, LeaseMode::Volatile));
        assert_eq!(res.faults_injected, 1);
        assert!(res.failures.is_empty());
        assert_eq!(surviving_union::<1>(&res), (0..4).collect::<Vec<_>>());
    }

    #[test]
    fn gsumf_regroups_around_survivors() {
        let plan = FaultPlan::kill_at_tasks(2, &[0]);
        let res = run_world_with_faults(3, Some(plan), |r| {
            if r.lease_reset(6, LeaseMode::Volatile).is_err() {
                return -1.0;
            }
            let mut acc = 0.0;
            loop {
                match r.lease_next() {
                    Ok(Some(t)) => {
                        acc += t as f64;
                        r.lease_complete(t);
                    }
                    Ok(None) => break,
                    Err(_) => return -1.0, // dead: skip the collective
                }
            }
            let mut v = vec![acc];
            r.try_gsumf(&mut v).map(|_| v[0]).unwrap_or(-1.0)
        });
        let survivors: Vec<f64> = res.per_rank.iter().copied().filter(|&x| x >= 0.0).collect();
        assert_eq!(survivors.len(), 2);
        // All six tasks (0..6 sums to 15) reach the reduction despite the
        // death — the lost rank's tasks were recomputed by survivors.
        for v in survivors {
            assert_eq!(v, 15.0);
        }
    }

    #[test]
    fn recv_timeout_on_never_sent_message() {
        let res = run_world(2, |r| {
            if r.rank() == 0 {
                r.recv_timeout(1, 99, Duration::from_millis(50)).err()
            } else {
                None
            }
        });
        assert_eq!(res.per_rank[0], Some(CommError::Timeout { what: "recv" }));
    }

    #[test]
    fn recv_timeout_delivers_tagged_out_of_order_messages() {
        let res = run_world(2, |r| {
            if r.rank() == 0 {
                r.send(1, 3, &[3.0]);
                r.send(1, 2, &[2.0]);
                r.send(1, 1, &[1.0]);
                vec![]
            } else {
                (1..=3u64)
                    .map(|tag| r.recv_timeout(0, tag, Duration::from_secs(2)).unwrap()[0])
                    .collect()
            }
        });
        assert_eq!(res.per_rank[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dropped_message_times_out_instead_of_hanging() {
        let plan = FaultPlan::parse("9:drop@0->1#1").unwrap();
        let res = run_world_with_faults(2, Some(plan), |r| {
            if r.rank() == 0 {
                r.try_send(1, 4, &[1.0, 2.0]).unwrap();
                None
            } else {
                r.recv_timeout(0, 4, Duration::from_millis(80)).err()
            }
        });
        assert_eq!(res.per_rank[1], Some(CommError::Timeout { what: "recv" }));
        assert_eq!(res.faults_injected, 1);
    }

    #[test]
    fn corrupted_payload_is_detected_by_checksum() {
        let plan = FaultPlan::parse("9:corrupt@0->1#1").unwrap();
        let res = run_world_with_faults(2, Some(plan), |r| {
            if r.rank() == 0 {
                r.try_send(1, 4, &[1.0, 2.0]).unwrap();
                None
            } else {
                r.recv_timeout(0, 4, Duration::from_secs(2)).err()
            }
        });
        assert_eq!(res.per_rank[1], Some(CommError::CorruptPayload { from: 0, tag: 4 }));
        assert_eq!(res.faults_injected, 1);
    }

    #[test]
    fn second_message_on_the_edge_passes_after_a_drop() {
        let plan = FaultPlan::parse("9:drop@0->1#1").unwrap();
        let res = run_world_with_faults(2, Some(plan), |r| {
            if r.rank() == 0 {
                r.try_send(1, 4, &[1.0]).unwrap(); // dropped
                r.try_send(1, 5, &[2.0]).unwrap(); // delivered
                vec![]
            } else {
                r.recv_timeout(0, 5, Duration::from_secs(2)).unwrap()
            }
        });
        assert_eq!(res.per_rank[1], vec![2.0]);
    }

    // --------------------------------------------- reliable delivery ----

    /// Small-timeout policy for protocol tests: injected faults recover
    /// in milliseconds instead of wall-clock minutes, and a genuinely
    /// wedged exchange still terminates the test with a diagnosis.
    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ft_timeout: Duration::from_secs(10),
            recv_timeout: Duration::from_secs(10),
            ..RetryPolicy::default()
        }
    }

    fn faulted_cfg(n_ranks: usize, plan: &str) -> WorldConfig {
        WorldConfig { n_ranks, faults: Some(FaultPlan::parse(plan).unwrap()), retry: fast_policy() }
    }

    #[test]
    fn reliable_send_recovers_from_a_dropped_payload() {
        let res = run_world_with_config(faulted_cfg(2, "9:drop@0->1#1"), |r| {
            if r.rank() == 0 {
                r.send_reliable(1, 4, &[1.0, 2.0]).unwrap();
                vec![]
            } else {
                r.recv_reliable(0, 4).unwrap()
            }
        });
        assert_eq!(res.per_rank[1], vec![1.0, 2.0]);
        assert_eq!(res.retransmits, 1, "exactly the dropped payload is resent");
        assert_eq!(res.acks, 1);
        assert_eq!(res.corruptions_detected, 0);
        assert_eq!(res.transient_recoveries, 1);
        assert_eq!(res.faults_injected, 1);
        assert!(res.failures.is_empty(), "a transient fault must not kill anyone");
    }

    #[test]
    fn reliable_send_recovers_from_a_corrupt_payload() {
        let res = run_world_with_config(faulted_cfg(2, "9:corrupt@0->1#1"), |r| {
            if r.rank() == 0 {
                r.send_reliable(1, 4, &[3.0, -1.0]).unwrap();
                vec![]
            } else {
                r.recv_reliable(0, 4).unwrap()
            }
        });
        assert_eq!(res.per_rank[1], vec![3.0, -1.0], "the clean retransmission is delivered");
        assert_eq!(res.corruptions_detected, 1, "the damaged copy is detected and discarded");
        assert_eq!(res.retransmits, 1);
        assert_eq!(res.acks, 1);
        assert_eq!(res.transient_recoveries, 1);
        assert!(res.failures.is_empty());
    }

    #[test]
    fn lost_ack_is_reacked_and_delivery_stays_exactly_once() {
        // Drop the FIRST physical message on the 1 -> 0 edge: the ack.
        // The sender times out and retransmits; the receiver must dedup
        // the duplicate payload (deliver once) but ack it again.
        let res = run_world_with_config(faulted_cfg(2, "9:drop@1->0#1"), |r| {
            if r.rank() == 0 {
                r.send_reliable(1, 4, &[7.0]).unwrap();
                (vec![], None)
            } else {
                let first = r.recv_reliable(0, 4).unwrap();
                // The duplicate was suppressed: nothing else arrives.
                let dup = r.recv_timeout(0, 4, Duration::from_millis(300)).err();
                (first, dup)
            }
        });
        assert_eq!(res.per_rank[1].0, vec![7.0]);
        assert_eq!(res.per_rank[1].1, Some(CommError::Timeout { what: "recv" }));
        assert_eq!(res.retransmits, 1);
        assert_eq!(res.acks, 2, "original ack (lost) plus the re-ack of the duplicate");
        assert_eq!(res.transient_recoveries, 1);
        assert!(res.failures.is_empty());
    }

    #[test]
    fn exhausted_retry_budget_is_a_fatal_error() {
        let mut cfg = faulted_cfg(2, "9:drop@0->1#1,drop@0->1#2,drop@0->1#3");
        cfg.retry.max_attempts = 3;
        cfg.retry.ack_timeout = Duration::from_millis(60);
        let res = run_world_with_config(cfg, |r| {
            if r.rank() == 0 {
                r.send_reliable(1, 4, &[1.0]).err()
            } else {
                r.recv_timeout(0, 4, Duration::from_millis(400)).err().map(|_| {
                    CommError::Timeout { what: "recv" } // normalize: only rank 0's error matters
                })
            }
        });
        let err = res.per_rank[0].clone().expect("rank 0's send must fail");
        assert_eq!(err, CommError::RetriesExhausted { to: 1, tag: 4, attempts: 3 });
        assert!(!err.is_transient(), "an exhausted budget escalates as fatal");
        assert_eq!(res.retransmits, 2, "attempts 2 and 3 were retransmissions");
    }

    #[test]
    fn gsumf_retransmits_through_dropped_and_corrupt_tree_messages() {
        // Faults on reduction-tree data edges (1->0, 2->0) and on an ack
        // edge (0->1): every one must drain into retransmission.
        let res = run_world_with_config(
            faulted_cfg(4, "9:drop@1->0#1,corrupt@2->0#1,drop@0->1#1"),
            |r| {
                let mut v = vec![r.rank() as f64, 1.0];
                r.try_gsumf(&mut v).unwrap();
                v
            },
        );
        for v in res.per_rank {
            assert_eq!(v, vec![6.0, 4.0]);
        }
        assert!(res.retransmits >= 3, "each injected fault forces a resend: {}", res.retransmits);
        assert_eq!(res.corruptions_detected, 1);
        // One recovery per reliable send that survived ≥1 transient
        // fault: rank 1's reduce send (hit by a payload drop AND an ack
        // drop) and rank 2's reduce send (hit by a corruption).
        assert_eq!(res.transient_recoveries, 2);
        assert!(res.failures.is_empty(), "transient faults must not kill ranks");
        assert_eq!(res.faults_injected, 3);
    }

    #[test]
    fn unreliable_policy_keeps_raw_fire_and_forget_semantics() {
        let mut cfg = faulted_cfg(2, "9:drop@0->1#1");
        cfg.retry = RetryPolicy::none().with_comm_timeout(Duration::from_secs(5));
        let res = run_world_with_config(cfg, |r| {
            if r.rank() == 0 {
                r.send_reliable(1, 4, &[1.0]).unwrap();
                None
            } else {
                r.recv_timeout(0, 4, Duration::from_millis(100)).err()
            }
        });
        assert_eq!(res.per_rank[1], Some(CommError::Timeout { what: "recv" }));
        assert_eq!(res.retransmits, 0);
        assert_eq!(res.acks, 0);
    }

    #[test]
    fn comm_timeouts_are_configurable_not_hard_coded() {
        // One rank never reaches the barrier; with a millisecond-scale
        // configured ft_timeout the waiter diagnoses the hang in well
        // under a second instead of the legacy fixed 30 s.
        let mut cfg = WorldConfig::new(2);
        cfg.retry = RetryPolicy {
            max_attempts: 2,
            ft_timeout: Duration::from_millis(50),
            ..RetryPolicy::default()
        };
        let start = Instant::now();
        let res = run_world_with_config(cfg, |r| {
            if r.rank() == 0 {
                r.ft_barrier().err()
            } else {
                std::thread::sleep(Duration::from_millis(250));
                None
            }
        });
        assert_eq!(res.per_rank[0], Some(CommError::Timeout { what: "barrier" }));
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn rank_panic_is_reported_with_rank_and_reason() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_world(3, |r| {
                if r.rank() == 1 {
                    panic!("integral batch exploded");
                }
            })
        }));
        let err = match result {
            Ok(_) => panic!("the world must propagate the rank panic"),
            Err(payload) => payload,
        };
        let msg =
            err.downcast_ref::<String>().expect("aggregated panic payload is a String").clone();
        assert!(msg.contains("rank 1"), "panic message names the rank: {msg}");
        assert!(msg.contains("integral batch exploded"), "panic message keeps the cause: {msg}");
    }
}
