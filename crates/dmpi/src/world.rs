//! SPMD worlds: spawning ranks, barriers, point-to-point messages and
//! collectives — with optional deterministic fault injection.
//!
//! A world can be started with a [`FaultPlan`]
//! via [`run_world_with_faults`]: ranks then die, straggle, or lose
//! messages exactly where the plan says, and the failure-aware
//! primitives ([`Rank::lease_next`], [`Rank::ft_barrier`],
//! [`Rank::try_gsumf`], [`Rank::recv_timeout`]) let survivors regroup
//! and finish the computation.

use crate::dlb::Dlb;
use crate::fault::{
    splitmix64, CommError, FaultPlan, FaultSpec, FtBarrier, LeaseClaim, LeaseMode, TaskLeases,
};
use crate::memory::{MemoryReport, MemoryTracker, TrackedBuf};
use crate::sync::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default deadline for failure-aware barriers and the lease poll loop:
/// long enough that it only fires on a genuine hang, short enough that a
/// wedged test run still terminates with a diagnosis.
const FT_TIMEOUT: Duration = Duration::from_secs(30);
/// Back-off between lease polls while another live rank holds the last
/// outstanding tasks.
const LEASE_POLL: Duration = Duration::from_micros(50);
/// How long the legacy blocking [`Rank::recv`] waits before concluding
/// the message will never arrive.
const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// A tagged point-to-point message. The checksum travels with the
/// payload so corruption injected (or, at real scale, suffered) in
/// flight is detected at the receiver.
struct Message {
    from: usize,
    tag: u64,
    data: Vec<f64>,
    checksum: u64,
}

fn payload_checksum(data: &[f64]) -> u64 {
    let mut state = 0x9E37_79B9_7F4A_7C15 ^ (data.len() as u64);
    let mut acc = 0u64;
    for v in data {
        state ^= v.to_bits();
        acc ^= splitmix64(&mut state);
    }
    acc
}

struct KillTask {
    task: usize,
    fired: bool,
}

struct ClaimKill {
    rank: usize,
    claim: usize,
    fired: bool,
}

struct EdgeFault {
    from: usize,
    to: usize,
    nth: usize,
    fired: bool,
}

/// Per-world interpreter of a [`FaultPlan`]: tracks which scheduled
/// faults have fired and the per-rank / per-edge ordinals they key on.
struct FaultRuntime {
    seed: u64,
    kill_tasks: Mutex<Vec<KillTask>>,
    random_kill_count: usize,
    random_resolved: AtomicBool,
    claim_kills: Mutex<Vec<ClaimKill>>,
    delays: Vec<(usize, usize, u64)>,
    drops: Mutex<Vec<EdgeFault>>,
    corrupts: Mutex<Vec<EdgeFault>>,
    /// Successful lease claims made by each rank (1-based ordinals).
    claims: Vec<AtomicUsize>,
    /// Messages sent per (from, to) edge (1-based ordinals).
    msg_seq: Mutex<HashMap<(usize, usize), usize>>,
    injected: AtomicUsize,
}

impl FaultRuntime {
    fn new(plan: &FaultPlan, n_ranks: usize) -> Self {
        let mut kill_tasks = Vec::new();
        let mut claim_kills = Vec::new();
        let mut delays = Vec::new();
        let mut drops = Vec::new();
        let mut corrupts = Vec::new();
        let mut random_kill_count = 0;
        for spec in plan.specs() {
            match *spec {
                FaultSpec::KillAtTask { task } => kill_tasks.push(KillTask { task, fired: false }),
                FaultSpec::KillAtClaim { rank, claim } => {
                    claim_kills.push(ClaimKill { rank, claim, fired: false })
                }
                FaultSpec::KillRandom { count } => random_kill_count += count,
                FaultSpec::Delay { rank, claim, millis } => delays.push((rank, claim, millis)),
                FaultSpec::DropMessage { from, to, nth } => {
                    drops.push(EdgeFault { from, to, nth, fired: false })
                }
                FaultSpec::CorruptMessage { from, to, nth } => {
                    corrupts.push(EdgeFault { from, to, nth, fired: false })
                }
            }
        }
        FaultRuntime {
            seed: plan.seed,
            kill_tasks: Mutex::new(kill_tasks),
            random_kill_count,
            random_resolved: AtomicBool::new(false),
            claim_kills: Mutex::new(claim_kills),
            delays,
            drops: Mutex::new(drops),
            corrupts: Mutex::new(corrupts),
            claims: (0..n_ranks).map(|_| AtomicUsize::new(0)).collect(),
            msg_seq: Mutex::new(HashMap::new()),
            injected: AtomicUsize::new(0),
        }
    }

    /// Turn `kill*K` specs into concrete fatal task indices once the
    /// task range is known. Runs once per world (the first lease reset).
    fn resolve_random_kills(&self, n_tasks: usize) {
        if self.random_kill_count == 0 || n_tasks == 0 {
            return;
        }
        if self.random_resolved.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut state = self.seed;
        let mut chosen: Vec<usize> = Vec::new();
        let want = self.random_kill_count.min(n_tasks);
        while chosen.len() < want {
            let t = (splitmix64(&mut state) % n_tasks as u64) as usize;
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        let mut kills = self.kill_tasks.lock();
        kills.extend(chosen.into_iter().map(|task| KillTask { task, fired: false }));
    }

    fn delay_for(&self, rank: usize, claim: usize) -> Option<u64> {
        self.delays.iter().find(|&&(r, c, _)| r == rank && c == claim).map(|&(_, _, ms)| ms)
    }

    /// Check (and mark fired) any kill scheduled for this claim. Kills
    /// are suppressed — but still marked fired — when the victim is the
    /// last live rank, so a plan can never extinguish the whole world.
    fn check_kill(&self, rank: usize, claim: usize, task: usize, live_count: usize) -> bool {
        let mut matched = false;
        {
            let mut kills = self.kill_tasks.lock();
            for k in kills.iter_mut() {
                if !k.fired && k.task == task {
                    k.fired = true;
                    matched = true;
                }
            }
        }
        {
            let mut kills = self.claim_kills.lock();
            for k in kills.iter_mut() {
                if !k.fired && k.rank == rank && k.claim == claim {
                    k.fired = true;
                    matched = true;
                }
            }
        }
        if matched && live_count > 1 {
            self.injected.fetch_add(1, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    fn next_msg_seq(&self, from: usize, to: usize) -> usize {
        let mut seq = self.msg_seq.lock();
        let n = seq.entry((from, to)).or_insert(0);
        *n += 1;
        *n
    }

    fn fire_edge(faults: &Mutex<Vec<EdgeFault>>, from: usize, to: usize, nth: usize) -> bool {
        let mut faults = faults.lock();
        for f in faults.iter_mut() {
            if !f.fired && f.from == from && f.to == to && f.nth == nth {
                f.fired = true;
                return true;
            }
        }
        false
    }
}

/// State shared by every rank of a world.
struct WorldShared {
    n_ranks: usize,
    barrier: FtBarrier,
    dlb: Dlb,
    leases: TaskLeases,
    /// Scratch buffer for collectives; valid only between the barriers of
    /// one collective call.
    coll: Mutex<Vec<f64>>,
    mem: Arc<MemoryTracker>,
    /// Bytes moved per rank: point-to-point payloads plus each rank's
    /// contribution to collectives. The communication volume the cluster
    /// model charges for is thereby observable on real runs.
    comm_bytes: Vec<AtomicU64>,
    /// Liveness flags; a rank marked dead has deregistered from the
    /// barrier and abandoned its task leases.
    alive: Vec<AtomicBool>,
    /// Ranks that died, with reasons, in order of death.
    failures: Mutex<Vec<(usize, String)>>,
    faults: Option<FaultRuntime>,
}

/// Handle a rank's SPMD closure receives. Not `Clone` — exactly one per
/// rank, like an MPI communicator's view of `MPI_COMM_WORLD`.
pub struct Rank {
    id: usize,
    shared: Arc<WorldShared>,
    senders: Vec<Sender<Message>>,
    /// Wrapped in a mutex so `Rank` stays `Sync` with the std mpsc receiver
    /// (p2p calls are one-rank operations; the lock is uncontended).
    receiver: Mutex<Receiver<Message>>,
    /// Messages received but not yet matched by a `recv` call.
    /// Mutex (not RefCell) so a `Rank` can be shared with an OpenMP-style
    /// thread team; p2p calls themselves remain one-rank operations.
    stash: Mutex<VecDeque<Message>>,
}

/// Everything a finished world returns: per-rank results plus the memory
/// accounting and the fault/recovery summary.
pub struct WorldResult<R> {
    /// One entry per rank, in rank order (dead ranks return whatever
    /// their closure produced on the error path).
    pub per_rank: Vec<R>,
    /// Per-rank memory accounting.
    pub memory: MemoryReport,
    /// Total DLB counter calls (including lease claims).
    pub dlb_calls: usize,
    /// Bytes each rank moved (p2p payloads + collective contributions).
    pub comm_bytes: Vec<u64>,
    /// Ranks that died mid-run, with reasons, in order of death.
    pub failures: Vec<(usize, String)>,
    /// Faults actually injected (kills, delays, drops, corruptions).
    pub faults_injected: usize,
    /// Tasks reclaimed from dead ranks and queued for reissue.
    pub tasks_reclaimed: usize,
    /// Lease claims served from the reissue queue — recovery work
    /// re-executed by survivors.
    pub lease_retries: usize,
}

impl<R> WorldResult<R> {
    /// Ids of the ranks that died, in order of death.
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.failures.iter().map(|&(r, _)| r).collect()
    }
}

/// Run an SPMD function over `n_ranks` ranks (each on its own OS thread)
/// and collect their results. Equivalent to
/// [`run_world_with_faults`]`(n_ranks, None, f)`.
pub fn run_world<R, F>(n_ranks: usize, f: F) -> WorldResult<R>
where
    R: Send,
    F: Fn(&Rank) -> R + Sync,
{
    run_world_with_faults(n_ranks, None, f)
}

/// Run an SPMD function over `n_ranks` ranks under an optional
/// deterministic [`FaultPlan`]. If any rank's closure panics, the world
/// still joins every thread and then reports *which* ranks panicked and
/// why, instead of a bare double panic.
pub fn run_world_with_faults<R, F>(
    n_ranks: usize,
    faults: Option<FaultPlan>,
    f: F,
) -> WorldResult<R>
where
    R: Send,
    F: Fn(&Rank) -> R + Sync,
{
    assert!(n_ranks >= 1);
    let shared = Arc::new(WorldShared {
        n_ranks,
        barrier: FtBarrier::new(n_ranks),
        dlb: Dlb::new(),
        leases: TaskLeases::new(n_ranks),
        coll: Mutex::new(Vec::new()),
        mem: Arc::new(MemoryTracker::new(n_ranks)),
        comm_bytes: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
        alive: (0..n_ranks).map(|_| AtomicBool::new(true)).collect(),
        failures: Mutex::new(Vec::new()),
        faults: faults.as_ref().map(|p| FaultRuntime::new(p, n_ranks)),
    });
    let mut senders = Vec::with_capacity(n_ranks);
    let mut receivers = Vec::with_capacity(n_ranks);
    for _ in 0..n_ranks {
        let (s, r) = channel();
        senders.push(s);
        receivers.push(r);
    }
    let ranks: Vec<Rank> = receivers
        .into_iter()
        .enumerate()
        .map(|(id, receiver)| Rank {
            id,
            shared: shared.clone(),
            senders: senders.clone(),
            receiver: Mutex::new(receiver),
            stash: Mutex::new(VecDeque::new()),
        })
        .collect();

    let per_rank = std::thread::scope(|scope| {
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|rank| {
                let f = &f;
                scope.spawn(move || {
                    phi_trace::set_rank(rank.id as u32);
                    f(&rank)
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n_ranks);
        let mut panics: Vec<(usize, String)> = Vec::new();
        for (id, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => out.push(r),
                Err(payload) => panics.push((id, panic_message(payload))),
            }
        }
        if !panics.is_empty() {
            let detail: Vec<String> =
                panics.iter().map(|(id, msg)| format!("rank {id}: {msg}")).collect();
            panic!("{} of {n_ranks} ranks panicked — {}", panics.len(), detail.join("; "));
        }
        out
    });

    // World-global counters, emitted once per world so trace totals
    // reconcile exactly with the WorldResult fields below.
    phi_trace::counter("dlb.calls", shared.dlb.calls_made() as u64);
    phi_trace::counter("tasks.reclaimed", shared.leases.reclaimed() as u64);

    let failures = shared.failures.lock().clone();
    WorldResult {
        per_rank,
        memory: shared.mem.report(),
        dlb_calls: shared.dlb.calls_made(),
        comm_bytes: shared.comm_bytes.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        failures,
        faults_injected: shared.faults.as_ref().map_or(0, |fr| fr.injected.load(Ordering::SeqCst)),
        tasks_reclaimed: shared.leases.reclaimed(),
        lease_retries: shared.leases.reissued_claims(),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Rank {
    pub fn rank(&self) -> usize {
        self.id
    }

    pub fn size(&self) -> usize {
        self.shared.n_ranks
    }

    pub fn is_root(&self) -> bool {
        self.id == 0
    }

    // ----------------------------------------------------- liveness -----

    /// Whether this rank is still alive (i.e. not killed by fault
    /// injection).
    pub fn alive(&self) -> bool {
        self.shared.alive[self.id].load(Ordering::SeqCst)
    }

    /// Whether fault injection is active in this world. Builders use
    /// this to pick recovery-friendly settings (e.g. flush cadence).
    pub fn faults_enabled(&self) -> bool {
        self.shared.faults.is_some()
    }

    /// Number of ranks currently alive.
    pub fn live_count(&self) -> usize {
        self.shared.alive.iter().filter(|a| a.load(Ordering::SeqCst)).count()
    }

    /// True if this rank is the lowest-ranked survivor — the coordinator
    /// role that falls back from rank 0 when rank 0 dies.
    pub fn is_lowest_live(&self) -> bool {
        self.alive() && (0..self.id).all(|r| !self.shared.alive[r].load(Ordering::SeqCst))
    }

    /// Ranks that have died so far, in order of death.
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.shared.failures.lock().iter().map(|&(r, _)| r).collect()
    }

    /// Mark this rank dead: record the reason, hand its task leases back
    /// for reissue, and deregister from the world barrier so survivors
    /// regroup instead of deadlocking.
    fn mark_dead(&self, reason: String) {
        if !self.shared.alive[self.id].swap(false, Ordering::SeqCst) {
            return;
        }
        phi_trace::instant("rank.died", self.id as u64);
        self.shared.failures.lock().push((self.id, reason));
        self.shared.leases.on_death(self.id);
        self.shared.barrier.deregister();
    }

    // ------------------------------------------------------ barriers ----

    /// World barrier (legacy API; panics if the barrier fails).
    pub fn barrier(&self) {
        self.ft_barrier().unwrap_or_else(|e| panic!("rank {}: barrier failed: {e}", self.id));
    }

    /// Failure-aware world barrier: only live ranks participate, a dead
    /// caller errors immediately, and a wedged barrier times out instead
    /// of hanging forever.
    pub fn ft_barrier(&self) -> Result<(), CommError> {
        if !self.alive() {
            return Err(CommError::SelfDead);
        }
        let _span = phi_trace::span("mpi.barrier");
        self.shared.barrier.wait(FT_TIMEOUT)
    }

    // ----------------------------------------------------------- dlb ----

    /// Claim the next global task index (`ddi_dlbnext`).
    pub fn dlb_next(&self) -> usize {
        self.shared.dlb.next()
    }

    /// Collective reset of the DLB counter (call from all ranks).
    pub fn dlb_reset(&self) {
        self.barrier();
        if self.is_root() {
            self.shared.dlb.reset();
        }
        self.barrier();
    }

    // -------------------------------------------------- task leases -----

    /// Collective reset of the lease table over `0..n_tasks` (the
    /// failure-aware `dlb_reset`). Call from every live rank.
    pub fn lease_reset(&self, n_tasks: usize, mode: LeaseMode) -> Result<(), CommError> {
        self.ft_barrier()?;
        if self.is_lowest_live() {
            self.shared.leases.reset(n_tasks, mode);
            self.shared.dlb.reset();
            if let Some(fr) = &self.shared.faults {
                fr.resolve_random_kills(n_tasks);
            }
        }
        self.ft_barrier()?;
        Ok(())
    }

    /// Claim the next task lease (the failure-aware `ddi_dlbnext`).
    ///
    /// `Ok(Some(task))` leases a task to this rank — fresh work or a
    /// reissued task reclaimed from a dead rank. `Ok(None)` means every
    /// task is complete (not merely handed out): while outstanding tasks
    /// are leased to other live ranks this call polls, because those
    /// tasks may yet fail back into the reissue queue. Scheduled faults
    /// (kills, delays) fire here, after the claim succeeds, so a killed
    /// rank always dies holding a lease that survivors must reclaim.
    pub fn lease_next(&self) -> Result<Option<usize>, CommError> {
        if !self.alive() {
            return Err(CommError::SelfDead);
        }
        // DLB wait: claim-lock contention plus any Pending polling until
        // a task (or exhaustion) arrives — the paper's idle-time metric.
        let _span = phi_trace::span("dlb.wait");
        let deadline = Instant::now() + FT_TIMEOUT;
        loop {
            match self.shared.leases.claim(self.id) {
                LeaseClaim::Task { task, reissued, prev_owner } => {
                    if reissued {
                        // aux names the original (dead) claimant so
                        // recovery work is attributable in the trace.
                        phi_trace::instant_with(
                            "task.reissued",
                            task as u64,
                            prev_owner.map_or(u64::MAX, |r| r as u64),
                        );
                    }
                    self.shared.dlb.note_call();
                    if let Some(fr) = &self.shared.faults {
                        let claim_no = fr.claims[self.id].fetch_add(1, Ordering::SeqCst) + 1;
                        if let Some(ms) = fr.delay_for(self.id, claim_no) {
                            fr.injected.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(Duration::from_millis(ms));
                        }
                        if fr.check_kill(self.id, claim_no, task, self.live_count()) {
                            self.mark_dead(format!(
                                "fault injection: killed holding task {task} (claim #{claim_no})"
                            ));
                            return Err(CommError::SelfDead);
                        }
                    }
                    return Ok(Some(task));
                }
                LeaseClaim::Exhausted => {
                    self.shared.dlb.note_call();
                    return Ok(None);
                }
                LeaseClaim::Pending => {
                    if Instant::now() >= deadline {
                        return Err(CommError::Timeout { what: "task lease" });
                    }
                    std::thread::sleep(LEASE_POLL);
                }
            }
        }
    }

    /// Mark a leased task complete. For [`LeaseMode::Volatile`] this
    /// still only durably counts while this rank stays alive.
    pub fn lease_complete(&self, task: usize) {
        self.shared.leases.complete(task);
    }

    // ------------------------------------------------------- memory -----

    /// Allocate a memory-tracked buffer charged to this rank.
    pub fn alloc_f64(&self, len: usize) -> TrackedBuf {
        TrackedBuf::new(len, self.id, self.shared.mem.clone())
    }

    /// Record an allocation this rank made outside [`TrackedBuf`] (e.g.
    /// thread-private buffers inside an OpenMP region).
    pub fn charge_bytes(&self, bytes: usize) {
        self.shared.mem.on_alloc(self.id, bytes);
    }

    pub fn release_bytes(&self, bytes: usize) {
        self.shared.mem.on_free(self.id, bytes);
    }

    // ---------------------------------------------------------- p2p -----

    /// Non-blocking tagged send to `dest` (legacy API; panics on error).
    pub fn send(&self, dest: usize, tag: u64, data: &[f64]) {
        self.try_send(dest, tag, data).unwrap_or_else(|e| {
            panic!("rank {}: send(dest={dest}, tag={tag}) failed: {e}", self.id)
        });
    }

    /// Non-blocking tagged send to `dest`. Under fault injection the
    /// scheduled message on this edge may be silently dropped or have
    /// its payload corrupted in flight.
    pub fn try_send(&self, dest: usize, tag: u64, data: &[f64]) -> Result<(), CommError> {
        if !self.alive() {
            return Err(CommError::SelfDead);
        }
        let mut payload = data.to_vec();
        let mut checksum = payload_checksum(data);
        if let Some(fr) = &self.shared.faults {
            let nth = fr.next_msg_seq(self.id, dest);
            if FaultRuntime::fire_edge(&fr.drops, self.id, dest, nth) {
                fr.injected.fetch_add(1, Ordering::SeqCst);
                return Ok(()); // swallowed by the network
            }
            if FaultRuntime::fire_edge(&fr.corrupts, self.id, dest, nth) {
                fr.injected.fetch_add(1, Ordering::SeqCst);
                // Damage the payload but ship the original checksum, so
                // the receiver's verification catches it.
                match payload.first_mut() {
                    Some(x) => *x = -*x + 1.0,
                    None => checksum ^= 0xDEAD_BEEF,
                }
            }
        }
        self.count_bytes(payload.len());
        self.senders[dest]
            .send(Message { from: self.id, tag, data: payload, checksum })
            .map_err(|_| CommError::RankFailed { rank: dest })
    }

    fn count_bytes(&self, elems: usize) {
        self.shared.comm_bytes[self.id]
            .fetch_add((elems * std::mem::size_of::<f64>()) as u64, Ordering::Relaxed);
    }

    fn verify(msg: Message) -> Result<Vec<f64>, CommError> {
        if payload_checksum(&msg.data) != msg.checksum {
            Err(CommError::CorruptPayload { from: msg.from, tag: msg.tag })
        } else {
            Ok(msg.data)
        }
    }

    /// Blocking receive matching `(from, tag)` (legacy API; panics if
    /// the message never arrives or fails verification).
    pub fn recv(&self, from: usize, tag: u64) -> Vec<f64> {
        self.recv_timeout(from, tag, RECV_TIMEOUT).unwrap_or_else(|e| {
            panic!("rank {}: recv(from={from}, tag={tag}) failed: {e}", self.id)
        })
    }

    /// Receive the message matching `(from, tag)`, waiting at most
    /// `timeout`. Unmatched messages are stashed for later calls, so
    /// tagged out-of-order delivery works; a message that never arrives
    /// returns [`CommError::Timeout`] instead of hanging forever, and a
    /// payload failing its checksum returns
    /// [`CommError::CorruptPayload`].
    pub fn recv_timeout(
        &self,
        from: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f64>, CommError> {
        // Check earlier unmatched messages first.
        {
            let mut stash = self.stash.lock();
            if let Some(pos) = stash.iter().position(|m| m.from == from && m.tag == tag) {
                let msg = stash.remove(pos).expect("position is valid");
                return Self::verify(msg);
            }
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CommError::Timeout { what: "recv" });
            }
            let msg = match self.receiver.lock().recv_timeout(remaining) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => return Err(CommError::Timeout { what: "recv" }),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::RankFailed { rank: from })
                }
            };
            if msg.from == from && msg.tag == tag {
                return Self::verify(msg);
            }
            self.stash.lock().push_back(msg);
        }
    }

    // --------------------------------------------------- collectives ----

    /// Global sum over all ranks, in place (`ddi_gsumf`). Collective: every
    /// rank must call with an equally sized slice. Legacy API; panics if
    /// the underlying failure-aware reduction errors.
    pub fn gsumf(&self, data: &mut [f64]) {
        self.try_gsumf(data).unwrap_or_else(|e| panic!("rank {}: gsumf failed: {e}", self.id));
    }

    /// Failure-aware global sum over the *surviving* ranks, in place.
    /// The lowest live rank coordinates (rank 0 may be dead), dead ranks
    /// must not call, and a wedged phase times out instead of hanging.
    pub fn try_gsumf(&self, data: &mut [f64]) -> Result<(), CommError> {
        if !self.alive() {
            return Err(CommError::SelfDead);
        }
        let _span = phi_trace::span("mpi.gsum");
        self.count_bytes(data.len());
        self.ft_barrier()?;
        if self.is_lowest_live() {
            let mut buf = self.shared.coll.lock();
            buf.clear();
            buf.resize(data.len(), 0.0);
        }
        self.ft_barrier()?;
        {
            let mut buf = self.shared.coll.lock();
            assert_eq!(buf.len(), data.len(), "gsumf length mismatch across ranks");
            for (b, d) in buf.iter_mut().zip(data.iter()) {
                *b += *d;
            }
        }
        self.ft_barrier()?;
        {
            let buf = self.shared.coll.lock();
            data.copy_from_slice(&buf);
        }
        self.ft_barrier()?;
        Ok(())
    }

    /// Tree-structured global sum over the point-to-point channels: a
    /// binomial reduce to rank 0 followed by a binomial broadcast. Gives
    /// the same result as [`gsumf`](Self::gsumf) (up to floating-point
    /// association order) while exercising real message traffic — the
    /// communication pattern the cluster model charges for.
    pub fn gsumf_tree(&self, data: &mut [f64]) {
        const TAG_REDUCE: u64 = u64::MAX - 1;
        const TAG_BCAST: u64 = u64::MAX - 2;
        let size = self.size();
        let me = self.id;
        // Binomial reduction: at round k, ranks with bit k set send to
        // rank - 2^k and drop out.
        let mut step = 1;
        while step < size {
            if me & step != 0 {
                self.send(me - step, TAG_REDUCE, data);
                break;
            } else if me + step < size {
                let incoming = self.recv(me + step, TAG_REDUCE);
                assert_eq!(incoming.len(), data.len(), "gsumf_tree length mismatch");
                for (d, v) in data.iter_mut().zip(&incoming) {
                    *d += v;
                }
            }
            step <<= 1;
        }
        // Binomial broadcast of the result from rank 0.
        let mut mask = 1;
        while mask < size {
            mask <<= 1;
        }
        mask >>= 1;
        if me != 0 {
            // Find the bit that brought us into the tree.
            let lowest = me & me.wrapping_neg();
            let parent = me - lowest;
            let got = self.recv(parent, TAG_BCAST);
            data.copy_from_slice(&got);
        }
        let mut bit = if me == 0 { mask } else { (me & me.wrapping_neg()) >> 1 };
        while bit > 0 {
            let dest = me | bit;
            if dest != me && dest < size {
                self.send(dest, TAG_BCAST, data);
            }
            bit >>= 1;
        }
        self.barrier();
    }

    /// Broadcast `data` from `root` to every rank, in place. Collective.
    pub fn broadcast(&self, root: usize, data: &mut [f64]) {
        if self.id == root {
            self.count_bytes(data.len());
        }
        self.barrier();
        if self.id == root {
            let mut buf = self.shared.coll.lock();
            buf.clear();
            buf.extend_from_slice(data);
        }
        self.barrier();
        if self.id != root {
            let buf = self.shared.coll.lock();
            assert_eq!(buf.len(), data.len(), "broadcast length mismatch");
            data.copy_from_slice(&buf);
        }
        self.barrier();
    }

    /// Gather each rank's scalar into a vector on every rank (allgather).
    pub fn allgather_scalar(&self, value: f64) -> Vec<f64> {
        self.barrier();
        if self.is_root() {
            let mut buf = self.shared.coll.lock();
            buf.clear();
            buf.resize(self.size(), 0.0);
        }
        self.barrier();
        {
            let mut buf = self.shared.coll.lock();
            buf[self.id] = value;
        }
        self.barrier();
        let out = self.shared.coll.lock().clone();
        self.barrier();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let res = run_world(4, |r| (r.rank(), r.size()));
        assert_eq!(res.per_rank, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn gsumf_sums_across_ranks() {
        let res = run_world(4, |r| {
            let mut v = vec![r.rank() as f64, 1.0, -(r.rank() as f64)];
            r.gsumf(&mut v);
            v
        });
        for v in res.per_rank {
            assert_eq!(v, vec![6.0, 4.0, -6.0]);
        }
    }

    #[test]
    fn repeated_gsumf_calls_are_independent() {
        let res = run_world(3, |r| {
            let mut total = 0.0;
            for round in 0..10 {
                let mut v = vec![(r.rank() + round) as f64];
                r.gsumf(&mut v);
                total += v[0];
            }
            total
        });
        // Round k sums to 3k + 3; total over k=0..9 = 3*45 + 30 = 165.
        for v in res.per_rank {
            assert_eq!(v, 165.0);
        }
    }

    #[test]
    fn tree_gsumf_matches_shared_buffer_gsumf() {
        for n_ranks in [1usize, 2, 3, 4, 5, 7, 8] {
            let res = run_world(n_ranks, |r| {
                let mut a = vec![r.rank() as f64 + 0.5, -(r.rank() as f64)];
                let mut b = a.clone();
                r.gsumf(&mut a);
                r.gsumf_tree(&mut b);
                (a, b)
            });
            for (a, b) in res.per_rank {
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() < 1e-12, "{n_ranks} ranks: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn tree_gsumf_repeats_cleanly() {
        let res = run_world(6, |r| {
            let mut total = 0.0;
            for round in 0..5 {
                let mut v = vec![(r.rank() * round) as f64];
                r.gsumf_tree(&mut v);
                total += v[0];
            }
            total
        });
        // Round k sums to 15k; total = 15 * (0+1+2+3+4) = 150.
        for v in res.per_rank {
            assert_eq!(v, 150.0);
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let res = run_world(3, |r| {
            let mut v = if r.rank() == 2 { vec![42.0, 7.0] } else { vec![0.0, 0.0] };
            r.broadcast(2, &mut v);
            v
        });
        for v in res.per_rank {
            assert_eq!(v, vec![42.0, 7.0]);
        }
    }

    #[test]
    fn dlb_distributes_all_tasks_exactly_once() {
        let n_tasks = 1000;
        let res = run_world(4, |r| {
            let mut mine = Vec::new();
            loop {
                let t = r.dlb_next();
                if t >= n_tasks {
                    break;
                }
                mine.push(t);
            }
            mine
        });
        let mut all: Vec<usize> = res.per_rank.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n_tasks).collect::<Vec<_>>());
        assert!(res.dlb_calls >= n_tasks);
    }

    #[test]
    fn dlb_reset_between_iterations() {
        let res = run_world(2, |r| {
            let mut seen = Vec::new();
            for _iter in 0..3 {
                r.dlb_reset();
                loop {
                    let t = r.dlb_next();
                    if t >= 10 {
                        break;
                    }
                    seen.push(t);
                }
            }
            seen
        });
        let mut all: Vec<usize> = res.per_rank.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all.len(), 30, "each of 3 iterations distributes 10 tasks");
    }

    #[test]
    fn point_to_point_roundtrip() {
        let res = run_world(2, |r| {
            if r.rank() == 0 {
                r.send(1, 7, &[1.0, 2.0, 3.0]);
                r.recv(1, 8)
            } else {
                let got = r.recv(0, 7);
                let doubled: Vec<f64> = got.iter().map(|x| 2.0 * x).collect();
                r.send(0, 8, &doubled);
                got
            }
        });
        assert_eq!(res.per_rank[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(res.per_rank[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let res = run_world(2, |r| {
            if r.rank() == 0 {
                // Send tag 2 first, then tag 1.
                r.send(1, 2, &[2.0]);
                r.send(1, 1, &[1.0]);
                vec![]
            } else {
                // Receive in the opposite order.
                let a = r.recv(0, 1);
                let b = r.recv(0, 2);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(res.per_rank[1], vec![1.0, 2.0]);
    }

    #[test]
    fn communication_volume_is_accounted() {
        let res = run_world(3, |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[0.0; 100]); // 800 bytes p2p
            } else if r.rank() == 1 {
                let _ = r.recv(0, 1);
            }
            let mut v = vec![0.0; 10]; // 80 bytes collective contribution
            r.gsumf(&mut v);
        });
        assert_eq!(res.comm_bytes[0], 880);
        assert_eq!(res.comm_bytes[1], 80);
        assert_eq!(res.comm_bytes[2], 80);
    }

    #[test]
    fn memory_accounting_reaches_the_report() {
        let res = run_world(3, |r| {
            let _buf = r.alloc_f64(1000 * (r.rank() + 1));
            r.barrier();
        });
        assert_eq!(res.memory.per_rank_peak, vec![8000, 16000, 24000]);
        assert_eq!(res.memory.total_current(), 0);
    }

    #[test]
    fn allgather_scalar_collects_in_rank_order() {
        let res = run_world(4, |r| r.allgather_scalar((r.rank() * 10) as f64));
        for v in res.per_rank {
            assert_eq!(v, vec![0.0, 10.0, 20.0, 30.0]);
        }
    }

    #[test]
    fn single_rank_world() {
        let res = run_world(1, |r| {
            let mut v = vec![5.0];
            r.gsumf(&mut v);
            r.dlb_reset();
            v[0]
        });
        assert_eq!(res.per_rank, vec![5.0]);
    }

    // ------------------------------------------- fault injection --------

    /// Drain the lease loop, returning the tasks this rank completed
    /// (empty if it was killed — its work is lost with it).
    fn lease_drain(r: &Rank, n_tasks: usize, mode: LeaseMode) -> Vec<usize> {
        if r.lease_reset(n_tasks, mode).is_err() {
            return Vec::new();
        }
        let mut mine = Vec::new();
        loop {
            match r.lease_next() {
                Ok(Some(t)) => {
                    mine.push(t);
                    r.lease_complete(t);
                }
                Ok(None) => return mine,
                Err(_) => return Vec::new(),
            }
        }
    }

    fn surviving_union<const N: usize>(res: &WorldResult<Vec<usize>>) -> Vec<usize> {
        let dead = res.failed_ranks();
        let mut all: Vec<usize> = res
            .per_rank
            .iter()
            .enumerate()
            .filter(|(i, _)| !dead.contains(i))
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    #[test]
    fn lease_loop_matches_dlb_call_accounting() {
        let res = run_world(3, |r| lease_drain(r, 10, LeaseMode::Volatile).len());
        assert_eq!(res.per_rank.iter().sum::<usize>(), 10);
        // One call per task plus one Exhausted probe per rank — the same
        // accounting as the raw dlb_next loop.
        assert_eq!(res.dlb_calls, 13);
        assert_eq!(res.tasks_reclaimed, 0);
        assert!(res.failures.is_empty());
    }

    #[test]
    fn killed_rank_tasks_are_reissued_to_survivors() {
        let plan = FaultPlan::kill_at_tasks(1, &[2]);
        let res = run_world_with_faults(3, Some(plan), |r| lease_drain(r, 12, LeaseMode::Volatile));
        assert_eq!(res.failures.len(), 1, "exactly one rank dies");
        assert!(res.faults_injected >= 1);
        assert!(res.tasks_reclaimed >= 1, "the victim died holding task 2");
        assert!(res.lease_retries >= 1);
        assert_eq!(surviving_union::<3>(&res), (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn two_kills_leave_one_survivor_covering_everything() {
        let plan = FaultPlan::kill_at_tasks(7, &[1, 5]);
        let res = run_world_with_faults(3, Some(plan), |r| lease_drain(r, 10, LeaseMode::Volatile));
        assert_eq!(res.failures.len(), 2, "two distinct ranks die");
        assert!(res.tasks_reclaimed >= 2);
        assert_eq!(surviving_union::<3>(&res), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_random_kills_are_deterministic_and_survivable() {
        for seed in [11u64, 12, 13] {
            let res = run_world_with_faults(4, Some(FaultPlan::random_kills(seed, 2)), |r| {
                lease_drain(r, 20, LeaseMode::Volatile)
            });
            assert_eq!(res.failures.len(), 2, "seed {seed}: two ranks die");
            assert_eq!(surviving_union::<4>(&res), (0..20).collect::<Vec<_>>());
        }
    }

    #[test]
    fn kill_is_suppressed_for_the_last_live_rank() {
        // Every task is fatal, but the world must never fully die: the
        // last survivor absorbs the remaining kills and finishes.
        let plan = FaultPlan::kill_at_tasks(3, &[0, 1, 2, 3, 4, 5]);
        let res = run_world_with_faults(2, Some(plan), |r| lease_drain(r, 6, LeaseMode::Volatile));
        assert_eq!(res.failures.len(), 1, "only one of two ranks may die");
        assert_eq!(surviving_union::<2>(&res), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn straggler_delay_is_injected_without_killing() {
        // Single-rank world: with a peer racing for the 4 tasks, whether
        // rank 0 ever *makes* its delayed first claim depends on thread
        // scheduling (the peer can drain the whole range first), and the
        // injected-fault count flaps. Alone, rank 0 must claim, so the
        // delay fires deterministically.
        let plan = FaultPlan::parse("5:delay@0#1:10").unwrap();
        let res = run_world_with_faults(1, Some(plan), |r| lease_drain(r, 4, LeaseMode::Volatile));
        assert_eq!(res.faults_injected, 1);
        assert!(res.failures.is_empty());
        assert_eq!(surviving_union::<1>(&res), (0..4).collect::<Vec<_>>());
    }

    #[test]
    fn gsumf_regroups_around_survivors() {
        let plan = FaultPlan::kill_at_tasks(2, &[0]);
        let res = run_world_with_faults(3, Some(plan), |r| {
            if r.lease_reset(6, LeaseMode::Volatile).is_err() {
                return -1.0;
            }
            let mut acc = 0.0;
            loop {
                match r.lease_next() {
                    Ok(Some(t)) => {
                        acc += t as f64;
                        r.lease_complete(t);
                    }
                    Ok(None) => break,
                    Err(_) => return -1.0, // dead: skip the collective
                }
            }
            let mut v = vec![acc];
            r.try_gsumf(&mut v).map(|_| v[0]).unwrap_or(-1.0)
        });
        let survivors: Vec<f64> = res.per_rank.iter().copied().filter(|&x| x >= 0.0).collect();
        assert_eq!(survivors.len(), 2);
        // All six tasks (0..6 sums to 15) reach the reduction despite the
        // death — the lost rank's tasks were recomputed by survivors.
        for v in survivors {
            assert_eq!(v, 15.0);
        }
    }

    #[test]
    fn recv_timeout_on_never_sent_message() {
        let res = run_world(2, |r| {
            if r.rank() == 0 {
                r.recv_timeout(1, 99, Duration::from_millis(50)).err()
            } else {
                None
            }
        });
        assert_eq!(res.per_rank[0], Some(CommError::Timeout { what: "recv" }));
    }

    #[test]
    fn recv_timeout_delivers_tagged_out_of_order_messages() {
        let res = run_world(2, |r| {
            if r.rank() == 0 {
                r.send(1, 3, &[3.0]);
                r.send(1, 2, &[2.0]);
                r.send(1, 1, &[1.0]);
                vec![]
            } else {
                (1..=3u64)
                    .map(|tag| r.recv_timeout(0, tag, Duration::from_secs(2)).unwrap()[0])
                    .collect()
            }
        });
        assert_eq!(res.per_rank[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dropped_message_times_out_instead_of_hanging() {
        let plan = FaultPlan::parse("9:drop@0->1#1").unwrap();
        let res = run_world_with_faults(2, Some(plan), |r| {
            if r.rank() == 0 {
                r.try_send(1, 4, &[1.0, 2.0]).unwrap();
                None
            } else {
                r.recv_timeout(0, 4, Duration::from_millis(80)).err()
            }
        });
        assert_eq!(res.per_rank[1], Some(CommError::Timeout { what: "recv" }));
        assert_eq!(res.faults_injected, 1);
    }

    #[test]
    fn corrupted_payload_is_detected_by_checksum() {
        let plan = FaultPlan::parse("9:corrupt@0->1#1").unwrap();
        let res = run_world_with_faults(2, Some(plan), |r| {
            if r.rank() == 0 {
                r.try_send(1, 4, &[1.0, 2.0]).unwrap();
                None
            } else {
                r.recv_timeout(0, 4, Duration::from_secs(2)).err()
            }
        });
        assert_eq!(res.per_rank[1], Some(CommError::CorruptPayload { from: 0, tag: 4 }));
        assert_eq!(res.faults_injected, 1);
    }

    #[test]
    fn second_message_on_the_edge_passes_after_a_drop() {
        let plan = FaultPlan::parse("9:drop@0->1#1").unwrap();
        let res = run_world_with_faults(2, Some(plan), |r| {
            if r.rank() == 0 {
                r.try_send(1, 4, &[1.0]).unwrap(); // dropped
                r.try_send(1, 5, &[2.0]).unwrap(); // delivered
                vec![]
            } else {
                r.recv_timeout(0, 5, Duration::from_secs(2)).unwrap()
            }
        });
        assert_eq!(res.per_rank[1], vec![2.0]);
    }

    #[test]
    fn rank_panic_is_reported_with_rank_and_reason() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_world(3, |r| {
                if r.rank() == 1 {
                    panic!("integral batch exploded");
                }
            })
        }));
        let err = match result {
            Ok(_) => panic!("the world must propagate the rank panic"),
            Err(payload) => payload,
        };
        let msg =
            err.downcast_ref::<String>().expect("aggregated panic payload is a String").clone();
        assert!(msg.contains("rank 1"), "panic message names the rank: {msg}");
        assert!(msg.contains("integral batch exploded"), "panic message keeps the cause: {msg}");
    }
}
