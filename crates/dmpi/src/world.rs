//! SPMD worlds: spawning ranks, barriers, point-to-point messages and
//! collectives.

use crate::dlb::Dlb;
use crate::memory::{MemoryReport, MemoryTracker, TrackedBuf};
use crate::sync::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// A tagged point-to-point message.
struct Message {
    from: usize,
    tag: u64,
    data: Vec<f64>,
}

/// State shared by every rank of a world.
struct WorldShared {
    n_ranks: usize,
    barrier: Barrier,
    dlb: Dlb,
    /// Scratch buffer for collectives; valid only between the barriers of
    /// one collective call.
    coll: Mutex<Vec<f64>>,
    mem: Arc<MemoryTracker>,
    /// Bytes moved per rank: point-to-point payloads plus each rank's
    /// contribution to collectives. The communication volume the cluster
    /// model charges for is thereby observable on real runs.
    comm_bytes: Vec<AtomicU64>,
}

/// Handle a rank's SPMD closure receives. Not `Clone` — exactly one per
/// rank, like an MPI communicator's view of `MPI_COMM_WORLD`.
pub struct Rank {
    id: usize,
    shared: Arc<WorldShared>,
    senders: Vec<Sender<Message>>,
    /// Wrapped in a mutex so `Rank` stays `Sync` with the std mpsc receiver
    /// (p2p calls are one-rank operations; the lock is uncontended).
    receiver: Mutex<Receiver<Message>>,
    /// Messages received but not yet matched by a `recv` call.
    /// Mutex (not RefCell) so a `Rank` can be shared with an OpenMP-style
    /// thread team; p2p calls themselves remain one-rank operations.
    stash: Mutex<VecDeque<Message>>,
}

/// Everything a finished world returns: per-rank results plus the memory
/// accounting.
pub struct WorldResult<R> {
    pub per_rank: Vec<R>,
    pub memory: MemoryReport,
    pub dlb_calls: usize,
    /// Bytes each rank moved (p2p payloads + collective contributions).
    pub comm_bytes: Vec<u64>,
}

/// Run an SPMD function over `n_ranks` ranks (each on its own OS thread)
/// and collect their results.
pub fn run_world<R, F>(n_ranks: usize, f: F) -> WorldResult<R>
where
    R: Send,
    F: Fn(&Rank) -> R + Sync,
{
    assert!(n_ranks >= 1);
    let shared = Arc::new(WorldShared {
        n_ranks,
        barrier: Barrier::new(n_ranks),
        dlb: Dlb::new(),
        coll: Mutex::new(Vec::new()),
        mem: Arc::new(MemoryTracker::new(n_ranks)),
        comm_bytes: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
    });
    let mut senders = Vec::with_capacity(n_ranks);
    let mut receivers = Vec::with_capacity(n_ranks);
    for _ in 0..n_ranks {
        let (s, r) = channel();
        senders.push(s);
        receivers.push(r);
    }
    let ranks: Vec<Rank> = receivers
        .into_iter()
        .enumerate()
        .map(|(id, receiver)| Rank {
            id,
            shared: shared.clone(),
            senders: senders.clone(),
            receiver: Mutex::new(receiver),
            stash: Mutex::new(VecDeque::new()),
        })
        .collect();

    let per_rank = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut iter = ranks.into_iter();
        let rank0 = iter.next().expect("n_ranks >= 1");
        for rank in iter {
            let f = &f;
            handles.push(scope.spawn(move || f(&rank)));
        }
        let r0 = f(&rank0);
        let mut out = vec![r0];
        for h in handles {
            out.push(h.join().expect("rank thread panicked"));
        }
        out
    });

    WorldResult {
        per_rank,
        memory: shared.mem.report(),
        dlb_calls: shared.dlb.calls_made(),
        comm_bytes: shared.comm_bytes.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
    }
}

impl Rank {
    pub fn rank(&self) -> usize {
        self.id
    }

    pub fn size(&self) -> usize {
        self.shared.n_ranks
    }

    pub fn is_root(&self) -> bool {
        self.id == 0
    }

    /// World barrier.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Claim the next global task index (`ddi_dlbnext`).
    pub fn dlb_next(&self) -> usize {
        self.shared.dlb.next()
    }

    /// Collective reset of the DLB counter (call from all ranks).
    pub fn dlb_reset(&self) {
        self.barrier();
        if self.is_root() {
            self.shared.dlb.reset();
        }
        self.barrier();
    }

    /// Allocate a memory-tracked buffer charged to this rank.
    pub fn alloc_f64(&self, len: usize) -> TrackedBuf {
        TrackedBuf::new(len, self.id, self.shared.mem.clone())
    }

    /// Record an allocation this rank made outside [`TrackedBuf`] (e.g.
    /// thread-private buffers inside an OpenMP region).
    pub fn charge_bytes(&self, bytes: usize) {
        self.shared.mem.on_alloc(self.id, bytes);
    }

    pub fn release_bytes(&self, bytes: usize) {
        self.shared.mem.on_free(self.id, bytes);
    }

    // ---------------------------------------------------------- p2p -----

    /// Non-blocking tagged send to `dest`.
    pub fn send(&self, dest: usize, tag: u64, data: &[f64]) {
        self.count_bytes(data.len());
        self.senders[dest]
            .send(Message { from: self.id, tag, data: data.to_vec() })
            .expect("world is alive while ranks run");
    }

    fn count_bytes(&self, elems: usize) {
        self.shared.comm_bytes[self.id]
            .fetch_add((elems * std::mem::size_of::<f64>()) as u64, Ordering::Relaxed);
    }

    /// Blocking receive matching `(from, tag)`.
    pub fn recv(&self, from: usize, tag: u64) -> Vec<f64> {
        // Check earlier unmatched messages first.
        {
            let mut stash = self.stash.lock();
            if let Some(pos) = stash.iter().position(|m| m.from == from && m.tag == tag) {
                return stash.remove(pos).expect("position is valid").data;
            }
        }
        loop {
            let msg = self.receiver.lock().recv().expect("senders outlive the world");
            if msg.from == from && msg.tag == tag {
                return msg.data;
            }
            self.stash.lock().push_back(msg);
        }
    }

    // --------------------------------------------------- collectives ----

    /// Global sum over all ranks, in place (`ddi_gsumf`). Collective: every
    /// rank must call with an equally sized slice.
    pub fn gsumf(&self, data: &mut [f64]) {
        self.count_bytes(data.len());
        self.barrier();
        if self.is_root() {
            let mut buf = self.shared.coll.lock();
            buf.clear();
            buf.resize(data.len(), 0.0);
        }
        self.barrier();
        {
            let mut buf = self.shared.coll.lock();
            assert_eq!(buf.len(), data.len(), "gsumf length mismatch across ranks");
            for (b, d) in buf.iter_mut().zip(data.iter()) {
                *b += *d;
            }
        }
        self.barrier();
        {
            let buf = self.shared.coll.lock();
            data.copy_from_slice(&buf);
        }
        self.barrier();
    }

    /// Tree-structured global sum over the point-to-point channels: a
    /// binomial reduce to rank 0 followed by a binomial broadcast. Gives
    /// the same result as [`gsumf`](Self::gsumf) (up to floating-point
    /// association order) while exercising real message traffic — the
    /// communication pattern the cluster model charges for.
    pub fn gsumf_tree(&self, data: &mut [f64]) {
        const TAG_REDUCE: u64 = u64::MAX - 1;
        const TAG_BCAST: u64 = u64::MAX - 2;
        let size = self.size();
        let me = self.id;
        // Binomial reduction: at round k, ranks with bit k set send to
        // rank - 2^k and drop out.
        let mut step = 1;
        while step < size {
            if me & step != 0 {
                self.send(me - step, TAG_REDUCE, data);
                break;
            } else if me + step < size {
                let incoming = self.recv(me + step, TAG_REDUCE);
                assert_eq!(incoming.len(), data.len(), "gsumf_tree length mismatch");
                for (d, v) in data.iter_mut().zip(&incoming) {
                    *d += v;
                }
            }
            step <<= 1;
        }
        // Binomial broadcast of the result from rank 0.
        let mut mask = 1;
        while mask < size {
            mask <<= 1;
        }
        mask >>= 1;
        if me != 0 {
            // Find the bit that brought us into the tree.
            let lowest = me & me.wrapping_neg();
            let parent = me - lowest;
            let got = self.recv(parent, TAG_BCAST);
            data.copy_from_slice(&got);
        }
        let mut bit = if me == 0 { mask } else { (me & me.wrapping_neg()) >> 1 };
        while bit > 0 {
            let dest = me | bit;
            if dest != me && dest < size {
                self.send(dest, TAG_BCAST, data);
            }
            bit >>= 1;
        }
        self.barrier();
    }

    /// Broadcast `data` from `root` to every rank, in place. Collective.
    pub fn broadcast(&self, root: usize, data: &mut [f64]) {
        if self.id == root {
            self.count_bytes(data.len());
        }
        self.barrier();
        if self.id == root {
            let mut buf = self.shared.coll.lock();
            buf.clear();
            buf.extend_from_slice(data);
        }
        self.barrier();
        if self.id != root {
            let buf = self.shared.coll.lock();
            assert_eq!(buf.len(), data.len(), "broadcast length mismatch");
            data.copy_from_slice(&buf);
        }
        self.barrier();
    }

    /// Gather each rank's scalar into a vector on every rank (allgather).
    pub fn allgather_scalar(&self, value: f64) -> Vec<f64> {
        self.barrier();
        if self.is_root() {
            let mut buf = self.shared.coll.lock();
            buf.clear();
            buf.resize(self.size(), 0.0);
        }
        self.barrier();
        {
            let mut buf = self.shared.coll.lock();
            buf[self.id] = value;
        }
        self.barrier();
        let out = self.shared.coll.lock().clone();
        self.barrier();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let res = run_world(4, |r| (r.rank(), r.size()));
        assert_eq!(res.per_rank, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn gsumf_sums_across_ranks() {
        let res = run_world(4, |r| {
            let mut v = vec![r.rank() as f64, 1.0, -(r.rank() as f64)];
            r.gsumf(&mut v);
            v
        });
        for v in res.per_rank {
            assert_eq!(v, vec![6.0, 4.0, -6.0]);
        }
    }

    #[test]
    fn repeated_gsumf_calls_are_independent() {
        let res = run_world(3, |r| {
            let mut total = 0.0;
            for round in 0..10 {
                let mut v = vec![(r.rank() + round) as f64];
                r.gsumf(&mut v);
                total += v[0];
            }
            total
        });
        // Round k sums to 3k + 3; total over k=0..9 = 3*45 + 30 = 165.
        for v in res.per_rank {
            assert_eq!(v, 165.0);
        }
    }

    #[test]
    fn tree_gsumf_matches_shared_buffer_gsumf() {
        for n_ranks in [1usize, 2, 3, 4, 5, 7, 8] {
            let res = run_world(n_ranks, |r| {
                let mut a = vec![r.rank() as f64 + 0.5, -(r.rank() as f64)];
                let mut b = a.clone();
                r.gsumf(&mut a);
                r.gsumf_tree(&mut b);
                (a, b)
            });
            for (a, b) in res.per_rank {
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() < 1e-12, "{n_ranks} ranks: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn tree_gsumf_repeats_cleanly() {
        let res = run_world(6, |r| {
            let mut total = 0.0;
            for round in 0..5 {
                let mut v = vec![(r.rank() * round) as f64];
                r.gsumf_tree(&mut v);
                total += v[0];
            }
            total
        });
        // Round k sums to 15k; total = 15 * (0+1+2+3+4) = 150.
        for v in res.per_rank {
            assert_eq!(v, 150.0);
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let res = run_world(3, |r| {
            let mut v = if r.rank() == 2 { vec![42.0, 7.0] } else { vec![0.0, 0.0] };
            r.broadcast(2, &mut v);
            v
        });
        for v in res.per_rank {
            assert_eq!(v, vec![42.0, 7.0]);
        }
    }

    #[test]
    fn dlb_distributes_all_tasks_exactly_once() {
        let n_tasks = 1000;
        let res = run_world(4, |r| {
            let mut mine = Vec::new();
            loop {
                let t = r.dlb_next();
                if t >= n_tasks {
                    break;
                }
                mine.push(t);
            }
            mine
        });
        let mut all: Vec<usize> = res.per_rank.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n_tasks).collect::<Vec<_>>());
        assert!(res.dlb_calls >= n_tasks);
    }

    #[test]
    fn dlb_reset_between_iterations() {
        let res = run_world(2, |r| {
            let mut seen = Vec::new();
            for _iter in 0..3 {
                r.dlb_reset();
                loop {
                    let t = r.dlb_next();
                    if t >= 10 {
                        break;
                    }
                    seen.push(t);
                }
            }
            seen
        });
        let mut all: Vec<usize> = res.per_rank.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all.len(), 30, "each of 3 iterations distributes 10 tasks");
    }

    #[test]
    fn point_to_point_roundtrip() {
        let res = run_world(2, |r| {
            if r.rank() == 0 {
                r.send(1, 7, &[1.0, 2.0, 3.0]);
                r.recv(1, 8)
            } else {
                let got = r.recv(0, 7);
                let doubled: Vec<f64> = got.iter().map(|x| 2.0 * x).collect();
                r.send(0, 8, &doubled);
                got
            }
        });
        assert_eq!(res.per_rank[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(res.per_rank[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let res = run_world(2, |r| {
            if r.rank() == 0 {
                // Send tag 2 first, then tag 1.
                r.send(1, 2, &[2.0]);
                r.send(1, 1, &[1.0]);
                vec![]
            } else {
                // Receive in the opposite order.
                let a = r.recv(0, 1);
                let b = r.recv(0, 2);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(res.per_rank[1], vec![1.0, 2.0]);
    }

    #[test]
    fn communication_volume_is_accounted() {
        let res = run_world(3, |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[0.0; 100]); // 800 bytes p2p
            } else if r.rank() == 1 {
                let _ = r.recv(0, 1);
            }
            let mut v = vec![0.0; 10]; // 80 bytes collective contribution
            r.gsumf(&mut v);
        });
        assert_eq!(res.comm_bytes[0], 880);
        assert_eq!(res.comm_bytes[1], 80);
        assert_eq!(res.comm_bytes[2], 80);
    }

    #[test]
    fn memory_accounting_reaches_the_report() {
        let res = run_world(3, |r| {
            let _buf = r.alloc_f64(1000 * (r.rank() + 1));
            r.barrier();
        });
        assert_eq!(res.memory.per_rank_peak, vec![8000, 16000, 24000]);
        assert_eq!(res.memory.total_current(), 0);
    }

    #[test]
    fn allgather_scalar_collects_in_rank_order() {
        let res = run_world(4, |r| r.allgather_scalar((r.rank() * 10) as f64));
        for v in res.per_rank {
            assert_eq!(v, vec![0.0, 10.0, 20.0, 30.0]);
        }
    }

    #[test]
    fn single_rank_world() {
        let res = run_world(1, |r| {
            let mut v = vec![5.0];
            r.gsumf(&mut v);
            r.dlb_reset();
            v[0]
        });
        assert_eq!(res.per_rank, vec![5.0]);
    }
}
