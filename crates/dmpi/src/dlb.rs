//! The global dynamic load-balancing counter (`ddi_dlbnext`).
//!
//! GAMESS distributes irregular work by having every rank pull the next
//! task index from a single global counter. All three of the paper's
//! algorithms use it: Algorithm 1 over `(i,j)` pairs, Algorithm 2 over `i`,
//! Algorithm 3 over combined `ij` pairs.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared monotone task counter.
#[derive(Debug, Default)]
pub struct Dlb {
    counter: AtomicUsize,
    /// Total calls ever made (for overhead/statistics accounting).
    calls: AtomicUsize,
}

impl Dlb {
    pub fn new() -> Dlb {
        Dlb::default()
    }

    /// Claim the next task index. Matches `ddi_dlbnext`: every call across
    /// every rank gets a distinct, monotonically increasing value.
    #[inline]
    pub fn next(&self) -> usize {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Reset for the next SCF iteration. NOT collective by itself — callers
    /// must bracket with barriers (the `Rank::dlb_reset` wrapper does).
    pub fn reset(&self) {
        self.counter.store(0, Ordering::SeqCst);
    }

    /// Record a task-counter call made through another dispenser (the
    /// fault-tolerant lease table routes claims here so DLB call
    /// accounting stays uniform across both code paths).
    #[inline]
    pub fn note_call(&self) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    pub fn calls_made(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_values_are_dense() {
        let d = Dlb::new();
        for want in 0..100 {
            assert_eq!(d.next(), want);
        }
    }

    #[test]
    fn concurrent_claims_are_unique_and_dense() {
        let d = Arc::new(Dlb::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = d.clone();
            handles
                .push(std::thread::spawn(move || (0..1000).map(|_| d.next()).collect::<Vec<_>>()));
        }
        let mut all: Vec<usize> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..4000).collect();
        assert_eq!(all, expect);
        assert_eq!(d.calls_made(), 4000);
    }

    #[test]
    fn reset_restarts_from_zero() {
        let d = Dlb::new();
        d.next();
        d.next();
        d.reset();
        assert_eq!(d.next(), 0);
        assert_eq!(d.calls_made(), 3);
    }
}
